// Benchmarks regenerating every table and figure of the paper (see the
// experiment index in README.md), plus ablations of the design decisions
// and micro-benchmarks of the hot paths.
//
// Benchmarks run the experiments at reduced budget so "go test -bench=."
// terminates in minutes; cmd/experiments runs the same code at paper scale.
package repro

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/dpga"
	"repro/internal/ga"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/greedy"
	"repro/internal/ibp"
	"repro/internal/kl"
	"repro/internal/multilevel"
	"repro/internal/partition"
	"repro/internal/rcb"
	"repro/internal/spectral"
)

// benchOptions is the budget used by the table benchmarks: the full
// experiment pipeline at a fraction of the paper's generations.
func benchOptions() bench.Options {
	return bench.Options{
		Runs:        1,
		Generations: 20,
		TotalPop:    64,
		Islands:     4,
		Seed:        gen.SuiteSeed,
	}
}

func BenchmarkTable1(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		bench.Table1(opt)
	}
}

func BenchmarkTable2(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		bench.Table2(opt)
	}
}

func BenchmarkTable3(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		bench.Table3(opt)
	}
}

func BenchmarkTable4(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		bench.Table4(opt)
	}
}

func BenchmarkTable5(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		bench.Table5(opt)
	}
}

func BenchmarkTable6(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		bench.Table6(opt)
	}
}

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if bench.Figure1() == "" {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkConvergence(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		bench.Convergence(opt)
	}
}

func BenchmarkSpeedup(b *testing.B) {
	opt := benchOptions()
	opt.Generations = 10
	for i := 0; i < b.N; i++ {
		bench.Speedup(opt)
	}
}

// --- Ablations ---

// runEngine is shared by the ablation benchmarks: a fixed-budget DKNUX run
// on the 144-node mesh, returning the final cut (reported as a metric).
func runEngine(b *testing.B, mutate func(*ga.Config)) {
	g := gen.PaperGraph(144)
	rng := rand.New(rand.NewSource(1))
	seed := partition.RandomBalanced(g.NumNodes(), 4, rng)
	var finalCut float64
	for i := 0; i < b.N; i++ {
		cfg := ga.Config{
			Parts:     4,
			PopSize:   64,
			Crossover: ga.NewDKNUX(seed),
			Seed:      int64(i),
		}
		if mutate != nil {
			mutate(&cfg)
		}
		e, err := ga.New(g, cfg)
		if err != nil {
			b.Fatal(err)
		}
		finalCut = e.Run(30).Part.CutSize(g)
	}
	b.ReportMetric(finalCut, "final-cut")
}

// BenchmarkAblationSelection compares the selection schemes (the paper does
// not specify one; binary tournament is our default).
func BenchmarkAblationSelection(b *testing.B) {
	for _, sel := range []ga.Selection{ga.Tournament{Size: 2}, ga.Tournament{Size: 4}, ga.Roulette{}, ga.Rank{}} {
		b.Run(sel.Name(), func(b *testing.B) {
			runEngine(b, func(c *ga.Config) { c.Selection = sel })
		})
	}
}

// BenchmarkAblationHillClimb measures the optional §3.6 hill-climbing step.
func BenchmarkAblationHillClimb(b *testing.B) {
	for _, hc := range []bool{false, true} {
		name := "off"
		if hc {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			runEngine(b, func(c *ga.Config) { c.HillClimb = hc })
		})
	}
}

// BenchmarkAblationEstimate compares a static estimate (KNUX) against the
// dynamically updated one (DKNUX) at equal budget: the paper's central
// static-vs-dynamic design choice.
func BenchmarkAblationEstimate(b *testing.B) {
	g := gen.PaperGraph(144)
	rng := rand.New(rand.NewSource(2))
	seed := partition.RandomBalanced(g.NumNodes(), 4, rng)
	for _, dynamic := range []bool{false, true} {
		name := "static-KNUX"
		if dynamic {
			name = "dynamic-DKNUX"
		}
		b.Run(name, func(b *testing.B) {
			var finalCut float64
			for i := 0; i < b.N; i++ {
				var op ga.Crossover
				if dynamic {
					op = ga.NewDKNUX(seed)
				} else {
					op = ga.NewKNUX(seed)
				}
				e, err := ga.New(g, ga.Config{Parts: 4, PopSize: 64, Crossover: op, Seed: int64(i)})
				if err != nil {
					b.Fatal(err)
				}
				finalCut = e.Run(30).Part.CutSize(g)
			}
			b.ReportMetric(finalCut, "final-cut")
		})
	}
}

// BenchmarkAblationMultilevel compares flat GA against contraction+GA on a
// mesh far larger than the paper's (its §5: "a prior graph contraction step
// would allow these techniques to be applied to graphs much larger").
func BenchmarkAblationMultilevel(b *testing.B) {
	g := gen.Mesh(1000, 77)
	gaInner := func(cg *graph.Graph, parts int, rng *rand.Rand) (*partition.Partition, error) {
		est := partition.RandomBalanced(cg.NumNodes(), parts, rng)
		e, err := ga.New(cg, ga.Config{Parts: parts, PopSize: 48, Crossover: ga.NewDKNUX(est), Seed: rng.Int63()})
		if err != nil {
			return nil, err
		}
		return e.Run(30).Part, nil
	}
	b.Run("flat-GA", func(b *testing.B) {
		var cut float64
		for i := 0; i < b.N; i++ {
			rng := rand.New(rand.NewSource(int64(i)))
			p, err := gaInner(g, 8, rng)
			if err != nil {
				b.Fatal(err)
			}
			cut = p.CutSize(g)
		}
		b.ReportMetric(cut, "final-cut")
	})
	b.Run("multilevel-GA", func(b *testing.B) {
		var cut float64
		for i := 0; i < b.N; i++ {
			p, err := multilevel.Partition(g, multilevel.Config{Parts: 8, Seed: int64(i)}, gaInner)
			if err != nil {
				b.Fatal(err)
			}
			cut = p.CutSize(g)
		}
		b.ReportMetric(cut, "final-cut")
	})
}

// BenchmarkAblationNormalize measures part-label normalization (relabeling
// parent b to positionally agree with parent a before crossover, after von
// Laszewski's structural operators) wrapped around UX and DKNUX.
func BenchmarkAblationNormalize(b *testing.B) {
	g := gen.PaperGraph(144)
	rng := rand.New(rand.NewSource(3))
	seed := partition.RandomBalanced(g.NumNodes(), 4, rng)
	mk := map[string]func() ga.Crossover{
		"ux":           func() ga.Crossover { return ga.Uniform{} },
		"ux+normalize": func() ga.Crossover { return ga.Normalizing{Inner: ga.Uniform{}} },
		"dknux":        func() ga.Crossover { return ga.NewDKNUX(seed) },
		"dknux+normalize": func() ga.Crossover {
			return ga.Normalizing{Inner: ga.NewDKNUX(seed)}
		},
	}
	for _, name := range []string{"ux", "ux+normalize", "dknux", "dknux+normalize"} {
		b.Run(name, func(b *testing.B) {
			var finalCut float64
			for i := 0; i < b.N; i++ {
				e, err := ga.New(g, ga.Config{Parts: 4, PopSize: 64, Crossover: mk[name](), Seed: int64(i)})
				if err != nil {
					b.Fatal(err)
				}
				finalCut = e.Run(30).Part.CutSize(g)
			}
			b.ReportMetric(finalCut, "final-cut")
		})
	}
}

// BenchmarkAblationReplacement compares generational (the default) against
// steady-state replacement at equal offspring budget.
func BenchmarkAblationReplacement(b *testing.B) {
	for _, ss := range []bool{false, true} {
		name := "generational"
		if ss {
			name = "steady-state"
		}
		b.Run(name, func(b *testing.B) {
			runEngine(b, func(c *ga.Config) { c.SteadyState = ss })
		})
	}
}

// BenchmarkAblationMigrationInterval sweeps the DPGA migration interval,
// reporting solution quality at a fixed budget: too-frequent migration
// homogenizes islands, too-rare wastes the island model.
func BenchmarkAblationMigrationInterval(b *testing.B) {
	g := gen.PaperGraph(144)
	for _, interval := range []int{1, 5, 20, 1000} {
		b.Run(fmt.Sprintf("interval-%d", interval), func(b *testing.B) {
			var cut float64
			for i := 0; i < b.N; i++ {
				m, err := dpga.New(g, dpga.Config{
					Base:              ga.Config{Parts: 4, PopSize: 64, Seed: int64(i)},
					Islands:           4,
					MigrationInterval: interval,
					CrossoverFactory: func(island int) ga.Crossover {
						rng := rand.New(rand.NewSource(int64(i*100 + island)))
						return ga.NewDKNUX(partition.RandomBalanced(g.NumNodes(), 4, rng))
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				cut = m.Run(30).Part.CutSize(g)
			}
			b.ReportMetric(cut, "final-cut")
		})
	}
}

// BenchmarkParamSweep regenerates the pc/pm sensitivity figure.
func BenchmarkParamSweep(b *testing.B) {
	opt := benchOptions()
	opt.Generations = 10
	for i := 0; i < b.N; i++ {
		bench.ParamSweep(opt)
	}
}

// BenchmarkBaselines times every deterministic baseline on the largest suite
// mesh and reports its cut as a metric, anchoring the tables' GA numbers.
func BenchmarkBaselines(b *testing.B) {
	g := gen.PaperGraph(309)
	const parts = 8
	run := func(name string, fn func() (*partition.Partition, error)) {
		b.Run(name, func(b *testing.B) {
			var cut float64
			for i := 0; i < b.N; i++ {
				p, err := fn()
				if err != nil {
					b.Fatal(err)
				}
				cut = p.CutSize(g)
			}
			b.ReportMetric(cut, "cut")
		})
	}
	run("rsb", func() (*partition.Partition, error) {
		return spectral.Partition(g, parts, rand.New(rand.NewSource(1)))
	})
	run("ibp-shuffled", func() (*partition.Partition, error) {
		return ibp.Partition(g, parts, ibp.ShuffledRowMajor)
	})
	run("ibp-rowmajor", func() (*partition.Partition, error) {
		return ibp.Partition(g, parts, ibp.RowMajor)
	})
	run("rcb", func() (*partition.Partition, error) {
		return rcb.Partition(g, parts, rcb.Coordinate)
	})
	run("rgb", func() (*partition.Partition, error) {
		return rcb.Partition(g, parts, rcb.GraphBFS)
	})
	run("region-grow", func() (*partition.Partition, error) {
		return greedy.RegionGrow(g, parts)
	})
	run("scattered", func() (*partition.Partition, error) {
		return greedy.Scattered(g.NumNodes(), parts)
	})
	run("strip", func() (*partition.Partition, error) {
		return greedy.StripIndex(g, parts)
	})
}

// BenchmarkNonConvexDomains compares geometric vs graph-aware partitioners
// on the annulus domain, where geometric methods pay for connecting points
// across the hole (extension beyond the paper; see internal/gen/domains.go).
func BenchmarkNonConvexDomains(b *testing.B) {
	g := gen.DomainMesh(gen.Annulus{}, 300, 5)
	const parts = 8
	run := func(name string, fn func(i int) (*partition.Partition, error)) {
		b.Run(name, func(b *testing.B) {
			var cut float64
			for i := 0; i < b.N; i++ {
				p, err := fn(i)
				if err != nil {
					b.Fatal(err)
				}
				cut = p.CutSize(g)
			}
			b.ReportMetric(cut, "cut")
		})
	}
	run("rcb", func(i int) (*partition.Partition, error) {
		return rcb.Partition(g, parts, rcb.Coordinate)
	})
	run("ibp", func(i int) (*partition.Partition, error) {
		return ibp.Partition(g, parts, ibp.ShuffledRowMajor)
	})
	run("rsb", func(i int) (*partition.Partition, error) {
		return spectral.Partition(g, parts, rand.New(rand.NewSource(int64(i))))
	})
	run("dknux", func(i int) (*partition.Partition, error) {
		seed, err := ibp.Partition(g, parts, ibp.ShuffledRowMajor)
		if err != nil {
			return nil, err
		}
		e, err := ga.New(g, ga.Config{
			Parts: parts, PopSize: 64,
			Seeds:     []*partition.Partition{seed},
			Crossover: ga.NewDKNUX(seed),
			HillClimb: true,
			Seed:      int64(i),
		})
		if err != nil {
			return nil, err
		}
		return e.Run(30).Part, nil
	})
}

// --- Micro-benchmarks of the hot paths ---

func BenchmarkFitnessTotalCut(b *testing.B) {
	g := gen.PaperGraph(309)
	rng := rand.New(rand.NewSource(1))
	p := partition.RandomBalanced(g.NumNodes(), 8, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Fitness(g, partition.TotalCut)
	}
}

func BenchmarkFitnessWorstCut(b *testing.B) {
	g := gen.PaperGraph(309)
	rng := rand.New(rand.NewSource(1))
	p := partition.RandomBalanced(g.NumNodes(), 8, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Fitness(g, partition.WorstCut)
	}
}

func BenchmarkCrossoverOperators(b *testing.B) {
	g := gen.PaperGraph(309)
	rng := rand.New(rand.NewSource(1))
	pa := ga.NewIndividual(g, partition.RandomBalanced(g.NumNodes(), 8, rng), partition.TotalCut)
	pb := ga.NewIndividual(g, partition.RandomBalanced(g.NumNodes(), 8, rng), partition.TotalCut)
	est := partition.RandomBalanced(g.NumNodes(), 8, rng)
	for _, op := range []ga.Crossover{ga.KPoint{K: 2}, ga.Uniform{}, ga.NewKNUX(est), ga.NewDKNUX(est)} {
		b.Run(op.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				op.Cross(g, pa, pb, rng)
			}
		})
	}
}

func BenchmarkHillClimbPass(b *testing.B) {
	g := gen.PaperGraph(309)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := partition.RandomBalanced(g.NumNodes(), 8, rng)
		b.StartTimer()
		kl.HillClimb(g, p, partition.TotalCut, 1)
	}
}

func BenchmarkRSB(b *testing.B) {
	g := gen.PaperGraph(309)
	for i := 0; i < b.N; i++ {
		if _, err := spectral.Partition(g, 8, rand.New(rand.NewSource(int64(i)))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIBP(b *testing.B) {
	g := gen.PaperGraph(309)
	for i := 0; i < b.N; i++ {
		if _, err := ibp.Partition(g, 8, ibp.ShuffledRowMajor); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoarsen(b *testing.B) {
	g := gen.Mesh(1000, 3)
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		multilevel.Coarsen(g, rng, 1)
	}
}

func BenchmarkMeshGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		gen.Mesh(309, int64(i))
	}
}

func BenchmarkKLBisect(b *testing.B) {
	g := gen.PaperGraph(167)
	rng := rand.New(rand.NewSource(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := partition.RandomBalanced(g.NumNodes(), 2, rng)
		b.StartTimer()
		kl.Bisect(g, p)
	}
}
