package gen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geometry"
)

func TestDomainContains(t *testing.T) {
	cases := []struct {
		d    Domain
		in   []geometry.Point
		out  []geometry.Point
		name string
	}{
		{
			d:    Square{},
			in:   []geometry.Point{{X: 0.5, Y: 0.5}, {X: 0, Y: 0}, {X: 1, Y: 1}},
			out:  []geometry.Point{{X: -0.1, Y: 0.5}, {X: 0.5, Y: 1.1}},
			name: "square",
		},
		{
			d:    LShape{},
			in:   []geometry.Point{{X: 0.25, Y: 0.25}, {X: 0.25, Y: 0.75}, {X: 0.75, Y: 0.25}},
			out:  []geometry.Point{{X: 0.75, Y: 0.75}, {X: 1.2, Y: 0.2}},
			name: "l-shape",
		},
		{
			d:    Annulus{},
			in:   []geometry.Point{{X: 0.5 + 0.3, Y: 0.5}, {X: 0.5, Y: 0.5 - 0.35}},
			out:  []geometry.Point{{X: 0.5, Y: 0.5}, {X: 0.5 + 0.05, Y: 0.5}, {X: 0.99, Y: 0.99}},
			name: "annulus",
		},
	}
	for _, c := range cases {
		if c.d.Name() != c.name {
			t.Errorf("Name = %q, want %q", c.d.Name(), c.name)
		}
		for _, p := range c.in {
			if !c.d.Contains(p) {
				t.Errorf("%s: %v should be inside", c.name, p)
			}
		}
		for _, p := range c.out {
			if c.d.Contains(p) {
				t.Errorf("%s: %v should be outside", c.name, p)
			}
		}
	}
}

func TestDomainMeshBasics(t *testing.T) {
	for _, d := range []Domain{Square{}, LShape{}, Annulus{}} {
		g := DomainMesh(d, 120, 7)
		if g.NumNodes() != 120 {
			t.Fatalf("%s: %d nodes", d.Name(), g.NumNodes())
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		if !g.IsConnected() {
			t.Errorf("%s: disconnected", d.Name())
		}
		// All nodes inside the domain.
		for v := 0; v < g.NumNodes(); v++ {
			c := g.Coord(v)
			if !d.Contains(geometry.Point{X: c.X, Y: c.Y}) {
				t.Fatalf("%s: node %d at %v outside domain", d.Name(), v, c)
			}
		}
	}
}

func TestAnnulusMeshHasHole(t *testing.T) {
	// No edge of the annulus mesh may cross the central hole: the midpoint
	// of every edge stays out of the inner disc (small tolerance for edges
	// hugging the inner boundary).
	a := Annulus{}
	g := DomainMesh(a, 150, 11)
	in, _ := a.radii()
	violations := 0
	g.Edges(func(u, v int, w float64) bool {
		cu, cv := g.Coord(u), g.Coord(v)
		mx, my := (cu.X+cv.X)/2-0.5, (cu.Y+cv.Y)/2-0.5
		if mx*mx+my*my < (in*0.8)*(in*0.8) {
			violations++
		}
		return true
	})
	if violations > 0 {
		t.Errorf("%d edges cross deep into the hole", violations)
	}
}

func TestLShapeMeshAvoidsNotch(t *testing.T) {
	g := DomainMesh(LShape{}, 150, 13)
	violations := 0
	g.Edges(func(u, v int, w float64) bool {
		cu, cv := g.Coord(u), g.Coord(v)
		mx, my := (cu.X+cv.X)/2, (cu.Y+cv.Y)/2
		// Deep inside the removed quadrant.
		if mx > 0.6 && my > 0.6 {
			violations++
		}
		return true
	})
	if violations > 0 {
		t.Errorf("%d edges cross the notch", violations)
	}
}

func TestDomainMeshDeterministic(t *testing.T) {
	a := DomainMesh(LShape{}, 80, 3)
	b := DomainMesh(LShape{}, 80, 3)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed, different domain meshes")
	}
	a.Edges(func(u, v int, w float64) bool {
		if !b.HasEdge(u, v) {
			t.Fatal("edge sets differ")
		}
		return true
	})
}

// Property: domain meshes are connected, valid, planar-bounded, and fully
// inside the domain for all three domains and various sizes.
func TestQuickDomainMeshInvariants(t *testing.T) {
	domains := []Domain{Square{}, LShape{}, Annulus{}}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := domains[rng.Intn(len(domains))]
		n := 20 + rng.Intn(80)
		g := DomainMesh(d, n, seed)
		if g.Validate() != nil || !g.IsConnected() || g.NumEdges() > 3*n-6 {
			return false
		}
		for v := 0; v < n; v++ {
			c := g.Coord(v)
			if !d.Contains(geometry.Point{X: c.X, Y: c.Y}) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}
