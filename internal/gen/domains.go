package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geometry"
	"repro/internal/graph"
)

// Non-convex FEM domains. Real finite-element meshes are rarely square:
// L-shaped brackets and annular sections are the canonical test domains.
// Their re-entrant corners and holes stress partitioners in ways the unit
// square cannot: geometric methods (RCB, IBP, strips) happily connect
// points across a hole, while the graph-aware methods (RSB, KNUX/DKNUX)
// see the true topology. Triangles whose centroid leaves the domain are
// discarded after Delaunay, which carves out the hole.

// Domain restricts point placement and triangulation to a region of the
// unit square.
type Domain interface {
	// Name identifies the domain in reports.
	Name() string
	// Contains reports whether p lies inside the domain.
	Contains(p geometry.Point) bool
}

// Square is the full unit square (the default domain).
type Square struct{}

// Name implements Domain.
func (Square) Name() string { return "square" }

// Contains implements Domain.
func (Square) Contains(p geometry.Point) bool {
	return p.X >= 0 && p.X <= 1 && p.Y >= 0 && p.Y <= 1
}

// LShape is the unit square with the upper-right quadrant removed — the
// classic re-entrant-corner domain.
type LShape struct{}

// Name implements Domain.
func (LShape) Name() string { return "l-shape" }

// Contains implements Domain.
func (LShape) Contains(p geometry.Point) bool {
	if !(Square{}).Contains(p) {
		return false
	}
	return !(p.X > 0.5 && p.Y > 0.5)
}

// Annulus is the ring between radii Inner and Outer around the square's
// center. Zero values select 0.2 and 0.5.
type Annulus struct {
	Inner, Outer float64
}

func (a Annulus) radii() (float64, float64) {
	in, out := a.Inner, a.Outer
	if in == 0 {
		in = 0.2
	}
	if out == 0 {
		out = 0.5
	}
	return in, out
}

// Name implements Domain.
func (a Annulus) Name() string { return "annulus" }

// Contains implements Domain.
func (a Annulus) Contains(p geometry.Point) bool {
	in, out := a.radii()
	dx, dy := p.X-0.5, p.Y-0.5
	r2 := dx*dx + dy*dy
	return r2 >= in*in && r2 <= out*out
}

// DomainMesh returns a Delaunay mesh of n well-spaced random points inside
// the domain, with triangles outside the domain removed (carving holes and
// notches) and connectivity restored by stitching nearest components.
func DomainMesh(d Domain, n int, seed int64) *graph.Graph {
	if n < 3 {
		panic(fmt.Sprintf("gen: domain mesh needs >= 3 nodes, got %d", n))
	}
	rng := rand.New(rand.NewSource(seed))
	pts := domainPoints(d, rng, n)
	tr, err := geometry.Delaunay(pts)
	if err != nil {
		panic(fmt.Sprintf("gen: domain triangulation failed: %v", err))
	}
	b := graph.NewBuilder(n)
	for i, p := range pts {
		b.SetCoord(i, graph.Point{X: p.X, Y: p.Y})
	}
	for _, t := range tr.Triangles {
		c := geometry.Point{
			X: (pts[t.A].X + pts[t.B].X + pts[t.C].X) / 3,
			Y: (pts[t.A].Y + pts[t.B].Y + pts[t.C].Y) / 3,
		}
		if !d.Contains(c) {
			continue // triangle spans the hole/notch: drop it
		}
		addEdgeOnce(b, t.A, t.B)
		addEdgeOnce(b, t.B, t.C)
		addEdgeOnce(b, t.C, t.A)
	}
	return connect(b.Build(), pts)
}

func addEdgeOnce(b *graph.Builder, u, v int) {
	if !b.HasEdge(u, v) {
		b.AddEdge(u, v, 1)
	}
}

// domainPoints draws n well-spaced points inside d by rejection sampling.
// The separation target scales with the domain's sampled area fraction.
func domainPoints(d Domain, rng *rand.Rand, n int) []geometry.Point {
	// Estimate the domain's area fraction to calibrate the separation.
	hits := 0
	const probes = 2000
	for i := 0; i < probes; i++ {
		if d.Contains(geometry.Point{X: rng.Float64(), Y: rng.Float64()}) {
			hits++
		}
	}
	frac := math.Max(float64(hits)/probes, 0.05)
	minSep := 0.5 * math.Sqrt(frac/float64(n))
	min2 := minSep * minSep

	pts := make([]geometry.Point, 0, n)
	for attempts := 0; len(pts) < n; attempts++ {
		if attempts > 500*n {
			min2 *= 0.25
			attempts = 0
		}
		p := geometry.Point{X: rng.Float64(), Y: rng.Float64()}
		if !d.Contains(p) {
			continue
		}
		ok := true
		for _, q := range pts {
			if p.Dist2(q) < min2 {
				ok = false
				break
			}
		}
		if ok {
			pts = append(pts, p)
		}
	}
	return pts
}
