package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// PowerLaw returns a Barabási–Albert preferential-attachment graph: nodes
// arrive one at a time and attach m edges to existing nodes with probability
// proportional to their current degree, producing the hub-dominated degree
// distribution of web, citation, and social graphs. Such graphs have no
// geometric embedding and no small separators around their hubs, which makes
// them the canonical stress case for partitioners tuned on meshes. The same
// (n, m, seed) always produces the same graph, and the result is connected
// by construction.
func PowerLaw(n, m int, seed int64) *graph.Graph {
	if m < 1 || n < m+1 {
		panic(fmt.Sprintf("gen: power law needs n >= m+1 >= 2, got n=%d m=%d", n, m))
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	// endpoints lists every edge endpoint once; sampling it uniformly is
	// sampling nodes proportionally to degree.
	endpoints := make([]int, 0, 2*m*n)
	// Seed clique over the first m+1 nodes so every early node has degree m.
	for u := 0; u <= m; u++ {
		for v := u + 1; v <= m; v++ {
			b.AddEdge(u, v, 1)
			endpoints = append(endpoints, u, v)
		}
	}
	targets := make([]int, 0, m)
	for v := m + 1; v < n; v++ {
		targets = targets[:0]
	draw:
		for len(targets) < m {
			t := endpoints[rng.Intn(len(endpoints))]
			for _, seen := range targets {
				if seen == t {
					continue draw // duplicate target: redraw
				}
			}
			targets = append(targets, t)
		}
		for _, t := range targets {
			b.AddEdge(v, t, 1)
			endpoints = append(endpoints, v, t)
		}
	}
	return b.Build()
}

// Grid3D returns the nx × ny × nz 6-neighbor grid with unit weights: the
// canonical structured 3-D volume mesh, whose minimal separators are planes
// of nx*ny nodes rather than the 2-D suites' lines. It carries no geometric
// embedding (the repository's coordinates are 2-D), so it also exercises the
// purely combinatorial algorithms' handling of volume meshes.
func Grid3D(nx, ny, nz int) *graph.Graph {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		panic(fmt.Sprintf("gen: invalid 3-D grid %dx%dx%d", nx, ny, nz))
	}
	b := graph.NewBuilder(nx * ny * nz)
	id := func(x, y, z int) int { return (z*ny+y)*nx + x }
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				v := id(x, y, z)
				if x+1 < nx {
					b.AddEdge(v, id(x+1, y, z), 1)
				}
				if y+1 < ny {
					b.AddEdge(v, id(x, y+1, z), 1)
				}
				if z+1 < nz {
					b.AddEdge(v, id(x, y, z+1), 1)
				}
			}
		}
	}
	return b.Build()
}
