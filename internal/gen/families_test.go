package gen

import (
	"sort"
	"testing"
)

func TestPowerLawShapeAndDeterminism(t *testing.T) {
	const n, m = 500, 3
	g := PowerLaw(n, m, 42)
	if g.NumNodes() != n {
		t.Fatalf("nodes = %d, want %d", g.NumNodes(), n)
	}
	// Seed clique of m+1 nodes plus m edges per later node.
	wantEdges := m*(m+1)/2 + (n-m-1)*m
	if g.NumEdges() != wantEdges {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), wantEdges)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() {
		t.Error("preferential attachment produced a disconnected graph")
	}
	if g.HasCoords() {
		t.Error("power-law graph should carry no geometric embedding")
	}
	// Same seed, same graph; different seed, different graph.
	h := PowerLaw(n, m, 42)
	for v := 0; v < n; v++ {
		gn, hn := g.Neighbors(v), h.Neighbors(v)
		if len(gn) != len(hn) {
			t.Fatalf("node %d degree differs across identical seeds", v)
		}
		for i := range gn {
			if gn[i] != hn[i] {
				t.Fatalf("node %d adjacency differs across identical seeds", v)
			}
		}
	}
	other := PowerLaw(n, m, 43)
	same := true
	for v := 0; v < n && same; v++ {
		a, b := g.Neighbors(v), other.Neighbors(v)
		if len(a) != len(b) {
			same = false
			break
		}
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical graphs")
	}
}

func TestPowerLawIsHubDominated(t *testing.T) {
	// The defining property: a heavy degree tail. The top 1% of nodes must
	// own several times their uniform share of edge endpoints.
	const n, m = 2000, 3
	g := PowerLaw(n, m, 7)
	degs := make([]int, n)
	for v := 0; v < n; v++ {
		degs[v] = g.Degree(v)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degs)))
	top := 0
	for _, d := range degs[:n/100] {
		top += d
	}
	share := float64(top) / float64(2*g.NumEdges())
	if share < 0.05 { // uniform share would be 0.01
		t.Errorf("top 1%% of nodes hold only %.1f%% of endpoints; no heavy tail", 100*share)
	}
	if degs[0] < 4*m {
		t.Errorf("max degree %d barely above attachment degree %d", degs[0], m)
	}
}

func TestPowerLawPanicsOnBadArgs(t *testing.T) {
	for name, fn := range map[string]func(){
		"m=0":   func() { PowerLaw(10, 0, 1) },
		"n<m+1": func() { PowerLaw(3, 3, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestGrid3DShape(t *testing.T) {
	const nx, ny, nz = 4, 5, 6
	g := Grid3D(nx, ny, nz)
	if g.NumNodes() != nx*ny*nz {
		t.Fatalf("nodes = %d, want %d", g.NumNodes(), nx*ny*nz)
	}
	wantEdges := (nx-1)*ny*nz + nx*(ny-1)*nz + nx*ny*(nz-1)
	if g.NumEdges() != wantEdges {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), wantEdges)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() {
		t.Error("grid is disconnected")
	}
	// Interior nodes have exactly 6 neighbors, corners exactly 3.
	if d := g.Degree((1*ny+1)*nx + 1); d != 6 {
		t.Errorf("interior degree = %d, want 6", d)
	}
	if d := g.Degree(0); d != 3 {
		t.Errorf("corner degree = %d, want 3", d)
	}
}

func TestGrid3DPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for zero dimension")
		}
	}()
	Grid3D(3, 0, 3)
}
