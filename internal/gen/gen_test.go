package gen

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestGridStructure(t *testing.T) {
	g := Grid(3, 4)
	if g.NumNodes() != 12 {
		t.Fatalf("nodes = %d, want 12", g.NumNodes())
	}
	// 3x4 grid: 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8 = 17 edges.
	if g.NumEdges() != 17 {
		t.Fatalf("edges = %d, want 17", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() {
		t.Error("grid not connected")
	}
	// Corner degree 2, edge degree 3, interior degree 4.
	if g.Degree(0) != 2 {
		t.Errorf("corner degree = %d", g.Degree(0))
	}
	if g.Degree(5) != 4 { // (1,1) interior
		t.Errorf("interior degree = %d", g.Degree(5))
	}
}

func TestGridPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Grid(0,3) should panic")
		}
	}()
	Grid(0, 3)
}

func TestTorusIsRegular(t *testing.T) {
	g := Torus(4, 5)
	if g.NumNodes() != 20 || g.NumEdges() != 40 {
		t.Fatalf("torus: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	for v := 0; v < g.NumNodes(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("node %d degree %d, want 4", v, g.Degree(v))
		}
	}
}

func TestMeshDeterministic(t *testing.T) {
	a := Mesh(100, 42)
	b := Mesh(100, 42)
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("same seed, different meshes: %d vs %d edges", a.NumEdges(), b.NumEdges())
	}
	a.Edges(func(u, v int, w float64) bool {
		if !b.HasEdge(u, v) {
			t.Errorf("edge {%d,%d} missing in second build", u, v)
			return false
		}
		return true
	})
	c := Mesh(100, 43)
	if c.NumEdges() == a.NumEdges() {
		// Different seeds could coincidentally match edge counts, but then
		// the edge sets should still differ.
		same := true
		a.Edges(func(u, v int, w float64) bool {
			if !c.HasEdge(u, v) {
				same = false
				return false
			}
			return true
		})
		if same {
			t.Error("different seeds produced identical meshes")
		}
	}
}

func TestMeshConnectedAndPlanar(t *testing.T) {
	for _, n := range []int{10, 78, 167} {
		g := Mesh(n, 7)
		if g.NumNodes() != n {
			t.Fatalf("n=%d: got %d nodes", n, g.NumNodes())
		}
		if !g.IsConnected() {
			t.Errorf("n=%d: mesh disconnected", n)
		}
		if g.NumEdges() > 3*n-6 {
			t.Errorf("n=%d: %d edges exceeds planar bound %d", n, g.NumEdges(), 3*n-6)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestPaperGraphSizes(t *testing.T) {
	for _, n := range PaperSizes {
		g := PaperGraph(n)
		if g.NumNodes() != n {
			t.Errorf("PaperGraph(%d) has %d nodes", n, g.NumNodes())
		}
		if !g.IsConnected() {
			t.Errorf("PaperGraph(%d) disconnected", n)
		}
	}
}

func TestPaperGraphRejectsUnknownSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("PaperGraph(100) should panic")
		}
	}()
	PaperGraph(100)
}

func TestRandomGeometricConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := RandomGeometric(rng, 60, 0.08) // radius small: forces stitching
	if !g.IsConnected() {
		t.Error("RandomGeometric not connected after stitching")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// The bucketed neighbor search must produce exactly the pair-scan edge set:
// for every pair, adjacency iff distance <= radius (modulo the stitching
// edges, which only ever join distinct components). Checked at the diverse
// suite's rgg-2000 parameters so the committed bench baselines stay valid.
func TestRandomGeometricMatchesPairScan(t *testing.T) {
	const n, radius = 2000, 0.05
	rng := rand.New(rand.NewSource(SuiteSeed + 2000))
	g := RandomGeometric(rng, n, radius)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	r2 := radius * radius
	missing := 0
	for i := 0; i < n; i++ {
		pi := g.Coord(i)
		for j := i + 1; j < n; j++ {
			pj := g.Coord(j)
			d2 := (pi.X-pj.X)*(pi.X-pj.X) + (pi.Y-pj.Y)*(pi.Y-pj.Y)
			switch {
			case d2 <= r2 && !g.HasEdge(i, j):
				t.Fatalf("pair {%d,%d} within radius but not adjacent", i, j)
			case d2 > r2 && g.HasEdge(i, j):
				// Allowed only for stitching edges; count and bound them.
				missing++
			}
		}
	}
	if missing > 20 {
		t.Errorf("%d beyond-radius edges; stitching should add only a handful", missing)
	}
}

// The ROADMAP's streaming-scale prerequisite: a 100k-node random geometric
// graph must generate in seconds, not the minutes the O(n²) pair scan took.
// The wall-clock bound is deliberately loose (CI machines vary); the real
// regression guard is that quadratic behavior would blow far past it.
func TestRandomGeometric100k(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-node generation in -short mode")
	}
	const n = 100_000
	start := time.Now()
	rng := rand.New(rand.NewSource(SuiteSeed + n))
	g := RandomGeometric(rng, n, 0.005)
	elapsed := time.Since(start)
	if g.NumNodes() != n {
		t.Fatalf("generated %d nodes", g.NumNodes())
	}
	if !g.IsConnected() {
		t.Error("not connected")
	}
	if avgDeg := 2 * float64(g.NumEdges()) / n; avgDeg < 4 || avgDeg > 12 {
		t.Errorf("average degree %.1f outside the expected RGG band", avgDeg)
	}
	if elapsed > 20*time.Second {
		t.Errorf("100k-node generation took %s; the grid-bucketed search should stay in single-digit seconds", elapsed)
	}
	t.Logf("100k nodes, %d edges in %s", g.NumEdges(), elapsed)
}

func TestRefineAddsExactlyK(t *testing.T) {
	base := Mesh(118, 11)
	rng := rand.New(rand.NewSource(2))
	grown := Refine(base, 21, rng)
	if grown.NumNodes() != 139 {
		t.Fatalf("grown nodes = %d, want 139", grown.NumNodes())
	}
	if err := grown.Validate(); err != nil {
		t.Fatal(err)
	}
	if !grown.IsConnected() {
		t.Error("grown mesh disconnected")
	}
	// Old nodes keep their coordinates.
	for v := 0; v < base.NumNodes(); v++ {
		if base.Coord(v) != grown.Coord(v) {
			t.Fatalf("node %d moved during refinement", v)
		}
	}
}

func TestRefineIsLocal(t *testing.T) {
	base := Mesh(183, 5)
	rng := rand.New(rand.NewSource(3))
	grown := Refine(base, 30, rng)
	// New nodes should be spatially clustered: their bounding box must be
	// much smaller than the unit square.
	minX, minY, maxX, maxY := 2.0, 2.0, -1.0, -1.0
	for v := base.NumNodes(); v < grown.NumNodes(); v++ {
		p := grown.Coord(v)
		if p.X < minX {
			minX = p.X
		}
		if p.Y < minY {
			minY = p.Y
		}
		if p.X > maxX {
			maxX = p.X
		}
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	if (maxX-minX) > 0.8 || (maxY-minY) > 0.8 {
		t.Errorf("new nodes not local: bbox %.2fx%.2f", maxX-minX, maxY-minY)
	}
	// Majority of old edges far from the region survive: at least half of
	// all original edges should be present in the grown graph.
	kept := 0
	base.Edges(func(u, v int, w float64) bool {
		if grown.HasEdge(u, v) {
			kept++
		}
		return true
	})
	if kept < base.NumEdges()/2 {
		t.Errorf("refinement destroyed %d of %d original edges", base.NumEdges()-kept, base.NumEdges())
	}
}

func TestIncrementalPairDeterministic(t *testing.T) {
	c := IncrementalCase{118, 21}
	b1, g1 := IncrementalPair(c)
	b2, g2 := IncrementalPair(c)
	if b1.NumEdges() != b2.NumEdges() || g1.NumEdges() != g2.NumEdges() {
		t.Error("IncrementalPair not deterministic")
	}
	if g1.NumNodes() != 139 {
		t.Errorf("grown nodes = %d", g1.NumNodes())
	}
}

func TestAllIncrementalCases(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, c := range PaperIncrementalCases {
		base, grown := IncrementalPair(c)
		if base.NumNodes() != c.Base || grown.NumNodes() != c.Base+c.Added {
			t.Errorf("case %+v: sizes %d -> %d", c, base.NumNodes(), grown.NumNodes())
		}
		if !grown.IsConnected() {
			t.Errorf("case %+v: grown graph disconnected", c)
		}
	}
}

// Property: meshes at arbitrary small sizes are connected, planar-bounded,
// and valid.
func TestQuickMeshInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(60)
		g := Mesh(n, seed)
		return g.Validate() == nil && g.IsConnected() && g.NumEdges() <= 3*n-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
