// Package gen produces the benchmark graphs used throughout this repository.
//
// The paper evaluated on unstructured 2-D computational meshes of 78–309
// nodes that were never published. We substitute deterministic Delaunay
// triangulations of random points at the same node counts,
// plus structured grids and random geometric graphs for unit tests and
// ablations. All generators take an explicit seed and are reproducible.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geometry"
	"repro/internal/graph"
)

// Grid returns the rows x cols 4-neighbor grid mesh with unit weights and
// unit-square-scaled coordinates. The 8x8 grid reproduces the paper's
// Figure 1 substrate.
func Grid(rows, cols int) *graph.Graph {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("gen: invalid grid %dx%d", rows, cols))
	}
	b := graph.NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := id(r, c)
			b.SetCoord(v, graph.Point{X: float64(c), Y: float64(r)})
			if c+1 < cols {
				b.AddEdge(v, id(r, c+1), 1)
			}
			if r+1 < rows {
				b.AddEdge(v, id(r+1, c), 1)
			}
		}
	}
	return b.Build()
}

// Torus returns the rows x cols grid with wraparound edges. Used by tests
// that need a vertex-transitive graph with known optimal bisections.
func Torus(rows, cols int) *graph.Graph {
	if rows < 3 || cols < 3 {
		panic(fmt.Sprintf("gen: torus needs >= 3x3, got %dx%d", rows, cols))
	}
	b := graph.NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := id(r, c)
			b.SetCoord(v, graph.Point{X: float64(c), Y: float64(r)})
			b.AddEdge(v, id(r, (c+1)%cols), 1)
			b.AddEdge(v, id((r+1)%rows, c), 1)
		}
	}
	return b.Build()
}

// RandomGeometric returns a random geometric graph: n uniform points in the
// unit square, nodes within distance radius connected. Isolated components
// are stitched to the nearest node of the giant component so the result is
// always connected (partitioners assume connectivity).
func RandomGeometric(rng *rand.Rand, n int, radius float64) *graph.Graph {
	pts := randomWellSpacedPoints(rng, n)
	b := graph.NewBuilder(n)
	r2 := radius * radius
	for i := 0; i < n; i++ {
		b.SetCoord(i, graph.Point{X: pts[i].X, Y: pts[i].Y})
		for j := i + 1; j < n; j++ {
			if pts[i].Dist2(pts[j]) <= r2 {
				b.AddEdge(i, j, 1)
			}
		}
	}
	return connect(b.Build(), pts)
}

// Mesh returns a Delaunay triangulation of n well-spaced random points in the
// unit square: the synthetic stand-in for the paper's unstructured meshes.
// The same (n, seed) always produces the same graph.
func Mesh(n int, seed int64) *graph.Graph {
	if n < 3 {
		panic(fmt.Sprintf("gen: mesh needs >= 3 nodes, got %d", n))
	}
	rng := rand.New(rand.NewSource(seed))
	pts := randomWellSpacedPoints(rng, n)
	tr, err := geometry.Delaunay(pts)
	if err != nil {
		// Well-spaced random points cannot be collinear or duplicated.
		panic(fmt.Sprintf("gen: Delaunay on generated points failed: %v", err))
	}
	b := graph.NewBuilder(n)
	for i, p := range pts {
		b.SetCoord(i, graph.Point{X: p.X, Y: p.Y})
	}
	for _, e := range tr.Edges() {
		b.AddEdge(e[0], e[1], 1)
	}
	return b.Build()
}

// randomWellSpacedPoints draws n points uniformly in the unit square with a
// minimum pairwise separation (dart throwing), which keeps triangulations
// well-shaped like real FEM meshes.
func randomWellSpacedPoints(rng *rand.Rand, n int) []geometry.Point {
	minSep := 0.5 / math.Sqrt(float64(n)) // ~half the mean spacing
	min2 := minSep * minSep
	pts := make([]geometry.Point, 0, n)
	for attempts := 0; len(pts) < n; attempts++ {
		if attempts > 400*n {
			// Relax the separation rather than loop forever; this triggers
			// only for adversarial n.
			min2 *= 0.25
			attempts = 0
		}
		p := geometry.Point{X: rng.Float64(), Y: rng.Float64()}
		ok := true
		for _, q := range pts {
			if p.Dist2(q) < min2 {
				ok = false
				break
			}
		}
		if ok {
			pts = append(pts, p)
		}
	}
	return pts
}

// connect stitches disconnected components together by adding an edge from
// each non-giant component to its geometrically nearest node outside it.
func connect(g *graph.Graph, pts []geometry.Point) *graph.Graph {
	comp, count := g.Components()
	if count <= 1 {
		return g
	}
	b := graph.FromGraph(g)
	for added := count - 1; added > 0; {
		comp, count = b.Build().Components()
		if count <= 1 {
			break
		}
		// Join component of node 0 to its nearest external node.
		best, bestFrom, bestD := -1, -1, math.Inf(1)
		for v := 0; v < len(comp); v++ {
			if comp[v] != comp[0] {
				continue
			}
			for u := 0; u < len(comp); u++ {
				if comp[u] == comp[0] {
					continue
				}
				if d := pts[v].Dist2(pts[u]); d < bestD {
					best, bestFrom, bestD = u, v, d
				}
			}
		}
		b.AddEdge(bestFrom, best, 1)
		added--
	}
	return b.Build()
}
