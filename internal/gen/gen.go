// Package gen produces the benchmark graphs used throughout this repository.
//
// The paper evaluated on unstructured 2-D computational meshes of 78–309
// nodes that were never published. We substitute deterministic Delaunay
// triangulations of random points at the same node counts,
// plus structured grids and random geometric graphs for unit tests and
// ablations. All generators take an explicit seed and are reproducible.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geometry"
	"repro/internal/graph"
)

// Grid returns the rows x cols 4-neighbor grid mesh with unit weights and
// unit-square-scaled coordinates. The 8x8 grid reproduces the paper's
// Figure 1 substrate.
func Grid(rows, cols int) *graph.Graph {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("gen: invalid grid %dx%d", rows, cols))
	}
	b := graph.NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := id(r, c)
			b.SetCoord(v, graph.Point{X: float64(c), Y: float64(r)})
			if c+1 < cols {
				b.AddEdge(v, id(r, c+1), 1)
			}
			if r+1 < rows {
				b.AddEdge(v, id(r+1, c), 1)
			}
		}
	}
	return b.Build()
}

// Torus returns the rows x cols grid with wraparound edges. Used by tests
// that need a vertex-transitive graph with known optimal bisections.
func Torus(rows, cols int) *graph.Graph {
	if rows < 3 || cols < 3 {
		panic(fmt.Sprintf("gen: torus needs >= 3x3, got %dx%d", rows, cols))
	}
	b := graph.NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := id(r, c)
			b.SetCoord(v, graph.Point{X: float64(c), Y: float64(r)})
			b.AddEdge(v, id(r, (c+1)%cols), 1)
			b.AddEdge(v, id((r+1)%rows, c), 1)
		}
	}
	return b.Build()
}

// RandomGeometric returns a random geometric graph: n uniform points in the
// unit square, nodes within distance radius connected. Isolated components
// are stitched to the nearest node of the giant component so the result is
// always connected (partitioners assume connectivity).
//
// Neighbor search is grid-bucketed (cells no smaller than radius, so the
// 3x3 cell window around a point covers its whole reach): expected O(n +
// edges) instead of the O(n²) pair scan, which is what makes 100k+-node
// suites generable in seconds. The edge set is decided by pure distance
// predicates, so the result is bit-identical to the pair scan's.
func RandomGeometric(rng *rand.Rand, n int, radius float64) *graph.Graph {
	pts := randomWellSpacedPoints(rng, n)
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.SetCoord(i, graph.Point{X: pts[i].X, Y: pts[i].Y})
	}
	if radius > 0 && n > 1 {
		r2 := radius * radius
		grid := newBucketGrid(pts, radius)
		for i := 0; i < n; i++ {
			grid.forNearby(pts[i], func(j int) {
				if j < i && pts[i].Dist2(pts[j]) <= r2 {
					b.AddEdge(j, i, 1)
				}
			})
		}
	}
	return connect(b.Build(), pts)
}

// gridGeom is the square-cell geometry shared by the point grids below:
// the unit square cut into nx×nx cells whose side is at least the asked-for
// separation, so any point within that separation of p lies in the 3x3 cell
// window around p's cell.
type gridGeom struct {
	nx int
}

// newGridGeom sizes a grid with cells no smaller than sep. The cell count
// is also capped near 4n so degenerate separations cannot blow up memory;
// capping only makes cells *larger*, which keeps the 3x3 window sufficient.
func newGridGeom(sep float64, n int) gridGeom {
	nx := 1
	if sep > 0 && sep < 1 {
		nx = int(1 / sep) // floor: cell = 1/nx >= sep
	}
	if most := int(2*math.Sqrt(float64(n))) + 1; nx > most {
		nx = most
	}
	if nx < 1 {
		nx = 1
	}
	return gridGeom{nx: nx}
}

func (g gridGeom) cellOf(p geometry.Point) int {
	return g.cellAt(p.X)*g.nx + g.cellAt(p.Y)
}

func (g gridGeom) cellAt(x float64) int {
	c := int(x * float64(g.nx))
	if c < 0 {
		c = 0
	}
	if c >= g.nx {
		c = g.nx - 1
	}
	return c
}

// forWindow calls fn with every in-bounds cell index of the 3x3 window
// around p.
func (g gridGeom) forWindow(p geometry.Point, fn func(cell int)) {
	cx, cy := g.cellAt(p.X), g.cellAt(p.Y)
	for dx := -1; dx <= 1; dx++ {
		x := cx + dx
		if x < 0 || x >= g.nx {
			continue
		}
		for dy := -1; dy <= 1; dy++ {
			y := cy + dy
			if y < 0 || y >= g.nx {
				continue
			}
			fn(x*g.nx + y)
		}
	}
}

// bucketGrid indexes fixed points CSR-style (one flat item array plus
// per-cell offsets) for radius and nearest-neighbor queries.
type bucketGrid struct {
	gridGeom
	start []int32
	items []int32
}

func newBucketGrid(pts []geometry.Point, reach float64) *bucketGrid {
	g := &bucketGrid{gridGeom: newGridGeom(reach, len(pts))}
	nx := g.nx
	g.start = make([]int32, nx*nx+1)
	for _, p := range pts {
		g.start[g.cellOf(p)+1]++
	}
	for c := 0; c < nx*nx; c++ {
		g.start[c+1] += g.start[c]
	}
	g.items = make([]int32, len(pts))
	cursor := append([]int32(nil), g.start[:nx*nx]...)
	for i, p := range pts {
		c := g.cellOf(p)
		g.items[cursor[c]] = int32(i)
		cursor[c]++
	}
	return g
}

// nearest returns the accepted point minimizing (distance² to p, index) —
// the same argmin a full scan in index order with strict improvement would
// select — by examining cells in expanding Chebyshev rings and stopping
// once no unvisited ring can beat the best found. Returns -1 if no point is
// accepted.
func (g *bucketGrid) nearest(p geometry.Point, pts []geometry.Point, accept func(j int) bool) (int, float64) {
	cx, cy := g.cellAt(p.X), g.cellAt(p.Y)
	cell := 1 / float64(g.nx)
	best, bestD := -1, math.Inf(1)
	scan := func(x, y int) {
		if x < 0 || x >= g.nx || y < 0 || y >= g.nx {
			return
		}
		c := x*g.nx + y
		for _, j32 := range g.items[g.start[c]:g.start[c+1]] {
			j := int(j32)
			if !accept(j) {
				continue
			}
			if d := p.Dist2(pts[j]); d < bestD || (d == bestD && j < best) {
				best, bestD = j, d
			}
		}
	}
	for r := 0; r <= 2*g.nx; r++ {
		if best >= 0 {
			// A cell in ring r is at least (r-1) cells away from p.
			if reach := float64(r-1) * cell; reach > 0 && reach*reach > bestD {
				break
			}
		}
		if r == 0 {
			scan(cx, cy)
			continue
		}
		for x := cx - r; x <= cx+r; x++ {
			if x == cx-r || x == cx+r {
				for y := cy - r; y <= cy+r; y++ {
					scan(x, y)
				}
			} else {
				scan(x, cy-r)
				scan(x, cy+r)
			}
		}
	}
	return best, bestD
}

// forNearby calls fn with the index of every point in the 3x3 cell window
// around p — a superset of the points within the grid's reach of p.
func (g *bucketGrid) forNearby(p geometry.Point, fn func(j int)) {
	g.forWindow(p, func(c int) {
		for _, j := range g.items[g.start[c]:g.start[c+1]] {
			fn(int(j))
		}
	})
}

// SkewWeights returns a copy of g whose node weights are drawn from a
// Zipf distribution on [1, maxWeight] — a few heavy nodes among many unit
// ones, the shape of adaptive-refinement and multi-physics workloads. The
// structure, edge weights, and coordinates are untouched; weights are
// integral so the result serializes to METIS. Deterministic for a fixed
// seed.
func SkewWeights(g *graph.Graph, seed int64, maxWeight int) *graph.Graph {
	if maxWeight < 1 {
		panic(fmt.Sprintf("gen: SkewWeights with maxWeight %d", maxWeight))
	}
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.5, 1, uint64(maxWeight-1))
	b := graph.FromGraph(g)
	for v := 0; v < g.NumNodes(); v++ {
		b.SetNodeWeight(v, float64(1+zipf.Uint64()))
	}
	return b.Build()
}

// Mesh returns a Delaunay triangulation of n well-spaced random points in the
// unit square: the synthetic stand-in for the paper's unstructured meshes.
// The same (n, seed) always produces the same graph.
func Mesh(n int, seed int64) *graph.Graph {
	if n < 3 {
		panic(fmt.Sprintf("gen: mesh needs >= 3 nodes, got %d", n))
	}
	rng := rand.New(rand.NewSource(seed))
	pts := randomWellSpacedPoints(rng, n)
	tr, err := geometry.Delaunay(pts)
	if err != nil {
		// Well-spaced random points cannot be collinear or duplicated.
		panic(fmt.Sprintf("gen: Delaunay on generated points failed: %v", err))
	}
	b := graph.NewBuilder(n)
	for i, p := range pts {
		b.SetCoord(i, graph.Point{X: p.X, Y: p.Y})
	}
	for _, e := range tr.Edges() {
		b.AddEdge(e[0], e[1], 1)
	}
	return b.Build()
}

// randomWellSpacedPoints draws n points uniformly in the unit square with a
// minimum pairwise separation (dart throwing), which keeps triangulations
// well-shaped like real FEM meshes.
//
// The rejection test is grid-bucketed: a candidate only conflicts with
// points in the 3x3 cell window around it (cells are at least minSep wide,
// and the separation only ever *relaxes*, so the window stays sufficient).
// The accept/reject decision is the same pure distance predicate as the old
// all-pairs scan, so the point sequence — and everything generated from it —
// is bit-identical; generation just drops from O(n²) to expected O(n).
func randomWellSpacedPoints(rng *rand.Rand, n int) []geometry.Point {
	minSep := 0.5 / math.Sqrt(float64(n)) // ~half the mean spacing
	min2 := minSep * minSep
	pts := make([]geometry.Point, 0, n)
	grid := newInsertGrid(minSep, n)
	for attempts := 0; len(pts) < n; attempts++ {
		if attempts > 400*n {
			// Relax the separation rather than loop forever; this triggers
			// only for adversarial n.
			min2 *= 0.25
			attempts = 0
		}
		p := geometry.Point{X: rng.Float64(), Y: rng.Float64()}
		ok := true
		grid.forNearby(p, func(j int) {
			if ok && p.Dist2(pts[j]) < min2 {
				ok = false
			}
		})
		if ok {
			grid.insert(p, len(pts))
			pts = append(pts, p)
		}
	}
	return pts
}

// insertGrid is the incremental sibling of bucketGrid for dart throwing:
// points arrive one at a time, so cells are append-only slices instead of
// CSR arrays.
type insertGrid struct {
	gridGeom
	bins [][]int32
}

func newInsertGrid(sep float64, n int) *insertGrid {
	g := &insertGrid{gridGeom: newGridGeom(sep, n)}
	g.bins = make([][]int32, g.nx*g.nx)
	return g
}

func (g *insertGrid) insert(p geometry.Point, idx int) {
	c := g.cellOf(p)
	g.bins[c] = append(g.bins[c], int32(idx))
}

func (g *insertGrid) forNearby(p geometry.Point, fn func(j int)) {
	g.forWindow(p, func(c int) {
		for _, j := range g.bins[c] {
			fn(int(j))
		}
	})
}

// connect stitches disconnected components together by adding an edge from
// the component of node 0 to its geometrically nearest node outside it,
// repeated until one component remains.
//
// Each join picks the argmin of (distance², inside node, outside node) —
// exactly the pair the original all-pairs scan selected — but finds it with
// a grid ring search per outside node and tracks connectivity in a
// union-find instead of rebuilding the graph per join, so stitching a
// 100k-node graph with hundreds of pockets costs milliseconds, not minutes.
func connect(g *graph.Graph, pts []geometry.Point) *graph.Graph {
	comp, count := g.Components()
	if count <= 1 {
		return g
	}
	parent := make([]int, count)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(c int) int {
		if parent[c] != c {
			parent[c] = find(parent[c])
		}
		return parent[c]
	}
	n := len(pts)
	grid := newBucketGrid(pts, 1/(2*math.Sqrt(float64(n))+1))
	b := graph.FromGraph(g)
	for joins := count - 1; joins > 0; joins-- {
		root := find(comp[0])
		bestV, bestU, bestD := -1, -1, math.Inf(1)
		for u := 0; u < n; u++ {
			if find(comp[u]) == root {
				continue
			}
			v, d := grid.nearest(pts[u], pts, func(j int) bool { return find(comp[j]) == root })
			if v < 0 {
				continue
			}
			if d < bestD || (d == bestD && (v < bestV || (v == bestV && u < bestU))) {
				bestV, bestU, bestD = v, u, d
			}
		}
		if bestU < 0 {
			break
		}
		b.AddEdge(bestV, bestU, 1)
		parent[find(comp[bestU])] = root
	}
	return b.Build()
}
