package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/geometry"
	"repro/internal/graph"
)

// SuiteSeed is the fixed seed for the benchmark mesh suite. Every reported
// experiment is generated from these graphs, so the seed is part of the
// experiment definition.
const SuiteSeed = 1994 // year of the paper

// PaperSizes lists the static-graph node counts appearing in the paper's
// Tables 1, 2, 4, and 5.
var PaperSizes = []int{78, 88, 98, 118, 139, 144, 167, 183, 213, 243, 249, 279, 309}

// PaperGraph returns the benchmark mesh with the given node count from the
// fixed-seed suite. It panics if n is not one of PaperSizes (catching typos
// in experiment definitions early).
func PaperGraph(n int) *graph.Graph {
	for _, s := range PaperSizes {
		if s == n {
			return Mesh(n, SuiteSeed+int64(n))
		}
	}
	panic(fmt.Sprintf("gen: %d is not a paper suite size %v", n, PaperSizes))
}

// Refine adds k new nodes inside a local region of mesh g, mimicking adaptive
// mesh refinement: a random existing node is chosen as the region center, new
// points are placed nearby, and the affected region is re-triangulated. This
// is the incremental workload of the paper's Tables 3 and 6 ("adding some
// number of nodes in a local area chosen randomly within the graph").
//
// It returns the grown graph. Nodes 0..g.NumNodes()-1 keep their identity and
// coordinates; new nodes take indices g.NumNodes()..g.NumNodes()+k-1.
func Refine(g *graph.Graph, k int, rng *rand.Rand) *graph.Graph {
	if !g.HasCoords() {
		panic("gen: Refine requires a geometric mesh")
	}
	n := g.NumNodes()
	center := g.Coord(rng.Intn(n))

	// Radius that encloses roughly k/2 existing nodes, so the refinement
	// roughly triples the local density — a genuinely local neighborhood.
	type distNode struct {
		d float64
		v int
	}
	dist := make([]distNode, n)
	for v := 0; v < n; v++ {
		p := g.Coord(v)
		dx, dy := p.X-center.X, p.Y-center.Y
		dist[v] = distNode{dx*dx + dy*dy, v}
	}
	sort.Slice(dist, func(i, j int) bool { return dist[i].d < dist[j].d })
	enclose := k / 2
	if enclose < 4 {
		enclose = 4
	}
	if enclose >= n {
		enclose = n - 1
	}
	radius := math.Sqrt(dist[enclose].d)
	if radius == 0 {
		radius = 0.05
	}

	// Place k new points uniformly in the disc, keeping a minimum separation
	// from all points so the re-triangulation stays well-shaped.
	pts := make([]geometry.Point, n, n+k)
	for v := 0; v < n; v++ {
		p := g.Coord(v)
		pts[v] = geometry.Point{X: p.X, Y: p.Y}
	}
	minSep := radius / (2 * math.Sqrt(float64(k)+1))
	min2 := minSep * minSep
	for len(pts) < n+k {
		for attempts := 0; ; attempts++ {
			if attempts > 200*k+1000 {
				min2 *= 0.25
				attempts = 0
			}
			ang := rng.Float64() * 2 * math.Pi
			r := radius * math.Sqrt(rng.Float64())
			p := geometry.Point{X: center.X + r*math.Cos(ang), Y: center.Y + r*math.Sin(ang)}
			ok := true
			for _, q := range pts {
				if p.Dist2(q) < min2 {
					ok = false
					break
				}
			}
			if ok {
				pts = append(pts, p)
				break
			}
		}
	}

	// Re-triangulate the whole point set, then keep the old graph's edges
	// outside the refined region and the new triangulation's edges for any
	// pair touching the region. This models local re-meshing: topology far
	// from the refinement is untouched.
	tr, err := geometry.Delaunay(pts)
	if err != nil {
		panic(fmt.Sprintf("gen: Refine triangulation failed: %v", err))
	}
	inRegion := func(p geometry.Point) bool {
		dx, dy := p.X-center.X, p.Y-center.Y
		return dx*dx+dy*dy <= radius*radius*1.21 // 10% margin
	}
	b := graph.NewBuilder(n + k)
	for v := 0; v < n; v++ {
		b.SetNodeWeight(v, g.NodeWeight(v))
		b.SetCoord(v, g.Coord(v))
	}
	for v := n; v < n+k; v++ {
		b.SetCoord(v, graph.Point{X: pts[v].X, Y: pts[v].Y})
	}
	// Old edges with both endpoints outside the region survive verbatim.
	g.Edges(func(u, v int, w float64) bool {
		if !inRegion(pts[u]) || !inRegion(pts[v]) {
			b.AddEdge(u, v, w)
		}
		return true
	})
	// New triangulation supplies all edges touching the region.
	for _, e := range tr.Edges() {
		if inRegion(pts[e[0]]) || inRegion(pts[e[1]]) {
			b.AddEdge(e[0], e[1], 1)
		}
	}
	return connect(b.Build(), pts)
}

// IncrementalCase describes one incremental-partitioning workload from the
// paper: a base mesh plus a number of nodes added by local refinement.
type IncrementalCase struct {
	Base  int // node count of the initial mesh
	Added int // nodes added by Refine
}

// PaperIncrementalCases lists the (base, added) combinations in Tables 3
// and 6.
var PaperIncrementalCases = []IncrementalCase{
	{78, 10}, {78, 20},
	{118, 21}, {118, 41},
	{183, 30}, {183, 60},
	{249, 30}, {249, 60},
}

// IncrementalPair deterministically generates the base mesh and its refined
// version for the given case.
func IncrementalPair(c IncrementalCase) (base, grown *graph.Graph) {
	base = Mesh(c.Base, SuiteSeed+int64(c.Base))
	rng := rand.New(rand.NewSource(SuiteSeed + int64(1000*c.Base+c.Added)))
	grown = Refine(base, c.Added, rng)
	return base, grown
}
