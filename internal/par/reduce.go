package par

// ReduceChunk is the fixed tile width Reduce folds over. It is a constant —
// not derived from the worker count — because the chunk grid is what makes a
// reduction deterministic: partial results exist per chunk, and the final
// merge walks chunks in ascending order, so the grouping of the fold is the
// same whether one goroutine or sixteen did the work. (A per-worker grouping
// would make floating-point merges depend on the width.)
const ReduceChunk = 2048

// Reduce folds fold over [0, n) and combines the per-chunk partial results
// with merge, in ascending chunk order, starting each chunk from identity.
//
// The result is bit-identical for every worker count even when merge is not
// commutative or not associative-with-fold, because the chunk grid is fixed
// (see ReduceChunk) and the merge order is fixed. The only requirement is the
// obvious one: fold and merge must be pure with respect to shared state.
func Reduce[T any](workers, n int, identity T, fold func(acc T, i int) T, merge func(a, b T) T) T {
	if n <= 0 {
		return identity
	}
	nChunks := (n + ReduceChunk - 1) / ReduceChunk
	if nChunks == 1 {
		acc := identity
		for i := 0; i < n; i++ {
			acc = fold(acc, i)
		}
		return acc
	}
	partial := make([]T, nChunks)
	For(workers, nChunks, func(_, clo, chi int) {
		for c := clo; c < chi; c++ {
			lo, hi := c*ReduceChunk, (c+1)*ReduceChunk
			if hi > n {
				hi = n
			}
			acc := identity
			for i := lo; i < hi; i++ {
				acc = fold(acc, i)
			}
			partial[c] = acc
		}
	})
	out := identity
	for c := 0; c < nChunks; c++ {
		out = merge(out, partial[c])
	}
	return out
}
