package par

import "sort"

// Merger is the deterministic merge/select primitive under the parallel
// refiners' candidate scheduling: it evaluates one optional candidate per
// index of a parallel loop and hands them back as a single list in a
// caller-defined total order. The zero value is ready to use; the slice
// returned by Collect aliases the scratch and is valid until the next call.
// A Merger is not safe for concurrent use.
type Merger[T any] struct {
	vals []T
	keep []bool
	out  []T
}

// Collect runs gen(i) for every i in [0, n) over `workers` goroutines
// (<= 0 selects GOMAXPROCS), keeping the values for which gen reported true,
// and returns them sorted by less. gen must be a pure function of i and
// round-start state — it may write only locations owned by i plus its own
// locals — which is the standard For contract.
//
// The result is then independent of the worker count and schedule by
// construction: each candidate lands in its index-owned slot, the kept ones
// are compacted serially in ascending index order, and when less is a strict
// total order (no two kept candidates compare equal both ways) the sort has
// exactly one fixed point. The parallel FM pass feeds this a
// (gain descending, node id ascending) order, which is total because ids are
// distinct.
func (m *Merger[T]) Collect(workers, n int, gen func(i int) (T, bool), less func(a, b T) bool) []T {
	if cap(m.vals) < n {
		m.vals = make([]T, n)
		m.keep = make([]bool, n)
	}
	vals, keep := m.vals[:n], m.keep[:n]
	For(workers, n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			vals[i], keep[i] = gen(i)
		}
	})
	out := m.out[:0]
	for i := 0; i < n; i++ {
		if keep[i] {
			out = append(out, vals[i])
		}
	}
	m.out = out
	sort.Slice(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out
}
