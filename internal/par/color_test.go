package par

import (
	"fmt"
	"math/rand"
	"testing"
)

// randAdj builds a symmetric adjacency list for n nodes with roughly avgDeg
// neighbors each.
func randAdj(n, avgDeg int, seed int64) [][]int {
	rng := rand.New(rand.NewSource(seed))
	adj := make([][]int, n)
	edges := n * avgDeg / 2
	for e := 0; e < edges; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	}
	return adj
}

func visitFn(adj [][]int) func(v int, visit func(u int)) {
	return func(v int, visit func(u int)) {
		for _, u := range adj[v] {
			visit(u)
		}
	}
}

func TestColorIsProper(t *testing.T) {
	for _, n := range []int{1, 2, 17, 300, 2000} {
		adj := randAdj(n, 6, int64(n))
		colors := Color(4, n, visitFn(adj))
		for v := 0; v < n; v++ {
			if colors[v] < 0 {
				t.Fatalf("n=%d: node %d left uncolored", n, v)
			}
			for _, u := range adj[v] {
				if u != v && colors[u] == colors[v] {
					t.Fatalf("n=%d: adjacent nodes %d and %d share color %d", n, v, u, colors[v])
				}
			}
		}
	}
}

func TestColorBitIdenticalAcrossWorkers(t *testing.T) {
	n := 1500
	adj := randAdj(n, 8, 42)
	ref := Color(1, n, visitFn(adj))
	for _, workers := range []int{2, 4, 8, 0} {
		got := Color(workers, n, visitFn(adj))
		for v := range got {
			if got[v] != ref[v] {
				t.Fatalf("workers=%d: node %d colored %d, reference %d", workers, v, got[v], ref[v])
			}
		}
	}
}

func TestColorUsesFewColorsOnPath(t *testing.T) {
	// A path is 2-colorable; greedy JP may use a couple more, but a blowup
	// would signal a broken round structure.
	n := 1000
	adj := make([][]int, n)
	for v := 0; v+1 < n; v++ {
		adj[v] = append(adj[v], v+1)
		adj[v+1] = append(adj[v+1], v)
	}
	colors := Color(4, n, visitFn(adj))
	max := int32(0)
	for _, c := range colors {
		if c > max {
			max = c
		}
	}
	if max > 3 {
		t.Errorf("path graph used %d colors", max+1)
	}
}

func TestColorEmpty(t *testing.T) {
	if got := Color(4, 0, func(int, func(int)) {}); len(got) != 0 {
		t.Errorf("empty graph returned %v", got)
	}
}

func TestReduceSum(t *testing.T) {
	n := 10_000
	want := n * (n - 1) / 2
	for _, workers := range []int{1, 2, 4, 8, 0} {
		got := Reduce(workers, n, 0,
			func(acc, i int) int { return acc + i },
			func(a, b int) int { return a + b })
		if got != want {
			t.Fatalf("workers=%d: sum %d, want %d", workers, got, want)
		}
	}
}

// A non-commutative merge (string concatenation) exposes any dependence of
// the merge order on the worker count: the fixed chunk grid must yield the
// ascending-chunk concatenation for every width.
func TestReduceDeterministicNonCommutativeMerge(t *testing.T) {
	n := 3*ReduceChunk + 7
	run := func(workers int) string {
		return Reduce(workers, n, "",
			func(acc string, i int) string {
				if i%ReduceChunk == 0 {
					return acc + fmt.Sprintf("[%d]", i/ReduceChunk)
				}
				return acc
			},
			func(a, b string) string { return a + b })
	}
	ref := run(1)
	if ref != "[0][1][2][3]" {
		t.Fatalf("unexpected reference %q", ref)
	}
	for _, workers := range []int{2, 4, 8, 0} {
		if got := run(workers); got != ref {
			t.Fatalf("workers=%d: %q != %q", workers, got, ref)
		}
	}
}

func TestReduceEmpty(t *testing.T) {
	got := Reduce(4, 0, -1, func(acc, i int) int { return 0 }, func(a, b int) int { return 0 })
	if got != -1 {
		t.Errorf("empty reduce returned %d, want identity", got)
	}
}
