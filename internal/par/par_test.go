package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 7, 64} {
		for _, n := range []int{0, 1, 2, 17, 1000} {
			hits := make([]atomic.Int32, n)
			For(workers, n, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					hits[i].Add(1)
				}
			})
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestForWorkerIDsAreDistinctAndInRange(t *testing.T) {
	const workers, n = 4, 4096
	var used [workers]atomic.Int32
	For(workers, n, func(worker, lo, hi int) {
		if worker < 0 || worker >= workers {
			t.Errorf("worker id %d out of range", worker)
		}
		used[worker].Add(1)
	})
	// Worker 0 (the caller) always participates.
	if used[0].Load() == 0 {
		t.Error("calling goroutine never ran a chunk")
	}
}

func TestForDeterministicOutput(t *testing.T) {
	// Writes confined to the owned range must give identical results for any
	// worker count.
	const n = 5000
	ref := make([]int, n)
	For(1, n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			ref[i] = i * i
		}
	})
	for _, workers := range []int{2, 3, 8} {
		out := make([]int, n)
		For(workers, n, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] = i * i
			}
		})
		for i := range out {
			if out[i] != ref[i] {
				t.Fatalf("workers=%d: index %d differs", workers, i)
			}
		}
	}
}

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
}
