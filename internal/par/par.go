// Package par provides the small data-parallel primitive the multilevel
// pipeline is built on: a chunked parallel for-loop whose output is
// independent of the worker count and of the scheduling order.
//
// Determinism is the caller's contract, not the scheduler's: every function
// handed to For must write only to locations owned by its index range, so
// which worker claims which chunk — and in what order — cannot influence the
// result. All users in this repository (matching proposals, contraction
// merges) follow that rule, which is what lets the Workers knobs promise
// bit-identical results for any value.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob: values <= 0 select GOMAXPROCS,
// anything else is returned unchanged.
func Workers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// For splits [0, n) into contiguous chunks and runs fn(worker, lo, hi) over
// them on `workers` goroutines (the calling goroutine included; workers <= 0
// selects GOMAXPROCS). Chunks are claimed dynamically from an atomic
// counter, so load balances automatically; worker is a stable index in
// [0, workers) identifying the executing goroutine, for per-worker scratch.
//
// fn must confine its writes to state owned by [lo, hi) (plus worker-indexed
// scratch): under that contract the result is identical for every worker
// count and schedule.
func For(workers, n int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = w(workers, n)
	if workers == 1 {
		fn(0, 0, n)
		return
	}
	// ~4 chunks per worker: coarse enough to amortize the claim, fine enough
	// to balance uneven chunk costs.
	chunk := (n + 4*workers - 1) / (4 * workers)
	var next atomic.Int64
	run := func(worker int) {
		for {
			lo := int(next.Add(int64(chunk))) - chunk
			if lo >= n {
				return
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			fn(worker, lo, hi)
		}
	}
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for i := 1; i < workers; i++ {
		go func(worker int) {
			defer wg.Done()
			run(worker)
		}(i)
	}
	run(0)
	wg.Wait()
}

// w caps the resolved worker count at n: a loop of n iterations can never
// use more than n workers.
func w(workers, n int) int {
	workers = Workers(workers)
	if workers > n {
		return n
	}
	return workers
}
