package par

import (
	"math/rand"
	"testing"
)

type collectCand struct {
	id   int
	gain float64
}

// The refiners' candidate order: gain descending, id ascending — a strict
// total order because ids are distinct.
func candLess(a, b collectCand) bool {
	if a.gain != b.gain {
		return a.gain > b.gain
	}
	return a.id < b.id
}

func TestMergerCollectWidthsIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(300)
		// Pure per-index candidate function: a hash-derived gain with heavy
		// ties (gains drawn from just 5 values) and ~1/3 dropped indices.
		gains := make([]float64, n)
		kept := make([]bool, n)
		for i := range gains {
			gains[i] = float64(rng.Intn(5))
			kept[i] = rng.Intn(3) != 0
		}
		gen := func(i int) (collectCand, bool) {
			return collectCand{id: i, gain: gains[i]}, kept[i]
		}
		var ref Merger[collectCand]
		want := append([]collectCand(nil), ref.Collect(1, n, gen, candLess)...)
		for _, workers := range []int{2, 3, 4, 8, 0} {
			var m Merger[collectCand]
			got := m.Collect(workers, n, gen, candLess)
			if len(got) != len(want) {
				t.Fatalf("workers=%d n=%d: %d candidates, want %d", workers, n, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("workers=%d n=%d: candidate %d = %+v, want %+v", workers, n, i, got[i], want[i])
				}
			}
		}
	}
}

func TestMergerCollectSortsTotalOrder(t *testing.T) {
	var m Merger[collectCand]
	gains := []float64{3, 1, 3, 2, 3, 1}
	out := m.Collect(2, len(gains), func(i int) (collectCand, bool) {
		return collectCand{id: i, gain: gains[i]}, true
	}, candLess)
	want := []collectCand{{0, 3}, {2, 3}, {4, 3}, {3, 2}, {1, 1}, {5, 1}}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("position %d: %+v, want %+v", i, out[i], want[i])
		}
	}
}

func TestMergerCollectReuse(t *testing.T) {
	// A shrinking second collection must not see stale kept slots from the
	// first.
	var m Merger[collectCand]
	m.Collect(2, 100, func(i int) (collectCand, bool) {
		return collectCand{id: i, gain: 1}, true
	}, candLess)
	out := m.Collect(2, 4, func(i int) (collectCand, bool) {
		return collectCand{id: i, gain: float64(i)}, i%2 == 0
	}, candLess)
	want := []collectCand{{2, 2}, {0, 0}}
	if len(out) != len(want) {
		t.Fatalf("got %d candidates, want %d", len(out), len(want))
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("position %d: %+v, want %+v", i, out[i], want[i])
		}
	}
}
