package par

// Color computes a proper coloring of the n-node graph whose adjacency is
// given by adj: adj(v, visit) must call visit(u) for every neighbor u of v
// (self-visits are ignored; the relation must be symmetric). It returns one
// color per node, 0-based and dense from 0.
//
// The algorithm is Jones–Plassmann over hashed-id priorities: in rounds, every
// uncolored node whose priority beats all of its uncolored neighbors takes the
// smallest color absent from its already-colored neighborhood. Decisions in a
// round read only the previous round's state and each node writes only its own
// slot, so the coloring — like everything built on package par — is
// bit-identical for every worker count and schedule. The priority hash is a
// fixed bijection of the node index, so ties cannot occur and the round
// structure is a pure function of the graph.
//
// The refiners use this on the boundary-induced subgraph of a partition: two
// nodes of one color class share no edge, so their candidate moves can be
// gain-evaluated concurrently without one move invalidating the other's cut
// deltas.
func Color(workers, n int, adj func(v int, visit func(u int))) []int32 {
	color := make([]int32, n)
	for i := range color {
		color[i] = -1
	}
	if n == 0 {
		return color
	}
	active := make([]int32, n)
	for i := range active {
		active[i] = int32(i)
	}
	decided := make([]int32, n)
	for len(active) > 0 {
		m := len(active)
		For(workers, m, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				v := int(active[i])
				pv := prio(v)
				wins := true
				adj(v, func(u int) {
					if u != v && color[u] < 0 && prio(u) > pv {
						wins = false
					}
				})
				if !wins {
					decided[i] = -1
					continue
				}
				decided[i] = smallestAbsent(v, color, adj)
			}
		})
		// Apply after all decisions: a round reads only pre-round colors.
		// Compaction preserves relative order, so the next round's active
		// list — and with it every fn(index) mapping — stays deterministic.
		next := active[:0]
		for i := 0; i < m; i++ {
			v := active[i]
			if decided[i] >= 0 {
				color[v] = decided[i]
			} else {
				next = append(next, v)
			}
		}
		active = next
	}
	return color
}

// smallestAbsent returns the smallest color not used by any colored neighbor
// of v. Colors below 64 are tracked in a bitmask; the rare higher ones (a
// node with 64+ distinctly-colored neighbors) fall back to a slice scan.
func smallestAbsent(v int, color []int32, adj func(v int, visit func(u int))) int32 {
	var mask uint64
	var high []int32
	adj(v, func(u int) {
		if c := color[u]; c >= 0 {
			if c < 64 {
				mask |= 1 << uint(c)
			} else {
				high = append(high, c)
			}
		}
	})
	for c := int32(0); ; c++ {
		if c < 64 {
			if mask&(1<<uint(c)) == 0 {
				return c
			}
			continue
		}
		used := false
		for _, h := range high {
			if h == c {
				used = true
				break
			}
		}
		if !used {
			return c
		}
	}
}

// prio is a splitmix64-style finalizer: a bijection on 64-bit integers, so
// distinct nodes always have distinct priorities and Jones–Plassmann rounds
// need no tie-breaking.
func prio(v int) uint64 {
	x := uint64(v) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
