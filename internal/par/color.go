package par

// Color computes a proper coloring of the n-node graph whose adjacency is
// given by adj: adj(v, visit) must call visit(u) for every neighbor u of v
// (self-visits are ignored; the relation must be symmetric). It returns one
// color per node, 0-based and dense from 0.
//
// The algorithm is Jones–Plassmann over hashed-id priorities: in rounds, every
// uncolored node whose priority beats all of its uncolored neighbors takes the
// smallest color absent from its already-colored neighborhood. Decisions in a
// round read only the previous round's state and each node writes only its own
// slot, so the coloring — like everything built on package par — is
// bit-identical for every worker count and schedule. The priority hash is a
// fixed bijection of the node index, so ties cannot occur and the round
// structure is a pure function of the graph.
//
// The refiners use this on the boundary-induced subgraph of a partition: two
// nodes of one color class share no edge, so their candidate moves can be
// gain-evaluated concurrently without one move invalidating the other's cut
// deltas.
//
// Color allocates its result and working buffers fresh; callers that color
// repeatedly (one tile at a time, pass after pass) should hold a ColorScratch
// and call its Color method instead.
func Color(workers, n int, adj func(v int, visit func(u int))) []int32 {
	var s ColorScratch
	return s.Color(workers, n, adj)
}

// ColorScratch owns Color's result and working buffers so repeated colorings
// recycle them. The zero value is ready to use. The slice returned by its
// Color method aliases the scratch and is valid until the next call; a
// scratch is not safe for concurrent use.
type ColorScratch struct {
	color   []int32
	active  []int32
	decided []int32
	workers []colorWorker
}

// colorWorker is one worker's per-round visitor state. The adjacency
// callbacks below are bound methods created once per worker chunk, not
// per node — with per-node closures, every visited node costs a heap
// allocation for the closure and its captured locals, which at a few hundred
// thousand boundary-node visits per refinement dominated the climber's
// allocation profile.
type colorWorker struct {
	v     int
	pv    uint64
	wins  bool
	color []int32
	mask  uint64
	high  []int32
}

// visitWins is the round's priority contest: v loses to any uncolored
// neighbor with higher priority.
func (w *colorWorker) visitWins(u int) {
	if u != w.v && w.color[u] < 0 && prio(u) > w.pv {
		w.wins = false
	}
}

// visitUsed records the colors of v's colored neighbors. Colors below 64
// are tracked in a bitmask; the rare higher ones (a node with 64+
// distinctly-colored neighbors) fall back to a slice scan.
func (w *colorWorker) visitUsed(u int) {
	if c := w.color[u]; c >= 0 {
		if c < 64 {
			w.mask |= 1 << uint(c)
		} else {
			w.high = append(w.high, c)
		}
	}
}

// smallestAbsent returns the smallest color not recorded by visitUsed.
func (w *colorWorker) smallestAbsent() int32 {
	for c := int32(0); ; c++ {
		if c < 64 {
			if w.mask&(1<<uint(c)) == 0 {
				return c
			}
			continue
		}
		used := false
		for _, h := range w.high {
			if h == c {
				used = true
				break
			}
		}
		if !used {
			return c
		}
	}
}

// Color is the package-level Color drawing the result and every working
// buffer from s; the two are bit-identical for all inputs and worker counts.
func (s *ColorScratch) Color(workers, n int, adj func(v int, visit func(u int))) []int32 {
	if cap(s.color) < n {
		s.color = make([]int32, n)
		s.active = make([]int32, n)
		s.decided = make([]int32, n)
	}
	color := s.color[:n]
	for i := range color {
		color[i] = -1
	}
	if n == 0 {
		return color
	}
	active := s.active[:n]
	for i := range active {
		active[i] = int32(i)
	}
	decided := s.decided[:n]
	w := Workers(workers)
	if len(s.workers) < w {
		s.workers = make([]colorWorker, w)
	}
	for len(active) > 0 {
		m := len(active)
		For(workers, m, func(worker, lo, hi int) {
			cw := &s.workers[worker]
			cw.color = color
			winsFn := cw.visitWins
			usedFn := cw.visitUsed
			for i := lo; i < hi; i++ {
				v := int(active[i])
				cw.v, cw.pv, cw.wins = v, prio(v), true
				adj(v, winsFn)
				if !cw.wins {
					decided[i] = -1
					continue
				}
				cw.mask, cw.high = 0, cw.high[:0]
				adj(v, usedFn)
				decided[i] = cw.smallestAbsent()
			}
		})
		// Apply after all decisions: a round reads only pre-round colors.
		// Compaction preserves relative order, so the next round's active
		// list — and with it every fn(index) mapping — stays deterministic.
		next := active[:0]
		for i := 0; i < m; i++ {
			v := active[i]
			if decided[i] >= 0 {
				color[v] = decided[i]
			} else {
				next = append(next, v)
			}
		}
		active = next
	}
	return color
}

// prio is a splitmix64-style finalizer: a bijection on 64-bit integers, so
// distinct nodes always have distinct priorities and Jones–Plassmann rounds
// need no tie-breaking.
func prio(v int) uint64 {
	x := uint64(v) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
