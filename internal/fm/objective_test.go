package fm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/partition"
)

// Under the maxcut objective, the kept prefix is scored by the worst-part
// delta: the returned gain must equal the actual max_q C(q) reduction, and
// the objective must never worsen.
func TestRefineMaxcutReducesWorstPart(t *testing.T) {
	g := gen.PaperGraph(167)
	rng := rand.New(rand.NewSource(3))
	for _, parts := range []int{2, 4, 8} {
		p := partition.RandomBalanced(g.NumNodes(), parts, rng)
		before := p.MaxPartCut(g)
		gain := Refine(g, p, Config{Objective: partition.WorstCut})
		after := p.MaxPartCut(g)
		if after > before {
			t.Errorf("parts=%d: max part cut worsened %v -> %v", parts, before, after)
		}
		if d := (before - after) - gain; math.Abs(d) > 1e-9 {
			t.Errorf("parts=%d: reported gain %v != actual reduction %v", parts, gain, before-after)
		}
	}
}

// On a state FM-converged for total cut, the maxcut objective must find a
// strictly better worst part on at least one of these seeds — otherwise the
// Objective knob is not steering the prefix selection at all.
func TestRefineMaxcutBeatsCutObjectiveSomewhere(t *testing.T) {
	improved := false
	for seed := int64(1); seed <= 6; seed++ {
		g := gen.PowerLaw(500, 3, seed)
		rng := rand.New(rand.NewSource(seed))
		p := partition.RandomBalanced(g.NumNodes(), 4, rng)
		q := p.Clone()
		Refine(g, p, Config{})
		Refine(g, q, Config{Objective: partition.WorstCut})
		if q.MaxPartCut(g) < p.MaxPartCut(g) {
			improved = true
			break
		}
	}
	if !improved {
		t.Error("maxcut-objective FM never beat cut-objective FM's max_part_cut on any seed")
	}
}

// The Workers knob stays a pure speed knob under the maxcut objective.
func TestRefineMaxcutWorkersBitIdentical(t *testing.T) {
	g := gen.Mesh(900, 21)
	rng := rand.New(rand.NewSource(22))
	start := partition.RandomBalanced(g.NumNodes(), 8, rng)

	ref := start.Clone()
	refGain := Refine(g, ref, Config{Objective: partition.WorstCut, Workers: 1})
	for _, w := range []int{2, 4, 8, 0} {
		p := start.Clone()
		gain := Refine(g, p, Config{Objective: partition.WorstCut, Workers: w})
		if gain != refGain {
			t.Fatalf("workers=%d: gain %v != serial %v", w, gain, refGain)
		}
		for v := range ref.Assign {
			if ref.Assign[v] != p.Assign[v] {
				t.Fatalf("workers=%d: node %d in part %d, serial %d", w, v, p.Assign[v], ref.Assign[v])
			}
		}
	}
}

// FM cannot run the comm-volume objective (its lazily-materialized
// connectivity rows go stale on locked neighbors); handing it one anyway is a
// programming error that must fail loudly, not silently optimize the cut.
func TestRefineCommVolPanics(t *testing.T) {
	g := gen.Mesh(40, 5)
	p := partition.RandomBalanced(g.NumNodes(), 2, rand.New(rand.NewSource(1)))
	defer func() {
		if recover() == nil {
			t.Error("RefineEval accepted the CommVolume objective")
		}
	}()
	Refine(g, p, Config{Objective: partition.CommVolume})
}
