// Package fm implements Fiduccia–Mattheyses-style k-way refinement with
// bucket-sorted gains: the linear-time counterpart of package kl's simple
// hill climber. One FM pass moves each node at most once, always the
// highest-gain legal move (respecting a balance constraint), and keeps the
// best prefix of the move sequence — so it can climb out of local optima
// that pure steepest-descent cannot.
//
// The paper's GA uses boundary hill climbing (kl.HillClimb); FM is the
// stronger refinement used by the multilevel pipeline (the paper's "prior
// graph contraction" outlook) and by the ablation benchmarks.
package fm

import (
	"math"

	"repro/internal/graph"
	"repro/internal/kl"
	"repro/internal/par"
	"repro/internal/partition"
)

// seedBuffers resizes the per-pass seeding scratch.
func seedBuffers(to []int32, gain []float64, n int) ([]int32, []float64) {
	if cap(to) < n {
		return make([]int32, n), make([]float64, n)
	}
	return to[:n], gain[:n]
}

// Config bounds a refinement run.
type Config struct {
	// MaxPasses caps the number of full FM passes; 0 means until no pass
	// improves (at most 16, a safety bound).
	MaxPasses int
	// BalanceSlack is the allowed deviation of any part's node count from
	// the ideal n/parts, in nodes. 0 selects ceil(2% of ideal)+1.
	BalanceSlack int
	// Workers bounds the goroutines each pass's heap seeding — the
	// connectivity-row materialization and best-candidate scan over the
	// whole boundary — may use (<= 0 selects GOMAXPROCS). A pure speed knob:
	// candidates are pushed serially in ascending node order afterwards, so
	// the heap, the move sequence, and the result are bit-identical to the
	// serial pass at every width.
	Workers int
	// Objective selects which cost the best-prefix selection minimizes. The
	// zero value (TotalCut) is the historical FM, byte for byte: moves pop in
	// cut-gain order and the kept prefix maximizes cumulative cut reduction.
	// WorstCut keeps the same pop order (the cut gain is a visit-order
	// heuristic there) but scores each applied move by the max_q C(q) delta
	// it causes, so the kept prefix is the one that most reduced the worst
	// part's cut. CommVolume is not supported: FM's lazily-materialized
	// connectivity rows go stale on locked neighbors, which the cut deltas
	// tolerate but distinct-part counting does not — the registry's declared
	// objective constraints route commvol to the KL refiners instead, and
	// RefineEval panics if handed it anyway.
	Objective partition.Objective
	// Stop, when non-nil, is polled before each pass; a refinement whose
	// Stop reports true returns early with the gain applied so far. Pass
	// boundaries are consistent states (every kept move went through ev),
	// so early return yields a valid, just less refined, partition.
	Stop func() bool
	// Scratch, when non-nil, supplies the refinement's working memory —
	// the Theta(n*parts) connectivity table, the gain heap, the move log —
	// so repeated refinements (one per uncoarsening level, or one per run in
	// a bench loop) recycle buffers instead of reallocating them. The
	// buffers grow to the largest refinement served and carry a monotonic
	// pass counter, so stale state from earlier uses can never validate;
	// results are bit-identical with and without one. A Scratch is not safe
	// for concurrent use.
	Scratch *Scratch
}

// Scratch owns RefineEval's working state across calls. The zero value is
// ready to use; see Config.Scratch.
type Scratch struct {
	s scratch
}

// Reserve grows the scratch's buffers for an (n, parts) refinement without
// running one. Callers that refine a hierarchy from coarse to fine — where
// every level's natural grow step would reallocate the Theta(n*parts)
// connectivity table — reserve the finest level's size once so the whole
// unwind reuses a single allocation. Reserving changes no result: capacity
// is invisible to the algorithm.
func (s *Scratch) Reserve(n, parts int) {
	s.s.grow(n, parts)
}

// Refine improves p in place, minimizing the edge cut subject to the
// balance constraint, and returns the total cut reduction.
func Refine(g *graph.Graph, p *partition.Partition, cfg Config) float64 {
	return RefineEval(g, p, nil, cfg)
}

// RefineEval is Refine for callers that track the partition's cached
// aggregates: every move kept by a pass is applied through ev, so ev stays
// exactly in sync with p at O(deg) per kept move and never needs a rescan.
// The multilevel pipeline relies on this to carry one Eval across FM
// refinement at every uncoarsening level. A nil ev is rebuilt from p with
// boundary tracking enabled.
//
// When ev tracks the boundary set, each pass seeds its gain heap from that
// set instead of scanning all n nodes, and per-node connectivity rows are
// materialized lazily as the pass spreads outward from the boundary — the
// expensive work (connectivity scans, heap traffic) scales with the
// boundary region a pass actually touches, leaving only two O(n)
// housekeeping scans (the working-assignment copy and the part-size count)
// per pass, with the Theta(n*parts) connectivity storage allocated once per
// refinement and reset lazily between passes. The move sequence (and
// therefore the result) is bit-identical to the historical full-scan pass,
// because non-boundary nodes never produced heap candidates in the first
// place.
func RefineEval(g *graph.Graph, p *partition.Partition, ev *partition.Eval, cfg Config) float64 {
	if cfg.Objective == partition.CommVolume {
		panic("fm: CommVolume objective is not supported (use the kl refiners)")
	}
	maxPasses := cfg.MaxPasses
	if maxPasses <= 0 {
		maxPasses = 16
	}
	n := g.NumNodes()
	if n == 0 || p.Parts < 2 {
		return 0
	}
	if ev == nil {
		ev = partition.NewEvalBoundary(g, p)
	}
	ideal := float64(n) / float64(p.Parts)
	slack := cfg.BalanceSlack
	if slack <= 0 {
		slack = int(math.Ceil(ideal/50)) + 1
	}
	minSize := int(math.Floor(ideal)) - slack
	if minSize < 0 {
		minSize = 0
	}
	maxSize := int(math.Ceil(ideal)) + slack

	var s *scratch
	if cfg.Scratch != nil {
		s = &cfg.Scratch.s
		s.grow(n, p.Parts)
	} else {
		s = newScratch(n, p.Parts)
	}
	var total float64
	for pass := 0; pass < maxPasses; pass++ {
		if cfg.Stop != nil && cfg.Stop() {
			break
		}
		gain := onePass(g, p, ev, minSize, maxSize, s, cfg.Workers, cfg.Objective)
		total += gain
		if gain <= 0 {
			break
		}
	}
	return total
}

// scratch is the per-refinement working state shared across passes, so a
// multi-pass run pays the Theta(n*parts) connectivity allocation once
// instead of once per pass. Validity is stamped with the pass number
// (connPass, lockPass), so "reset" between passes is a counter increment,
// never an O(n*parts) zeroing sweep — stale rows are zeroed one at a time
// if and when a pass actually touches them.
type scratch struct {
	pass      int32
	conn      []float64 // conn[v*parts+q]: weight of v's edges into part q
	connPass  []int32   // row v is valid iff connPass[v] == pass
	lockPass  []int32   // v is locked iff lockPass[v] == pass
	stamp     []int     // heap staleness guard, 0-based within each pass
	stampPass []int32   // stamp[v] is current-pass iff stampPass[v] == pass
	work      *partition.Partition
	heap      candHeap
	log       []move
	seedTo    []int32   // parallel seeding: best destination per seed node
	seedGain  []float64 // ... and its gain (-1 destination = no candidate)
	seeds     []int     // boundary snapshot buffer, one per pass
	cuts      []float64 // WorstCut: tentative per-part cuts along the pass's move sequence

	// Parallel-pass (RefineEvalPar) state, grown by growPar only when the
	// parallel refiner runs; see fmpar.go. The generation counters are
	// monotonic for the same reason pass is: stale marks — even ones
	// uncovered by regrowth — can never equal a future generation.
	classes   kl.Classes          // per-round coloring of the frontier
	merger    par.Merger[parCand] // per-class deterministic candidate merge
	frontier  []int               // current round's eligible nodes, ascending
	next      []int               // next round's frontier under construction
	nextMark  []int32             // nextMark[v] == nextGen: already in next
	nextGen   int32
	movedV    []int32 // nodes committed by the current class batch
	movedMark []int32 // movedMark[v] == movedGen: v moved in this batch
	movedGen  int32
	movedFrom []uint16 // the batch's move endpoints, keyed by node
	movedTo   []uint16
	affected  []int32 // movers' neighbors with live rows, dedup'd per batch
	affMark   []int32 // affMark[v] == affGen: already in affected
	affGen    int32
	sizes     []int // live part sizes along the parallel pass
}

func newScratch(n, parts int) *scratch {
	return &scratch{
		conn:      make([]float64, n*parts),
		connPass:  make([]int32, n),
		lockPass:  make([]int32, n),
		stamp:     make([]int, n),
		stampPass: make([]int32, n),
		work:      partition.New(n, parts),
	}
}

// grow resizes the scratch for an (n, parts) refinement, reusing capacity.
// The pass counter is never reset, so stamps from earlier (even larger)
// refinements can never equal a new pass's stamp: reused pass-stamped state
// is invalid by construction, and conn rows are re-zeroed lazily on first
// touch exactly as within a single refinement. Freshly grown regions are
// zero, which the monotonically positive pass counter also reads as stale.
func (s *scratch) grow(n, parts int) {
	if cap(s.conn) < n*parts {
		s.conn = make([]float64, n*parts)
	} else {
		s.conn = s.conn[:n*parts]
	}
	if cap(s.connPass) < n {
		s.connPass = make([]int32, n)
		s.lockPass = make([]int32, n)
		s.stamp = make([]int, n)
		s.stampPass = make([]int32, n)
	} else {
		s.connPass = s.connPass[:n]
		s.lockPass = s.lockPass[:n]
		s.stamp = s.stamp[:n]
		s.stampPass = s.stampPass[:n]
	}
	if s.work == nil || s.work.Parts != parts || cap(s.work.Assign) < n {
		s.work = partition.New(n, parts)
	} else {
		s.work.Assign = s.work.Assign[:n]
	}
}

// ensureConn materializes v's connectivity row against work's assignment:
// computed (and its stale contents zeroed) on first touch in a pass, updated
// incrementally afterwards. It writes only v-owned state (the row and its
// pass stamp), so concurrent calls on distinct nodes are safe.
func (s *scratch) ensureConn(g *graph.Graph, work *partition.Partition, parts, v int) {
	if s.connPass[v] == s.pass {
		return
	}
	s.connPass[v] = s.pass
	row := s.conn[v*parts : (v+1)*parts]
	for q := range row {
		row[q] = 0
	}
	ws := g.EdgeWeights(v)
	for i, u := range g.Neighbors(v) {
		row[work.Assign[u]] += ws[i]
	}
}

// bestOf scans v's (already materialized) connectivity row for the best
// candidate move — shared by the serial pass's heap traffic and the parallel
// pass's candidate evaluation, so the candidate-selection rules exist exactly
// once.
func (s *scratch) bestOf(work *partition.Partition, parts, v int) (int32, float64) {
	from := int(work.Assign[v])
	row := s.conn[v*parts : (v+1)*parts]
	base := row[from]
	bestTo, bestGain := int32(-1), math.Inf(-1)
	for q := 0; q < parts; q++ {
		if q == from || row[q] == 0 {
			continue // only move toward parts v touches (boundary moves)
		}
		if gainQ := row[q] - base; gainQ > bestGain {
			bestTo, bestGain = int32(q), gainQ
		}
	}
	return bestTo, bestGain
}

// move is one entry of the FM move log.
type move struct {
	v        int
	from, to int
	gain     float64
}

// runningMax tracks max(0, max_q cuts[q]) across incremental updates — the
// quantity WorstCut scoring charges each applied move with — in O(1) per
// update instead of the two O(parts) full scans per move the scoring
// historically paid. It keeps the current maximum and how many entries sit
// exactly at it; only when the unique maximum decreases does it rescan, so a
// pass's total rescan work is bounded by the moves that actually lower the
// worst part (the ones the objective is hunting). All comparisons are the
// scan's own float comparisons on the same values, so the tracked max — and
// with it every move's score and the kept prefix — is bit-identical to the
// scanned one.
type runningMax struct {
	max  float64 // current max over the entries (not clamped)
	nMax int     // entries equal to max
}

func (m *runningMax) reset(cuts []float64) {
	m.max, m.nMax = math.Inf(-1), 0
	for _, c := range cuts {
		if c > m.max {
			m.max, m.nMax = c, 1
		} else if c == m.max {
			m.nMax++
		}
	}
}

// apply adds d to cuts[q] and restores the max invariant.
func (m *runningMax) apply(cuts []float64, q int, d float64) {
	old := cuts[q]
	now := old + d
	cuts[q] = now
	if old == m.max {
		m.nMax--
	}
	if now > m.max {
		m.max, m.nMax = now, 1
	} else if now == m.max {
		m.nMax++
	}
	if m.nMax == 0 {
		m.reset(cuts)
	}
}

// cur returns the tracked maximum with the historical scan's floor: the scan
// accumulated into a 0.0 start, so an all-below-zero (or empty) cut vector
// reads as 0.
func (m *runningMax) cur() float64 {
	if m.max > 0 {
		return m.max
	}
	return 0
}

// cand is a prioritized candidate move.
type cand struct {
	v    int
	to   int
	gain float64
	// stamp guards against stale heap entries: a candidate is valid only if
	// it carries the node's current stamp.
	stamp int
}

// candHeap is a max-heap on gain with value-typed push/pop. It deliberately
// avoids container/heap: boxing each cand into an interface{} allocated on
// every push, and the push/pop stream is the hottest loop of a pass
// (hundreds of thousands of operations on a 10k-node graph).
type candHeap []cand

func (h *candHeap) push(c cand) {
	*h = append(*h, c)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent].gain >= s[i].gain {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

func (h *candHeap) pop() cand {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < len(s) && s[l].gain > s[largest].gain {
			largest = l
		}
		if r < len(s) && s[r].gain > s[largest].gain {
			largest = r
		}
		if largest == i {
			break
		}
		s[i], s[largest] = s[largest], s[i]
		i = largest
	}
	return top
}

// onePass runs one FM pass and returns the cut improvement kept; the kept
// moves are applied through ev so it tracks p.
//
// conn[v*parts+q] — the total weight of v's edges into part q, against the
// pass's working assignment — is materialized lazily: a node's row is
// computed (and its stale contents zeroed) on first touch in a pass and
// updated incrementally afterwards. When ev tracks the boundary, the heap
// is seeded from that set and the pass's connectivity work never reaches
// the interior at all; a node whose neighbors all share its part has no
// candidate move, so the lazily-seeded heap holds exactly the candidates
// the historical full scan produced, in the same order.
//
// Seeding is the pass's data-parallel half: each seed node's connectivity
// row and best candidate are a pure function of the pass-start working
// assignment and every node owns its own row, so they are computed over
// `workers` goroutines; the candidates are then pushed serially in
// ascending node order — the exact heap the serial seed loop builds. The
// pop/commit loop that follows stays serial (each move reorders the heap
// the next pop reads), which is why the multilevel pipeline pairs FM with
// the colored KL climb rather than relying on FM alone for parallel work.
func onePass(g *graph.Graph, p *partition.Partition, ev *partition.Eval, minSize, maxSize int, s *scratch, workers int, o partition.Objective) float64 {
	n := g.NumNodes()
	parts := p.Parts

	s.pass++
	work := s.work
	copy(work.Assign, p.Assign)
	ensureConn := func(v int) { s.ensureConn(g, work, parts, v) }
	sizes := p.PartSizes()
	locked := func(v int) bool { return s.lockPass[v] == s.pass }
	// stamp values restart at 0 each pass; the reset is lazy (stamped with
	// the pass number) so it costs nothing for untouched nodes.
	stampOf := func(v int) int {
		if s.stampPass[v] != s.pass {
			s.stampPass[v] = s.pass
			s.stamp[v] = 0
		}
		return s.stamp[v]
	}
	bumpStamp := func(v int) int {
		s.stamp[v] = stampOf(v) + 1
		return s.stamp[v]
	}

	h := &s.heap
	*h = (*h)[:0]
	pushBest := func(v int) {
		ensureConn(v)
		if to, gain := s.bestOf(work, parts, v); to >= 0 {
			h.push(cand{v: v, to: int(to), gain: gain, stamp: stampOf(v)})
		}
	}
	// seedBest is pushBest's scan without the push, for the parallel
	// seeding phase: ensureConn and bestOf touch only v-owned state, so
	// concurrent calls on distinct nodes are safe.
	seedBest := func(v int) (int32, float64) {
		ensureConn(v)
		return s.bestOf(work, parts, v)
	}
	if ev.TracksBoundary() {
		s.seeds = ev.AppendBoundary(s.seeds)
		seeds := s.seeds
		s.seedTo, s.seedGain = seedBuffers(s.seedTo, s.seedGain, len(seeds))
		par.For(workers, len(seeds), func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				s.seedTo[i], s.seedGain[i] = seedBest(seeds[i])
			}
		})
		for i, v := range seeds {
			if s.seedTo[i] >= 0 {
				h.push(cand{v: v, to: int(s.seedTo[i]), gain: s.seedGain[i], stamp: stampOf(v)})
			}
		}
	} else {
		s.seedTo, s.seedGain = seedBuffers(s.seedTo, s.seedGain, n)
		par.For(workers, n, func(_, lo, hi int) {
			for v := lo; v < hi; v++ {
				s.seedTo[v], s.seedGain[v] = seedBest(v)
			}
		})
		for v := 0; v < n; v++ {
			if s.seedTo[v] >= 0 {
				h.push(cand{v: v, to: int(s.seedTo[v]), gain: s.seedGain[v], stamp: stampOf(v)})
			}
		}
	}

	log := s.log[:0]
	var cum, bestCum float64
	bestK := 0
	// WorstCut: the applied prefix's per-part cuts, evolved move by move so
	// each move's max_q C(q) delta is exact against the moves before it. Only
	// C(from) and C(to) change on a move — v's cut edges into any third part
	// stay cut on both sides.
	var cuts []float64
	var cmax runningMax
	if o == partition.WorstCut {
		cuts = append(s.cuts[:0], ev.Cuts...)
		s.cuts = cuts
		cmax.reset(cuts)
	}
	for len(*h) > 0 {
		c := h.pop()
		v := c.v
		if locked(v) || c.stamp != stampOf(v) {
			continue // stale entry
		}
		from := int(work.Assign[v])
		if c.to == from {
			continue
		}
		// Balance legality.
		if sizes[from]-1 < minSize || sizes[c.to]+1 > maxSize {
			// Illegal now; it may become legal after other moves, so
			// re-stamp and re-push once.
			bumpStamp(v)
			pushBest(v)
			// Avoid infinite loops: lock if it bounced too many times.
			if s.stamp[v] > 2*parts {
				s.lockPass[v] = s.pass
			}
			continue
		}
		// Apply the move.
		s.lockPass[v] = s.pass
		work.Assign[v] = uint16(c.to)
		sizes[from]--
		sizes[c.to]++
		if o == partition.WorstCut {
			// Score by the worst-part delta, computed from v's (current)
			// connectivity row. The heap ordered by cut gain is a visit-order
			// heuristic here; the best-prefix selection below is what the
			// objective actually steers.
			row := s.conn[v*parts : (v+1)*parts]
			var rowSum float64
			for _, w := range row {
				rowSum += w
			}
			// The row already reflects the move (work.Assign[v] changed after
			// the neighbors' rows were updated, but v's own row keys on its
			// neighbors' parts, which the move does not touch).
			wFrom, wTo := row[from], row[c.to]
			wOther := rowSum - wFrom - wTo
			dFrom := wFrom - wTo - wOther
			dTo := wFrom - wTo + wOther
			curMax := cmax.cur()
			cmax.apply(cuts, from, dFrom)
			cmax.apply(cuts, c.to, dTo)
			cum += curMax - cmax.cur()
		} else {
			cum += c.gain
		}
		log = append(log, move{v: v, from: from, to: c.to, gain: c.gain})
		if cum > bestCum {
			bestCum, bestK = cum, len(log)
		}
		// Update neighbors' connectivity and re-queue them. A neighbor whose
		// row is not yet materialized needs no delta: its lazy scan already
		// sees v in its new part.
		ws := g.EdgeWeights(v)
		for i, u := range g.Neighbors(v) {
			if locked(int(u)) {
				continue
			}
			if s.connPass[u] == s.pass {
				s.conn[int(u)*parts+from] -= ws[i]
				s.conn[int(u)*parts+c.to] += ws[i]
			}
			bumpStamp(int(u))
			pushBest(int(u))
		}
	}
	s.log = log
	if bestK == 0 {
		return 0
	}
	// Keep the best prefix. Moves are replayed in pass order, so each node's
	// current part matches the logged `from` when its move applies.
	for _, m := range log[:bestK] {
		ev.Move(g, p, m.v, m.to)
	}
	return bestCum
}
