// Package fm implements Fiduccia–Mattheyses-style k-way refinement with
// bucket-sorted gains: the linear-time counterpart of package kl's simple
// hill climber. One FM pass moves each node at most once, always the
// highest-gain legal move (respecting a balance constraint), and keeps the
// best prefix of the move sequence — so it can climb out of local optima
// that pure steepest-descent cannot.
//
// The paper's GA uses boundary hill climbing (kl.HillClimb); FM is the
// stronger refinement used by the multilevel pipeline (the paper's "prior
// graph contraction" outlook) and by the ablation benchmarks.
package fm

import (
	"math"

	"repro/internal/graph"
	"repro/internal/partition"
)

// Config bounds a refinement run.
type Config struct {
	// MaxPasses caps the number of full FM passes; 0 means until no pass
	// improves (at most 16, a safety bound).
	MaxPasses int
	// BalanceSlack is the allowed deviation of any part's node count from
	// the ideal n/parts, in nodes. 0 selects ceil(2% of ideal)+1.
	BalanceSlack int
}

// Refine improves p in place, minimizing the edge cut subject to the
// balance constraint, and returns the total cut reduction.
func Refine(g *graph.Graph, p *partition.Partition, cfg Config) float64 {
	return RefineEval(g, p, nil, cfg)
}

// RefineEval is Refine for callers that track the partition's cached
// aggregates: every move kept by a pass is applied through ev, so ev stays
// exactly in sync with p at O(deg) per kept move and never needs a rescan.
// The multilevel pipeline relies on this to carry one Eval across FM
// refinement at every uncoarsening level. ev may be nil.
func RefineEval(g *graph.Graph, p *partition.Partition, ev *partition.Eval, cfg Config) float64 {
	maxPasses := cfg.MaxPasses
	if maxPasses <= 0 {
		maxPasses = 16
	}
	n := g.NumNodes()
	if n == 0 || p.Parts < 2 {
		return 0
	}
	ideal := float64(n) / float64(p.Parts)
	slack := cfg.BalanceSlack
	if slack <= 0 {
		slack = int(math.Ceil(ideal/50)) + 1
	}
	minSize := int(math.Floor(ideal)) - slack
	if minSize < 0 {
		minSize = 0
	}
	maxSize := int(math.Ceil(ideal)) + slack

	var total float64
	for pass := 0; pass < maxPasses; pass++ {
		gain := onePass(g, p, ev, minSize, maxSize)
		total += gain
		if gain <= 0 {
			break
		}
	}
	return total
}

// move is one entry of the FM move log.
type move struct {
	v        int
	from, to int
	gain     float64
}

// cand is a prioritized candidate move.
type cand struct {
	v    int
	to   int
	gain float64
	// stamp guards against stale heap entries: a candidate is valid only if
	// it carries the node's current stamp.
	stamp int
}

// candHeap is a max-heap on gain with value-typed push/pop. It deliberately
// avoids container/heap: boxing each cand into an interface{} allocated on
// every push, and the push/pop stream is the hottest loop of a pass
// (hundreds of thousands of operations on a 10k-node graph).
type candHeap []cand

func (h *candHeap) push(c cand) {
	*h = append(*h, c)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent].gain >= s[i].gain {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

func (h *candHeap) pop() cand {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < len(s) && s[l].gain > s[largest].gain {
			largest = l
		}
		if r < len(s) && s[r].gain > s[largest].gain {
			largest = r
		}
		if largest == i {
			break
		}
		s[i], s[largest] = s[largest], s[i]
		i = largest
	}
	return top
}

// onePass runs one FM pass and returns the cut improvement kept. When ev is
// non-nil the kept moves are applied through it so it tracks p.
func onePass(g *graph.Graph, p *partition.Partition, ev *partition.Eval, minSize, maxSize int) float64 {
	n := g.NumNodes()
	parts := p.Parts

	// conn[v*parts+q] = total weight of v's edges into part q.
	conn := make([]float64, n*parts)
	for v := 0; v < n; v++ {
		ws := g.EdgeWeights(v)
		for i, u := range g.Neighbors(v) {
			conn[v*parts+int(p.Assign[u])] += ws[i]
		}
	}
	sizes := p.PartSizes()
	locked := make([]bool, n)
	stamp := make([]int, n)

	h := &candHeap{}
	pushBest := func(v int) {
		from := int(p.Assign[v])
		base := conn[v*parts+from]
		bestTo, bestGain := -1, math.Inf(-1)
		for q := 0; q < parts; q++ {
			if q == from || conn[v*parts+q] == 0 {
				continue // only move toward parts v touches (boundary moves)
			}
			if gainQ := conn[v*parts+q] - base; gainQ > bestGain {
				bestTo, bestGain = q, gainQ
			}
		}
		if bestTo >= 0 {
			h.push(cand{v: v, to: bestTo, gain: bestGain, stamp: stamp[v]})
		}
	}
	for v := 0; v < n; v++ {
		pushBest(v)
	}

	work := p.Clone()
	var log []move
	var cum, bestCum float64
	bestK := 0
	for len(*h) > 0 {
		c := h.pop()
		v := c.v
		if locked[v] || c.stamp != stamp[v] {
			continue // stale entry
		}
		from := int(work.Assign[v])
		if c.to == from {
			continue
		}
		// Balance legality.
		if sizes[from]-1 < minSize || sizes[c.to]+1 > maxSize {
			// Illegal now; it may become legal after other moves, so
			// re-stamp and re-push once.
			stamp[v]++
			pushBest(v)
			// Avoid infinite loops: lock if it bounced too many times.
			if stamp[v] > 2*parts {
				locked[v] = true
			}
			continue
		}
		// Apply the move.
		locked[v] = true
		work.Assign[v] = uint16(c.to)
		sizes[from]--
		sizes[c.to]++
		cum += c.gain
		log = append(log, move{v: v, from: from, to: c.to, gain: c.gain})
		if cum > bestCum {
			bestCum, bestK = cum, len(log)
		}
		// Update neighbors' connectivity and re-queue them.
		ws := g.EdgeWeights(v)
		for i, u := range g.Neighbors(v) {
			if locked[u] {
				continue
			}
			conn[int(u)*parts+from] -= ws[i]
			conn[int(u)*parts+c.to] += ws[i]
			stamp[u]++
			pushBest(int(u))
		}
	}
	if bestK == 0 {
		return 0
	}
	// Keep the best prefix. Moves are replayed in pass order, so each node's
	// current part matches the logged `from` when its move applies.
	for _, m := range log[:bestK] {
		if ev != nil {
			ev.Move(g, p, m.v, m.to)
		} else {
			p.Assign[m.v] = uint16(m.to)
		}
	}
	return bestCum
}
