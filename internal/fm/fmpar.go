// Deterministic-parallel FM: the (round, color, gain-order) move schedule
// that replaces the serial pass's single global heap.
//
// A serial FM pass is a chain — every pop reads the heap every commit just
// reordered — so it cannot parallelize as-is. The parallel pass substitutes
// a schedule whose expensive half is embarrassingly parallel and whose
// serial half is cheap, without weakening any of FM's semantics:
//
//	round:  snapshot the eligible frontier (initially the tracked boundary)
//	        and color its induced subgraph (kl.Classes over par.Color), so
//	        nodes within a color class share no edge;
//	color:  for each class in ascending color order, evaluate every member's
//	        connectivity row and best candidate move in parallel — a pure
//	        function of round-start state, since no class neighbor can move
//	        concurrently — and merge the candidates into one deterministic
//	        total order: gain descending, node id ascending (par.Merger);
//	commit: replay the ordered candidates serially against the live part
//	        sizes (and, under WorstCut, live per-part cuts) with the serial
//	        pass's balance-legality, bounce, lock, and best-prefix rules;
//	        then apply the batch's connectivity-row deltas to the movers'
//	        neighbors in parallel over disjoint rows (each node owns its
//	        row).
//
// One rule is deliberately stricter than the serial pass: a class's commits
// stop at the first negative-gain candidate. Serial FM can afford
// speculative downhill moves because the heap reorders after every commit,
// so each bad move is immediately followed by its best recovery and the
// best prefix brackets the excursion; a colored round commits a whole
// class's candidates before any neighbor reacts, which would pile up an
// entire class of unrecovered downhill moves and bury the good prefix
// mid-log (measured: ~2.3x worse cuts from random starts). Plateau moves
// (gain exactly 0) still commit, which preserves the serial pass's
// signature ability to slide across flat regions, and under WorstCut the
// cumulative score can still dip between rounds, so the best-prefix log
// remains load-bearing.
//
// Because intra-class members share no edge, a member's evaluated gain is
// still exact at its commit slot — earlier commits in the same class touched
// none of its neighbors — so the cumulative-gain curve, and with it the kept
// best prefix, is computed from exact deltas just like the serial pass. The
// schedule (which nodes commit, in what order) is a pure function of (graph,
// partition, objective): coloring, merging, and committing are
// width-independent by construction, so any Workers value reproduces the
// Workers=1 result bit for bit — the repository-wide contract — while the
// result may differ from serial FM's heap order (the two are distinct
// deterministic algorithms, like kl.HillClimbEval vs kl.HillClimbColored).
package fm

import (
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/partition"
)

// parCand is one frontier node's best candidate move, evaluated against
// round-start state.
type parCand struct {
	v    int32
	to   int32
	gain float64
}

// lessCand is the class commit order: gain descending, node id ascending —
// a strict total order because ids are distinct, which is what makes the
// merge's fixed point (and so the whole schedule) width-independent.
func lessCand(a, b parCand) bool {
	if a.gain != b.gain {
		return a.gain > b.gain
	}
	return a.v < b.v
}

// growPar sizes the parallel-pass scratch; grow(n, parts) must have run.
// Like grow, it reuses capacity and never resets the generation counters.
func (s *scratch) growPar(n, parts int) {
	if cap(s.nextMark) < n {
		s.nextMark = make([]int32, n)
		s.movedMark = make([]int32, n)
		s.affMark = make([]int32, n)
		s.movedFrom = make([]uint16, n)
		s.movedTo = make([]uint16, n)
	} else {
		s.nextMark = s.nextMark[:n]
		s.movedMark = s.movedMark[:n]
		s.affMark = s.affMark[:n]
		s.movedFrom = s.movedFrom[:n]
		s.movedTo = s.movedTo[:n]
	}
	if cap(s.sizes) < parts {
		s.sizes = make([]int, parts)
	} else {
		s.sizes = s.sizes[:parts]
	}
}

// RefinePar is Refine on the parallel (round, color, gain-order) schedule.
func RefinePar(g *graph.Graph, p *partition.Partition, cfg Config) float64 {
	return RefineEvalPar(g, p, nil, cfg)
}

// RefineEvalPar is the deterministic-parallel counterpart of RefineEval: the
// same pass structure (balance slack, one move per node per pass, plateau
// moves with best-prefix keep, applied through ev), but scheduled by the
// colored rounds described in the package comment above, so the per-move
// gain evaluation — the pass's dominant cost — runs over cfg.Workers
// goroutines. Results are bit-identical for every Workers value; they are
// NOT bit-identical to RefineEval (a different deterministic schedule, with
// cuts of the same character). Above Config.FMParThreshold the multilevel
// pipeline refines with this instead of RefineEval.
//
// Stop is polled before each pass and additionally between color rounds
// inside a pass; a mid-pass stop still applies the best prefix found so far
// through ev, so the early return leaves p and ev exactly in sync. Like
// RefineEval, it panics on the CommVolume objective (the registry routes
// commvol to the kl refiners) and rebuilds a nil or untracked ev with
// boundary tracking.
func RefineEvalPar(g *graph.Graph, p *partition.Partition, ev *partition.Eval, cfg Config) float64 {
	if cfg.Objective == partition.CommVolume {
		panic("fm: CommVolume objective is not supported (use the kl refiners)")
	}
	maxPasses := cfg.MaxPasses
	if maxPasses <= 0 {
		maxPasses = 16
	}
	n := g.NumNodes()
	if n == 0 || p.Parts < 2 {
		return 0
	}
	if ev == nil {
		ev = partition.NewEvalBoundaryPar(g, p, cfg.Workers)
	} else if !ev.TracksBoundary() {
		ev.ResetBoundaryPar(g, p, cfg.Workers)
	}
	ideal := float64(n) / float64(p.Parts)
	slack := cfg.BalanceSlack
	if slack <= 0 {
		slack = int(math.Ceil(ideal/50)) + 1
	}
	minSize := int(math.Floor(ideal)) - slack
	if minSize < 0 {
		minSize = 0
	}
	maxSize := int(math.Ceil(ideal)) + slack

	var s *scratch
	if cfg.Scratch != nil {
		s = &cfg.Scratch.s
		s.grow(n, p.Parts)
	} else {
		s = newScratch(n, p.Parts)
	}
	s.growPar(n, p.Parts)
	workers := par.Workers(cfg.Workers)
	var total float64
	for pass := 0; pass < maxPasses; pass++ {
		if cfg.Stop != nil && cfg.Stop() {
			break
		}
		gain, stopped := onePassPar(g, p, ev, minSize, maxSize, s, workers, cfg.Objective, cfg.Stop)
		total += gain
		if stopped || gain <= 0 {
			break
		}
	}
	return total
}

// onePassPar runs one colored-schedule FM pass and returns the improvement
// kept plus whether Stop cut the pass short; kept moves are applied through
// ev either way, so pass exits are always consistent states.
func onePassPar(g *graph.Graph, p *partition.Partition, ev *partition.Eval, minSize, maxSize int, s *scratch, workers int, o partition.Objective, stop func() bool) (float64, bool) {
	parts := p.Parts
	s.pass++
	work := s.work
	copy(work.Assign, p.Assign)
	sizes := s.sizes
	for q := range sizes {
		sizes[q] = 0
	}
	for _, q := range work.Assign {
		sizes[q]++
	}
	locked := func(v int) bool { return s.lockPass[v] == s.pass }
	// The serial pass's lazily-reset bounce budget, reused verbatim: stamps
	// restart at 0 on first touch per pass.
	bounce := func(v int) int {
		if s.stampPass[v] != s.pass {
			s.stampPass[v] = s.pass
			s.stamp[v] = 0
		}
		s.stamp[v]++
		return s.stamp[v]
	}

	s.frontier = ev.AppendBoundary(s.frontier)
	frontier := s.frontier
	log := s.log[:0]
	var cum, bestCum float64
	bestK := 0
	var cuts []float64
	var cmax runningMax
	if o == partition.WorstCut {
		cuts = append(s.cuts[:0], ev.Cuts...)
		s.cuts = cuts
		cmax.reset(cuts)
	}
	stopped := false

	for len(frontier) > 0 {
		// A Stop checkpoint per color round, not just per pass: rounds on big
		// frontiers are the unit of work a cancellation should not have to
		// wait whole passes for. The best prefix so far still applies below.
		if stop != nil && stop() {
			stopped = true
			break
		}
		members, off := s.classes.Group(g, frontier, workers)
		s.nextGen++
		next := s.next[:0]
		addNext := func(v int) {
			if s.nextMark[v] != s.nextGen {
				s.nextMark[v] = s.nextGen
				next = append(next, v)
			}
		}
		for cl := 0; cl < len(off)-1; cl++ {
			class := members[off[cl]:off[cl+1]]
			// Parallel half: each member's row and best candidate, exact
			// against round-start state (class members share no edge, and
			// earlier classes' deltas were applied before this evaluation).
			cands := s.merger.Collect(workers, len(class), func(i int) (parCand, bool) {
				v := int(class[i])
				s.ensureConn(g, work, parts, v)
				to, gain := s.bestOf(work, parts, v)
				if to < 0 {
					return parCand{}, false
				}
				return parCand{v: int32(v), to: to, gain: gain}, true
			}, lessCand)
			// Serial half: commit in (gain desc, id asc) order against live
			// sizes and cuts, with the serial pass's legality/bounce/lock and
			// best-prefix rules.
			s.movedGen++
			movedV := s.movedV[:0]
			for _, cd := range cands {
				// Candidates are gain-descending: the first negative gain ends
				// the class's commits (see the package comment — batched
				// downhill moves have no immediate recovery, unlike the
				// serial heap's). Skipped nodes re-enter a later round only
				// when a neighbor's move changes their best candidate.
				if cd.gain < 0 {
					break
				}
				v := int(cd.v)
				from := int(work.Assign[v])
				to := int(cd.to)
				if sizes[from]-1 < minSize || sizes[to]+1 > maxSize {
					// Illegal now; it may become legal after other commits, so
					// stay eligible next round — within the bounce budget, the
					// same loop guard as the serial pass's re-pushes.
					if bounce(v) > 2*parts {
						s.lockPass[v] = s.pass
					} else {
						addNext(v)
					}
					continue
				}
				s.lockPass[v] = s.pass
				work.Assign[v] = uint16(to)
				sizes[from]--
				sizes[to]++
				if o == partition.WorstCut {
					// Same worst-part scoring as the serial pass: v's row is
					// current (all earlier batches' deltas applied; its own
					// move keys on neighbors' parts, which it does not touch).
					row := s.conn[v*parts : (v+1)*parts]
					var rowSum float64
					for _, w := range row {
						rowSum += w
					}
					wFrom, wTo := row[from], row[to]
					wOther := rowSum - wFrom - wTo
					curMax := cmax.cur()
					cmax.apply(cuts, from, wFrom-wTo-wOther)
					cmax.apply(cuts, to, wFrom-wTo+wOther)
					cum += curMax - cmax.cur()
				} else {
					cum += cd.gain
				}
				log = append(log, move{v: v, from: from, to: to, gain: cd.gain})
				if cum > bestCum {
					bestCum, bestK = cum, len(log)
				}
				s.movedMark[v] = s.movedGen
				s.movedFrom[v] = uint16(from)
				s.movedTo[v] = uint16(to)
				movedV = append(movedV, cd.v)
			}
			s.movedV = movedV
			if len(movedV) == 0 {
				continue
			}
			// The movers' unlocked neighbors re-enter the next round (their
			// best move may have changed); those with live rows take the
			// batch's deltas in parallel — each node owns its row, and the
			// batch marks are read-only during the sweep, so any width writes
			// the same values. Locked neighbors' rows go stale, exactly the
			// staleness the serial pass tolerates (they are never read again).
			s.affGen++
			affected := s.affected[:0]
			for _, v32 := range movedV {
				for _, u := range g.Neighbors(int(v32)) {
					ui := int(u)
					if locked(ui) {
						continue
					}
					addNext(ui)
					if s.connPass[ui] == s.pass && s.affMark[ui] != s.affGen {
						s.affMark[ui] = s.affGen
						affected = append(affected, u)
					}
				}
			}
			s.affected = affected
			gen := s.movedGen
			par.For(workers, len(affected), func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					u := int(affected[i])
					row := s.conn[u*parts : (u+1)*parts]
					ws := g.EdgeWeights(u)
					for k, x := range g.Neighbors(u) {
						if s.movedMark[x] == gen {
							row[s.movedFrom[x]] -= ws[k]
							row[s.movedTo[x]] += ws[k]
						}
					}
				}
			})
		}
		// Next round's frontier: the bounced members and the movers'
		// neighbors, minus anything locked later in the round, ascending and
		// dedup'd — the same shape AppendBoundary seeds the pass with.
		kept := next[:0]
		for _, v := range next {
			if !locked(v) {
				kept = append(kept, v)
			}
		}
		sort.Ints(kept)
		s.next = s.frontier
		s.frontier = kept
		frontier = kept
	}
	s.log = log
	if bestK == 0 {
		return 0, stopped
	}
	for _, m := range log[:bestK] {
		ev.Move(g, p, m.v, m.to)
	}
	return bestCum, stopped
}
