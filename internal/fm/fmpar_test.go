package fm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
)

// pairContract halves a graph by contracting consecutive node pairs — a
// cheap stand-in for a real matching that still produces what the multilevel
// pipeline feeds FM: summed node weights and merged weighted edges.
func pairContract(g *graph.Graph) *graph.Graph {
	n := g.NumNodes()
	coarseOf := make([]int, n)
	for v := range coarseOf {
		coarseOf[v] = v / 2
	}
	return graph.Contract(g, coarseOf, (n+1)/2, 1)
}

// The tentpole contract: the colored (round, color, gain-order) schedule is
// a pure function of the input, so every Workers value must reproduce the
// Workers=1 partition bit for bit — across graph families (mesh, skew
// weights, a contracted coarse level) and both supported objectives, with
// the scratch arena shared across runs the way the multilevel pipeline
// shares it.
func TestRefineEvalParWorkersBitIdentical(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"mesh", gen.Mesh(600, 31)},
		{"weighted", gen.SkewWeights(gen.Mesh(500, 32), 7, 40)},
		{"contracted", pairContract(gen.Mesh(900, 33))},
	}
	var scratch Scratch
	for _, tc := range graphs {
		for _, obj := range []partition.Objective{partition.TotalCut, partition.WorstCut} {
			rng := rand.New(rand.NewSource(int64(len(tc.name))*100 + int64(obj)))
			start := partition.RandomBalanced(tc.g.NumNodes(), 8, rng)
			run := func(workers int) (*partition.Partition, float64) {
				p := start.Clone()
				gain := RefineEvalPar(tc.g, p, nil, Config{Workers: workers, Objective: obj, Scratch: &scratch})
				return p, gain
			}
			refP, refGain := run(1)
			for _, workers := range []int{2, 4, 8, 0} {
				p, gain := run(workers)
				if gain != refGain {
					t.Fatalf("%s obj=%v workers=%d: gain %v != %v", tc.name, obj, workers, gain, refGain)
				}
				for v := range p.Assign {
					if p.Assign[v] != refP.Assign[v] {
						t.Fatalf("%s obj=%v workers=%d: node %d in part %d, reference %d",
							tc.name, obj, workers, v, p.Assign[v], refP.Assign[v])
					}
				}
			}
		}
	}
}

// The parallel pass must honor the serial pass's semantic guarantees: the
// reported gain is the realized objective improvement, the cut never
// worsens, validity holds, and sizes respect the slack.
func TestRefineEvalParInvariants(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 80 + rng.Intn(400)
		g := gen.Mesh(n, seed)
		parts := 2 + rng.Intn(7)
		p := partition.RandomBalanced(n, parts, rng)
		before := p.CutSize(g)
		gain := RefineEvalPar(g, p, nil, Config{Workers: 4})
		after := p.CutSize(g)
		if err := p.Validate(g); err != nil {
			t.Fatalf("seed %d: invalid partition: %v", seed, err)
		}
		if after > before {
			t.Errorf("seed %d: cut worsened %v -> %v", seed, before, after)
		}
		if d := (before - after) - gain; math.Abs(d) > 1e-9 {
			t.Errorf("seed %d: reported gain %v != actual %v", seed, gain, before-after)
		}
		ideal := float64(n) / float64(parts)
		slack := float64(int(math.Ceil(ideal/50)) + 1)
		for q, s := range p.PartSizes() {
			if float64(s) < math.Floor(ideal)-slack || float64(s) > math.Ceil(ideal)+slack {
				t.Errorf("seed %d: part %d size %d outside slack (ideal %.1f)", seed, q, s, ideal)
			}
		}
	}
}

// Parallel FM should find cuts of the same character as the serial heap
// pass — a different deterministic schedule, not a weaker refiner.
func TestRefineEvalParQualityComparable(t *testing.T) {
	g := gen.Mesh(1200, 41)
	var parSum, serSum float64
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p1 := partition.RandomBalanced(g.NumNodes(), 8, rng)
		p2 := p1.Clone()
		RefineEvalPar(g, p1, nil, Config{Workers: 4})
		RefineEval(g, p2, nil, Config{})
		parSum += p1.CutSize(g)
		serSum += p2.CutSize(g)
	}
	t.Logf("par mean %v ser mean %v ratio %.3f", parSum/5, serSum/5, parSum/serSum)
	if parSum > serSum*1.10 {
		t.Errorf("parallel FM mean cut %v clearly worse than serial FM %v", parSum/5, serSum/5)
	}
}

// Stop is polled between color rounds, not just between passes: a mid-pass
// stop must still apply the best prefix found so far and leave the
// partition, and the Eval threaded through the pass, in an exactly
// consistent state.
func TestRefineEvalParStopMidPass(t *testing.T) {
	g := gen.Mesh(900, 51)
	rng := rand.New(rand.NewSource(52))
	// Try successively later stop points: poll 1 stops before the first
	// pass, small counts stop between color rounds mid-pass.
	for polls := 1; polls <= 6; polls++ {
		p := partition.RandomBalanced(g.NumNodes(), 8, rng)
		before := p.CutSize(g)
		ev := partition.NewEvalBoundary(g, p)
		calls := 0
		stop := func() bool {
			calls++
			return calls >= polls
		}
		gain := RefineEvalPar(g, p, ev, Config{Workers: 4, Stop: stop})
		if err := p.Validate(g); err != nil {
			t.Fatalf("polls=%d: invalid partition after stop: %v", polls, err)
		}
		if d := (before - p.CutSize(g)) - gain; math.Abs(d) > 1e-9 {
			t.Fatalf("polls=%d: reported gain %v != realized %v", polls, gain, before-p.CutSize(g))
		}
		// The Eval must agree with a from-scratch rebuild: weights, cuts,
		// and the tracked boundary.
		fresh := partition.NewEvalBoundary(g, p)
		for q := range fresh.Cuts {
			if ev.Cuts[q] != fresh.Cuts[q] {
				t.Fatalf("polls=%d: ev.Cuts[%d] = %v, rebuild %v", polls, q, ev.Cuts[q], fresh.Cuts[q])
			}
			if ev.Weights[q] != fresh.Weights[q] {
				t.Fatalf("polls=%d: ev.Weights[%d] = %v, rebuild %v", polls, q, ev.Weights[q], fresh.Weights[q])
			}
		}
		got := ev.AppendBoundary(nil)
		want := fresh.AppendBoundary(nil)
		if len(got) != len(want) {
			t.Fatalf("polls=%d: boundary size %d, rebuild %d", polls, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("polls=%d: boundary[%d] = %d, rebuild %d", polls, i, got[i], want[i])
			}
		}
	}
}

// Like the serial pass, the parallel refiner rejects CommVolume loudly: the
// registry routes that objective to the kl climbers.
func TestRefineEvalParPanicsOnCommVolume(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RefineEvalPar(CommVolume) did not panic")
		}
	}()
	g := gen.Mesh(50, 3)
	p := partition.RandomBalanced(50, 2, rand.New(rand.NewSource(1)))
	RefineEvalPar(g, p, nil, Config{Objective: partition.CommVolume})
}

// The incremental worst-part maximum must track a full re-scan through any
// sequence of cut updates, including ties appearing and the unique maximum
// dropping (the rescan path). This pins satellite work on onePass's WorstCut
// scoring: the running max replaced two O(parts) scans per move, and the
// kept prefix must be what a scan would have produced.
func TestRunningMaxMatchesScanOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 50; trial++ {
		parts := 2 + rng.Intn(14)
		cuts := make([]float64, parts)
		for q := range cuts {
			cuts[q] = float64(rng.Intn(6)) // small range: frequent ties
		}
		var m runningMax
		m.reset(cuts)
		scan := func() float64 {
			best := math.Inf(-1)
			for _, c := range cuts {
				if c > best {
					best = c
				}
			}
			if best > 0 {
				return best
			}
			return 0
		}
		for step := 0; step < 200; step++ {
			q := rng.Intn(parts)
			d := float64(rng.Intn(9) - 4)
			m.apply(cuts, q, d)
			if got, want := m.cur(), scan(); got != want {
				t.Fatalf("trial %d step %d: running max %v, scan %v (cuts %v)", trial, step, got, want, cuts)
			}
		}
	}
}
