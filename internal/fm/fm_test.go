package fm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/kl"
	"repro/internal/partition"
)

func TestRefineNeverWorsensCut(t *testing.T) {
	g := gen.PaperGraph(167)
	rng := rand.New(rand.NewSource(1))
	for _, parts := range []int{2, 4, 8} {
		p := partition.RandomBalanced(g.NumNodes(), parts, rng)
		before := p.CutSize(g)
		gain := Refine(g, p, Config{})
		after := p.CutSize(g)
		if after > before {
			t.Errorf("parts=%d: cut worsened %v -> %v", parts, before, after)
		}
		if d := (before - after) - gain; d > 1e-9 || d < -1e-9 {
			t.Errorf("parts=%d: reported gain %v != actual %v", parts, gain, before-after)
		}
	}
}

func TestRefineRespectsBalance(t *testing.T) {
	g := gen.PaperGraph(144)
	rng := rand.New(rand.NewSource(2))
	p := partition.RandomBalanced(g.NumNodes(), 4, rng)
	Refine(g, p, Config{BalanceSlack: 2})
	sizes := p.PartSizes()
	ideal := float64(g.NumNodes()) / 4
	for q, s := range sizes {
		if float64(s) < ideal-3 || float64(s) > ideal+3 {
			t.Errorf("part %d size %d violates slack-2 balance (ideal %.1f): %v", q, s, ideal, sizes)
		}
	}
}

func TestRefineTwoCliques(t *testing.T) {
	// Two K5 cliques joined by one edge; from the worst split FM must find
	// the cut of 1. This requires escaping the local optimum via the
	// best-prefix mechanism.
	b := graph.NewBuilder(10)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			b.AddEdge(i, j, 1)
			b.AddEdge(i+5, j+5, 1)
		}
	}
	b.AddEdge(0, 5, 1)
	g := b.Build()
	p := partition.New(10, 2)
	p.Assign = []uint16{0, 0, 1, 1, 0, 1, 1, 0, 0, 1}
	Refine(g, p, Config{})
	if cut := p.CutSize(g); cut != 1 {
		t.Errorf("FM cut = %v, want 1 (assign %v)", cut, p.Assign)
	}
}

func TestRefineBeatsSimpleHillClimbOnAverage(t *testing.T) {
	// FM's move-ahead (best prefix) should match or beat one-move-at-a-time
	// hill climbing from identical starts, averaged over several seeds.
	g := gen.PaperGraph(213)
	var fmSum, hcSum float64
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p1 := partition.RandomBalanced(g.NumNodes(), 8, rng)
		p2 := p1.Clone()
		Refine(g, p1, Config{})
		kl.HillClimb(g, p2, partition.TotalCut, 0)
		fmSum += p1.CutSize(g)
		hcSum += p2.CutSize(g)
	}
	if fmSum > hcSum*1.05 {
		t.Errorf("FM mean cut %v clearly worse than hill climbing %v", fmSum/5, hcSum/5)
	}
}

func TestRefineEmptyAndDegenerate(t *testing.T) {
	empty := graph.NewBuilder(0).Build()
	p := partition.New(0, 2)
	if gain := Refine(empty, p, Config{}); gain != 0 {
		t.Errorf("empty graph gain %v", gain)
	}
	// Single part: nothing to do.
	g := gen.Mesh(20, 3)
	p1 := partition.New(20, 1)
	if gain := Refine(g, p1, Config{}); gain != 0 {
		t.Errorf("1-part gain %v", gain)
	}
}

func TestRefineWeightedEdges(t *testing.T) {
	// Heavy edge must not be cut: path a-b-c with w(a,b)=10, w(b,c)=1;
	// 2 parts with slack 1 allows sizes {1,2}.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1, 10)
	b.AddEdge(1, 2, 1)
	g := b.Build()
	p := partition.New(3, 2)
	p.Assign = []uint16{0, 1, 1} // cuts the heavy edge
	Refine(g, p, Config{BalanceSlack: 1})
	if p.Assign[0] == p.Assign[1] {
		return // heavy edge internal: good
	}
	t.Errorf("heavy edge still cut: %v", p.Assign)
}

// Property: Refine never violates validity, never increases cut, and keeps
// sizes within the default slack.
func TestQuickRefineInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 12 + rng.Intn(80)
		g := gen.Mesh(n, seed)
		parts := 2 + rng.Intn(6)
		p := partition.RandomBalanced(n, parts, rng)
		before := p.CutSize(g)
		Refine(g, p, Config{})
		if p.Validate(g) != nil || p.CutSize(g) > before {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// The Workers knob must be a pure speed knob: the parallel heap seeding
// pushes the same candidates in the same order at every width, so the move
// sequence — and the final partition — is bit-identical, with and without
// boundary tracking on the Eval.
func TestRefineWorkersBitIdentical(t *testing.T) {
	g := gen.Mesh(800, 23)
	rng := rand.New(rand.NewSource(24))
	start := partition.RandomBalanced(g.NumNodes(), 4, rng)

	type variant struct {
		name    string
		tracked bool
	}
	for _, vr := range []variant{{"tracked", true}, {"untracked", false}} {
		run := func(workers int) (*partition.Partition, float64) {
			p := start.Clone()
			var ev *partition.Eval
			if vr.tracked {
				ev = partition.NewEvalBoundary(g, p)
			} else {
				ev = partition.NewEval(g, p)
			}
			gain := RefineEval(g, p, ev, Config{Workers: workers})
			return p, gain
		}
		refP, refGain := run(1)
		for _, workers := range []int{2, 4, 8, 0} {
			p, gain := run(workers)
			if gain != refGain {
				t.Fatalf("%s workers=%d: gain %v != %v", vr.name, workers, gain, refGain)
			}
			for v := range p.Assign {
				if p.Assign[v] != refP.Assign[v] {
					t.Fatalf("%s workers=%d: node %d in part %d, reference %d",
						vr.name, workers, v, p.Assign[v], refP.Assign[v])
				}
			}
		}
	}
}
