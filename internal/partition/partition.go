// Package partition defines the k-way partition representation and the two
// objective (fitness) functions of the paper.
//
// A partition maps every node of a graph to one of n parts. Quality is the
// combination of load balance and communication cost:
//
//	Fitness1 = −( Σ_q I(q) + Σ_q C(q) )      — total communication cost
//	Fitness2 = −( Σ_q I(q) + max_q C(q) )    — worst-part communication cost
//
// where I(q) = (W(q) − W/n)² is the squared load imbalance of part q and
// C(q) is the total weight of edges leaving part q. Fitness2 is not
// differentiable, which is precisely why the paper's GA matters: gradient-
// style heuristics cannot optimize it directly.
//
// Note Σ_q C(q) counts each cut edge twice (once per side); the paper's
// Tables 1–3 report Σ_q C(q)/2, exposed here as CutSize.
package partition

import (
	"fmt"

	"repro/internal/graph"
)

// Partition assigns each node of a graph to a part in [0, Parts).
// Assign[v] is the part of node v.
type Partition struct {
	Assign []uint16
	Parts  int
}

// New returns a partition of n nodes into parts parts, all nodes in part 0.
func New(n, parts int) *Partition {
	if parts <= 0 || parts > 1<<16 {
		panic(fmt.Sprintf("partition: invalid part count %d", parts))
	}
	return &Partition{Assign: make([]uint16, n), Parts: parts}
}

// Clone returns a deep copy.
func (p *Partition) Clone() *Partition {
	return &Partition{Assign: append([]uint16(nil), p.Assign...), Parts: p.Parts}
}

// Validate checks that the partition covers graph g and that every assignment
// is within range.
func (p *Partition) Validate(g *graph.Graph) error {
	if len(p.Assign) != g.NumNodes() {
		return fmt.Errorf("partition: %d assignments for %d nodes", len(p.Assign), g.NumNodes())
	}
	for v, q := range p.Assign {
		if int(q) >= p.Parts {
			return fmt.Errorf("partition: node %d assigned to part %d of %d", v, q, p.Parts)
		}
	}
	return nil
}

// PartWeights returns the total node weight of each part.
func (p *Partition) PartWeights(g *graph.Graph) []float64 {
	w := make([]float64, p.Parts)
	for v, q := range p.Assign {
		w[q] += g.NodeWeight(v)
	}
	return w
}

// PartSizes returns the node count of each part.
func (p *Partition) PartSizes() []int {
	s := make([]int, p.Parts)
	for _, q := range p.Assign {
		s[q]++
	}
	return s
}

// ImbalanceSq returns Σ_q (W(q) − W/n)², the balance term of both fitness
// functions.
func (p *Partition) ImbalanceSq(g *graph.Graph) float64 {
	w := p.PartWeights(g)
	avg := g.TotalNodeWeight() / float64(p.Parts)
	var s float64
	for _, wq := range w {
		d := wq - avg
		s += d * d
	}
	return s
}

// PartCuts returns C(q) for every part q: the total weight of edges with
// exactly one endpoint in q.
func (p *Partition) PartCuts(g *graph.Graph) []float64 {
	c := make([]float64, p.Parts)
	g.Edges(func(u, v int, w float64) bool {
		if p.Assign[u] != p.Assign[v] {
			c[p.Assign[u]] += w
			c[p.Assign[v]] += w
		}
		return true
	})
	return c
}

// CutSize returns Σ_q C(q)/2: the total weight of cut edges, each counted
// once. This is the number the paper's Tables 1–3 report.
func (p *Partition) CutSize(g *graph.Graph) float64 {
	var cut float64
	a := p.Assign
	for u := 0; u < g.NumNodes(); u++ {
		nbrs := g.Neighbors(u)
		ws := g.EdgeWeights(u)
		for i, v := range nbrs {
			if int(v) > u && a[u] != a[v] {
				cut += ws[i]
			}
		}
	}
	return cut
}

// MaxPartCut returns max_q C(q): the worst single part's communication cost,
// reported in the paper's Tables 4–6.
func (p *Partition) MaxPartCut(g *graph.Graph) float64 {
	var max float64
	for _, c := range p.PartCuts(g) {
		if c > max {
			max = c
		}
	}
	return max
}

// PartVols returns V(q) for every part q: the summed communication volume of
// the nodes assigned to q, where a node's volume is the number of distinct
// foreign parts its neighborhood touches (the messages it sends in a halo
// exchange).
func (p *Partition) PartVols(g *graph.Graph) []float64 {
	vols := make([]float64, p.Parts)
	seen := make([]int32, p.Parts)
	stamp := int32(0)
	for v := 0; v < g.NumNodes(); v++ {
		stamp++
		own := p.Assign[v]
		var ext float64
		for _, u := range g.Neighbors(v) {
			if q := p.Assign[u]; q != own && seen[q] != stamp {
				seen[q] = stamp
				ext++
			}
		}
		vols[own] += ext
	}
	return vols
}

// CommVolume returns Σ_q V(q): the total communication volume — each
// boundary node counted once per foreign part it touches, not once per cut
// edge. This is the quantity the CommVolume objective minimizes.
func (p *Partition) CommVolume(g *graph.Graph) float64 {
	var s float64
	for _, v := range p.PartVols(g) {
		s += v
	}
	return s
}

// ObjectiveValue returns the cost term of objective o — CutSize for
// TotalCut, MaxPartCut for WorstCut, CommVolume for CommVolume — the single
// definition reporting surfaces (bench records, CLIs, viz legends) share.
func (p *Partition) ObjectiveValue(g *graph.Graph, o Objective) float64 {
	switch o {
	case TotalCut:
		return p.CutSize(g)
	case WorstCut:
		return p.MaxPartCut(g)
	case CommVolume:
		return p.CommVolume(g)
	default:
		panic(fmt.Sprintf("partition: unknown objective %d", int(o)))
	}
}

// Objective selects which fitness function scores a partition.
type Objective int

const (
	// TotalCut is Fitness 1: −(Σ imbalance² + Σ_q C(q)).
	TotalCut Objective = iota
	// WorstCut is Fitness 2: −(Σ imbalance² + max_q C(q)).
	WorstCut
	// CommVolume scores −(Σ imbalance² + total communication volume), where
	// the volume counts each boundary node once per foreign part its
	// neighborhood touches — the message count of a halo exchange, as in
	// METIS's -objtype=vol mode — instead of once per cut edge. A hub node
	// with twenty edges into one foreign part costs 20 under the cut
	// objectives but 1 here.
	CommVolume
)

// String returns the paper's name for the objective.
func (o Objective) String() string {
	switch o {
	case TotalCut:
		return "Fitness1(total-cut)"
	case WorstCut:
		return "Fitness2(worst-cut)"
	case CommVolume:
		return "CommVolume(total-volume)"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// FlagName returns the stable user-facing name of the objective — the value
// the -objective flags and the partd "objective" field accept.
func (o Objective) FlagName() string {
	switch o {
	case TotalCut:
		return "cut"
	case WorstCut:
		return "maxcut"
	case CommVolume:
		return "commvol"
	default:
		return fmt.Sprintf("objective-%d", int(o))
	}
}

// ParseObjective maps a user-facing objective name to its Objective. The
// canonical names are "cut", "maxcut", and "commvol"; the pre-objective-
// refactor names "total" and "worst" stay accepted so existing invocations
// and stored requests keep working.
func ParseObjective(s string) (Objective, error) {
	switch s {
	case "", "cut", "total":
		return TotalCut, nil
	case "maxcut", "worst":
		return WorstCut, nil
	case "commvol":
		return CommVolume, nil
	default:
		return TotalCut, fmt.Errorf("partition: unknown objective %q (want cut, maxcut, or commvol)", s)
	}
}

// Objectives lists every objective in declaration order, for callers that
// enumerate the scenario surface (bench suites, /v1/algos).
func Objectives() []Objective { return []Objective{TotalCut, WorstCut, CommVolume} }

// Fitness evaluates the selected fitness function; larger is better, and all
// values are <= 0 with 0 the unattainable ideal (perfect balance, no cut).
// Note the total-cut form uses Σ_q C(q) (cut edges counted twice), exactly as
// the paper defines Fitness 1.
func (p *Partition) Fitness(g *graph.Graph, o Objective) float64 {
	switch o {
	case TotalCut:
		return -(p.ImbalanceSq(g) + 2*p.CutSize(g))
	case WorstCut:
		return -(p.ImbalanceSq(g) + p.MaxPartCut(g))
	case CommVolume:
		return -(p.ImbalanceSq(g) + p.CommVolume(g))
	default:
		panic(fmt.Sprintf("partition: unknown objective %d", int(o)))
	}
}

// FitnessWeighted evaluates the paper's general composite objective of §2,
// −(Σ_q I(q) + α·cost), where cost is Σ_q C(q) (TotalCut) or max_q C(q)
// (WorstCut) and α expresses the relative importance of communication
// versus balance. Fitness is the α = 1 special case used in all of the
// paper's experiments; the general form supports machines where
// communication is relatively more or less expensive than computation.
func (p *Partition) FitnessWeighted(g *graph.Graph, o Objective, alpha float64) float64 {
	switch o {
	case TotalCut:
		return -(p.ImbalanceSq(g) + alpha*2*p.CutSize(g))
	case WorstCut:
		return -(p.ImbalanceSq(g) + alpha*p.MaxPartCut(g))
	case CommVolume:
		return -(p.ImbalanceSq(g) + alpha*p.CommVolume(g))
	default:
		panic(fmt.Sprintf("partition: unknown objective %d", int(o)))
	}
}

// BoundaryNodes returns every node with at least one neighbor in another
// part, in increasing order. These are the only nodes whose reassignment can
// reduce the cut, so hill climbing and KL examine exactly this set.
func (p *Partition) BoundaryNodes(g *graph.Graph) []int {
	var out []int
	for v := 0; v < g.NumNodes(); v++ {
		for _, u := range g.Neighbors(v) {
			if p.Assign[u] != p.Assign[v] {
				out = append(out, v)
				break
			}
		}
	}
	return out
}

// Balanced reports whether every part's node count is within one node of
// every other's (the strongest balance achievable with unit weights).
func (p *Partition) Balanced() bool {
	s := p.PartSizes()
	min, max := s[0], s[0]
	for _, x := range s[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return max-min <= 1
}
