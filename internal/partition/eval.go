package partition

import (
	"repro/internal/graph"
)

// Eval caches the per-part aggregates of a partition — part weights W(q) and
// part cuts C(q) — so that single-node reassignments update the fitness in
// O(deg(v)) instead of rescanning the whole graph. The GA engine keeps one
// Eval per individual: crossover offspring pay one fused O(V+E) scan, while
// mutation and boundary hill climbing apply incremental deltas.
//
// An Eval is only meaningful together with the partition it was built from
// (or has tracked through Move calls); callers own keeping the pair in sync.
type Eval struct {
	Weights []float64 // W(q): total node weight of part q
	Cuts    []float64 // C(q): total weight of edges with exactly one endpoint in q
}

// NewEval scans g once and returns the aggregates of p. The accumulation
// order matches PartWeights and PartCuts exactly, so the resulting fitness
// is bit-identical to the scan-based one.
func NewEval(g *graph.Graph, p *Partition) *Eval {
	ev := &Eval{
		Weights: make([]float64, p.Parts),
		Cuts:    make([]float64, p.Parts),
	}
	a := p.Assign
	for v, q := range a {
		ev.Weights[q] += g.NodeWeight(v)
	}
	for u := 0; u < g.NumNodes(); u++ {
		nbrs := g.Neighbors(u)
		ws := g.EdgeWeights(u)
		for i, v := range nbrs {
			if int(v) > u && a[u] != a[v] {
				ev.Cuts[a[u]] += ws[i]
				ev.Cuts[a[v]] += ws[i]
			}
		}
	}
	return ev
}

// Clone deep-copies the aggregates.
func (ev *Eval) Clone() *Eval {
	return &Eval{
		Weights: append([]float64(nil), ev.Weights...),
		Cuts:    append([]float64(nil), ev.Cuts...),
	}
}

// Move reassigns node v of p to part `to`, updating both the partition and
// the cached aggregates in O(deg(v)). Only C(from) and C(to) change: an edge
// (v,u) with u in a third part is cut both before and after the move.
func (ev *Eval) Move(g *graph.Graph, p *Partition, v, to int) {
	from := int(p.Assign[v])
	if from == to {
		return
	}
	wv := g.NodeWeight(v)
	ev.Weights[from] -= wv
	ev.Weights[to] += wv
	var wFrom, wTo, wOther float64
	ws := g.EdgeWeights(v)
	for i, u := range g.Neighbors(v) {
		switch int(p.Assign[u]) {
		case from:
			wFrom += ws[i]
		case to:
			wTo += ws[i]
		default:
			wOther += ws[i]
		}
	}
	// Edges into `from` become cut, edges into `to` become internal, edges
	// into other parts transfer between C(from) and C(to).
	ev.Cuts[from] += wFrom - wTo - wOther
	ev.Cuts[to] += wFrom - wTo + wOther
	p.Assign[v] = uint16(to)
}

// ImbalanceSq returns Σ_q (W(q) − W/n)² from the cached weights.
func (ev *Eval) ImbalanceSq(g *graph.Graph) float64 {
	avg := g.TotalNodeWeight() / float64(len(ev.Weights))
	var s float64
	for _, wq := range ev.Weights {
		d := wq - avg
		s += d * d
	}
	return s
}

// TotalCutWeight returns Σ_q C(q) (each cut edge counted twice, as in the
// paper's Fitness 1).
func (ev *Eval) TotalCutWeight() float64 {
	var s float64
	for _, c := range ev.Cuts {
		s += c
	}
	return s
}

// MaxCut returns max_q C(q), the worst-part cost of Fitness 2.
func (ev *Eval) MaxCut() float64 {
	var max float64
	for _, c := range ev.Cuts {
		if c > max {
			max = c
		}
	}
	return max
}

// Fitness evaluates objective o from the cached aggregates. For graphs with
// integer weights the result is exactly Partition.Fitness; for fractional
// weights it may differ in the last bits (different but fixed summation
// order), deterministically for a given move history.
func (ev *Eval) Fitness(g *graph.Graph, o Objective) float64 {
	switch o {
	case TotalCut:
		return -(ev.ImbalanceSq(g) + ev.TotalCutWeight())
	case WorstCut:
		return -(ev.ImbalanceSq(g) + ev.MaxCut())
	default:
		panic("partition: unknown objective")
	}
}
