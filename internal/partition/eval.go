package partition

import (
	"sort"

	"repro/internal/graph"
)

// Eval caches the per-part aggregates of a partition — part weights W(q) and
// part cuts C(q) — so that single-node reassignments update the fitness in
// O(deg(v)) instead of rescanning the whole graph. The GA engine keeps one
// Eval per individual: crossover offspring pay one fused O(V+E) scan, while
// mutation and boundary hill climbing apply incremental deltas.
//
// An Eval can additionally maintain the partition's boundary set — the nodes
// with at least one neighbor in another part — incrementally through Move
// (see NewEvalBoundary). Refiners seed their scans from that set instead of
// rescanning all n nodes, which is what makes per-level refinement in the
// multilevel pipeline output-sensitive. Tracking is opt-in because it costs
// O(n) memory and O(deg) extra work per move; the GA's per-individual Evals
// never ask for it.
//
// An Eval is only meaningful together with the partition it was built from
// (or has tracked through Move calls); callers own keeping the pair in sync.
type Eval struct {
	Weights []float64 // W(q): total node weight of part q
	Cuts    []float64 // C(q): total weight of edges with exactly one endpoint in q

	// Boundary tracking (enabled by NewEvalBoundary / ResetBoundary).
	// extDeg[v] counts v's neighbors assigned to a different part; v is on
	// the boundary iff extDeg[v] > 0. bnodes holds the boundary members in
	// arbitrary order; bpos[v]-1 is v's index in bnodes (0 = absent), the
	// classic indexed-set layout giving O(1) insert and delete.
	extDeg []int32
	bnodes []int32
	bpos   []int32

	// Communication-volume tracking (enabled by EnableCommVol /
	// ResetCommVolPar), the per-(node, part) aggregates the CommVolume
	// objective's O(deg) gains need. nbrCnt[v*parts+q] counts v's neighbors
	// assigned to part q; extParts[v] is the number of distinct foreign parts
	// v touches (its volume contribution); Vols[q] = Σ_{v∈q} extParts[v].
	// All counters are integers, so the tracked state — and every gain
	// derived from it — is exact and worker-count independent.
	Vols     []float64
	nbrCnt   []int32
	extParts []int32
}

// NewEval scans g once and returns the aggregates of p. The accumulation
// order matches PartWeights and PartCuts exactly, so the resulting fitness
// is bit-identical to the scan-based one.
func NewEval(g *graph.Graph, p *Partition) *Eval {
	ev := &Eval{
		Weights: make([]float64, p.Parts),
		Cuts:    make([]float64, p.Parts),
	}
	a := p.Assign
	for v, q := range a {
		ev.Weights[q] += g.NodeWeight(v)
	}
	for u := 0; u < g.NumNodes(); u++ {
		nbrs := g.Neighbors(u)
		ws := g.EdgeWeights(u)
		for i, v := range nbrs {
			if int(v) > u && a[u] != a[v] {
				ev.Cuts[a[u]] += ws[i]
				ev.Cuts[a[v]] += ws[i]
			}
		}
	}
	return ev
}

// NewEvalBoundary is NewEval with boundary tracking enabled: the returned
// Eval additionally knows the partition's boundary set and keeps it exact
// through every Move.
func NewEvalBoundary(g *graph.Graph, p *Partition) *Eval {
	ev := NewEval(g, p)
	ev.ResetBoundary(g, p)
	return ev
}

// ResetBoundary (re)builds the boundary structures for the given graph and
// partition in one O(V+E) scan, enabling tracking if it was off. The
// multilevel pipeline calls this after projecting a partition to a finer
// level: part weights and cuts carry over projection verbatim, but node
// identities do not, so the boundary set must be rebuilt per level.
func (ev *Eval) ResetBoundary(g *graph.Graph, p *Partition) {
	ev.ResetBoundaryPar(g, p, 1)
}

// TracksBoundary reports whether this Eval maintains the boundary set.
func (ev *Eval) TracksBoundary() bool { return ev.extDeg != nil }

// TracksCommVol reports whether this Eval maintains the communication-volume
// aggregates.
func (ev *Eval) TracksCommVol() bool { return ev.nbrCnt != nil }

// EnableCommVol (re)builds the communication-volume aggregates for the given
// graph and partition in one O(V+E) scan, enabling tracking if it was off.
// Like the boundary set — and unlike part weights and cuts — the per-node
// counts do not survive a multilevel projection (node identities change), so
// the pipeline rebuilds them per level.
func (ev *Eval) EnableCommVol(g *graph.Graph, p *Partition) {
	ev.ResetCommVolPar(g, p, 1)
}

// CommVol returns the total communication volume Σ_q V(q) from the tracked
// aggregates. It panics if tracking is not enabled.
func (ev *Eval) CommVol() float64 {
	if ev.nbrCnt == nil {
		panic("partition: CommVol called on Eval without comm-volume tracking")
	}
	var s float64
	for _, v := range ev.Vols {
		s += v
	}
	return s
}

// CommVolDelta returns the change in total communication volume caused by
// moving v to part `to`, in O(deg(v)) from the tracked per-(node, part)
// counts, without applying the move. The delta is integer-valued, so it is
// exact. It panics if comm-volume tracking is not enabled.
func (ev *Eval) CommVolDelta(g *graph.Graph, p *Partition, v, to int) float64 {
	if ev.nbrCnt == nil {
		panic("partition: CommVolDelta called on Eval without comm-volume tracking")
	}
	from := int(p.Assign[v])
	if from == to {
		return 0
	}
	parts := p.Parts
	// v's own contribution: its neighbor counts do not change, but the set of
	// parts that are "foreign" to it does — `from` joins it, `to` leaves it.
	cntV := ev.nbrCnt[v*parts : (v+1)*parts]
	var d int32
	if cntV[from] > 0 {
		d++
	}
	if cntV[to] > 0 {
		d--
	}
	// Each neighbor u loses `from` from its touched set if v was its last
	// neighbor there, and gains `to` if it had none — counting only parts
	// foreign to u itself.
	a := p.Assign
	for _, u := range g.Neighbors(v) {
		qu := int(a[u])
		cu := ev.nbrCnt[int(u)*parts : (int(u)+1)*parts]
		if qu != from && cu[from] == 1 {
			d--
		}
		if qu != to && cu[to] == 0 {
			d++
		}
	}
	return float64(d)
}

// Boundary returns the tracked boundary nodes in increasing order. The cost
// is O(b log b) in the boundary size b — output-sensitive, never O(n) — so
// refiners may call it once per pass. It panics if tracking is not enabled.
func (ev *Eval) Boundary() []int {
	if ev.extDeg == nil {
		panic("partition: Boundary called on Eval without boundary tracking")
	}
	out := make([]int, len(ev.bnodes))
	for i, v := range ev.bnodes {
		out[i] = int(v)
	}
	sort.Ints(out)
	return out
}

// AppendBoundary is Boundary appending into buf (which may be nil) instead
// of allocating, for refiners that snapshot the boundary once per pass and
// recycle the buffer: buf's contents are replaced, its capacity is reused.
func (ev *Eval) AppendBoundary(buf []int) []int {
	if ev.extDeg == nil {
		panic("partition: AppendBoundary called on Eval without boundary tracking")
	}
	buf = buf[:0]
	for _, v := range ev.bnodes {
		buf = append(buf, int(v))
	}
	sort.Ints(buf)
	return buf
}

// ForEachBoundary calls fn for every tracked boundary node in unspecified
// order, without allocating or sorting — the right shape for argmax scans
// (callers wanting deterministic results break ties on node id themselves).
// fn must not trigger Move or ResetBoundary. It panics if tracking is not
// enabled.
func (ev *Eval) ForEachBoundary(fn func(v int)) {
	if ev.extDeg == nil {
		panic("partition: ForEachBoundary called on Eval without boundary tracking")
	}
	for _, v := range ev.bnodes {
		fn(int(v))
	}
}

// boundaryInsert adds v to the boundary set if absent.
func (ev *Eval) boundaryInsert(v int) {
	if ev.bpos[v] == 0 {
		ev.bnodes = append(ev.bnodes, int32(v))
		ev.bpos[v] = int32(len(ev.bnodes))
	}
}

// boundaryRemove deletes v from the boundary set if present (swap-delete).
func (ev *Eval) boundaryRemove(v int) {
	i := ev.bpos[v]
	if i == 0 {
		return
	}
	last := ev.bnodes[len(ev.bnodes)-1]
	ev.bnodes[i-1] = last
	ev.bpos[last] = i
	ev.bnodes = ev.bnodes[:len(ev.bnodes)-1]
	ev.bpos[v] = 0
}

// Clone deep-copies the aggregates (and the boundary and comm-volume
// structures, when tracked).
func (ev *Eval) Clone() *Eval {
	out := &Eval{
		Weights: append([]float64(nil), ev.Weights...),
		Cuts:    append([]float64(nil), ev.Cuts...),
	}
	if ev.extDeg != nil {
		out.extDeg = append([]int32(nil), ev.extDeg...)
		out.bnodes = append([]int32(nil), ev.bnodes...)
		out.bpos = append([]int32(nil), ev.bpos...)
	}
	if ev.nbrCnt != nil {
		out.Vols = append([]float64(nil), ev.Vols...)
		out.nbrCnt = append([]int32(nil), ev.nbrCnt...)
		out.extParts = append([]int32(nil), ev.extParts...)
	}
	return out
}

// Move reassigns node v of p to part `to`, updating both the partition and
// the cached aggregates in O(deg(v)). Only C(from) and C(to) change: an edge
// (v,u) with u in a third part is cut both before and after the move.
func (ev *Eval) Move(g *graph.Graph, p *Partition, v, to int) {
	from := int(p.Assign[v])
	if from == to {
		return
	}
	wv := g.NodeWeight(v)
	ev.Weights[from] -= wv
	ev.Weights[to] += wv
	track := ev.extDeg != nil
	var wFrom, wTo, wOther float64
	var extV int32
	ws := g.EdgeWeights(v)
	for i, u := range g.Neighbors(v) {
		switch int(p.Assign[u]) {
		case from:
			wFrom += ws[i]
			if track {
				// Edge {v,u} was internal and becomes external.
				extV++
				if ev.extDeg[u]++; ev.extDeg[u] == 1 {
					ev.boundaryInsert(int(u))
				}
			}
		case to:
			wTo += ws[i]
			if track {
				// Edge {v,u} was external and becomes internal.
				if ev.extDeg[u]--; ev.extDeg[u] == 0 {
					ev.boundaryRemove(int(u))
				}
			}
		default:
			wOther += ws[i]
			if track {
				extV++ // external before and after
			}
		}
	}
	// Edges into `from` become cut, edges into `to` become internal, edges
	// into other parts transfer between C(from) and C(to).
	ev.Cuts[from] += wFrom - wTo - wOther
	ev.Cuts[to] += wFrom - wTo + wOther
	if track {
		ev.extDeg[v] = extV
		if extV > 0 {
			ev.boundaryInsert(v)
		} else {
			ev.boundaryRemove(v)
		}
	}
	if ev.nbrCnt != nil {
		ev.moveCommVol(g, p, v, from, to)
	}
	p.Assign[v] = uint16(to)
}

// moveCommVol updates the tracked comm-volume aggregates for v moving from
// `from` to `to`, in O(deg(v)) — one O(1) update per neighbor. Called before
// p.Assign[v] changes.
func (ev *Eval) moveCommVol(g *graph.Graph, p *Partition, v, from, to int) {
	parts := p.Parts
	// v's own volume: its neighbor counts are unchanged, but `from` becomes
	// foreign to it and `to` stops being foreign.
	cntV := ev.nbrCnt[v*parts : (v+1)*parts]
	oldExt := ev.extParts[v]
	newExt := oldExt
	if cntV[from] > 0 {
		newExt++
	}
	if cntV[to] > 0 {
		newExt--
	}
	ev.extParts[v] = newExt
	ev.Vols[from] -= float64(oldExt)
	ev.Vols[to] += float64(newExt)
	// Each neighbor sees one member of `from` leave and one member of `to`
	// arrive; its touched-foreign-part set shrinks or grows at the edges.
	a := p.Assign
	for _, u := range g.Neighbors(v) {
		qu := int(a[u])
		cu := ev.nbrCnt[int(u)*parts : (int(u)+1)*parts]
		if cu[from]--; cu[from] == 0 && qu != from {
			ev.extParts[u]--
			ev.Vols[qu]--
		}
		if cu[to]++; cu[to] == 1 && qu != to {
			ev.extParts[u]++
			ev.Vols[qu]++
		}
	}
}

// ImbalanceSq returns Σ_q (W(q) − W/n)² from the cached weights.
func (ev *Eval) ImbalanceSq(g *graph.Graph) float64 {
	avg := g.TotalNodeWeight() / float64(len(ev.Weights))
	var s float64
	for _, wq := range ev.Weights {
		d := wq - avg
		s += d * d
	}
	return s
}

// TotalCutWeight returns Σ_q C(q) (each cut edge counted twice, as in the
// paper's Fitness 1).
func (ev *Eval) TotalCutWeight() float64 {
	var s float64
	for _, c := range ev.Cuts {
		s += c
	}
	return s
}

// MaxCut returns max_q C(q), the worst-part cost of Fitness 2.
func (ev *Eval) MaxCut() float64 {
	var max float64
	for _, c := range ev.Cuts {
		if c > max {
			max = c
		}
	}
	return max
}

// Fitness evaluates objective o from the cached aggregates. For graphs with
// integer weights the result is exactly Partition.Fitness; for fractional
// weights it may differ in the last bits (different but fixed summation
// order), deterministically for a given move history.
func (ev *Eval) Fitness(g *graph.Graph, o Objective) float64 {
	switch o {
	case TotalCut:
		return -(ev.ImbalanceSq(g) + ev.TotalCutWeight())
	case WorstCut:
		return -(ev.ImbalanceSq(g) + ev.MaxCut())
	case CommVolume:
		return -(ev.ImbalanceSq(g) + ev.CommVol())
	default:
		panic("partition: unknown objective")
	}
}
