package partition

import (
	"math/rand"

	"repro/internal/graph"
)

// Random returns a uniformly random partition of n nodes into parts parts.
// Every part label is drawn independently; balance is left to the fitness
// function, matching the paper's "randomly initialized population".
func Random(n, parts int, rng *rand.Rand) *Partition {
	p := New(n, parts)
	for v := range p.Assign {
		p.Assign[v] = uint16(rng.Intn(parts))
	}
	return p
}

// RandomBalanced returns a random partition with part sizes as equal as
// possible: a random permutation of nodes dealt round-robin into parts.
func RandomBalanced(n, parts int, rng *rand.Rand) *Partition {
	p := New(n, parts)
	perm := rng.Perm(n)
	for i, v := range perm {
		p.Assign[v] = uint16(i % parts)
	}
	return p
}

// Perturb returns a copy of p with each node's part resampled uniformly with
// probability rate. Seeding a GA population with perturbed copies of one
// heuristic solution gives diversity around a good starting point.
func (p *Partition) Perturb(rate float64, rng *rand.Rand) *Partition {
	c := p.Clone()
	for v := range c.Assign {
		if rng.Float64() < rate {
			c.Assign[v] = uint16(rng.Intn(c.Parts))
		}
	}
	return c
}

// ExtendRandomBalanced extends an old partition to a grown graph: nodes that
// existed before keep their parts, and each new node is assigned to a part
// drawn uniformly from the currently lightest parts, "ensuring that balance
// is maintained" as the paper's incremental seeding prescribes.
func ExtendRandomBalanced(old *Partition, g *graph.Graph, rng *rand.Rand) *Partition {
	n := g.NumNodes()
	p := New(n, old.Parts)
	copy(p.Assign, old.Assign)
	w := make([]float64, old.Parts)
	for v := 0; v < len(old.Assign); v++ {
		w[p.Assign[v]] += g.NodeWeight(v)
	}
	for v := len(old.Assign); v < n; v++ {
		// Collect the set of lightest parts and pick one at random.
		min := w[0]
		for _, x := range w[1:] {
			if x < min {
				min = x
			}
		}
		var lightest []int
		for q, x := range w {
			if x == min {
				lightest = append(lightest, q)
			}
		}
		q := lightest[rng.Intn(len(lightest))]
		p.Assign[v] = uint16(q)
		w[q] += g.NodeWeight(v)
	}
	return p
}

// ExtendMajorityNeighbor extends an old partition to a grown graph with the
// deterministic rule the paper uses as its incremental baseline: each new
// node goes "to the part to which most of its nearest neighbors belong".
// Ties break toward the lighter part, then the lower part id. New nodes are
// processed in index order; a new node's already-assigned new neighbors
// count toward the majority.
func ExtendMajorityNeighbor(old *Partition, g *graph.Graph) *Partition {
	n := g.NumNodes()
	p := New(n, old.Parts)
	copy(p.Assign, old.Assign)
	w := make([]float64, old.Parts)
	for v := 0; v < len(old.Assign); v++ {
		w[p.Assign[v]] += g.NodeWeight(v)
	}
	assigned := make([]bool, n)
	for v := 0; v < len(old.Assign); v++ {
		assigned[v] = true
	}
	for v := len(old.Assign); v < n; v++ {
		votes := make([]int, old.Parts)
		for _, u := range g.Neighbors(v) {
			if assigned[u] {
				votes[p.Assign[u]]++
			}
		}
		best := 0
		for q := 1; q < old.Parts; q++ {
			switch {
			case votes[q] > votes[best]:
				best = q
			case votes[q] == votes[best] && w[q] < w[best]:
				best = q
			}
		}
		p.Assign[v] = uint16(best)
		w[best] += g.NodeWeight(v)
		assigned[v] = true
	}
	return p
}
