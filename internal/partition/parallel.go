package partition

import (
	"repro/internal/graph"
	"repro/internal/par"
)

// evalChunk is the fixed tile width of the sharded Eval scans. Like
// par.ReduceChunk, it is a constant rather than a function of the worker
// count: every shard (partial weight/cut vector, boundary-count cell) belongs
// to a chunk, and the merge walks chunks in ascending order, so the
// accumulation grouping — and with it every last floating-point bit — is
// identical for every worker count.
const evalChunk = 2048

// NewEvalPar is NewEval with the O(V+E) scan sharded over `workers`
// goroutines: each fixed-width chunk of nodes accumulates its own partial
// part-weight and part-cut vectors (a cut edge is owned by its
// lower-numbered endpoint's chunk, mirroring the serial scan), and the
// partials merge in ascending chunk order. The result is bit-identical for
// every worker count; for graphs with integer-valued weights it is also
// exactly NewEval's result (the reassociated sums are exact), which covers
// every graph the multilevel pipeline produces from integer inputs.
func NewEvalPar(g *graph.Graph, p *Partition, workers int) *Eval {
	n := g.NumNodes()
	parts := p.Parts
	ev := &Eval{
		Weights: make([]float64, parts),
		Cuts:    make([]float64, parts),
	}
	if n == 0 {
		return ev
	}
	a := p.Assign
	nChunks := (n + evalChunk - 1) / evalChunk
	partW := make([]float64, nChunks*parts)
	partC := make([]float64, nChunks*parts)
	par.For(workers, nChunks, func(_, clo, chi int) {
		for c := clo; c < chi; c++ {
			lo, hi := c*evalChunk, (c+1)*evalChunk
			if hi > n {
				hi = n
			}
			w := partW[c*parts : (c+1)*parts]
			cu := partC[c*parts : (c+1)*parts]
			for v := lo; v < hi; v++ {
				w[a[v]] += g.NodeWeight(v)
			}
			for u := lo; u < hi; u++ {
				nbrs := g.Neighbors(u)
				ws := g.EdgeWeights(u)
				for i, v := range nbrs {
					if int(v) > u && a[u] != a[v] {
						cu[a[u]] += ws[i]
						cu[a[v]] += ws[i]
					}
				}
			}
		}
	})
	for c := 0; c < nChunks; c++ {
		for q := 0; q < parts; q++ {
			ev.Weights[q] += partW[c*parts+q]
			ev.Cuts[q] += partC[c*parts+q]
		}
	}
	return ev
}

// NewEvalBoundaryPar is NewEvalPar plus a parallel boundary build: the
// sharded counterpart of NewEvalBoundary.
func NewEvalBoundaryPar(g *graph.Graph, p *Partition, workers int) *Eval {
	ev := NewEvalPar(g, p, workers)
	ev.ResetBoundaryPar(g, p, workers)
	return ev
}

// Reserve grows the Eval's per-node buffer capacities to accommodate a graph
// of n nodes without changing any tracked state. The multilevel uncoarsening
// phase calls it once with the finest graph's size before walking back up the
// hierarchy: every level's ResetBoundaryPar/ResetCommVolPar then reslices
// within capacity instead of reallocating as the levels grow. Disabled
// trackers stay disabled — Reserve presizes only what the Eval already
// tracks.
func (ev *Eval) Reserve(n, parts int) {
	if ev.extDeg != nil {
		ev.extDeg = reserveInt32(ev.extDeg, n)
		ev.bpos = reserveInt32(ev.bpos, n)
		ev.bnodes = reserveInt32(ev.bnodes, n)
	}
	if ev.nbrCnt != nil {
		ev.nbrCnt = reserveInt32(ev.nbrCnt, n*parts)
		ev.extParts = reserveInt32(ev.extParts, n)
	}
}

// reserveInt32 returns s with capacity at least n, preserving its length and
// contents.
func reserveInt32(s []int32, n int) []int32 {
	if cap(s) >= n {
		return s
	}
	out := make([]int32, len(s), n)
	copy(out, s)
	return out
}

// ResetBoundaryPar is ResetBoundary with the O(V+E) adjacency scan sharded
// over `workers` goroutines. Phase one fills extDeg (every slot owned by
// exactly one chunk) and counts each chunk's boundary members; a serial
// prefix sum assigns each chunk its slice of bnodes; phase two writes the
// members and their bpos slots in place. Chunks are contiguous ascending
// node ranges, so the merged bnodes list is ascending — exactly the state
// the serial ResetBoundary builds, bit for bit, at every worker count.
func (ev *Eval) ResetBoundaryPar(g *graph.Graph, p *Partition, workers int) {
	n := g.NumNodes()
	if cap(ev.extDeg) >= n {
		ev.extDeg = ev.extDeg[:n]
		ev.bpos = ev.bpos[:n]
	} else {
		ev.extDeg = make([]int32, n)
		ev.bpos = make([]int32, n)
	}
	if n == 0 {
		ev.bnodes = ev.bnodes[:0]
		return
	}
	a := p.Assign
	nChunks := (n + evalChunk - 1) / evalChunk
	counts := make([]int32, nChunks)
	par.For(workers, nChunks, func(_, clo, chi int) {
		for c := clo; c < chi; c++ {
			lo, hi := c*evalChunk, (c+1)*evalChunk
			if hi > n {
				hi = n
			}
			var cnt int32
			for v := lo; v < hi; v++ {
				var ext int32
				for _, u := range g.Neighbors(v) {
					if a[u] != a[v] {
						ext++
					}
				}
				ev.extDeg[v] = ext
				ev.bpos[v] = 0
				if ext > 0 {
					cnt++
				}
			}
			counts[c] = cnt
		}
	})
	var total int32
	offs := counts // reuse: offs[c] becomes the chunk's first bnodes index
	for c := 0; c < nChunks; c++ {
		cnt := counts[c]
		offs[c] = total
		total += cnt
	}
	if cap(ev.bnodes) >= int(total) {
		ev.bnodes = ev.bnodes[:total]
	} else {
		ev.bnodes = make([]int32, total)
	}
	par.For(workers, nChunks, func(_, clo, chi int) {
		for c := clo; c < chi; c++ {
			lo, hi := c*evalChunk, (c+1)*evalChunk
			if hi > n {
				hi = n
			}
			idx := offs[c]
			for v := lo; v < hi; v++ {
				if ev.extDeg[v] > 0 {
					ev.bnodes[idx] = int32(v)
					ev.bpos[v] = idx + 1
					idx++
				}
			}
		}
	})
}

// ResetCommVolPar is EnableCommVol with the O(V+E) scan sharded over
// `workers` goroutines: every node's neighbor-count row and foreign-part
// count is owned by exactly one fixed-width chunk, and the per-chunk partial
// volume vectors merge in ascending chunk order — the same grid discipline
// as NewEvalPar, so the rebuilt state is bit-identical at every worker count
// (and, the counters being integers, exact).
func (ev *Eval) ResetCommVolPar(g *graph.Graph, p *Partition, workers int) {
	n := g.NumNodes()
	parts := p.Parts
	if cap(ev.nbrCnt) >= n*parts {
		ev.nbrCnt = ev.nbrCnt[:n*parts]
	} else {
		ev.nbrCnt = make([]int32, n*parts)
	}
	if cap(ev.extParts) >= n {
		ev.extParts = ev.extParts[:n]
	} else {
		ev.extParts = make([]int32, n)
	}
	if len(ev.Vols) != parts {
		ev.Vols = make([]float64, parts)
	}
	for q := range ev.Vols {
		ev.Vols[q] = 0
	}
	if n == 0 {
		return
	}
	a := p.Assign
	nChunks := (n + evalChunk - 1) / evalChunk
	partV := make([]float64, nChunks*parts)
	par.For(workers, nChunks, func(_, clo, chi int) {
		for c := clo; c < chi; c++ {
			lo, hi := c*evalChunk, (c+1)*evalChunk
			if hi > n {
				hi = n
			}
			pv := partV[c*parts : (c+1)*parts]
			for v := lo; v < hi; v++ {
				row := ev.nbrCnt[v*parts : (v+1)*parts]
				for q := range row {
					row[q] = 0
				}
				for _, u := range g.Neighbors(v) {
					row[a[u]]++
				}
				var ext int32
				own := int(a[v])
				for q, cnt := range row {
					if cnt > 0 && q != own {
						ext++
					}
				}
				ev.extParts[v] = ext
				pv[own] += float64(ext)
			}
		}
	})
	for c := 0; c < nChunks; c++ {
		for q := 0; q < parts; q++ {
			ev.Vols[q] += partV[c*parts+q]
		}
	}
}

// BoundaryLen returns the size of the tracked boundary set. It panics if
// tracking is not enabled.
func (ev *Eval) BoundaryLen() int {
	if ev.extDeg == nil {
		panic("partition: BoundaryLen called on Eval without boundary tracking")
	}
	return len(ev.bnodes)
}

// BoundaryNode returns the i-th tracked boundary node in the set's internal
// order — arbitrary, but fixed between Moves, which is what parallel argmax
// scans over par-owned index ranges need (callers wanting deterministic
// results break ties on node id, exactly as with ForEachBoundary). It panics
// if tracking is not enabled.
func (ev *Eval) BoundaryNode(i int) int {
	if ev.extDeg == nil {
		panic("partition: BoundaryNode called on Eval without boundary tracking")
	}
	return int(ev.bnodes[i])
}
