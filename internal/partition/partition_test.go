package partition

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

// pathGraph builds 0-1-2-...-(n-1).
func pathGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1, 1)
	}
	return b.Build()
}

func TestNewAndValidate(t *testing.T) {
	g := pathGraph(4)
	p := New(4, 2)
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	p.Assign[0] = 5
	if err := p.Validate(g); err == nil {
		t.Error("out-of-range part accepted")
	}
	q := New(3, 2)
	if err := q.Validate(g); err == nil {
		t.Error("wrong length accepted")
	}
}

func TestNewPanicsOnBadParts(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(4, 0) should panic")
		}
	}()
	New(4, 0)
}

func TestCutSizePath(t *testing.T) {
	// Path 0-1-2-3-4-5-6-7, partition 11100011 from the paper's §3.1
	// (nodes 0,1,2,6,7 in part 1; nodes 3,4,5 in part 0): 2 cut edges.
	g := pathGraph(8)
	p := New(8, 2)
	for _, v := range []int{0, 1, 2, 6, 7} {
		p.Assign[v] = 1
	}
	if cut := p.CutSize(g); cut != 2 {
		t.Errorf("cut = %v, want 2", cut)
	}
	// 10101011 has 6 inter-part edges, as the paper states.
	p2 := New(8, 2)
	for i, c := range "10101011" {
		if c == '1' {
			p2.Assign[i] = 1
		}
	}
	if cut := p2.CutSize(g); cut != 6 {
		t.Errorf("cut(10101011) = %v, want 6", cut)
	}
}

func TestPaperFitnessOrdering(t *testing.T) {
	// From §3.1: on the 8-node path, 11100001 (balanced) is fitter than
	// 11100011, which is fitter than 10101011.
	g := pathGraph(8)
	mk := func(s string) *Partition {
		p := New(8, 2)
		for i, c := range s {
			if c == '1' {
				p.Assign[i] = 1
			}
		}
		return p
	}
	f1 := mk("11100001").Fitness(g, TotalCut)
	f2 := mk("11100011").Fitness(g, TotalCut)
	f3 := mk("10101011").Fitness(g, TotalCut)
	if !(f1 > f2 && f2 > f3) {
		t.Errorf("paper ordering violated: %v, %v, %v", f1, f2, f3)
	}
}

func TestImbalanceSq(t *testing.T) {
	g := pathGraph(8)
	p := New(8, 2) // all in part 0: weights (8, 0), avg 4 -> 16+16 = 32
	if got := p.ImbalanceSq(g); got != 32 {
		t.Errorf("ImbalanceSq = %v, want 32", got)
	}
	for v := 4; v < 8; v++ {
		p.Assign[v] = 1
	}
	if got := p.ImbalanceSq(g); got != 0 {
		t.Errorf("balanced ImbalanceSq = %v, want 0", got)
	}
}

func TestPartCutsAndMax(t *testing.T) {
	// Star: center 0 connected to 1..4; center alone in part 0.
	b := graph.NewBuilder(5)
	for v := 1; v <= 4; v++ {
		b.AddEdge(0, v, 1)
	}
	g := b.Build()
	p := New(5, 2)
	for v := 1; v <= 4; v++ {
		p.Assign[v] = 1
	}
	cuts := p.PartCuts(g)
	if cuts[0] != 4 || cuts[1] != 4 {
		t.Errorf("PartCuts = %v, want [4 4]", cuts)
	}
	if p.MaxPartCut(g) != 4 {
		t.Errorf("MaxPartCut = %v", p.MaxPartCut(g))
	}
	if p.CutSize(g) != 4 {
		t.Errorf("CutSize = %v, want 4", p.CutSize(g))
	}
}

func TestWeightedEdgesRespected(t *testing.T) {
	b := graph.NewBuilder(2)
	b.AddEdge(0, 1, 3.5)
	g := b.Build()
	p := New(2, 2)
	p.Assign[1] = 1
	if p.CutSize(g) != 3.5 {
		t.Errorf("weighted cut = %v, want 3.5", p.CutSize(g))
	}
}

func TestBoundaryNodes(t *testing.T) {
	g := pathGraph(6)
	p := New(6, 2)
	for v := 3; v < 6; v++ {
		p.Assign[v] = 1
	}
	bn := p.BoundaryNodes(g)
	if len(bn) != 2 || bn[0] != 2 || bn[1] != 3 {
		t.Errorf("BoundaryNodes = %v, want [2 3]", bn)
	}
}

func TestBalanced(t *testing.T) {
	p := New(7, 2)
	for v := 0; v < 3; v++ {
		p.Assign[v] = 1
	}
	if !p.Balanced() { // 4 vs 3
		t.Error("4/3 split reported unbalanced")
	}
	p.Assign[3] = 1
	if !p.Balanced() { // 3 vs 4
		t.Error("3/4 split reported unbalanced")
	}
	p.Assign[4] = 1
	if p.Balanced() { // 2 vs 5
		t.Error("2/5 split reported balanced")
	}
}

func TestRandomBalancedIsBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, parts := range []int{2, 3, 4, 8} {
		for _, n := range []int{10, 17, 64} {
			p := RandomBalanced(n, parts, rng)
			if !p.Balanced() {
				t.Errorf("RandomBalanced(%d,%d) sizes %v", n, parts, p.PartSizes())
			}
		}
	}
}

func TestFitnessObjectivesDiffer(t *testing.T) {
	g := gen.Mesh(50, 3)
	rng := rand.New(rand.NewSource(2))
	p := RandomBalanced(50, 4, rng)
	f1 := p.Fitness(g, TotalCut)
	f2 := p.Fitness(g, WorstCut)
	if f1 >= 0 || f2 >= 0 {
		t.Errorf("fitness should be negative for a random partition: %v, %v", f1, f2)
	}
	// Total cut counts every part's boundary; worst counts one part, so
	// Fitness1 <= Fitness2 always (same imbalance term).
	if f1 > f2 {
		t.Errorf("Fitness1 %v > Fitness2 %v", f1, f2)
	}
}

func TestExtendRandomBalancedKeepsOldAssignments(t *testing.T) {
	base := gen.Mesh(118, 11)
	rng := rand.New(rand.NewSource(5))
	grown := gen.Refine(base, 21, rng)
	old := RandomBalanced(base.NumNodes(), 4, rng)
	ext := ExtendRandomBalanced(old, grown, rng)
	for v := 0; v < base.NumNodes(); v++ {
		if ext.Assign[v] != old.Assign[v] {
			t.Fatalf("node %d reassigned by extension", v)
		}
	}
	if err := ext.Validate(grown); err != nil {
		t.Fatal(err)
	}
	// Balance maintained: sizes within 2 of each other (new nodes always go
	// to a lightest part).
	s := ext.PartSizes()
	min, max := s[0], s[0]
	for _, x := range s {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	if max-min > 2 {
		t.Errorf("extension unbalanced: %v", s)
	}
}

func TestExtendMajorityNeighbor(t *testing.T) {
	// Path 0-1-2 grown with node 3 attached to node 2: majority rule must
	// put 3 in 2's part.
	b := graph.FromGraph(pathGraph(3))
	nv := b.AddNode(1)
	b.AddEdge(nv, 2, 1)
	g := b.Build()
	old := New(3, 2)
	old.Assign[2] = 1
	ext := ExtendMajorityNeighbor(old, g)
	if ext.Assign[3] != 1 {
		t.Errorf("new node went to part %d, want 1", ext.Assign[3])
	}
}

func TestExtendMajorityNeighborDeterministic(t *testing.T) {
	base := gen.Mesh(78, 9)
	rng := rand.New(rand.NewSource(7))
	grown := gen.Refine(base, 10, rng)
	old := RandomBalanced(base.NumNodes(), 4, rand.New(rand.NewSource(8)))
	a := ExtendMajorityNeighbor(old, grown)
	b := ExtendMajorityNeighbor(old, grown)
	for v := range a.Assign {
		if a.Assign[v] != b.Assign[v] {
			t.Fatal("majority-neighbor extension not deterministic")
		}
	}
}

func TestFitnessWeighted(t *testing.T) {
	g := gen.Mesh(40, 4)
	rng := rand.New(rand.NewSource(9))
	p := RandomBalanced(40, 4, rng)
	// alpha=1 must agree with Fitness exactly.
	for _, o := range []Objective{TotalCut, WorstCut} {
		if p.FitnessWeighted(g, o, 1) != p.Fitness(g, o) {
			t.Errorf("%v: FitnessWeighted(1) != Fitness", o)
		}
	}
	// alpha=0 leaves only the balance term; a balanced partition scores 0.
	if got := p.FitnessWeighted(g, TotalCut, 0); got != -p.ImbalanceSq(g) {
		t.Errorf("alpha=0 fitness = %v, want pure balance term", got)
	}
	// Fitness decreases monotonically in alpha for a partition with cut > 0.
	prev := p.FitnessWeighted(g, TotalCut, 0)
	for _, a := range []float64{0.5, 1, 2, 10} {
		cur := p.FitnessWeighted(g, TotalCut, a)
		if cur >= prev {
			t.Errorf("fitness not decreasing in alpha at %v: %v >= %v", a, cur, prev)
		}
		prev = cur
	}
}

func TestFitnessWeightedPanicsOnBadObjective(t *testing.T) {
	g := gen.Mesh(10, 1)
	p := New(10, 2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	p.FitnessWeighted(g, Objective(9), 1)
}

// Property: CutSize is exactly half of Σ_q PartCuts(q) for unit and weighted
// edges; fitness decreases when imbalance or cut grows.
func TestQuickCutConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(40)
		g := gen.Mesh(n, seed)
		parts := 2 + rng.Intn(4)
		p := Random(n, parts, rng)
		var sum float64
		for _, c := range p.PartCuts(g) {
			sum += c
		}
		return math.Abs(sum-2*p.CutSize(g)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: moving a node to the part of all its neighbors never increases
// CutSize.
func TestQuickLocalMoveReducesCut(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(30)
		g := gen.Mesh(n, seed)
		p := Random(n, 2, rng)
		before := p.CutSize(g)
		// Pick a node whose neighbors are all in the other part; move it.
		for v := 0; v < n; v++ {
			nbrs := g.Neighbors(v)
			if len(nbrs) == 0 {
				continue
			}
			q := p.Assign[nbrs[0]]
			all := q != p.Assign[v]
			for _, u := range nbrs[1:] {
				if p.Assign[u] != q {
					all = false
					break
				}
			}
			if all {
				p.Assign[v] = q
				return p.CutSize(g) <= before
			}
		}
		return true // no such node; vacuous
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: ExtendRandomBalanced never leaves a part more than one node-add
// ahead of the minimum when starting balanced.
func TestQuickExtendBalance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := gen.Mesh(30+rng.Intn(40), seed)
		grown := gen.Refine(base, 5+rng.Intn(15), rng)
		parts := 2 + rng.Intn(6)
		old := RandomBalanced(base.NumNodes(), parts, rng)
		ext := ExtendRandomBalanced(old, grown, rng)
		s := ext.PartSizes()
		min, max := s[0], s[0]
		for _, x := range s {
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		return max-min <= 2 && ext.Validate(grown) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
