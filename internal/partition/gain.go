package partition

import "repro/internal/graph"

// This file is the single definition of the objective-parameterized move
// gain. Every refiner — the serial boundary climber, the colored parallel
// climber, and the rebalance sweeps — computes "how much does moving v to
// part `to` improve the objective" through these two methods, so the gain
// arithmetic of each objective exists exactly once in the codebase.
//
// The floating-point expressions of the TotalCut and WorstCut cases are the
// refiners' historical ones, verbatim: float addition is not associative, so
// re-grouping `-(imbDelta + dFrom + dTo)` would change last bits and break
// the bit-identity contract every committed edge-cut baseline pins.

// MoveGainFromWeights returns the fitness improvement of moving v to part
// `to` under objective o — positive means the move strictly improves the
// objective — for callers that already hold the weight of v's edges into its
// current part (wFrom), into `to` (wTo), and into every other part (wOther).
// avg is the ideal part weight W/k. The weight triple parameterization is
// what lets the colored climber precompute the expensive O(deg) scan in
// parallel and fold it with the current aggregates at commit time.
//
// For CommVolume the edge-weight triple is irrelevant (the volume counts
// parts, not edge weight); the gain is computed from the tracked
// per-(node, part) counts with one O(deg) scan, so it always reflects the
// Eval's current state. Comm-volume tracking must be enabled.
func (ev *Eval) MoveGainFromWeights(g *graph.Graph, p *Partition, o Objective, avg float64, v, to int, wFrom, wTo, wOther float64) float64 {
	from := int(p.Assign[v])

	// Imbalance delta: only W(from) and W(to) change.
	wv := g.NodeWeight(v)
	before := sq(ev.Weights[from]-avg) + sq(ev.Weights[to]-avg)
	after := sq(ev.Weights[from]-wv-avg) + sq(ev.Weights[to]+wv-avg)
	imbDelta := after - before

	switch o {
	case TotalCut:
		// Cut deltas: edges to `from` become cut, edges to `to` become
		// internal, edges to other parts transfer between C(from) and C(to).
		dFrom := wFrom - wTo - wOther
		dTo := wFrom - wTo + wOther
		// Fitness 1 counts every cut edge twice: Σ_q C(q) changes by
		// dFrom + dTo.
		return -(imbDelta + dFrom + dTo)
	case WorstCut:
		dFrom := wFrom - wTo - wOther
		dTo := wFrom - wTo + wOther
		curMax, newMax := 0.0, 0.0
		for q, cut := range ev.Cuts {
			if cut > curMax {
				curMax = cut
			}
			eff := cut
			switch q {
			case from:
				eff += dFrom
			case to:
				eff += dTo
			}
			if eff > newMax {
				newMax = eff
			}
		}
		return -(imbDelta + newMax - curMax)
	case CommVolume:
		return -(imbDelta + ev.CommVolDelta(g, p, v, to))
	default:
		panic("partition: unknown objective")
	}
}

// MoveGain is MoveGainFromWeights with the weight triple computed here, by
// one scan of v's adjacency — the form the serial climber uses, O(deg + parts)
// per candidate.
func (ev *Eval) MoveGain(g *graph.Graph, p *Partition, o Objective, avg float64, v, to int) float64 {
	from := int(p.Assign[v])
	var wFrom, wTo, wOther float64
	if o != CommVolume { // the volume gain never consults edge weights
		ws := g.EdgeWeights(v)
		for i, u := range g.Neighbors(v) {
			switch int(p.Assign[u]) {
			case from:
				wFrom += ws[i]
			case to:
				wTo += ws[i]
			default:
				wOther += ws[i]
			}
		}
	}
	return ev.MoveGainFromWeights(g, p, o, avg, v, to, wFrom, wTo, wOther)
}

func sq(x float64) float64 { return x * x }
