package partition

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// parTestWidths are the worker counts every sharded routine is pinned at;
// 0 resolves to GOMAXPROCS.
var parTestWidths = []int{1, 2, 4, 8, 0}

// randomTestGraph builds a connected random graph with integer node and edge
// weights (so reassociated float sums are exact and equality checks can be
// bit-strict).
func randomTestGraph(n int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetNodeWeight(v, float64(1+rng.Intn(9)))
	}
	for v := 1; v < n; v++ {
		b.AddEdge(v, rng.Intn(v), float64(1+rng.Intn(7)))
	}
	for i := 0; i < 3*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !b.HasEdge(u, v) {
			b.AddEdge(u, v, float64(1+rng.Intn(7)))
		}
	}
	return b.Build()
}

// requireEvalEqual asserts two Evals agree exactly: aggregates bit for bit,
// and — when both track the boundary — the full boundary state (membership,
// external degrees, and the internal bnodes order, which the parallel
// rebuild promises to reproduce exactly).
func requireEvalEqual(t *testing.T, label string, want, got *Eval) {
	t.Helper()
	for q := range want.Weights {
		if want.Weights[q] != got.Weights[q] {
			t.Fatalf("%s: part %d weight %v != %v", label, q, got.Weights[q], want.Weights[q])
		}
		if want.Cuts[q] != got.Cuts[q] {
			t.Fatalf("%s: part %d cut %v != %v", label, q, got.Cuts[q], want.Cuts[q])
		}
	}
	if want.TracksBoundary() != got.TracksBoundary() {
		t.Fatalf("%s: tracking mismatch", label)
	}
	if !want.TracksBoundary() {
		return
	}
	if len(want.bnodes) != len(got.bnodes) {
		t.Fatalf("%s: boundary size %d != %d", label, len(got.bnodes), len(want.bnodes))
	}
	for i := range want.bnodes {
		if want.bnodes[i] != got.bnodes[i] {
			t.Fatalf("%s: bnodes[%d] = %d != %d", label, i, got.bnodes[i], want.bnodes[i])
		}
	}
	for v := range want.extDeg {
		if want.extDeg[v] != got.extDeg[v] {
			t.Fatalf("%s: extDeg[%d] = %d != %d", label, v, got.extDeg[v], want.extDeg[v])
		}
		if want.bpos[v] != got.bpos[v] {
			t.Fatalf("%s: bpos[%d] = %d != %d", label, v, got.bpos[v], want.bpos[v])
		}
	}
}

func TestNewEvalParMatchesSerial(t *testing.T) {
	for _, n := range []int{1, 40, 500, 3000, 6000} {
		g := randomTestGraph(n, int64(n))
		rng := rand.New(rand.NewSource(int64(n) * 3))
		parts := 2 + rng.Intn(7)
		if parts > n {
			parts = n
		}
		p := RandomBalanced(n, parts, rng)
		want := NewEvalBoundary(g, p)
		for _, workers := range parTestWidths {
			got := NewEvalBoundaryPar(g, p, workers)
			requireEvalEqual(t, "n/workers case", want, got)
		}
	}
}

func TestResetBoundaryParMatchesSerialAfterMoves(t *testing.T) {
	// Drive a partition through random moves (with a serially-tracked Eval),
	// then rebuild the boundary in parallel at several widths: every rebuild
	// must reproduce the serially-rebuilt state exactly, including on the
	// reused buffers of a dirty Eval.
	g := randomTestGraph(2500, 11)
	rng := rand.New(rand.NewSource(12))
	p := RandomBalanced(2500, 5, rng)
	ev := NewEvalBoundary(g, p)
	for i := 0; i < 400; i++ {
		ev.Move(g, p, rng.Intn(2500), rng.Intn(5))
	}
	want := NewEvalBoundary(g, p)
	for _, workers := range parTestWidths {
		got := ev.Clone()
		got.ResetBoundaryPar(g, p, workers)
		// Aggregates are carried by Move, not rebuilt — with integer weights
		// they must still equal the fresh scan's exactly.
		requireEvalEqual(t, "rebuild", want, got)
	}
}

func TestBoundaryIndexedAccess(t *testing.T) {
	g := randomTestGraph(300, 21)
	p := RandomBalanced(300, 4, rand.New(rand.NewSource(22)))
	ev := NewEvalBoundary(g, p)
	seen := make(map[int]bool)
	for i := 0; i < ev.BoundaryLen(); i++ {
		seen[ev.BoundaryNode(i)] = true
	}
	for _, v := range ev.Boundary() {
		if !seen[v] {
			t.Fatalf("boundary node %d missing from indexed access", v)
		}
	}
	if len(seen) != ev.BoundaryLen() {
		t.Fatalf("indexed access yielded %d distinct nodes, boundary has %d", len(seen), ev.BoundaryLen())
	}
}

func TestBoundaryAccessorsPanicWithoutTracking(t *testing.T) {
	g := randomTestGraph(10, 1)
	p := RandomBalanced(10, 2, rand.New(rand.NewSource(2)))
	ev := NewEval(g, p)
	for name, fn := range map[string]func(){
		"BoundaryLen":  func() { ev.BoundaryLen() },
		"BoundaryNode": func() { ev.BoundaryNode(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic without tracking", name)
				}
			}()
			fn()
		}()
	}
}
