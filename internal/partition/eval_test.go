package partition

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
)

func TestNewEvalMatchesScans(t *testing.T) {
	g := gen.Mesh(80, 5)
	rng := rand.New(rand.NewSource(1))
	p := RandomBalanced(80, 5, rng)
	ev := NewEval(g, p)

	wantW := p.PartWeights(g)
	wantC := p.PartCuts(g)
	for q := range wantW {
		if ev.Weights[q] != wantW[q] {
			t.Errorf("Weights[%d] = %v, want %v", q, ev.Weights[q], wantW[q])
		}
		if ev.Cuts[q] != wantC[q] {
			t.Errorf("Cuts[%d] = %v, want %v", q, ev.Cuts[q], wantC[q])
		}
	}
	if got, want := ev.ImbalanceSq(g), p.ImbalanceSq(g); got != want {
		t.Errorf("ImbalanceSq = %v, want %v", got, want)
	}
	if got, want := ev.MaxCut(), p.MaxPartCut(g); got != want {
		t.Errorf("MaxCut = %v, want %v", got, want)
	}
}

// On unit-weight graphs every aggregate is an exact integer sum, so the
// cached fitness must equal the scan-based one bit for bit.
func TestEvalFitnessMatchesPartitionFitness(t *testing.T) {
	g := gen.Mesh(60, 9)
	rng := rand.New(rand.NewSource(2))
	for _, o := range []Objective{TotalCut, WorstCut} {
		for trial := 0; trial < 10; trial++ {
			p := RandomBalanced(60, 4, rng)
			ev := NewEval(g, p)
			if got, want := ev.Fitness(g, o), p.Fitness(g, o); got != want {
				t.Errorf("%v trial %d: Eval.Fitness = %v, Partition.Fitness = %v", o, trial, got, want)
			}
		}
	}
}

func TestEvalMoveTracksFreshScan(t *testing.T) {
	g := gen.Mesh(70, 11)
	rng := rand.New(rand.NewSource(3))
	p := RandomBalanced(70, 4, rng)
	ev := NewEval(g, p)
	for trial := 0; trial < 500; trial++ {
		v := rng.Intn(70)
		to := rng.Intn(4)
		ev.Move(g, p, v, to)
	}
	fresh := NewEval(g, p)
	for q := range fresh.Weights {
		if math.Abs(ev.Weights[q]-fresh.Weights[q]) > 1e-9 {
			t.Errorf("after moves: Weights[%d] = %v, fresh scan %v", q, ev.Weights[q], fresh.Weights[q])
		}
		if math.Abs(ev.Cuts[q]-fresh.Cuts[q]) > 1e-9 {
			t.Errorf("after moves: Cuts[%d] = %v, fresh scan %v", q, ev.Cuts[q], fresh.Cuts[q])
		}
	}
}

func TestEvalCloneIsIndependent(t *testing.T) {
	g := gen.Mesh(30, 13)
	rng := rand.New(rand.NewSource(4))
	p := RandomBalanced(30, 3, rng)
	ev := NewEval(g, p)
	c := ev.Clone()
	p2 := p.Clone()
	c.Move(g, p2, 0, int(p2.Assign[0]+1)%3)
	fresh := NewEval(g, p)
	for q := range fresh.Weights {
		if ev.Weights[q] != fresh.Weights[q] || ev.Cuts[q] != fresh.Cuts[q] {
			t.Fatal("mutating a clone changed the original Eval")
		}
	}
}
