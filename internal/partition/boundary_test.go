package partition

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// randomWeightedGraph builds a connected random graph with integer node and
// edge weights (package partition cannot import gen).
func randomWeightedGraph(n int, rng *rand.Rand, weighted bool) *graph.Graph {
	b := graph.NewBuilder(n)
	if weighted {
		for v := 0; v < n; v++ {
			b.SetNodeWeight(v, float64(1+rng.Intn(6)))
		}
	}
	w := func() float64 {
		if weighted {
			return float64(1 + rng.Intn(5))
		}
		return 1
	}
	for v := 1; v < n; v++ {
		b.AddEdge(v, rng.Intn(v), w())
	}
	for i := 0; i < 2*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !b.HasEdge(u, v) {
			b.AddEdge(u, v, w())
		}
	}
	return b.Build()
}

// contractedGraph collapses a random weighted graph through a random
// coarse map, reproducing the node-weighted graphs the multilevel pipeline
// refines at its intermediate levels.
func contractedGraph(n int, rng *rand.Rand) *graph.Graph {
	g := randomWeightedGraph(n, rng, true)
	nCoarse := 1 + n/3
	coarseOf := make([]int, n)
	for v := 0; v < n; v++ {
		if v < nCoarse {
			coarseOf[v] = v
		} else {
			coarseOf[v] = rng.Intn(nCoarse)
		}
	}
	return graph.Contract(g, coarseOf, nCoarse, 1)
}

// checkBoundaryMatchesBruteForce drives an Eval through a randomized Move
// sequence and verifies after every move that the tracked boundary set is
// exactly the brute-force recomputation (Partition.BoundaryNodes).
func checkBoundaryMatchesBruteForce(t *testing.T, g *graph.Graph, parts int, rng *rand.Rand) {
	t.Helper()
	n := g.NumNodes()
	p := RandomBalanced(n, parts, rng)
	ev := NewEvalBoundary(g, p)
	if !ev.TracksBoundary() {
		t.Fatal("NewEvalBoundary does not track the boundary")
	}
	check := func(step int) {
		want := p.BoundaryNodes(g)
		got := ev.Boundary()
		if len(got) != len(want) {
			t.Fatalf("step %d: boundary size %d, brute force %d", step, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("step %d: boundary[%d] = %d, brute force %d", step, i, got[i], want[i])
			}
		}
	}
	check(-1)
	for step := 0; step < 4*n; step++ {
		v := rng.Intn(n)
		to := rng.Intn(parts)
		ev.Move(g, p, v, to)
		check(step)
	}
	// The aggregates must also still match a fresh scan after the walk.
	fresh := NewEval(g, p)
	for q := 0; q < parts; q++ {
		if ev.Weights[q] != fresh.Weights[q] {
			t.Fatalf("part %d weight drifted: %v vs fresh %v", q, ev.Weights[q], fresh.Weights[q])
		}
		if ev.Cuts[q] != fresh.Cuts[q] {
			t.Fatalf("part %d cut drifted: %v vs fresh %v", q, ev.Cuts[q], fresh.Cuts[q])
		}
	}
}

func TestBoundaryInvariantRandomGraph(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomWeightedGraph(60+int(seed)*40, rng, false)
		checkBoundaryMatchesBruteForce(t, g, 2+int(seed), rng)
	}
}

func TestBoundaryInvariantWeightedGraph(t *testing.T) {
	for seed := int64(11); seed <= 13; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomWeightedGraph(80, rng, true)
		checkBoundaryMatchesBruteForce(t, g, 4, rng)
	}
}

func TestBoundaryInvariantContractedGraph(t *testing.T) {
	for seed := int64(21); seed <= 23; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := contractedGraph(150, rng)
		checkBoundaryMatchesBruteForce(t, g, 3, rng)
	}
}

func TestResetBoundaryRebuildsForNewGraph(t *testing.T) {
	// Reusing one Eval across graphs of different sizes is exactly what the
	// multilevel uncoarsening phase does at every projection.
	rng := rand.New(rand.NewSource(5))
	small := randomWeightedGraph(40, rng, true)
	big := randomWeightedGraph(160, rng, false)

	ps := RandomBalanced(small.NumNodes(), 4, rng)
	ev := NewEvalBoundary(small, ps)

	pb := RandomBalanced(big.NumNodes(), 4, rng)
	ev.Weights = NewEval(big, pb).Weights
	ev.Cuts = NewEval(big, pb).Cuts
	ev.ResetBoundary(big, pb)
	want := pb.BoundaryNodes(big)
	got := ev.Boundary()
	if len(got) != len(want) {
		t.Fatalf("after reset: boundary size %d, brute force %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("after reset: boundary[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// And moves keep it exact on the new graph.
	for step := 0; step < 200; step++ {
		ev.Move(big, pb, rng.Intn(big.NumNodes()), rng.Intn(4))
	}
	want = pb.BoundaryNodes(big)
	got = ev.Boundary()
	if len(got) != len(want) {
		t.Fatalf("after moves: boundary size %d, brute force %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("after moves: boundary[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestCloneCopiesBoundaryTracking(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomWeightedGraph(50, rng, false)
	p := RandomBalanced(g.NumNodes(), 3, rng)
	ev := NewEvalBoundary(g, p)
	cl := ev.Clone()
	if !cl.TracksBoundary() {
		t.Fatal("clone lost boundary tracking")
	}
	// Diverging the clone's partition must not corrupt the original.
	p2 := p.Clone()
	for step := 0; step < 100; step++ {
		cl.Move(g, p2, rng.Intn(g.NumNodes()), rng.Intn(3))
	}
	want := p.BoundaryNodes(g)
	got := ev.Boundary()
	if len(got) != len(want) {
		t.Fatalf("original boundary corrupted by clone moves: %d vs %d nodes", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("original boundary[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestBoundaryPanicsWithoutTracking(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomWeightedGraph(20, rng, false)
	p := RandomBalanced(g.NumNodes(), 2, rng)
	ev := NewEval(g, p)
	if ev.TracksBoundary() {
		t.Fatal("plain NewEval tracks the boundary")
	}
	defer func() {
		if recover() == nil {
			t.Error("Boundary() on a non-tracking Eval did not panic")
		}
	}()
	ev.Boundary()
}
