package kl

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
)

func TestRefineFixesGrossImbalance(t *testing.T) {
	// Everything in part 0: rebalance must redistribute into all 4 parts.
	g := gen.Mesh(80, 21)
	p := partition.New(g.NumNodes(), 4)
	Refine(g, p, 2)
	sizes := p.PartSizes()
	for q, s := range sizes {
		if s == 0 {
			t.Errorf("part %d still empty after rebalance: %v", q, sizes)
		}
	}
	ideal := float64(g.NumNodes()) / 4
	for q, s := range sizes {
		if float64(s) > ideal+2 {
			t.Errorf("part %d overweight after rebalance: %v", q, sizes)
		}
	}
}

func TestRefineHandlesDisconnectedOverweightPart(t *testing.T) {
	// An overweight part with NO boundary nodes (its own component) forces
	// the arbitrary-node fallback in rebalance.
	m1 := gen.Mesh(30, 22)
	b := graph.FromGraph(m1)
	// Second component of 10 isolated-chain nodes, all in part 0 below.
	first := -1
	for i := 0; i < 10; i++ {
		v := b.AddNode(1)
		if first < 0 {
			first = v
		} else {
			b.AddEdge(v-1, v, 1)
		}
	}
	g := b.Build()
	p := partition.New(g.NumNodes(), 2)
	// Component 1 (the mesh) split evenly; the isolated chain all in part 0,
	// making part 0 overweight with its surplus unreachable from part 1.
	for v := 0; v < 15; v++ {
		p.Assign[v] = 1
	}
	Refine(g, p, 1)
	sizes := p.PartSizes()
	diff := sizes[0] - sizes[1]
	if diff < 0 {
		diff = -diff
	}
	if diff > 4 {
		t.Errorf("rebalance left sizes %v", sizes)
	}
}

func TestRefinePreservesValidity(t *testing.T) {
	g := gen.Mesh(60, 23)
	p := partition.New(g.NumNodes(), 3)
	for v := 0; v < 10; v++ {
		p.Assign[v] = 1
	}
	Refine(g, p, 0)
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
}
