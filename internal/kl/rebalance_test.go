package kl

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
)

func TestRefineFixesGrossImbalance(t *testing.T) {
	// Everything in part 0: rebalance must redistribute into all 4 parts.
	g := gen.Mesh(80, 21)
	p := partition.New(g.NumNodes(), 4)
	Refine(g, p, 2)
	sizes := p.PartSizes()
	for q, s := range sizes {
		if s == 0 {
			t.Errorf("part %d still empty after rebalance: %v", q, sizes)
		}
	}
	ideal := float64(g.NumNodes()) / 4
	for q, s := range sizes {
		if float64(s) > ideal+2 {
			t.Errorf("part %d overweight after rebalance: %v", q, sizes)
		}
	}
}

func TestRefineHandlesDisconnectedOverweightPart(t *testing.T) {
	// An overweight part with NO boundary nodes (its own component) forces
	// the arbitrary-node fallback in rebalance.
	m1 := gen.Mesh(30, 22)
	b := graph.FromGraph(m1)
	// Second component of 10 isolated-chain nodes, all in part 0 below.
	first := -1
	for i := 0; i < 10; i++ {
		v := b.AddNode(1)
		if first < 0 {
			first = v
		} else {
			b.AddEdge(v-1, v, 1)
		}
	}
	g := b.Build()
	p := partition.New(g.NumNodes(), 2)
	// Component 1 (the mesh) split evenly; the isolated chain all in part 0,
	// making part 0 overweight with its surplus unreachable from part 1.
	for v := 0; v < 15; v++ {
		p.Assign[v] = 1
	}
	Refine(g, p, 1)
	sizes := p.PartSizes()
	diff := sizes[0] - sizes[1]
	if diff < 0 {
		diff = -diff
	}
	if diff > 4 {
		t.Errorf("rebalance left sizes %v", sizes)
	}
}

func TestRebalanceBalancesWeightNotCount(t *testing.T) {
	// Regression: rebalance used to balance node *counts*, so on a graph
	// with skewed node weights it would happily leave one part holding all
	// the heavy nodes. Here the first 10 nodes weigh 10 and the rest weigh
	// 1, and the starting partition gives part 0 every heavy node plus an
	// equal share of light ones — perfectly count-balanced, grossly
	// weight-imbalanced. A count-based rebalance does nothing; the
	// weight-aware one must move heavy weight out of part 0.
	const n, parts, heavy = 40, 4, 10
	rng := rand.New(rand.NewSource(31))
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		if v < heavy {
			b.SetNodeWeight(v, 10)
		}
	}
	for v := 1; v < n; v++ {
		b.AddEdge(v, rng.Intn(v), 1)
	}
	for i := 0; i < n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !b.HasEdge(u, v) {
			b.AddEdge(u, v, 1)
		}
	}
	g := b.Build()
	p := partition.New(n, parts)
	for v := 0; v < n; v++ {
		if v < heavy {
			p.Assign[v] = 0
		} else {
			p.Assign[v] = uint16(v % parts)
		}
	}
	before := p.PartWeights(g)
	Rebalance(g, p, nil, partition.TotalCut)
	after := p.PartWeights(g)
	ideal := g.TotalNodeWeight() / parts
	if after[0] >= before[0] {
		t.Fatalf("rebalance did not drain the overweight part: %v -> %v", before, after)
	}
	// Single-node moves cannot do better than the heaviest node's weight.
	for q, w := range after {
		if w > ideal+10+1e-9 {
			t.Errorf("part %d weight %.0f still exceeds ideal %.1f + max node weight", q, w, ideal)
		}
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestRebalanceWeightedDoesNotOscillate(t *testing.T) {
	// A part dominated by one giant node cannot be improved by single-node
	// moves: the imbalance is within the heaviest node's weight, so
	// rebalance must leave the partition untouched rather than ping-pong
	// the giant between parts.
	b := graph.NewBuilder(6)
	b.SetNodeWeight(0, 100)
	for v := 1; v < 6; v++ {
		b.AddEdge(v-1, v, 1)
	}
	g := b.Build()
	p := partition.New(6, 2)
	for v := 3; v < 6; v++ {
		p.Assign[v] = 1
	}
	want := append([]uint16(nil), p.Assign...)
	Rebalance(g, p, nil, partition.TotalCut)
	for v, q := range p.Assign {
		if q != want[v] {
			t.Fatalf("rebalance moved node %d (weight %v) without improving balance", v, g.NodeWeight(v))
		}
	}
}

func TestRefinePreservesValidity(t *testing.T) {
	g := gen.Mesh(60, 23)
	p := partition.New(g.NumNodes(), 3)
	for v := 0; v < 10; v++ {
		p.Assign[v] = 1
	}
	Refine(g, p, 0)
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
}
