package kl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/partition"
)

// TestMoveDeltaMatchesFullEvaluation cross-checks the incremental fitness
// delta against a full re-evaluation for both objectives, over many random
// states and moves.
func TestMoveDeltaMatchesFullEvaluation(t *testing.T) {
	g := gen.Mesh(50, 31)
	rng := rand.New(rand.NewSource(7))
	for _, o := range []partition.Objective{partition.TotalCut, partition.WorstCut} {
		p := partition.RandomBalanced(50, 4, rng)
		c := newClimber(g, p, o)
		for trial := 0; trial < 300; trial++ {
			v := rng.Intn(50)
			to := rng.Intn(4)
			from := int(p.Assign[v])
			if to == from {
				continue
			}
			before := p.Fitness(g, o)
			p.Assign[v] = uint16(to)
			after := p.Fitness(g, o)
			p.Assign[v] = uint16(from)
			want := after - before
			got := c.moveDelta(v, to)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("%v trial %d: delta = %v, full eval = %v", o, trial, got, want)
			}
			// Occasionally apply the move through the climber's cached
			// state so later trials exercise updated caches.
			if trial%4 == 0 {
				c.ev.Move(g, p, v, to)
			}
		}
		// Cached state must equal recomputed state at the end.
		fresh := p.PartWeights(g)
		for q := range fresh {
			if math.Abs(fresh[q]-c.ev.Weights[q]) > 1e-9 {
				t.Fatalf("%v: cached weight[%d] = %v, recomputed %v", o, q, c.ev.Weights[q], fresh[q])
			}
		}
		cuts := p.PartCuts(g)
		for q := range cuts {
			if math.Abs(cuts[q]-c.ev.Cuts[q]) > 1e-9 {
				t.Fatalf("cached cut[%d] = %v, recomputed %v", q, c.ev.Cuts[q], cuts[q])
			}
		}
	}
}

// Property: after HillClimb converges, no single boundary move improves
// fitness (verified by full evaluation, independent of the incremental
// machinery).
func TestQuickHillClimbTrueLocalOptimum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 15 + rng.Intn(40)
		g := gen.Mesh(n, seed)
		parts := 2 + rng.Intn(4)
		o := []partition.Objective{partition.TotalCut, partition.WorstCut}[rng.Intn(2)]
		p := partition.RandomBalanced(n, parts, rng)
		HillClimb(g, p, o, 0)
		base := p.Fitness(g, o)
		for v := 0; v < n; v++ {
			from := p.Assign[v]
			for q := 0; q < parts; q++ {
				if q == int(from) {
					continue
				}
				// Only neighbor parts are candidate moves in HillClimb.
				isNbr := false
				for _, u := range g.Neighbors(v) {
					if int(p.Assign[u]) == q {
						isNbr = true
						break
					}
				}
				if !isNbr {
					continue
				}
				p.Assign[v] = uint16(q)
				f2 := p.Fitness(g, o)
				p.Assign[v] = from
				if f2 > base+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}
