package kl

import (
	"repro/internal/graph"
	"repro/internal/par"
)

// Classes groups a node set by a deterministic proper coloring of the set's
// induced subgraph (par.Color: Jones–Plassmann over hashed-id priorities).
// Two nodes of one color class share no edge, so their candidate moves can
// be gain-evaluated concurrently against class-start state without one move
// invalidating another's deltas — the shared scheduling substrate of the
// colored boundary climb (per tile) and the parallel FM pass (per round,
// package fm).
//
// The zero value is ready to use. The slices returned by Group alias the
// scratch and are valid until the next call; a Classes is not safe for
// concurrent use.
type Classes struct {
	bIndex  []int32 // graph node -> 1 + position in the current set; 0 = absent
	members []int32 // set nodes grouped by color, ascending within a class
	off     []int32 // members[off[c]:off[c+1]] = color class c
	fill    []int32 // counting-sort fill cursor per class
	colors  par.ColorScratch

	// adjacency source of the in-flight Group call, for the bound-method
	// visitor (a per-node closure would allocate on every visit).
	g     *graph.Graph
	nodes []int
}

// adj is the induced-subgraph adjacency of the node set being grouped:
// neighbors outside the set are invisible.
func (cs *Classes) adj(i int, visit func(u int)) {
	for _, u := range cs.g.Neighbors(cs.nodes[i]) {
		if j := cs.bIndex[u]; j > 0 {
			visit(int(j - 1))
		}
	}
}

// Group colors the induced subgraph of nodes — which must be ascending and
// duplicate-free — over `workers` goroutines and returns the set grouped
// class by class: members[off[c]:off[c+1]] is color class c, internally
// ascending (the counting sort iterates the ascending input in order). The
// grouping is a pure function of (g, nodes): the coloring is bit-identical
// at every width and the grouping sweep is serial, so every caller sweeping
// "class by class, ascending inside" walks one deterministic permutation of
// the set.
func (cs *Classes) Group(g *graph.Graph, nodes []int, workers int) (members []int32, off []int32) {
	if len(cs.bIndex) < g.NumNodes() {
		cs.bIndex = make([]int32, g.NumNodes())
	}
	for i, v := range nodes {
		cs.bIndex[v] = int32(i + 1)
	}
	cs.g, cs.nodes = g, nodes
	colors := cs.colors.Color(workers, len(nodes), cs.adj)
	cs.g, cs.nodes = nil, nil
	nColors := 0
	for _, cl := range colors {
		if int(cl) >= nColors {
			nColors = int(cl) + 1
		}
	}
	cs.off = ensureInt32(cs.off, nColors+1)
	for i := range cs.off {
		cs.off[i] = 0
	}
	for _, cl := range colors {
		cs.off[cl+1]++
	}
	for cl := 0; cl < nColors; cl++ {
		cs.off[cl+1] += cs.off[cl]
	}
	cs.members = ensureInt32(cs.members, len(nodes))
	cs.fill = ensureInt32(cs.fill, nColors)
	for i := range cs.fill {
		cs.fill[i] = 0
	}
	for i, v := range nodes {
		cl := colors[i]
		cs.members[cs.off[cl]+cs.fill[cl]] = int32(v)
		cs.fill[cl]++
	}
	// Restore bIndex's zero invariant, so the next Group — of any node set —
	// starts clean without an O(NumNodes) sweep.
	for _, v := range nodes {
		cs.bIndex[v] = 0
	}
	return cs.members, cs.off
}
