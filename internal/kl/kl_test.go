package kl

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
)

func TestHillClimbNeverWorsensFitness(t *testing.T) {
	g := gen.PaperGraph(98)
	rng := rand.New(rand.NewSource(1))
	for _, o := range []partition.Objective{partition.TotalCut, partition.WorstCut} {
		p := partition.RandomBalanced(g.NumNodes(), 4, rng)
		before := p.Fitness(g, o)
		HillClimb(g, p, o, 0)
		after := p.Fitness(g, o)
		if after < before {
			t.Errorf("%v: fitness worsened %v -> %v", o, before, after)
		}
	}
}

func TestHillClimbReachesLocalOptimum(t *testing.T) {
	g := gen.Mesh(60, 2)
	rng := rand.New(rand.NewSource(3))
	p := partition.RandomBalanced(60, 2, rng)
	HillClimb(g, p, partition.TotalCut, 0)
	// At a local optimum no single move improves: one more pass moves nothing.
	if moves := HillClimb(g, p, partition.TotalCut, 1); moves != 0 {
		t.Errorf("second HillClimb made %d moves", moves)
	}
}

func TestHillClimbImprovesRandomPartition(t *testing.T) {
	g := gen.PaperGraph(167)
	rng := rand.New(rand.NewSource(5))
	p := partition.RandomBalanced(g.NumNodes(), 8, rng)
	before := p.CutSize(g)
	HillClimb(g, p, partition.TotalCut, 0)
	after := p.CutSize(g)
	if after >= before {
		t.Errorf("hill climbing did not reduce cut: %v -> %v", before, after)
	}
}

func TestHillClimbMaxPasses(t *testing.T) {
	g := gen.Mesh(80, 7)
	rng := rand.New(rand.NewSource(9))
	p := partition.RandomBalanced(80, 4, rng)
	q := p.Clone()
	m1 := HillClimb(g, p, partition.TotalCut, 1)
	mAll := HillClimb(g, q, partition.TotalCut, 0)
	if m1 > mAll {
		t.Errorf("1 pass made %d moves, unlimited made %d", m1, mAll)
	}
}

func TestBisectPanicsOnKWay(t *testing.T) {
	g := gen.Mesh(20, 1)
	p := partition.New(20, 4)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for 4-way Bisect")
		}
	}()
	Bisect(g, p)
}

func TestBisectPreservesSizesAndImprovesCut(t *testing.T) {
	g := gen.PaperGraph(144)
	rng := rand.New(rand.NewSource(11))
	p := partition.RandomBalanced(g.NumNodes(), 2, rng)
	sizesBefore := p.PartSizes()
	cutBefore := p.CutSize(g)
	gain := Bisect(g, p)
	sizesAfter := p.PartSizes()
	cutAfter := p.CutSize(g)
	if sizesBefore[0] != sizesAfter[0] || sizesBefore[1] != sizesAfter[1] {
		t.Errorf("KL changed part sizes: %v -> %v", sizesBefore, sizesAfter)
	}
	if cutAfter > cutBefore {
		t.Errorf("KL worsened cut: %v -> %v", cutBefore, cutAfter)
	}
	if gain < 0 {
		t.Errorf("negative total gain %v", gain)
	}
	// Gain must equal the actual cut reduction.
	if diff := (cutBefore - cutAfter) - gain; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("reported gain %v != cut reduction %v", gain, cutBefore-cutAfter)
	}
}

func TestBisectOnKnownGraph(t *testing.T) {
	// Two K4 cliques joined by one edge: optimal bisection separates the
	// cliques, cut = 1. Start from the worst split (2 nodes of each clique
	// on each side).
	b := graph.NewBuilder(8)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.AddEdge(i, j, 1)
			b.AddEdge(i+4, j+4, 1)
		}
	}
	b.AddEdge(0, 4, 1)
	g := b.Build()
	p := partition.New(8, 2)
	p.Assign = []uint16{0, 0, 1, 1, 0, 0, 1, 1}
	Bisect(g, p)
	if cut := p.CutSize(g); cut != 1 {
		t.Errorf("KL cut = %v, want 1 (sides %v)", cut, p.Assign)
	}
}

func TestRefineRestoresBalance(t *testing.T) {
	g := gen.PaperGraph(139)
	rng := rand.New(rand.NewSource(13))
	// Deliberately unbalanced start: first 100 nodes in part 0.
	p := partition.New(g.NumNodes(), 4)
	for v := 0; v < g.NumNodes(); v++ {
		if v >= 100 {
			p.Assign[v] = uint16(1 + v%3)
		}
	}
	_ = rng
	Refine(g, p, 0)
	sizes := p.PartSizes()
	ideal := float64(g.NumNodes()) / 4
	for q, s := range sizes {
		if float64(s) > ideal+2 {
			t.Errorf("part %d still overweight: %d (ideal %.1f, sizes %v)", q, s, ideal, sizes)
		}
	}
}

// Property: HillClimb is monotone in fitness for arbitrary meshes, parts,
// objectives, and starting partitions.
func TestQuickHillClimbMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 12 + rng.Intn(60)
		g := gen.Mesh(n, seed)
		parts := 2 + rng.Intn(6)
		o := []partition.Objective{partition.TotalCut, partition.WorstCut}[rng.Intn(2)]
		p := partition.Random(n, parts, rng)
		before := p.Fitness(g, o)
		HillClimb(g, p, o, 3)
		return p.Fitness(g, o) >= before && p.Validate(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: KL Bisect never increases the cut and never changes part sizes.
func TestQuickKLInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(40)
		g := gen.Mesh(n, seed)
		p := partition.RandomBalanced(n, 2, rng)
		s0 := p.PartSizes()
		c0 := p.CutSize(g)
		Bisect(g, p)
		s1 := p.PartSizes()
		return s0[0] == s1[0] && s0[1] == s1[1] && p.CutSize(g) <= c0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
