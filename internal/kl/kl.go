// Package kl provides local refinement of partitions: classic Kernighan–Lin
// pairwise-swap bisection improvement, and the boundary hill climbing of the
// paper's §3.6 ("only the boundary points of each part are examined to see if
// migrating them to the appropriate neighboring part improves fitness").
package kl

import (
	"math"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/partition"
)

// HillClimb performs steepest-descent boundary migration on p in place until
// no single-node move improves the fitness o, or maxPasses passes complete
// (maxPasses <= 0 means unlimited). It returns the number of moves made.
//
// Each pass scans the boundary nodes; for each, it evaluates moving the node
// to every neighboring part and takes the best strictly-improving move. This
// is exactly the paper's hill-climbing step: offspring are driven to the
// nearest local optimum of the fitness function. Move deltas are computed
// incrementally in O(deg(v) + parts), not by re-evaluating the fitness, so
// the GA can afford hill climbing on every offspring.
func HillClimb(g *graph.Graph, p *partition.Partition, o partition.Objective, maxPasses int) int {
	return HillClimbEval(g, p, o, maxPasses, partition.NewEval(g, p))
}

// HillClimbEval is HillClimb for callers that already hold the partition's
// cached aggregates (the GA engine keeps one Eval per individual): it skips
// the O(V+E) setup scan and keeps ev in sync with every move it makes, so
// the caller can read the final fitness straight from ev. A nil ev is
// rebuilt from p (equivalent to HillClimb).
func HillClimbEval(g *graph.Graph, p *partition.Partition, o partition.Objective, maxPasses int, ev *partition.Eval) int {
	if ev == nil {
		ev = partition.NewEval(g, p)
	}
	if o == partition.CommVolume && !ev.TracksCommVol() {
		ev.EnableCommVol(g, p)
	}
	c := &climber{
		g:   g,
		p:   p,
		o:   o,
		ev:  ev,
		avg: g.TotalNodeWeight() / float64(p.Parts),
	}
	return c.climb(maxPasses)
}

func newClimber(g *graph.Graph, p *partition.Partition, o partition.Objective) *climber {
	return &climber{
		g:   g,
		p:   p,
		o:   o,
		ev:  partition.NewEval(g, p),
		avg: g.TotalNodeWeight() / float64(p.Parts),
	}
}

func (c *climber) climb(maxPasses int) int {
	moves := 0
	for pass := 0; maxPasses <= 0 || pass < maxPasses; pass++ {
		improved := false
		for _, v := range c.boundary() {
			if c.tryBestMove(v) {
				moves++
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return moves
}

// boundary snapshots the boundary at pass start: from the Eval's tracked set
// in O(b log b) when available, otherwise by the O(V+E) scan. Both yield the
// boundary nodes in increasing order, so the climb visits identical nodes in
// identical order either way — tracking changes the cost, never the result.
func (c *climber) boundary() []int {
	if c.ev.TracksBoundary() {
		return c.ev.Boundary()
	}
	return c.p.BoundaryNodes(c.g)
}

// climber walks a partition together with its cached per-part weights and
// cuts (partition.Eval) so single-node move deltas are incremental.
type climber struct {
	g   *graph.Graph
	p   *partition.Partition
	o   partition.Objective
	ev  *partition.Eval
	avg float64
}

// moveDelta returns the fitness improvement of moving v to part `to`,
// computed through the objective-parameterized gain definition shared by
// every refiner (partition.Eval.MoveGain).
func (c *climber) moveDelta(v, to int) float64 {
	return c.ev.MoveGain(c.g, c.p, c.o, c.avg, v, to)
}

// tryBestMove moves v to the neighboring part that most improves fitness, if
// any strictly does, updating the cached state. Candidate parts are examined
// in neighbor order (ties go to the earliest), keeping the climb fully
// deterministic. The winning move is applied through Eval.Move so the
// aggregates — and the boundary set, when tracked — stay exact.
func (c *climber) tryBestMove(v int) bool {
	from := int(c.p.Assign[v])
	var tried [8]int // dedup scratch; spills to append for high-degree nodes
	cand := tried[:0]
	bestTo := -1
	var bestFit float64
scan:
	for _, u := range c.g.Neighbors(v) {
		to := int(c.p.Assign[u])
		if to == from {
			continue
		}
		for _, q := range cand {
			if q == to {
				continue scan
			}
		}
		cand = append(cand, to)
		fit := c.moveDelta(v, to)
		if fit > 1e-12 && (bestTo < 0 || fit > bestFit) {
			bestTo, bestFit = to, fit
		}
	}
	if bestTo < 0 {
		return false
	}
	c.ev.Move(c.g, c.p, v, bestTo)
	return true
}

// Bisect improves a 2-way partition with the classic Kernighan–Lin pass
// structure: compute gains, greedily swap the best unlocked pair, lock both,
// repeat to exhaustion, then keep the prefix of swaps with the best
// cumulative gain. Repeats passes until one yields no improvement. The
// partition must have exactly 2 parts; part sizes are preserved exactly
// (KL swaps, never moves). Returns the total cut reduction achieved.
func Bisect(g *graph.Graph, p *partition.Partition) float64 {
	if p.Parts != 2 {
		panic("kl: Bisect requires a 2-way partition")
	}
	n := g.NumNodes()
	total := 0.0
	for {
		// D[v] = external - internal cost of v.
		d := make([]float64, n)
		for v := 0; v < n; v++ {
			ws := g.EdgeWeights(v)
			for i, u := range g.Neighbors(v) {
				if p.Assign[u] == p.Assign[v] {
					d[v] -= ws[i]
				} else {
					d[v] += ws[i]
				}
			}
		}
		locked := make([]bool, n)
		type swap struct {
			a, b int
			gain float64
		}
		var seq []swap
		work := p.Clone()
		for {
			// Find best unlocked cross pair. O(n²) per level: fine for the
			// paper's graph sizes; the GA uses HillClimb, not this, in its
			// inner loop.
			bestA, bestB, bestGain := -1, -1, math.Inf(-1)
			for a := 0; a < n; a++ {
				if locked[a] || work.Assign[a] != 0 {
					continue
				}
				for b := 0; b < n; b++ {
					if locked[b] || work.Assign[b] != 1 {
						continue
					}
					gain := d[a] + d[b] - 2*g.EdgeWeightBetween(a, b)
					if gain > bestGain {
						bestA, bestB, bestGain = a, b, gain
					}
				}
			}
			if bestA < 0 {
				break
			}
			seq = append(seq, swap{bestA, bestB, bestGain})
			locked[bestA], locked[bestB] = true, true
			work.Assign[bestA], work.Assign[bestB] = 1, 0
			// Update D values of unlocked nodes.
			for _, x := range []int{bestA, bestB} {
				ws := g.EdgeWeights(x)
				for i, u := range g.Neighbors(x) {
					if locked[u] {
						continue
					}
					// After x switched sides: edges to u flip internal/external.
					if work.Assign[u] == work.Assign[x] {
						d[u] -= 2 * ws[i]
					} else {
						d[u] += 2 * ws[i]
					}
				}
			}
		}
		// Best prefix.
		bestK, bestSum, sum := 0, 0.0, 0.0
		for i, s := range seq {
			sum += s.gain
			if sum > bestSum {
				bestK, bestSum = i+1, sum
			}
		}
		if bestK == 0 {
			return total
		}
		for i := 0; i < bestK; i++ {
			p.Assign[seq[i].a], p.Assign[seq[i].b] = p.Assign[seq[i].b], p.Assign[seq[i].a]
		}
		total += bestSum
	}
}

// Refine improves a k-way partition by running the colored boundary climb
// with the TotalCut objective, then rebalancing if hill climbing skewed part
// weights: while some part exceeds the ideal weight by more than the
// heaviest node, its boundary node whose move costs least is shifted to the
// lightest part.
func Refine(g *graph.Graph, p *partition.Partition, maxPasses int) {
	RefineEvalPar(g, p, nil, partition.TotalCut, maxPasses, 1)
}

// RefineEval is RefineEvalPar at width 1, kept for callers without a worker
// knob; the result is identical at every width.
func RefineEval(g *graph.Graph, p *partition.Partition, ev *partition.Eval, o partition.Objective, maxPasses int) {
	RefineEvalPar(g, p, ev, o, maxPasses, 1)
}

// RefineEvalPar is Refine for callers that already hold the partition's
// cached aggregates, select the objective o the climb's gains target, and
// want the gain evaluation spread over `workers` goroutines (<= 0 selects
// GOMAXPROCS; results are bit-identical for every width). It skips the
// O(V+E) Eval setup scan and keeps ev exactly in sync with every move it
// makes (including rebalancing moves), so a caller can chain refinements —
// the multilevel pipeline projects one Eval down its whole uncoarsening
// hierarchy this way, because projection changes neither part weights nor
// part cuts. A nil ev is rebuilt from p (by the sharded parallel scan) with
// boundary tracking enabled, so even the flat path pays the full-graph scan
// once instead of once per pass.
func RefineEvalPar(g *graph.Graph, p *partition.Partition, ev *partition.Eval, o partition.Objective, maxPasses, workers int) {
	RefineEvalParStop(g, p, ev, o, maxPasses, workers, nil)
}

// RefineEvalParStop is RefineEvalPar with cooperative cancellation: a non-nil
// stop is polled between climbing passes, and a refinement that stops early
// skips the final rebalance too — the caller asked for "soonest consistent
// state", and every pass boundary is one (the climb only ever applies
// complete, eval-synced moves). A nil stop is exactly RefineEvalPar.
func RefineEvalParStop(g *graph.Graph, p *partition.Partition, ev *partition.Eval, o partition.Objective, maxPasses, workers int, stop func() bool) {
	if ev == nil {
		ev = partition.NewEvalBoundaryPar(g, p, workers)
	}
	hillClimbColored(g, p, o, maxPasses, workers, ev, stop)
	if stop != nil && stop() {
		return
	}
	rebalance(g, p, ev, o, workers)
}

// Rebalance enforces the node-weight balance invariant on p without any
// cut-improving ambition: it exists so refiners that tolerate transient
// imbalance (FM's slack, projections from weighted coarse graphs) can
// restore the contract afterwards. ev, when non-nil, is kept in sync. The
// objective selects how the cheapest node to move is scored.
func Rebalance(g *graph.Graph, p *partition.Partition, ev *partition.Eval, o partition.Objective) {
	rebalance(g, p, ev, o, 1)
}

// RebalancePar is Rebalance with each iteration's cheapest-node argmax
// spread over `workers` goroutines. The scan's total order (score
// descending, node id ascending) makes the winner independent of visit
// order, so the parallel reduction picks exactly the node the serial scan
// picks — bit-identical results at every width.
func RebalancePar(g *graph.Graph, p *partition.Partition, ev *partition.Eval, o partition.Objective, workers int) {
	rebalance(g, p, ev, o, workers)
}

// rebalance enforces near-perfect weight balance by moving cheapest boundary
// nodes out of overweight parts until no part exceeds the ideal weight W/k
// by more than the heaviest single node — the resolution limit of
// single-node moves, and exactly the old "ideal count + 1" rule on unit
// weights. Balancing weight rather than node count is what makes the coarse
// levels of the multilevel pipeline (where node weights are member counts)
// and weighted workloads come out right. When ev is non-nil its aggregates
// supply the part weights and are kept in sync with every move; a tracked
// boundary set additionally replaces the per-move O(V+E) boundary rescans,
// and its argmax is reduced over `workers` goroutines (par.Reduce's fixed
// chunk grid plus the scan's total order keep the winner width-independent).
// The objective selects the node-cost model: the cut objectives score a
// candidate by edge weight (edges gained into the destination minus edges
// left behind), CommVolume by the negated volume delta of the move when the
// Eval tracks per-(node, part) counts.
func rebalance(g *graph.Graph, p *partition.Partition, ev *partition.Eval, o partition.Objective, workers int) {
	n := g.NumNodes()
	ideal := g.TotalNodeWeight() / float64(p.Parts)
	var maxNodeW float64
	for v := 0; v < n; v++ {
		if w := g.NodeWeight(v); w > maxNodeW {
			maxNodeW = w
		}
	}
	var weights []float64
	if ev != nil {
		weights = ev.Weights
	} else {
		weights = p.PartWeights(g)
	}
	for iter := 0; iter < n; iter++ {
		over, under := -1, -1
		for q, w := range weights {
			if w > ideal+maxNodeW && (over < 0 || w > weights[over]) {
				over = q
			}
			if under < 0 || w < weights[under] {
				under = q
			}
		}
		if over < 0 {
			return
		}
		// Cheapest node of part `over` to move to `under`: maximize
		// (edges into under) - (edges inside over). Ties go to the smallest
		// node id, so the pick is deterministic whatever order the boundary
		// is visited in — which lets the tracked set be consumed unsorted and
		// sharded across workers, O(b) per move with no sorting.
		score := func(v int) (float64, bool) {
			if int(p.Assign[v]) != over {
				return 0, false
			}
			if o == partition.CommVolume && ev != nil && ev.TracksCommVol() {
				return -ev.CommVolDelta(g, p, v, under), true
			}
			var s float64
			ws := g.EdgeWeights(v)
			for i, u := range g.Neighbors(v) {
				switch int(p.Assign[u]) {
				case under:
					s += ws[i]
				case over:
					s -= ws[i]
				}
			}
			return s, true
		}
		best := rebalCand{v: -1, score: math.Inf(-1)}
		if ev != nil && ev.TracksBoundary() {
			best = par.Reduce(workers, ev.BoundaryLen(), best,
				func(acc rebalCand, i int) rebalCand {
					v := ev.BoundaryNode(i)
					s, ok := score(v)
					if !ok {
						return acc
					}
					return betterRebal(acc, rebalCand{v: v, score: s})
				}, betterRebal)
		} else {
			for _, v := range p.BoundaryNodes(g) {
				if s, ok := score(v); ok {
					best = betterRebal(best, rebalCand{v: v, score: s})
				}
			}
		}
		bestV := best.v
		if bestV < 0 {
			// No boundary node in the overweight part touches anything:
			// move an arbitrary node (disconnected part).
			for v := 0; v < n; v++ {
				if int(p.Assign[v]) == over {
					bestV = v
					break
				}
			}
			if bestV < 0 {
				return
			}
		}
		// The move strictly shrinks the over/under spread, so the loop cannot
		// oscillate: over only triggers when W(over) > ideal + maxNodeW,
		// under never exceeds the ideal (the minimum is at most the mean),
		// and the moved node weighs at most maxNodeW.
		if ev != nil {
			ev.Move(g, p, bestV, under)
		} else {
			wv := g.NodeWeight(bestV)
			weights[over] -= wv
			weights[under] += wv
			p.Assign[bestV] = uint16(under)
		}
	}
}
