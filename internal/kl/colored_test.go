package kl

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
)

var widths = []int{1, 2, 4, 8, 0}

// weightedRandomGraph builds a connected random graph with integer node and
// edge weights, the shape coarse multilevel levels have.
func weightedRandomGraph(n int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetNodeWeight(v, float64(1+rng.Intn(6)))
	}
	for v := 1; v < n; v++ {
		b.AddEdge(v, rng.Intn(v), float64(1+rng.Intn(5)))
	}
	for i := 0; i < 2*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !b.HasEdge(u, v) {
			b.AddEdge(u, v, float64(1+rng.Intn(5)))
		}
	}
	return b.Build()
}

// contractedMesh coarsens a mesh by one level of random matching via
// graph.Contract, giving the node/edge-weight structure multilevel levels
// carry without importing the multilevel package (which imports kl).
func contractedMesh(n int, seed int64) *graph.Graph {
	g := gen.Mesh(n, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	match := make([]int, n)
	for i := range match {
		match[i] = -1
	}
	for _, v := range rng.Perm(n) {
		if match[v] != -1 {
			continue
		}
		match[v] = v
		for _, u := range g.Neighbors(v) {
			if match[u] == -1 {
				match[v], match[u] = int(u), v
				break
			}
		}
	}
	coarseOf := make([]int, n)
	next := 0
	for v := 0; v < n; v++ {
		if match[v] >= v {
			coarseOf[v] = next
			if match[v] != v {
				coarseOf[match[v]] = next
			}
			next++
		}
	}
	return graph.Contract(g, coarseOf, next, 1)
}

func requireSameResult(t *testing.T, label string, g *graph.Graph, refP, p *partition.Partition, refEv, ev *partition.Eval) {
	t.Helper()
	for v := range refP.Assign {
		if refP.Assign[v] != p.Assign[v] {
			t.Fatalf("%s: node %d in part %d, reference %d", label, v, p.Assign[v], refP.Assign[v])
		}
	}
	for q := range refEv.Weights {
		if refEv.Weights[q] != ev.Weights[q] || refEv.Cuts[q] != ev.Cuts[q] {
			t.Fatalf("%s: part %d aggregates (%v,%v) != reference (%v,%v)",
				label, q, ev.Weights[q], ev.Cuts[q], refEv.Weights[q], refEv.Cuts[q])
		}
	}
	rb, b := refEv.Boundary(), ev.Boundary()
	if len(rb) != len(b) {
		t.Fatalf("%s: boundary size %d != %d", label, len(b), len(rb))
	}
	for i := range rb {
		if rb[i] != b[i] {
			t.Fatalf("%s: boundary[%d] = %d != %d", label, i, b[i], rb[i])
		}
	}
}

// The tentpole contract: the colored climb, the full RefineEvalPar chain, and
// RebalancePar are pure functions of their inputs — every worker width yields
// the identical partition AND identical Eval state.
func TestColoredRefinersWidthBitIdentical(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"mesh":       gen.Mesh(600, 31),
		"weighted":   weightedRandomGraph(500, 32),
		"contracted": contractedMesh(900, 33),
	}
	for name, g := range graphs {
		for _, parts := range []int{2, 5} {
			rng := rand.New(rand.NewSource(34))
			start := partition.RandomBalanced(g.NumNodes(), parts, rng)

			refP := start.Clone()
			refEv := partition.NewEvalBoundary(g, refP)
			HillClimbColored(g, refP, partition.TotalCut, 0, 1, refEv)
			for _, w := range widths[1:] {
				p := start.Clone()
				ev := partition.NewEvalBoundaryPar(g, p, w)
				HillClimbColored(g, p, partition.TotalCut, 0, w, ev)
				requireSameResult(t, name+"/climb", g, refP, p, refEv, ev)
			}

			refP = start.Clone()
			refEv = nil
			{
				refEv = partition.NewEvalBoundary(g, refP)
				RefineEvalPar(g, refP, refEv, partition.TotalCut, 0, 1)
			}
			for _, w := range widths[1:] {
				p := start.Clone()
				ev := partition.NewEvalBoundaryPar(g, p, w)
				RefineEvalPar(g, p, ev, partition.TotalCut, 0, w)
				requireSameResult(t, name+"/refine", g, refP, p, refEv, ev)
			}
		}
	}
}

func TestRebalanceParMatchesSerial(t *testing.T) {
	g := weightedRandomGraph(700, 41)
	rng := rand.New(rand.NewSource(42))
	// Grossly imbalanced start: everything in part 0 except a few nodes.
	p := partition.New(g.NumNodes(), 4)
	for i := 0; i < 30; i++ {
		p.Assign[rng.Intn(g.NumNodes())] = uint16(1 + rng.Intn(3))
	}
	refP := p.Clone()
	refEv := partition.NewEvalBoundary(g, refP)
	Rebalance(g, refP, refEv, partition.TotalCut)
	for _, w := range widths[1:] {
		q := p.Clone()
		ev := partition.NewEvalBoundary(g, q)
		RebalancePar(g, q, ev, partition.TotalCut, w)
		requireSameResult(t, "rebalance", g, refP, q, refEv, ev)
	}
}

// The colored climb must preserve the serial climb's core properties:
// monotone fitness and convergence to a state with no improving single move.
func TestColoredClimbMonotoneAndConverges(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		g := gen.Mesh(300+40*int(seed), seed)
		rng := rand.New(rand.NewSource(seed * 7))
		for _, o := range []partition.Objective{partition.TotalCut, partition.WorstCut} {
			p := partition.RandomBalanced(g.NumNodes(), 4, rng)
			prev := p.Fitness(g, o)
			ev := partition.NewEvalBoundary(g, p)
			for pass := 0; pass < 50; pass++ {
				moved := HillClimbColored(g, p, o, 1, 4, ev)
				fit := p.Fitness(g, o)
				if fit < prev-1e-9 {
					t.Fatalf("seed %d %v: pass %d worsened fitness %v -> %v", seed, o, pass, prev, fit)
				}
				prev = fit
				if moved == 0 {
					break
				}
			}
			// Converged: the serial climber must agree there is nothing left.
			if m := HillClimbEval(g, p, o, 1, partition.NewEval(g, p)); m != 0 {
				t.Errorf("seed %d %v: serial climb found %d moves after colored convergence", seed, o, m)
			}
		}
	}
}
