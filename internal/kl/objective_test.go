package kl

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
)

// objectiveTestGraphs is the graph zoo the objective equivalence tests run
// over: a unit-weight mesh, a weighted random graph, and a Contract-ed mesh
// with the node/edge-weight structure of coarse multilevel levels.
func objectiveTestGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"mesh":       gen.Mesh(300, 51),
		"weighted":   weightedRandomGraph(250, 52),
		"contracted": contractedMesh(500, 53),
	}
}

// The comm-volume counters' O(deg) delta must agree with a brute-force rescan
// of the whole partition, over many random states and moves, with moves
// periodically applied through the cached state so later trials exercise
// updated counters.
func TestCommVolDeltaMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for name, g := range objectiveTestGraphs() {
		n := g.NumNodes()
		for _, parts := range []int{2, 5} {
			p := partition.RandomBalanced(n, parts, rng)
			ev := partition.NewEval(g, p)
			ev.EnableCommVol(g, p)
			for trial := 0; trial < 400; trial++ {
				v := rng.Intn(n)
				to := rng.Intn(parts)
				from := int(p.Assign[v])
				if to == from {
					continue
				}
				before := p.CommVolume(g)
				p.Assign[v] = uint16(to)
				after := p.CommVolume(g)
				p.Assign[v] = uint16(from)
				want := after - before
				if got := ev.CommVolDelta(g, p, v, to); got != want {
					t.Fatalf("%s parts=%d trial %d: CommVolDelta(%d->%d) = %v, rescan = %v",
						name, parts, trial, v, to, got, want)
				}
				if trial%3 == 0 {
					ev.Move(g, p, v, to)
				}
			}
			// Cached totals must equal recomputed state at the end.
			if got, want := ev.CommVol(), p.CommVolume(g); got != want {
				t.Fatalf("%s parts=%d: cached CommVol = %v, recomputed %v", name, parts, got, want)
			}
			vols := p.PartVols(g)
			for q := range vols {
				if ev.Vols[q] != vols[q] {
					t.Fatalf("%s parts=%d: cached Vols[%d] = %v, recomputed %v",
						name, parts, q, ev.Vols[q], vols[q])
				}
			}
		}
	}
}

// The climber's incremental fitness delta must match a full re-evaluation for
// every objective — including comm volume, whose delta comes from the tracked
// counters rather than an adjacency rescan.
func TestMoveDeltaMatchesFullEvaluationAllObjectives(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for name, g := range objectiveTestGraphs() {
		n := g.NumNodes()
		for _, o := range partition.Objectives() {
			p := partition.RandomBalanced(n, 4, rng)
			c := newClimber(g, p, o)
			if o == partition.CommVolume {
				c.ev.EnableCommVol(g, p)
			}
			for trial := 0; trial < 200; trial++ {
				v := rng.Intn(n)
				to := rng.Intn(4)
				if to == int(p.Assign[v]) {
					continue
				}
				from := p.Assign[v]
				before := p.Fitness(g, o)
				p.Assign[v] = uint16(to)
				after := p.Fitness(g, o)
				p.Assign[v] = from
				want := after - before
				if got := c.moveDelta(v, to); math.Abs(got-want) > 1e-9 {
					t.Fatalf("%s %v trial %d: delta = %v, full eval = %v", name, o, trial, got, want)
				}
				if trial%4 == 0 {
					c.ev.Move(g, p, v, to)
				}
			}
		}
	}
}

// The Workers contract extends to every objective: the colored climb and the
// full RefineEvalPar chain under maxcut and commvol are pure functions of
// their inputs — identical partition and identical Eval state at every width.
func TestColoredRefinersWidthBitIdenticalObjectives(t *testing.T) {
	for name, g := range objectiveTestGraphs() {
		for _, o := range []partition.Objective{partition.WorstCut, partition.CommVolume} {
			label := name + "/" + o.FlagName()
			rng := rand.New(rand.NewSource(81))
			start := partition.RandomBalanced(g.NumNodes(), 4, rng)

			refP := start.Clone()
			refEv := partition.NewEvalBoundary(g, refP)
			HillClimbColored(g, refP, o, 0, 1, refEv)
			for _, w := range widths[1:] {
				p := start.Clone()
				ev := partition.NewEvalBoundaryPar(g, p, w)
				HillClimbColored(g, p, o, 0, w, ev)
				requireSameResult(t, label+"/climb", g, refP, p, refEv, ev)
			}

			refP = start.Clone()
			refEv = partition.NewEvalBoundary(g, refP)
			RefineEvalPar(g, refP, refEv, o, 0, 1)
			for _, w := range widths[1:] {
				p := start.Clone()
				ev := partition.NewEvalBoundaryPar(g, p, w)
				RefineEvalPar(g, p, ev, o, 0, w)
				requireSameResult(t, label+"/refine", g, refP, p, refEv, ev)
				if o == partition.CommVolume {
					// The tracked volume must also land exactly on a rescan.
					if got, want := ev.CommVol(), p.CommVolume(g); got != want {
						t.Fatalf("%s: width %d tracked CommVol %v, rescan %v", label, w, got, want)
					}
				}
			}
		}
	}
}

// The colored climb is monotone and converges for the comm-volume objective,
// and at convergence the serial climber agrees no improving move remains —
// the same contract the cut objectives already pin.
func TestColoredClimbCommVolMonotoneAndConverges(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		g := gen.Mesh(240+40*int(seed), seed)
		rng := rand.New(rand.NewSource(seed * 9))
		p := partition.RandomBalanced(g.NumNodes(), 4, rng)
		prev := p.Fitness(g, partition.CommVolume)
		ev := partition.NewEvalBoundary(g, p)
		for pass := 0; pass < 50; pass++ {
			moved := HillClimbColored(g, p, partition.CommVolume, 1, 4, ev)
			fit := p.Fitness(g, partition.CommVolume)
			if fit < prev-1e-9 {
				t.Fatalf("seed %d: pass %d worsened fitness %v -> %v", seed, pass, prev, fit)
			}
			prev = fit
			if moved == 0 {
				break
			}
		}
		if m := HillClimbEval(g, p, partition.CommVolume, 1, nil); m != 0 {
			t.Errorf("seed %d: serial climb found %d moves after colored convergence", seed, m)
		}
	}
}
