// Colored parallel boundary hill climbing: the uncoarsening-phase refiner of
// the multilevel pipeline, parallelized without giving up the repository-wide
// Workers determinism contract.
//
// The serial climb (HillClimbEval) visits the boundary in ascending node
// order and takes each node's best strictly-improving move immediately, so
// every decision depends on all earlier ones — an inherently sequential
// chain. The colored climb breaks the chain where it is provably slack: each
// pass walks the boundary in index-contiguous tiles, and a deterministic
// coloring of each tile's induced subgraph (par.Color) splits the tile into
// color classes with no internal edges, so within a class no committed move
// can change another member's neighborhood. That makes the expensive
// per-node work — the O(deg) scan producing each member's candidate parts
// and cut deltas — a pure function of the class-start state, evaluated in
// parallel over par-owned index ranges. Commits then replay serially within
// the class in descending provisional-gain order (biggest class-start winner
// first, ascending node id on ties), folding each candidate's cut deltas
// with the *current* part weights (and cuts), so a class sweep is exactly a
// serial sweep of its members and a move is taken only if it strictly
// improves the fitness at commit time; the partition.Eval aggregates stay
// exact move by move.
//
// The whole climb is therefore the serial climb run over a deterministic
// permutation of each pass's boundary — (tile, color, gain) order instead
// of pure index order — which preserves its properties (monotone fitness,
// convergence to a single-move local optimum; at tile size 1 it IS the
// serial climb bit for bit) while exposing class-sized batches of gain
// evaluation to the worker pool. The result is a pure function of (graph,
// partition, objective): the worker count changes only which goroutine
// computes which class member's deltas, never a decision — pinned by the
// width bit-identity tests in this package and downstream in multilevel and
// algo.
package kl

import (
	"math"
	"sort"
	"sync"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/partition"
)

// HillClimbColored performs boundary hill climbing with the colored parallel
// sweep described above, spreading gain evaluation over `workers` goroutines
// (<= 0 selects GOMAXPROCS; every width yields bit-identical results). Like
// HillClimbEval it climbs until no move improves the objective o or maxPasses
// passes complete (<= 0 means unlimited), keeps ev exactly in sync, and
// returns the number of moves made. A nil ev is rebuilt from p; boundary
// tracking is enabled on ev if it is not already.
//
// The visit order within a pass is (tile, color class, descending
// provisional gain) rather than the serial climb's pure ascending order, so
// the two climbers
// are distinct (deterministic) algorithms that converge to local optima of
// equal character but not necessarily bit-equal partitions. The GA's
// offspring climbing keeps the serial sweep; the multilevel uncoarsening
// phase and the flat kl/fm registry algorithms use this one.
func HillClimbColored(g *graph.Graph, p *partition.Partition, o partition.Objective, maxPasses, workers int, ev *partition.Eval) int {
	return hillClimbColored(g, p, o, maxPasses, workers, ev, nil)
}

// HillClimbColoredStop is HillClimbColored with cooperative cancellation: a
// non-nil stop is polled before each pass, and the climb returns its move
// count so far once it reports true. Pass boundaries are consistent states
// (ev stays exactly in sync with p), so an early return is a valid — just
// less refined — partition.
func HillClimbColoredStop(g *graph.Graph, p *partition.Partition, o partition.Objective, maxPasses, workers int, ev *partition.Eval, stop func() bool) int {
	return hillClimbColored(g, p, o, maxPasses, workers, ev, stop)
}

// climberPool recycles colorClimber scratch across climbs: the multilevel
// uncoarsening phase runs two climbs per level, and the O(n) bIndex plus the
// tile/class buffers otherwise reallocate at every one. Pooled state never
// changes results: every buffer is either fully rewritten before it is read
// (members, cands, off, ...), restored to its zero invariant by the previous
// climb (bIndex), or explicitly reset on checkout (the class stamps).
var climberPool = sync.Pool{New: func() any { return new(colorClimber) }}

func hillClimbColored(g *graph.Graph, p *partition.Partition, o partition.Objective, maxPasses, workers int, ev *partition.Eval, stop func() bool) int {
	if ev == nil {
		ev = partition.NewEvalBoundaryPar(g, p, workers)
	} else if !ev.TracksBoundary() {
		ev.ResetBoundaryPar(g, p, workers)
	}
	if o == partition.CommVolume && !ev.TracksCommVol() {
		ev.ResetCommVolPar(g, p, workers)
	}
	c := climberPool.Get().(*colorClimber)
	c.g = g
	c.p = p
	c.o = o
	c.ev = ev
	c.avg = g.TotalNodeWeight() / float64(p.Parts)
	c.workers = par.Workers(workers)
	// Pooled class scratch carries stamps from earlier climbs; restart them
	// so a long-lived process can never wrap a stamp into a stale seen entry
	// (and so a scratch sized for fewer parts is rebuilt).
	if len(c.scratch) > 0 && len(c.scratch[0].seen) >= p.Parts {
		for w := range c.scratch {
			sc := &c.scratch[w]
			for i := range sc.seen {
				sc.seen[i] = 0
			}
			sc.stamp = 1
		}
	} else {
		c.scratch = nil
	}
	moves := 0
	for pass := 0; maxPasses <= 0 || pass < maxPasses; pass++ {
		if stop != nil && stop() {
			break
		}
		m := c.pass()
		moves += m
		if m == 0 {
			break
		}
	}
	c.g, c.p, c.ev = nil, nil, nil
	climberPool.Put(c)
	return moves
}

// moveCand is one candidate destination of a class member: the target part
// and the total weight of the member's edges into it, accumulated in
// first-seen neighbor order (matching the serial climb's candidate order and
// tie-breaking).
type moveCand struct {
	to  int32
	wTo float64
}

// classScratch is one worker's per-part dedup scratch for candidate
// accumulation; rows are invalidated by bumping the stamp, never by zeroing.
type classScratch struct {
	seen  []int32 // seen[q] == stamp: part q already has a candidate slot
	idx   []int32 // its index within the node's candidate range
	stamp int32
}

// colorClimber carries the state of one colored climb. All slices are
// scratch reused across classes and passes.
type colorClimber struct {
	g       *graph.Graph
	p       *partition.Partition
	o       partition.Objective
	ev      *partition.Eval
	avg     float64
	workers int

	classes Classes // per-tile coloring + class grouping (shared with package fm)

	off      []int32 // candidate range start per class member (degree-prefix)
	cnt      []int32 // candidates actually produced
	wFrom    []float64
	wTot     []float64
	provGain []float64 // provisional best gain per member vs class-start state
	order    []int32   // class commit order (provisional gain desc, id asc)
	cands    []moveCand
	scratch  []classScratch

	bsnap []int // per-pass boundary snapshot buffer
}

// tileSize is the number of consecutive boundary nodes one colored tile
// spans. Tiles are processed sequentially in ascending index order and only
// a tile's interior is class-batched, so the sweep's decision order tracks
// the serial climb's ascending sweep at tile granularity — cascades of
// improving moves propagate tile to tile within a single pass, which is
// what keeps the colored climb's quality at the serial climb's level. The
// size is a fixed constant (never derived from the worker count): the tile
// grid is part of the algorithm's definition, so every width sweeps the
// identical order.
const tileSize = 512

// pass snapshots the boundary and sweeps it in ascending index order, one
// tile at a time: each tile's induced subgraph is colored, each color
// class's candidate moves are gain-evaluated in parallel, and commits
// replay in ascending node order within the class. It returns the number of
// moves.
func (c *colorClimber) pass() int {
	c.bsnap = c.ev.AppendBoundary(c.bsnap)
	b := c.bsnap // ascending snapshot
	if len(b) == 0 {
		return 0
	}
	moves := 0
	for lo := 0; lo < len(b); lo += tileSize {
		hi := lo + tileSize
		if hi > len(b) {
			hi = len(b)
		}
		moves += c.sweepTile(b[lo:hi])
	}
	return moves
}

// sweepTile colors the tile's induced subgraph and sweeps its color classes
// in ascending color order. Adjacent nodes in different tiles are never
// evaluated concurrently (tiles run sequentially), so only intra-tile
// adjacency needs coloring.
func (c *colorClimber) sweepTile(tile []int) int {
	members, off := c.classes.Group(c.g, tile, c.workers)
	moves := 0
	for cl := 0; cl < len(off)-1; cl++ {
		moves += c.sweepClass(members[off[cl]:off[cl+1]])
	}
	return moves
}

// sweepClass evaluates every class member's candidate moves in parallel
// against the class-start state, then commits strictly-improving moves
// serially in descending provisional-gain order (ascending node id on ties).
//
// The provisional gain — each member's best gain against the class-start
// aggregates — is computed in the same parallel phase as the candidate
// weights, so ordering by it costs no extra serial work, and it is a pure
// function of class-start state, so the commit order is width-independent
// like everything else here. Committing big winners first harvests more of
// a class's gain before the members' moves interact (the same greedy order
// FM's heap imposes globally); commitBest still re-evaluates every candidate
// against the live aggregates at its commit slot, so correctness and the
// strict-improvement rule are unchanged — only the order in which members
// get their slot.
func (c *colorClimber) sweepClass(members []int32) int {
	m := len(members)
	c.off = ensureInt32(c.off, m+1)
	c.cnt = ensureInt32(c.cnt, m)
	c.wFrom = ensureFloat(c.wFrom, m)
	c.wTot = ensureFloat(c.wTot, m)
	c.provGain = ensureFloat(c.provGain, m)
	c.order = ensureInt32(c.order, m)
	c.off[0] = 0
	for j, v := range members {
		c.off[j+1] = c.off[j] + int32(len(c.g.Neighbors(int(v))))
	}
	if need := int(c.off[m]); cap(c.cands) < need {
		c.cands = make([]moveCand, need)
	} else {
		c.cands = c.cands[:need]
	}
	if len(c.scratch) < c.workers {
		c.scratch = make([]classScratch, c.workers)
		for w := range c.scratch {
			c.scratch[w] = classScratch{
				seen:  make([]int32, c.p.Parts),
				idx:   make([]int32, c.p.Parts),
				stamp: 1,
			}
		}
	}
	assign := c.p.Assign
	// Tiny classes run inline: the evaluation is a pure function into
	// index-owned slots either way (so the cutoff cannot change results),
	// and goroutine handoff would cost more than the work itself.
	workers := c.workers
	if m < 32 {
		workers = 1
	}
	par.For(workers, m, func(worker, lo, hi int) {
		sc := &c.scratch[worker]
		for j := lo; j < hi; j++ {
			v := int(members[j])
			from := assign[v]
			base := int(c.off[j])
			k := int32(0)
			var wf, wt float64
			ws := c.g.EdgeWeights(v)
			for i, u := range c.g.Neighbors(v) {
				w := ws[i]
				wt += w
				q := assign[u]
				if q == from {
					wf += w
					continue
				}
				if sc.seen[q] != sc.stamp {
					sc.seen[q] = sc.stamp
					sc.idx[q] = k
					c.cands[base+int(k)] = moveCand{to: int32(q), wTo: w}
					k++
				} else {
					c.cands[base+int(sc.idx[q])].wTo += w
				}
			}
			sc.stamp++
			c.cnt[j] = k
			c.wFrom[j] = wf
			c.wTot[j] = wt
			// Provisional best gain vs the class-start aggregates (ev is
			// read-only during the parallel phase), for the commit order.
			best := math.Inf(-1)
			for t := int32(0); t < k; t++ {
				cd := c.cands[base+int(t)]
				wOther := wt - wf - cd.wTo
				if fit := c.ev.MoveGainFromWeights(c.g, c.p, c.o, c.avg, v, int(cd.to), wf, cd.wTo, wOther); fit > best {
					best = fit
				}
			}
			c.provGain[j] = best
		}
	})
	// Commit order: provisional gain descending, node id ascending on ties.
	// Members are ascending within a class, so comparing the j indices is the
	// id tie-break; the order is total (indices are distinct), hence one
	// fixed point for the sort and any width.
	order := c.order[:m]
	for j := range order {
		order[j] = int32(j)
	}
	sort.Slice(order, func(a, b int) bool {
		ja, jb := order[a], order[b]
		if c.provGain[ja] != c.provGain[jb] {
			return c.provGain[ja] > c.provGain[jb]
		}
		return ja < jb
	})
	moves := 0
	for _, j := range order {
		if c.commitBest(int(j), int(members[j])) {
			moves++
		}
	}
	return moves
}

// commitBest folds class member j's precomputed edge-weight triples with the
// current aggregates through the shared gain definition
// (partition.Eval.MoveGainFromWeights), picks the best strictly-improving
// destination with the serial climb's exact tie rules (candidates in
// first-seen neighbor order, strict improvement only), and applies it through
// ev so the aggregates and boundary stay exact.
//
// The precomputed weight triples are still valid here even though earlier
// members of the class may have moved: class members share no edge, so a
// member's neighborhood is untouched until its own commit slot. The
// CommVolume gain ignores the triples and rescans v's neighbor counts inside
// MoveGainFromWeights — against the Eval's current state, which is exactly
// the serial semantics (and still sound under the no-shared-edge guarantee).
func (c *colorClimber) commitBest(j, v int) bool {
	wf, wt := c.wFrom[j], c.wTot[j]
	bestTo := -1
	var bestFit float64
	for k := 0; k < int(c.cnt[j]); k++ {
		cd := c.cands[int(c.off[j])+k]
		to := int(cd.to)
		wOther := wt - wf - cd.wTo
		fit := c.ev.MoveGainFromWeights(c.g, c.p, c.o, c.avg, v, to, wf, cd.wTo, wOther)
		if fit > 1e-12 && (bestTo < 0 || fit > bestFit) {
			bestTo, bestFit = to, fit
		}
	}
	if bestTo < 0 {
		return false
	}
	c.ev.Move(c.g, c.p, v, bestTo)
	return true
}

// rebalCand is a candidate of the parallel rebalance argmax; the total order
// (score descending, node id ascending) makes the reduction independent of
// both visit order and worker count.
type rebalCand struct {
	v     int
	score float64
}

func betterRebal(a, b rebalCand) rebalCand {
	if b.v < 0 {
		return a
	}
	if a.v < 0 || b.score > a.score || (b.score == a.score && b.v < a.v) {
		return b
	}
	return a
}

func ensureInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func ensureFloat(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}
