package service_test

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"testing"

	"repro/internal/algo"
	"repro/internal/partition"
	"repro/internal/service"
)

// The objective is result-relevant, so it must fragment the cache: the same
// graph refined for edge cut and for worst-part cut are different partitions.
func TestObjectiveFragmentsCacheKey(t *testing.T) {
	e := service.New(service.Config{Workers: 1, CacheBytes: 1 << 20})
	defer e.Close()
	g := testGraph(t)

	cut, err := e.Submit(g, "kl", algo.Options{Parts: 4})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, e, cut.ID)
	for _, o := range []partition.Objective{partition.WorstCut, partition.CommVolume} {
		got, err := e.Submit(g, "kl", algo.Options{Parts: 4, Objective: o})
		if err != nil {
			t.Fatal(err)
		}
		if got.Cached {
			t.Errorf("objective %s request served from the cut-objective cache entry", o.FlagName())
		}
		if got.Key == cut.Key {
			t.Errorf("objective %s produced the cut objective's cache key %s", o.FlagName(), cut.Key)
		}
		done := waitDone(t, e, got.ID)
		if done.State != service.StateDone {
			t.Fatalf("objective %s job state %s: %s", o.FlagName(), done.State, done.Error)
		}
	}
}

// An algorithm that does not declare an objective must reject it at submit
// time with the stable code, never silently optimize something else.
func TestUnsupportedObjectiveRejected(t *testing.T) {
	e := service.New(service.Config{Workers: 1, CacheBytes: 1 << 20})
	defer e.Close()
	g := testGraph(t)
	for _, c := range []struct {
		algo string
		o    partition.Objective
	}{
		{"grow", partition.WorstCut},
		{"fm", partition.CommVolume},
		{"multilevel-fm", partition.CommVolume},
	} {
		_, err := e.Submit(g, c.algo, algo.Options{Parts: 4, Objective: c.o})
		var re *service.RequestError
		if !errors.As(err, &re) || re.Code != "unsupported_objective" {
			t.Errorf("%s with %s: got %v, want unsupported_objective", c.algo, c.o.FlagName(), err)
		}
	}
}

// The HTTP surface: canonical and legacy objective names parse, unsupported
// combinations are structured 400s, and /v1/algos declares per-algorithm
// objective support.
func TestHTTPObjectiveSurface(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{Workers: 2, CacheBytes: 1 << 20})
	payload := metisPayload(t, 120)

	status, data := postPartition(t, ts.URL, service.PartitionRequest{
		Algo: "kl", Parts: 4, Graph: payload, Objective: "maxcut", Wait: true,
	})
	if status != http.StatusOK {
		t.Fatalf("maxcut submit: status %d body %s", status, data)
	}
	status, data = postPartition(t, ts.URL, service.PartitionRequest{
		Algo: "kl", Parts: 4, Graph: payload, Objective: "worst", Wait: true,
	})
	if status != http.StatusOK {
		t.Fatalf("legacy worst submit: status %d body %s", status, data)
	}
	status, data = postPartition(t, ts.URL, service.PartitionRequest{
		Algo: "grow", Parts: 4, Graph: payload, Objective: "commvol",
	})
	if status != http.StatusBadRequest || decodeErrorCode(t, data) != "unsupported_objective" {
		t.Fatalf("grow+commvol: status %d body %s", status, data)
	}

	resp, err := http.Get(ts.URL + "/v1/algos")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var listing service.AlgosResponse
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatalf("bad /v1/algos JSON: %v\n%s", err, body)
	}
	want := map[string][]string{
		"kl":   {"cut", "maxcut", "commvol"},
		"fm":   {"cut", "maxcut"},
		"grow": {"cut"},
	}
	for _, ai := range listing.Algos {
		exp, ok := want[ai.Name]
		if !ok {
			continue
		}
		if len(ai.Objectives) != len(exp) {
			t.Errorf("%s objectives %v, want %v", ai.Name, ai.Objectives, exp)
			continue
		}
		for i := range exp {
			if ai.Objectives[i] != exp[i] {
				t.Errorf("%s objectives %v, want %v", ai.Name, ai.Objectives, exp)
				break
			}
		}
	}
}
