package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// JobLog is the bounded persistent job history: one JSONL line per job that
// reaches a terminal state (done, failed, cancelled), so a restarted daemon
// still answers GET /v1/jobs/{id} for recently finished work instead of
// returning 404s for every job the previous process ran.
//
// Records carry the job's metadata and result metrics but never the
// assignment vector — a 100k-node assign is ~300 KB of JSON, which would
// turn a bounded log into an unbounded disk liability; the content-addressed
// result cache recomputes a dropped assign for the price of a cache key.
//
// The log is bounded by record count: once the file holds 2x the bound it is
// compacted in place down to the newest bound records, so steady-state disk
// use is O(bound) regardless of how many jobs the daemon ever ran.
type JobLog struct {
	mu    sync.Mutex
	path  string
	max   int
	f     *os.File
	w     *bufio.Writer
	count int // lines currently in the file
}

// DefaultJobLogMax is the record bound used when OpenJobLog is given a
// non-positive one.
const DefaultJobLogMax = 1024

// OpenJobLog opens (creating if needed) the JSONL job log at path, bounded
// to maxRecords (<= 0 selects DefaultJobLogMax). It returns the restored
// records — the newest maxRecords terminal jobs from previous runs, oldest
// first — and compacts the file on open, so a crashed or long-lived
// predecessor cannot hand the new process an oversized log.
func OpenJobLog(path string, maxRecords int) (*JobLog, []JobInfo, error) {
	if maxRecords <= 0 {
		maxRecords = DefaultJobLogMax
	}
	l := &JobLog{path: path, max: maxRecords}
	records := l.readAll()
	if len(records) > maxRecords {
		records = records[len(records)-maxRecords:]
	}
	if err := l.rewrite(records); err != nil {
		return nil, nil, fmt.Errorf("service: job log %s: %w", path, err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("service: job log %s: %w", path, err)
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	l.count = len(records)
	return l, records, nil
}

// readAll parses every well-formed record in the file; malformed lines (a
// torn final write from a crash) are skipped, never fatal — the log is an
// availability nicety and must not block a restart.
func (l *JobLog) readAll() []JobInfo {
	f, err := os.Open(l.path)
	if err != nil {
		return nil
	}
	defer f.Close()
	var out []JobInfo
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	for sc.Scan() {
		var rec JobInfo
		if err := json.Unmarshal(sc.Bytes(), &rec); err == nil && rec.ID != "" {
			out = append(out, rec)
		}
	}
	return out
}

// rewrite replaces the file's contents with exactly records, atomically via
// a rename so a crash mid-compaction leaves the old log intact.
func (l *JobLog) rewrite(records []JobInfo) error {
	tmp := l.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for i := range records {
		if err := enc.Encode(&records[i]); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, l.path)
}

// strip returns info without its assignment vector (see the type comment for
// why the log never persists assigns).
func stripAssign(info JobInfo) JobInfo {
	if info.Result != nil {
		r := *info.Result
		r.Assign = nil
		info.Result = &r
	}
	return info
}

// Append persists one terminal job record, compacting the file back to the
// bound when it has grown to twice it. Append never fails the caller: a
// full disk degrades the log, not the daemon.
func (l *JobLog) Append(info JobInfo) {
	if l == nil {
		return
	}
	rec := stripAssign(info)
	l.mu.Lock()
	defer l.mu.Unlock()
	enc := json.NewEncoder(l.w)
	if err := enc.Encode(&rec); err != nil {
		return
	}
	l.w.Flush()
	l.count++
	if l.count >= 2*l.max {
		l.compactLocked()
	}
}

// compactLocked rewrites the file down to the newest max records and reopens
// it for append. l.mu must be held.
func (l *JobLog) compactLocked() {
	l.f.Close()
	records := l.readAll()
	if len(records) > l.max {
		records = records[len(records)-l.max:]
	}
	if err := l.rewrite(records); err != nil {
		// Leave the oversized file in place; the next compaction retries.
		records = nil
	}
	f, err := os.OpenFile(l.path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		// Without a file handle the log goes dark but the daemon lives on.
		l.f, l.w = nil, bufio.NewWriter(discardWriter{})
		return
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	l.count = len(records)
}

// Close flushes and closes the underlying file.
func (l *JobLog) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.w.Flush()
	if l.f == nil {
		return nil
	}
	return l.f.Close()
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }
