package service_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/algo"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/service"
)

// blockBehavior is the controllable body of the test-only "test-block"
// algorithm: tests swap it to observe the engine's lifecycle transitions
// deterministically instead of racing real algorithm timings.
var blockBehavior atomic.Pointer[func(g *graph.Graph, opt algo.Options) (*partition.Partition, error)]

func init() {
	algo.Register(algo.New(
		algo.Info{Name: "test-block", Description: "controllable partitioner for lifecycle tests", Stochastic: true},
		func(g *graph.Graph, opt algo.Options) (*partition.Partition, error) {
			if fn := blockBehavior.Load(); fn != nil {
				return (*fn)(g, opt)
			}
			return algo.Run(g, "grow", algo.Options{Parts: opt.Parts})
		}))
}

// blockController wires one test to the test-block algorithm: every run
// announces itself on started, then parks at a "checkpoint" until its
// context is cancelled (returning a valid early partition, as the real
// refiners do between passes) or the test releases it.
type blockController struct {
	started chan struct{}
	release chan struct{}
}

func installBlock(t *testing.T) *blockController {
	t.Helper()
	c := &blockController{
		started: make(chan struct{}, 64),
		release: make(chan struct{}),
	}
	fn := func(g *graph.Graph, opt algo.Options) (*partition.Partition, error) {
		c.started <- struct{}{}
		done := make(<-chan struct{})
		if opt.Ctx != nil {
			done = opt.Ctx.Done()
		}
		select {
		case <-done:
		case <-c.release:
		}
		return algo.Run(g, "grow", algo.Options{Parts: opt.Parts})
	}
	blockBehavior.Store(&fn)
	t.Cleanup(func() { blockBehavior.Store(nil) })
	return c
}

func (c *blockController) waitStarted(t *testing.T) {
	t.Helper()
	select {
	case <-c.started:
	case <-time.After(10 * time.Second):
		t.Fatal("test-block run never started")
	}
}

// A queued job dies immediately on cancel: no worker ever runs it, its
// waiters wake at once, and the stats record the cancellation.
func TestCancelQueuedJobImmediate(t *testing.T) {
	ctl := installBlock(t)
	e := service.New(service.Config{Workers: 1})
	defer e.Close()
	defer close(ctl.release)
	g := testGraph(t)

	running, err := e.Submit(g, "test-block", algo.Options{Parts: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctl.waitStarted(t)
	queued, err := e.Submit(g, "test-block", algo.Options{Parts: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}

	info, err := e.CancelJob(queued.ID)
	if err != nil {
		t.Fatalf("cancel: %v", err)
	}
	if info.State != service.StateCancelled {
		t.Fatalf("state %s after cancelling a queued job, want cancelled", info.State)
	}
	// The wait returns promptly — nothing is computing this job.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	final, err := e.WaitJob(ctx, queued.ID)
	if err != nil {
		t.Fatalf("wait on cancelled job: %v", err)
	}
	if final.State != service.StateCancelled || final.Result != nil {
		t.Fatalf("final %+v, want cancelled without result", final)
	}
	if s := e.Stats(); s.JobsCancelled != 1 {
		t.Errorf("JobsCancelled %d, want 1", s.JobsCancelled)
	}
	// Idempotent: cancelling again is a no-op, not an error.
	if _, err := e.CancelJob(queued.ID); err != nil {
		t.Errorf("second cancel: %v", err)
	}
	if s := e.Stats(); s.JobsCancelled != 1 {
		t.Errorf("JobsCancelled %d after idempotent re-cancel, want 1", s.JobsCancelled)
	}
	_ = running
}

// A running job observes its cancellation at the algorithm's next
// checkpoint, the waiter gets a cancelled snapshot, and the discarded
// partial result never enters the cache.
func TestCancelRunningJobObservedAndNeverCached(t *testing.T) {
	ctl := installBlock(t)
	e := service.New(service.Config{Workers: 1})
	defer e.Close()
	g := testGraph(t)
	opts := algo.Options{Parts: 2, Seed: 3}

	info, err := e.Submit(g, "test-block", opts)
	if err != nil {
		t.Fatal(err)
	}
	ctl.waitStarted(t)
	if _, err := e.CancelJob(info.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	final, err := e.WaitJob(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != service.StateCancelled || final.Result != nil {
		t.Fatalf("final %+v, want cancelled without result", final)
	}

	// The identical request must recompute: a cancelled run's result (the
	// algorithm did return a valid partition at its checkpoint) is discarded,
	// never cached.
	close(ctl.release)
	again, err := e.Submit(g, "test-block", opts)
	if err != nil {
		t.Fatal(err)
	}
	if again.Cached {
		t.Fatal("resubmission after cancel served from cache")
	}
	ctl.waitStarted(t)
	finalAgain := waitDone(t, e, again.ID)
	if finalAgain.State != service.StateDone {
		t.Fatalf("recompute state %s (%s)", finalAgain.State, finalAgain.Error)
	}
}

// Cancelling one job of a coalesced group only detaches that job: the
// shared computation completes for the sibling, and the sibling's result is
// untouched.
func TestCancelCoalescedJobLeavesSibling(t *testing.T) {
	ctl := installBlock(t)
	e := service.New(service.Config{Workers: 1})
	defer e.Close()
	g := testGraph(t)
	opts := algo.Options{Parts: 2, Seed: 4}

	a, err := e.Submit(g, "test-block", opts)
	if err != nil {
		t.Fatal(err)
	}
	ctl.waitStarted(t)
	b, err := e.Submit(g, "test-block", opts) // coalesces onto a's computation
	if err != nil {
		t.Fatal(err)
	}
	if !b.Cached {
		t.Fatal("identical in-flight request did not coalesce")
	}

	if _, err := e.CancelJob(b.ID); err != nil {
		t.Fatalf("cancel coalesced job: %v", err)
	}
	// b's waiter wakes promptly even though the computation keeps running.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	bFinal, err := e.WaitJob(ctx, b.ID)
	if err != nil {
		t.Fatalf("wait on cancelled coalesced job: %v", err)
	}
	if bFinal.State != service.StateCancelled {
		t.Fatalf("coalesced job state %s, want cancelled", bFinal.State)
	}

	close(ctl.release)
	aFinal := waitDone(t, e, a.ID)
	if aFinal.State != service.StateDone || aFinal.Result == nil {
		t.Fatalf("sibling state %s (%s), want done", aFinal.State, aFinal.Error)
	}

	// Too late to cancel a finished job: typed job_finished conflict.
	_, err = e.CancelJob(a.ID)
	var re *service.RequestError
	if !errors.As(err, &re) || re.Code != "job_finished" {
		t.Fatalf("cancel of finished job: %v, want job_finished RequestError", err)
	}
	// Unknown ids are ErrNoJob.
	if _, err := e.CancelJob("zzz"); !errors.Is(err, service.ErrNoJob) {
		t.Fatalf("cancel of unknown job: %v, want ErrNoJob", err)
	}
}

// A context-cancelled algo.Run returns early with a valid partition at a
// pass boundary — the contract the engine's cancellation rides on, checked
// here against the real refinement-based algorithms.
func TestAlgoRunHonorsCancelledContext(t *testing.T) {
	g := testGraph(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: every checkpoint fires on first poll
	for _, name := range []string{"kl", "fm", "multilevel-kl", "multilevel-fm", "dknux"} {
		start := time.Now()
		p, err := algo.Run(g, name, algo.Options{Parts: 4, Seed: 1, Ctx: ctx,
			Generations: 50, PopSize: 32, Islands: 4})
		if err != nil {
			t.Fatalf("%s with cancelled ctx: %v", name, err)
		}
		if err := p.Validate(g); err != nil {
			t.Fatalf("%s early partition invalid: %v", name, err)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Errorf("%s took %v despite pre-cancelled ctx", name, elapsed)
		}
	}
}

// Close never strands a SubmitWait: queued jobs fail with the typed
// ErrEngineClosed error and every concurrent waiter returns. This is the
// regression test for the Close-vs-SubmitWait race.
func TestCloseVsSubmitWaitRace(t *testing.T) {
	ctl := installBlock(t)
	e := service.New(service.Config{Workers: 1, MaxQueue: 64})
	g := testGraph(t)

	// Occupy the single worker so every subsequent submission queues.
	running, err := e.Submit(g, "test-block", algo.Options{Parts: 2, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	ctl.waitStarted(t)

	const waiters = 8
	var wg sync.WaitGroup
	type outcome struct {
		info service.JobInfo
		err  error
	}
	results := make([]outcome, waiters)
	enqueued := make(chan struct{}, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			// Distinct seeds: distinct queued computations.
			j, err := e.Submit(g, "test-block", algo.Options{Parts: 2, Seed: int64(100 + i)})
			enqueued <- struct{}{}
			if err != nil {
				results[i] = outcome{err: err}
				return
			}
			info, err := e.WaitJob(ctx, j.ID)
			results[i] = outcome{info: info, err: err}
		}(i)
	}
	for i := 0; i < waiters; i++ {
		<-enqueued
	}

	closed := make(chan struct{})
	go func() {
		e.Close() // fails the queue, then blocks on the running job
		close(closed)
	}()
	// Give Close a moment to take the lock and fail the queue, then let the
	// running job finish so Close can drain the pool.
	time.Sleep(50 * time.Millisecond)
	close(ctl.release)
	select {
	case <-closed:
	case <-time.After(30 * time.Second):
		t.Fatal("Close never returned")
	}
	wg.Wait()

	for i, r := range results {
		switch {
		case r.err == nil && r.info.State == service.StateFailed:
			if !strings.Contains(r.info.Error, "engine_closed") {
				t.Errorf("waiter %d failed without the typed engine_closed error: %q", i, r.info.Error)
			}
		case r.err == nil && r.info.State == service.StateDone:
			// Raced ahead of Close and actually computed — also fine.
		case r.err != nil && errors.Is(r.err, service.ErrEngineClosed):
			// Submitted after Close won the lock.
		default:
			t.Errorf("waiter %d: err %v, info %+v", i, r.err, r.info)
		}
	}
	final := waitDone(t, e, running.ID)
	if final.State != service.StateDone {
		t.Errorf("running job state %s after Close, want done (Close lets running jobs finish)", final.State)
	}
	if _, err := e.Submit(g, "grow", algo.Options{Parts: 2}); !errors.Is(err, service.ErrEngineClosed) {
		t.Errorf("Submit after Close: %v, want ErrEngineClosed", err)
	}
}
