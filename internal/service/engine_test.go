package service_test

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/algo"
	"repro/internal/gen"
	"repro/internal/gio"
	"repro/internal/graph"
	"repro/internal/service"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	return gen.Mesh(300, 11)
}

// coordFree round-trips g through METIS, which drops coordinates — the shape
// of every graph partd receives in its default format.
func coordFree(t *testing.T, g *graph.Graph) *graph.Graph {
	t.Helper()
	var buf bytes.Buffer
	if err := gio.WriteMETIS(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := gio.ReadMETIS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return g2
}

func waitDone(t *testing.T, e *service.Engine, id string) service.JobInfo {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	info, err := e.WaitJob(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	return info
}

func TestSubmitComputesAndCaches(t *testing.T) {
	e := service.New(service.Config{Workers: 2, CacheBytes: 1 << 20})
	defer e.Close()
	g := testGraph(t)
	opts := algo.Options{Parts: 4, Seed: 42}

	first, err := e.Submit(g, "multilevel-kl", opts)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Error("first submission reported cached")
	}
	done := waitDone(t, e, first.ID)
	if done.State != service.StateDone || done.Result == nil {
		t.Fatalf("job state %s, error %q", done.State, done.Error)
	}
	if len(done.Result.Assign) != g.NumNodes() {
		t.Fatalf("result covers %d of %d nodes", len(done.Result.Assign), g.NumNodes())
	}

	second, err := e.Submit(g, "multilevel-kl", opts)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("identical resubmission not served from cache")
	}
	if second.State != service.StateDone {
		t.Fatalf("cached job state %s", second.State)
	}
	for i := range done.Result.Assign {
		if second.Result.Assign[i] != done.Result.Assign[i] {
			t.Fatalf("cached result differs at node %d", i)
		}
	}
	s := e.Stats()
	if s.CacheMisses != 1 || s.CacheHits != 1 {
		t.Errorf("stats: %d misses, %d hits; want 1, 1", s.CacheMisses, s.CacheHits)
	}

	// A different seed is a different key for a stochastic algorithm.
	third, err := e.Submit(g, "multilevel-kl", algo.Options{Parts: 4, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if third.Cached {
		t.Error("different seed served from cache")
	}
	waitDone(t, e, third.ID)
}

// The speed knobs must not fragment the cache: requests differing only in
// Workers/EvalWorkers are the same computation.
func TestSpeedKnobsNormalizedOutOfKey(t *testing.T) {
	e := service.New(service.Config{Workers: 1, CacheBytes: 1 << 20})
	defer e.Close()
	g := testGraph(t)
	a, err := e.Submit(g, "multilevel-kl", algo.Options{Parts: 4, Seed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, e, a.ID)
	b, err := e.Submit(g, "multilevel-kl", algo.Options{Parts: 4, Seed: 7, Workers: 3, EvalWorkers: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !b.Cached {
		t.Error("worker-width variant missed the cache")
	}
}

// Content addressing: the same graph parsed from different formats (METIS
// vs edge list) hashes identically, so a resubmission in another format is
// still a cache hit.
func TestCacheKeyIsContentAddressed(t *testing.T) {
	e := service.New(service.Config{Workers: 1, CacheBytes: 1 << 20})
	defer e.Close()
	g := coordFree(t, testGraph(t))
	var el bytes.Buffer
	if err := gio.WriteEdgeList(&el, g); err != nil {
		t.Fatal(err)
	}
	g2, err := gio.ReadEdgeList(&el)
	if err != nil {
		t.Fatal(err)
	}
	a, err := e.Submit(g, "kl", algo.Options{Parts: 4})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, e, a.ID)
	b, err := e.Submit(g2, "kl", algo.Options{Parts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !b.Cached {
		t.Error("equal graph content from a different format missed the cache")
	}
	if a.Key != b.Key {
		t.Errorf("keys differ: %s vs %s", a.Key, b.Key)
	}
}

func TestConcurrentIdenticalRequestsCoalesce(t *testing.T) {
	const n = 16
	e := service.New(service.Config{Workers: 2, CacheBytes: 1 << 20})
	defer e.Close()
	g := testGraph(t)
	opts := algo.Options{Parts: 8, Seed: 5}

	var wg sync.WaitGroup
	infos := make([]service.JobInfo, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			info, err := e.Submit(g, "multilevel-fm", opts)
			if err != nil {
				errs[i] = err
				return
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			infos[i], errs[i] = e.WaitJob(ctx, info.ID)
		}(i)
	}
	wg.Wait()

	computed := 0
	var ref []uint16
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if infos[i].State != service.StateDone {
			t.Fatalf("request %d state %s (%s)", i, infos[i].State, infos[i].Error)
		}
		if !infos[i].Cached {
			computed++
		}
		if ref == nil {
			ref = infos[i].Result.Assign
			continue
		}
		for v := range ref {
			if infos[i].Result.Assign[v] != ref[v] {
				t.Fatalf("request %d: partition differs at node %d", i, v)
			}
		}
	}
	if computed != 1 {
		t.Errorf("%d of %d identical requests computed; want exactly 1", computed, n)
	}
	s := e.Stats()
	if s.CacheMisses != 1 {
		t.Errorf("stats: %d misses; want 1", s.CacheMisses)
	}
	if s.CacheHits+s.Coalesced != n-1 {
		t.Errorf("stats: %d hits + %d coalesced; want %d total", s.CacheHits, s.Coalesced, n-1)
	}
}

// The pool width is a pure throughput knob: a 1-worker and a 4-worker engine
// produce bit-identical results for the same requests.
func TestPoolWidthDoesNotChangeResults(t *testing.T) {
	g := testGraph(t)
	run := func(workers int) [][]uint16 {
		e := service.New(service.Config{Workers: workers, CacheBytes: 1 << 20, JobParallelism: 1})
		defer e.Close()
		var out [][]uint16
		var ids []string
		for seed := int64(0); seed < 4; seed++ {
			info, err := e.Submit(g, "multilevel-kl", algo.Options{Parts: 4, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, info.ID)
		}
		for _, id := range ids {
			out = append(out, waitDone(t, e, id).Result.Assign)
		}
		return out
	}
	serial, wide := run(1), run(4)
	for i := range serial {
		for v := range serial[i] {
			if serial[i][v] != wide[i][v] {
				t.Fatalf("seed %d: pool width changed the partition at node %d", i, v)
			}
		}
	}
}

func TestConstraintRejection(t *testing.T) {
	e := service.New(service.Config{Workers: 1})
	defer e.Close()
	g := coordFree(t, testGraph(t)) // no coordinates

	cases := []struct {
		algo  string
		parts int
		code  string
	}{
		{"nope", 4, "unknown_algo"},
		{"kl", 0, "bad_parts"},
		{"kl", g.NumNodes() + 1, "bad_parts"},
		{"ibp", 4, "needs_coords"},
		{"rcb", 4, "needs_coords"}, // needs_coords checked before power-of-two
		{"rsb", 3, "parts_not_power_of_two"},
	}
	for _, c := range cases {
		_, err := e.Submit(g, c.algo, algo.Options{Parts: c.parts})
		re, ok := err.(*service.RequestError)
		if !ok {
			t.Errorf("%s/p%d: got %v, want RequestError", c.algo, c.parts, err)
			continue
		}
		if re.Code != c.code {
			t.Errorf("%s/p%d: code %q, want %q", c.algo, c.parts, re.Code, c.code)
		}
	}
	if s := e.Stats(); s.JobsSubmitted != 0 {
		t.Errorf("rejected requests counted as submissions: %d", s.JobsSubmitted)
	}
}

func TestCacheEviction(t *testing.T) {
	// Size the byte budget from a measured single entry: every result here is
	// the same graph/algo shape, so a budget of 2.5 entries must retain
	// exactly two and evict LRU-first on the third insert.
	probe := service.New(service.Config{Workers: 1})
	g := testGraph(t)
	info, err := probe.Submit(g, "kl", algo.Options{Parts: 2, Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, probe, info.ID)
	entryBytes := probe.Stats().CacheBytes
	probe.Close()
	if entryBytes <= 0 {
		t.Fatalf("probe reported %d cache bytes", entryBytes)
	}

	e := service.New(service.Config{Workers: 1, CacheBytes: entryBytes*2 + entryBytes/2})
	defer e.Close()
	for seed := int64(0); seed < 3; seed++ {
		info, err := e.Submit(g, "kl", algo.Options{Parts: 2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, e, info.ID)
	}
	s := e.Stats()
	if s.CacheEvictions != 1 || s.CacheEntries != 2 {
		t.Errorf("evictions %d entries %d; want 1, 2", s.CacheEvictions, s.CacheEntries)
	}
	if s.CacheBytes != 2*entryBytes {
		t.Errorf("cache retains %d bytes, want %d (2 entries)", s.CacheBytes, 2*entryBytes)
	}
	if s.CacheBytes > s.CacheCapacityBytes {
		t.Errorf("cache bytes %d exceed the %d budget", s.CacheBytes, s.CacheCapacityBytes)
	}
	// kl ignores Seed (deterministic), so seed 0 recomputes to the same
	// partition after eviction — the determinism the cache key relies on.
	info, err = e.Submit(g, "kl", algo.Options{Parts: 2, Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	if info.Cached {
		t.Error("evicted key still reported cached")
	}
	waitDone(t, e, info.ID)
}

// The job table must not grow with total request count: old finished jobs
// fall out of the history bound (the daemon runs indefinitely).
func TestJobHistoryBounded(t *testing.T) {
	e := service.New(service.Config{Workers: 1, CacheBytes: 1 << 20, JobHistory: 8})
	defer e.Close()
	g := testGraph(t)
	var first string
	for i := 0; i < 30; i++ {
		info, err := e.Submit(g, "grow", algo.Options{Parts: 2})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = info.ID
		}
		waitDone(t, e, info.ID)
	}
	if _, ok := e.GetJob(first); ok {
		t.Errorf("job %s still pollable after 30 submissions with history 8", first)
	}
	s := e.Stats()
	if s.JobsSubmitted != 30 {
		t.Fatalf("submitted %d", s.JobsSubmitted)
	}
}

// A full computation queue refuses new work instead of queueing without
// bound — each queued entry pins a parsed graph.
func TestQueueBackpressure(t *testing.T) {
	e := service.New(service.Config{Workers: 1, MaxQueue: 2, JobParallelism: 1})
	defer e.Close()
	g := testGraph(t)
	// Occupy the single worker with a GA run (hundreds of ms), then fill
	// the queue with distinct computations.
	slow := algo.Options{Parts: 2, Seed: 1, Generations: 60, PopSize: 64, Islands: 4}
	if _, err := e.Submit(g, "dknux", slow); err != nil {
		t.Fatal(err)
	}
	overloaded := false
	for seed := int64(2); seed < 8; seed++ {
		_, err := e.Submit(g, "multilevel-kl", algo.Options{Parts: 2, Seed: seed})
		if errors.Is(err, service.ErrOverloaded) {
			overloaded = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !overloaded {
		t.Error("6 submissions through a busy 1-worker engine with MaxQueue=2 never hit backpressure")
	}
	// Identical requests still coalesce — coalescing needs no queue slot.
	if _, err := e.Submit(g, "dknux", slow); err != nil {
		t.Errorf("coalescing onto the running job hit backpressure: %v", err)
	}
}

func TestWaitJobUnknownIsErrNoJob(t *testing.T) {
	e := service.New(service.Config{Workers: 1})
	defer e.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := e.WaitJob(ctx, "zzz"); !errors.Is(err, service.ErrNoJob) {
		t.Fatalf("got %v, want ErrNoJob", err)
	}
}

func TestPartsAboveUint16Rejected(t *testing.T) {
	e := service.New(service.Config{Workers: 1})
	defer e.Close()
	// A graph big enough that parts <= nodes passes; the uint16 bound must
	// still reject it. Built cheaply as a long path.
	n := 1<<16 + 2
	b := graph.NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.AddEdge(v, v+1, 1)
	}
	_, err := e.Submit(b.Build(), "scattered", algo.Options{Parts: 1<<16 + 1})
	re, ok := err.(*service.RequestError)
	if !ok || re.Code != "bad_parts" {
		t.Fatalf("got %v, want bad_parts RequestError", err)
	}
}

func TestCloseFailsQueuedJobs(t *testing.T) {
	e := service.New(service.Config{Workers: 1})
	g := testGraph(t)
	var ids []string
	for seed := int64(0); seed < 4; seed++ {
		// Distinct seeds: four distinct computations through a 1-wide pool.
		info, err := e.Submit(g, "multilevel-kl", algo.Options{Parts: 4, Seed: 100 + seed})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, info.ID)
	}
	e.Close()
	for _, id := range ids {
		info, ok := e.GetJob(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if info.State != service.StateDone && info.State != service.StateFailed {
			t.Errorf("job %s left in state %s after Close", id, info.State)
		}
	}
	if _, err := e.Submit(g, "kl", algo.Options{Parts: 2}); err == nil {
		t.Error("Submit accepted after Close")
	}
}

func TestRuntimeFailureIsReported(t *testing.T) {
	e := service.New(service.Config{Workers: 1})
	defer e.Close()
	g := testGraph(t)
	// Passes the submit-time constraint checks, but the GA rejects the
	// configuration at run time (16 islands of 1 individual): the job must
	// fail cleanly with the error preserved, not take the engine down.
	info, err := e.Submit(g, "dknux", algo.Options{Parts: 2, PopSize: 16, Islands: 16, Generations: 1})
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, e, info.ID)
	if final.State != service.StateFailed || final.Error == "" {
		t.Fatalf("state %s error %q; want failed with an error", final.State, final.Error)
	}
	if s := e.Stats(); s.JobsFailed != 1 {
		t.Errorf("JobsFailed %d; want 1", s.JobsFailed)
	}
	// Failures are not cached: the same request computes again.
	again, err := e.Submit(g, "dknux", algo.Options{Parts: 2, PopSize: 16, Islands: 16, Generations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if again.Cached {
		t.Error("failed computation was served from cache")
	}
}
