package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/algo"
	"repro/internal/gio"
	"repro/internal/partition"
)

// HTTP JSON API over the Engine — the surface cmd/partd serves.
//
//	POST /v1/partition      submit a graph (METIS/edge-list/text payload)
//	GET  /v1/jobs/{id}      job status and result (?wait=1 blocks)
//	GET  /v1/algos          the registry with declared constraints
//	GET  /v1/stats          engine and cache counters
//
// Errors are structured: {"error": {"code": "...", "message": "..."}} with a
// 4xx status for caller mistakes.

// maxGraphPayload bounds a request body. A 10M-node mesh in METIS form is
// ~100 MB of text; this default admits the scales the suites exercise while
// keeping a single request from exhausting the daemon.
const maxGraphPayload = 256 << 20

// PartitionRequest is the body of POST /v1/partition. Graph carries the
// serialized graph inline; Format names its encoding ("metis" is the
// default, "edgelist" and "text" the alternatives). Wait, when true, holds
// the response until the job completes instead of returning 202
// immediately. The optional algorithm knobs mirror algo.Options; speed
// knobs (worker widths) are deliberately absent — they never change results
// and the daemon sizes them itself.
type PartitionRequest struct {
	Algo      string `json:"algo"`
	Parts     int    `json:"parts"`
	Seed      int64  `json:"seed"`
	Format    string `json:"format,omitempty"`
	Graph     string `json:"graph"`
	Objective string `json:"objective,omitempty"` // "cut" (default), "maxcut", or "commvol"; legacy "total"/"worst" accepted

	Generations  int  `json:"generations,omitempty"`
	PopSize      int  `json:"pop_size,omitempty"`
	Islands      int  `json:"islands,omitempty"`
	RefinePasses int  `json:"refine_passes,omitempty"`
	CoarsestSize int  `json:"coarsest_size,omitempty"`
	LanczosIter  int  `json:"lanczos_iter,omitempty"`
	Wait         bool `json:"wait,omitempty"`
}

// AlgoInfo is one registry entry as served by GET /v1/algos. Objectives
// lists every objective the algorithm accepts, by flag name ("cut" always
// included — it is supported universally).
type AlgoInfo struct {
	Name            string   `json:"name"`
	Description     string   `json:"description"`
	NeedsCoords     bool     `json:"needs_coords"`
	PowerOfTwoParts bool     `json:"power_of_two_parts"`
	Stochastic      bool     `json:"stochastic"`
	Objectives      []string `json:"objectives"`
}

// NewHandler builds the HTTP API over e.
func NewHandler(e *Engine) http.Handler {
	// Graph payloads are decoded and parsed before the engine's queue bound
	// can refuse them, so concurrent parsing is its own memory hazard: N
	// simultaneous near-limit uploads would materialize N bodies plus their
	// CSR arrays at once. The semaphore bounds how many requests may be in
	// the decode/parse stage; the rest wait on their connection, which
	// costs kilobytes instead of gigabytes.
	s := &httpServer{e: e, parseSem: make(chan struct{}, e.Workers()+2)}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/partition", s.handlePartition)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/algos", s.handleAlgos)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return mux
}

type httpServer struct {
	e        *Engine
	parseSem chan struct{}
}

func (s *httpServer) handlePartition(w http.ResponseWriter, r *http.Request) {
	select {
	case s.parseSem <- struct{}{}:
	case <-r.Context().Done():
		writeError(w, http.StatusServiceUnavailable, "unavailable", "request cancelled while waiting for a parse slot")
		return
	}
	// The slot covers only the decode/parse stage; it is released as soon
	// as the request is handed to the engine, so wait-mode requests do not
	// pin slots while blocked on their job.
	released := false
	releaseSlot := func() {
		if !released {
			released = true
			<-s.parseSem
		}
	}
	defer releaseSlot()
	r.Body = http.MaxBytesReader(w, r.Body, maxGraphPayload)
	var req PartitionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "payload_too_large",
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, "bad_json", "malformed request body: "+err.Error())
		return
	}
	format, err := gio.FormatByName(req.Format)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_format",
			fmt.Sprintf("unknown graph format %q (want metis, edgelist, or text)", req.Format))
		return
	}
	if format == gio.FormatAuto {
		format = gio.FormatMETIS
	}
	if req.Graph == "" {
		writeError(w, http.StatusBadRequest, "bad_graph", "request carries no graph payload")
		return
	}
	g, err := gio.ReadGraph(format, strings.NewReader(req.Graph))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_graph", err.Error())
		return
	}
	opts, rerr := optionsFromRequest(&req)
	if rerr != nil {
		writeError(w, http.StatusBadRequest, rerr.Code, rerr.Message)
		return
	}
	req.Graph = "" // drop the body copy; g owns the parsed arrays now
	releaseSlot()
	if req.Wait || r.URL.Query().Get("wait") == "1" {
		// SubmitWait holds the job across the wait — unlike submit-then-poll
		// it cannot lose the result to history eviction under load.
		final, err := s.e.SubmitWait(r.Context(), g, req.Algo, opts)
		if err != nil {
			writeSubmitError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, final)
		return
	}
	info, err := s.e.Submit(g, req.Algo, opts)
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	status := http.StatusAccepted
	if info.State == StateDone || info.State == StateFailed {
		status = http.StatusOK
	}
	writeJSON(w, status, info)
}

// writeSubmitError maps a Submit/SubmitWait failure to its HTTP shape:
// caller mistakes are 400 with their stable code, a full queue is 429
// (back off and retry), anything else 503.
func writeSubmitError(w http.ResponseWriter, err error) {
	var re *RequestError
	switch {
	case errors.As(err, &re):
		writeError(w, http.StatusBadRequest, re.Code, re.Message)
	case errors.Is(err, ErrOverloaded):
		writeError(w, http.StatusTooManyRequests, "overloaded", err.Error())
	default:
		writeError(w, http.StatusServiceUnavailable, "unavailable", err.Error())
	}
}

func (s *httpServer) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if r.URL.Query().Get("wait") == "1" {
		info, err := s.e.WaitJob(r.Context(), id)
		switch {
		case errors.Is(err, ErrNoJob):
			writeError(w, http.StatusNotFound, "not_found", err.Error())
		case err != nil:
			writeError(w, http.StatusServiceUnavailable, "wait_interrupted", err.Error())
		default:
			writeJSON(w, http.StatusOK, info)
		}
		return
	}
	info, ok := s.e.GetJob(id)
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("no job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *httpServer) handleAlgos(w http.ResponseWriter, _ *http.Request) {
	names := algo.Names()
	out := make([]AlgoInfo, 0, len(names))
	for _, name := range names {
		p, err := algo.Get(name)
		if err != nil {
			continue
		}
		info := p.Info()
		objectives := make([]string, 0, len(partition.Objectives()))
		for _, o := range partition.Objectives() {
			if info.SupportsObjective(o) {
				objectives = append(objectives, o.FlagName())
			}
		}
		out = append(out, AlgoInfo{
			Name:            info.Name,
			Description:     info.Description,
			NeedsCoords:     info.NeedsCoords,
			PowerOfTwoParts: info.PowerOfTwoParts,
			Stochastic:      info.Stochastic,
			Objectives:      objectives,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *httpServer) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.e.Stats())
}

// optionsFromRequest maps the wire request onto algo.Options.
func optionsFromRequest(req *PartitionRequest) (algo.Options, *RequestError) {
	opts := algo.Options{
		Parts:        req.Parts,
		Seed:         req.Seed,
		Generations:  req.Generations,
		PopSize:      req.PopSize,
		Islands:      req.Islands,
		RefinePasses: req.RefinePasses,
		CoarsestSize: req.CoarsestSize,
		LanczosIter:  req.LanczosIter,
	}
	o, err := partition.ParseObjective(req.Objective)
	if err != nil {
		return opts, reqErr("bad_objective", "unknown objective %q (want cut, maxcut, or commvol)", req.Objective)
	}
	opts.Objective = o
	return opts, nil
}

type errorBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

func writeError(w http.ResponseWriter, status int, code, message string) {
	var body errorBody
	body.Error.Code = code
	body.Error.Message = message
	writeJSON(w, status, body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
