package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/algo"
	"repro/internal/gio"
	"repro/internal/partition"
)

// HTTP JSON API over the Engine — the surface cmd/partd serves.
//
//	PUT    /v1/graphs         upload a graph once; returns its content address
//	GET    /v1/graphs/{hash}  stored-graph metadata
//	POST   /v1/jobs           batch-submit specs against a stored graph
//	GET    /v1/jobs/{id}      job status and result (?wait=1 blocks)
//	DELETE /v1/jobs/{id}      cancel a queued or running job
//	POST   /v1/partition      legacy inline submit (graph payload in the body)
//	GET    /v1/algos          the registry with declared constraints
//	GET    /v1/stats          engine, store, and per-client quota counters
//
// Every error — including the router's own 404/405 — is structured:
// {"error": {"code": "...", "message": "..."}} with a 4xx status for caller
// mistakes. Mutating requests pass per-client token-bucket admission when a
// Quota is configured; refusals are 429 with code "quota_exceeded" and a
// Retry-After header.

// APIVersion names the wire protocol served by NewHandler; /v1/stats reports
// it as "version" and /v1/algos as "api".
const APIVersion = "v2"

// maxGraphPayload bounds a graph-carrying request body. A 10M-node mesh in
// METIS form is ~100 MB of text; this default admits the scales the suites
// exercise while keeping a single request from exhausting the daemon.
const maxGraphPayload = 256 << 20

// maxControlPayload bounds bodies that carry no graph (batch submissions):
// a full batch of specs is a few KB, so anything near this limit is abuse.
const maxControlPayload = 1 << 20

// maxBatchSpecs bounds one batch submission. The engine's queue bound is the
// real backpressure; this merely keeps a single request from monopolizing it.
const maxBatchSpecs = 1024

// JobSpec is one algorithm request: POST /v1/jobs carries a list of them,
// and the legacy POST /v1/partition embeds exactly one. Speed knobs (worker
// widths) are deliberately absent — they never change results and the
// daemon sizes them itself.
type JobSpec struct {
	Algo      string `json:"algo"`
	Parts     int    `json:"parts"`
	Seed      int64  `json:"seed"`
	Objective string `json:"objective,omitempty"` // "cut" (default), "maxcut", or "commvol"; legacy "total"/"worst" accepted

	Generations  int `json:"generations,omitempty"`
	PopSize      int `json:"pop_size,omitempty"`
	Islands      int `json:"islands,omitempty"`
	RefinePasses int `json:"refine_passes,omitempty"`
	CoarsestSize int `json:"coarsest_size,omitempty"`
	LanczosIter  int `json:"lanczos_iter,omitempty"`
}

// PartitionRequest is the body of the legacy POST /v1/partition: one spec's
// worth of fields plus an inline serialized graph. Format names the encoding
// ("metis" is the default, "edgelist" and "text" the alternatives). Wait,
// when true, holds the response until the job completes instead of returning
// 202 immediately. Internally the daemon runs this through the same
// store-then-submit path as the v2 endpoints, so repeated inline uploads of
// the same graph deduplicate onto one stored copy.
type PartitionRequest struct {
	Algo      string `json:"algo"`
	Parts     int    `json:"parts"`
	Seed      int64  `json:"seed"`
	Format    string `json:"format,omitempty"`
	Graph     string `json:"graph"`
	Objective string `json:"objective,omitempty"` // "cut" (default), "maxcut", or "commvol"; legacy "total"/"worst" accepted

	Generations  int  `json:"generations,omitempty"`
	PopSize      int  `json:"pop_size,omitempty"`
	Islands      int  `json:"islands,omitempty"`
	RefinePasses int  `json:"refine_passes,omitempty"`
	CoarsestSize int  `json:"coarsest_size,omitempty"`
	LanczosIter  int  `json:"lanczos_iter,omitempty"`
	Wait         bool `json:"wait,omitempty"`
}

// spec extracts the request's JobSpec — the legacy endpoint is exactly a
// one-spec batch with an inline graph.
func (r *PartitionRequest) spec() JobSpec {
	return JobSpec{
		Algo: r.Algo, Parts: r.Parts, Seed: r.Seed, Objective: r.Objective,
		Generations: r.Generations, PopSize: r.PopSize, Islands: r.Islands,
		RefinePasses: r.RefinePasses, CoarsestSize: r.CoarsestSize, LanczosIter: r.LanczosIter,
	}
}

// GraphPutRequest is the body of PUT /v1/graphs.
type GraphPutRequest struct {
	Format string `json:"format,omitempty"`
	Graph  string `json:"graph"`
}

// GraphPutResponse answers PUT /v1/graphs: the content address to use in
// batch submissions, and whether the graph was already stored (200) or is
// new (201).
type GraphPutResponse struct {
	Hash    string `json:"hash"`
	Nodes   int    `json:"nodes"`
	Edges   int    `json:"edges"`
	Existed bool   `json:"existed"`
}

// BatchRequest is the body of POST /v1/jobs: a stored-graph reference
// ("sha256:..." from PUT /v1/graphs) and the specs to fan out against it.
// The batch is atomic at validation: either every spec is accepted or the
// whole request is refused with the first offending spec's error.
type BatchRequest struct {
	Graph string    `json:"graph"`
	Specs []JobSpec `json:"specs"`
	Wait  bool      `json:"wait,omitempty"`
}

// BatchResponse answers POST /v1/jobs with one JobInfo per spec, in order.
type BatchResponse struct {
	Graph string    `json:"graph"`
	Jobs  []JobInfo `json:"jobs"`
}

// AlgoInfo is one registry entry as served by GET /v1/algos. Objectives
// lists every objective the algorithm accepts, by flag name ("cut" always
// included — it is supported universally).
type AlgoInfo struct {
	Name            string   `json:"name"`
	Description     string   `json:"description"`
	NeedsCoords     bool     `json:"needs_coords"`
	PowerOfTwoParts bool     `json:"power_of_two_parts"`
	Stochastic      bool     `json:"stochastic"`
	Objectives      []string `json:"objectives"`
}

// AlgosResponse wraps GET /v1/algos with the API version.
type AlgosResponse struct {
	API   string     `json:"api"`
	Algos []AlgoInfo `json:"algos"`
}

// StatsResponse is GET /v1/stats: the engine counters (embedded, so the
// pre-v2 wire fields are unchanged) plus the API version, the graph store's
// counters, and — when admission control is on — per-client quota counters.
type StatsResponse struct {
	Version string `json:"version"`
	Stats
	Store StoreStats  `json:"store"`
	Quota *QuotaStats `json:"quota,omitempty"`
	Peer  *PeerStats  `json:"peer,omitempty"`
}

// HandlerOption configures NewHandler.
type HandlerOption func(*httpServer)

// WithStore serves the API over an externally owned graph store (so the
// daemon can size it and read its counters directly). Without it NewHandler
// creates a default-sized store of its own.
func WithStore(st *GraphStore) HandlerOption {
	return func(s *httpServer) { s.store = st }
}

// WithQuota enables per-client admission control. Without it (or with a nil
// quota) everything is admitted, as before.
func WithQuota(q *Quota) HandlerOption {
	return func(s *httpServer) { s.quota = q }
}

// WithAuth requires a bearer token on every request except GET /v1/healthz.
// The client name bound to the presented token overwrites X-Client, so quota
// identity follows the credential rather than a self-reported header.
func WithAuth(a *Auth) HandlerOption {
	return func(s *httpServer) { s.auth = a }
}

// WithPeers lets this shard pull graphs it does not hold from fleet peers
// (lazy rebalancing after membership changes). Without it a missing graph is
// simply graph_not_found.
func WithPeers(p *PeerFetcher) HandlerOption {
	return func(s *httpServer) { s.peers = p }
}

// NewHandler builds the HTTP API over e.
func NewHandler(e *Engine, opts ...HandlerOption) http.Handler {
	// Graph payloads are decoded and parsed before the engine's queue bound
	// can refuse them, so concurrent parsing is its own memory hazard: N
	// simultaneous near-limit uploads would materialize N bodies plus their
	// CSR arrays at once. The semaphore bounds how many requests may be in
	// the decode/parse stage; the rest wait on their connection, which
	// costs kilobytes instead of gigabytes.
	s := &httpServer{e: e, parseSem: make(chan struct{}, e.Workers()+2)}
	for _, o := range opts {
		o(s)
	}
	if s.store == nil {
		s.store = NewGraphStore(0)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /v1/graphs", s.handleGraphPut)
	mux.HandleFunc("GET /v1/graphs/{hash}", s.handleGraphGet)
	mux.HandleFunc("POST /v1/jobs", s.handleBatch)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("POST /v1/partition", s.handlePartition)
	mux.HandleFunc("GET /v1/algos", s.handleAlgos)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux = mux
	return http.HandlerFunc(s.serve)
}

type httpServer struct {
	e        *Engine
	store    *GraphStore
	quota    *Quota
	auth     *Auth
	peers    *PeerFetcher
	mux      *http.ServeMux
	parseSem chan struct{}
}

// serve is the entry point: liveness first (unauthenticated, unmetered),
// then authentication, then quota admission, then routing, with the router's
// own plain-text 404/405 rewritten into the JSON error envelope so clients
// can rely on one error shape for the entire surface.
func (s *httpServer) serve(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v1/healthz" {
		// The fleet router probes this to mark shards down/up; it must work
		// without a token and must not consume quota.
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "method not allowed for this endpoint")
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
		return
	}
	if s.auth != nil {
		name, ok := s.auth.Identify(r)
		if !ok {
			w.Header().Set("WWW-Authenticate", `Bearer realm="partd"`)
			writeError(w, http.StatusUnauthorized, "unauthorized",
				"missing or unknown bearer token (send Authorization: Bearer <token>)")
			return
		}
		// Quota identity follows the credential; a self-reported X-Client
		// cannot borrow another client's bucket.
		r.Header.Set("X-Client", name)
	}
	client := clientID(r)
	switch r.Method {
	case http.MethodGet, http.MethodHead:
		// Reads are not admission-controlled (a polling client must always
		// be able to observe its jobs), only counted.
		s.quota.Note(client)
	default:
		if ok, retryAfter := s.quota.Admit(client); !ok {
			secs := int(retryAfter.Seconds())
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeError(w, http.StatusTooManyRequests, "quota_exceeded",
				fmt.Sprintf("client %q is over its request quota; retry in %ds", client, secs))
			return
		}
	}
	s.mux.ServeHTTP(&envelopeWriter{rw: w}, r)
}

// clientID identifies the caller for quota accounting: the X-Client header
// when present (cooperating clients name themselves), the remote address
// otherwise.
func clientID(r *http.Request) string {
	if c := r.Header.Get("X-Client"); c != "" {
		return c
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// envelopeWriter rewrites the router's own plain-text 404 (no such route)
// and 405 (wrong method) responses into the structured error envelope.
// Handler-written errors pass through untouched: they set an application/json
// Content-Type before WriteHeader, which is the discriminator.
type envelopeWriter struct {
	rw      http.ResponseWriter
	swallow bool
}

func (w *envelopeWriter) Header() http.Header { return w.rw.Header() }

func (w *envelopeWriter) WriteHeader(status int) {
	if (status == http.StatusNotFound || status == http.StatusMethodNotAllowed) &&
		!strings.HasPrefix(w.rw.Header().Get("Content-Type"), "application/json") {
		w.swallow = true // drop the router's plain-text body that follows
		code, msg := "not_found", "no such endpoint"
		if status == http.StatusMethodNotAllowed {
			code, msg = "method_not_allowed", "method not allowed for this endpoint"
			if allow := w.rw.Header().Get("Allow"); allow != "" {
				msg += " (allowed: " + allow + ")"
			}
		}
		writeError(w.rw, status, code, msg)
		return
	}
	w.rw.WriteHeader(status)
}

func (w *envelopeWriter) Write(p []byte) (int, error) {
	if w.swallow {
		return len(p), nil
	}
	return w.rw.Write(p)
}

// decodeGraphPayload decodes a graph-carrying body and parses it into the
// store, holding a parse slot throughout. It returns the stored graph, or
// writes the error response and returns nil.
func (s *httpServer) parsePayload(w http.ResponseWriter, format, payload string) (*StoredGraph, bool) {
	f, err := gio.FormatByName(format)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_format",
			fmt.Sprintf("unknown graph format %q (want metis, edgelist, or text)", format))
		return nil, false
	}
	if f == gio.FormatAuto {
		f = gio.FormatMETIS
	}
	if payload == "" {
		writeError(w, http.StatusBadRequest, "bad_graph", "request carries no graph payload")
		return nil, false
	}
	sg, existed, err := s.store.ParseAndPut(f, strings.NewReader(payload))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_graph", err.Error())
		return nil, false
	}
	return sg, existed
}

// acquireParseSlot blocks until a decode/parse slot is free; it returns a
// release func, or writes the error and returns nil if the client gave up.
func (s *httpServer) acquireParseSlot(w http.ResponseWriter, r *http.Request) func() {
	select {
	case s.parseSem <- struct{}{}:
	case <-r.Context().Done():
		writeError(w, http.StatusServiceUnavailable, "unavailable", "request cancelled while waiting for a parse slot")
		return nil
	}
	released := false
	return func() {
		if !released {
			released = true
			<-s.parseSem
		}
	}
}

func decodeBody(w http.ResponseWriter, r *http.Request, limit int64, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "payload_too_large",
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, "bad_json", "malformed request body: "+err.Error())
		return false
	}
	return true
}

// handleGraphPut is PUT /v1/graphs: parse once, store by content address.
func (s *httpServer) handleGraphPut(w http.ResponseWriter, r *http.Request) {
	release := s.acquireParseSlot(w, r)
	if release == nil {
		return
	}
	defer release()
	var req GraphPutRequest
	if !decodeBody(w, r, maxGraphPayload, &req) {
		return
	}
	sg, ok := s.parsePayload(w, req.Format, req.Graph)
	if sg == nil {
		return
	}
	status := http.StatusCreated
	if ok {
		status = http.StatusOK // deduplicated onto an existing upload
	}
	writeJSON(w, status, GraphPutResponse{Hash: sg.Hash, Nodes: sg.Nodes, Edges: sg.Edges, Existed: ok})
}

// handleGraphGet is GET /v1/graphs/{hash}: stored-graph metadata, or with
// ?export= the graph content itself — "bin" is the canonical hash-faithful
// binary (what peer-fetch transfers), "metis" a human-readable export that
// drops coordinates.
func (s *httpServer) handleGraphGet(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if re := validateGraphRef(hash); re != nil {
		writeError(w, http.StatusBadRequest, re.Code, re.Message)
		return
	}
	sg, ok := s.store.Get(hash)
	if !ok {
		writeError(w, http.StatusNotFound, "graph_not_found",
			fmt.Sprintf("no stored graph %s (evicted or never uploaded; PUT /v1/graphs to (re)store it)", hash))
		return
	}
	switch export := r.URL.Query().Get("export"); export {
	case "":
		writeJSON(w, http.StatusOK, sg)
	case "bin":
		w.Header().Set("Content-Type", "application/x-partd-graph")
		w.Header().Set("X-Graph-Hash", sg.Hash)
		_ = WriteGraphBinary(w, sg.Graph) // mid-stream failure means a dead conn; nothing to report
	case "metis":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("X-Graph-Hash", sg.Hash)
		_ = gio.WriteGraph(gio.FormatMETIS, w, sg.Graph)
	default:
		writeError(w, http.StatusBadRequest, "bad_export",
			fmt.Sprintf("unknown export %q (want bin or metis)", export))
	}
}

// handleBatch is POST /v1/jobs: fan a batch of specs out against one stored
// graph. Validation is atomic — any bad spec refuses the whole batch before
// a single job exists. The stored content address keys the result cache
// directly, so an N-spec batch costs zero parses and zero hashes here.
func (s *httpServer) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !decodeBody(w, r, maxControlPayload, &req) {
		return
	}
	if re := validateGraphRef(req.Graph); re != nil {
		writeError(w, http.StatusBadRequest, re.Code, re.Message)
		return
	}
	sg, ok := s.store.Get(req.Graph)
	if !ok && s.peers != nil {
		// Fleet mode: the hash may live on the shard that owned it before a
		// membership change. Pull it, store it, and proceed — this is the lazy
		// rebalance. The fetcher has already verified the content hash.
		if g, err := s.peers.Fetch(req.Graph); err == nil {
			sg, _ = s.store.Put(g)
			ok = sg.Hash == req.Graph
		}
	}
	if !ok {
		writeError(w, http.StatusNotFound, "graph_not_found",
			fmt.Sprintf("no stored graph %s (evicted or never uploaded; PUT /v1/graphs to (re)store it)", req.Graph))
		return
	}
	if len(req.Specs) == 0 {
		writeError(w, http.StatusBadRequest, "empty_batch", "batch carries no specs")
		return
	}
	if len(req.Specs) > maxBatchSpecs {
		writeError(w, http.StatusBadRequest, "too_many_specs",
			fmt.Sprintf("batch of %d specs exceeds the per-request maximum %d", len(req.Specs), maxBatchSpecs))
		return
	}
	allOpts := make([]algo.Options, len(req.Specs))
	for i := range req.Specs {
		opts, rerr := optionsFromSpec(&req.Specs[i])
		if rerr == nil {
			var re *RequestError
			if err := s.e.Validate(sg.Graph, req.Specs[i].Algo, opts); errors.As(err, &re) {
				rerr = re
			}
		}
		if rerr != nil {
			writeError(w, http.StatusBadRequest, rerr.Code,
				fmt.Sprintf("spec[%d]: %s", i, rerr.Message))
			return
		}
		allOpts[i] = opts
	}
	jobs := make([]JobInfo, 0, len(req.Specs))
	for i := range req.Specs {
		info, err := s.e.SubmitStored(sg, req.Specs[i].Algo, allOpts[i])
		if err != nil {
			// Mid-batch refusal (queue filled up under us): cancel what this
			// request already submitted so the batch stays all-or-nothing.
			for _, j := range jobs {
				s.e.CancelJob(j.ID)
			}
			writeSubmitError(w, err)
			return
		}
		jobs = append(jobs, info)
	}
	if req.Wait || r.URL.Query().Get("wait") == "1" {
		for i := range jobs {
			final, err := s.e.WaitJob(r.Context(), jobs[i].ID)
			if err != nil {
				writeError(w, http.StatusServiceUnavailable, "wait_interrupted", err.Error())
				return
			}
			jobs[i] = final
		}
		writeJSON(w, http.StatusOK, BatchResponse{Graph: sg.Hash, Jobs: jobs})
		return
	}
	writeJSON(w, http.StatusAccepted, BatchResponse{Graph: sg.Hash, Jobs: jobs})
}

// handlePartition is the legacy one-shot endpoint, reimplemented as a thin
// shim over the same store-then-submit path the v2 endpoints use: parse and
// store the inline payload (deduplicating with prior uploads), then submit
// by content address. One code path, no behavioral drift between APIs.
func (s *httpServer) handlePartition(w http.ResponseWriter, r *http.Request) {
	release := s.acquireParseSlot(w, r)
	if release == nil {
		return
	}
	defer release()
	var req PartitionRequest
	if !decodeBody(w, r, maxGraphPayload, &req) {
		return
	}
	sg, _ := s.parsePayload(w, req.Format, req.Graph)
	if sg == nil {
		return
	}
	spec := req.spec()
	opts, rerr := optionsFromSpec(&spec)
	if rerr != nil {
		writeError(w, http.StatusBadRequest, rerr.Code, rerr.Message)
		return
	}
	req.Graph = "" // drop the body copy; the store owns the parsed arrays now
	// The slot covers only the decode/parse stage; release before any wait
	// so wait-mode requests do not pin slots while blocked on their job.
	release()
	if req.Wait || r.URL.Query().Get("wait") == "1" {
		// SubmitWait holds the job across the wait — unlike submit-then-poll
		// it cannot lose the result to history eviction under load.
		final, err := s.e.SubmitStoredWait(r.Context(), sg, req.Algo, opts)
		if err != nil {
			writeSubmitError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, final)
		return
	}
	info, err := s.e.SubmitStored(sg, req.Algo, opts)
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	status := http.StatusAccepted
	if info.State.terminal() {
		status = http.StatusOK
	}
	writeJSON(w, status, info)
}

// writeSubmitError maps a Submit/SubmitWait failure to its HTTP shape:
// caller mistakes are 400 with their stable code, a full queue is 429
// (back off and retry), a closed engine is 503 with the typed engine_closed
// code, anything else a generic 503.
func writeSubmitError(w http.ResponseWriter, err error) {
	var re *RequestError
	switch {
	case errors.As(err, &re):
		writeError(w, http.StatusBadRequest, re.Code, re.Message)
	case errors.Is(err, ErrOverloaded):
		writeError(w, http.StatusTooManyRequests, "overloaded", err.Error())
	case errors.Is(err, ErrEngineClosed):
		writeError(w, http.StatusServiceUnavailable, "engine_closed", err.Error())
	default:
		writeError(w, http.StatusServiceUnavailable, "unavailable", err.Error())
	}
}

func (s *httpServer) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if r.URL.Query().Get("wait") == "1" {
		info, err := s.e.WaitJob(r.Context(), id)
		switch {
		case errors.Is(err, ErrNoJob):
			writeError(w, http.StatusNotFound, "not_found", err.Error())
		case err != nil:
			writeError(w, http.StatusServiceUnavailable, "wait_interrupted", err.Error())
		default:
			writeJSON(w, http.StatusOK, info)
		}
		return
	}
	info, ok := s.e.GetJob(id)
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("no job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// handleCancel is DELETE /v1/jobs/{id}. Cancelling an already-cancelled job
// is idempotent (200); a finished job is 409 job_finished — too late, the
// result exists.
func (s *httpServer) handleCancel(w http.ResponseWriter, r *http.Request) {
	info, err := s.e.CancelJob(r.PathValue("id"))
	var re *RequestError
	switch {
	case errors.Is(err, ErrNoJob):
		writeError(w, http.StatusNotFound, "not_found", err.Error())
	case errors.As(err, &re):
		writeError(w, http.StatusConflict, re.Code, re.Message)
	case err != nil:
		writeError(w, http.StatusServiceUnavailable, "unavailable", err.Error())
	default:
		writeJSON(w, http.StatusOK, info)
	}
}

func (s *httpServer) handleAlgos(w http.ResponseWriter, _ *http.Request) {
	names := algo.Names()
	out := make([]AlgoInfo, 0, len(names))
	for _, name := range names {
		p, err := algo.Get(name)
		if err != nil {
			continue
		}
		info := p.Info()
		objectives := make([]string, 0, len(partition.Objectives()))
		for _, o := range partition.Objectives() {
			if info.SupportsObjective(o) {
				objectives = append(objectives, o.FlagName())
			}
		}
		out = append(out, AlgoInfo{
			Name:            info.Name,
			Description:     info.Description,
			NeedsCoords:     info.NeedsCoords,
			PowerOfTwoParts: info.PowerOfTwoParts,
			Stochastic:      info.Stochastic,
			Objectives:      objectives,
		})
	}
	writeJSON(w, http.StatusOK, AlgosResponse{API: APIVersion, Algos: out})
}

func (s *httpServer) handleStats(w http.ResponseWriter, _ *http.Request) {
	var peer *PeerStats
	if s.peers != nil {
		ps := s.peers.Stats()
		peer = &ps
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		Version: APIVersion,
		Stats:   s.e.Stats(),
		Store:   s.store.Stats(),
		Quota:   s.quota.Stats(),
		Peer:    peer,
	})
}

// optionsFromSpec maps a wire spec onto algo.Options.
func optionsFromSpec(spec *JobSpec) (algo.Options, *RequestError) {
	opts := algo.Options{
		Parts:        spec.Parts,
		Seed:         spec.Seed,
		Generations:  spec.Generations,
		PopSize:      spec.PopSize,
		Islands:      spec.Islands,
		RefinePasses: spec.RefinePasses,
		CoarsestSize: spec.CoarsestSize,
		LanczosIter:  spec.LanczosIter,
	}
	o, err := partition.ParseObjective(spec.Objective)
	if err != nil {
		return opts, reqErr("bad_objective", "unknown objective %q (want cut, maxcut, or commvol)", spec.Objective)
	}
	opts.Objective = o
	return opts, nil
}

type errorBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

func writeError(w http.ResponseWriter, status int, code, message string) {
	var body errorBody
	body.Error.Code = code
	body.Error.Message = message
	writeJSON(w, status, body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// WriteJSON, WriteError, EnvelopeHandler, and ValidateGraphRef are the
// envelope primitives exported for the fleet router (cmd/partroute), which
// must speak byte-for-byte the same wire shapes as a shard so clients cannot
// tell a routed fleet from a single daemon.

// WriteJSON writes v as the API's indented JSON with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) { writeJSON(w, status, v) }

// WriteError writes the structured error envelope.
func WriteError(w http.ResponseWriter, status int, code, message string) {
	writeError(w, status, code, message)
}

// EnvelopeHandler wraps h so its mux-generated plain-text 404/405 responses
// are rewritten into the JSON error envelope.
func EnvelopeHandler(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h.ServeHTTP(&envelopeWriter{rw: w}, r)
	})
}

// ValidateGraphRef checks the wire shape of a graph reference; nil means ok.
func ValidateGraphRef(ref string) *RequestError { return validateGraphRef(ref) }
