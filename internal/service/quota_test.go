package service

import (
	"testing"
	"time"
)

// White-box: the clock is injected so refill behavior is exact.
func TestQuotaTokenBucket(t *testing.T) {
	now := time.Unix(1000, 0)
	q := NewQuota(1, 2) // 1 token/s, burst 2
	q.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if ok, _ := q.Admit("a"); !ok {
			t.Fatalf("admit %d refused within burst", i)
		}
	}
	ok, retry := q.Admit("a")
	if ok {
		t.Fatal("third immediate request admitted past burst 2")
	}
	if retry < time.Second || retry > 2*time.Second {
		t.Fatalf("retryAfter %v, want ~1s", retry)
	}

	// 1.5s later one token has refilled: one admit, then refusal again.
	now = now.Add(1500 * time.Millisecond)
	if ok, _ := q.Admit("a"); !ok {
		t.Fatal("refilled token refused")
	}
	if ok, _ := q.Admit("a"); ok {
		t.Fatal("admitted with an empty bucket")
	}

	// Distinct clients have independent buckets.
	if ok, _ := q.Admit("b"); !ok {
		t.Fatal("fresh client refused")
	}
	q.Note("b")

	s := q.Stats()
	if s.RatePerSec != 1 || s.Burst != 2 {
		t.Errorf("config not reflected: %+v", s)
	}
	a, b := s.Clients["a"], s.Clients["b"]
	if a.Requests != 5 || a.Throttled != 2 {
		t.Errorf("client a: %+v, want 5 requests 2 throttled", a)
	}
	if b.Requests != 2 || b.Throttled != 0 {
		t.Errorf("client b: %+v, want 2 requests 0 throttled", b)
	}
}

// A nil quota admits everything — the daemon without -rate is unchanged.
func TestQuotaNilAdmitsEverything(t *testing.T) {
	var q *Quota
	if ok, _ := q.Admit("anyone"); !ok {
		t.Fatal("nil quota refused")
	}
	q.Note("anyone")
	if q.Stats() != nil {
		t.Fatal("nil quota reported stats")
	}
}

// The per-client map is bounded: past the cap the stalest bucket is evicted.
func TestQuotaClientMapBounded(t *testing.T) {
	now := time.Unix(1000, 0)
	q := NewQuota(1, 1)
	q.now = func() time.Time { return now }
	q.maxClients = 2

	q.Admit("old")
	now = now.Add(time.Second)
	q.Admit("mid")
	now = now.Add(time.Second)
	q.Admit("new") // evicts "old", the stalest
	if len(q.clients) != 2 {
		t.Fatalf("%d clients retained, want 2", len(q.clients))
	}
	if _, ok := q.clients["old"]; ok {
		t.Error("stalest client survived eviction")
	}
}

// Zero-rate quotas never refill: the retry hint must not claim otherwise.
func TestQuotaZeroRateNeverRefills(t *testing.T) {
	q := NewQuota(0, 1)
	if ok, _ := q.Admit("a"); !ok {
		t.Fatal("burst token refused")
	}
	ok, retry := q.Admit("a")
	if ok || retry < time.Hour {
		t.Fatalf("zero-rate bucket: admitted=%v retry=%v", ok, retry)
	}
}
