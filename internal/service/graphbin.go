package service

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/graph"
)

// Canonical binary graph codec — the fleet's peer-transfer format.
//
// Peer-fetch must move a stored graph between shards *content-hash
// faithfully*: the receiving shard re-hashes what it decodes and refuses a
// mismatch, so the wire format has to round-trip every hashed field. The
// text formats in internal/gio cannot do that (METIS and edge-list carry no
// coordinates, and float weights lose bits through decimal), so the fleet
// transfers the CSR content directly: little-endian, in exactly the
// canonical order hashGraph digests. GET /v1/graphs/{hash}?export=bin serves
// it; PeerFetcher decodes it.
//
// Layout: "PDG1" magic, u64 node count, u64 adjacency length (2x undirected
// edges), u8 hasCoords; then node weights (f64 each), coordinates (x,y f64
// pairs, when present), per-node degrees (u32), adjacency (u32), edge
// weights (f64).

const graphBinMagic = "PDG1"

// maxBinNodes/maxBinAdj guard the decoder against allocation bombs from a
// corrupt or hostile peer before any array is allocated. They admit graphs
// an order of magnitude past the scale1M suites.
const (
	maxBinNodes = 1 << 28
	maxBinAdj   = 1 << 31
)

// WriteGraphBinary encodes g in the canonical binary format.
func WriteGraphBinary(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var scratch [8]byte
	u64 := func(x uint64) {
		binary.LittleEndian.PutUint64(scratch[:], x)
		bw.Write(scratch[:8])
	}
	u32 := func(x uint32) {
		binary.LittleEndian.PutUint32(scratch[:4], x)
		bw.Write(scratch[:4])
	}
	f64 := func(f float64) { u64(math.Float64bits(f)) }

	n := g.NumNodes()
	adjLen := 2 * g.NumEdges()
	bw.WriteString(graphBinMagic)
	u64(uint64(n))
	u64(uint64(adjLen))
	hasCoords := g.HasCoords()
	if hasCoords {
		bw.WriteByte(1)
	} else {
		bw.WriteByte(0)
	}
	for v := 0; v < n; v++ {
		f64(g.NodeWeight(v))
	}
	if hasCoords {
		for v := 0; v < n; v++ {
			p := g.Coord(v)
			f64(p.X)
			f64(p.Y)
		}
	}
	for v := 0; v < n; v++ {
		u32(uint32(g.Degree(v)))
	}
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(v) {
			u32(uint32(u))
		}
	}
	for v := 0; v < n; v++ {
		for _, w := range g.EdgeWeights(v) {
			f64(w)
		}
	}
	return bw.Flush()
}

// ReadGraphBinary decodes a graph written by WriteGraphBinary, validating
// structure via graph.FromCSR. Callers that received the bytes from an
// untrusted peer should additionally verify the content hash.
func ReadGraphBinary(r io.Reader) (*graph.Graph, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var scratch [8]byte
	u64 := func() (uint64, error) {
		if _, err := io.ReadFull(br, scratch[:8]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(scratch[:8]), nil
	}
	u32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, scratch[:4]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(scratch[:4]), nil
	}
	f64 := func() (float64, error) {
		x, err := u64()
		return math.Float64frombits(x), err
	}

	magic := make([]byte, len(graphBinMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("service: graph binary header: %w", err)
	}
	if string(magic) != graphBinMagic {
		return nil, fmt.Errorf("service: bad graph binary magic %q", magic)
	}
	n64, err := u64()
	if err != nil {
		return nil, fmt.Errorf("service: graph binary header: %w", err)
	}
	adj64, err := u64()
	if err != nil {
		return nil, fmt.Errorf("service: graph binary header: %w", err)
	}
	if n64 == 0 || n64 > maxBinNodes {
		return nil, fmt.Errorf("service: graph binary names %d nodes (max %d)", n64, maxBinNodes)
	}
	if adj64 > maxBinAdj || adj64%2 != 0 {
		return nil, fmt.Errorf("service: graph binary names %d adjacency entries (max %d, must be even)", adj64, maxBinAdj)
	}
	n, adjLen := int(n64), int(adj64)
	coordByte, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("service: graph binary header: %w", err)
	}
	if coordByte > 1 {
		return nil, fmt.Errorf("service: graph binary coords flag %d", coordByte)
	}

	nodeWeight := make([]float64, n)
	for v := range nodeWeight {
		if nodeWeight[v], err = f64(); err != nil {
			return nil, fmt.Errorf("service: graph binary node weights: %w", err)
		}
	}
	var coords []graph.Point
	if coordByte == 1 {
		coords = make([]graph.Point, n)
		for v := range coords {
			if coords[v].X, err = f64(); err != nil {
				return nil, fmt.Errorf("service: graph binary coords: %w", err)
			}
			if coords[v].Y, err = f64(); err != nil {
				return nil, fmt.Errorf("service: graph binary coords: %w", err)
			}
		}
	}
	offsets := make([]int32, n+1)
	total := 0
	for v := 0; v < n; v++ {
		deg, err := u32()
		if err != nil {
			return nil, fmt.Errorf("service: graph binary degrees: %w", err)
		}
		total += int(deg)
		if total > adjLen {
			return nil, fmt.Errorf("service: graph binary degrees exceed adjacency length %d", adjLen)
		}
		offsets[v+1] = int32(total)
	}
	if total != adjLen {
		return nil, fmt.Errorf("service: graph binary degrees sum to %d, header says %d", total, adjLen)
	}
	adj := make([]int32, adjLen)
	for i := range adj {
		u, err := u32()
		if err != nil {
			return nil, fmt.Errorf("service: graph binary adjacency: %w", err)
		}
		if u >= uint32(n) {
			return nil, fmt.Errorf("service: graph binary neighbor %d out of range (n=%d)", u, n)
		}
		adj[i] = int32(u)
	}
	edgeWeight := make([]float64, adjLen)
	for i := range edgeWeight {
		if edgeWeight[i], err = f64(); err != nil {
			return nil, fmt.Errorf("service: graph binary edge weights: %w", err)
		}
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("service: trailing bytes after graph binary payload")
	}
	g, err := graph.FromCSR(offsets, adj, edgeWeight, nodeWeight, coords)
	if err != nil {
		return nil, fmt.Errorf("service: graph binary content: %w", err)
	}
	return g, nil
}
