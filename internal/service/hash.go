package service

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"

	"repro/internal/algo"
	"repro/internal/graph"
)

// GraphHash returns the canonical content address of g — "sha256:" plus the
// hex digest of the graph's full content (structure, node and edge weights,
// coordinates). This is the address PUT /v1/graphs returns and batch jobs
// reference; equal graphs hash equal regardless of wire encoding.
func GraphHash(g *graph.Graph) string {
	h := hashGraph(g)
	return "sha256:" + hex.EncodeToString(h[:])
}

// cacheKey derives the content address of a request: the graph's content
// hash joined with the algorithm name and every result-relevant option. Two
// requests with the same key are guaranteed the same partition (the
// registry's determinism contract), which is what makes returning a cached
// result sound — and bit-identical.
func cacheKey(g *graph.Graph, algoName string, o algo.Options) string {
	return cacheKeyFromHash(GraphHash(g), algoName, o)
}

// cacheKeyFromHash is cacheKey for callers that already hold the graph's
// content address (the stored-graph submission path): deriving the key costs
// string formatting, never a rehash — this is what makes an N-spec batch
// over one stored graph exactly one content hash, not N.
func cacheKeyFromHash(graphHash, algoName string, o algo.Options) string {
	return fmt.Sprintf("%s:%s:p%d.o%d.s%d.g%d.n%d.i%d.r%d.c%d.l%d.t%d.f%d",
		graphHash, algoName,
		o.Parts, int(o.Objective), o.Seed,
		o.Generations, o.PopSize, o.Islands,
		o.RefinePasses, o.CoarsestSize, o.LanczosIter,
		o.LPThreshold, o.FMParThreshold)
}

// hashGraph digests a graph's full content — structure, node and edge
// weights, and coordinates — in a canonical order, so equal graphs hash
// equal regardless of how they were built or parsed. CSR adjacency is
// already canonical (sorted rows), so one pass over the public accessors
// suffices.
func hashGraph(g *graph.Graph) [sha256.Size]byte {
	h := sha256.New()
	var scratch [8]byte
	writeU64 := func(x uint64) {
		binary.LittleEndian.PutUint64(scratch[:], x)
		h.Write(scratch[:])
	}
	writeF64 := func(f float64) { writeU64(math.Float64bits(f)) }

	n := g.NumNodes()
	writeU64(uint64(n))
	writeU64(uint64(g.NumEdges()))
	hasCoords := g.HasCoords()
	if hasCoords {
		writeU64(1)
	} else {
		writeU64(0)
	}
	for v := 0; v < n; v++ {
		writeF64(g.NodeWeight(v))
		if hasCoords {
			p := g.Coord(v)
			writeF64(p.X)
			writeF64(p.Y)
		}
		nbrs := g.Neighbors(v)
		ws := g.EdgeWeights(v)
		writeU64(uint64(len(nbrs)))
		for i, u := range nbrs {
			writeU64(uint64(u))
			writeF64(ws[i])
		}
	}
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return sum
}
