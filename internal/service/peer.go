package service

import (
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/ring"
)

// PeerFetcher is a shard's lazy-rebalancing arm. When a batch names a graph
// hash this shard does not hold, the hash may live on the shard that owned it
// before a membership change — by the ring's minimal-disruption property,
// that previous owner is exactly the next replica in ring order. The fetcher
// walks the key's replica list (skipping this shard itself), asks each peer
// for the graph in the canonical binary format, and hands back the first
// graph whose re-computed content hash matches the request. Rebalancing after
// adding a shard is therefore transparent: keys migrate on first use, pulled
// rather than pushed, with no coordinator.
type PeerFetcher struct {
	ring   *ring.Ring
	addrs  map[string]string // member name -> host:port
	self   string
	token  string // bearer token presented to peers, when the fleet runs with -tokens
	client *http.Client

	mu    sync.Mutex
	stats PeerStats
}

// PeerStats counts peer-fetch traffic for /v1/stats.
type PeerStats struct {
	Fetches uint64 `json:"fetches"` // graphs successfully pulled from a peer
	Misses  uint64 `json:"misses"`  // fetch attempts where no peer held the graph
	Errors  uint64 `json:"errors"`  // per-peer failures (transport, decode, hash mismatch)
}

// NewPeerFetcher builds a fetcher for the fleet described by members. self
// names this shard (it is skipped as a fetch source and must be a member);
// token, when non-empty, is sent as a bearer credential to peers.
func NewPeerFetcher(members []ring.Member, self, token string) (*PeerFetcher, error) {
	r, err := ring.New(ring.Names(members), 0)
	if err != nil {
		return nil, err
	}
	if !r.Has(self) {
		return nil, fmt.Errorf("service: peer fetcher: self %q is not in the fleet member list", self)
	}
	addrs := make(map[string]string, len(members))
	for _, m := range members {
		addrs[m.Name] = m.Addr
	}
	return &PeerFetcher{
		ring:  r,
		addrs: addrs,
		self:  self,
		token: token,
		client: &http.Client{
			// A peer transfer moves up to a full stored graph; generous but
			// bounded so a hung peer cannot pin the batch handler forever.
			Timeout: 2 * time.Minute,
		},
	}, nil
}

// Stats returns the current counters.
func (p *PeerFetcher) Stats() PeerStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

func (p *PeerFetcher) bump(f func(*PeerStats)) {
	p.mu.Lock()
	f(&p.stats)
	p.mu.Unlock()
}

// Fetch pulls the graph addressed by hash from the first peer in the key's
// replica order that holds it, verifying the content hash before returning.
// It fails only after every candidate peer has been tried.
func (p *PeerFetcher) Fetch(hash string) (*graph.Graph, error) {
	var lastErr error
	tried := 0
	for _, name := range p.ring.Replicas(hash, p.ring.Size()) {
		if name == p.self {
			continue
		}
		tried++
		g, err := p.fetchFrom(name, hash)
		if err != nil {
			lastErr = err
			p.bump(func(s *PeerStats) { s.Errors++ })
			continue
		}
		p.bump(func(s *PeerStats) { s.Fetches++ })
		return g, nil
	}
	p.bump(func(s *PeerStats) { s.Misses++ })
	if lastErr != nil {
		return nil, fmt.Errorf("service: graph %s not held by any of %d peers (last: %w)", hash, tried, lastErr)
	}
	return nil, fmt.Errorf("service: graph %s: no peers to fetch from", hash)
}

func (p *PeerFetcher) fetchFrom(name, hash string) (*graph.Graph, error) {
	req, err := http.NewRequest(http.MethodGet,
		"http://"+p.addrs[name]+"/v1/graphs/"+hash+"?export=bin", nil)
	if err != nil {
		return nil, err
	}
	if p.token != "" {
		req.Header.Set("Authorization", "Bearer "+p.token)
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("peer %s: %w", name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("peer %s: status %d for graph %s", name, resp.StatusCode, hash)
	}
	g, err := ReadGraphBinary(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("peer %s: %w", name, err)
	}
	// The peer is trusted but not infallible: re-hash what it sent and refuse
	// anything that is not the graph the job asked for.
	if got := GraphHash(g); got != hash {
		return nil, fmt.Errorf("peer %s sent graph %s, want %s", name, got, hash)
	}
	return g, nil
}
