package service_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/gio"
	"repro/internal/service"
)

// newTestServer boots the full HTTP stack over a real engine, as partd does.
func newTestServer(t *testing.T, cfg service.Config) (*httptest.Server, *service.Engine) {
	t.Helper()
	e := service.New(cfg)
	ts := httptest.NewServer(service.NewHandler(e))
	t.Cleanup(func() {
		ts.Close()
		e.Close()
	})
	return ts, e
}

func metisPayload(t *testing.T, n int) string {
	t.Helper()
	var buf bytes.Buffer
	if err := gio.WriteMETIS(&buf, gen.Mesh(n, 23)); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func postPartition(t *testing.T, url string, req service.PartitionRequest) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/partition", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func decodeJob(t *testing.T, data []byte) service.JobInfo {
	t.Helper()
	var info service.JobInfo
	if err := json.Unmarshal(data, &info); err != nil {
		t.Fatalf("bad job JSON: %v\n%s", err, data)
	}
	return info
}

func decodeErrorCode(t *testing.T, data []byte) string {
	t.Helper()
	var body struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(data, &body); err != nil {
		t.Fatalf("bad error JSON: %v\n%s", err, data)
	}
	return body.Error.Code
}

func TestHTTPSubmitWaitAndPoll(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{Workers: 2})
	payload := metisPayload(t, 300)

	// Synchronous submission.
	status, data := postPartition(t, ts.URL, service.PartitionRequest{
		Algo: "multilevel-kl", Parts: 4, Seed: 1994, Graph: payload, Wait: true,
	})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, data)
	}
	info := decodeJob(t, data)
	if info.State != service.StateDone || len(info.Result.Assign) != 300 {
		t.Fatalf("job %+v", info)
	}
	if info.Result.Balance <= 0 || info.Result.Cut <= 0 {
		t.Errorf("suspicious metrics: %+v", info.Result)
	}

	// Asynchronous submission + ?wait=1 poll.
	status, data = postPartition(t, ts.URL, service.PartitionRequest{
		Algo: "multilevel-kl", Parts: 4, Seed: 7, Graph: payload,
	})
	if status != http.StatusAccepted && status != http.StatusOK {
		t.Fatalf("async status %d: %s", status, data)
	}
	id := decodeJob(t, data).ID
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("poll status %d: %s", resp.StatusCode, data)
	}
	if got := decodeJob(t, data); got.State != service.StateDone {
		t.Fatalf("polled job %+v", got)
	}

	// Unknown job id is a structured 404.
	resp, err = http.Get(ts.URL + "/v1/jobs/zzz")
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || decodeErrorCode(t, data) != "not_found" {
		t.Fatalf("unknown job: status %d body %s", resp.StatusCode, data)
	}
}

// The acceptance scenario: N concurrent identical requests produce one
// computation and N-1 cache/coalesce hits, every response carrying the
// bit-identical partition.
func TestHTTPConcurrentIdenticalRequests(t *testing.T) {
	const n = 8
	ts, e := newTestServer(t, service.Config{Workers: 2})
	payload := metisPayload(t, 400)
	req := service.PartitionRequest{
		Algo: "multilevel-fm", Parts: 8, Seed: 3, Graph: payload, Wait: true,
	}

	var wg sync.WaitGroup
	statuses := make([]int, n)
	bodies := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], bodies[i] = postPartition(t, ts.URL, req)
		}(i)
	}
	wg.Wait()

	computed := 0
	var ref []uint16
	for i := 0; i < n; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, statuses[i], bodies[i])
		}
		info := decodeJob(t, bodies[i])
		if info.State != service.StateDone {
			t.Fatalf("request %d: %+v", i, info)
		}
		if !info.Cached {
			computed++
		}
		if ref == nil {
			ref = info.Result.Assign
			continue
		}
		if len(info.Result.Assign) != len(ref) {
			t.Fatalf("request %d: assign length %d != %d", i, len(info.Result.Assign), len(ref))
		}
		for v := range ref {
			if info.Result.Assign[v] != ref[v] {
				t.Fatalf("request %d: partition differs at node %d", i, v)
			}
		}
	}
	if computed != 1 {
		t.Errorf("%d of %d responses computed; want exactly 1 (rest cached)", computed, n)
	}
	s := e.Stats()
	if s.CacheMisses != 1 || s.CacheHits+s.Coalesced != n-1 {
		t.Errorf("stats %+v; want 1 miss, %d hits+coalesced", s, n-1)
	}
}

func TestHTTPConstraintViolationsAreStructured4xx(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{Workers: 1})
	payload := metisPayload(t, 100)
	cases := []struct {
		name string
		req  service.PartitionRequest
		code string
	}{
		{"unknown algo", service.PartitionRequest{Algo: "nope", Parts: 4, Graph: payload}, "unknown_algo"},
		{"zero parts", service.PartitionRequest{Algo: "kl", Parts: 0, Graph: payload}, "bad_parts"},
		{"parts exceed nodes", service.PartitionRequest{Algo: "kl", Parts: 101, Graph: payload}, "bad_parts"},
		{"coords needed", service.PartitionRequest{Algo: "ibp", Parts: 4, Graph: payload}, "needs_coords"},
		{"non power of two", service.PartitionRequest{Algo: "rsb", Parts: 3, Graph: payload}, "parts_not_power_of_two"},
		{"bad objective", service.PartitionRequest{Algo: "kl", Parts: 4, Graph: payload, Objective: "median"}, "bad_objective"},
		{"bad format", service.PartitionRequest{Algo: "kl", Parts: 4, Graph: payload, Format: "xml"}, "bad_format"},
		{"empty graph", service.PartitionRequest{Algo: "kl", Parts: 4}, "bad_graph"},
		{"malformed metis", service.PartitionRequest{Algo: "kl", Parts: 4, Graph: "3 9\n2\n1\n\n"}, "bad_graph"},
		{"malformed edgelist", service.PartitionRequest{Algo: "kl", Parts: 2, Format: "edgelist", Graph: "0 0\n"}, "bad_graph"},
	}
	for _, c := range cases {
		status, data := postPartition(t, ts.URL, c.req)
		if status < 400 || status >= 500 {
			t.Errorf("%s: status %d, want 4xx: %s", c.name, status, data)
			continue
		}
		if got := decodeErrorCode(t, data); got != c.code {
			t.Errorf("%s: code %q, want %q (%s)", c.name, got, c.code, data)
		}
	}
}

func TestHTTPMalformedJSON(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{Workers: 1})
	resp, err := http.Post(ts.URL+"/v1/partition", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || decodeErrorCode(t, data) != "bad_json" {
		t.Fatalf("status %d body %s", resp.StatusCode, data)
	}
}

func TestHTTPAlgosReflectsRegistry(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/algos")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body service.AlgosResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.API != service.APIVersion {
		t.Fatalf("api = %q, want %q", body.API, service.APIVersion)
	}
	byName := map[string]service.AlgoInfo{}
	for _, a := range body.Algos {
		byName[a.Name] = a
	}
	if len(byName) < 15 {
		t.Fatalf("only %d algorithms listed", len(byName))
	}
	if !byName["ibp"].NeedsCoords || !byName["rsb"].PowerOfTwoParts || !byName["dknux"].Stochastic {
		t.Errorf("constraints not reflected: %+v %+v %+v", byName["ibp"], byName["rsb"], byName["dknux"])
	}
	if byName["kl"].NeedsCoords {
		t.Error("kl wrongly claims to need coordinates")
	}
}

func TestHTTPStats(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{Workers: 3, CacheBytes: 5 << 10})
	payload := metisPayload(t, 120)
	for i := 0; i < 2; i++ {
		status, data := postPartition(t, ts.URL, service.PartitionRequest{
			Algo: "kl", Parts: 2, Graph: payload, Wait: true,
		})
		if status != http.StatusOK {
			t.Fatalf("status %d: %s", status, data)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var s service.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Version != service.APIVersion {
		t.Errorf("version %q, want %q", s.Version, service.APIVersion)
	}
	if s.Workers != 3 || s.CacheCapacityBytes != 5<<10 {
		t.Errorf("config not reflected: %+v", s)
	}
	if s.JobsSubmitted != 2 || s.CacheMisses != 1 || s.CacheHits != 1 || s.JobsDone != 1 {
		t.Errorf("counters: %+v", s)
	}
	// Legacy submissions route through the store: two identical inline
	// uploads are one stored graph, two parses, one dedup.
	if s.Store.Parses != 2 || s.Store.Graphs != 1 || s.Store.Dedups != 1 {
		t.Errorf("store counters: %+v", s.Store)
	}
	if s.Quota != nil {
		t.Errorf("quota block present without admission control: %+v", s.Quota)
	}
}

// Coordinate-carrying input (native text format) satisfies NeedsCoords
// algorithms end to end.
func TestHTTPTextFormatCarriesCoords(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{Workers: 1})
	var buf bytes.Buffer
	if _, err := gen.Mesh(150, 9).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	status, data := postPartition(t, ts.URL, service.PartitionRequest{
		Algo: "ibp", Parts: 4, Format: "text", Graph: buf.String(), Wait: true,
	})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, data)
	}
	if info := decodeJob(t, data); info.State != service.StateDone {
		t.Fatalf("job %+v", info)
	}
}

func ExampleNewHandler() {
	e := service.New(service.Config{Workers: 1})
	defer e.Close()
	ts := httptest.NewServer(service.NewHandler(e))
	defer ts.Close()

	body, _ := json.Marshal(service.PartitionRequest{
		Algo: "grow", Parts: 2, Format: "edgelist",
		Graph: "0 1\n1 2\n2 3\n3 0\n", Wait: true,
	})
	resp, err := http.Post(ts.URL+"/v1/partition", "application/json", bytes.NewReader(body))
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	var info service.JobInfo
	_ = json.NewDecoder(resp.Body).Decode(&info)
	fmt.Println(info.State, len(info.Result.Assign), "nodes")
	// Output: done 4 nodes
}
