package service_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
)

// newTestServerOpts boots the HTTP stack with handler options (store, quota).
func newTestServerOpts(t *testing.T, cfg service.Config, opts ...service.HandlerOption) (*httptest.Server, *service.Engine) {
	t.Helper()
	e := service.New(cfg)
	ts := httptest.NewServer(service.NewHandler(e, opts...))
	t.Cleanup(func() {
		ts.Close()
		e.Close()
	})
	return ts, e
}

func doJSON(t *testing.T, method, url string, body any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func getStats(t *testing.T, url string) service.StatsResponse {
	t.Helper()
	status, data := doJSON(t, http.MethodGet, url+"/v1/stats", nil)
	if status != http.StatusOK {
		t.Fatalf("stats status %d: %s", status, data)
	}
	var s service.StatsResponse
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatal(err)
	}
	return s
}

// The upload-once acceptance scenario: one PUT followed by a 10-spec batch
// costs exactly one parse and one content hash, and yields assignments
// bit-identical to 10 legacy inline submissions computed by an independent
// daemon.
func TestHTTPUploadOnceBatchBitIdentical(t *testing.T) {
	ts, _ := newTestServerOpts(t, service.Config{Workers: 2})
	payload := metisPayload(t, 300)

	status, data := doJSON(t, http.MethodPut, ts.URL+"/v1/graphs",
		service.GraphPutRequest{Graph: payload})
	if status != http.StatusCreated {
		t.Fatalf("PUT status %d: %s", status, data)
	}
	var put service.GraphPutResponse
	if err := json.Unmarshal(data, &put); err != nil {
		t.Fatal(err)
	}
	if put.Existed || put.Nodes != 300 || !strings.HasPrefix(put.Hash, "sha256:") {
		t.Fatalf("PUT response %+v", put)
	}

	const specs = 10
	batch := service.BatchRequest{Graph: put.Hash, Wait: true}
	for seed := int64(0); seed < specs; seed++ {
		batch.Specs = append(batch.Specs, service.JobSpec{Algo: "multilevel-kl", Parts: 4, Seed: seed})
	}
	status, data = doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", batch)
	if status != http.StatusOK {
		t.Fatalf("batch status %d: %s", status, data)
	}
	var br service.BatchResponse
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Jobs) != specs {
		t.Fatalf("%d jobs returned, want %d", len(br.Jobs), specs)
	}
	for i, j := range br.Jobs {
		if j.State != service.StateDone || j.Result == nil {
			t.Fatalf("job %d: state %s (%s)", i, j.State, j.Error)
		}
	}

	// The counters prove the contract: one parse, one hash — not ten.
	s := getStats(t, ts.URL)
	if s.Store.Parses != 1 || s.Store.Hashes != 1 {
		t.Fatalf("one PUT + %d-spec batch cost %d parses and %d hashes; want 1 and 1",
			specs, s.Store.Parses, s.Store.Hashes)
	}
	if s.CacheMisses != specs {
		t.Errorf("batch of %d distinct specs recorded %d misses", specs, s.CacheMisses)
	}

	// Bit-identity against the legacy path on an independent engine.
	legacy, _ := newTestServerOpts(t, service.Config{Workers: 2})
	for i, j := range br.Jobs {
		status, data := postPartition(t, legacy.URL, service.PartitionRequest{
			Algo: "multilevel-kl", Parts: 4, Seed: int64(i), Graph: payload, Wait: true,
		})
		if status != http.StatusOK {
			t.Fatalf("legacy submit %d: status %d: %s", i, status, data)
		}
		li := decodeJob(t, data)
		if len(li.Result.Assign) != len(j.Result.Assign) {
			t.Fatalf("seed %d: assign lengths differ", i)
		}
		for v := range li.Result.Assign {
			if li.Result.Assign[v] != j.Result.Assign[v] {
				t.Fatalf("seed %d: batch and legacy assignments differ at node %d", i, v)
			}
		}
	}

	// Re-uploading the same graph deduplicates: 200 with existed=true.
	status, data = doJSON(t, http.MethodPut, ts.URL+"/v1/graphs",
		service.GraphPutRequest{Graph: payload})
	if status != http.StatusOK {
		t.Fatalf("re-PUT status %d: %s", status, data)
	}
	if err := json.Unmarshal(data, &put); err != nil {
		t.Fatal(err)
	}
	if !put.Existed {
		t.Error("re-upload not reported as existing")
	}

	// Stored-graph metadata is readable by hash.
	status, data = doJSON(t, http.MethodGet, ts.URL+"/v1/graphs/"+put.Hash, nil)
	if status != http.StatusOK {
		t.Fatalf("GET graph status %d: %s", status, data)
	}
}

// DELETE of one in-flight batch member leaves the other members untouched.
func TestHTTPBatchCancelOneMember(t *testing.T) {
	ctl := installBlock(t)
	ts, _ := newTestServerOpts(t, service.Config{Workers: 1})
	payload := metisPayload(t, 200)

	status, data := doJSON(t, http.MethodPut, ts.URL+"/v1/graphs", service.GraphPutRequest{Graph: payload})
	if status != http.StatusCreated {
		t.Fatalf("PUT status %d: %s", status, data)
	}
	var put service.GraphPutResponse
	if err := json.Unmarshal(data, &put); err != nil {
		t.Fatal(err)
	}

	const specs = 10
	batch := service.BatchRequest{Graph: put.Hash}
	for seed := int64(0); seed < specs; seed++ {
		batch.Specs = append(batch.Specs, service.JobSpec{Algo: "test-block", Parts: 2, Seed: seed})
	}
	status, data = doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", batch)
	if status != http.StatusAccepted {
		t.Fatalf("batch status %d: %s", status, data)
	}
	var br service.BatchResponse
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatal(err)
	}
	ctl.waitStarted(t) // first member is running, the rest are queued

	victim := br.Jobs[5].ID
	status, data = doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+victim, nil)
	if status != http.StatusOK {
		t.Fatalf("DELETE status %d: %s", status, data)
	}
	if got := decodeJob(t, data); got.State != service.StateCancelled {
		t.Fatalf("cancelled job state %s", got.State)
	}

	// ?wait=1 on the cancelled job returns promptly, not when the queue
	// drains. Enforced by a client timeout far shorter than the blocked
	// queue would take.
	quick := &http.Client{Timeout: 3 * time.Second}
	resp, err := quick.Get(ts.URL + "/v1/jobs/" + victim + "?wait=1")
	if err != nil {
		t.Fatalf("wait on cancelled job did not return promptly: %v", err)
	}
	waited, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := decodeJob(t, waited); got.State != service.StateCancelled {
		t.Fatalf("waited job state %s: %s", got.State, waited)
	}

	// Release the pool; the other nine members must all complete.
	close(ctl.release)
	for i, j := range br.Jobs {
		if j.ID == victim {
			continue
		}
		status, data := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+j.ID+"?wait=1", nil)
		if status != http.StatusOK {
			t.Fatalf("member %d wait status %d: %s", i, status, data)
		}
		if got := decodeJob(t, data); got.State != service.StateDone {
			t.Fatalf("member %d state %s (%s) after sibling cancel", i, got.State, got.Error)
		}
	}

	// Cancelling the finished sibling is a structured 409.
	status, data = doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+br.Jobs[0].ID, nil)
	if status != http.StatusConflict || decodeErrorCode(t, data) != "job_finished" {
		t.Fatalf("DELETE finished job: status %d code %s", status, decodeErrorCode(t, data))
	}
	// Unknown job: structured 404.
	status, data = doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/zzz", nil)
	if status != http.StatusNotFound || decodeErrorCode(t, data) != "not_found" {
		t.Fatalf("DELETE unknown job: status %d body %s", status, data)
	}
}

// Batch validation is atomic: one bad spec refuses the whole batch and no
// job is created.
func TestHTTPBatchValidationAtomic(t *testing.T) {
	ts, e := newTestServerOpts(t, service.Config{Workers: 1})
	payload := metisPayload(t, 100)
	status, data := doJSON(t, http.MethodPut, ts.URL+"/v1/graphs", service.GraphPutRequest{Graph: payload})
	if status != http.StatusCreated {
		t.Fatalf("PUT status %d: %s", status, data)
	}
	var put service.GraphPutResponse
	if err := json.Unmarshal(data, &put); err != nil {
		t.Fatal(err)
	}

	batch := service.BatchRequest{Graph: put.Hash, Specs: []service.JobSpec{
		{Algo: "kl", Parts: 2},
		{Algo: "nope", Parts: 2}, // invalid: must sink the whole batch
		{Algo: "kl", Parts: 4},
	}}
	status, data = doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", batch)
	if status != http.StatusBadRequest || decodeErrorCode(t, data) != "unknown_algo" {
		t.Fatalf("mixed batch: status %d body %s", status, data)
	}
	if !strings.Contains(string(data), "spec[1]") {
		t.Errorf("error does not name the offending spec: %s", data)
	}
	if s := e.Stats(); s.JobsSubmitted != 0 {
		t.Errorf("refused batch still created %d jobs", s.JobsSubmitted)
	}

	// Reference errors are structured too.
	status, data = doJSON(t, http.MethodPost, ts.URL+"/v1/jobs",
		service.BatchRequest{Graph: "not-a-hash", Specs: batch.Specs[:1]})
	if status != http.StatusBadRequest || decodeErrorCode(t, data) != "bad_graph_ref" {
		t.Fatalf("bad ref: status %d body %s", status, data)
	}
	status, data = doJSON(t, http.MethodPost, ts.URL+"/v1/jobs",
		service.BatchRequest{Graph: "sha256:" + strings.Repeat("a", 64), Specs: batch.Specs[:1]})
	if status != http.StatusNotFound || decodeErrorCode(t, data) != "graph_not_found" {
		t.Fatalf("unknown graph: status %d body %s", status, data)
	}
	status, data = doJSON(t, http.MethodPost, ts.URL+"/v1/jobs",
		service.BatchRequest{Graph: put.Hash})
	if status != http.StatusBadRequest || decodeErrorCode(t, data) != "empty_batch" {
		t.Fatalf("empty batch: status %d body %s", status, data)
	}
}

// Every response on the surface — including the router's own 404 and 405 —
// carries the JSON error envelope.
func TestHTTPErrorEnvelopeEverywhere(t *testing.T) {
	ts, _ := newTestServerOpts(t, service.Config{Workers: 1})

	status, data := doJSON(t, http.MethodGet, ts.URL+"/v1/nope", nil)
	if status != http.StatusNotFound || decodeErrorCode(t, data) != "not_found" {
		t.Fatalf("unknown route: status %d body %q", status, data)
	}

	status, data = doJSON(t, http.MethodDelete, ts.URL+"/v1/algos", nil)
	if status != http.StatusMethodNotAllowed || decodeErrorCode(t, data) != "method_not_allowed" {
		t.Fatalf("wrong method: status %d body %q", status, data)
	}

	// Handler-level errors keep their own codes (the interceptor must not
	// clobber JSON the handlers already wrote).
	status, data = doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/zzz", nil)
	if status != http.StatusNotFound || decodeErrorCode(t, data) != "not_found" {
		t.Fatalf("unknown job: status %d body %q", status, data)
	}
	status, data = doJSON(t, http.MethodGet, ts.URL+"/v1/graphs/zzz", nil)
	if status != http.StatusBadRequest || decodeErrorCode(t, data) != "bad_graph_ref" {
		t.Fatalf("bad graph ref: status %d body %q", status, data)
	}
}

// Per-client quota: mutating requests past the burst are refused with a
// structured 429 and Retry-After; reads are never throttled; /v1/stats
// reports per-client counters.
func TestHTTPQuotaAdmission(t *testing.T) {
	ts, _ := newTestServerOpts(t, service.Config{Workers: 1},
		service.WithQuota(service.NewQuota(0.01, 2))) // burst 2, negligible refill
	payload := metisPayload(t, 100)

	send := func(client string) (int, []byte, http.Header) {
		body, _ := json.Marshal(service.PartitionRequest{Algo: "kl", Parts: 2, Graph: payload, Wait: true})
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/partition", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Client", client)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, data, resp.Header
	}

	for i := 0; i < 2; i++ {
		if status, data, _ := send("alice"); status != http.StatusOK {
			t.Fatalf("request %d within burst: status %d: %s", i, status, data)
		}
	}
	status, data, hdr := send("alice")
	if status != http.StatusTooManyRequests || decodeErrorCode(t, data) != "quota_exceeded" {
		t.Fatalf("over-burst request: status %d body %s", status, data)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	// A different client is unaffected.
	if status, data, _ := send("bob"); status != http.StatusOK {
		t.Fatalf("other client throttled: status %d: %s", status, data)
	}
	// Reads are never throttled, and the stats expose per-client counters.
	for i := 0; i < 5; i++ {
		s := getStats(t, ts.URL)
		if i < 4 {
			continue
		}
		if s.Quota == nil {
			t.Fatal("stats carry no quota block")
		}
		alice := s.Quota.Clients["alice"]
		if alice.Requests != 3 || alice.Throttled != 1 {
			t.Errorf("alice counters %+v, want 3 requests 1 throttled", alice)
		}
	}
}
