package service

import (
	"math"
	"sync"
	"time"
)

// Quota is the per-client admission layer: a token bucket per client
// identity (the X-Client header when the caller sends one, the remote
// address otherwise), refilled continuously at RatePerSec up to Burst.
// Mutating requests (upload, submit, cancel) consume one token; when a
// client's bucket is empty the request is refused with a structured 429 and
// a Retry-After hint instead of being queued — admission control is what
// keeps one chatty client from starving the rest of the worker pool, which
// the engine's global MaxQueue backpressure alone cannot do.
//
// A nil *Quota admits everything and records nothing, so the daemon without
// -rate runs exactly as before.
type Quota struct {
	mu         sync.Mutex
	rate       float64 // tokens per second
	burst      float64 // bucket capacity
	maxClients int
	now        func() time.Time // injectable for tests
	clients    map[string]*clientBucket
}

type clientBucket struct {
	tokens   float64
	last     time.Time // last refill
	requests uint64
	throttle uint64
}

// ClientStats is one client's request accounting as served by /v1/stats.
type ClientStats struct {
	Requests  uint64 `json:"requests"`
	Throttled uint64 `json:"throttled"`
}

// QuotaStats is the admission layer's /v1/stats block.
type QuotaStats struct {
	RatePerSec float64                `json:"rate_per_sec"`
	Burst      float64                `json:"burst"`
	Clients    map[string]ClientStats `json:"clients"`
}

// maxQuotaClients bounds the per-client map: a daemon facing address-churning
// traffic must not grow client state without limit, so past the bound the
// stalest bucket is evicted (its client restarts with a full bucket — the
// failure mode is generosity, not denial).
const maxQuotaClients = 10000

// NewQuota builds an admission layer granting ratePerSec sustained requests
// per client with bursts up to burst (burst < 1 is raised to max(rate, 1) so
// a configured quota always admits something).
func NewQuota(ratePerSec, burst float64) *Quota {
	if burst < 1 {
		burst = math.Max(ratePerSec, 1)
	}
	return &Quota{
		rate:       ratePerSec,
		burst:      burst,
		maxClients: maxQuotaClients,
		now:        time.Now,
		clients:    make(map[string]*clientBucket),
	}
}

func (q *Quota) bucketLocked(client string) *clientBucket {
	b, ok := q.clients[client]
	if !ok {
		if len(q.clients) >= q.maxClients {
			var staleKey string
			var stale time.Time
			for k, c := range q.clients {
				if staleKey == "" || c.last.Before(stale) {
					staleKey, stale = k, c.last
				}
			}
			delete(q.clients, staleKey)
		}
		b = &clientBucket{tokens: q.burst, last: q.now()}
		q.clients[client] = b
	}
	return b
}

func (b *clientBucket) refill(now time.Time, rate, burst float64) {
	if elapsed := now.Sub(b.last).Seconds(); elapsed > 0 {
		b.tokens = math.Min(burst, b.tokens+elapsed*rate)
		b.last = now
	}
}

// Admit consumes one token from client's bucket. When the bucket is empty it
// refuses and returns how long until a token will be available — the
// Retry-After the HTTP layer sends with the 429.
func (q *Quota) Admit(client string) (ok bool, retryAfter time.Duration) {
	if q == nil {
		return true, 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.bucketLocked(client)
	b.refill(q.now(), q.rate, q.burst)
	b.requests++
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	b.throttle++
	if q.rate <= 0 {
		return false, time.Hour // a zero-rate quota never refills
	}
	return false, time.Duration(math.Ceil((1-b.tokens)/q.rate)) * time.Second
}

// Note records a request that is not admission-controlled (the cheap read
// endpoints), so per-client request counts cover the whole API surface.
func (q *Quota) Note(client string) {
	if q == nil {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.bucketLocked(client).requests++
}

// Stats snapshots the admission configuration and every known client's
// counters.
func (q *Quota) Stats() *QuotaStats {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	out := &QuotaStats{
		RatePerSec: q.rate,
		Burst:      q.burst,
		Clients:    make(map[string]ClientStats, len(q.clients)),
	}
	for k, b := range q.clients {
		out.Clients[k] = ClientStats{Requests: b.requests, Throttled: b.throttle}
	}
	return out
}
