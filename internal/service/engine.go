// Package service turns the algorithm registry into a long-running
// partition-as-a-service job engine: callers submit (graph, algorithm,
// options) requests, a bounded worker pool executes them, and a
// content-addressed LRU cache returns bit-identical results for repeated
// requests without recomputing.
//
// Determinism is what makes the cache sound. Every registered partitioner is
// deterministic for a fixed Options.Seed, and the Workers/EvalWorkers knobs
// are pure speed knobs (bit-identical results for any value — the
// internal/par contract), so the cache key is (graph content hash, algorithm
// name, normalized options) with the speed knobs normalized away. Two
// requests with equal keys therefore have equal answers, no matter which
// pool worker computes them or how wide the pool is.
//
// Identical requests in flight are coalesced: the first computes, the rest
// attach to the same computation and are reported as cache hits. This is
// what bounds the cost of a thundering herd of identical requests to one
// partition run.
//
// Jobs are cancellable: a queued job dies immediately, a running one has its
// context cancelled and the algorithm returns at its next checkpoint
// (between refinement passes — see algo.Options.Ctx). Cancelling one job of
// a coalesced group only detaches that job; the computation itself is
// cancelled only when its last interested job is gone, so one client's
// DELETE can never destroy a result another client is waiting on. Cancelled
// computations never populate the result cache.
package service

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/algo"
	"repro/internal/graph"
	"repro/internal/par"
)

// Config sizes an Engine.
type Config struct {
	// Workers bounds how many partition computations run concurrently
	// (<= 0 selects GOMAXPROCS, like every Workers knob in this repository).
	Workers int
	// CacheBytes bounds the completed-result LRU cache by total payload
	// bytes — assignment vectors plus per-entry overhead, see entryBytes —
	// rather than by entry count, so the daemon's cache memory is a real
	// budget instead of a function of graph sizes (<= 0 selects 64 MiB).
	CacheBytes int64
	// JobParallelism is the Workers/EvalWorkers width each computation runs
	// with (<= 0 divides GOMAXPROCS evenly across the pool). It never
	// affects results, only speed.
	JobParallelism int
	// JobHistory bounds how many jobs remain pollable via GetJob (<= 0
	// selects 4096). Submitting past the bound forgets the oldest finished
	// jobs — without this a long-running daemon's job table (and the result
	// slices it pins) would grow with total request count.
	JobHistory int
	// MaxQueue bounds how many computations may wait for a worker (<= 0
	// selects 256). Every queued entry pins its parsed graph, so an
	// unbounded queue would let async submissions grow memory without
	// limit; past the bound Submit fails fast with an overloaded error
	// (backpressure) instead of accepting work it cannot hold.
	MaxQueue int
	// Log, when non-nil, receives one record per job that reaches a
	// terminal state, giving the daemon a bounded persistent job history.
	Log *JobLog
	// Restore pre-populates the job table with terminal jobs from a
	// previous run (what OpenJobLog returned), so GET /v1/jobs/{id} keeps
	// answering across a restart. Restored jobs count against JobHistory
	// and are never re-logged.
	Restore []JobInfo
}

// ErrOverloaded is returned (wrapped) by Submit when the computation queue
// is full; the HTTP layer maps it to 429.
var ErrOverloaded = fmt.Errorf("service: computation queue is full")

// ErrNoJob is returned (wrapped) by WaitJob and CancelJob for unknown or
// history-evicted job ids; the HTTP layer maps it to 404.
var ErrNoJob = fmt.Errorf("service: no such job")

// ErrEngineClosed is the typed shutdown error: Submit after Close fails
// with it, and queued jobs that Close failed carry it, so a waiter woken by
// shutdown can tell "the daemon is going away" (retry elsewhere) from "my
// request was bad" (don't retry). The HTTP layer maps it to a structured
// 503 with code "engine_closed".
var ErrEngineClosed = fmt.Errorf("service: engine is shut down (engine_closed)")

// ErrCancelled marks a job terminated by CancelJob rather than by its own
// completion or failure.
var ErrCancelled = fmt.Errorf("service: job cancelled")

// State is a job's lifecycle position.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// terminal reports whether s is a final state.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Result is a completed partition with the quality metrics the benchmark
// suite reports.
type Result struct {
	Assign      []uint16 `json:"assign"`
	Parts       int      `json:"parts"`
	Cut         float64  `json:"cut"`
	MaxPartCut  float64  `json:"max_part_cut"`
	CommVolume  float64  `json:"comm_volume"`
	ImbalanceSq float64  `json:"imbalance_sq"`
	Balance     float64  `json:"balance"`
	// ComputeNS is the wall time of the computation that produced this
	// result. Cache hits share the producing run's Result, so they carry
	// its original compute time — the job's own cost for a hit is ~0.
	ComputeNS int64 `json:"compute_ns"`
}

// JobInfo is an immutable snapshot of a job.
type JobInfo struct {
	ID      string  `json:"id"`
	State   State   `json:"state"`
	Algo    string  `json:"algo"`
	Parts   int     `json:"parts"`
	Seed    int64   `json:"seed"`
	Key     string  `json:"key"`    // content-addressed cache key
	Cached  bool    `json:"cached"` // served by the cache or coalesced onto an in-flight computation
	Error   string  `json:"error,omitempty"`
	Created int64   `json:"created_unix_ms"`
	Result  *Result `json:"result,omitempty"`
}

// Stats are the engine's instrumentation counters.
type Stats struct {
	Workers            int    `json:"workers"`
	JobsSubmitted      uint64 `json:"jobs_submitted"`
	JobsQueued         int    `json:"jobs_queued"`
	JobsRunning        int    `json:"jobs_running"`
	JobsDone           uint64 `json:"jobs_done"`
	JobsFailed         uint64 `json:"jobs_failed"`
	JobsCancelled      uint64 `json:"jobs_cancelled"` // jobs terminated by CancelJob
	CacheHits          uint64 `json:"cache_hits"`     // completed-result hits
	Coalesced          uint64 `json:"coalesced"`      // joined an identical in-flight computation
	CacheMisses        uint64 `json:"cache_misses"`   // requests that had to compute
	CacheEvictions     uint64 `json:"cache_evictions"`
	CacheEntries       int    `json:"cache_entries"`
	CacheBytes         int64  `json:"cache_bytes"`          // payload bytes currently retained
	CacheCapacityBytes int64  `json:"cache_capacity_bytes"` // the configured budget
}

// RequestError is a caller mistake (unknown algorithm, constraint
// violation, invalid part count) as opposed to an internal failure; the
// HTTP layer maps it to a structured 4xx response.
type RequestError struct {
	Code    string // stable machine-readable code
	Message string
}

func (e *RequestError) Error() string { return e.Message }

func reqErr(code, format string, args ...any) *RequestError {
	return &RequestError{Code: code, Message: fmt.Sprintf(format, args...)}
}

// entry is one distinct computation, shared by every job with the same key.
type entry struct {
	key     string
	algo    string
	opts    algo.Options // normalized; execution widths applied at run time
	graph   *graph.Graph // released once the computation finishes
	state   State
	result  *Result
	err     error
	done    chan struct{} // closed on completion, for waiters
	execNum int           // worker slot, for debugging

	// Cancellation plumbing. ctx is threaded into the algorithm run; cancel
	// fires it. refs counts attached live jobs — the computation is only
	// cancelled when the last of them is (a coalesced sibling's result must
	// survive any other client's DELETE). jobs lists every attached job for
	// terminal-state logging.
	ctx    context.Context
	cancel context.CancelFunc
	refs   int
	jobs   []*job
}

// job is one submitted request; many jobs may share one entry.
type job struct {
	id        string
	created   time.Time
	cached    bool
	entry     *entry
	cancelled bool          // this job was individually cancelled
	cancelCh  chan struct{} // closed on individual cancellation, for waiters
	logged    bool          // terminal record already written to the job log
}

// Engine is the job engine. Create with New, stop with Close.
type Engine struct {
	cfg Config

	mu       sync.Mutex
	cond     *sync.Cond // queue became non-empty, or the engine closed
	queue    []*entry   // FIFO of entries awaiting a worker
	jobs     map[string]*job
	jobOrder []string // job ids in creation order, for history eviction
	inflight map[string]*entry
	cache    *lruCache
	seq      uint64
	running  int
	closed   bool
	wg       sync.WaitGroup

	jobsSubmitted, jobsDone, jobsFailed, jobsCancelled uint64
	hits, coalesced, misses, evictions                 uint64
}

// New starts an Engine with cfg's worker pool.
func New(cfg Config) *Engine {
	cfg.Workers = par.Workers(cfg.Workers)
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 64 << 20
	}
	if cfg.JobHistory <= 0 {
		cfg.JobHistory = 4096
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 256
	}
	if cfg.JobParallelism <= 0 {
		cfg.JobParallelism = par.Workers(0) / cfg.Workers
		if cfg.JobParallelism < 1 {
			cfg.JobParallelism = 1
		}
	}
	e := &Engine{
		cfg:      cfg,
		jobs:     make(map[string]*job),
		inflight: make(map[string]*entry),
		cache:    newLRU(cfg.CacheBytes),
	}
	e.cond = sync.NewCond(&e.mu)
	e.restore(cfg.Restore)
	e.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go e.worker(i)
	}
	return e
}

// restore seeds the job table from a previous run's terminal records. The id
// sequence resumes past the largest restored id, so new jobs never collide
// with restored ones.
func (e *Engine) restore(records []JobInfo) {
	for _, rec := range records {
		if rec.ID == "" || !rec.State.terminal() {
			continue
		}
		if _, dup := e.jobs[rec.ID]; dup {
			continue
		}
		ent := &entry{
			key:    rec.Key,
			algo:   rec.Algo,
			opts:   algo.Options{Parts: rec.Parts, Seed: rec.Seed},
			state:  rec.State,
			result: rec.Result,
			done:   closedChan,
		}
		if rec.Error != "" {
			ent.err = fmt.Errorf("%s", rec.Error)
		}
		j := &job{
			id:       rec.ID,
			created:  time.UnixMilli(rec.Created),
			cached:   rec.Cached,
			entry:    ent,
			cancelCh: closedChan,
			logged:   true, // already persisted by the run that produced it
		}
		if rec.State == StateCancelled {
			j.cancelled = true
		}
		e.jobs[j.id] = j
		e.jobOrder = append(e.jobOrder, j.id)
		var n uint64
		if _, err := fmt.Sscanf(rec.ID, "j%d", &n); err == nil && n > e.seq {
			e.seq = n
		}
	}
	for len(e.jobs) > e.cfg.JobHistory && len(e.jobOrder) > 0 {
		id := e.jobOrder[0]
		e.jobOrder = e.jobOrder[1:]
		delete(e.jobs, id)
	}
}

// closedChan is a pre-closed channel shared by everything that is born
// terminal (restored jobs, cache hits never wait).
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// Validate checks a request against the registry's declared constraints
// without submitting it. It returns nil or a *RequestError; batch callers
// use it to validate every spec before submitting any, so a batch is
// accepted or refused atomically.
func (e *Engine) Validate(g *graph.Graph, algoName string, opts algo.Options) error {
	if re := validateRequest(g, algoName, opts); re != nil {
		return re
	}
	return nil
}

func validateRequest(g *graph.Graph, algoName string, opts algo.Options) *RequestError {
	p, err := algo.Get(algoName)
	if err != nil {
		return reqErr("unknown_algo", "unknown algorithm %q (see /v1/algos; available: %v)", algoName, algo.Names())
	}
	if opts.Parts < 1 {
		return reqErr("bad_parts", "parts must be >= 1, got %d", opts.Parts)
	}
	if opts.Parts > g.NumNodes() {
		return reqErr("bad_parts", "parts %d exceeds the graph's %d nodes", opts.Parts, g.NumNodes())
	}
	// Partition assignments are uint16 repo-wide; a larger part count would
	// silently wrap part ids instead of failing.
	if opts.Parts > 1<<16 {
		return reqErr("bad_parts", "parts %d exceeds the supported maximum %d", opts.Parts, 1<<16)
	}
	info := p.Info()
	if info.NeedsCoords && !g.HasCoords() {
		return reqErr("needs_coords", "algorithm %q requires a geometric embedding and the input format carries none", algoName)
	}
	if info.PowerOfTwoParts && opts.Parts&(opts.Parts-1) != 0 {
		return reqErr("parts_not_power_of_two", "algorithm %q requires a power-of-two part count, got %d", algoName, opts.Parts)
	}
	if !info.SupportsObjective(opts.Objective) {
		return reqErr("unsupported_objective", "algorithm %q does not support objective %q (see /v1/algos)", algoName, opts.Objective.FlagName())
	}
	return nil
}

// Submit validates a request against the registry's declared constraints and
// either answers it from the cache, attaches it to an identical in-flight
// computation, or queues a new computation. It returns the job's snapshot;
// poll GetJob or block on WaitJob for completion.
func (e *Engine) Submit(g *graph.Graph, algoName string, opts algo.Options) (JobInfo, error) {
	_, info, err := e.submit(g, GraphHash(g), algoName, opts)
	return info, err
}

// SubmitStored is Submit for a graph already held in a GraphStore: the
// stored content address keys the cache directly, so no rehash happens —
// an N-spec batch over one stored graph costs one parse and one hash total,
// both paid at PUT time.
func (e *Engine) SubmitStored(sg *StoredGraph, algoName string, opts algo.Options) (JobInfo, error) {
	_, info, err := e.submit(sg.Graph, sg.Hash, algoName, opts)
	return info, err
}

// SubmitWait submits like Submit and blocks until the job completes or ctx
// is cancelled. It holds the job reference across the wait, so the result
// is delivered even if a burst of other submissions evicts the job from
// the pollable history meanwhile.
func (e *Engine) SubmitWait(ctx context.Context, g *graph.Graph, algoName string, opts algo.Options) (JobInfo, error) {
	j, info, err := e.submit(g, GraphHash(g), algoName, opts)
	if err != nil {
		return info, err
	}
	return e.waitOn(ctx, j)
}

// SubmitStoredWait is SubmitWait over a stored graph (see SubmitStored).
func (e *Engine) SubmitStoredWait(ctx context.Context, sg *StoredGraph, algoName string, opts algo.Options) (JobInfo, error) {
	j, info, err := e.submit(sg.Graph, sg.Hash, algoName, opts)
	if err != nil {
		return info, err
	}
	return e.waitOn(ctx, j)
}

// waitOn blocks until j reaches a terminal state — its computation finishes
// or the job is individually cancelled — or ctx is done.
func (e *Engine) waitOn(ctx context.Context, j *job) (JobInfo, error) {
	select {
	case <-j.entry.done:
	case <-j.cancelCh:
	case <-ctx.Done():
		return JobInfo{}, ctx.Err()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.snapshotLocked(j), nil
}

func (e *Engine) submit(g *graph.Graph, graphHash, algoName string, opts algo.Options) (*job, JobInfo, error) {
	if re := validateRequest(g, algoName, opts); re != nil {
		return nil, JobInfo{}, re
	}
	opts = normalizeOptions(opts)
	key := cacheKeyFromHash(graphHash, algoName, opts)

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, JobInfo{}, fmt.Errorf("%w: not accepting new jobs", ErrEngineClosed)
	}
	newJob := func() *job {
		e.jobsSubmitted++
		e.seq++
		j := &job{
			id:       fmt.Sprintf("j%08d", e.seq),
			created:  time.Now(),
			cancelCh: make(chan struct{}),
		}
		e.jobs[j.id] = j
		e.jobOrder = append(e.jobOrder, j.id)
		e.evictJobHistoryLocked()
		return j
	}

	if ent, ok := e.cache.get(key); ok {
		e.hits++
		j := newJob()
		j.cached = true
		j.entry = ent
		e.logJobLocked(j) // born terminal
		return j, e.snapshotLocked(j), nil
	}
	if ent, ok := e.inflight[key]; ok {
		e.coalesced++
		j := newJob()
		j.cached = true
		j.entry = ent
		ent.refs++
		ent.jobs = append(ent.jobs, j)
		return j, e.snapshotLocked(j), nil
	}
	// A new computation needs a queue slot; every queued entry pins its
	// parsed graph, so refuse (backpressure) rather than queue without
	// bound. Checked before the job record is created: an overloaded
	// request leaves no trace.
	if len(e.queue) >= e.cfg.MaxQueue {
		return nil, JobInfo{}, fmt.Errorf("%w (%d computations waiting); retry later", ErrOverloaded, len(e.queue))
	}
	e.misses++
	ctx, cancel := context.WithCancel(context.Background())
	ent := &entry{
		key:    key,
		algo:   algoName,
		opts:   opts,
		graph:  g,
		state:  StateQueued,
		done:   make(chan struct{}),
		ctx:    ctx,
		cancel: cancel,
		refs:   1,
	}
	j := newJob()
	j.entry = ent
	ent.jobs = append(ent.jobs, j)
	e.inflight[key] = ent
	e.queue = append(e.queue, ent)
	e.cond.Signal()
	return j, e.snapshotLocked(j), nil
}

// evictJobHistoryLocked forgets the oldest finished jobs beyond the history
// bound. Queued and running jobs are never evicted (clients are still
// waiting on them), so under a backlog deeper than the bound the table
// temporarily exceeds it — memory there is already bounded by the queue
// itself. e.mu must be held.
func (e *Engine) evictJobHistoryLocked() {
	for len(e.jobs) > e.cfg.JobHistory && len(e.jobOrder) > 0 {
		id := e.jobOrder[0]
		j, ok := e.jobs[id]
		if ok && !j.cancelled && !j.entry.state.terminal() {
			return // oldest job still active; nothing older to free
		}
		e.jobOrder = e.jobOrder[1:]
		delete(e.jobs, id)
	}
}

// GetJob returns a job snapshot. Jobs older than Config.JobHistory finished
// submissions are forgotten and report not-found.
func (e *Engine) GetJob(id string) (JobInfo, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	if !ok {
		return JobInfo{}, false
	}
	return e.snapshotLocked(j), true
}

// WaitJob blocks until the job reaches a terminal state (done, failed, or
// cancelled) or ctx is cancelled, and returns the final snapshot. The job
// reference is resolved once up front, so history eviction during the wait
// cannot lose the result; an individually cancelled job wakes its waiters
// promptly even when its (shared) computation keeps running for someone
// else. Unknown ids fail with an error wrapping ErrNoJob.
func (e *Engine) WaitJob(ctx context.Context, id string) (JobInfo, error) {
	e.mu.Lock()
	j, ok := e.jobs[id]
	e.mu.Unlock()
	if !ok {
		return JobInfo{}, fmt.Errorf("%w: %q", ErrNoJob, id)
	}
	return e.waitOn(ctx, j)
}

// CancelJob cancels one job. A queued job (whose computation no one else
// wants) is failed immediately without ever running; a running computation
// has its context cancelled and stops at the algorithm's next checkpoint; a
// job coalesced onto a computation other jobs still want merely detaches —
// the computation and its eventual cached result survive. Cancelling an
// already-cancelled job is a no-op returning the current snapshot;
// cancelling a finished job returns its snapshot plus a *RequestError with
// code "job_finished" (there is nothing left to cancel).
func (e *Engine) CancelJob(id string) (JobInfo, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	if !ok {
		return JobInfo{}, fmt.Errorf("%w: %q", ErrNoJob, id)
	}
	if j.cancelled {
		return e.snapshotLocked(j), nil
	}
	ent := j.entry
	if ent.state.terminal() {
		return e.snapshotLocked(j), reqErr("job_finished", "job %q already %s; nothing to cancel", id, ent.state)
	}
	j.cancelled = true
	close(j.cancelCh)
	e.jobsCancelled++
	ent.refs--
	if ent.refs <= 0 {
		// Last interested job gone: kill the computation. Drop the key from
		// the in-flight index either way, so a fresh identical submission
		// starts a fresh computation instead of attaching to a dying one.
		delete(e.inflight, ent.key)
		switch ent.state {
		case StateQueued:
			e.removeQueuedLocked(ent)
			ent.state = StateCancelled
			ent.err = ErrCancelled
			ent.graph = nil
			close(ent.done)
		case StateRunning:
			ent.cancel() // the worker observes ctx and publishes the cancel
		}
	}
	e.logJobLocked(j)
	return e.snapshotLocked(j), nil
}

// removeQueuedLocked drops ent from the FIFO. e.mu must be held.
func (e *Engine) removeQueuedLocked(ent *entry) {
	for i, q := range e.queue {
		if q == ent {
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			return
		}
	}
}

// Workers returns the resolved worker-pool width.
func (e *Engine) Workers() int { return e.cfg.Workers }

// Stats returns the current counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Stats{
		Workers:            e.cfg.Workers,
		JobsSubmitted:      e.jobsSubmitted,
		JobsQueued:         len(e.queue),
		JobsRunning:        e.running,
		JobsDone:           e.jobsDone,
		JobsFailed:         e.jobsFailed,
		JobsCancelled:      e.jobsCancelled,
		CacheHits:          e.hits,
		Coalesced:          e.coalesced,
		CacheMisses:        e.misses,
		CacheEvictions:     e.evictions,
		CacheEntries:       e.cache.len(),
		CacheBytes:         e.cache.sizeBytes(),
		CacheCapacityBytes: e.cfg.CacheBytes,
	}
}

// Close stops the engine: queued-but-unstarted computations fail with
// ErrEngineClosed (their waiters wake immediately — Close never strands a
// SubmitWait), running ones are allowed to finish, and the worker pool
// drains before Close returns. Submit after Close fails with
// ErrEngineClosed.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.wg.Wait()
		return
	}
	e.closed = true
	for _, ent := range e.queue {
		ent.state = StateFailed
		ent.err = fmt.Errorf("%w before the job ran", ErrEngineClosed)
		ent.graph = nil
		delete(e.inflight, ent.key)
		e.jobsFailed++
		close(ent.done)
		for _, j := range ent.jobs {
			e.logJobLocked(j)
		}
	}
	e.queue = nil
	e.cond.Broadcast()
	e.mu.Unlock()
	e.wg.Wait()
}

// worker is one pool goroutine: pop, compute, publish, repeat.
func (e *Engine) worker(slot int) {
	defer e.wg.Done()
	for {
		e.mu.Lock()
		for len(e.queue) == 0 && !e.closed {
			e.cond.Wait()
		}
		if len(e.queue) == 0 && e.closed {
			e.mu.Unlock()
			return
		}
		ent := e.queue[0]
		e.queue = e.queue[1:]
		ent.state = StateRunning
		ent.execNum = slot
		e.running++
		e.mu.Unlock()

		res, err := e.compute(ent)

		e.mu.Lock()
		e.running--
		if e.inflight[ent.key] == ent {
			delete(e.inflight, ent.key)
		}
		switch {
		case ent.ctx.Err() != nil:
			// Cancelled mid-run: the algorithm returned early (possibly with
			// a valid partial partition). The result is discarded, never
			// cached — a cancelled job must not poison the content-addressed
			// cache with a half-refined answer.
			ent.state = StateCancelled
			ent.err = ErrCancelled
		case err != nil:
			ent.state = StateFailed
			ent.err = err
			e.jobsFailed++
		default:
			ent.state = StateDone
			ent.result = res
			e.jobsDone++
			e.evictions += uint64(e.cache.add(ent.key, ent))
		}
		ent.graph = nil // the CSR arrays are the bulk of a job's footprint
		ent.cancel()    // release the context's resources
		close(ent.done)
		for _, j := range ent.jobs {
			e.logJobLocked(j)
		}
		e.mu.Unlock()
	}
}

// compute runs the actual partitioner with the entry's cancellation context
// threaded through algo.Options.Ctx, so the registered algorithms observe a
// CancelJob at their serial checkpoints. A panicking algorithm must not take
// the daemon down, so panics become failed jobs.
func (e *Engine) compute(ent *entry) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("service: %s panicked: %v\n%s", ent.algo, r, debug.Stack())
		}
	}()
	if ent.ctx.Err() != nil {
		return nil, ErrCancelled // cancelled while queued but already popped
	}
	opts := ent.opts
	opts.Workers = e.cfg.JobParallelism
	opts.EvalWorkers = e.cfg.JobParallelism
	opts.Ctx = ent.ctx
	g := ent.graph
	start := time.Now()
	p, err := algo.Run(g, ent.algo, opts)
	if err != nil {
		return nil, err
	}
	if ent.ctx.Err() != nil {
		return nil, ErrCancelled // the publish path re-checks ctx anyway
	}
	elapsed := time.Since(start)
	if err := p.Validate(g); err != nil {
		return nil, fmt.Errorf("service: %s returned an invalid partition: %w", ent.algo, err)
	}
	res = &Result{
		Assign:      p.Assign,
		Parts:       p.Parts,
		Cut:         p.CutSize(g),
		MaxPartCut:  p.MaxPartCut(g),
		CommVolume:  p.CommVolume(g),
		ImbalanceSq: p.ImbalanceSq(g),
		ComputeNS:   elapsed.Nanoseconds(),
	}
	ideal := g.TotalNodeWeight() / float64(p.Parts)
	var maxW float64
	for _, w := range p.PartWeights(g) {
		if w > maxW {
			maxW = w
		}
	}
	if ideal > 0 {
		res.Balance = maxW / ideal
	}
	return res, nil
}

// logJobLocked appends j's terminal snapshot to the job log, once. Jobs that
// are not yet terminal (a non-cancelled job on a live entry) are skipped;
// the publish path calls again when the entry finishes. e.mu must be held.
func (e *Engine) logJobLocked(j *job) {
	if e.cfg.Log == nil || j.logged {
		return
	}
	if !j.cancelled && !j.entry.state.terminal() {
		return
	}
	j.logged = true
	e.cfg.Log.Append(e.snapshotLocked(j))
}

// snapshotLocked assembles a JobInfo; e.mu must be held. An individually
// cancelled job reports cancelled (with no result) even when the shared
// computation it had joined lives on for other jobs.
func (e *Engine) snapshotLocked(j *job) JobInfo {
	ent := j.entry
	info := JobInfo{
		ID:      j.id,
		State:   ent.state,
		Algo:    ent.algo,
		Parts:   ent.opts.Parts,
		Seed:    ent.opts.Seed,
		Key:     ent.key,
		Cached:  j.cached,
		Created: j.created.UnixMilli(),
	}
	if ent.err != nil {
		info.Error = ent.err.Error()
	}
	if ent.state == StateDone {
		info.Result = ent.result
	}
	if j.cancelled {
		info.State = StateCancelled
		info.Error = ErrCancelled.Error()
		info.Result = nil
	}
	return info
}

// normalizeOptions canonicalizes the fields that may not influence the
// result: Workers and EvalWorkers are pure speed knobs (the internal/par
// bit-identity contract), so they are zeroed out of the cache key and
// replaced by the engine's own execution width, Ctx is per-submission
// plumbing that never belongs in a key or an entry, and MultilevelStats is
// an output-only sink.
func normalizeOptions(o algo.Options) algo.Options {
	o.Workers = 0
	o.EvalWorkers = 0
	o.Ctx = nil
	o.MultilevelStats = nil
	return o
}
