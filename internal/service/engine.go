// Package service turns the algorithm registry into a long-running
// partition-as-a-service job engine: callers submit (graph, algorithm,
// options) requests, a bounded worker pool executes them, and a
// content-addressed LRU cache returns bit-identical results for repeated
// requests without recomputing.
//
// Determinism is what makes the cache sound. Every registered partitioner is
// deterministic for a fixed Options.Seed, and the Workers/EvalWorkers knobs
// are pure speed knobs (bit-identical results for any value — the
// internal/par contract), so the cache key is (graph content hash, algorithm
// name, normalized options) with the speed knobs normalized away. Two
// requests with equal keys therefore have equal answers, no matter which
// pool worker computes them or how wide the pool is.
//
// Identical requests in flight are coalesced: the first computes, the rest
// attach to the same computation and are reported as cache hits. This is
// what bounds the cost of a thundering herd of identical requests to one
// partition run.
package service

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/algo"
	"repro/internal/graph"
	"repro/internal/par"
)

// Config sizes an Engine.
type Config struct {
	// Workers bounds how many partition computations run concurrently
	// (<= 0 selects GOMAXPROCS, like every Workers knob in this repository).
	Workers int
	// CacheBytes bounds the completed-result LRU cache by total payload
	// bytes — assignment vectors plus per-entry overhead, see entryBytes —
	// rather than by entry count, so the daemon's cache memory is a real
	// budget instead of a function of graph sizes (<= 0 selects 64 MiB).
	CacheBytes int64
	// JobParallelism is the Workers/EvalWorkers width each computation runs
	// with (<= 0 divides GOMAXPROCS evenly across the pool). It never
	// affects results, only speed.
	JobParallelism int
	// JobHistory bounds how many jobs remain pollable via GetJob (<= 0
	// selects 4096). Submitting past the bound forgets the oldest finished
	// jobs — without this a long-running daemon's job table (and the result
	// slices it pins) would grow with total request count.
	JobHistory int
	// MaxQueue bounds how many computations may wait for a worker (<= 0
	// selects 256). Every queued entry pins its parsed graph, so an
	// unbounded queue would let async submissions grow memory without
	// limit; past the bound Submit fails fast with an overloaded error
	// (backpressure) instead of accepting work it cannot hold.
	MaxQueue int
}

// ErrOverloaded is returned (wrapped) by Submit when the computation queue
// is full; the HTTP layer maps it to 429.
var ErrOverloaded = fmt.Errorf("service: computation queue is full")

// ErrNoJob is returned (wrapped) by WaitJob for unknown or
// history-evicted job ids; the HTTP layer maps it to 404.
var ErrNoJob = fmt.Errorf("service: no such job")

// State is a job's lifecycle position.
type State string

const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Result is a completed partition with the quality metrics the benchmark
// suite reports.
type Result struct {
	Assign      []uint16 `json:"assign"`
	Parts       int      `json:"parts"`
	Cut         float64  `json:"cut"`
	MaxPartCut  float64  `json:"max_part_cut"`
	CommVolume  float64  `json:"comm_volume"`
	ImbalanceSq float64  `json:"imbalance_sq"`
	Balance     float64  `json:"balance"`
	// ComputeNS is the wall time of the computation that produced this
	// result. Cache hits share the producing run's Result, so they carry
	// its original compute time — the job's own cost for a hit is ~0.
	ComputeNS int64 `json:"compute_ns"`
}

// JobInfo is an immutable snapshot of a job.
type JobInfo struct {
	ID      string  `json:"id"`
	State   State   `json:"state"`
	Algo    string  `json:"algo"`
	Parts   int     `json:"parts"`
	Seed    int64   `json:"seed"`
	Key     string  `json:"key"`    // content-addressed cache key
	Cached  bool    `json:"cached"` // served by the cache or coalesced onto an in-flight computation
	Error   string  `json:"error,omitempty"`
	Created int64   `json:"created_unix_ms"`
	Result  *Result `json:"result,omitempty"`
}

// Stats are the engine's instrumentation counters.
type Stats struct {
	Workers            int    `json:"workers"`
	JobsSubmitted      uint64 `json:"jobs_submitted"`
	JobsQueued         int    `json:"jobs_queued"`
	JobsRunning        int    `json:"jobs_running"`
	JobsDone           uint64 `json:"jobs_done"`
	JobsFailed         uint64 `json:"jobs_failed"`
	CacheHits          uint64 `json:"cache_hits"`      // completed-result hits
	Coalesced          uint64 `json:"coalesced"`       // joined an identical in-flight computation
	CacheMisses        uint64 `json:"cache_misses"`    // requests that had to compute
	CacheEvictions     uint64 `json:"cache_evictions"` // LRU evictions
	CacheEntries       int    `json:"cache_entries"`
	CacheBytes         int64  `json:"cache_bytes"`          // payload bytes currently retained
	CacheCapacityBytes int64  `json:"cache_capacity_bytes"` // the configured budget
}

// RequestError is a caller mistake (unknown algorithm, constraint
// violation, invalid part count) as opposed to an internal failure; the
// HTTP layer maps it to a structured 4xx response.
type RequestError struct {
	Code    string // stable machine-readable code
	Message string
}

func (e *RequestError) Error() string { return e.Message }

func reqErr(code, format string, args ...any) *RequestError {
	return &RequestError{Code: code, Message: fmt.Sprintf(format, args...)}
}

// entry is one distinct computation, shared by every job with the same key.
type entry struct {
	key     string
	algo    string
	opts    algo.Options // normalized; execution widths applied at run time
	graph   *graph.Graph // released once the computation finishes
	state   State
	result  *Result
	err     error
	done    chan struct{} // closed on completion, for waiters
	execNum int           // worker slot, for debugging
}

// job is one submitted request; many jobs may share one entry.
type job struct {
	id      string
	created time.Time
	cached  bool
	entry   *entry
}

// Engine is the job engine. Create with New, stop with Close.
type Engine struct {
	cfg Config

	mu       sync.Mutex
	cond     *sync.Cond // queue became non-empty, or the engine closed
	queue    []*entry   // FIFO of entries awaiting a worker
	jobs     map[string]*job
	jobOrder []string // job ids in creation order, for history eviction
	inflight map[string]*entry
	cache    *lruCache
	seq      uint64
	running  int
	closed   bool
	wg       sync.WaitGroup

	jobsSubmitted, jobsDone, jobsFailed uint64
	hits, coalesced, misses, evictions  uint64
}

// New starts an Engine with cfg's worker pool.
func New(cfg Config) *Engine {
	cfg.Workers = par.Workers(cfg.Workers)
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 64 << 20
	}
	if cfg.JobHistory <= 0 {
		cfg.JobHistory = 4096
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 256
	}
	if cfg.JobParallelism <= 0 {
		cfg.JobParallelism = par.Workers(0) / cfg.Workers
		if cfg.JobParallelism < 1 {
			cfg.JobParallelism = 1
		}
	}
	e := &Engine{
		cfg:      cfg,
		jobs:     make(map[string]*job),
		inflight: make(map[string]*entry),
		cache:    newLRU(cfg.CacheBytes),
	}
	e.cond = sync.NewCond(&e.mu)
	e.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go e.worker(i)
	}
	return e
}

// Submit validates a request against the registry's declared constraints and
// either answers it from the cache, attaches it to an identical in-flight
// computation, or queues a new computation. It returns the job's snapshot;
// poll GetJob or block on WaitJob for completion.
func (e *Engine) Submit(g *graph.Graph, algoName string, opts algo.Options) (JobInfo, error) {
	_, info, err := e.submit(g, algoName, opts)
	return info, err
}

// SubmitWait submits like Submit and blocks until the job completes or ctx
// is cancelled. It holds the job reference across the wait, so the result
// is delivered even if a burst of other submissions evicts the job from
// the pollable history meanwhile.
func (e *Engine) SubmitWait(ctx context.Context, g *graph.Graph, algoName string, opts algo.Options) (JobInfo, error) {
	j, info, err := e.submit(g, algoName, opts)
	if err != nil {
		return info, err
	}
	select {
	case <-j.entry.done:
	case <-ctx.Done():
		return JobInfo{}, ctx.Err()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.snapshotLocked(j), nil
}

func (e *Engine) submit(g *graph.Graph, algoName string, opts algo.Options) (*job, JobInfo, error) {
	p, err := algo.Get(algoName)
	if err != nil {
		return nil, JobInfo{}, reqErr("unknown_algo", "unknown algorithm %q (see /v1/algos; available: %v)", algoName, algo.Names())
	}
	if opts.Parts < 1 {
		return nil, JobInfo{}, reqErr("bad_parts", "parts must be >= 1, got %d", opts.Parts)
	}
	if opts.Parts > g.NumNodes() {
		return nil, JobInfo{}, reqErr("bad_parts", "parts %d exceeds the graph's %d nodes", opts.Parts, g.NumNodes())
	}
	// Partition assignments are uint16 repo-wide; a larger part count would
	// silently wrap part ids instead of failing.
	if opts.Parts > 1<<16 {
		return nil, JobInfo{}, reqErr("bad_parts", "parts %d exceeds the supported maximum %d", opts.Parts, 1<<16)
	}
	info := p.Info()
	if info.NeedsCoords && !g.HasCoords() {
		return nil, JobInfo{}, reqErr("needs_coords", "algorithm %q requires a geometric embedding and the input format carries none", algoName)
	}
	if info.PowerOfTwoParts && opts.Parts&(opts.Parts-1) != 0 {
		return nil, JobInfo{}, reqErr("parts_not_power_of_two", "algorithm %q requires a power-of-two part count, got %d", algoName, opts.Parts)
	}
	if !info.SupportsObjective(opts.Objective) {
		return nil, JobInfo{}, reqErr("unsupported_objective", "algorithm %q does not support objective %q (see /v1/algos)", algoName, opts.Objective.FlagName())
	}

	opts = normalizeOptions(opts)
	key := cacheKey(g, algoName, opts)

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, JobInfo{}, fmt.Errorf("service: engine is shut down")
	}
	newJob := func() *job {
		e.jobsSubmitted++
		e.seq++
		j := &job{id: fmt.Sprintf("j%08d", e.seq), created: time.Now()}
		e.jobs[j.id] = j
		e.jobOrder = append(e.jobOrder, j.id)
		e.evictJobHistoryLocked()
		return j
	}

	if ent, ok := e.cache.get(key); ok {
		e.hits++
		j := newJob()
		j.cached = true
		j.entry = ent
		return j, e.snapshotLocked(j), nil
	}
	if ent, ok := e.inflight[key]; ok {
		e.coalesced++
		j := newJob()
		j.cached = true
		j.entry = ent
		return j, e.snapshotLocked(j), nil
	}
	// A new computation needs a queue slot; every queued entry pins its
	// parsed graph, so refuse (backpressure) rather than queue without
	// bound. Checked before the job record is created: an overloaded
	// request leaves no trace.
	if len(e.queue) >= e.cfg.MaxQueue {
		return nil, JobInfo{}, fmt.Errorf("%w (%d computations waiting); retry later", ErrOverloaded, len(e.queue))
	}
	e.misses++
	ent := &entry{
		key:   key,
		algo:  algoName,
		opts:  opts,
		graph: g,
		state: StateQueued,
		done:  make(chan struct{}),
	}
	j := newJob()
	j.entry = ent
	e.inflight[key] = ent
	e.queue = append(e.queue, ent)
	e.cond.Signal()
	return j, e.snapshotLocked(j), nil
}

// evictJobHistoryLocked forgets the oldest finished jobs beyond the history
// bound. Queued and running jobs are never evicted (clients are still
// waiting on them), so under a backlog deeper than the bound the table
// temporarily exceeds it — memory there is already bounded by the queue
// itself. e.mu must be held.
func (e *Engine) evictJobHistoryLocked() {
	for len(e.jobs) > e.cfg.JobHistory && len(e.jobOrder) > 0 {
		id := e.jobOrder[0]
		j, ok := e.jobs[id]
		if ok && j.entry.state != StateDone && j.entry.state != StateFailed {
			return // oldest job still active; nothing older to free
		}
		e.jobOrder = e.jobOrder[1:]
		delete(e.jobs, id)
	}
}

// GetJob returns a job snapshot. Jobs older than Config.JobHistory finished
// submissions are forgotten and report not-found.
func (e *Engine) GetJob(id string) (JobInfo, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	if !ok {
		return JobInfo{}, false
	}
	return e.snapshotLocked(j), true
}

// WaitJob blocks until the job completes (done or failed) or ctx is
// cancelled, and returns the final snapshot. The job reference is resolved
// once up front, so history eviction during the wait cannot lose the
// result. Unknown ids fail with an error wrapping ErrNoJob.
func (e *Engine) WaitJob(ctx context.Context, id string) (JobInfo, error) {
	e.mu.Lock()
	j, ok := e.jobs[id]
	e.mu.Unlock()
	if !ok {
		return JobInfo{}, fmt.Errorf("%w: %q", ErrNoJob, id)
	}
	select {
	case <-j.entry.done:
	case <-ctx.Done():
		return JobInfo{}, ctx.Err()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.snapshotLocked(j), nil
}

// Workers returns the resolved worker-pool width.
func (e *Engine) Workers() int { return e.cfg.Workers }

// Stats returns the current counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Stats{
		Workers:            e.cfg.Workers,
		JobsSubmitted:      e.jobsSubmitted,
		JobsQueued:         len(e.queue),
		JobsRunning:        e.running,
		JobsDone:           e.jobsDone,
		JobsFailed:         e.jobsFailed,
		CacheHits:          e.hits,
		Coalesced:          e.coalesced,
		CacheMisses:        e.misses,
		CacheEvictions:     e.evictions,
		CacheEntries:       e.cache.len(),
		CacheBytes:         e.cache.sizeBytes(),
		CacheCapacityBytes: e.cfg.CacheBytes,
	}
}

// Close stops the engine: queued-but-unstarted computations fail with a
// shutdown error, running ones are allowed to finish, and the worker pool
// drains before Close returns. Submit after Close is an error.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.wg.Wait()
		return
	}
	e.closed = true
	for _, ent := range e.queue {
		ent.state = StateFailed
		ent.err = fmt.Errorf("service: engine shut down before the job ran")
		ent.graph = nil
		delete(e.inflight, ent.key)
		e.jobsFailed++
		close(ent.done)
	}
	e.queue = nil
	e.cond.Broadcast()
	e.mu.Unlock()
	e.wg.Wait()
}

// worker is one pool goroutine: pop, compute, publish, repeat.
func (e *Engine) worker(slot int) {
	defer e.wg.Done()
	for {
		e.mu.Lock()
		for len(e.queue) == 0 && !e.closed {
			e.cond.Wait()
		}
		if len(e.queue) == 0 && e.closed {
			e.mu.Unlock()
			return
		}
		ent := e.queue[0]
		e.queue = e.queue[1:]
		ent.state = StateRunning
		ent.execNum = slot
		e.running++
		e.mu.Unlock()

		res, err := e.compute(ent)

		e.mu.Lock()
		e.running--
		delete(e.inflight, ent.key)
		if err != nil {
			ent.state = StateFailed
			ent.err = err
			e.jobsFailed++
		} else {
			ent.state = StateDone
			ent.result = res
			e.jobsDone++
			e.evictions += uint64(e.cache.add(ent.key, ent))
		}
		ent.graph = nil // the CSR arrays are the bulk of a job's footprint
		close(ent.done)
		e.mu.Unlock()
	}
}

// compute runs the actual partitioner. A panicking algorithm must not take
// the daemon down, so panics become failed jobs.
func (e *Engine) compute(ent *entry) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("service: %s panicked: %v\n%s", ent.algo, r, debug.Stack())
		}
	}()
	opts := ent.opts
	opts.Workers = e.cfg.JobParallelism
	opts.EvalWorkers = e.cfg.JobParallelism
	g := ent.graph
	start := time.Now()
	p, err := algo.Run(g, ent.algo, opts)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	if err := p.Validate(g); err != nil {
		return nil, fmt.Errorf("service: %s returned an invalid partition: %w", ent.algo, err)
	}
	res = &Result{
		Assign:      p.Assign,
		Parts:       p.Parts,
		Cut:         p.CutSize(g),
		MaxPartCut:  p.MaxPartCut(g),
		CommVolume:  p.CommVolume(g),
		ImbalanceSq: p.ImbalanceSq(g),
		ComputeNS:   elapsed.Nanoseconds(),
	}
	ideal := g.TotalNodeWeight() / float64(p.Parts)
	var maxW float64
	for _, w := range p.PartWeights(g) {
		if w > maxW {
			maxW = w
		}
	}
	if ideal > 0 {
		res.Balance = maxW / ideal
	}
	return res, nil
}

// snapshotLocked assembles a JobInfo; e.mu must be held.
func (e *Engine) snapshotLocked(j *job) JobInfo {
	ent := j.entry
	info := JobInfo{
		ID:      j.id,
		State:   ent.state,
		Algo:    ent.algo,
		Parts:   ent.opts.Parts,
		Seed:    ent.opts.Seed,
		Key:     ent.key,
		Cached:  j.cached,
		Created: j.created.UnixMilli(),
	}
	if ent.err != nil {
		info.Error = ent.err.Error()
	}
	if ent.state == StateDone {
		info.Result = ent.result
	}
	return info
}

// normalizeOptions canonicalizes the fields that may not influence the
// result: Workers and EvalWorkers are pure speed knobs (the internal/par
// bit-identity contract), so they are zeroed out of the cache key and
// replaced by the engine's own execution width.
func normalizeOptions(o algo.Options) algo.Options {
	o.Workers = 0
	o.EvalWorkers = 0
	return o
}
