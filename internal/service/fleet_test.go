package service_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/ring"
	"repro/internal/service"
)

// --- binary codec ---

func roundTrip(t *testing.T, g *graph.Graph) *graph.Graph {
	t.Helper()
	var buf bytes.Buffer
	if err := service.WriteGraphBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := service.ReadGraphBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

// The binary codec must be hash-faithful: that is its entire reason to exist.
func TestGraphBinaryRoundTripHashIdentity(t *testing.T) {
	for _, g := range []*graph.Graph{
		gen.Mesh(500, 23),                        // coordinates present
		gen.SkewWeights(gen.Mesh(300, 5), 7, 10), // non-uniform weights
		gen.Grid(8, 9),
	} {
		back := roundTrip(t, g)
		if got, want := service.GraphHash(back), service.GraphHash(g); got != want {
			t.Fatalf("round trip changed content hash: %s -> %s", want, got)
		}
		if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape: %d/%d -> %d/%d",
				g.NumNodes(), g.NumEdges(), back.NumNodes(), back.NumEdges())
		}
		if back.HasCoords() != g.HasCoords() {
			t.Fatal("round trip changed coords presence")
		}
	}
}

func TestGraphBinaryRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := service.WriteGraphBinary(&buf, gen.Grid(4, 4)); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for name, mutate := range map[string]func([]byte) []byte{
		"bad magic":  func(b []byte) []byte { c := append([]byte(nil), b...); c[0] = 'X'; return c },
		"truncated":  func(b []byte) []byte { return b[:len(b)-3] },
		"trailing":   func(b []byte) []byte { return append(append([]byte(nil), b...), 0) },
		"node count": func(b []byte) []byte { c := append([]byte(nil), b...); c[4] = 0xff; return c },
	} {
		if _, err := service.ReadGraphBinary(bytes.NewReader(mutate(good))); err == nil {
			t.Errorf("%s: decoder accepted corrupt payload", name)
		}
	}
}

// --- auth ---

func authedJSON(t *testing.T, token, method, url string, hdr map[string]string, body any) (int, []byte) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out.Bytes()
}

func TestAuthRequiredAndHealthzExempt(t *testing.T) {
	auth, err := service.NewAuth(map[string]string{"tok-alice": "alice"})
	if err != nil {
		t.Fatal(err)
	}
	ts, _ := newTestServerOpts(t, service.Config{Workers: 1}, service.WithAuth(auth))

	// No token and a wrong token are both structured 401s.
	for _, tok := range []string{"", "tok-wrong"} {
		status, data := authedJSON(t, tok, http.MethodGet, ts.URL+"/v1/stats", nil, nil)
		if status != http.StatusUnauthorized {
			t.Fatalf("token %q: status %d, want 401: %s", tok, status, data)
		}
		if code := decodeErrorCode(t, data); code != "unauthorized" {
			t.Fatalf("token %q: error code %q", tok, code)
		}
	}

	// The right token works.
	if status, data := authedJSON(t, "tok-alice", http.MethodGet, ts.URL+"/v1/stats", nil, nil); status != http.StatusOK {
		t.Fatalf("authenticated stats: status %d: %s", status, data)
	}

	// Health stays open: the router probes it without credentials.
	if status, _ := authedJSON(t, "", http.MethodGet, ts.URL+"/v1/healthz", nil, nil); status != http.StatusOK {
		t.Fatalf("healthz with no token: status %d", status)
	}
}

// With auth on, quota identity comes from the token: a client cannot dodge
// its bucket by claiming a different X-Client.
func TestAuthBindsQuotaIdentity(t *testing.T) {
	auth, err := service.NewAuth(map[string]string{"tok-alice": "alice"})
	if err != nil {
		t.Fatal(err)
	}
	// Burst of 2 with a negligible refill: the third mutating request loses.
	ts, _ := newTestServerOpts(t, service.Config{Workers: 1},
		service.WithAuth(auth), service.WithQuota(service.NewQuota(0.001, 2)))

	body := map[string]any{"format": "metis", "graph": metisPayload(t, 60)}
	lie := map[string]string{"X-Client": "bob"} // ignored: identity follows the token
	for i := 0; i < 2; i++ {
		if status, data := authedJSON(t, "tok-alice", http.MethodPut, ts.URL+"/v1/graphs", lie, body); status >= 300 {
			t.Fatalf("request %d: status %d: %s", i, status, data)
		}
	}
	status, data := authedJSON(t, "tok-alice", http.MethodPut, ts.URL+"/v1/graphs", lie, body)
	if status != http.StatusTooManyRequests {
		t.Fatalf("third request: status %d, want 429: %s", status, data)
	}
	st := getStatsAuthed(t, ts.URL, "tok-alice")
	if st.Quota == nil {
		t.Fatal("stats carry no quota block")
	}
	if _, ok := st.Quota.Clients["bob"]; ok {
		t.Fatal("quota accounted the self-reported X-Client, not the token identity")
	}
	if c, ok := st.Quota.Clients["alice"]; !ok || c.Throttled == 0 {
		t.Fatalf("quota for alice: %+v (ok=%v), want throttled > 0", c, ok)
	}
}

func getStatsAuthed(t *testing.T, url, token string) service.StatsResponse {
	t.Helper()
	status, data := authedJSON(t, token, http.MethodGet, url+"/v1/stats", nil, nil)
	if status != http.StatusOK {
		t.Fatalf("stats status %d: %s", status, data)
	}
	var s service.StatsResponse
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLoadAuthFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tokens")
	content := "# fleet tokens\n\ntok-alice alice\n  tok-bob\tbob\n"
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	a, err := service.LoadAuthFile(path)
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodGet, "/", nil)
	req.Header.Set("Authorization", "Bearer tok-bob")
	if name, ok := a.Identify(req); !ok || name != "bob" {
		t.Fatalf("Identify = %q, %v", name, ok)
	}
	for name, bad := range map[string]string{
		"three fields": "tok alice extra\n",
		"dup token":    "tok alice\ntok bob\n",
		"empty":        "# nothing here\n",
	} {
		if err := os.WriteFile(path, []byte(bad), 0o600); err != nil {
			t.Fatal(err)
		}
		if _, err := service.LoadAuthFile(path); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// --- peer fetch ---

func hostPort(t *testing.T, tsURL string) string {
	t.Helper()
	return strings.TrimPrefix(tsURL, "http://")
}

// Shard B receives a job for a graph only shard A holds. With a PeerFetcher
// configured, B pulls the graph from A (over A's authenticated surface),
// stores it, and completes the job — the lazy rebalance, end to end.
func TestPeerFetchCompletesForeignJob(t *testing.T) {
	auth, err := service.NewAuth(map[string]string{"tok-fleet": "fleet"})
	if err != nil {
		t.Fatal(err)
	}
	tsA, _ := newTestServerOpts(t, service.Config{Workers: 1}, service.WithAuth(auth))

	payload := metisPayload(t, 120)
	status, data := authedJSON(t, "tok-fleet", http.MethodPut, tsA.URL+"/v1/graphs", nil,
		map[string]any{"format": "metis", "graph": payload})
	if status != http.StatusCreated {
		t.Fatalf("upload to A: status %d: %s", status, data)
	}
	var put service.GraphPutResponse
	if err := json.Unmarshal(data, &put); err != nil {
		t.Fatal(err)
	}

	members := []ring.Member{
		{Name: "a", Addr: hostPort(t, tsA.URL)},
		{Name: "b", Addr: "127.0.0.1:1"}, // self: never dialed
	}
	peers, err := service.NewPeerFetcher(members, "b", "tok-fleet")
	if err != nil {
		t.Fatal(err)
	}
	tsB, _ := newTestServerOpts(t, service.Config{Workers: 1}, service.WithPeers(peers))

	status, data = doJSON(t, http.MethodPost, tsB.URL+"/v1/jobs?wait=1", service.BatchRequest{
		Graph: put.Hash,
		Specs: []service.JobSpec{{Algo: "kl", Parts: 2}},
	})
	if status != http.StatusOK {
		t.Fatalf("job on B for A's graph: status %d: %s", status, data)
	}
	var batch service.BatchResponse
	if err := json.Unmarshal(data, &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Jobs) != 1 || batch.Jobs[0].State != service.StateDone {
		t.Fatalf("job did not complete: %s", data)
	}

	// B now holds the graph (stats prove the pull), so a second job is local.
	st := getStats(t, tsB.URL)
	if st.Peer == nil || st.Peer.Fetches != 1 {
		t.Fatalf("peer stats after fetch: %+v", st.Peer)
	}
	if st.Store.Graphs != 1 {
		t.Fatalf("B stores %d graphs, want 1", st.Store.Graphs)
	}
	status, data = doJSON(t, http.MethodPost, tsB.URL+"/v1/jobs?wait=1", service.BatchRequest{
		Graph: put.Hash,
		Specs: []service.JobSpec{{Algo: "kl", Parts: 2, Seed: 1}},
	})
	if status != http.StatusOK {
		t.Fatalf("second job on B: status %d: %s", status, data)
	}
	if st := getStats(t, tsB.URL); st.Peer.Fetches != 1 {
		t.Fatalf("second job refetched: %+v", st.Peer)
	}
}

// A peer that serves the wrong bytes must be refused by the hash check, and
// the job must fail graph_not_found rather than run on the wrong graph.
func TestPeerFetchRejectsHashMismatch(t *testing.T) {
	evil := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-partd-graph")
		_ = service.WriteGraphBinary(w, gen.Grid(3, 3)) // not the requested graph
	}))
	t.Cleanup(evil.Close)

	members := []ring.Member{
		{Name: "a", Addr: hostPort(t, evil.URL)},
		{Name: "b", Addr: "127.0.0.1:1"},
	}
	peers, err := service.NewPeerFetcher(members, "b", "")
	if err != nil {
		t.Fatal(err)
	}
	tsB, _ := newTestServerOpts(t, service.Config{Workers: 1}, service.WithPeers(peers))

	wanted := service.GraphHash(gen.Mesh(80, 3))
	status, data := doJSON(t, http.MethodPost, tsB.URL+"/v1/jobs", service.BatchRequest{
		Graph: wanted,
		Specs: []service.JobSpec{{Algo: "kl", Parts: 2}},
	})
	if status != http.StatusNotFound {
		t.Fatalf("status %d, want 404: %s", status, data)
	}
	if code := decodeErrorCode(t, data); code != "graph_not_found" {
		t.Fatalf("error code %q", code)
	}
	if st := getStats(t, tsB.URL); st.Store.Graphs != 0 {
		t.Fatal("mismatched graph was stored")
	}
}

// GET /v1/graphs/{hash}?export=bin round-trips through the real endpoint.
func TestGraphExportBinEndpoint(t *testing.T) {
	ts, _ := newTestServerOpts(t, service.Config{Workers: 1})
	payload := metisPayload(t, 90)
	status, data := doJSON(t, http.MethodPut, ts.URL+"/v1/graphs",
		map[string]any{"format": "metis", "graph": payload})
	if status != http.StatusCreated {
		t.Fatalf("upload: status %d: %s", status, data)
	}
	var put service.GraphPutResponse
	if err := json.Unmarshal(data, &put); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/graphs/" + put.Hash + "?export=bin")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-partd-graph" {
		t.Fatalf("content type %q", ct)
	}
	g, err := service.ReadGraphBinary(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if got := service.GraphHash(g); got != put.Hash {
		t.Fatalf("exported graph hashes to %s, want %s", got, put.Hash)
	}
	// Unknown export names are a structured 400.
	status, data = doJSON(t, http.MethodGet, ts.URL+"/v1/graphs/"+put.Hash+"?export=tar", nil)
	if status != http.StatusBadRequest || decodeErrorCode(t, data) != "bad_export" {
		t.Fatalf("bad export: status %d: %s", status, data)
	}
}
