package service

import "container/list"

// lruCache maps cache keys to completed entries with least-recently-used
// eviction, bounded by the total payload bytes it retains rather than an
// entry count: one 100k-node partition pins ~200 KB while a 50-node one pins
// a few hundred bytes, so a count bound would make the daemon's memory a
// function of its workload mix. It is not self-locking: the Engine
// serializes access under its own mutex, which also keeps the hit/eviction
// counters exact.
type lruCache struct {
	maxBytes int64
	bytes    int64
	order    *list.List // front = most recently used; values are *lruItem
	items    map[string]*list.Element
}

type lruItem struct {
	key  string
	ent  *entry
	size int64
}

// lruEntryOverhead approximates the per-entry bookkeeping beyond the result
// payload: the entry/Result structs, the duplicated key (map key + item),
// the list element, and map slot overhead.
const lruEntryOverhead = 256

// entryBytes is the payload-size accounting of one completed entry: the
// assignment vector dominates (2 bytes per node), plus the key and the fixed
// structural overhead.
func entryBytes(key string, ent *entry) int64 {
	var payload int64
	if ent.result != nil {
		payload = 2 * int64(len(ent.result.Assign))
	}
	return payload + 2*int64(len(key)) + lruEntryOverhead
}

func newLRU(maxBytes int64) *lruCache {
	return &lruCache{
		maxBytes: maxBytes,
		order:    list.New(),
		items:    make(map[string]*list.Element),
	}
}

// get returns the entry under key, refreshing its recency.
func (c *lruCache) get(key string) (*entry, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruItem).ent, true
}

// add inserts a completed entry and evicts from the LRU end until the byte
// budget holds again, returning how many entries were evicted. The newest
// entry itself is never evicted: a single result larger than the whole
// budget is retained alone (and evicted by the next insert), so oversized
// results stay cacheable instead of thrashing. The key is never already
// present: the engine's inflight map admits one computation per key at a
// time, and completion moves the entry from inflight to the cache atomically
// under the engine mutex.
func (c *lruCache) add(key string, ent *entry) (evicted int) {
	size := entryBytes(key, ent)
	c.items[key] = c.order.PushFront(&lruItem{key: key, ent: ent, size: size})
	c.bytes += size
	for c.bytes > c.maxBytes && c.order.Len() > 1 {
		oldest := c.order.Back()
		item := oldest.Value.(*lruItem)
		c.order.Remove(oldest)
		delete(c.items, item.key)
		c.bytes -= item.size
		evicted++
	}
	return evicted
}

func (c *lruCache) len() int { return c.order.Len() }

func (c *lruCache) sizeBytes() int64 { return c.bytes }
