package service

import "container/list"

// lruCache maps cache keys to completed entries with least-recently-used
// eviction. It is not self-locking: the Engine serializes access under its
// own mutex, which also keeps the hit/eviction counters exact.
type lruCache struct {
	capacity int
	order    *list.List // front = most recently used; values are *lruItem
	items    map[string]*list.Element
}

type lruItem struct {
	key string
	ent *entry
}

func newLRU(capacity int) *lruCache {
	return &lruCache{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[string]*list.Element, capacity),
	}
}

// get returns the entry under key, refreshing its recency.
func (c *lruCache) get(key string) (*entry, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruItem).ent, true
}

// add inserts a completed entry, reporting whether an older one was
// evicted. The key is never already present: the engine's inflight map
// admits one computation per key at a time, and completion moves the entry
// from inflight to the cache atomically under the engine mutex.
func (c *lruCache) add(key string, ent *entry) (evicted bool) {
	c.items[key] = c.order.PushFront(&lruItem{key: key, ent: ent})
	if c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruItem).key)
		return true
	}
	return false
}

func (c *lruCache) len() int { return c.order.Len() }
