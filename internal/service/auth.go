package service

import (
	"bufio"
	"crypto/subtle"
	"fmt"
	"net/http"
	"os"
	"strings"
)

// Auth is partd's static bearer-token authentication: a fixed map of token →
// client name loaded at boot (-tokens FILE). When configured, every request
// except GET /v1/healthz must carry "Authorization: Bearer <token>"; a
// missing or unknown token is refused with a structured 401. The client name
// bound to the token replaces the cooperative X-Client header as the quota
// identity, so per-client admission control stops being honor-system: a
// client cannot dodge its bucket by renaming itself.
//
// Static tokens in a file are deliberately the whole mechanism — the module
// is zero-dependency, and rotating a token is editing a line and restarting
// (or running multiple tokens per client name during the transition, which
// the map shape permits).
type Auth struct {
	entries []authEntry
}

type authEntry struct {
	token, name string
}

// NewAuth builds an authenticator over a token → client-name map.
func NewAuth(tokens map[string]string) (*Auth, error) {
	a := &Auth{}
	for tok, name := range tokens {
		if err := a.add(tok, name); err != nil {
			return nil, err
		}
	}
	if len(a.entries) == 0 {
		return nil, fmt.Errorf("service: auth configured with no tokens")
	}
	return a, nil
}

func (a *Auth) add(token, name string) error {
	if token == "" || name == "" {
		return fmt.Errorf("service: auth entry with empty token or client name")
	}
	for _, e := range a.entries {
		if e.token == token {
			return fmt.Errorf("service: duplicate auth token (maps to both %q and %q)", e.name, name)
		}
	}
	a.entries = append(a.entries, authEntry{token: token, name: name})
	return nil
}

// LoadAuthFile reads a token file: one "<token> <client-name>" pair per
// line, whitespace-separated; blank lines and #-comments are ignored.
func LoadAuthFile(path string) (*Auth, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("service: opening token file: %w", err)
	}
	defer f.Close()
	a := &Auth{}
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("service: %s:%d: want \"<token> <client-name>\", got %d fields", path, line, len(fields))
		}
		if err := a.add(fields[0], fields[1]); err != nil {
			return nil, fmt.Errorf("service: %s:%d: %w", path, line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("service: reading token file: %w", err)
	}
	if len(a.entries) == 0 {
		return nil, fmt.Errorf("service: token file %s holds no tokens", path)
	}
	return a, nil
}

// Identify extracts and verifies the request's bearer token, returning the
// client name bound to it. The scan is linear with constant-time compares:
// token files are small, and the lookup must not leak which prefix of a
// guessed token matched.
func (a *Auth) Identify(r *http.Request) (string, bool) {
	const scheme = "Bearer "
	h := r.Header.Get("Authorization")
	if len(h) <= len(scheme) || !strings.EqualFold(h[:len(scheme)], scheme) {
		return "", false
	}
	tok := strings.TrimSpace(h[len(scheme):])
	name, found := "", false
	for _, e := range a.entries {
		if subtle.ConstantTimeCompare([]byte(e.token), []byte(tok)) == 1 {
			name, found = e.name, true
		}
	}
	return name, found
}
