package service_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/algo"
	"repro/internal/gen"
	"repro/internal/gio"
	"repro/internal/service"
)

func TestGraphStoreDedupAndCounters(t *testing.T) {
	s := service.NewGraphStore(0)
	g := gen.Mesh(200, 5)

	sg, existed := s.Put(g)
	if existed {
		t.Fatal("first Put reported existed")
	}
	if !strings.HasPrefix(sg.Hash, "sha256:") || len(sg.Hash) != len("sha256:")+64 {
		t.Fatalf("malformed hash %q", sg.Hash)
	}
	if sg.Nodes != 200 || sg.Graph == nil {
		t.Fatalf("stored graph %+v", sg)
	}

	// The same content parsed independently deduplicates onto the same copy.
	again, existed := s.Put(gen.Mesh(200, 5))
	if !existed || again != sg {
		t.Fatal("identical graph did not dedup onto the stored copy")
	}

	got, ok := s.Get(sg.Hash)
	if !ok || got != sg {
		t.Fatal("Get by hash missed")
	}
	if _, ok := s.Get("sha256:" + strings.Repeat("0", 64)); ok {
		t.Fatal("Get of unknown hash hit")
	}

	st := s.Stats()
	if st.Graphs != 1 || st.Puts != 2 || st.Dedups != 1 || st.Hashes != 2 ||
		st.Gets != 1 || st.Misses != 1 || st.Parses != 0 {
		t.Errorf("counters: %+v", st)
	}
}

func TestGraphStoreParseAndPutCountsParses(t *testing.T) {
	s := service.NewGraphStore(0)
	var sb strings.Builder
	if err := gio.WriteMETIS(&sb, gen.Mesh(100, 1)); err != nil {
		t.Fatal(err)
	}
	sg, existed, err := s.ParseAndPut(gio.FormatMETIS, strings.NewReader(sb.String()))
	if err != nil || existed {
		t.Fatalf("sg=%v existed=%v err=%v", sg, existed, err)
	}
	if _, existed, _ := s.ParseAndPut(gio.FormatMETIS, strings.NewReader(sb.String())); !existed {
		t.Fatal("re-upload did not dedup")
	}
	st := s.Stats()
	if st.Parses != 2 || st.Hashes != 2 || st.Graphs != 1 {
		t.Errorf("counters: %+v", st)
	}
	if _, _, err := s.ParseAndPut(gio.FormatMETIS, strings.NewReader("not metis\n")); err == nil {
		t.Fatal("malformed payload stored")
	}
}

// The store is byte-bounded with LRU eviction; a Get refreshes recency.
func TestGraphStoreLRUEviction(t *testing.T) {
	// Actual resident footprint of one 100-node mesh (coords included):
	// offsets + both CSR directions + node weights + embedding.
	small := gen.Mesh(100, 1)
	one := 4*int64(101) + 2*int64(small.NumEdges())*(4+8) + 8*100 + 16*100
	s := service.NewGraphStore(2*one + one/2) // fits exactly two of these

	a, _ := s.Put(gen.Mesh(100, 1))
	b, _ := s.Put(gen.Mesh(100, 2))
	s.Get(a.Hash)                   // refresh a: b is now LRU
	c, _ := s.Put(gen.Mesh(100, 3)) // third graph: must evict b

	if _, ok := s.Get(a.Hash); !ok {
		t.Error("recently used graph evicted before the LRU one")
	}
	if _, ok := s.Get(b.Hash); ok {
		t.Error("LRU graph survived past the byte budget")
	}
	if _, ok := s.Get(c.Hash); !ok {
		t.Error("just-stored graph evicted")
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Errorf("no evictions recorded: %+v", st)
	}
	if st.Bytes > st.CapacityBytes {
		t.Errorf("store holds %d bytes over the %d budget", st.Bytes, st.CapacityBytes)
	}
}

func TestJobLogPersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	l, restored, err := service.OpenJobLog(path, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != 0 {
		t.Fatalf("fresh log restored %d records", len(restored))
	}
	l.Append(service.JobInfo{
		ID: "j00000001", State: service.StateDone, Algo: "kl", Parts: 2, Key: "k1",
		Result: &service.Result{Assign: []uint16{0, 1, 0}, Parts: 2, Cut: 3},
	})
	l.Append(service.JobInfo{ID: "j00000002", State: service.StateCancelled, Algo: "fm", Error: "cancelled"})
	l.Append(service.JobInfo{ID: "j00000003", State: service.StateFailed, Algo: "fm", Error: "boom"})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, restored, err := service.OpenJobLog(path, 100)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(restored) != 3 {
		t.Fatalf("restored %d records, want 3", len(restored))
	}
	if restored[0].ID != "j00000001" || restored[0].State != service.StateDone {
		t.Errorf("record 0: %+v", restored[0])
	}
	// Assignment vectors are stripped before persisting; metrics survive.
	if restored[0].Result == nil || restored[0].Result.Assign != nil || restored[0].Result.Cut != 3 {
		t.Errorf("record 0 result: %+v", restored[0].Result)
	}
	if restored[1].State != service.StateCancelled || restored[2].Error != "boom" {
		t.Errorf("records: %+v / %+v", restored[1], restored[2])
	}
}

// The log is bounded: it compacts at twice the bound while running and trims
// to the bound on reopen; a torn final line is skipped, not fatal.
func TestJobLogBoundedAndCrashTolerant(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	l, _, err := service.OpenJobLog(path, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 35; i++ {
		l.Append(service.JobInfo{ID: "j" + strings.Repeat("0", 7) + string(rune('a'+i%26)), State: service.StateDone})
	}
	l.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(data), "\n"); lines >= 20 {
		t.Errorf("log holds %d lines, want < 2x bound (20)", lines)
	}

	// Simulate a torn final write.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"id":"j-torn","state":"do`)
	f.Close()

	_, restored, err := service.OpenJobLog(path, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) > 10 {
		t.Errorf("restored %d records past the bound", len(restored))
	}
	for _, r := range restored {
		if r.ID == "j-torn" {
			t.Error("torn record restored")
		}
	}
}

// An engine wired to a job log persists terminal jobs, and a successor
// engine restored from it keeps answering GetJob for them.
func TestEngineJobLogRestore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	l, restored, err := service.OpenJobLog(path, 100)
	if err != nil {
		t.Fatal(err)
	}
	e := service.New(service.Config{Workers: 1, Log: l, Restore: restored})
	g := testGraph(t)
	info, err := e.Submit(g, "kl", algo.Options{Parts: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	done := waitDone(t, e, info.ID)
	e.Close()
	l.Close()

	l2, restored2, err := service.OpenJobLog(path, 100)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	e2 := service.New(service.Config{Workers: 1, Log: l2, Restore: restored2})
	defer e2.Close()
	got, ok := e2.GetJob(done.ID)
	if !ok {
		t.Fatalf("job %s lost across restart", done.ID)
	}
	if got.State != service.StateDone || got.Key != done.Key || got.Algo != "kl" {
		t.Errorf("restored job %+v", got)
	}
	if got.Result == nil || got.Result.Cut != done.Result.Cut || got.Result.Assign != nil {
		t.Errorf("restored result %+v", got.Result)
	}
	// New ids continue past the restored sequence — no collisions.
	next, err := e2.Submit(g, "kl", algo.Options{Parts: 2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if next.ID <= done.ID {
		t.Errorf("new id %s does not advance past restored %s", next.ID, done.ID)
	}
}
