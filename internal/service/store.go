package service

import (
	"container/list"
	"io"
	"sync"

	"repro/internal/gio"
	"repro/internal/graph"
)

// GraphStore is the daemon's content-addressed graph store: the data plane
// of the v2 API. Clients PUT a serialized graph once, the store parses it
// into CSR and addresses it by the SHA-256 of its canonical content
// ("sha256:<hex>"), and every subsequent job references the stored CSR by
// hash — no re-upload, no re-parse, no re-hash. Identical graphs (byte-wise
// different encodings included: the hash covers the parsed content, not the
// wire text) deduplicate onto one stored copy.
//
// The store is bounded by the approximate CSR bytes it retains, with LRU
// eviction — a Get or a dedup refreshes recency. Eviction never invalidates
// running jobs (they hold the *graph.Graph), only future by-hash lookups,
// which fail with a structured graph_not_found so the client re-uploads.
//
// The Parses/Hashes counters exist so tests (and operators) can assert the
// upload-once contract: one PUT followed by an N-spec batch is exactly one
// parse and one content hash, not N.
type GraphStore struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	order    *list.List // front = most recently used; values are *StoredGraph
	items    map[string]*list.Element

	puts, dedups, parses, hashes, gets, misses, evictions uint64
}

// StoredGraph is one stored, parsed graph and its content address.
type StoredGraph struct {
	Hash  string `json:"hash"`
	Nodes int    `json:"nodes"`
	Edges int    `json:"edges"`

	Graph *graph.Graph `json:"-"`
	bytes int64
}

// StoreStats are the store's instrumentation counters.
type StoreStats struct {
	Graphs        int    `json:"graphs"`
	Bytes         int64  `json:"bytes"`
	CapacityBytes int64  `json:"capacity_bytes"`
	Puts          uint64 `json:"puts"`   // graphs offered (ParseAndPut/Put calls)
	Dedups        uint64 `json:"dedups"` // offered graphs already present
	Parses        uint64 `json:"parses"` // wire payloads parsed into CSR
	Hashes        uint64 `json:"hashes"` // content hashes computed
	Gets          uint64 `json:"gets"`   // by-hash lookups served
	Misses        uint64 `json:"misses"` // by-hash lookups that failed (unknown or evicted)
	Evictions     uint64 `json:"evictions"`
}

// NewGraphStore builds a store bounded by maxBytes of approximate CSR
// payload (<= 0 selects 256 MiB).
func NewGraphStore(maxBytes int64) *GraphStore {
	if maxBytes <= 0 {
		maxBytes = 256 << 20
	}
	return &GraphStore{
		maxBytes: maxBytes,
		order:    list.New(),
		items:    make(map[string]*list.Element),
	}
}

// graphBytes approximates a graph's resident CSR footprint: offsets,
// adjacency and edge weights (both directions of every undirected edge),
// node weights, and the optional embedding.
func graphBytes(g *graph.Graph) int64 {
	n, m := int64(g.NumNodes()), int64(g.NumEdges())
	b := 4*(n+1) + 2*m*(4+8) + 8*n
	if g.HasCoords() {
		b += 16 * n
	}
	return b
}

// ParseAndPut parses one wire payload into CSR (counted: this is the parse
// the upload-once contract says happens exactly once per distinct graph
// upload) and stores it. It reports whether the graph was already present.
func (s *GraphStore) ParseAndPut(f gio.Format, r io.Reader) (*StoredGraph, bool, error) {
	s.mu.Lock()
	s.parses++
	s.mu.Unlock()
	g, err := gio.ReadGraph(f, r)
	if err != nil {
		return nil, false, err
	}
	sg, existed := s.Put(g)
	return sg, existed, nil
}

// Put stores an already-parsed graph under its content address, deduplicating
// by hash: offering a graph that is already stored refreshes its recency and
// returns the existing copy (existed = true), discarding g.
func (s *GraphStore) Put(g *graph.Graph) (*StoredGraph, bool) {
	s.mu.Lock()
	s.hashes++
	s.mu.Unlock()
	hash := GraphHash(g) // outside the lock: hashing is O(V+E)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.puts++
	if el, ok := s.items[hash]; ok {
		s.dedups++
		s.order.MoveToFront(el)
		return el.Value.(*StoredGraph), true
	}
	sg := &StoredGraph{
		Hash:  hash,
		Nodes: g.NumNodes(),
		Edges: g.NumEdges(),
		Graph: g,
		bytes: graphBytes(g),
	}
	s.items[hash] = s.order.PushFront(sg)
	s.bytes += sg.bytes
	// Evict from the LRU end until the budget holds, but never the graph
	// just stored: an oversized graph is retained alone (and evicted by the
	// next Put) instead of being unstorable.
	for s.bytes > s.maxBytes && s.order.Len() > 1 {
		oldest := s.order.Back()
		old := oldest.Value.(*StoredGraph)
		s.order.Remove(oldest)
		delete(s.items, old.Hash)
		s.bytes -= old.bytes
		s.evictions++
	}
	return sg, false
}

// Get returns the stored graph addressed by hash, refreshing its recency.
func (s *GraphStore) Get(hash string) (*StoredGraph, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[hash]
	if !ok {
		s.misses++
		return nil, false
	}
	s.gets++
	s.order.MoveToFront(el)
	return el.Value.(*StoredGraph), true
}

// Stats returns the current counters.
func (s *GraphStore) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		Graphs:        s.order.Len(),
		Bytes:         s.bytes,
		CapacityBytes: s.maxBytes,
		Puts:          s.puts,
		Dedups:        s.dedups,
		Parses:        s.parses,
		Hashes:        s.hashes,
		Gets:          s.gets,
		Misses:        s.misses,
		Evictions:     s.evictions,
	}
}

// validateGraphRef checks the wire shape of a graph reference ("sha256:"
// plus 64 hex digits) before any store lookup, so typos fail with a clear
// bad_graph_ref rather than a misleading not-found.
func validateGraphRef(ref string) *RequestError {
	const prefix = "sha256:"
	if len(ref) != len(prefix)+64 || ref[:len(prefix)] != prefix {
		return reqErr("bad_graph_ref", "graph reference %q is not of the form sha256:<64 hex digits> (as returned by PUT /v1/graphs)", ref)
	}
	for _, c := range ref[len(prefix):] {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return reqErr("bad_graph_ref", "graph reference %q is not of the form sha256:<64 hex digits> (as returned by PUT /v1/graphs)", ref)
		}
	}
	return nil
}
