package anneal

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/partition"
)

func TestPartitionBasics(t *testing.T) {
	g := gen.PaperGraph(78)
	p, err := Partition(g, Config{Parts: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	// Annealing must be far better than random.
	rng := rand.New(rand.NewSource(2))
	rnd := partition.RandomBalanced(g.NumNodes(), 4, rng)
	if p.Fitness(g, partition.TotalCut) <= rnd.Fitness(g, partition.TotalCut) {
		t.Errorf("annealed fitness %v not better than random %v",
			p.Fitness(g, partition.TotalCut), rnd.Fitness(g, partition.TotalCut))
	}
}

func TestPartitionErrors(t *testing.T) {
	g := gen.Mesh(20, 1)
	if _, err := Partition(g, Config{Parts: 0}); err == nil {
		t.Error("0 parts accepted")
	}
	start := partition.New(20, 4)
	if _, err := Improve(g, start, Config{Parts: 2}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("mismatched parts accepted")
	}
}

func TestImproveNeverWorseThanStart(t *testing.T) {
	g := gen.PaperGraph(98)
	rng := rand.New(rand.NewSource(3))
	start := partition.RandomBalanced(g.NumNodes(), 4, rng)
	got, err := Improve(g, start, Config{Parts: 4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fitness(g, partition.TotalCut) < start.Fitness(g, partition.TotalCut) {
		t.Error("annealing returned worse than its start")
	}
	// Start must be unmodified.
	if !start.Balanced() {
		t.Error("start partition was mutated")
	}
}

func TestWorstCutObjective(t *testing.T) {
	g := gen.PaperGraph(78)
	p, err := Partition(g, Config{Parts: 4, Objective: partition.WorstCut, Seed: 5,
		Cooling: 0.9}) // faster schedule for the test
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	rnd := partition.RandomBalanced(g.NumNodes(), 4, rng)
	if p.MaxPartCut(g) >= rnd.MaxPartCut(g) {
		t.Errorf("annealed worst cut %v not better than random %v",
			p.MaxPartCut(g), rnd.MaxPartCut(g))
	}
}

func TestDeterministicForSeed(t *testing.T) {
	g := gen.Mesh(50, 7)
	a, err := Partition(g, Config{Parts: 4, Seed: 9, Cooling: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition(g, Config{Parts: 4, Seed: 9, Cooling: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Assign {
		if a.Assign[v] != b.Assign[v] {
			t.Fatal("same seed, different results")
		}
	}
}

func TestMoveDeltaMatchesFullEvaluation(t *testing.T) {
	g := gen.Mesh(40, 11)
	rng := rand.New(rand.NewSource(13))
	p := partition.RandomBalanced(40, 4, rng)
	for trial := 0; trial < 200; trial++ {
		v := rng.Intn(40)
		to := rng.Intn(4)
		if int(p.Assign[v]) == to {
			continue
		}
		before := p.Fitness(g, partition.TotalCut)
		want := func() float64 {
			from := p.Assign[v]
			p.Assign[v] = uint16(to)
			after := p.Fitness(g, partition.TotalCut)
			p.Assign[v] = from
			return after - before
		}()
		got := moveDelta(g, p, partition.TotalCut, v, to)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: moveDelta = %v, full evaluation = %v", trial, got, want)
		}
		// Occasionally accept the move so we test from varied states.
		if trial%3 == 0 {
			p.Assign[v] = uint16(to)
		}
	}
}

func TestCalibrateTempPositive(t *testing.T) {
	g := gen.Mesh(60, 15)
	rng := rand.New(rand.NewSource(17))
	p := partition.RandomBalanced(60, 4, rng)
	temp := calibrateTemp(g, p, Config{Parts: 4}, rng)
	if temp <= 0 || math.IsInf(temp, 0) || math.IsNaN(temp) {
		t.Errorf("calibrated temp = %v", temp)
	}
}

// Property: annealing output is always a valid partition and at least as fit
// as a fresh random baseline with the same seed.
func TestQuickAnnealSane(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 12 + rng.Intn(50)
		g := gen.Mesh(n, seed)
		parts := 2 + rng.Intn(4)
		p, err := Partition(g, Config{Parts: parts, Seed: seed, Cooling: 0.85})
		if err != nil {
			return false
		}
		return p.Validate(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
