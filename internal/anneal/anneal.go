// Package anneal implements a simulated-annealing graph partitioner — the
// other major "physical optimization" heuristic of the paper's era (cf.
// Johnson et al. 1989; Mansour 1992, cited by the paper). It optimizes the
// same Fitness 1/Fitness 2 objectives as the GA, so the two stochastic
// methods are directly comparable in the ablation benchmarks.
//
// The move set is single-node reassignment (the same neighborhood as the
// GA's hill climber), the cooling schedule is geometric, and fitness deltas
// are evaluated incrementally in O(deg(v)) per proposal.
package anneal

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/partition"
)

// Config parameterizes an annealing run. Zero values select defaults tuned
// for the paper's graph sizes.
type Config struct {
	Parts     int
	Objective partition.Objective

	InitialTemp float64 // default: set so ~60% of uphill moves accepted
	FinalTemp   float64 // default 0.05
	Cooling     float64 // geometric factor per sweep; default 0.95
	SweepsPerT  int     // node-sweeps per temperature; default 4

	Seed int64
}

func (c *Config) withDefaults(n int) Config {
	out := *c
	if out.FinalTemp == 0 {
		out.FinalTemp = 0.05
	}
	if out.Cooling == 0 {
		out.Cooling = 0.95
	}
	if out.SweepsPerT == 0 {
		out.SweepsPerT = 4
	}
	return out
}

// Partition anneals a random balanced partition of g and returns the best
// solution encountered.
func Partition(g *graph.Graph, cfg Config) (*partition.Partition, error) {
	if cfg.Parts <= 0 {
		return nil, fmt.Errorf("anneal: invalid part count %d", cfg.Parts)
	}
	n := g.NumNodes()
	c := cfg.withDefaults(n)
	rng := rand.New(rand.NewSource(c.Seed))
	cur := partition.RandomBalanced(n, c.Parts, rng)
	if n == 0 {
		return cur, nil
	}
	return Improve(g, cur, c, rng)
}

// Improve anneals from a given starting partition (which is not modified)
// and returns the best solution encountered. Exposed so annealing can also
// act as a refinement stage.
func Improve(g *graph.Graph, start *partition.Partition, cfg Config, rng *rand.Rand) (*partition.Partition, error) {
	n := g.NumNodes()
	c := cfg.withDefaults(n)
	if c.Parts == 0 {
		c.Parts = start.Parts
	}
	if c.Parts != start.Parts {
		return nil, fmt.Errorf("anneal: config parts %d != partition parts %d", c.Parts, start.Parts)
	}
	cur := start.Clone()
	curFit := cur.Fitness(g, c.Objective)
	best := cur.Clone()
	bestFit := curFit

	temp := c.InitialTemp
	if temp <= 0 {
		temp = calibrateTemp(g, cur, c, rng)
	}
	for ; temp > c.FinalTemp; temp *= c.Cooling {
		for sweep := 0; sweep < c.SweepsPerT; sweep++ {
			for trial := 0; trial < n; trial++ {
				v := rng.Intn(n)
				from := int(cur.Assign[v])
				to := rng.Intn(c.Parts)
				if to == from {
					continue
				}
				delta := moveDelta(g, cur, c.Objective, v, to)
				if delta >= 0 || rng.Float64() < math.Exp(delta/temp) {
					cur.Assign[v] = uint16(to)
					curFit += delta
					if curFit > bestFit {
						// Deltas accumulate float error; refresh exactly.
						curFit = cur.Fitness(g, c.Objective)
						if curFit > bestFit {
							bestFit = curFit
							best = cur.Clone()
						}
					}
				}
			}
		}
	}
	return best, nil
}

// calibrateTemp samples random uphill moves and picks a temperature at
// which ~60% of them would be accepted.
func calibrateTemp(g *graph.Graph, p *partition.Partition, c Config, rng *rand.Rand) float64 {
	n := g.NumNodes()
	var uphill []float64
	for trial := 0; trial < 200 && len(uphill) < 50; trial++ {
		v := rng.Intn(n)
		to := rng.Intn(c.Parts)
		if int(p.Assign[v]) == to {
			continue
		}
		if d := moveDelta(g, p, c.Objective, v, to); d < 0 {
			uphill = append(uphill, -d)
		}
	}
	if len(uphill) == 0 {
		return 1
	}
	var mean float64
	for _, d := range uphill {
		mean += d
	}
	mean /= float64(len(uphill))
	// exp(-mean/T) = 0.6  =>  T = mean / ln(1/0.6)
	return mean / math.Log(1/0.6)
}

// moveDelta returns fitness(after) - fitness(before) for moving v to part
// `to`, in O(deg(v)) for TotalCut. WorstCut needs the global max, which is
// recomputed from per-part cuts in O(E) only when v's move could change it;
// for the paper's graph sizes a direct evaluation is still cheap, so we
// fall back to it for clarity.
func moveDelta(g *graph.Graph, p *partition.Partition, o partition.Objective, v, to int) float64 {
	from := int(p.Assign[v])
	if from == to {
		return 0
	}
	if o == partition.WorstCut {
		before := p.Fitness(g, o)
		p.Assign[v] = uint16(to)
		after := p.Fitness(g, o)
		p.Assign[v] = uint16(from)
		return after - before
	}
	// TotalCut: cut delta is (edges to `from`) - (edges to `to`), doubled
	// because Fitness 1 counts each cut edge twice.
	var wFrom, wTo float64
	ws := g.EdgeWeights(v)
	for i, u := range g.Neighbors(v) {
		switch int(p.Assign[u]) {
		case from:
			wFrom += ws[i]
		case to:
			wTo += ws[i]
		}
	}
	cutDelta := 2 * (wFrom - wTo) // positive = cut grows

	// Imbalance delta: only parts from/to change.
	weights := p.PartWeights(g)
	avg := g.TotalNodeWeight() / float64(p.Parts)
	wv := g.NodeWeight(v)
	before := sq(weights[from]-avg) + sq(weights[to]-avg)
	after := sq(weights[from]-wv-avg) + sq(weights[to]+wv-avg)
	imbDelta := after - before

	return -(imbDelta + cutDelta)
}

func sq(x float64) float64 { return x * x }
