package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
)

func TestAnalyzeOnKnownDecomposition(t *testing.T) {
	// 4x4 grid split into two 4x2 halves by column: cut = 4, each part has
	// one neighbor, boundary = 4 nodes of 8 per part.
	g := gen.Grid(4, 4)
	p := partition.New(16, 2)
	for v := 0; v < 16; v++ {
		if v%4 >= 2 {
			p.Assign[v] = 1
		}
	}
	r, err := Analyze(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cut != 4 {
		t.Errorf("Cut = %v, want 4", r.Cut)
	}
	if r.WorstHalo != 4 || r.TotalHalo != 8 {
		t.Errorf("halo = %v/%v, want 4/8", r.WorstHalo, r.TotalHalo)
	}
	if r.LoadRatio != 1 {
		t.Errorf("LoadRatio = %v, want 1", r.LoadRatio)
	}
	if r.MaxNeighbors != 1 {
		t.Errorf("MaxNeighbors = %v, want 1", r.MaxNeighbors)
	}
	for q, sv := range r.SurfaceToVolume {
		if sv != 0.5 {
			t.Errorf("SurfaceToVolume[%d] = %v, want 0.5", q, sv)
		}
	}
}

func TestAnalyzeRejectsInvalid(t *testing.T) {
	g := gen.Mesh(10, 1)
	if _, err := Analyze(g, partition.New(5, 2)); err == nil {
		t.Error("mismatched partition accepted")
	}
}

func TestMigration(t *testing.T) {
	g := gen.Mesh(20, 2)
	a := partition.New(20, 2)
	b := a.Clone()
	if n, w := Migration(g, a, b); n != 0 || w != 0 {
		t.Errorf("identical partitions: %d moved, %v weight", n, w)
	}
	b.Assign[3] = 1
	b.Assign[7] = 1
	if n, _ := Migration(g, a, b); n != 2 {
		t.Errorf("moved = %d, want 2", n)
	}
	// Grown graph: new nodes count as moved.
	rng := rand.New(rand.NewSource(1))
	grown := gen.Refine(g, 5, rng)
	ext := partition.ExtendMajorityNeighbor(a, grown)
	n, _ := Migration(grown, a, ext)
	if n != 5 {
		t.Errorf("grown migration = %d, want 5 (the new nodes)", n)
	}
}

func TestFormatAndCompare(t *testing.T) {
	g := gen.PaperGraph(78)
	rng := rand.New(rand.NewSource(3))
	pa := partition.RandomBalanced(78, 4, rng)
	pb := partition.RandomBalanced(78, 4, rng)
	ra, err := Analyze(g, pa)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Analyze(g, pb)
	if err != nil {
		t.Fatal(err)
	}
	out := ra.Format()
	if !strings.Contains(out, "load-ratio") || !strings.Contains(out, "surf/vol") {
		t.Errorf("Format missing columns:\n%s", out)
	}
	cmp := Compare("A", ra, "B", rb)
	if !strings.Contains(cmp, "cut:") || !strings.Contains(cmp, "load-ratio:") {
		t.Errorf("Compare output malformed: %s", cmp)
	}
	// Self-comparison is all ties.
	self := Compare("A", ra, "B", ra)
	if strings.Count(self, "tie") != 3 {
		t.Errorf("self comparison not all ties: %s", self)
	}
}

func TestWeightedLoads(t *testing.T) {
	b := graph.NewBuilder(3)
	b.SetNodeWeight(0, 4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	g := b.Build()
	p := partition.New(3, 2)
	p.Assign[0] = 1 // part 1 holds the weight-4 node; part 0 holds 2 units
	r, err := Analyze(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.ComputeLoad[1] != 4 || r.ComputeLoad[0] != 2 {
		t.Errorf("loads = %v", r.ComputeLoad)
	}
	want := 4 / ((4.0 + 2.0) / 2)
	if math.Abs(r.LoadRatio-want) > 1e-12 {
		t.Errorf("LoadRatio = %v, want %v", r.LoadRatio, want)
	}
}

// Property: TotalHalo == 2*Cut; Neighbors[q] < parts; LoadRatio >= 1.
func TestQuickReportInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(60)
		g := gen.Mesh(n, seed)
		parts := 2 + rng.Intn(6)
		p := partition.Random(n, parts, rng)
		r, err := Analyze(g, p)
		if err != nil {
			return false
		}
		if math.Abs(r.TotalHalo-2*r.Cut) > 1e-9 {
			return false
		}
		if r.LoadRatio < 1-1e-12 {
			return false
		}
		for _, nb := range r.Neighbors {
			if nb >= parts {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
