// Package metrics computes the decomposition-quality numbers a parallel
// solver actually experiences: per-processor halo (communication) volumes,
// neighbor counts (message counts), surface-to-volume ratios, and data
// migration cost between successive partitions. These translate the
// abstract cut/imbalance objectives of the paper into the quantities its
// introduction motivates ("the computational load on each node is roughly
// the same, while inter-processor communication is minimized").
package metrics

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/internal/partition"
)

// Report summarizes one decomposition.
type Report struct {
	Parts int

	// ComputeLoad[q] is the node weight assigned to part q; MaxLoad/AvgLoad
	// is the load-balance ratio (1.0 = perfect).
	ComputeLoad []float64
	LoadRatio   float64

	// HaloSend[q] is the edge weight leaving part q — the data volume q
	// ships per halo exchange. TotalHalo counts each cut edge twice (both
	// directions are sent); Cut counts it once.
	HaloSend  []float64
	TotalHalo float64
	Cut       float64
	WorstHalo float64

	// Neighbors[q] is the number of distinct parts q communicates with —
	// the number of messages per exchange under one-message-per-neighbor.
	Neighbors    []int
	MaxNeighbors int

	// SurfaceToVolume[q] is boundary nodes of q / nodes of q: low values
	// indicate compact, well-shaped parts.
	SurfaceToVolume []float64
}

// Analyze computes the Report for partition p of graph g.
func Analyze(g *graph.Graph, p *partition.Partition) (*Report, error) {
	if err := p.Validate(g); err != nil {
		return nil, fmt.Errorf("metrics: %w", err)
	}
	r := &Report{Parts: p.Parts}
	r.ComputeLoad = p.PartWeights(g)
	var maxLoad, totLoad float64
	for _, w := range r.ComputeLoad {
		totLoad += w
		if w > maxLoad {
			maxLoad = w
		}
	}
	if totLoad > 0 {
		r.LoadRatio = maxLoad / (totLoad / float64(p.Parts))
	}

	r.HaloSend = p.PartCuts(g)
	for _, h := range r.HaloSend {
		r.TotalHalo += h
		if h > r.WorstHalo {
			r.WorstHalo = h
		}
	}
	r.Cut = r.TotalHalo / 2

	nbrSets := make([]map[int]bool, p.Parts)
	for q := range nbrSets {
		nbrSets[q] = make(map[int]bool)
	}
	g.Edges(func(u, v int, w float64) bool {
		qu, qv := int(p.Assign[u]), int(p.Assign[v])
		if qu != qv {
			nbrSets[qu][qv] = true
			nbrSets[qv][qu] = true
		}
		return true
	})
	r.Neighbors = make([]int, p.Parts)
	for q, s := range nbrSets {
		r.Neighbors[q] = len(s)
		if len(s) > r.MaxNeighbors {
			r.MaxNeighbors = len(s)
		}
	}

	sizes := p.PartSizes()
	boundary := make([]int, p.Parts)
	for _, v := range p.BoundaryNodes(g) {
		boundary[p.Assign[v]]++
	}
	r.SurfaceToVolume = make([]float64, p.Parts)
	for q := range r.SurfaceToVolume {
		if sizes[q] > 0 {
			r.SurfaceToVolume[q] = float64(boundary[q]) / float64(sizes[q])
		}
	}
	return r, nil
}

// Migration quantifies the cost of switching from partition old to new on
// the same (or grown) graph: the node weight that must move between
// processors. New nodes (beyond old's length) are counted as moved — they
// must be placed somewhere.
func Migration(g *graph.Graph, old, new *partition.Partition) (movedNodes int, movedWeight float64) {
	n := g.NumNodes()
	for v := 0; v < n; v++ {
		moved := v >= len(old.Assign)
		if !moved && v < len(new.Assign) && old.Assign[v] != new.Assign[v] {
			moved = true
		}
		if moved {
			movedNodes++
			movedWeight += g.NodeWeight(v)
		}
	}
	return movedNodes, movedWeight
}

// Format renders the report as aligned text.
func (r *Report) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "parts=%d  cut=%.0f  worst-halo=%.0f  load-ratio=%.3f  max-neighbors=%d\n",
		r.Parts, r.Cut, r.WorstHalo, r.LoadRatio, r.MaxNeighbors)
	fmt.Fprintf(&sb, "%4s %10s %10s %6s %8s\n", "part", "load", "halo", "nbrs", "surf/vol")
	for q := 0; q < r.Parts; q++ {
		fmt.Fprintf(&sb, "%4d %10.1f %10.1f %6d %8.3f\n",
			q, r.ComputeLoad[q], r.HaloSend[q], r.Neighbors[q], r.SurfaceToVolume[q])
	}
	return sb.String()
}

// Compare returns a one-line textual verdict between two reports of the
// same graph/parts: which has lower cut, worst halo, and load ratio.
func Compare(nameA string, a *Report, nameB string, b *Report) string {
	verdict := func(metric string, va, vb float64, lowerBetter bool) string {
		if va == vb {
			return fmt.Sprintf("%s: tie (%.2f)", metric, va)
		}
		winner := nameA
		if (vb < va) == lowerBetter {
			winner = nameB
		}
		return fmt.Sprintf("%s: %s (%.2f vs %.2f)", metric, winner, va, vb)
	}
	parts := []string{
		verdict("cut", a.Cut, b.Cut, true),
		verdict("worst-halo", a.WorstHalo, b.WorstHalo, true),
		verdict("load-ratio", a.LoadRatio, b.LoadRatio, true),
	}
	sort.Strings(parts)
	return strings.Join(parts, "; ")
}
