// Package spectral implements Recursive Spectral Bisection (RSB), the graph
// partitioning baseline the paper compares against throughout (Pothen, Simon
// & Liou 1990; Simon 1991).
//
// RSB bisects a graph by the sign structure of the Fiedler vector — the
// eigenvector of the graph Laplacian's second-smallest eigenvalue — splitting
// at the median component so the two halves are balanced, then recurses to
// obtain 2^d parts.
package spectral

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
	"repro/internal/linalg"
	"repro/internal/partition"
)

// laplacianOp is the sparse graph Laplacian L = D − A as a linalg.MatVec
// operator, so Lanczos never materializes a dense matrix.
type laplacianOp struct {
	g *graph.Graph
}

func (l laplacianOp) Dim() int { return l.g.NumNodes() }

func (l laplacianOp) Apply(dst, x []float64) {
	for v := 0; v < l.g.NumNodes(); v++ {
		nbrs := l.g.Neighbors(v)
		ws := l.g.EdgeWeights(v)
		var deg, acc float64
		for i, u := range nbrs {
			deg += ws[i]
			acc += ws[i] * x[u]
		}
		dst[v] = deg*x[v] - acc
	}
}

// DenseLaplacian materializes L = D − A. Exposed for tests and for the dense
// eigensolver path.
func DenseLaplacian(g *graph.Graph) *linalg.SymDense {
	n := g.NumNodes()
	m := linalg.NewSymDense(n)
	g.Edges(func(u, v int, w float64) bool {
		m.Set(u, v, -w)
		m.Set(u, u, m.At(u, u)+w)
		m.Set(v, v, m.At(v, v)+w)
		return true
	})
	return m
}

// denseThreshold selects the eigensolver: at or below it, the dense Jacobi
// path is used (simple and exact); above it, sparse Lanczos.
const denseThreshold = 400

// Fiedler returns the Fiedler vector of g: the eigenvector of the second-
// smallest Laplacian eigenvalue. The graph must be connected (otherwise the
// second eigenvalue is 0 and the vector is a component indicator, useless
// for bisection); it returns an error if not.
func Fiedler(g *graph.Graph, rng *rand.Rand) ([]float64, error) {
	return FiedlerIter(g, rng, 0)
}

// FiedlerIter is Fiedler with an explicit Lanczos iteration budget: maxIter
// caps the Krylov dimension of the sparse solve (0 selects the solver
// default, currently 40). Full reorthogonalization makes each solve cost
// O(maxIter² · n), so the budget is what bounds spectral bisection's wall
// time on large graphs — a smaller budget trades Fiedler accuracy (and so
// split quality) for a hard runtime cap. The dense path below denseThreshold
// is exact and ignores the budget.
func FiedlerIter(g *graph.Graph, rng *rand.Rand, maxIter int) ([]float64, error) {
	n := g.NumNodes()
	if n < 2 {
		return nil, fmt.Errorf("spectral: graph too small (n=%d)", n)
	}
	if !g.IsConnected() {
		return nil, fmt.Errorf("spectral: graph disconnected; Fiedler vector undefined")
	}
	if n <= denseThreshold {
		vals, V, err := linalg.JacobiEigen(DenseLaplacian(g))
		if err != nil {
			return nil, err
		}
		_ = vals
		out := make([]float64, n)
		for i := 0; i < n; i++ {
			out[i] = V[i*n+1] // column 1 = second-smallest
		}
		return out, nil
	}
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	_, V, err := linalg.Lanczos(laplacianOp{g}, 1, rng, [][]float64{ones}, maxIter)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = V[i]
	}
	return out, nil
}

// Bisect splits g into two balanced halves by the median of the Fiedler
// vector. It returns the side (0 or 1) of each node. Ties at the median are
// broken by node index so the split is always ⌈n/2⌉/⌊n/2⌋.
func Bisect(g *graph.Graph, rng *rand.Rand) ([]int, error) {
	return BisectIter(g, rng, 0)
}

// BisectIter is Bisect with an explicit Lanczos iteration budget (see
// FiedlerIter; 0 selects the default).
func BisectIter(g *graph.Graph, rng *rand.Rand, maxIter int) ([]int, error) {
	n := g.NumNodes()
	if n == 1 {
		return []int{0}, nil
	}
	f, err := FiedlerIter(g, rng, maxIter)
	if err != nil {
		return nil, err
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return f[idx[a]] < f[idx[b]] })
	side := make([]int, n)
	half := (n + 1) / 2
	for rank, v := range idx {
		if rank >= half {
			side[v] = 1
		}
	}
	return side, nil
}

// Partition runs recursive spectral bisection, splitting g into parts parts.
// parts must be a power of two (RSB is inherently a bisection method; the
// paper compares against 2, 4, and 8 parts). Disconnected subgraphs that
// arise during recursion are handled by separating components before
// bisecting.
func Partition(g *graph.Graph, parts int, rng *rand.Rand) (*partition.Partition, error) {
	return PartitionIter(g, parts, rng, 0)
}

// PartitionIter is Partition with an explicit Lanczos iteration budget
// applied to every bisection level (see FiedlerIter; 0 selects the default).
// The budget is what makes RSB's runtime on large graphs a predictable
// O(levels · maxIter² · n) instead of an accuracy-chasing unknown, and is
// exposed through algo.Options.LanczosIter.
func PartitionIter(g *graph.Graph, parts int, rng *rand.Rand, lanczosIter int) (*partition.Partition, error) {
	if parts <= 0 || parts&(parts-1) != 0 {
		return nil, fmt.Errorf("spectral: parts must be a power of two, got %d", parts)
	}
	p := partition.New(g.NumNodes(), parts)
	nodes := make([]int, g.NumNodes())
	for i := range nodes {
		nodes[i] = i
	}
	if err := recurse(g, nodes, 0, parts, p, rng, lanczosIter); err != nil {
		return nil, err
	}
	return p, nil
}

// recurse assigns the given nodes to parts [base, base+span).
func recurse(g *graph.Graph, nodes []int, base, span int, p *partition.Partition, rng *rand.Rand, lanczosIter int) error {
	if span == 1 {
		for _, v := range nodes {
			p.Assign[v] = uint16(base)
		}
		return nil
	}
	if len(nodes) == 0 {
		return nil
	}
	sub, orig := g.InducedSubgraph(nodes)
	side, err := bisectAny(sub, rng, lanczosIter)
	if err != nil {
		return fmt.Errorf("spectral: bisecting %d nodes: %w", len(nodes), err)
	}
	var left, right []int
	for i, s := range side {
		if s == 0 {
			left = append(left, orig[i])
		} else {
			right = append(right, orig[i])
		}
	}
	if err := recurse(g, left, base, span/2, p, rng, lanczosIter); err != nil {
		return err
	}
	return recurse(g, right, base+span/2, span/2, p, rng, lanczosIter)
}

// bisectAny bisects a possibly-disconnected graph into two balanced sides.
// Connected graphs go straight to the spectral split. Disconnected ones are
// handled by iterative split-and-repack: whole components are bin-packed
// largest-first (cheapest cut: zero edges); while the packing is more than
// one node out of balance, the largest splittable item on the heavy side is
// divided (spectrally if connected, into its components otherwise) and the
// packing is redone. Item count grows strictly each round, so the loop
// terminates — in the worst case with single-node items, which pack to
// within one node.
func bisectAny(g *graph.Graph, rng *rand.Rand, lanczosIter int) ([]int, error) {
	n := g.NumNodes()
	if n == 1 {
		return []int{0}, nil
	}
	comp, count := g.Components()
	if count == 1 {
		return BisectIter(g, rng, lanczosIter)
	}
	items := make([][]int, count)
	for v, c := range comp {
		items[c] = append(items[c], v)
	}
	side := make([]int, n)
	for {
		// Greedy largest-first packing into the lighter side.
		sort.SliceStable(items, func(a, b int) bool { return len(items[a]) > len(items[b]) })
		var w [2]int
		itemSide := make([]int, len(items))
		for i, it := range items {
			s := 0
			if w[1] < w[0] {
				s = 1
			}
			itemSide[i] = s
			w[s] += len(it)
		}
		imbalance := w[0] - w[1]
		if imbalance < 0 {
			imbalance = -imbalance
		}
		if imbalance <= 1 {
			for i, it := range items {
				for _, v := range it {
					side[v] = itemSide[i]
				}
			}
			return side, nil
		}
		// Split the largest item (>= 2 nodes) on the heavy side.
		heavy := 0
		if w[1] > w[0] {
			heavy = 1
		}
		pick := -1
		for i := range items {
			if itemSide[i] == heavy && len(items[i]) >= 2 {
				pick = i
				break // items are sorted descending: first match is largest
			}
		}
		if pick < 0 {
			// Heavy side is all singletons; greedy packing of singletons is
			// already within 1, so this cannot happen — but never loop.
			for i, it := range items {
				for _, v := range it {
					side[v] = itemSide[i]
				}
			}
			return side, nil
		}
		sub, orig := g.InducedSubgraph(items[pick])
		var newItems [][]int
		if sub.IsConnected() {
			inner, err := BisectIter(sub, rng, lanczosIter)
			if err != nil {
				return nil, err
			}
			halves := [2][]int{}
			for i, s := range inner {
				halves[s] = append(halves[s], orig[i])
			}
			newItems = halves[:]
		} else {
			subComp, subCount := sub.Components()
			newItems = make([][]int, subCount)
			for i, c := range subComp {
				newItems[c] = append(newItems[c], orig[i])
			}
		}
		items[pick] = items[len(items)-1]
		items = items[:len(items)-1]
		items = append(items, newItems...)
	}
}
