package spectral

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/linalg"
)

func TestDenseLaplacianRowSumsZero(t *testing.T) {
	g := gen.Mesh(40, 1)
	L := DenseLaplacian(g)
	for i := 0; i < L.N; i++ {
		var s float64
		for j := 0; j < L.N; j++ {
			s += L.At(i, j)
		}
		if math.Abs(s) > 1e-12 {
			t.Fatalf("row %d sums to %v", i, s)
		}
	}
}

func TestLaplacianOpMatchesDense(t *testing.T) {
	g := gen.Mesh(35, 2)
	L := DenseLaplacian(g)
	op := laplacianOp{g}
	rng := rand.New(rand.NewSource(3))
	x := make([]float64, g.NumNodes())
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	d1 := make([]float64, len(x))
	d2 := make([]float64, len(x))
	L.MulVec(d1, x)
	op.Apply(d2, x)
	for i := range d1 {
		if math.Abs(d1[i]-d2[i]) > 1e-10 {
			t.Fatalf("sparse/dense Laplacian disagree at %d: %v vs %v", i, d1[i], d2[i])
		}
	}
}

func TestFiedlerPathSplitsInHalf(t *testing.T) {
	// On a path, the Fiedler vector is monotone: one half positive, one
	// negative, so Bisect must cut the path in the middle (cut = 1).
	b := graph.NewBuilder(10)
	for i := 0; i+1 < 10; i++ {
		b.AddEdge(i, i+1, 1)
	}
	g := b.Build()
	rng := rand.New(rand.NewSource(1))
	side, err := Bisect(g, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Sides contiguous: side changes exactly once along the path.
	changes := 0
	for i := 1; i < 10; i++ {
		if side[i] != side[i-1] {
			changes++
		}
	}
	if changes != 1 {
		t.Errorf("path bisection cut %d edges, want 1 (sides %v)", changes, side)
	}
	var count [2]int
	for _, s := range side {
		count[s]++
	}
	if count[0] != 5 || count[1] != 5 {
		t.Errorf("unbalanced bisection %v", count)
	}
}

func TestFiedlerErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Disconnected graph.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(2, 3, 1)
	if _, err := Fiedler(b.Build(), rng); err == nil {
		t.Error("disconnected graph accepted")
	}
	// Too small.
	if _, err := Fiedler(graph.NewBuilder(1).Build(), rng); err == nil {
		t.Error("single node accepted")
	}
}

func TestFiedlerOrthogonalToOnes(t *testing.T) {
	g := gen.Mesh(60, 4)
	rng := rand.New(rand.NewSource(2))
	f, err := Fiedler(g, rng)
	if err != nil {
		t.Fatal(err)
	}
	var s float64
	for _, x := range f {
		s += x
	}
	if math.Abs(s) > 1e-6 {
		t.Errorf("Fiedler vector not orthogonal to ones: sum = %v", s)
	}
	// Rayleigh quotient should equal lambda_2 > 0 for connected graphs.
	op := laplacianOp{g}
	lf := make([]float64, len(f))
	op.Apply(lf, f)
	lam := linalg.Dot(f, lf) / linalg.Dot(f, f)
	if lam <= 0 {
		t.Errorf("lambda_2 = %v, want > 0", lam)
	}
}

func TestPartitionPowersOfTwo(t *testing.T) {
	g := gen.PaperGraph(78)
	rng := rand.New(rand.NewSource(5))
	for _, parts := range []int{1, 2, 4, 8} {
		p, err := Partition(g, parts, rng)
		if err != nil {
			t.Fatalf("parts=%d: %v", parts, err)
		}
		if err := p.Validate(g); err != nil {
			t.Fatalf("parts=%d: %v", parts, err)
		}
		sizes := p.PartSizes()
		if len(sizes) != parts {
			t.Fatalf("parts=%d: got %d parts", parts, len(sizes))
		}
		min, max := sizes[0], sizes[0]
		for _, s := range sizes {
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		if max-min > 1 {
			t.Errorf("parts=%d: imbalanced sizes %v", parts, sizes)
		}
	}
}

func TestPartitionRejectsNonPowerOfTwo(t *testing.T) {
	g := gen.Mesh(20, 1)
	rng := rand.New(rand.NewSource(1))
	for _, parts := range []int{0, 3, 6, -2} {
		if _, err := Partition(g, parts, rng); err == nil {
			t.Errorf("parts=%d accepted", parts)
		}
	}
}

func TestRSBBeatsRandomOnMesh(t *testing.T) {
	g := gen.PaperGraph(167)
	rng := rand.New(rand.NewSource(7))
	p, err := Partition(g, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	rsbCut := p.CutSize(g)
	// Average random balanced cut for comparison.
	var randCut float64
	const trials = 5
	for i := 0; i < trials; i++ {
		rp := randomBalanced(g.NumNodes(), 8, rng)
		randCut += rp.CutSize(g)
	}
	randCut /= trials
	if rsbCut >= randCut/2 {
		t.Errorf("RSB cut %v not clearly better than random %v", rsbCut, randCut)
	}
}

func TestBisectGrid(t *testing.T) {
	// RSB on a 8x8 grid must find a cut close to the optimal 8.
	g := gen.Grid(8, 8)
	rng := rand.New(rand.NewSource(3))
	p, err := Partition(g, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if cut := p.CutSize(g); cut > 10 {
		t.Errorf("grid bisection cut = %v, want <= 10 (optimal 8)", cut)
	}
}

func TestLanczosPathUsedForLargeGraphs(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// 500 nodes exceeds denseThreshold, exercising the sparse path.
	g := gen.Mesh(500, 11)
	rng := rand.New(rand.NewSource(13))
	p, err := Partition(g, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	sizes := p.PartSizes()
	if d := sizes[0] - sizes[1]; d > 1 || d < -1 {
		t.Errorf("sizes %v", sizes)
	}
	// A spectral bisection of a 500-node mesh should cut well under 10% of
	// edges.
	if cut := p.CutSize(g); cut > float64(g.NumEdges())/10 {
		t.Errorf("cut = %v of %d edges", cut, g.NumEdges())
	}
}

func randomBalanced(n, parts int, rng *rand.Rand) *partitionT {
	p := &partitionT{assign: make([]uint16, n), parts: parts}
	perm := rng.Perm(n)
	for i, v := range perm {
		p.assign[v] = uint16(i % parts)
	}
	return p
}

// partitionT mirrors partition.Partition minimally to avoid an import cycle
// in this white-box test package (spectral imports partition already; this
// local type just carries a CutSize helper for random baselines).
type partitionT struct {
	assign []uint16
	parts  int
}

func (p *partitionT) CutSize(g *graph.Graph) float64 {
	var cut float64
	g.Edges(func(u, v int, w float64) bool {
		if p.assign[u] != p.assign[v] {
			cut += w
		}
		return true
	})
	return cut
}

// Property: RSB partitions are always balanced within 1 node per level of
// recursion and cover every node.
func TestQuickRSBBalance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 16 + rng.Intn(80)
		g := gen.Mesh(n, seed)
		parts := []int{2, 4, 8}[rng.Intn(3)]
		p, err := Partition(g, parts, rng)
		if err != nil {
			return false
		}
		if p.Validate(g) != nil {
			return false
		}
		sizes := p.PartSizes()
		min, max := sizes[0], sizes[0]
		for _, s := range sizes {
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		// Each of log2(parts) bisection levels can introduce 1 node of
		// imbalance.
		levels := 0
		for q := parts; q > 1; q /= 2 {
			levels++
		}
		return max-min <= levels
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// The Lanczos iteration budget must be honored end to end: a tiny budget
// still yields a valid, deterministic power-of-two partition (at some split
// quality cost), and the default budget path is unchanged by passing 0.
func TestPartitionIterBudget(t *testing.T) {
	g := gen.Mesh(900, 77) // above denseThreshold: the sparse path runs
	zero, err := PartitionIter(g, 4, rand.New(rand.NewSource(5)), 0)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Partition(g, 4, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	for v := range zero.Assign {
		if zero.Assign[v] != full.Assign[v] {
			t.Fatalf("budget 0 diverged from the default path at node %d", v)
		}
	}
	for _, budget := range []int{6, 12} {
		a, err := PartitionIter(g, 4, rand.New(rand.NewSource(5)), budget)
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if err := a.Validate(g); err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		b, err := PartitionIter(g, 4, rand.New(rand.NewSource(5)), budget)
		if err != nil {
			t.Fatal(err)
		}
		for v := range a.Assign {
			if a.Assign[v] != b.Assign[v] {
				t.Fatalf("budget %d not deterministic at node %d", budget, v)
			}
		}
	}
}
