package spectral

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// union builds the disjoint union of two graphs (no edges between them).
func union(a, b *graph.Graph) *graph.Graph {
	nb := graph.NewBuilder(a.NumNodes() + b.NumNodes())
	for v := 0; v < a.NumNodes(); v++ {
		nb.SetNodeWeight(v, a.NodeWeight(v))
	}
	off := a.NumNodes()
	for v := 0; v < b.NumNodes(); v++ {
		nb.SetNodeWeight(off+v, b.NodeWeight(v))
	}
	a.Edges(func(u, v int, w float64) bool { nb.AddEdge(u, v, w); return true })
	b.Edges(func(u, v int, w float64) bool { nb.AddEdge(off+u, off+v, w); return true })
	return nb.Build()
}

func TestPartitionDisconnectedEqualComponents(t *testing.T) {
	// Two equal meshes: the ideal bisection separates them with cut 0.
	m := gen.Mesh(40, 1)
	g := union(m, gen.Mesh(40, 2))
	rng := rand.New(rand.NewSource(3))
	p, err := Partition(g, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if cut := p.CutSize(g); cut != 0 {
		t.Errorf("bisection of two equal components cut %v edges, want 0", cut)
	}
	sizes := p.PartSizes()
	if sizes[0] != 40 || sizes[1] != 40 {
		t.Errorf("sizes %v", sizes)
	}
}

func TestPartitionDisconnectedGiantPlusIslands(t *testing.T) {
	// One giant mesh plus several tiny components: the giant must be split
	// spectrally and the small components packed to restore balance.
	giant := gen.Mesh(60, 4)
	b := graph.FromGraph(giant)
	// Add 3 isolated edges (6 nodes in 3 components).
	for i := 0; i < 3; i++ {
		u := b.AddNode(1)
		v := b.AddNode(1)
		b.AddEdge(u, v, 1)
	}
	g := b.Build()
	rng := rand.New(rand.NewSource(5))
	p, err := Partition(g, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	sizes := p.PartSizes()
	diff := sizes[0] - sizes[1]
	if diff < 0 {
		diff = -diff
	}
	if diff > 4 {
		t.Errorf("lopsided split of giant+islands: %v", sizes)
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionDisconnectedFourParts(t *testing.T) {
	// Disconnected graphs can also arise mid-recursion; a 4-way split of a
	// 3-component graph exercises bisectAny at inner levels.
	g := union(union(gen.Mesh(30, 6), gen.Mesh(30, 7)), gen.Mesh(30, 8))
	rng := rand.New(rand.NewSource(9))
	p, err := Partition(g, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	sizes := p.PartSizes()
	min, max := sizes[0], sizes[0]
	for _, s := range sizes {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if max-min > 6 {
		t.Errorf("4-way split of 3 components too unbalanced: %v", sizes)
	}
}

func TestBisectSingleNode(t *testing.T) {
	b := graph.NewBuilder(1)
	side, err := Bisect(b.Build(), rand.New(rand.NewSource(1)))
	if err != nil || len(side) != 1 || side[0] != 0 {
		t.Errorf("single-node bisect: %v %v", side, err)
	}
}
