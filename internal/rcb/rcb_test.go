package rcb

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
)

func TestRCBOnGridIsOptimalStrips(t *testing.T) {
	// 8x8 grid into 2 parts: median x-split cuts exactly 8 edges.
	g := gen.Grid(8, 8)
	p, err := Partition(g, 2, Coordinate)
	if err != nil {
		t.Fatal(err)
	}
	if cut := p.CutSize(g); cut != 8 {
		t.Errorf("RCB grid cut = %v, want 8", cut)
	}
	if !p.Balanced() {
		t.Errorf("sizes %v", p.PartSizes())
	}
}

func TestRGBOnPathIsOptimal(t *testing.T) {
	b := graph.NewBuilder(16)
	for i := 0; i+1 < 16; i++ {
		b.AddEdge(i, i+1, 1)
	}
	g := b.Build()
	p, err := Partition(g, 4, GraphBFS)
	if err != nil {
		t.Fatal(err)
	}
	if cut := p.CutSize(g); cut != 3 {
		t.Errorf("RGB path cut = %v, want 3", cut)
	}
	if !p.Balanced() {
		t.Errorf("sizes %v", p.PartSizes())
	}
}

func TestPartitionErrors(t *testing.T) {
	g := gen.Mesh(20, 1)
	if _, err := Partition(g, 3, Coordinate); err == nil {
		t.Error("non-power-of-two accepted")
	}
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 1)
	if _, err := Partition(b.Build(), 2, Coordinate); err == nil {
		t.Error("coordinate method accepted graph without coords")
	}
	if _, err := Partition(b.Build(), 2, GraphBFS); err != nil {
		t.Errorf("RGB should not need coords: %v", err)
	}
}

func TestMethodString(t *testing.T) {
	if Coordinate.String() == "" || GraphBFS.String() == "" || Method(9).String() == "" {
		t.Error("empty String()")
	}
}

func TestBothMethodsBeatRandomOnMesh(t *testing.T) {
	g := gen.PaperGraph(213)
	rng := rand.New(rand.NewSource(1))
	randCut := partition.RandomBalanced(g.NumNodes(), 8, rng).CutSize(g)
	for _, m := range []Method{Coordinate, GraphBFS} {
		p, err := Partition(g, 8, m)
		if err != nil {
			t.Fatal(err)
		}
		if cut := p.CutSize(g); cut >= randCut {
			t.Errorf("%v cut %v not better than random %v", m, cut, randCut)
		}
	}
}

// Property: both methods always produce balanced, valid partitions.
func TestQuickBalance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(120)
		g := gen.Mesh(n, seed)
		parts := []int{2, 4, 8}[rng.Intn(3)]
		m := []Method{Coordinate, GraphBFS}[rng.Intn(2)]
		p, err := Partition(g, parts, m)
		if err != nil || p.Validate(g) != nil {
			return false
		}
		sizes := p.PartSizes()
		min, max := sizes[0], sizes[0]
		for _, s := range sizes {
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		levels := 0
		for q := parts; q > 1; q /= 2 {
			levels++
		}
		return max-min <= levels
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: deterministic — same input gives identical partitions.
func TestQuickDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		n := 10 + int(seed%50+50)%50
		g := gen.Mesh(n, seed)
		for _, m := range []Method{Coordinate, GraphBFS} {
			a, err1 := Partition(g, 4, m)
			b, err2 := Partition(g, 4, m)
			if err1 != nil || err2 != nil {
				return false
			}
			for v := range a.Assign {
				if a.Assign[v] != b.Assign[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
