// Package rcb implements two classic deterministic partitioning baselines the
// paper's introduction cites: recursive coordinate bisection (RCB), which
// splits along the longer geometric axis at the median coordinate, and
// recursive graph bisection (RGB), which splits by BFS distance from a
// pseudo-peripheral node. Both recurse to produce power-of-two part counts.
package rcb

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/partition"
)

// Method selects the bisection rule.
type Method int

const (
	// Coordinate splits at the median of the longer axis (RCB).
	Coordinate Method = iota
	// GraphBFS splits at the median BFS level from a pseudo-peripheral
	// node (RGB).
	GraphBFS
)

// String names the method.
func (m Method) String() string {
	switch m {
	case Coordinate:
		return "recursive-coordinate-bisection"
	case GraphBFS:
		return "recursive-graph-bisection"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Partition divides g into parts parts (a power of two) with the chosen
// method. Coordinate requires a geometric embedding.
func Partition(g *graph.Graph, parts int, m Method) (*partition.Partition, error) {
	if parts <= 0 || parts&(parts-1) != 0 {
		return nil, fmt.Errorf("rcb: parts must be a power of two, got %d", parts)
	}
	if m == Coordinate && !g.HasCoords() {
		return nil, fmt.Errorf("rcb: coordinate bisection requires coordinates")
	}
	p := partition.New(g.NumNodes(), parts)
	nodes := make([]int, g.NumNodes())
	for i := range nodes {
		nodes[i] = i
	}
	recurse(g, nodes, 0, parts, p, m)
	return p, nil
}

func recurse(g *graph.Graph, nodes []int, base, span int, p *partition.Partition, m Method) {
	if span == 1 || len(nodes) == 0 {
		for _, v := range nodes {
			p.Assign[v] = uint16(base)
		}
		return
	}
	var order []int
	switch m {
	case Coordinate:
		order = coordinateOrder(g, nodes)
	case GraphBFS:
		order = bfsOrder(g, nodes)
	default:
		panic(fmt.Sprintf("rcb: unknown method %d", int(m)))
	}
	half := (len(order) + 1) / 2
	recurse(g, order[:half], base, span/2, p, m)
	recurse(g, order[half:], base+span/2, span/2, p, m)
}

// coordinateOrder sorts nodes along the longer axis of their bounding box.
func coordinateOrder(g *graph.Graph, nodes []int) []int {
	minX, minY := g.Coord(nodes[0]).X, g.Coord(nodes[0]).Y
	maxX, maxY := minX, minY
	for _, v := range nodes[1:] {
		c := g.Coord(v)
		if c.X < minX {
			minX = c.X
		}
		if c.Y < minY {
			minY = c.Y
		}
		if c.X > maxX {
			maxX = c.X
		}
		if c.Y > maxY {
			maxY = c.Y
		}
	}
	byX := maxX-minX >= maxY-minY
	order := append([]int(nil), nodes...)
	sort.SliceStable(order, func(a, b int) bool {
		ca, cb := g.Coord(order[a]), g.Coord(order[b])
		if byX {
			if ca.X != cb.X {
				return ca.X < cb.X
			}
			return ca.Y < cb.Y
		}
		if ca.Y != cb.Y {
			return ca.Y < cb.Y
		}
		return ca.X < cb.X
	})
	return order
}

// bfsOrder sorts nodes by BFS level from a pseudo-peripheral node of the
// induced subgraph, breaking ties by node id. Unreachable nodes (the induced
// subgraph may be disconnected) sort last.
func bfsOrder(g *graph.Graph, nodes []int) []int {
	sub, orig := g.InducedSubgraph(nodes)
	root := sub.PseudoPeripheral(0)
	level := sub.BFS(root)
	order := make([]int, len(nodes))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		la, lb := level[order[a]], level[order[b]]
		if la == -1 {
			la = int(^uint(0) >> 1) // unreachable: +inf
		}
		if lb == -1 {
			lb = int(^uint(0) >> 1)
		}
		if la != lb {
			return la < lb
		}
		return orig[order[a]] < orig[order[b]]
	})
	out := make([]int, len(order))
	for i, idx := range order {
		out[i] = orig[idx]
	}
	return out
}
