package ibp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

// figure1b is the shuffled row-major indexing of an 8x8 grid exactly as
// printed in the paper's Figure 1(b). figure1b[row][col].
var figure1b = [8][8]uint64{
	{0, 1, 4, 5, 16, 17, 20, 21},
	{2, 3, 6, 7, 18, 19, 22, 23},
	{8, 9, 12, 13, 24, 25, 28, 29},
	{10, 11, 14, 15, 26, 27, 30, 31},
	{32, 33, 36, 37, 48, 49, 52, 53},
	{34, 35, 38, 39, 50, 51, 54, 55},
	{40, 41, 44, 45, 56, 57, 60, 61},
	{42, 43, 46, 47, 58, 59, 62, 63},
}

func TestFigure1aRowMajor(t *testing.T) {
	for y := uint64(0); y < 8; y++ {
		for x := uint64(0); x < 8; x++ {
			want := y*8 + x
			if got := CellIndex(RowMajor, x, y, 3, 3); got != want {
				t.Fatalf("row-major (%d,%d) = %d, want %d", x, y, got, want)
			}
		}
	}
}

func TestFigure1bShuffledRowMajor(t *testing.T) {
	for y := uint64(0); y < 8; y++ {
		for x := uint64(0); x < 8; x++ {
			want := figure1b[y][x]
			if got := CellIndex(ShuffledRowMajor, x, y, 3, 3); got != want {
				t.Fatalf("shuffled (%d,%d) = %d, want %d", x, y, got, want)
			}
		}
	}
}

func TestInterleavePaperExamples(t *testing.T) {
	// "Suppose index1 = 001, index2 = 010, and index3 = 110. Then the
	// interleaved index would be 001011100."
	if got := Interleave([]uint64{0b001, 0b010, 0b110}, []int{3, 3, 3}); got != 0b001011100 {
		t.Errorf("equal-width interleave = %b, want 001011100", got)
	}
	// "if index1 = 101, index2 = 01, and index3 = 0, then the interleaved
	// index would be 100110."
	if got := Interleave([]uint64{0b101, 0b01, 0b0}, []int{3, 2, 1}); got != 0b100110 {
		t.Errorf("unequal-width interleave = %b, want 100110", got)
	}
}

func TestInterleaveOneDimensionIsIdentity(t *testing.T) {
	for _, v := range []uint64{0, 1, 5, 127, 1023} {
		if got := Interleave([]uint64{v}, []int{10}); got != v {
			t.Errorf("Interleave([%d]) = %d", v, got)
		}
	}
}

func TestInterleavePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Interleave([]uint64{1, 2}, []int{3})
}

func TestIndexingString(t *testing.T) {
	if RowMajor.String() != "row-major" || ShuffledRowMajor.String() != "shuffled-row-major" {
		t.Error("String names wrong")
	}
}

func TestPartitionBalanced(t *testing.T) {
	g := gen.PaperGraph(167)
	for _, ix := range []Indexing{RowMajor, ShuffledRowMajor} {
		for _, parts := range []int{2, 4, 8} {
			p, err := Partition(g, parts, ix)
			if err != nil {
				t.Fatalf("%v parts=%d: %v", ix, parts, err)
			}
			if err := p.Validate(g); err != nil {
				t.Fatal(err)
			}
			if !p.Balanced() {
				t.Errorf("%v parts=%d: sizes %v", ix, parts, p.PartSizes())
			}
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	// No coordinates.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 1)
	if _, err := Partition(b.Build(), 2, RowMajor); err == nil {
		t.Error("coordinate-free graph accepted")
	}
	g := gen.Mesh(20, 1)
	if _, err := Partition(g, 0, RowMajor); err == nil {
		t.Error("0 parts accepted")
	}
}

func TestShuffledBeatsRowMajorOnSquareMesh(t *testing.T) {
	// On a square mesh split into 4+ parts, shuffled row-major produces
	// blocky parts while row-major produces strips; Z-order should yield
	// a cut at least as good on average. We assert both produce sane
	// partitions and that shuffled is not catastrophically worse.
	g := gen.Grid(16, 16)
	pRM, err := Partition(g, 4, RowMajor)
	if err != nil {
		t.Fatal(err)
	}
	pZ, err := Partition(g, 4, ShuffledRowMajor)
	if err != nil {
		t.Fatal(err)
	}
	cutRM, cutZ := pRM.CutSize(g), pZ.CutSize(g)
	if cutZ > 2*cutRM {
		t.Errorf("shuffled cut %v vs row-major %v", cutZ, cutRM)
	}
	// 16x16 grid into 4 parts: strips cut 3*16 = 48; quadrants cut 32.
	if cutZ > 48 {
		t.Errorf("shuffled cut = %v, want <= 48", cutZ)
	}
}

func TestPartitionDeterministic(t *testing.T) {
	g := gen.PaperGraph(144)
	a, _ := Partition(g, 8, ShuffledRowMajor)
	b, _ := Partition(g, 8, ShuffledRowMajor)
	for v := range a.Assign {
		if a.Assign[v] != b.Assign[v] {
			t.Fatal("IBP not deterministic")
		}
	}
}

// Property: interleaving is injective over the cell grid (it is a bijection
// onto [0, 2^(bx+by)) but injectivity is what partitioning needs).
func TestQuickInterleaveInjective(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bx, by := 1+rng.Intn(5), 1+rng.Intn(5)
		seen := make(map[uint64]bool)
		for x := uint64(0); x < 1<<uint(bx); x++ {
			for y := uint64(0); y < 1<<uint(by); y++ {
				idx := CellIndex(ShuffledRowMajor, x, y, bx, by)
				if seen[idx] {
					return false
				}
				seen[idx] = true
				if idx >= 1<<uint(bx+by) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: IBP partitions are always balanced (part sizes differ by <= 1)
// regardless of mesh, parts, or indexing.
func TestQuickIBPBalance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(100)
		g := gen.Mesh(n, seed)
		parts := 2 + rng.Intn(7)
		ix := []Indexing{RowMajor, ShuffledRowMajor}[rng.Intn(2)]
		p, err := Partition(g, parts, ix)
		if err != nil {
			return false
		}
		return p.Balanced()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
