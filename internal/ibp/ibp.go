// Package ibp implements the Index-Based Partitioning algorithm described in
// the paper's appendix (Ou, Ranka & Fox 1993).
//
// IBP has three phases: indexing (convert each node's N-dimensional
// coordinate to a one-dimensional index that preserves spatial proximity),
// sorting by index, and coloring (splitting the sorted list into P equal
// sublists). Two indexings are provided: row-major and shuffled row-major
// (bit interleaving, also known as Morton or Z-order), including the paper's
// generalization to unequal per-dimension bit counts.
package ibp

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/partition"
)

// Indexing selects how multi-dimensional grid cells are linearized.
type Indexing int

const (
	// RowMajor indexes cells left-to-right, top-to-bottom (Figure 1a).
	RowMajor Indexing = iota
	// ShuffledRowMajor interleaves the bits of the cell coordinates
	// (Figure 1b); nearby cells get nearby indices at every scale.
	ShuffledRowMajor
)

// String names the indexing scheme.
func (ix Indexing) String() string {
	switch ix {
	case RowMajor:
		return "row-major"
	case ShuffledRowMajor:
		return "shuffled-row-major"
	default:
		return fmt.Sprintf("Indexing(%d)", int(ix))
	}
}

// Interleave computes the shuffled row-major index of a cell whose
// per-dimension coordinates are coords with bits[i] significant bits each.
// Bits are chosen right to left from each dimension in turn, starting from
// the last dimension, exactly as the paper's appendix specifies; dimensions
// whose bits are exhausted are skipped.
//
// Interleave(coords=[a], bits=[k]) == a, so one-dimensional input is the
// identity.
func Interleave(coords []uint64, bits []int) uint64 {
	if len(coords) != len(bits) {
		panic(fmt.Sprintf("ibp: %d coords with %d bit counts", len(coords), len(bits)))
	}
	var out uint64
	pos := 0
	maxBits := 0
	for _, b := range bits {
		if b > maxBits {
			maxBits = b
		}
	}
	for level := 0; level < maxBits; level++ {
		// "choosing bits (right to left) of each of the dimensions one by
		// one, starting from dimension 3" — i.e., the last dimension first.
		for d := len(coords) - 1; d >= 0; d-- {
			if level >= bits[d] {
				continue // this dimension's bits are exhausted
			}
			bit := (coords[d] >> uint(level)) & 1
			out |= bit << uint(pos)
			pos++
		}
	}
	return out
}

// CellIndex computes the linear index of cell (x, y) in a 2^bx x 2^by grid
// under the chosen indexing. Row-major follows Figure 1a (x = column,
// y = row); shuffled row-major follows Figure 1b.
func CellIndex(ix Indexing, x, y uint64, bx, by int) uint64 {
	switch ix {
	case RowMajor:
		return y<<uint(bx) | x
	case ShuffledRowMajor:
		// Interleave with y as dimension 1 and x as dimension 2 so that,
		// per the appendix's right-to-left-starting-from-last rule, the x
		// bit lands in the least significant position. This reproduces
		// Figure 1b exactly (cell (1,0) -> 1, cell (0,1) -> 2).
		return Interleave([]uint64{y, x}, []int{by, bx})
	default:
		panic(fmt.Sprintf("ibp: unknown indexing %d", int(ix)))
	}
}

// gridBits returns the number of bits needed to address n cells per side.
func gridBits(cells int) int {
	b := 0
	for (1 << uint(b)) < cells {
		b++
	}
	return b
}

// Partition partitions g into parts parts with IBP. The graph must carry
// coordinates. Nodes are binned into a 2^b x 2^b grid over their bounding box
// (b chosen so the grid has at least as many cells as nodes), indexed,
// sorted, and the sorted list is divided into parts equal sublists.
// Ties (nodes in the same cell) are broken by node id, so the result is
// deterministic.
func Partition(g *graph.Graph, parts int, ix Indexing) (*partition.Partition, error) {
	n := g.NumNodes()
	if !g.HasCoords() {
		return nil, fmt.Errorf("ibp: graph has no coordinates")
	}
	if parts <= 0 {
		return nil, fmt.Errorf("ibp: invalid part count %d", parts)
	}
	if n == 0 {
		return partition.New(0, parts), nil
	}
	// Grid resolution: at least sqrt(n) cells per side, rounded to a power
	// of two, times 2 for slack so few nodes share a cell.
	side := 1
	for side*side < 4*n {
		side *= 2
	}
	b := gridBits(side)

	minX, minY := g.Coord(0).X, g.Coord(0).Y
	maxX, maxY := minX, minY
	for v := 1; v < n; v++ {
		p := g.Coord(v)
		if p.X < minX {
			minX = p.X
		}
		if p.Y < minY {
			minY = p.Y
		}
		if p.X > maxX {
			maxX = p.X
		}
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	spanX, spanY := maxX-minX, maxY-minY
	if spanX == 0 {
		spanX = 1
	}
	if spanY == 0 {
		spanY = 1
	}
	type keyed struct {
		idx uint64
		v   int
	}
	keys := make([]keyed, n)
	last := uint64(side - 1)
	for v := 0; v < n; v++ {
		p := g.Coord(v)
		cx := uint64(float64(side) * (p.X - minX) / spanX)
		cy := uint64(float64(side) * (p.Y - minY) / spanY)
		if cx > last {
			cx = last
		}
		if cy > last {
			cy = last
		}
		keys[v] = keyed{CellIndex(ix, cx, cy, b, b), v}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].idx != keys[j].idx {
			return keys[i].idx < keys[j].idx
		}
		return keys[i].v < keys[j].v
	})
	p := partition.New(n, parts)
	for rank, k := range keys {
		// Split into parts contiguous sublists as evenly as possible.
		p.Assign[k.v] = uint16(rank * parts / n)
	}
	return p, nil
}
