package bench

import (
	"fmt"
	"strings"
)

// Table mirrors the layout of the paper's tables: groups of rows (one group
// per graph), one column per part count, one row per method.
type Table struct {
	ID     string // "Table 1" ... "Table 6"
	Title  string
	Metric string // what the numbers mean
	Parts  []int  // column headers
	Groups []Group
}

// Group is one graph's block of rows.
type Group struct {
	Label string // e.g. "167 Nodes" or "118 plus 21 Nodes"
	Rows  []Row
}

// Row is one method's results across the part columns.
type Row struct {
	Label  string // e.g. "Cut Using DKNUX"
	Values []float64
}

// Format renders the table as aligned text in the paper's layout.
func (t Table) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %s\n", t.ID, t.Title)
	fmt.Fprintf(&sb, "(metric: %s)\n", t.Metric)

	labelW := len("Number of Parts")
	for _, g := range t.Groups {
		if len(g.Label) > labelW {
			labelW = len(g.Label)
		}
		for _, r := range g.Rows {
			if len(r.Label) > labelW {
				labelW = len(r.Label)
			}
		}
	}
	const colW = 8
	fmt.Fprintf(&sb, "%-*s", labelW, "Number of Parts")
	for _, p := range t.Parts {
		fmt.Fprintf(&sb, "%*d", colW, p)
	}
	sb.WriteByte('\n')
	for _, g := range t.Groups {
		fmt.Fprintf(&sb, "%s\n", g.Label)
		for _, r := range g.Rows {
			fmt.Fprintf(&sb, "%-*s", labelW, r.Label)
			for _, v := range r.Values {
				fmt.Fprintf(&sb, "%*.0f", colW, v)
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// Figure is a set of labeled series (convergence curves, speedup curves).
type Figure struct {
	ID, Title      string
	XLabel, YLabel string
	Series         []Series
}

// Series is one labeled curve.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Format renders the figure as a column-aligned data listing, one block per
// series — the textual equivalent of the paper's plots.
func (f Figure) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %s\n", f.ID, f.Title)
	fmt.Fprintf(&sb, "(x: %s, y: %s)\n", f.XLabel, f.YLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&sb, "series %q\n", s.Label)
		for i := range s.X {
			fmt.Fprintf(&sb, "  %10.1f %12.2f\n", s.X[i], s.Y[i])
		}
	}
	return sb.String()
}
