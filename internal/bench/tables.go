package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/ibp"
	"repro/internal/partition"
	"repro/internal/spectral"
)

// rsbPartition computes the RSB baseline for a graph, panicking on error
// (the suite graphs are connected by construction, so errors are bugs).
func rsbPartition(g *graph.Graph, parts int, seed int64) *partition.Partition {
	p, err := spectral.Partition(g, parts, rand.New(rand.NewSource(seed)))
	if err != nil {
		panic(fmt.Sprintf("bench: RSB on suite graph failed: %v", err))
	}
	return p
}

// ibpPartition computes the IBP (shuffled row-major) seed for a graph.
func ibpPartition(g *graph.Graph, parts int) *partition.Partition {
	p, err := ibp.Partition(g, parts, ibp.ShuffledRowMajor)
	if err != nil {
		panic(fmt.Sprintf("bench: IBP on suite graph failed: %v", err))
	}
	return p
}

// Table1 regenerates the paper's Table 1: best DKNUX solutions, population
// seeded with an IBP solution, Fitness 1, versus RSB; graphs of 167 and 144
// nodes; total inter-part edges reported.
func Table1(opt Options) Table {
	t := Table{
		ID:     "Table 1",
		Title:  "DKNUX (seeded with IBP) vs RSB, Fitness Function 1",
		Metric: "total inter-part edges (sum_q C(q)/2)",
		Parts:  []int{2, 4, 8},
	}
	for gi, n := range []int{167, 144} {
		g := gen.PaperGraph(n)
		group := Group{Label: fmt.Sprintf("%d Nodes", n)}
		var dknux, rsb Row
		dknux.Label = "Cut Using DKNUX"
		rsb.Label = "Cut Using RSB"
		for _, parts := range t.Parts {
			seed := ibpPartition(g, parts)
			best := runDKNUX(g, parts, partition.TotalCut,
				[]*partition.Partition{seed}, opt, opt.Seed+int64(1000*gi+parts))
			dknux.Values = append(dknux.Values, best.CutSize(g))
			rsb.Values = append(rsb.Values, rsbPartition(g, parts, opt.Seed).CutSize(g))
		}
		group.Rows = []Row{dknux, rsb}
		t.Groups = append(t.Groups, group)
	}
	return t
}

// Table2 regenerates the paper's Table 2: improving RSB solutions with the
// GA (population seeded with the RSB partition), Fitness 1.
func Table2(opt Options) Table {
	t := Table{
		ID:     "Table 2",
		Title:  "Improving the RSB solution with DKNUX, Fitness Function 1",
		Metric: "total inter-part edges (sum_q C(q)/2)",
		Parts:  []int{2, 4, 8},
	}
	for gi, n := range []int{139, 213, 243, 279} {
		g := gen.PaperGraph(n)
		group := Group{Label: fmt.Sprintf("%d Nodes", n)}
		var dknux, rsb Row
		dknux.Label = "Cut Using DKNUX"
		rsb.Label = "Cut Using RSB"
		for _, parts := range t.Parts {
			seed := rsbPartition(g, parts, opt.Seed)
			best := runDKNUX(g, parts, partition.TotalCut,
				[]*partition.Partition{seed}, opt, opt.Seed+int64(2000*gi+parts))
			dknux.Values = append(dknux.Values, best.CutSize(g))
			rsb.Values = append(rsb.Values, seed.CutSize(g))
		}
		group.Rows = []Row{dknux, rsb}
		t.Groups = append(t.Groups, group)
	}
	return t
}

// incrementalSeeds builds the GA seeds for an incremental case: the old
// partition (of the base graph, computed by RSB) extended to the grown
// graph with balance maintained, plus the deterministic majority-neighbor
// extension.
func incrementalSeeds(base, grown *graph.Graph, parts int, opt Options, caseSeed int64) (seeds []*partition.Partition, det *partition.Partition) {
	old := rsbPartition(base, parts, opt.Seed)
	rng := rand.New(rand.NewSource(caseSeed))
	// The deterministic extension goes first so it always enters the
	// population even when islands are smaller than the seed list; the GA
	// can then never return a lower fitness than the baseline.
	det = partition.ExtendMajorityNeighbor(old, grown)
	seeds = append(seeds, det)
	for i := 0; i < 8; i++ {
		seeds = append(seeds, partition.ExtendRandomBalanced(old, grown, rng))
	}
	return seeds, det
}

// withHillClimb applies the reproduction policy for experiments whose
// populations start far from optimized states (random initialization or
// incremental extensions): boundary hill climbing (§3.6) is enabled with a
// proportionally reduced generation budget. Without it the plain GA does
// not reach the paper's quality at comparable budgets; with it the paper's
// shape reproduces.
func withHillClimb(opt Options) Options {
	if !opt.HillClimb {
		opt.HillClimb = true
		if opt.Generations > 60 {
			opt.Generations = 60
		}
	}
	return opt
}

// Table3 regenerates the paper's Table 3: incremental graph partitioning
// with Fitness 1. The DKNUX population is seeded with the previous
// partition extended to the grown graph; RSB partitions the grown graph
// from scratch. A MajorityNeighbor row (the paper's deterministic straw
// man, discussed in its conclusions) is included for reference. Runs with
// hill climbing per withHillClimb.
func Table3(opt Options) Table {
	opt = withHillClimb(opt)
	t := Table{
		ID:     "Table 3",
		Title:  "Incremental graph partitioning, Fitness Function 1",
		Metric: "total inter-part edges (sum_q C(q)/2)",
		Parts:  []int{2, 4, 8},
	}
	cases := []gen.IncrementalCase{{Base: 118, Added: 21}, {Base: 118, Added: 41}, {Base: 183, Added: 30}, {Base: 183, Added: 60}}
	for ci, c := range cases {
		base, grown := gen.IncrementalPair(c)
		group := Group{Label: fmt.Sprintf("%d plus %d Nodes", c.Base, c.Added)}
		dknux := Row{Label: "Cut Using DKNUX"}
		rsb := Row{Label: "Cut Using RSB"}
		mn := Row{Label: "Cut Using MajorityNbr"}
		for _, parts := range t.Parts {
			caseSeed := opt.Seed + int64(3000*ci+parts)
			seeds, det := incrementalSeeds(base, grown, parts, opt, caseSeed)
			best := runDKNUX(grown, parts, partition.TotalCut, seeds, opt, caseSeed)
			dknux.Values = append(dknux.Values, best.CutSize(grown))
			rsb.Values = append(rsb.Values, rsbPartition(grown, parts, opt.Seed).CutSize(grown))
			mn.Values = append(mn.Values, det.CutSize(grown))
		}
		group.Rows = []Row{dknux, rsb, mn}
		t.Groups = append(t.Groups, group)
	}
	return t
}

// Table4 regenerates the paper's Table 4: minimizing worst-case
// communication cost (Fitness 2) from a randomly initialized population.
//
// This experiment runs with the boundary hill climbing of §3.6 enabled (at
// a proportionally reduced generation budget): starting from random
// populations, the plain GA does not reach the paper's quality at
// comparable budgets, while GA+hill-climbing reproduces the paper's shape —
// DKNUX at or below RSB's worst cut on most graphs.
func Table4(opt Options) Table {
	opt = withHillClimb(opt)
	t := Table{
		ID:     "Table 4",
		Title:  "DKNUX vs RSB, random initial population, Fitness Function 2",
		Metric: "worst cut max_q C(q)",
		Parts:  []int{4, 8},
	}
	for gi, n := range []int{78, 88, 98, 144, 167} {
		g := gen.PaperGraph(n)
		group := Group{Label: fmt.Sprintf("%d Nodes", n)}
		dknux := Row{Label: "Worst Cut Using DKNUX"}
		rsb := Row{Label: "Worst Cut Using RSB"}
		for _, parts := range t.Parts {
			best := runDKNUX(g, parts, partition.WorstCut, nil, opt, opt.Seed+int64(4000*gi+parts))
			dknux.Values = append(dknux.Values, best.MaxPartCut(g))
			rsb.Values = append(rsb.Values, rsbPartition(g, parts, opt.Seed).MaxPartCut(g))
		}
		group.Rows = []Row{dknux, rsb}
		t.Groups = append(t.Groups, group)
	}
	return t
}

// Table5 regenerates the paper's Table 5: improving RSB solutions under
// Fitness 2 (worst cut), population seeded with the RSB partition.
func Table5(opt Options) Table {
	t := Table{
		ID:     "Table 5",
		Title:  "Improving RSB solutions with DKNUX, Fitness Function 2",
		Metric: "worst cut max_q C(q)",
		Parts:  []int{4, 8},
	}
	for gi, n := range []int{78, 88, 98, 213, 243, 279, 309} {
		g := gen.PaperGraph(n)
		group := Group{Label: fmt.Sprintf("%d Nodes", n)}
		dknux := Row{Label: "Worst Cut Using DKNUX"}
		rsb := Row{Label: "Worst Cut Using RSB"}
		for _, parts := range t.Parts {
			seed := rsbPartition(g, parts, opt.Seed)
			best := runDKNUX(g, parts, partition.WorstCut,
				[]*partition.Partition{seed}, opt, opt.Seed+int64(5000*gi+parts))
			dknux.Values = append(dknux.Values, best.MaxPartCut(g))
			rsb.Values = append(rsb.Values, seed.MaxPartCut(g))
		}
		group.Rows = []Row{dknux, rsb}
		t.Groups = append(t.Groups, group)
	}
	return t
}

// Table6 regenerates the paper's Table 6: incremental partitioning with
// Fitness 2 (worst cut). Runs with hill climbing per withHillClimb.
func Table6(opt Options) Table {
	opt = withHillClimb(opt)
	t := Table{
		ID:     "Table 6",
		Title:  "Incremental partitioning with DKNUX, Fitness Function 2",
		Metric: "worst cut max_q C(q)",
		Parts:  []int{4, 8},
	}
	for ci, c := range gen.PaperIncrementalCases {
		base, grown := gen.IncrementalPair(c)
		group := Group{Label: fmt.Sprintf("%d plus %d Nodes", c.Base, c.Added)}
		dknux := Row{Label: "Worst Cut Using DKNUX"}
		rsb := Row{Label: "Worst Cut Using RSB"}
		mn := Row{Label: "Worst Cut Using MajorityNbr"}
		for _, parts := range t.Parts {
			caseSeed := opt.Seed + int64(6000*ci+parts)
			seeds, det := incrementalSeeds(base, grown, parts, opt, caseSeed)
			best := runDKNUX(grown, parts, partition.WorstCut, seeds, opt, caseSeed)
			dknux.Values = append(dknux.Values, best.MaxPartCut(grown))
			rsb.Values = append(rsb.Values, rsbPartition(grown, parts, opt.Seed).MaxPartCut(grown))
			mn.Values = append(mn.Values, det.MaxPartCut(grown))
		}
		group.Rows = []Row{dknux, rsb, mn}
		t.Groups = append(t.Groups, group)
	}
	return t
}

// AllTables regenerates Tables 1–6.
func AllTables(opt Options) []Table {
	return []Table{Table1(opt), Table2(opt), Table3(opt), Table4(opt), Table5(opt), Table6(opt)}
}
