package bench

import (
	"os"
	"strings"
	"testing"
)

// loadObjectivesArtifact reads the committed objectives baseline — the diverse
// suite run under every objective — which doubles as the acceptance artifact
// for the pluggable-objectives work.
func loadObjectivesArtifact(t *testing.T) *Report {
	t.Helper()
	f, err := os.Open("../../bench/BENCH_objectives.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rep, err := ReadJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// The committed artifact must demonstrate that optimizing for maxcut actually
// lowers max_part_cut relative to cut-optimized runs: on at least 2/3 of the
// diverse cases some algorithm's maxcut run strictly beats its own cut run's
// max_part_cut, and at least one algorithm achieves that strict win on 2/3 of
// the cases by itself. Regenerating the artifact with a refiner change that
// quietly makes the maxcut objective a no-op fails here, not in review.
func TestObjectivesArtifactMaxcutWins(t *testing.T) {
	rep := loadObjectivesArtifact(t)

	type key struct{ c, a, o string }
	res := map[key]Result{}
	caseSet := map[string]bool{}
	algoSet := map[string]bool{}
	for _, r := range rep.Results {
		if r.Error != "" {
			continue
		}
		res[key{r.Case, r.Algo, r.Objective}] = r
		caseSet[r.Case] = true
		algoSet[r.Algo] = true
	}
	if len(caseSet) < 3 {
		t.Fatalf("artifact covers %d cases, want the 3-case diverse suite", len(caseSet))
	}

	// need is ceil(2/3 · cases): the acceptance threshold.
	need := (2*len(caseSet) + 2) / 3
	casesImproved := 0
	bestAlgoWins := 0
	bestAlgo := ""
	perAlgoWins := map[string]int{}
	for c := range caseSet {
		improved := false
		for a := range algoSet {
			cutRun, okCut := res[key{c, a, ""}]
			maxRun, okMax := res[key{c, a, "maxcut"}]
			if !okCut || !okMax {
				continue
			}
			if maxRun.MaxPartCut < cutRun.MaxPartCut {
				improved = true
				perAlgoWins[a]++
			}
		}
		if improved {
			casesImproved++
		}
	}
	for a, w := range perAlgoWins {
		if w > bestAlgoWins {
			bestAlgoWins, bestAlgo = w, a
		}
	}
	if casesImproved < need {
		t.Errorf("maxcut strictly improves max_part_cut on %d/%d cases, want >= %d",
			casesImproved, len(caseSet), need)
	}
	if bestAlgoWins < need {
		t.Errorf("best single algorithm (%s) wins on %d/%d cases under maxcut, want >= %d",
			bestAlgo, bestAlgoWins, len(caseSet), need)
	}
}

// The artifact must carry working commvol rows for the algorithms that declare
// the objective, and honest error rows — not silent cut-optimized results —
// for those that do not.
func TestObjectivesArtifactCommvolCoverage(t *testing.T) {
	rep := loadObjectivesArtifact(t)

	type key struct{ c, a string }
	commvol := map[key]Result{}
	for _, r := range rep.Results {
		if r.Objective != "commvol" {
			continue
		}
		commvol[key{r.Case, r.Algo}] = r
	}
	if len(commvol) == 0 {
		t.Fatal("artifact has no commvol rows")
	}
	sawSupported, sawRejected := false, false
	for k, r := range commvol {
		switch k.a {
		case "kl", "multilevel-kl":
			sawSupported = true
			if r.Error != "" {
				t.Errorf("%s/%s[commvol] errored: %s", k.c, k.a, r.Error)
			} else if r.CommVolume <= 0 {
				t.Errorf("%s/%s[commvol] comm_volume = %v, want > 0", k.c, k.a, r.CommVolume)
			}
		case "fm", "multilevel-fm":
			sawRejected = true
			if r.Error == "" || !strings.Contains(r.Error, "does not support objective commvol") {
				t.Errorf("%s/%s[commvol] must be an unsupported-objective error row, got error=%q comm_volume=%v",
					k.c, k.a, r.Error, r.CommVolume)
			}
		}
	}
	if !sawSupported {
		t.Error("no commvol rows for the kl family")
	}
	if !sawRejected {
		t.Error("no commvol error rows for the fm family; the constraint gate is untested by the artifact")
	}
}
