package bench

import (
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// This file aggregates a directory of benchmark JSON artifacts — one per
// commit or CI run — into per-(case, algorithm) time series, closing the
// loop the CI bench job opened: it uploads bench-*.json artifacts, and
// cmd/benchtrend turns a collected pile of them into a cut/latency trend
// table (markdown for humans, CSV for plotting).

// NamedReport pairs a report with the label it appears under in a trend —
// typically the artifact's filename, whose lexical order is the time axis.
type NamedReport struct {
	Label  string
	Report *Report
}

// LoadReports reads every file in dir whose base name matches the glob
// pattern ("" selects "bench-*.json"), in lexical name order. Files that
// fail to parse or carry a foreign schema abort the load: a trend silently
// missing runs is worse than no trend.
func LoadReports(dir, pattern string) ([]NamedReport, error) {
	if pattern == "" {
		pattern = "bench-*.json"
	}
	matches, err := filepath.Glob(filepath.Join(dir, pattern))
	if err != nil {
		return nil, fmt.Errorf("bench: bad glob %q: %w", pattern, err)
	}
	sort.Strings(matches)
	out := make([]NamedReport, 0, len(matches))
	for _, path := range matches {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		rep, err := ReadJSON(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", path, err)
		}
		out = append(out, NamedReport{Label: filepath.Base(path), Report: rep})
	}
	return out, nil
}

// TrendRow is one (case, algorithm, objective) triple's series across the
// loaded reports; Objective "" is the default cut objective, and Cuts holds
// the triple's own objective metric (cut, max_part_cut, or comm_volume).
// Missing measurements (triple absent, or errored in that run) are NaN for
// metrics and -1 for timings.
type TrendRow struct {
	Case, Algo string
	Objective  string
	Cuts       []float64
	NsPerOp    []int64
}

// Trend is the full aggregation: one column per report, one row per
// (case, algorithm) pair that appears in any of them.
type Trend struct {
	Labels []string
	Rows   []TrendRow
}

// NewTrend aggregates the reports in the given order.
func NewTrend(reports []NamedReport) *Trend {
	t := &Trend{}
	type key struct{ c, a, o string }
	index := map[key]int{}
	for _, nr := range reports {
		t.Labels = append(t.Labels, nr.Label)
	}
	for ri, nr := range reports {
		for _, r := range nr.Report.Results {
			k := key{r.Case, r.Algo, r.Objective}
			i, ok := index[k]
			if !ok {
				i = len(t.Rows)
				index[k] = i
				row := TrendRow{
					Case:      r.Case,
					Algo:      r.Algo,
					Objective: r.Objective,
					Cuts:      make([]float64, len(reports)),
					NsPerOp:   make([]int64, len(reports)),
				}
				for j := range row.Cuts {
					row.Cuts[j] = math.NaN()
					row.NsPerOp[j] = -1
				}
				t.Rows = append(t.Rows, row)
			}
			if r.Error == "" {
				t.Rows[i].Cuts[ri] = r.Metric()
				t.Rows[i].NsPerOp[ri] = r.NsPerOp
			}
		}
	}
	sort.Slice(t.Rows, func(i, j int) bool {
		if t.Rows[i].Case != t.Rows[j].Case {
			return t.Rows[i].Case < t.Rows[j].Case
		}
		if t.Rows[i].Algo != t.Rows[j].Algo {
			return t.Rows[i].Algo < t.Rows[j].Algo
		}
		return t.Rows[i].Objective < t.Rows[j].Objective
	})
	return t
}

// objectiveLabel renders a row's objective for table cells: the flag name, or
// "cut" for the default.
func (row TrendRow) objectiveLabel() string {
	if row.Objective == "" {
		return "cut"
	}
	return row.Objective
}

// WriteMarkdown emits one table per metric (the objective metric, then
// ns_per_op), rows per (case, algorithm, objective), columns per report
// label. Missing measurements render as "-".
func (t *Trend) WriteMarkdown(w io.Writer) error {
	write := func(metric string, cell func(row TrendRow, i int) string) error {
		if _, err := fmt.Fprintf(w, "## %s\n\n", metric); err != nil {
			return err
		}
		header := append([]string{"case", "algo", "objective"}, t.Labels...)
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(header, " | ")); err != nil {
			return err
		}
		sep := make([]string, len(header))
		for i := range sep {
			sep[i] = "---"
		}
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | ")); err != nil {
			return err
		}
		for _, row := range t.Rows {
			cells := []string{row.Case, row.Algo, row.objectiveLabel()}
			for i := range t.Labels {
				cells = append(cells, cell(row, i))
			}
			if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | ")); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintln(w)
		return err
	}
	if err := write("objective metric", func(row TrendRow, i int) string {
		if math.IsNaN(row.Cuts[i]) {
			return "-"
		}
		return fmt.Sprintf("%.0f", row.Cuts[i])
	}); err != nil {
		return err
	}
	return write("ns_per_op", func(row TrendRow, i int) string {
		if row.NsPerOp[i] < 0 {
			return "-"
		}
		return fmt.Sprintf("%d", row.NsPerOp[i])
	})
}

// WriteCSV emits the long form — one record per (report, case, algorithm)
// measurement — which plotting tools ingest directly. Missing measurements
// are omitted rather than emitted with sentinel values.
func (t *Trend) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "label,case,algo,objective,metric,ns_per_op"); err != nil {
		return err
	}
	for _, row := range t.Rows {
		for i, label := range t.Labels {
			if math.IsNaN(row.Cuts[i]) {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s,%s,%s,%s,%.0f,%d\n",
				label, row.Case, row.Algo, row.objectiveLabel(), row.Cuts[i], row.NsPerOp[i]); err != nil {
				return err
			}
		}
	}
	return nil
}
