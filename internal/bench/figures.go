package bench

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/dpga"
	"repro/internal/ga"
	"repro/internal/gen"
	"repro/internal/ibp"
	"repro/internal/partition"
	"repro/internal/stats"
)

// Figure1 renders the paper's Figure 1: row-major and shuffled row-major
// indexing of an 8x8 grid, side by side.
func Figure1() string {
	var sb strings.Builder
	sb.WriteString("Figure 1: (a) Row-Major and (b) Shuffled Row-Major Indexing for an 8x8 image\n")
	for y := uint64(0); y < 8; y++ {
		for x := uint64(0); x < 8; x++ {
			fmt.Fprintf(&sb, "%02d ", ibp.CellIndex(ibp.RowMajor, x, y, 3, 3))
		}
		sb.WriteString("   ")
		for x := uint64(0); x < 8; x++ {
			fmt.Fprintf(&sb, "%02d ", ibp.CellIndex(ibp.ShuffledRowMajor, x, y, 3, 3))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Convergence regenerates the paper's convergence comparison (its figures
// average 5 runs): best cut size versus generation for 2-point, uniform,
// KNUX, and DKNUX crossover on the 167-node mesh split into 8 parts. KNUX
// uses the IBP solution as its (static) estimate; DKNUX starts there and
// tracks the best individual. This exhibits the paper's "orders of
// magnitude" convergence claim.
func Convergence(opt Options) Figure {
	g := gen.PaperGraph(167)
	const parts = 8
	pop := opt.TotalPop
	if opt.Islands > 1 {
		pop = opt.TotalPop / opt.Islands * opt.Islands // keep divisible
	}
	ibpSeed := ibpPartition(g, parts)

	operators := []struct {
		label string
		mk    func() ga.Crossover
	}{
		{"2-point", func() ga.Crossover { return ga.KPoint{K: 2} }},
		{"uniform", func() ga.Crossover { return ga.Uniform{} }},
		{"KNUX", func() ga.Crossover { return ga.NewKNUX(ibpSeed) }},
		{"DKNUX", func() ga.Crossover { return ga.NewDKNUX(ibpSeed) }},
	}

	fig := Figure{
		ID:     "Figure C",
		Title:  "Convergence of crossover operators (167 nodes, 8 parts, mean of runs)",
		XLabel: "generation",
		YLabel: "best cut size",
	}
	for _, op := range operators {
		var runs [][]float64
		for r := 0; r < opt.Runs; r++ {
			e, err := ga.New(g, ga.Config{
				Parts:       parts,
				PopSize:     pop,
				Crossover:   op.mk(),
				EvalWorkers: opt.EvalWorkers,
				Seed:        opt.Seed + int64(r)*31,
			})
			if err != nil {
				panic(fmt.Sprintf("bench: %v", err))
			}
			e.Run(opt.Generations)
			runs = append(runs, e.Stats().BestCut)
		}
		mean := stats.MeanSeries(runs)
		s := Series{Label: op.label}
		stride := len(mean) / 20
		if stride < 1 {
			stride = 1
		}
		down := stats.Downsample(mean, stride)
		for i, v := range down {
			x := float64(i * stride)
			if i == len(down)-1 {
				x = float64(len(mean) - 1)
			}
			s.X = append(s.X, x)
			s.Y = append(s.Y, v)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Speedup regenerates the paper's DPGA scaling claim (§5: "near-linear
// speedups"): wall-clock time and solution quality versus island count at
// a fixed total population and generation budget. On a single-core host the
// time column shows overhead rather than speedup; the quality column shows
// the island model's effect on search.
func Speedup(opt Options) Figure {
	g := gen.PaperGraph(279)
	const parts = 8
	fig := Figure{
		ID:     "Figure S",
		Title:  "DPGA islands: wall-clock seconds and best cut (279 nodes, 8 parts)",
		XLabel: "islands",
		YLabel: "seconds (series time) / cut (series cut)",
	}
	ibpSeed := ibpPartition(g, parts)
	seeds := []*partition.Partition{ibpSeed}
	timeS := Series{Label: "time"}
	cutS := Series{Label: "cut"}
	for _, islands := range []int{1, 2, 4, 8, 16} {
		if opt.TotalPop/islands < 4 { // need room for elites plus offspring
			continue
		}
		start := time.Now()
		var cut float64
		if islands == 1 {
			e, err := ga.New(g, ga.Config{
				Parts:       parts,
				PopSize:     opt.TotalPop,
				Seeds:       seeds,
				Crossover:   ga.NewDKNUX(ibpSeed),
				EvalWorkers: opt.EvalWorkers,
				Seed:        opt.Seed,
			})
			if err != nil {
				panic(fmt.Sprintf("bench: %v", err))
			}
			cut = e.Run(opt.Generations).Part.CutSize(g)
		} else {
			m, err := dpga.New(g, dpga.Config{
				Base: ga.Config{
					Parts:       parts,
					PopSize:     opt.TotalPop,
					Seeds:       seeds,
					EvalWorkers: opt.EvalWorkers,
					Seed:        opt.Seed,
				},
				Islands:  islands,
				Parallel: true,
				CrossoverFactory: func(island int) ga.Crossover {
					return ga.NewDKNUX(ibpSeed)
				},
			})
			if err != nil {
				panic(fmt.Sprintf("bench: %v", err))
			}
			cut = m.Run(opt.Generations).Part.CutSize(g)
		}
		elapsed := time.Since(start).Seconds()
		timeS.X = append(timeS.X, float64(islands))
		timeS.Y = append(timeS.Y, elapsed)
		cutS.X = append(cutS.X, float64(islands))
		cutS.Y = append(cutS.Y, cut)
	}
	fig.Series = []Series{timeS, cutS}
	return fig
}

// IncrementalConvergence contrasts the two ways to repartition a grown
// graph (183+30 case, 4 parts): a GA seeded with the carried-over partition
// starts at near-final quality and repairs locally, while a GA from a
// random population spends its whole budget rediscovering structure. This
// figure makes the case for the paper's incremental seeding (§3.5) beyond
// the final-cut numbers of Tables 3 and 6.
func IncrementalConvergence(opt Options) Figure {
	base, grown := gen.IncrementalPair(gen.IncrementalCase{Base: 183, Added: 30})
	const parts = 4
	old := rsbPartition(base, parts, opt.Seed)

	fig := Figure{
		ID:     "Figure I",
		Title:  "Incremental seeding vs restart (183+30 nodes, 4 parts, mean of runs)",
		XLabel: "generation",
		YLabel: "best cut size",
	}
	variants := []struct {
		label  string
		seeded bool
	}{
		{"seeded-with-old-partition", true},
		{"random-restart", false},
	}
	for _, v := range variants {
		var runs [][]float64
		for r := 0; r < opt.Runs; r++ {
			rng := rand.New(rand.NewSource(opt.Seed + int64(r)*17))
			var seeds []*partition.Partition
			est := partition.RandomBalanced(grown.NumNodes(), parts, rng)
			if v.seeded {
				seeds = append(seeds, partition.ExtendMajorityNeighbor(old, grown))
				for i := 0; i < 4; i++ {
					seeds = append(seeds, partition.ExtendRandomBalanced(old, grown, rng))
				}
				est = seeds[0]
			}
			e, err := ga.New(grown, ga.Config{
				Parts:       parts,
				PopSize:     opt.TotalPop,
				Seeds:       seeds,
				Crossover:   ga.NewDKNUX(est),
				EvalWorkers: opt.EvalWorkers,
				Seed:        opt.Seed + int64(r)*29,
			})
			if err != nil {
				panic(fmt.Sprintf("bench: %v", err))
			}
			e.Run(opt.Generations)
			runs = append(runs, e.Stats().BestCut)
		}
		mean := stats.MeanSeries(runs)
		stride := len(mean) / 20
		if stride < 1 {
			stride = 1
		}
		down := stats.Downsample(mean, stride)
		s := Series{Label: v.label}
		for i, y := range down {
			x := float64(i * stride)
			if i == len(down)-1 {
				x = float64(len(mean) - 1)
			}
			s.X = append(s.X, x)
			s.Y = append(s.Y, y)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// seedsForEstimate exposes the IBP seed used by figure experiments; kept as
// a tiny helper so tests can assert the estimate choice.
func seedsForEstimate(n, parts int) *partition.Partition {
	return ibpPartition(gen.PaperGraph(n), parts)
}
