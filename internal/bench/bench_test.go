package bench

import (
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/partition"
)

// skipIfShort gates the paper-table regenerations — the heavy tests of this
// suite, each a full multi-run DPGA experiment — so `go test -short ./...`
// finishes in seconds while the full run still exercises every table.
func skipIfShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("paper-table regeneration skipped in -short mode")
	}
}

// tinyOptions keeps integration tests fast while exercising every code path.
func tinyOptions() Options {
	return Options{
		Runs:        1,
		Generations: 10,
		TotalPop:    32,
		Islands:     4,
		Seed:        gen.SuiteSeed,
	}
}

func TestTable1Shape(t *testing.T) {
	skipIfShort(t)
	tb := Table1(tinyOptions())
	if tb.ID != "Table 1" {
		t.Errorf("ID = %q", tb.ID)
	}
	if len(tb.Groups) != 2 {
		t.Fatalf("groups = %d, want 2 (167 and 144 nodes)", len(tb.Groups))
	}
	for _, g := range tb.Groups {
		if len(g.Rows) != 2 {
			t.Fatalf("%s: %d rows", g.Label, len(g.Rows))
		}
		for _, r := range g.Rows {
			if len(r.Values) != 3 {
				t.Fatalf("%s/%s: %d values, want 3 (parts 2,4,8)", g.Label, r.Label, len(r.Values))
			}
			for i, v := range r.Values {
				if v <= 0 {
					t.Errorf("%s/%s[%d] = %v, want positive cut", g.Label, r.Label, i, v)
				}
			}
		}
	}
}

func TestCutsGrowWithParts(t *testing.T) {
	skipIfShort(t)
	// Structural sanity shared by the paper's tables: more parts means more
	// cut edges, for both methods.
	tb := Table1(tinyOptions())
	for _, g := range tb.Groups {
		for _, r := range g.Rows {
			for i := 1; i < len(r.Values); i++ {
				if r.Values[i] < r.Values[i-1] {
					t.Errorf("%s/%s: cut decreased from %v to %v as parts doubled",
						g.Label, r.Label, r.Values[i-1], r.Values[i])
				}
			}
		}
	}
}

func TestTable2DKNUXNeverWorseThanItsSeed(t *testing.T) {
	skipIfShort(t)
	// Table 2 seeds the GA with the RSB partition, so the GA's total cut
	// can exceed RSB's only if it trades cut for balance — with RSB already
	// balanced, the GA best must have fitness >= the seed. We assert the
	// reported cut is within a small slack of RSB's.
	tb := Table2(tinyOptions())
	for _, g := range tb.Groups {
		dknux, rsb := g.Rows[0], g.Rows[1]
		for i := range dknux.Values {
			if dknux.Values[i] > rsb.Values[i]+3 {
				t.Errorf("%s parts=%d: DKNUX %v much worse than its RSB seed %v",
					g.Label, tb.Parts[i], dknux.Values[i], rsb.Values[i])
			}
		}
	}
}

func TestTable3IncludesMajorityNeighborRow(t *testing.T) {
	skipIfShort(t)
	tb := Table3(tinyOptions())
	if len(tb.Groups) != 4 {
		t.Fatalf("groups = %d", len(tb.Groups))
	}
	for _, g := range tb.Groups {
		if len(g.Rows) != 3 {
			t.Fatalf("%s: %d rows, want 3 (DKNUX, RSB, MajorityNbr)", g.Label, len(g.Rows))
		}
		for _, r := range g.Rows {
			for _, v := range r.Values {
				if v <= 0 {
					t.Errorf("%s/%s: non-positive cut %v", g.Label, r.Label, v)
				}
			}
		}
	}
}

func TestIncrementalGADominatesDeterministicInFitness(t *testing.T) {
	// The GA optimizes fitness (imbalance + cut), so the right dominance
	// check against the deterministic majority-neighbor baseline is on
	// fitness, not raw cut: the baseline seeds the population, so the GA
	// result can never have lower fitness.
	opt := tinyOptions()
	c := gen.IncrementalCase{Base: 118, Added: 21}
	base, grown := gen.IncrementalPair(c)
	for _, parts := range []int{2, 4, 8} {
		seeds, det := incrementalSeeds(base, grown, parts, opt, opt.Seed+int64(parts))
		best := runDKNUX(grown, parts, partition.TotalCut, seeds, opt, opt.Seed+int64(parts))
		fGA := best.Fitness(grown, partition.TotalCut)
		fDet := det.Fitness(grown, partition.TotalCut)
		if fGA < fDet {
			t.Errorf("parts=%d: GA fitness %v below deterministic seed %v", parts, fGA, fDet)
		}
	}
}

func TestTable4Shape(t *testing.T) {
	skipIfShort(t)
	tb := Table4(tinyOptions())
	if len(tb.Groups) != 5 || len(tb.Parts) != 2 {
		t.Fatalf("table 4 shape: %d groups, %d parts", len(tb.Groups), len(tb.Parts))
	}
	for _, g := range tb.Groups {
		for _, r := range g.Rows {
			for _, v := range r.Values {
				if v <= 0 {
					t.Errorf("%s/%s: non-positive worst cut %v", g.Label, r.Label, v)
				}
			}
		}
	}
}

func TestTable5And6Shapes(t *testing.T) {
	skipIfShort(t)
	t5 := Table5(tinyOptions())
	if len(t5.Groups) != 7 {
		t.Errorf("table 5 groups = %d, want 7", len(t5.Groups))
	}
	t6 := Table6(tinyOptions())
	if len(t6.Groups) != len(gen.PaperIncrementalCases) {
		t.Errorf("table 6 groups = %d, want %d", len(t6.Groups), len(gen.PaperIncrementalCases))
	}
}

func TestTableFormat(t *testing.T) {
	skipIfShort(t)
	tb := Table1(tinyOptions())
	out := tb.Format()
	for _, want := range []string{"Table 1", "Number of Parts", "167 Nodes", "Cut Using DKNUX", "Cut Using RSB"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
}

func TestFigure1MatchesPaper(t *testing.T) {
	out := Figure1()
	// Spot-check distinctive cells from the paper's printed matrices.
	for _, want := range []string{"00 01 02 03", "56 57 58 59", "42 43 46 47"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 1 output missing %q:\n%s", want, out)
		}
	}
}

func TestConvergenceFigure(t *testing.T) {
	opt := tinyOptions()
	opt.Generations = 15
	fig := Convergence(opt)
	if len(fig.Series) != 4 {
		t.Fatalf("series = %d, want 4 operators", len(fig.Series))
	}
	labels := map[string]bool{}
	for _, s := range fig.Series {
		labels[s.Label] = true
		if len(s.X) == 0 || len(s.X) != len(s.Y) {
			t.Errorf("series %s malformed: %d/%d points", s.Label, len(s.X), len(s.Y))
		}
		// Cuts are positive.
		for _, y := range s.Y {
			if y <= 0 {
				t.Errorf("series %s has non-positive cut %v", s.Label, y)
			}
		}
	}
	for _, want := range []string{"2-point", "uniform", "KNUX", "DKNUX"} {
		if !labels[want] {
			t.Errorf("missing series %q", want)
		}
	}
	if out := fig.Format(); !strings.Contains(out, "DKNUX") {
		t.Error("figure Format missing series")
	}
}

func TestKNUXConvergesFasterThanTwoPoint(t *testing.T) {
	// The paper's headline claim, asserted on the convergence figure at a
	// modest budget: final best cut of DKNUX < final best cut of 2-point.
	opt := tinyOptions()
	opt.Generations = 30
	opt.TotalPop = 48
	fig := Convergence(opt)
	finals := map[string]float64{}
	for _, s := range fig.Series {
		finals[s.Label] = s.Y[len(s.Y)-1]
	}
	if finals["DKNUX"] >= finals["2-point"] {
		t.Errorf("DKNUX final %v not better than 2-point %v", finals["DKNUX"], finals["2-point"])
	}
	if finals["KNUX"] >= finals["2-point"] {
		t.Errorf("KNUX final %v not better than 2-point %v", finals["KNUX"], finals["2-point"])
	}
}

func TestSpeedupFigure(t *testing.T) {
	opt := tinyOptions()
	opt.Generations = 5
	fig := Speedup(opt)
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	timeS, cutS := fig.Series[0], fig.Series[1]
	if timeS.Label != "time" || cutS.Label != "cut" {
		t.Errorf("labels %q %q", timeS.Label, cutS.Label)
	}
	if len(timeS.X) < 3 {
		t.Errorf("only %d island counts measured", len(timeS.X))
	}
	for _, y := range timeS.Y {
		if y <= 0 {
			t.Errorf("non-positive time %v", y)
		}
	}
}

func TestIncrementalConvergenceFigure(t *testing.T) {
	opt := tinyOptions()
	opt.Generations = 12
	fig := IncrementalConvergence(opt)
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	seeded, restart := fig.Series[0], fig.Series[1]
	if seeded.Label != "seeded-with-old-partition" || restart.Label != "random-restart" {
		t.Fatalf("labels %q %q", seeded.Label, restart.Label)
	}
	// The whole point: the seeded run starts at a far better cut than the
	// random restart.
	if seeded.Y[0] >= restart.Y[0] {
		t.Errorf("seeded initial cut %v not better than restart %v", seeded.Y[0], restart.Y[0])
	}
	// And stays at least as good at the end of this short budget.
	if seeded.Y[len(seeded.Y)-1] > restart.Y[len(restart.Y)-1] {
		t.Errorf("seeded final %v worse than restart %v",
			seeded.Y[len(seeded.Y)-1], restart.Y[len(restart.Y)-1])
	}
}

func TestParamSweepFigure(t *testing.T) {
	opt := tinyOptions()
	opt.Generations = 8
	fig := ParamSweep(opt)
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d, want 2 (pc sweep, pm sweep)", len(fig.Series))
	}
	if len(fig.Series[0].X) != 4 || len(fig.Series[1].X) != 5 {
		t.Errorf("sweep points: %d pc, %d pm", len(fig.Series[0].X), len(fig.Series[1].X))
	}
	for _, s := range fig.Series {
		for i, y := range s.Y {
			if y <= 0 {
				t.Errorf("%s[%d]: non-positive cut %v", s.Label, i, y)
			}
		}
	}
}

func TestOptionsPresets(t *testing.T) {
	p := Paper()
	if p.TotalPop != 320 || p.Islands != 16 || p.Runs != 5 {
		t.Errorf("Paper() = %+v, must match the paper's DPGA settings", p)
	}
	q := Quick()
	if q.TotalPop >= p.TotalPop || q.Generations >= p.Generations {
		t.Error("Quick() not smaller than Paper()")
	}
}

func TestSeedsForEstimateBalanced(t *testing.T) {
	p := seedsForEstimate(144, 8)
	if !p.Balanced() {
		t.Error("IBP estimate not balanced")
	}
	if p.Parts != 8 {
		t.Errorf("parts = %d", p.Parts)
	}
}
