package bench

import (
	"os"
	"strings"
	"testing"
)

// loadFMParArtifact reads the committed parallel-FM report: the fmpar suite
// (scale100k + scale1M RGG) run width-labeled at Workers 1 and 4, the
// acceptance artifact of the colored-schedule FM work.
func loadFMParArtifact(t *testing.T) *Report {
	t.Helper()
	f, err := os.Open("../../bench/BENCH_fmpar.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rep, err := ReadJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// The committed artifact must carry both widths of multilevel-fm for both
// fmpar cases, with identical quality across widths (the bit-identity
// contract, frozen into the artifact) and a populated FM-phase breakdown
// (the number the speedup claim is read from). Regenerating the artifact
// with a width leak or with the stats plumbing disconnected fails here, not
// in review.
func TestFMParArtifactWidthsAndBreakdown(t *testing.T) {
	rep := loadFMParArtifact(t)

	type key struct{ c, a string }
	res := map[key]Result{}
	for _, r := range rep.Results {
		if r.Error != "" {
			t.Fatalf("%s/%s errored: %s", r.Case, r.Algo, r.Error)
		}
		res[key{r.Case, r.Algo}] = r
	}
	for _, c := range []string{"rgg-100000-p8", "rgg-1000000-p8"} {
		w1, ok1 := res[key{c, "multilevel-fm@w1"}]
		w4, ok4 := res[key{c, "multilevel-fm@w4"}]
		if !ok1 || !ok4 {
			t.Fatalf("%s: artifact missing a width row (w1=%v w4=%v)", c, ok1, ok4)
		}
		if w1.Workers != 1 || w4.Workers != 4 {
			t.Errorf("%s: workers fields %d/%d, want 1/4", c, w1.Workers, w4.Workers)
		}
		if w1.Cut != w4.Cut || w1.MaxPartCut != w4.MaxPartCut || w1.Balance != w4.Balance {
			t.Errorf("%s: quality differs across widths: cut %v/%v maxcut %v/%v balance %v/%v",
				c, w1.Cut, w4.Cut, w1.MaxPartCut, w4.MaxPartCut, w1.Balance, w4.Balance)
		}
		for _, r := range []Result{w1, w4} {
			if r.RefineFMNS <= 0 {
				t.Errorf("%s/%s: refine_fm_ns not populated", c, r.Algo)
			}
			if r.RefineNS < r.RefineFMNS+r.RefineClimbNS+r.RefineLPNS {
				t.Errorf("%s/%s: refine breakdown exceeds refine_ns total", c, r.Algo)
			}
		}
	}
	// Every row of this artifact is width-labeled; an unlabeled row would
	// silently collide with the plain suites' comparison keys.
	for _, r := range rep.Results {
		if !strings.Contains(r.Algo, "@w") {
			t.Errorf("unlabeled algo %q in fmpar artifact", r.Algo)
		}
	}
}
