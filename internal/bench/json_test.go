package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/algo"
	"repro/internal/gen"
)

func TestRunJSONSmokeAndRoundTrip(t *testing.T) {
	cases := []Case{{Name: "mesh-120-p4", Graph: gen.Mesh(120, 1), Parts: 4}}
	rep := RunJSON("unit", cases, []string{"grow", "kl", "multilevel-kl"}, algo.Options{Seed: 7}, 1)
	if len(rep.Results) != 3 {
		t.Fatalf("want 3 results, got %d", len(rep.Results))
	}
	for _, r := range rep.Results {
		if r.Error != "" {
			t.Fatalf("%s/%s unexpectedly failed: %s", r.Case, r.Algo, r.Error)
		}
		if r.Cut <= 0 || r.Balance < 1 || r.NsPerOp <= 0 || r.Nodes != 120 {
			t.Errorf("%s/%s has implausible fields: %+v", r.Case, r.Algo, r)
		}
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Suite != "unit" || len(back.Results) != 3 || back.Results[1].Cut != rep.Results[1].Cut {
		t.Errorf("round trip mangled the report: %+v", back)
	}
}

func TestRunJSONRecordsConstraintErrors(t *testing.T) {
	// rsb cannot split into 3 parts; the suite must record the rejection and
	// keep going rather than abort.
	rep := RunJSON("unit", []Case{{Name: "mesh-50-p3", Graph: gen.Mesh(50, 2), Parts: 3}},
		[]string{"rsb", "kl"}, algo.Options{Seed: 1}, 1)
	if rep.Results[0].Error == "" {
		t.Error("rsb with 3 parts should have been recorded as an error")
	}
	if !strings.Contains(rep.Results[0].Error, "power-of-two") {
		t.Errorf("unexpected error text: %s", rep.Results[0].Error)
	}
	if rep.Results[1].Error != "" || rep.Results[1].Cut == 0 {
		t.Errorf("kl should have succeeded: %+v", rep.Results[1])
	}
}

func TestReadJSONRejectsWrongSchema(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`{"schema":"something-else/v9"}`)); err == nil {
		t.Error("wrong schema accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

func report(results ...Result) *Report {
	return &Report{Schema: SchemaVersion, Results: results}
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := report(
		Result{Case: "a", Algo: "kl", Cut: 100},
		Result{Case: "a", Algo: "fm", Cut: 90},
		Result{Case: "b", Algo: "kl", Cut: 50},
	)
	cur := report(
		Result{Case: "a", Algo: "kl", Cut: 112}, // +12%: pair regression
		Result{Case: "a", Algo: "fm", Cut: 102}, // +13% and new best of case: two findings
		Result{Case: "b", Algo: "kl", Cut: 49},  // improvement
	)
	regs := Compare(base, cur, 0.10)
	if len(regs) != 3 {
		t.Fatalf("want 3 regressions (2 pairs + best-of-case), got %d: %v", len(regs), regs)
	}
	if regs[0].Algo != "best" || regs[0].Case != "a" || regs[0].BaselineCut != 90 || regs[0].Cut != 102 {
		t.Errorf("want best-of-case regression 90 -> 102 for a, got %+v", regs[0])
	}
	if regs[1].Algo != "fm" || regs[2].Algo != "kl" {
		t.Errorf("want a/fm and a/kl pair regressions, got %+v", regs[1:])
	}
}

func TestCompareBestOfCaseSurvivesAlgorithmSwap(t *testing.T) {
	// A new algorithm takes over the best cut: no regression even though a
	// pair got worse, as long as the case's best cut held.
	base := report(
		Result{Case: "a", Algo: "kl", Cut: 100},
	)
	cur := report(
		Result{Case: "a", Algo: "kl", Cut: 120},
		Result{Case: "a", Algo: "multilevel-kl", Cut: 80},
	)
	regs := Compare(base, cur, 0.10)
	if len(regs) != 1 || regs[0].Algo != "kl" {
		t.Fatalf("want only the kl pair regression, got %v", regs)
	}
}

func TestCompareNarrowedRunIgnoresUnranBaselineBest(t *testing.T) {
	// The baseline's best cut for a case came from an algorithm the current
	// (narrowed, e.g. -algos kl) run never executed: the run must only be
	// held to the cuts of what it actually measured.
	base := report(
		Result{Case: "a", Algo: "kl", Cut: 132},
		Result{Case: "a", Algo: "multilevel-rsb", Cut: 95},
	)
	cur := report(
		Result{Case: "a", Algo: "kl", Cut: 132},
	)
	if regs := Compare(base, cur, 0.10); len(regs) != 0 {
		t.Errorf("narrowed run flagged spurious regressions: %v", regs)
	}
}

func TestCompareIgnoresMissingPairsAndErrors(t *testing.T) {
	base := report(
		Result{Case: "a", Algo: "kl", Cut: 100},
		Result{Case: "a", Algo: "rsb", Error: "skipped"},
	)
	cur := report(
		Result{Case: "a", Algo: "kl", Cut: 100},
		Result{Case: "a", Algo: "rsb", Cut: 9999, Error: "skipped"},
		Result{Case: "new-case", Algo: "kl", Cut: 12345},
	)
	if regs := Compare(base, cur, 0.10); len(regs) != 0 {
		t.Errorf("want no regressions, got %v", regs)
	}
}

func TestCompareFlagsNewFailures(t *testing.T) {
	// An algorithm that produced a cut in the baseline but errors now must
	// fail the gate, even though no cut is comparable.
	base := report(
		Result{Case: "a", Algo: "multilevel-kl", Cut: 978},
		Result{Case: "a", Algo: "rsb", Error: "skipped"}, // errored in both: fine
	)
	cur := report(
		Result{Case: "a", Algo: "multilevel-kl", Error: "boom"},
		Result{Case: "a", Algo: "rsb", Error: "skipped"},
	)
	regs := Compare(base, cur, 0.10)
	if len(regs) != 1 || regs[0].Failed != "boom" || regs[0].BaselineCut != 978 {
		t.Fatalf("want one hard-failure regression, got %v", regs)
	}
	if s := regs[0].String(); !strings.Contains(s, "FAILED") {
		t.Errorf("failure regression should render as FAILED: %s", s)
	}
}

func TestCompareZeroCutBaseline(t *testing.T) {
	base := report(Result{Case: "a", Algo: "kl", Cut: 0})
	cur := report(Result{Case: "a", Algo: "kl", Cut: 3})
	if regs := Compare(base, cur, 0.10); len(regs) == 0 {
		t.Error("nonzero cut against zero baseline must regress")
	}
}
