package bench

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func trendReport(results ...Result) *Report {
	return &Report{Schema: SchemaVersion, Suite: "small", Results: results}
}

func writeReport(t *testing.T, dir, name string, rep *Report) {
	t.Helper()
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := rep.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
}

func TestTrendAggregatesAcrossReports(t *testing.T) {
	dir := t.TempDir()
	writeReport(t, dir, "bench-001.json", trendReport(
		Result{Case: "mesh", Algo: "kl", Cut: 100, NsPerOp: 5000},
		Result{Case: "mesh", Algo: "fm", Cut: 90, NsPerOp: 9000},
	))
	writeReport(t, dir, "bench-002.json", trendReport(
		Result{Case: "mesh", Algo: "kl", Cut: 95, NsPerOp: 4000},
		Result{Case: "mesh", Algo: "fm", Error: "broke"},
		Result{Case: "grid", Algo: "kl", Cut: 40, NsPerOp: 1000},
	))
	// Non-matching file must be ignored.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	reports, err := LoadReports(dir, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("loaded %d reports, want 2", len(reports))
	}
	if reports[0].Label != "bench-001.json" || reports[1].Label != "bench-002.json" {
		t.Fatalf("labels not in lexical order: %v, %v", reports[0].Label, reports[1].Label)
	}

	tr := NewTrend(reports)
	if len(tr.Rows) != 3 {
		t.Fatalf("%d series, want 3", len(tr.Rows))
	}
	// Rows sorted by (case, algo): grid/kl, mesh/fm, mesh/kl.
	if tr.Rows[0].Case != "grid" || tr.Rows[2].Algo != "kl" {
		t.Fatalf("unexpected row order: %+v", tr.Rows)
	}
	meshKL := tr.Rows[2]
	if meshKL.Cuts[0] != 100 || meshKL.Cuts[1] != 95 {
		t.Errorf("mesh/kl cuts = %v", meshKL.Cuts)
	}
	meshFM := tr.Rows[1]
	if meshFM.Cuts[0] != 90 || !math.IsNaN(meshFM.Cuts[1]) {
		t.Errorf("mesh/fm cuts = %v; errored run must be missing", meshFM.Cuts)
	}
	gridKL := tr.Rows[0]
	if !math.IsNaN(gridKL.Cuts[0]) || gridKL.Cuts[1] != 40 {
		t.Errorf("grid/kl cuts = %v; pair absent from first run must be missing", gridKL.Cuts)
	}

	var md strings.Builder
	if err := tr.WriteMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"## objective metric", "## ns_per_op", "| mesh | kl | cut | 100 | 95 |", "| mesh | fm | cut | 90 | - |"} {
		if !strings.Contains(md.String(), want) {
			t.Errorf("markdown missing %q:\n%s", want, md.String())
		}
	}

	var csv strings.Builder
	if err := tr.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	// Header + 4 present measurements (missing ones omitted).
	if len(lines) != 5 {
		t.Fatalf("CSV has %d lines, want 5:\n%s", len(lines), csv.String())
	}
	if lines[0] != "label,case,algo,objective,metric,ns_per_op" {
		t.Errorf("CSV header = %q", lines[0])
	}
	if !strings.Contains(csv.String(), "bench-002.json,mesh,kl,cut,95,4000") {
		t.Errorf("CSV missing expected record:\n%s", csv.String())
	}
}

func TestLoadReportsRejectsForeignSchema(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bench-bad.json"),
		[]byte(`{"schema":"other/v9","results":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadReports(dir, ""); err == nil {
		t.Fatal("foreign schema accepted")
	}
}

func TestCompareExact(t *testing.T) {
	base := trendReport(
		Result{Case: "mesh", Algo: "kl", Cut: 100},
		Result{Case: "mesh", Algo: "fm", Cut: 90},
		Result{Case: "mesh", Algo: "ibp", Error: "no coords"},
		Result{Case: "mesh", Algo: "old-only", Cut: 5},
	)
	// Identical shared pairs: clean.
	if diffs := CompareExact(base, base); len(diffs) != 0 {
		t.Fatalf("self-compare reported %v", diffs)
	}
	cur := trendReport(
		Result{Case: "mesh", Algo: "kl", Cut: 99},             // improvement: still a difference
		Result{Case: "mesh", Algo: "fm", Error: "exploded"},   // was fine, now fails
		Result{Case: "mesh", Algo: "ibp", Error: "no coords"}, // errors on both sides: fine
		Result{Case: "mesh", Algo: "new-only", Cut: 1},        // unshared: ignored
	)
	diffs := CompareExact(base, cur)
	if len(diffs) != 2 {
		t.Fatalf("got %d diffs, want 2: %v", len(diffs), diffs)
	}
	for _, d := range diffs {
		if !strings.Contains(d, "mesh/") {
			t.Errorf("unexpected diff %q", d)
		}
	}
	// Zero shared pairs must fail, not pass vacuously: a mis-pointed
	// baseline or renamed suite would otherwise sail through the gate.
	disjoint := trendReport(Result{Case: "other", Algo: "kl", Cut: 1})
	if diffs := CompareExact(base, disjoint); len(diffs) == 0 {
		t.Error("disjoint reports compared clean; the gate passed while comparing nothing")
	}
}
