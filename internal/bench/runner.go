package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/dpga"
	"repro/internal/ga"
	"repro/internal/graph"
	"repro/internal/partition"
)

// runDKNUX executes opt.Runs independent DPGA runs with the DKNUX operator
// and returns the best partition found (the paper's tables report the best
// of 5 runs). seeds optionally initializes the populations (IBP, RSB, or a
// carried-over incremental partition); with no seeds the populations are
// random, matching Table 4's "randomly initialized population".
func runDKNUX(g *graph.Graph, parts int, obj partition.Objective,
	seeds []*partition.Partition, opt Options, caseSeed int64) *partition.Partition {

	var best *partition.Partition
	bestFit := 0.0
	for r := 0; r < opt.Runs; r++ {
		p := runOnce(g, parts, obj, seeds, opt, caseSeed+int64(r)*104729)
		if f := p.Fitness(g, obj); best == nil || f > bestFit {
			best, bestFit = p, f
		}
	}
	return best
}

// runOnce is a single DPGA (or single-population) DKNUX run.
func runOnce(g *graph.Graph, parts int, obj partition.Objective,
	seeds []*partition.Partition, opt Options, runSeed int64) *partition.Partition {

	base := ga.Config{
		Parts:       parts,
		Objective:   obj,
		PopSize:     opt.TotalPop,
		Seeds:       seeds,
		HillClimb:   opt.HillClimb,
		EvalWorkers: opt.EvalWorkers,
		Seed:        runSeed,
	}
	estimate := func(island int) *partition.Partition {
		if len(seeds) > 0 {
			return seeds[island%len(seeds)]
		}
		rng := rand.New(rand.NewSource(runSeed + int64(island)))
		return partition.RandomBalanced(g.NumNodes(), parts, rng)
	}
	if opt.Islands <= 1 {
		base.Crossover = ga.NewDKNUX(estimate(0))
		e, err := ga.New(g, base)
		if err != nil {
			panic(fmt.Sprintf("bench: %v", err))
		}
		return e.Run(opt.Generations).Part
	}
	m, err := dpga.New(g, dpga.Config{
		Base:    base,
		Islands: opt.Islands,
		CrossoverFactory: func(island int) ga.Crossover {
			return ga.NewDKNUX(estimate(island))
		},
	})
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	return m.Run(opt.Generations).Part
}
