// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation section from the deterministic mesh
// suite (see README.md for the experiment index).
//
// The paper's tables report the best of 5 runs; figures average 5 runs.
// Options controls run count, GA budget, and population layout so the same
// experiments run as fast smoke tests (Quick), as testing.B benchmarks, or
// at full paper scale (Paper) from cmd/experiments.
package bench

import "repro/internal/gen"

// Options sizes an experiment.
type Options struct {
	Runs        int  // independent GA runs per cell (best is reported)
	Generations int  // generations per run
	TotalPop    int  // total population across islands
	Islands     int  // subpopulations (1 = single population)
	HillClimb   bool // boundary hill climbing on offspring
	EvalWorkers int  // parallel fitness evaluation width per engine (0 = auto)
	Seed        int64
}

// Paper returns the configuration of the paper's experiments: population
// 320 over 16 hypercube-connected subpopulations, best of 5 runs.
func Paper() Options {
	return Options{
		Runs:        5,
		Generations: 250,
		TotalPop:    320,
		Islands:     16,
		Seed:        gen.SuiteSeed,
	}
}

// Quick returns a reduced configuration for tests and benchmarks: the same
// code paths at a fraction of the budget.
func Quick() Options {
	return Options{
		Runs:        2,
		Generations: 40,
		TotalPop:    64,
		Islands:     4,
		Seed:        gen.SuiteSeed,
	}
}
