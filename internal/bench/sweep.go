package bench

import (
	"fmt"

	"repro/internal/ga"
	"repro/internal/gen"
	"repro/internal/stats"
)

// ParamSweep is a sensitivity analysis around the paper's GA parameters
// (pc = 0.7, pm = 0.01): it sweeps the crossover rate and the mutation rate
// independently (holding the other at the paper's value) and reports the
// mean final cut over opt.Runs runs on the 144-node mesh split 4 ways. This
// justifies adopting the paper's settings as defaults.
func ParamSweep(opt Options) Figure {
	g := gen.PaperGraph(144)
	const parts = 4
	ibpSeed := ibpPartition(g, parts)

	run := func(pc, pm float64, seed int64) float64 {
		e, err := ga.New(g, ga.Config{
			Parts:       parts,
			PopSize:     opt.TotalPop,
			Pc:          pc,
			Pm:          pm,
			Crossover:   ga.NewDKNUX(ibpSeed),
			EvalWorkers: opt.EvalWorkers,
			Seed:        seed,
		})
		if err != nil {
			panic(fmt.Sprintf("bench: %v", err))
		}
		return e.Run(opt.Generations).Part.CutSize(g)
	}
	mean := func(pc, pm float64) float64 {
		var cuts []float64
		for r := 0; r < opt.Runs; r++ {
			cuts = append(cuts, run(pc, pm, opt.Seed+int64(r)*61))
		}
		return stats.Summarize(cuts).Mean
	}

	fig := Figure{
		ID:     "Figure P",
		Title:  "Parameter sensitivity around the paper's pc=0.7, pm=0.01 (144 nodes, 4 parts)",
		XLabel: "parameter value",
		YLabel: "mean final cut",
	}
	pcS := Series{Label: "crossover rate pc (pm=0.01)"}
	for _, pc := range []float64{0.3, 0.5, 0.7, 0.9} {
		pcS.X = append(pcS.X, pc)
		pcS.Y = append(pcS.Y, mean(pc, 0.01))
	}
	pmS := Series{Label: "mutation rate pm (pc=0.7)"}
	for _, pm := range []float64{0.001, 0.005, 0.01, 0.05, 0.1} {
		pmS.X = append(pmS.X, pm)
		pmS.Y = append(pmS.Y, mean(0.7, pm))
	}
	fig.Series = []Series{pcS, pmS}
	return fig
}
