package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"repro/internal/algo"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/multilevel"
	"repro/internal/partition"
)

// SchemaVersion identifies the JSON layout of Report. Bump it on any
// incompatible change so downstream tooling (the CI regression gate, perf
// dashboards) can refuse mixed comparisons instead of misreading fields.
const SchemaVersion = "repro-bench/v1"

// Result is one (case, algorithm) measurement of a benchmark run. Quality
// numbers (cut, balance) are deterministic for a fixed seed; timing numbers
// are environment-dependent and excluded from regression comparisons.
type Result struct {
	Case  string `json:"case"`
	Algo  string `json:"algo"`
	Nodes int    `json:"nodes"`
	Edges int    `json:"edges"`
	Parts int    `json:"parts"`
	Seed  int64  `json:"seed"`
	// Objective is the flag name of the objective the run optimized;
	// empty means "cut" (the default), so every pre-objective baseline
	// parses — and compares — unchanged.
	Objective string `json:"objective,omitempty"`

	Cut         float64 `json:"cut"`                   // Σ_q C(q)/2: total cut weight
	MaxPartCut  float64 `json:"max_part_cut"`          // max_q C(q): worst-part cost
	CommVolume  float64 `json:"comm_volume,omitempty"` // Σ_q V(q): total communication volume
	ImbalanceSq float64 `json:"imbalance_sq"`          // Σ_q (W(q)−W/n)²
	Balance     float64 `json:"balance"`               // max part weight / ideal; 1.0 is perfect

	WallNS  int64 `json:"wall_ns"`   // total wall time of Repeat runs
	NsPerOp int64 `json:"ns_per_op"` // WallNS / Repeat
	Repeat  int   `json:"repeat"`
	// BytesAlloc and Allocs are the heap bytes and allocation count one run
	// charged to this (case, algo) pair — runtime.MemStats TotalAlloc/Mallocs
	// deltas across the measurement divided by Repeat. They make allocation
	// regressions machine-checkable the same way cut regressions are; like
	// the timing fields they are environment-dependent (GC timing, worker
	// count) and never gated exactly, but unlike wall time they are stable
	// enough to hold to a coarse ratio. Omitted (zero) in pre-instrumentation
	// baselines, which therefore parse and compare unchanged.
	BytesAlloc int64 `json:"bytes_alloc,omitempty"`
	Allocs     int64 `json:"allocs,omitempty"`
	// Workers is the execution width the measurement was pinned to; omitted
	// (zero) when the runner left it auto. The width-labeled reports
	// (RunJSONWidths) pin it alongside the "@wN" algo label, which is what
	// makes a committed width-vs-width artifact self-describing.
	Workers int `json:"workers,omitempty"`
	// The refine_*_ns fields break a multilevel run's refine phase down by
	// refiner family (multilevel.Stats of the last measured run): total,
	// label-propagation sweeps, KL colored climbs + rebalance, and FM
	// passes. Omitted (zero) for non-multilevel algorithms and for
	// pre-instrumentation baselines; like every timing field they are
	// environment-dependent and never gated.
	RefineNS      int64  `json:"refine_ns,omitempty"`
	RefineLPNS    int64  `json:"refine_lp_ns,omitempty"`
	RefineClimbNS int64  `json:"refine_climb_ns,omitempty"`
	RefineFMNS    int64  `json:"refine_fm_ns,omitempty"`
	Error         string `json:"error,omitempty"` // non-empty if the algorithm rejected the case
}

// Metric returns the result's value of the objective it optimized — Cut for
// the default, MaxPartCut for "maxcut", CommVolume for "commvol" — the number
// regression comparisons hold it to.
func (r Result) Metric() float64 {
	switch r.Objective {
	case "maxcut":
		return r.MaxPartCut
	case "commvol":
		return r.CommVolume
	default:
		return r.Cut
	}
}

// MetricName names the compared quantity for human-readable messages.
func (r Result) MetricName() string {
	switch r.Objective {
	case "maxcut":
		return "max_part_cut"
	case "commvol":
		return "comm_volume"
	default:
		return "cut"
	}
}

// Report is the machine-readable artifact a benchmark run emits; CI uploads
// it and diffs Cut against a checked-in baseline.
type Report struct {
	Schema    string   `json:"schema"`
	Suite     string   `json:"suite"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	Results   []Result `json:"results"`
}

// Case is one graph instance of a benchmark suite.
type Case struct {
	Name  string
	Graph *graph.Graph
	Parts int
}

// SmallSuite is the fixed-seed suite the CI bench job runs on every push:
// small enough to finish in seconds, varied enough (triangulated mesh,
// structured grid, larger mesh at higher part count) to catch quality
// regressions in any algorithm family.
func SmallSuite() []Case {
	return []Case{
		{Name: "mesh-400-p4", Graph: gen.Mesh(400, gen.SuiteSeed+400), Parts: 4},
		{Name: "grid-32x32-p4", Graph: gen.Grid(32, 32), Parts: 4},
		{Name: "mesh-1500-p8", Graph: gen.Mesh(1500, gen.SuiteSeed+1500), Parts: 8},
	}
}

// ScaleSuite is the ~10k-node suite demonstrating the multilevel speed/
// quality win over flat refinement; heavier, run on demand and archived as
// BENCH JSON.
func ScaleSuite() []Case {
	return []Case{
		{Name: "mesh-10000-p8", Graph: gen.Mesh(10000, gen.SuiteSeed+10000), Parts: 8},
	}
}

// DiverseSuite stresses structure the mesh suites cannot: a power-law graph
// (hubs concentrate cut weight and defeat purely local refinement), a random
// geometric graph (high clustering, ragged boundaries), and a 3-D grid
// (the smallest separator grows quadratically with side length, unlike the
// 2-D suites' linear ones). All fixed-seed, like every suite.
func DiverseSuite() []Case {
	return []Case{
		{Name: "powerlaw-3000-p8", Graph: gen.PowerLaw(3000, 3, gen.SuiteSeed+3000), Parts: 8},
		{Name: "rgg-2000-p8", Graph: gen.RandomGeometric(rand.New(rand.NewSource(gen.SuiteSeed+2000)), 2000, 0.05), Parts: 8},
		{Name: "grid3d-12-p8", Graph: gen.Grid3D(12, 12, 12), Parts: 8},
	}
}

// WeightedSuite exercises skewed node weights end to end, making the
// weight-aware contracts (kl.Rebalance balancing weight rather than node
// count, weighted coarse levels) load-bearing in CI: a regression to
// count-based balancing moves cuts and balance on these cases immediately.
// Weights follow a Zipf law — a few nodes tens of times heavier than the
// unit majority.
func WeightedSuite() []Case {
	return []Case{
		{Name: "mesh-2000-skew-p8", Graph: gen.SkewWeights(gen.Mesh(2000, gen.SuiteSeed+2000), gen.SuiteSeed, 48), Parts: 8},
		{Name: "grid3d-10-skew-p4", Graph: gen.SkewWeights(gen.Grid3D(10, 10, 10), gen.SuiteSeed+1, 32), Parts: 4},
	}
}

// Scale100kSuite is the 100k-node suite: a random geometric graph at the
// scale the grid-bucketed generator made cheap (PR 4) and the Lanczos
// iteration budget made safe to gate (rsb's per-level solves are bounded, so
// the suite cannot spin). It exercises the parallel V-cycle end to end —
// fifteen-odd coarsening levels and the full parallel uncoarsening phase —
// plus the flat refiners and spectral bisection at six-figure node counts.
func Scale100kSuite() []Case {
	return []Case{
		{Name: "rgg-100000-p8", Graph: gen.RandomGeometric(rand.New(rand.NewSource(gen.SuiteSeed+100000)), 100000, 0.005), Parts: 8},
	}
}

// Scale1MSuite is the million-node tier: a 1M-node random geometric graph
// (radius chosen so expected degree ≈ n·π·r² ≈ 8, matching the 100k case's
// density) and a 1M-node power-law graph whose hubs stress the matching and
// refinement paths differently than the RGG's uniform locality. This is the
// scale where the V-cycle is allocation- and bandwidth-bound rather than
// compute-bound; the committed BENCH_scale1M.json gates the arena layer in CI
// (multilevel-kl only — flat refiners take minutes at this size).
func Scale1MSuite() []Case {
	return []Case{
		{Name: "rgg-1000000-p8", Graph: gen.RandomGeometric(rand.New(rand.NewSource(gen.SuiteSeed+1000000)), 1000000, 0.0016), Parts: 8},
		{Name: "powerlaw-1000000-p8", Graph: gen.PowerLaw(1000000, 4, gen.SuiteSeed+1000001), Parts: 8},
	}
}

// FMParSuite is the parallel-FM measurement pair: the scale100k and scale1M
// RGG cases (same generators and seeds, so cuts are comparable across
// artifacts), both above DefaultFMParThreshold so multilevel-fm refines
// through the deterministic-parallel colored schedule on every uncoarsened
// level that matters. The committed BENCH_fmpar.json runs it width-labeled
// (RunJSONWidths, Workers 1 vs 4): the @w1/@w4 rows pin cross-width cut
// identity and record the refine_fm_ns breakdown the speedup claim reads.
func FMParSuite() []Case {
	return []Case{
		{Name: "rgg-100000-p8", Graph: gen.RandomGeometric(rand.New(rand.NewSource(gen.SuiteSeed+100000)), 100000, 0.005), Parts: 8},
		{Name: "rgg-1000000-p8", Graph: gen.RandomGeometric(rand.New(rand.NewSource(gen.SuiteSeed+1000000)), 1000000, 0.0016), Parts: 8},
	}
}

// Scale10MSuite is the ten-million-node stretch case. It is never gated in
// per-push CI — only the scheduled benchtrend workflow runs it — so there is
// no committed baseline; the point is a long-horizon trend line at the scale
// the ROADMAP's north star names.
func Scale10MSuite() []Case {
	return []Case{
		{Name: "rgg-10000000-p8", Graph: gen.RandomGeometric(rand.New(rand.NewSource(gen.SuiteSeed+10000000)), 10000000, 0.0005), Parts: 8},
	}
}

// SuiteByName maps the -suite flag to a suite constructor.
func SuiteByName(name string) ([]Case, error) {
	switch name {
	case "small":
		return SmallSuite(), nil
	case "scale":
		return ScaleSuite(), nil
	case "scale100k":
		return Scale100kSuite(), nil
	case "scale1M":
		return Scale1MSuite(), nil
	case "scale10M":
		return Scale10MSuite(), nil
	case "diverse":
		return DiverseSuite(), nil
	case "weighted":
		return WeightedSuite(), nil
	case "fmpar":
		return FMParSuite(), nil
	default:
		return nil, fmt.Errorf("bench: unknown suite %q (available: small, scale, scale100k, scale1M, scale10M, diverse, weighted, fmpar)", name)
	}
}

// DefaultJSONAlgos is the algorithm set the JSON benchmark measures when the
// caller does not narrow it: every deterministic flat heuristic, the
// spectral and geometric baselines, and the multilevel pipelines. The GA
// family is opt-in (pass it explicitly) because its full budget dominates
// the suite's runtime.
func DefaultJSONAlgos() []string {
	return []string{"grow", "kl", "fm", "rsb", "ibp", "rcb", "multilevel-kl", "multilevel-fm", "multilevel-rsb"}
}

// RunJSON measures every (case, algorithm) pair and assembles the Report.
// Algorithms that reject a case (coordinate or part-count constraints)
// produce a Result with Error set rather than aborting the suite. repeat
// re-runs each measurement with the same seed — quality is identical, wall
// time is averaged in NsPerOp.
func RunJSON(suiteName string, cases []Case, algos []string, opt algo.Options, repeat int) *Report {
	if repeat <= 0 {
		repeat = 1
	}
	rep := &Report{
		Schema:    SchemaVersion,
		Suite:     suiteName,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	for _, c := range cases {
		ideal := c.Graph.TotalNodeWeight() / float64(c.Parts)
		for _, name := range algos {
			res := Result{
				Case:  c.Name,
				Algo:  name,
				Nodes: c.Graph.NumNodes(),
				Edges: c.Graph.NumEdges(),
				Parts: c.Parts,
				Seed:  opt.Seed,
			}
			if opt.Objective != partition.TotalCut {
				res.Objective = opt.Objective.FlagName()
			}
			o := opt
			o.Parts = c.Parts
			// Phase attribution rides along on every run: multilevel writes
			// the breakdown, everything else ignores the sink and the fields
			// stay zero (omitted). Repeated runs overwrite it, so the report
			// carries the last run's breakdown — one op, like NsPerOp.
			var mstats multilevel.Stats
			o.MultilevelStats = &mstats
			var msBefore, msAfter runtime.MemStats
			runtime.ReadMemStats(&msBefore)
			start := time.Now()
			p, err := algo.Run(c.Graph, name, o)
			for r := 1; r < repeat && err == nil; r++ {
				p, err = algo.Run(c.Graph, name, o)
			}
			res.WallNS = time.Since(start).Nanoseconds()
			runtime.ReadMemStats(&msAfter)
			res.NsPerOp = res.WallNS / int64(repeat)
			res.Repeat = repeat
			res.Workers = opt.Workers
			res.RefineNS = mstats.Refine.Nanoseconds()
			res.RefineLPNS = mstats.RefineLP.Nanoseconds()
			res.RefineClimbNS = mstats.RefineClimb.Nanoseconds()
			res.RefineFMNS = mstats.RefineFM.Nanoseconds()
			// TotalAlloc/Mallocs are monotonic, so the delta is exactly what
			// the measured runs allocated (GC frees never subtract from it).
			res.BytesAlloc = int64(msAfter.TotalAlloc-msBefore.TotalAlloc) / int64(repeat)
			res.Allocs = int64(msAfter.Mallocs-msBefore.Mallocs) / int64(repeat)
			if err != nil {
				res.Error = err.Error()
			} else {
				res.Cut = p.CutSize(c.Graph)
				res.MaxPartCut = p.MaxPartCut(c.Graph)
				res.CommVolume = p.CommVolume(c.Graph)
				res.ImbalanceSq = p.ImbalanceSq(c.Graph)
				var maxW float64
				for _, w := range p.PartWeights(c.Graph) {
					if w > maxW {
						maxW = w
					}
				}
				res.Balance = maxW / ideal
			}
			rep.Results = append(rep.Results, res)
		}
	}
	return rep
}

// RunJSONWidths measures the suite once per worker width — pinning Workers
// and EvalWorkers — and labels each result's algo "<name>@w<N>", so the
// (case, algo, objective)-keyed comparison gates treat every width as its
// own series. The bit-identity contract makes the @wN rows of one algo carry
// identical quality metrics (anything else is a determinism bug — the fmpar
// runner enforces it); what differs, and what this report exists to archive,
// is the timing and phase-breakdown columns.
func RunJSONWidths(suiteName string, cases []Case, algos []string, opt algo.Options, repeat int, widths []int) *Report {
	var rep *Report
	for _, w := range widths {
		o := opt
		o.Workers = w
		o.EvalWorkers = w
		r := RunJSON(suiteName, cases, algos, o, repeat)
		for i := range r.Results {
			r.Results[i].Algo = fmt.Sprintf("%s@w%d", r.Results[i].Algo, w)
		}
		if rep == nil {
			rep = r
		} else {
			rep.Results = append(rep.Results, r.Results...)
		}
	}
	return rep
}

// WriteJSON serializes the report, indented so diffs of committed baselines
// stay readable.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadJSON parses a report and validates its schema tag.
func ReadJSON(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("bench: parsing report: %w", err)
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("bench: report schema %q, this binary speaks %q", r.Schema, SchemaVersion)
	}
	return &r, nil
}

// Regression is one (case, algo, objective) triple whose objective metric got
// worse than the baseline allows, or that stopped producing a result at all.
type Regression struct {
	Case, Algo string
	// Objective is the triple's objective flag name; empty means "cut".
	Objective string
	// Metric names the compared quantity (cut, max_part_cut, comm_volume).
	Metric           string
	BaselineCut, Cut float64
	RelativeIncrease float64
	// Failed is set when the pair succeeded in the baseline but errored in
	// the current run — a total failure, worse than any metric increase.
	Failed string
}

func (r Regression) label() string {
	if r.Objective == "" {
		return fmt.Sprintf("%s/%s", r.Case, r.Algo)
	}
	return fmt.Sprintf("%s/%s[%s]", r.Case, r.Algo, r.Objective)
}

func (r Regression) String() string {
	metric := r.Metric
	if metric == "" {
		metric = "cut"
	}
	if r.Failed != "" {
		return fmt.Sprintf("%s: %s %.0f -> FAILED (%s)", r.label(), metric, r.BaselineCut, r.Failed)
	}
	return fmt.Sprintf("%s: %s %.0f -> %.0f (+%.1f%%)",
		r.label(), metric, r.BaselineCut, r.Cut, 100*r.RelativeIncrease)
}

// Compare diffs current against baseline and returns every (case, algo,
// objective) triple whose objective metric — cut for the default objective,
// max_part_cut for "maxcut", comm_volume for "commvol" — regressed by more
// than tol (0.10 = 10%), plus per-(case, objective) best-metric regressions
// under the synthetic algo name "best", plus hard failures (triples the
// baseline measured that now error). Triples present in only one report are
// ignored (suites may grow, and runs narrowed with -algos or -objective are
// only held to the baseline metrics of what they actually ran), as are
// timing fields (they are machine-dependent). A zero-metric baseline only
// passes if the current metric is also zero.
func Compare(baseline, current *Report, tol float64) []Regression {
	type key struct{ c, a, o string }
	type caseKey struct{ c, o string }
	ran := map[key]bool{}
	failed := map[key]string{}
	for _, r := range current.Results {
		if r.Error == "" {
			ran[key{r.Case, r.Algo, r.Objective}] = true
		} else {
			failed[key{r.Case, r.Algo, r.Objective}] = r.Error
		}
	}
	// Best-of-case baselines consider only algorithms the current run also
	// measured: a run narrowed with -algos must not be held to the best
	// metric of an algorithm it never executed.
	base := map[key]float64{}
	baseBest := map[caseKey]float64{}
	metricName := map[caseKey]string{}
	var out []Regression
	for _, r := range baseline.Results {
		if r.Error != "" {
			continue
		}
		metricName[caseKey{r.Case, r.Objective}] = r.MetricName()
		// A triple the baseline measured but the current run errored on is a
		// hard regression: the algorithm stopped working on that case.
		if msg, nowFails := failed[key{r.Case, r.Algo, r.Objective}]; nowFails {
			out = append(out, Regression{
				Case: r.Case, Algo: r.Algo, Objective: r.Objective,
				Metric: r.MetricName(), BaselineCut: r.Metric(), Failed: msg,
			})
			continue
		}
		if !ran[key{r.Case, r.Algo, r.Objective}] {
			continue
		}
		base[key{r.Case, r.Algo, r.Objective}] = r.Metric()
		if b, ok := baseBest[caseKey{r.Case, r.Objective}]; !ok || r.Metric() < b {
			baseBest[caseKey{r.Case, r.Objective}] = r.Metric()
		}
	}
	// The current best of a case may come from any algorithm measured now,
	// including ones the baseline has never seen: a newcomer taking over a
	// case's best metric is an improvement, not a regression.
	curBest := map[caseKey]float64{}
	for _, r := range current.Results {
		if r.Error != "" {
			continue
		}
		ck := caseKey{r.Case, r.Objective}
		if bc, seen := curBest[ck]; !seen || r.Metric() < bc {
			curBest[ck] = r.Metric()
		}
		b, ok := base[key{r.Case, r.Algo, r.Objective}]
		if !ok {
			continue
		}
		if exceeds(r.Metric(), b, tol) {
			out = append(out, Regression{
				Case: r.Case, Algo: r.Algo, Objective: r.Objective,
				Metric: r.MetricName(), BaselineCut: b, Cut: r.Metric(),
				RelativeIncrease: rel(r.Metric(), b),
			})
		}
	}
	for ck, b := range baseBest {
		cur, ok := curBest[ck]
		if !ok {
			continue
		}
		if exceeds(cur, b, tol) {
			out = append(out, Regression{
				Case: ck.c, Algo: "best", Objective: ck.o,
				Metric: metricName[ck], BaselineCut: b, Cut: cur,
				RelativeIncrease: rel(cur, b),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Case != out[j].Case {
			return out[i].Case < out[j].Case
		}
		if out[i].Algo != out[j].Algo {
			return out[i].Algo < out[j].Algo
		}
		return out[i].Objective < out[j].Objective
	})
	return out
}

// CompareExact diffs current against baseline and reports every shared
// (case, algo) pair whose cut differs at all — in either direction — plus
// pairs that succeed in one report and error in the other. It is the
// determinism gate: a run with Workers > 1 must reproduce a single-worker
// run's cuts exactly, so even an improvement is a failure here (it would
// mean the worker count leaked into the result). Pairs present in only one
// report are ignored, as are timing fields; but if the reports share no
// pairs at all, that is reported as a failure — a gate that compared
// nothing must not pass.
func CompareExact(baseline, current *Report) []string {
	type key struct{ c, a, o string }
	cur := map[key]Result{}
	for _, r := range current.Results {
		cur[key{r.Case, r.Algo, r.Objective}] = r
	}
	shared := 0
	var out []string
	for _, b := range baseline.Results {
		c, ok := cur[key{b.Case, b.Algo, b.Objective}]
		if !ok {
			continue
		}
		shared++
		label := b.Case + "/" + b.Algo
		if b.Objective != "" {
			label += "[" + b.Objective + "]"
		}
		switch {
		case b.Error == "" && c.Error != "":
			out = append(out, fmt.Sprintf("%s: baseline %s %.0f, current FAILED (%s)", label, b.MetricName(), b.Metric(), c.Error))
		case b.Error != "" && c.Error == "":
			out = append(out, fmt.Sprintf("%s: baseline FAILED (%s), current %s %.0f", label, b.Error, c.MetricName(), c.Metric()))
		case b.Error == "" && c.Error == "" && b.Metric() != c.Metric():
			out = append(out, fmt.Sprintf("%s: %s %v != baseline %v", label, b.MetricName(), c.Metric(), b.Metric()))
		}
	}
	if shared == 0 {
		out = append(out, "no shared (case, algo) pairs between baseline and current — nothing was compared")
	}
	sort.Strings(out)
	return out
}

func exceeds(cur, base, tol float64) bool {
	if base == 0 {
		return cur > 0
	}
	return cur > base*(1+tol)
}

func rel(cur, base float64) float64 {
	if base == 0 {
		return 0
	}
	return cur/base - 1
}
