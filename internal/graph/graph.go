// Package graph provides the weighted undirected graph substrate used by
// every partitioner in this repository.
//
// Graphs are stored in compressed sparse row (CSR) form: a single adjacency
// slice plus per-node offsets. This is the layout used by serious
// partitioning codes (Chaco, METIS) because partitioners spend almost all of
// their time streaming over adjacency lists; CSR keeps those scans contiguous
// and allocation-free.
//
// A Graph is immutable after construction. Mutation (needed by the
// incremental-partitioning workloads) goes through Builder, which accumulates
// edges and emits a fresh CSR snapshot.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an immutable weighted undirected graph in CSR form.
//
// Nodes are identified by dense indices 0..NumNodes()-1. Every undirected
// edge {u,v} is stored twice, once in u's adjacency list and once in v's.
// The zero value is an empty graph.
type Graph struct {
	offsets    []int32   // len = n+1; adjacency of node v is adj[offsets[v]:offsets[v+1]]
	adj        []int32   // neighbor node indices, sorted within each node
	edgeWeight []float64 // parallel to adj
	nodeWeight []float64 // len = n
	numEdges   int       // undirected edge count (each {u,v} counted once)
	coords     []Point   // optional geometric embedding; nil or len = n
}

// Point is a 2-D coordinate attached to a node. Geometric partitioners (IBP,
// RCB) require an embedding; purely combinatorial ones ignore it.
type Point struct {
	X, Y float64
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.offsets) - 1 }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return g.numEdges }

// Degree returns the number of neighbors of node v.
func (g *Graph) Degree(v int) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted neighbor indices of node v. The returned slice
// aliases the graph's internal storage and must not be modified.
func (g *Graph) Neighbors(v int) []int32 {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// EdgeWeights returns the edge weights parallel to Neighbors(v). The returned
// slice aliases internal storage and must not be modified.
func (g *Graph) EdgeWeights(v int) []float64 {
	return g.edgeWeight[g.offsets[v]:g.offsets[v+1]]
}

// NodeWeight returns the computation weight of node v.
func (g *Graph) NodeWeight(v int) float64 { return g.nodeWeight[v] }

// TotalNodeWeight returns the sum of all node weights.
func (g *Graph) TotalNodeWeight() float64 {
	var s float64
	for _, w := range g.nodeWeight {
		s += w
	}
	return s
}

// HasCoords reports whether every node carries a geometric embedding.
func (g *Graph) HasCoords() bool { return g.coords != nil }

// Coord returns the embedding of node v. It panics if the graph has no
// embedding; call HasCoords first.
func (g *Graph) Coord(v int) Point {
	if g.coords == nil {
		panic("graph: Coord called on graph without coordinates")
	}
	return g.coords[v]
}

// HasEdge reports whether nodes u and v are adjacent, in O(log deg(u)).
func (g *Graph) HasEdge(u, v int) bool {
	nbrs := g.Neighbors(u)
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= int32(v) })
	return i < len(nbrs) && nbrs[i] == int32(v)
}

// EdgeWeightBetween returns the weight of edge {u,v}, or 0 if absent.
func (g *Graph) EdgeWeightBetween(u, v int) float64 {
	nbrs := g.Neighbors(u)
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= int32(v) })
	if i < len(nbrs) && nbrs[i] == int32(v) {
		return g.EdgeWeights(u)[i]
	}
	return 0
}

// Edges calls fn once per undirected edge {u,v} with u < v, in increasing
// (u, v) order. Iteration stops early if fn returns false.
func (g *Graph) Edges(fn func(u, v int, w float64) bool) {
	for u := 0; u < g.NumNodes(); u++ {
		nbrs := g.Neighbors(u)
		ws := g.EdgeWeights(u)
		for i, v := range nbrs {
			if int(v) > u {
				if !fn(u, int(v), ws[i]) {
					return
				}
			}
		}
	}
}

// Validate checks structural invariants: sorted adjacency, symmetric edges
// with matching weights, no self loops, offsets monotone. It returns a
// descriptive error for the first violation found. Graphs emitted by Builder
// always validate; this exists to check hand-built or deserialized inputs.
func (g *Graph) Validate() error {
	n := g.NumNodes()
	if len(g.nodeWeight) != n {
		return fmt.Errorf("graph: %d node weights for %d nodes", len(g.nodeWeight), n)
	}
	if g.coords != nil && len(g.coords) != n {
		return fmt.Errorf("graph: %d coords for %d nodes", len(g.coords), n)
	}
	if len(g.adj) != len(g.edgeWeight) {
		return fmt.Errorf("graph: adjacency/weight length mismatch %d != %d", len(g.adj), len(g.edgeWeight))
	}
	for v := 0; v < n; v++ {
		if g.offsets[v] > g.offsets[v+1] {
			return fmt.Errorf("graph: offsets not monotone at node %d", v)
		}
		nbrs := g.Neighbors(v)
		for i, u := range nbrs {
			if int(u) == v {
				return fmt.Errorf("graph: self loop at node %d", v)
			}
			if u < 0 || int(u) >= n {
				return fmt.Errorf("graph: node %d has out-of-range neighbor %d", v, u)
			}
			if i > 0 && nbrs[i-1] >= u {
				return fmt.Errorf("graph: adjacency of node %d not strictly sorted", v)
			}
			if !g.HasEdge(int(u), v) {
				return fmt.Errorf("graph: edge %d->%d has no reverse", v, u)
			}
			if g.EdgeWeightBetween(int(u), v) != g.EdgeWeights(v)[i] {
				return fmt.Errorf("graph: asymmetric weight on edge {%d,%d}", v, u)
			}
		}
	}
	if len(g.adj)%2 != 0 {
		return fmt.Errorf("graph: odd directed-edge count %d", len(g.adj))
	}
	if g.numEdges != len(g.adj)/2 {
		return fmt.Errorf("graph: edge count %d does not match adjacency %d", g.numEdges, len(g.adj)/2)
	}
	return nil
}

// Builder accumulates nodes and edges and produces an immutable Graph.
// Duplicate edge insertions keep the last weight. The zero value is ready to
// use.
type Builder struct {
	nodeWeight []float64
	coords     []Point
	hasCoords  bool
	edges      map[edgeKey]float64
}

type edgeKey struct{ u, v int32 } // u < v

// NewBuilder returns a Builder pre-sized for n nodes with unit weights and no
// coordinates. More nodes may be added later.
func NewBuilder(n int) *Builder {
	b := &Builder{
		nodeWeight: make([]float64, n),
		edges:      make(map[edgeKey]float64),
	}
	for i := range b.nodeWeight {
		b.nodeWeight[i] = 1
	}
	return b
}

// FromGraph returns a Builder initialized with a copy of g, for incremental
// modification.
func FromGraph(g *Graph) *Builder {
	b := NewBuilder(g.NumNodes())
	copy(b.nodeWeight, g.nodeWeight)
	if g.coords != nil {
		b.hasCoords = true
		b.coords = append([]Point(nil), g.coords...)
	}
	g.Edges(func(u, v int, w float64) bool {
		b.edges[edgeKey{int32(u), int32(v)}] = w
		return true
	})
	return b
}

// NumNodes returns the current node count.
func (b *Builder) NumNodes() int { return len(b.nodeWeight) }

// AddNode appends a node with weight w and returns its index.
func (b *Builder) AddNode(w float64) int {
	b.nodeWeight = append(b.nodeWeight, w)
	if b.hasCoords {
		b.coords = append(b.coords, Point{})
	}
	return len(b.nodeWeight) - 1
}

// SetNodeWeight sets the weight of node v.
func (b *Builder) SetNodeWeight(v int, w float64) { b.nodeWeight[v] = w }

// SetCoord attaches coordinate p to node v, enabling the geometric embedding.
// Once any coordinate is set, all nodes carry one (zero-valued by default).
func (b *Builder) SetCoord(v int, p Point) {
	if !b.hasCoords {
		b.hasCoords = true
		b.coords = make([]Point, len(b.nodeWeight))
	}
	for len(b.coords) < len(b.nodeWeight) {
		b.coords = append(b.coords, Point{})
	}
	b.coords[v] = p
}

// AddEdge inserts undirected edge {u,v} with weight w. Inserting an existing
// edge overwrites its weight. Self loops and out-of-range endpoints panic:
// they are programming errors in generators, not recoverable input errors.
func (b *Builder) AddEdge(u, v int, w float64) {
	if u == v {
		panic(fmt.Sprintf("graph: self loop at node %d", u))
	}
	if u < 0 || v < 0 || u >= len(b.nodeWeight) || v >= len(b.nodeWeight) {
		panic(fmt.Sprintf("graph: edge {%d,%d} out of range (n=%d)", u, v, len(b.nodeWeight)))
	}
	if u > v {
		u, v = v, u
	}
	b.edges[edgeKey{int32(u), int32(v)}] = w
}

// HasEdge reports whether {u,v} has been inserted.
func (b *Builder) HasEdge(u, v int) bool {
	if u > v {
		u, v = v, u
	}
	_, ok := b.edges[edgeKey{int32(u), int32(v)}]
	return ok
}

// Build emits an immutable CSR snapshot of the accumulated graph.
func (b *Builder) Build() *Graph {
	n := len(b.nodeWeight)
	deg := make([]int32, n)
	for k := range b.edges {
		deg[k.u]++
		deg[k.v]++
	}
	offsets := make([]int32, n+1)
	for v := 0; v < n; v++ {
		offsets[v+1] = offsets[v] + deg[v]
	}
	adj := make([]int32, offsets[n])
	ew := make([]float64, offsets[n])
	cursor := make([]int32, n)
	copy(cursor, offsets[:n])
	for k, w := range b.edges {
		adj[cursor[k.u]], ew[cursor[k.u]] = k.v, w
		cursor[k.u]++
		adj[cursor[k.v]], ew[cursor[k.v]] = k.u, w
		cursor[k.v]++
	}
	// Sort each adjacency list (weights move with their neighbors).
	for v := 0; v < n; v++ {
		lo, hi := offsets[v], offsets[v+1]
		idx := adj[lo:hi]
		wts := ew[lo:hi]
		sort.Sort(&adjSorter{idx, wts})
	}
	g := &Graph{
		offsets:    offsets,
		adj:        adj,
		edgeWeight: ew,
		nodeWeight: append([]float64(nil), b.nodeWeight...),
		numEdges:   len(b.edges),
	}
	if b.hasCoords {
		g.coords = append([]Point(nil), b.coords...)
		for len(g.coords) < n {
			g.coords = append(g.coords, Point{})
		}
	}
	return g
}

// FromCSR assembles a Graph directly from CSR arrays, taking ownership of
// every slice passed in. offsets must have length n+1, adj and edgeWeight
// length offsets[n], and nodeWeight length n; coords may be nil or length n.
// Adjacency lists must already be strictly sorted and symmetric (every edge
// stored from both endpoints with equal weight) — FromCSR validates the
// result and rejects anything malformed rather than repairing it.
//
// This is the entry point for streaming deserializers (internal/gio) that
// build the CSR arrays without going through Builder's edge map; it is O(m
// log deg) for the validation pass and allocates nothing beyond the Graph
// header.
func FromCSR(offsets, adj []int32, edgeWeight, nodeWeight []float64, coords []Point) (*Graph, error) {
	if len(offsets) == 0 {
		return nil, fmt.Errorf("graph: FromCSR needs offsets of length n+1, got 0")
	}
	n := len(offsets) - 1
	if int(offsets[0]) != 0 || int(offsets[n]) != len(adj) {
		return nil, fmt.Errorf("graph: FromCSR offsets span [%d,%d], adjacency has %d entries",
			offsets[0], offsets[n], len(adj))
	}
	g := &Graph{
		offsets:    offsets,
		adj:        adj,
		edgeWeight: edgeWeight,
		nodeWeight: nodeWeight,
		numEdges:   len(adj) / 2,
		coords:     coords,
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// SortAdjacency sorts neighbor indices idx (with parallel weights wts) in
// increasing order. Deserializers use it to canonicalize each CSR row before
// handing the arrays to FromCSR.
func SortAdjacency(idx []int32, wts []float64) {
	sort.Sort(&adjSorter{idx, wts})
}

type adjSorter struct {
	idx []int32
	wts []float64
}

func (s *adjSorter) Len() int           { return len(s.idx) }
func (s *adjSorter) Less(i, j int) bool { return s.idx[i] < s.idx[j] }
func (s *adjSorter) Swap(i, j int) {
	s.idx[i], s.idx[j] = s.idx[j], s.idx[i]
	s.wts[i], s.wts[j] = s.wts[j], s.wts[i]
}
