package graph

import (
	"math"
	"math/rand"
	"testing"
)

// contractTestGraph builds a connected-ish random weighted graph for contraction
// tests (package graph cannot import gen).
func contractTestGraph(n int, rng *rand.Rand, coords bool) *Graph {
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetNodeWeight(v, float64(1+rng.Intn(4)))
		if coords {
			b.SetCoord(v, Point{X: rng.Float64(), Y: rng.Float64()})
		}
	}
	for v := 1; v < n; v++ {
		b.AddEdge(v, rng.Intn(v), float64(1+rng.Intn(5))) // spanning tree
	}
	for i := 0; i < 2*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !b.HasEdge(u, v) {
			b.AddEdge(u, v, float64(1+rng.Intn(5)))
		}
	}
	return b.Build()
}

// contractViaBuilder is the straightforward map-based reference
// implementation Contract must match exactly.
func contractViaBuilder(g *Graph, coarseOf []int, nCoarse int) *Graph {
	b := NewBuilder(nCoarse)
	wsum := make([]float64, nCoarse)
	var cx, cy []float64
	if g.HasCoords() {
		cx = make([]float64, nCoarse)
		cy = make([]float64, nCoarse)
	}
	for v := 0; v < g.NumNodes(); v++ {
		c := coarseOf[v]
		w := g.NodeWeight(v)
		wsum[c] += w
		if g.HasCoords() {
			p := g.Coord(v)
			cx[c] += w * p.X
			cy[c] += w * p.Y
		}
	}
	for c := 0; c < nCoarse; c++ {
		b.SetNodeWeight(c, wsum[c])
		if g.HasCoords() && wsum[c] > 0 {
			b.SetCoord(c, Point{X: cx[c] / wsum[c], Y: cy[c] / wsum[c]})
		}
	}
	acc := make(map[[2]int]float64)
	g.Edges(func(u, v int, w float64) bool {
		cu, cv := coarseOf[u], coarseOf[v]
		if cu == cv {
			return true
		}
		if cu > cv {
			cu, cv = cv, cu
		}
		acc[[2]int{cu, cv}] += w
		return true
	})
	for e, w := range acc {
		b.AddEdge(e[0], e[1], w)
	}
	return b.Build()
}

func randomCoarseMap(n int, rng *rand.Rand) ([]int, int) {
	nCoarse := 1 + n/3
	coarseOf := make([]int, n)
	// Guarantee every coarse node is hit so none are empty-but-unused.
	for c := 0; c < nCoarse && c < n; c++ {
		coarseOf[c] = c
	}
	for v := nCoarse; v < n; v++ {
		coarseOf[v] = rng.Intn(nCoarse)
	}
	return coarseOf, nCoarse
}

func graphsEqual(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("shape mismatch: %d/%d nodes, %d/%d edges",
			a.NumNodes(), b.NumNodes(), a.NumEdges(), b.NumEdges())
	}
	for v := 0; v < a.NumNodes(); v++ {
		if math.Abs(a.NodeWeight(v)-b.NodeWeight(v)) > 1e-12 {
			t.Fatalf("node %d weight %v != %v", v, a.NodeWeight(v), b.NodeWeight(v))
		}
		an, bn := a.Neighbors(v), b.Neighbors(v)
		if len(an) != len(bn) {
			t.Fatalf("node %d degree %d != %d", v, len(an), len(bn))
		}
		aw, bw := a.EdgeWeights(v), b.EdgeWeights(v)
		for i := range an {
			if an[i] != bn[i] || math.Abs(aw[i]-bw[i]) > 1e-9 {
				t.Fatalf("node %d adjacency differs at %d: (%d,%v) != (%d,%v)",
					v, i, an[i], aw[i], bn[i], bw[i])
			}
		}
		if a.HasCoords() != b.HasCoords() {
			t.Fatalf("coords presence mismatch")
		}
		if a.HasCoords() {
			pa, pb := a.Coord(v), b.Coord(v)
			if math.Abs(pa.X-pb.X) > 1e-9 || math.Abs(pa.Y-pb.Y) > 1e-9 {
				t.Fatalf("node %d coord %v != %v", v, pa, pb)
			}
		}
	}
}

func TestContractMatchesBuilderReference(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(120)
		g := contractTestGraph(n, rng, seed%2 == 0)
		coarseOf, nCoarse := randomCoarseMap(n, rng)
		fast := Contract(g, coarseOf, nCoarse, 1)
		if err := fast.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		graphsEqual(t, fast, contractViaBuilder(g, coarseOf, nCoarse))
	}
}

func TestContractPreservesTotalNodeWeight(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := contractTestGraph(200, rng, false)
	coarseOf, nCoarse := randomCoarseMap(200, rng)
	coarse := Contract(g, coarseOf, nCoarse, 1)
	if math.Abs(coarse.TotalNodeWeight()-g.TotalNodeWeight()) > 1e-9 {
		t.Errorf("total node weight %v -> %v", g.TotalNodeWeight(), coarse.TotalNodeWeight())
	}
}

func TestContractIdentityMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := contractTestGraph(60, rng, true)
	id := make([]int, g.NumNodes())
	for v := range id {
		id[v] = v
	}
	graphsEqual(t, Contract(g, id, g.NumNodes(), 1), g)
}

func TestContractAllToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := contractTestGraph(50, rng, false)
	coarseOf := make([]int, g.NumNodes())
	coarse := Contract(g, coarseOf, 1, 1)
	if coarse.NumNodes() != 1 || coarse.NumEdges() != 0 {
		t.Fatalf("all-to-one gave %d nodes, %d edges", coarse.NumNodes(), coarse.NumEdges())
	}
	if math.Abs(coarse.NodeWeight(0)-g.TotalNodeWeight()) > 1e-9 {
		t.Errorf("weight %v != %v", coarse.NodeWeight(0), g.TotalNodeWeight())
	}
}

func TestContractPanicsOnBadMap(t *testing.T) {
	g := contractTestGraph(10, rand.New(rand.NewSource(1)), false)
	for name, fn := range map[string]func(){
		"short map":    func() { Contract(g, make([]int, 3), 2, 1) },
		"out of range": func() { Contract(g, make([]int, 10), 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkContract(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := contractTestGraph(5000, rng, false)
	coarseOf, nCoarse := randomCoarseMap(5000, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Contract(g, coarseOf, nCoarse, 1)
	}
}

func BenchmarkContractViaBuilder(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := contractTestGraph(5000, rng, false)
	coarseOf, nCoarse := randomCoarseMap(5000, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		contractViaBuilder(g, coarseOf, nCoarse)
	}
}

func TestContractWorkersBitIdentical(t *testing.T) {
	// The worker count is a pure speed knob: any value must produce the
	// exact same coarse graph, adjacency order and float accumulation
	// included.
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 200 + rng.Intn(2000)
		g := contractTestGraph(n, rng, seed%2 == 0)
		coarseOf, nCoarse := randomCoarseMap(n, rng)
		ref := Contract(g, coarseOf, nCoarse, 1)
		for _, workers := range []int{2, 3, 8, 0} {
			got := Contract(g, coarseOf, nCoarse, workers)
			graphsEqual(t, got, ref)
		}
	}
}

func TestContractScratchReuseBitIdentical(t *testing.T) {
	// One scratch recycled across graphs of varying size, weighting, and
	// coordinate presence must reproduce the fresh-allocation Contract bit
	// for bit at every worker count: buffer capacity left over from an
	// earlier (even larger) contraction is invisible to the result. The
	// sizes deliberately shrink and regrow so reuse exercises both the
	// reslice and the regrow paths.
	var s ContractScratch
	rng := rand.New(rand.NewSource(42))
	for trial, n := range []int{800, 150, 2400, 60, 1200} {
		g := contractTestGraph(n, rng, trial%2 == 1)
		coarseOf, nCoarse := randomCoarseMap(n, rng)
		ref := Contract(g, coarseOf, nCoarse, 1)
		for _, workers := range []int{1, 2, 4, 8} {
			graphsEqual(t, s.Contract(g, coarseOf, nCoarse, workers), ref)
		}
	}
}
