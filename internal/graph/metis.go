package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// METIS/Chaco graph format support, for interop with the ecosystem the
// paper's baselines come from (Chaco implements RSB; METIS the multilevel
// methods that superseded it).
//
// Format: a header line "n m [fmt]" followed by one line per vertex
// (1-indexed) listing its neighbors. fmt is a 2-digit code: the tens digit
// enables vertex weights (each vertex line starts with its weight), the
// ones digit enables edge weights (each neighbor is followed by the edge
// weight). Comment lines start with '%'. Coordinates are not part of the
// format and are lost on a round trip.

// WriteMETIS serializes g in METIS format. Vertex and edge weights are
// emitted only when any differ from 1, keeping unit graphs in the simplest
// form. METIS weights are integral; non-integral weights are rejected.
func (g *Graph) WriteMETIS(w io.Writer) error {
	n := g.NumNodes()
	hasVW, hasEW := false, false
	for v := 0; v < n; v++ {
		if g.NodeWeight(v) != 1 {
			hasVW = true
		}
	}
	var badWeight error
	g.Edges(func(u, v int, wt float64) bool {
		if wt != 1 {
			hasEW = true
		}
		if wt != float64(int64(wt)) {
			badWeight = fmt.Errorf("graph: METIS requires integral edge weight, got %v on {%d,%d}", wt, u, v)
			return false
		}
		return true
	})
	if badWeight != nil {
		return badWeight
	}
	if hasVW {
		for v := 0; v < n; v++ {
			if wv := g.NodeWeight(v); wv != float64(int64(wv)) {
				return fmt.Errorf("graph: METIS requires integral node weight, got %v on node %d", wv, v)
			}
		}
	}
	bw := bufio.NewWriter(w)
	code := ""
	switch {
	case hasVW && hasEW:
		code = " 11"
	case hasVW:
		code = " 10"
	case hasEW:
		code = " 1"
	}
	if _, err := fmt.Fprintf(bw, "%d %d%s\n", n, g.NumEdges(), code); err != nil {
		return err
	}
	for v := 0; v < n; v++ {
		var parts []string
		if hasVW {
			parts = append(parts, strconv.FormatInt(int64(g.NodeWeight(v)), 10))
		}
		ws := g.EdgeWeights(v)
		for i, u := range g.Neighbors(v) {
			parts = append(parts, strconv.Itoa(int(u)+1))
			if hasEW {
				parts = append(parts, strconv.FormatInt(int64(ws[i]), 10))
			}
		}
		if _, err := fmt.Fprintln(bw, strings.Join(parts, " ")); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadMETIS parses a graph in METIS format, validating symmetry (the format
// lists each edge from both endpoints; mismatched weights or one-sided
// edges are errors).
func ReadMETIS(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22)
	line, err := nextMETISLine(sc)
	if err != nil {
		return nil, fmt.Errorf("graph: METIS header: %w", err)
	}
	hdr := strings.Fields(line)
	if len(hdr) < 2 || len(hdr) > 3 {
		return nil, fmt.Errorf("graph: malformed METIS header %q", line)
	}
	n, err1 := strconv.Atoi(hdr[0])
	m, err2 := strconv.Atoi(hdr[1])
	if err1 != nil || err2 != nil || n < 0 || m < 0 {
		return nil, fmt.Errorf("graph: malformed METIS header %q", line)
	}
	hasVW, hasEW := false, false
	if len(hdr) == 3 {
		switch hdr[2] {
		case "0", "00":
		case "1", "01":
			hasEW = true
		case "10":
			hasVW = true
		case "11":
			hasVW, hasEW = true, true
		default:
			return nil, fmt.Errorf("graph: unsupported METIS fmt code %q", hdr[2])
		}
	}
	b := NewBuilder(n)
	type half struct {
		v, u int
		w    float64
	}
	var halves []half
	for v := 0; v < n; v++ {
		line, err := nextMETISLine(sc)
		if err != nil {
			return nil, fmt.Errorf("graph: METIS vertex %d: %w", v+1, err)
		}
		fields := strings.Fields(line)
		i := 0
		if hasVW {
			if len(fields) == 0 {
				return nil, fmt.Errorf("graph: METIS vertex %d: missing weight", v+1)
			}
			wv, err := strconv.ParseFloat(fields[0], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: METIS vertex %d: bad weight %q", v+1, fields[0])
			}
			b.SetNodeWeight(v, wv)
			i = 1
		}
		for i < len(fields) {
			u, err := strconv.Atoi(fields[i])
			if err != nil || u < 1 || u > n {
				return nil, fmt.Errorf("graph: METIS vertex %d: bad neighbor %q", v+1, fields[i])
			}
			i++
			w := 1.0
			if hasEW {
				if i >= len(fields) {
					return nil, fmt.Errorf("graph: METIS vertex %d: neighbor %d missing edge weight", v+1, u)
				}
				w, err = strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return nil, fmt.Errorf("graph: METIS vertex %d: bad edge weight %q", v+1, fields[i])
				}
				i++
			}
			if u-1 == v {
				return nil, fmt.Errorf("graph: METIS vertex %d: self loop", v+1)
			}
			halves = append(halves, half{v: v, u: u - 1, w: w})
		}
	}
	// Verify symmetry: each ordered half-edge must have a matching reverse
	// with equal weight.
	type key struct{ a, b int }
	seen := make(map[key]float64, len(halves))
	for _, h := range halves {
		seen[key{h.v, h.u}] = h.w
	}
	for _, h := range halves {
		w, ok := seen[key{h.u, h.v}]
		if !ok {
			return nil, fmt.Errorf("graph: METIS edge %d->%d has no reverse", h.v+1, h.u+1)
		}
		if w != h.w {
			return nil, fmt.Errorf("graph: METIS edge {%d,%d} has asymmetric weights", h.v+1, h.u+1)
		}
		if h.v < h.u {
			b.AddEdge(h.v, h.u, h.w)
		}
	}
	g := b.Build()
	if g.NumEdges() != m {
		return nil, fmt.Errorf("graph: METIS header claims %d edges, found %d", m, g.NumEdges())
	}
	return g, nil
}

// nextMETISLine returns the next non-comment, non-empty... actually METIS
// treats an empty vertex line as "no neighbors", so only '%' comments are
// skipped and empty lines are returned as-is.
func nextMETISLine(sc *bufio.Scanner) (string, error) {
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(strings.TrimSpace(line), "%") {
			continue
		}
		return line, nil
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", io.ErrUnexpectedEOF
}
