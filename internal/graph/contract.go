package graph

import (
	"fmt"
	"sort"
)

// Contract collapses g into a coarser graph with nCoarse nodes according to
// coarseOf, which maps every fine node to its coarse node in [0, nCoarse).
// Coarse node weights are the sums of their members' weights; parallel fine
// edges between two coarse nodes accumulate into a single coarse edge;
// edges internal to a coarse node vanish. When g carries coordinates, each
// coarse node sits at the node-weight-weighted centroid of its members.
//
// This is the hot path of multilevel coarsening, so it builds the CSR arrays
// directly instead of going through Builder's edge map: one counting-sort
// pass groups members by coarse node, then a stamped-scratch accumulation
// merges each coarse node's neighborhood in O(deg) without hashing. The
// result is identical to the Builder-based construction.
func Contract(g *Graph, coarseOf []int, nCoarse int) *Graph {
	n := g.NumNodes()
	if len(coarseOf) != n {
		panic(fmt.Sprintf("graph: Contract map covers %d of %d nodes", len(coarseOf), n))
	}
	if nCoarse < 0 {
		panic(fmt.Sprintf("graph: Contract with negative coarse count %d", nCoarse))
	}

	// Group fine nodes by coarse node (counting sort), accumulating weights
	// and centroid numerators in the same pass.
	memberOff := make([]int32, nCoarse+1)
	nodeWeight := make([]float64, nCoarse)
	var cx, cy []float64
	if g.coords != nil {
		cx = make([]float64, nCoarse)
		cy = make([]float64, nCoarse)
	}
	for v := 0; v < n; v++ {
		c := coarseOf[v]
		if c < 0 || c >= nCoarse {
			panic(fmt.Sprintf("graph: Contract maps node %d to out-of-range coarse node %d (nCoarse=%d)", v, c, nCoarse))
		}
		memberOff[c+1]++
		w := g.nodeWeight[v]
		nodeWeight[c] += w
		if cx != nil {
			p := g.coords[v]
			cx[c] += w * p.X
			cy[c] += w * p.Y
		}
	}
	for c := 0; c < nCoarse; c++ {
		memberOff[c+1] += memberOff[c]
	}
	members := make([]int32, n)
	cursor := make([]int32, nCoarse)
	copy(cursor, memberOff[:nCoarse])
	for v := 0; v < n; v++ {
		c := coarseOf[v]
		members[cursor[c]] = int32(v)
		cursor[c]++
	}

	// Merge each coarse node's neighborhood. mark[cu] == stamp of the current
	// coarse node means cu already has a slot in this node's adjacency run.
	offsets := make([]int32, nCoarse+1)
	adj := make([]int32, 0, len(g.adj))
	ew := make([]float64, 0, len(g.adj))
	mark := make([]int32, nCoarse)
	slot := make([]int32, nCoarse)
	for i := range mark {
		mark[i] = -1
	}
	for c := 0; c < nCoarse; c++ {
		runStart := len(adj)
		for _, v := range members[memberOff[c]:memberOff[c+1]] {
			nbrs := g.Neighbors(int(v))
			ws := g.EdgeWeights(int(v))
			for i, u := range nbrs {
				cu := coarseOf[u]
				if cu == c {
					continue
				}
				if mark[cu] == int32(c) {
					ew[slot[cu]] += ws[i]
				} else {
					mark[cu] = int32(c)
					slot[cu] = int32(len(adj))
					adj = append(adj, int32(cu))
					ew = append(ew, ws[i])
				}
			}
		}
		sort.Sort(&adjSorter{adj[runStart:], ew[runStart:]})
		offsets[c+1] = int32(len(adj))
	}

	coarse := &Graph{
		offsets:    offsets,
		adj:        adj,
		edgeWeight: ew,
		nodeWeight: nodeWeight,
		numEdges:   len(adj) / 2,
	}
	if cx != nil {
		coarse.coords = make([]Point, nCoarse)
		for c := 0; c < nCoarse; c++ {
			if nodeWeight[c] > 0 {
				coarse.coords[c] = Point{X: cx[c] / nodeWeight[c], Y: cy[c] / nodeWeight[c]}
			}
		}
	}
	return coarse
}
