package graph

import (
	"fmt"
	"sort"

	"repro/internal/par"
)

// Contract collapses g into a coarser graph with nCoarse nodes according to
// coarseOf, which maps every fine node to its coarse node in [0, nCoarse).
// Coarse node weights are the sums of their members' weights; parallel fine
// edges between two coarse nodes accumulate into a single coarse edge;
// edges internal to a coarse node vanish. When g carries coordinates, each
// coarse node sits at the node-weight-weighted centroid of its members.
//
// This is the hot path of multilevel coarsening, so it builds the CSR arrays
// directly instead of going through Builder's edge map: one counting-sort
// pass groups members by coarse node, then a stamped-scratch accumulation
// merges each coarse node's neighborhood in O(deg) without hashing. The
// per-coarse-node merges are independent, so they run on `workers`
// goroutines (<= 0 selects GOMAXPROCS) over disjoint coarse-node ranges;
// every merge writes only its own chunk's buffers, so the result is
// bit-identical for every worker count. The result is identical to the
// Builder-based construction.
func Contract(g *Graph, coarseOf []int, nCoarse, workers int) *Graph {
	n := g.NumNodes()
	if len(coarseOf) != n {
		panic(fmt.Sprintf("graph: Contract map covers %d of %d nodes", len(coarseOf), n))
	}
	if nCoarse < 0 {
		panic(fmt.Sprintf("graph: Contract with negative coarse count %d", nCoarse))
	}

	// Group fine nodes by coarse node (counting sort), accumulating weights
	// and centroid numerators in the same pass.
	memberOff := make([]int32, nCoarse+1)
	nodeWeight := make([]float64, nCoarse)
	var cx, cy []float64
	if g.coords != nil {
		cx = make([]float64, nCoarse)
		cy = make([]float64, nCoarse)
	}
	for v := 0; v < n; v++ {
		c := coarseOf[v]
		if c < 0 || c >= nCoarse {
			panic(fmt.Sprintf("graph: Contract maps node %d to out-of-range coarse node %d (nCoarse=%d)", v, c, nCoarse))
		}
		memberOff[c+1]++
		w := g.nodeWeight[v]
		nodeWeight[c] += w
		if cx != nil {
			p := g.coords[v]
			cx[c] += w * p.X
			cy[c] += w * p.Y
		}
	}
	for c := 0; c < nCoarse; c++ {
		memberOff[c+1] += memberOff[c]
	}
	members := make([]int32, n)
	cursor := make([]int32, nCoarse)
	copy(cursor, memberOff[:nCoarse])
	for v := 0; v < n; v++ {
		c := coarseOf[v]
		members[cursor[c]] = int32(v)
		cursor[c]++
	}

	// Merge each coarse node's neighborhood into per-chunk buffers, in
	// parallel over disjoint coarse-node ranges. mark[cu] == stamp of the
	// current coarse node means cu already has a slot in this node's
	// adjacency run; stamps are globally unique (the coarse node id), so a
	// worker's scratch never needs resetting between chunks. Each chunk owns
	// its output buffers, making the merge schedule-independent.
	workers = par.Workers(workers)
	const chunkSize = 512
	numChunks := (nCoarse + chunkSize - 1) / chunkSize
	type chunkOut struct {
		adj []int32
		ew  []float64
		// degOff[i] bounds the runs of the chunk's coarse nodes within
		// adj/ew, like a chunk-local CSR offset array.
		degOff []int32
	}
	chunks := make([]chunkOut, numChunks)
	type scratch struct {
		mark, slot []int32
	}
	scratches := make([]*scratch, workers)
	par.For(workers, numChunks, func(worker, lo, hi int) {
		s := scratches[worker]
		if s == nil {
			s = &scratch{mark: make([]int32, nCoarse), slot: make([]int32, nCoarse)}
			for i := range s.mark {
				s.mark[i] = -1
			}
			scratches[worker] = s
		}
		for ci := lo; ci < hi; ci++ {
			cLo, cHi := ci*chunkSize, (ci+1)*chunkSize
			if cHi > nCoarse {
				cHi = nCoarse
			}
			out := &chunks[ci]
			out.degOff = make([]int32, cHi-cLo+1)
			for c := cLo; c < cHi; c++ {
				runStart := len(out.adj)
				for _, v := range members[memberOff[c]:memberOff[c+1]] {
					nbrs := g.Neighbors(int(v))
					ws := g.EdgeWeights(int(v))
					for i, u := range nbrs {
						cu := coarseOf[u]
						if cu == c {
							continue
						}
						if s.mark[cu] == int32(c) {
							out.ew[s.slot[cu]] += ws[i]
						} else {
							s.mark[cu] = int32(c)
							s.slot[cu] = int32(len(out.adj))
							out.adj = append(out.adj, int32(cu))
							out.ew = append(out.ew, ws[i])
						}
					}
				}
				sort.Sort(&adjSorter{out.adj[runStart:], out.ew[runStart:]})
				out.degOff[c-cLo+1] = int32(len(out.adj))
			}
		}
	})

	// Assemble the final CSR arrays by concatenating the chunks in coarse-
	// node order — a straight copy, independent of which worker produced
	// which chunk.
	offsets := make([]int32, nCoarse+1)
	total := 0
	for _, out := range chunks {
		total += len(out.adj)
	}
	adj := make([]int32, 0, total)
	ew := make([]float64, 0, total)
	for ci := range chunks {
		out := &chunks[ci]
		base := int32(len(adj))
		cLo := ci * chunkSize
		for i := 1; i < len(out.degOff); i++ {
			offsets[cLo+i] = base + out.degOff[i]
		}
		adj = append(adj, out.adj...)
		ew = append(ew, out.ew...)
	}

	coarse := &Graph{
		offsets:    offsets,
		adj:        adj,
		edgeWeight: ew,
		nodeWeight: nodeWeight,
		numEdges:   len(adj) / 2,
	}
	if cx != nil {
		coarse.coords = make([]Point, nCoarse)
		for c := 0; c < nCoarse; c++ {
			if nodeWeight[c] > 0 {
				coarse.coords[c] = Point{X: cx[c] / nodeWeight[c], Y: cy[c] / nodeWeight[c]}
			}
		}
	}
	return coarse
}
