package graph

import (
	"fmt"
	"sort"

	"repro/internal/par"
)

// Contract collapses g into a coarser graph with nCoarse nodes according to
// coarseOf, which maps every fine node to its coarse node in [0, nCoarse).
// Coarse node weights are the sums of their members' weights; parallel fine
// edges between two coarse nodes accumulate into a single coarse edge;
// edges internal to a coarse node vanish. When g carries coordinates, each
// coarse node sits at the node-weight-weighted centroid of its members.
//
// Contract allocates its working buffers fresh on every call. Hierarchy
// builders that contract level after level should hold a ContractScratch and
// call its Contract method instead — the result is bit-identical, the
// scratch just recycles the buffers.
func Contract(g *Graph, coarseOf []int, nCoarse, workers int) *Graph {
	var s ContractScratch
	return s.Contract(g, coarseOf, nCoarse, workers)
}

// ContractScratch owns the working memory of Contract so repeated
// contractions — one per hierarchy level — recycle buffers instead of
// reallocating them. The zero value is ready to use; it grows to the largest
// contraction it has served and stays there. A scratch is not safe for
// concurrent use, but the buffers that escape into the returned coarse Graph
// (offsets, adjacency, weights, coordinates) are always freshly allocated,
// so reusing the scratch never aliases previously returned graphs.
type ContractScratch struct {
	memberOff []int32   // coarse-node member group bounds, len nCoarse+1
	members   []int32   // fine nodes grouped by coarse node, len n
	cursor    []int32   // counting-sort fill cursor, len nCoarse
	cx, cy    []float64 // centroid numerators, len nCoarse (coords only)
	chunks    []contractChunk
	marks     []*contractMark // per-worker stamp arrays
}

// contractChunk is one chunk's output buffers: a chunk-local CSR run over
// its coarse nodes. The slices keep their capacity across levels.
type contractChunk struct {
	adj []int32
	ew  []float64
	// degOff[i] bounds the runs of the chunk's coarse nodes within adj/ew,
	// like a chunk-local CSR offset array.
	degOff []int32
}

// contractMark is one worker's stamped-scratch pair: mark[cu] == stamp of
// the coarse node currently being merged means cu already has a slot in its
// adjacency run.
type contractMark struct {
	mark, slot []int32
}

// Contract is Contract(g, coarseOf, nCoarse, workers) drawing every working
// buffer from s. See the package-level Contract for semantics; the two are
// bit-identical for all inputs and worker counts.
//
// This is the hot path of multilevel coarsening, so it builds the CSR arrays
// directly instead of going through Builder's edge map: one counting-sort
// pass groups members by coarse node, then a stamped-scratch accumulation
// merges each coarse node's neighborhood in O(deg) without hashing. The
// per-coarse-node merges are independent, so they run on `workers`
// goroutines (<= 0 selects GOMAXPROCS) over disjoint coarse-node ranges;
// every merge writes only its own chunk's buffers, so the result is
// bit-identical for every worker count. The result is identical to the
// Builder-based construction.
func (s *ContractScratch) Contract(g *Graph, coarseOf []int, nCoarse, workers int) *Graph {
	n := g.NumNodes()
	if len(coarseOf) != n {
		panic(fmt.Sprintf("graph: Contract map covers %d of %d nodes", len(coarseOf), n))
	}
	if nCoarse < 0 {
		panic(fmt.Sprintf("graph: Contract with negative coarse count %d", nCoarse))
	}

	// Group fine nodes by coarse node (counting sort), accumulating weights
	// and centroid numerators in the same pass. nodeWeight escapes into the
	// coarse graph, so it alone is allocated fresh.
	memberOff := growInt32(&s.memberOff, nCoarse+1)
	nodeWeight := make([]float64, nCoarse)
	var cx, cy []float64
	if g.coords != nil {
		cx = growFloat(&s.cx, nCoarse)
		cy = growFloat(&s.cy, nCoarse)
	}
	for v := 0; v < n; v++ {
		c := coarseOf[v]
		if c < 0 || c >= nCoarse {
			panic(fmt.Sprintf("graph: Contract maps node %d to out-of-range coarse node %d (nCoarse=%d)", v, c, nCoarse))
		}
		memberOff[c+1]++
		w := g.nodeWeight[v]
		nodeWeight[c] += w
		if cx != nil {
			p := g.coords[v]
			cx[c] += w * p.X
			cy[c] += w * p.Y
		}
	}
	for c := 0; c < nCoarse; c++ {
		memberOff[c+1] += memberOff[c]
	}
	members := growInt32NoZero(&s.members, n)
	cursor := growInt32NoZero(&s.cursor, nCoarse)
	copy(cursor, memberOff[:nCoarse])
	for v := 0; v < n; v++ {
		c := coarseOf[v]
		members[cursor[c]] = int32(v)
		cursor[c]++
	}

	// Merge each coarse node's neighborhood into per-chunk buffers, in
	// parallel over disjoint coarse-node ranges. Stamps (the coarse node id)
	// are unique within one contraction, so a worker's mark array is reset
	// once per call, not between chunks. Each chunk owns its output buffers,
	// making the merge schedule-independent; the buffers keep their capacity
	// from level to level, and a chunk's first level presizes them from the
	// member fine degrees (an upper bound on the merged adjacency length).
	workers = par.Workers(workers)
	const chunkSize = 512
	numChunks := (nCoarse + chunkSize - 1) / chunkSize
	if cap(s.chunks) < numChunks {
		chunks := make([]contractChunk, numChunks)
		copy(chunks, s.chunks)
		s.chunks = chunks
	}
	chunks := s.chunks[:numChunks]
	if len(s.marks) < workers {
		marks := make([]*contractMark, workers)
		copy(marks, s.marks)
		s.marks = marks
	}
	for _, m := range s.marks {
		if m == nil {
			continue
		}
		// Stamps were only unique within the previous contraction, so a
		// reused mark array must be cleared; slot is guarded by mark.
		mark := growInt32NoZero(&m.mark, nCoarse)
		for i := range mark {
			mark[i] = -1
		}
		growInt32NoZero(&m.slot, nCoarse)
	}
	par.For(workers, numChunks, func(worker, lo, hi int) {
		m := s.marks[worker]
		if m == nil {
			m = &contractMark{mark: make([]int32, nCoarse), slot: make([]int32, nCoarse)}
			for i := range m.mark {
				m.mark[i] = -1
			}
			s.marks[worker] = m
		}
		for ci := lo; ci < hi; ci++ {
			cLo, cHi := ci*chunkSize, (ci+1)*chunkSize
			if cHi > nCoarse {
				cHi = nCoarse
			}
			out := &chunks[ci]
			growInt32NoZero(&out.degOff, cHi-cLo+1)
			out.degOff[0] = 0 // every later entry is assigned below
			if out.adj == nil {
				// First use of this chunk: presize to the summed fine degree
				// of its members, the exact pre-merge adjacency length.
				est := 0
				for c := cLo; c < cHi; c++ {
					for _, v := range members[memberOff[c]:memberOff[c+1]] {
						est += g.Degree(int(v))
					}
				}
				out.adj = make([]int32, 0, est)
				out.ew = make([]float64, 0, est)
			} else {
				out.adj = out.adj[:0]
				out.ew = out.ew[:0]
			}
			for c := cLo; c < cHi; c++ {
				runStart := len(out.adj)
				for _, v := range members[memberOff[c]:memberOff[c+1]] {
					nbrs := g.Neighbors(int(v))
					ws := g.EdgeWeights(int(v))
					for i, u := range nbrs {
						cu := coarseOf[u]
						if cu == c {
							continue
						}
						if m.mark[cu] == int32(c) {
							out.ew[m.slot[cu]] += ws[i]
						} else {
							m.mark[cu] = int32(c)
							m.slot[cu] = int32(len(out.adj))
							out.adj = append(out.adj, int32(cu))
							out.ew = append(out.ew, ws[i])
						}
					}
				}
				sort.Sort(&adjSorter{out.adj[runStart:], out.ew[runStart:]})
				out.degOff[c-cLo+1] = int32(len(out.adj))
			}
		}
	})

	// Assemble the final CSR arrays by concatenating the chunks in coarse-
	// node order — a straight copy, independent of which worker produced
	// which chunk. These arrays escape into the returned graph, so they are
	// allocated fresh (at exact size) rather than drawn from the scratch.
	offsets := make([]int32, nCoarse+1)
	total := 0
	for ci := range chunks {
		total += len(chunks[ci].adj)
	}
	adj := make([]int32, 0, total)
	ew := make([]float64, 0, total)
	for ci := range chunks {
		out := &chunks[ci]
		base := int32(len(adj))
		cLo := ci * chunkSize
		for i := 1; i < len(out.degOff); i++ {
			offsets[cLo+i] = base + out.degOff[i]
		}
		adj = append(adj, out.adj...)
		ew = append(ew, out.ew...)
	}

	coarse := &Graph{
		offsets:    offsets,
		adj:        adj,
		edgeWeight: ew,
		nodeWeight: nodeWeight,
		numEdges:   len(adj) / 2,
	}
	if cx != nil {
		coarse.coords = make([]Point, nCoarse)
		for c := 0; c < nCoarse; c++ {
			if nodeWeight[c] > 0 {
				coarse.coords[c] = Point{X: cx[c] / nodeWeight[c], Y: cy[c] / nodeWeight[c]}
			}
		}
	}
	return coarse
}

// growInt32 resizes *buf to length n, reusing capacity when it suffices, and
// zeroes the returned slice.
func growInt32(buf *[]int32, n int) []int32 {
	s := growInt32NoZero(buf, n)
	for i := range s {
		s[i] = 0
	}
	return s
}

// growInt32NoZero resizes *buf to length n reusing capacity, leaving any
// reused contents in place — for buffers the caller fully overwrites.
func growInt32NoZero(buf *[]int32, n int) []int32 {
	if cap(*buf) < n {
		*buf = make([]int32, n)
	} else {
		*buf = (*buf)[:n]
	}
	return *buf
}

// growFloat is growInt32 for float64 buffers.
func growFloat(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
		return *buf
	}
	s := (*buf)[:n]
	for i := range s {
		s[i] = 0
	}
	*buf = s
	return s
}
