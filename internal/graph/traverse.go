package graph

// BFS performs a breadth-first search from root and returns the visit levels:
// level[v] is the BFS distance from root, or -1 if v is unreachable.
func (g *Graph) BFS(root int) []int {
	n := g.NumNodes()
	level := make([]int, n)
	for i := range level {
		level[i] = -1
	}
	level[root] = 0
	queue := make([]int32, 0, n)
	queue = append(queue, int32(root))
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(int(v)) {
			if level[u] == -1 {
				level[u] = level[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return level
}

// Components labels the connected components of g. It returns the component
// id of each node (ids are dense, assigned in order of discovery) and the
// number of components.
func (g *Graph) Components() (comp []int, count int) {
	n := g.NumNodes()
	comp = make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var queue []int32
	for s := 0; s < n; s++ {
		if comp[s] != -1 {
			continue
		}
		comp[s] = count
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range g.Neighbors(int(v)) {
				if comp[u] == -1 {
					comp[u] = count
					queue = append(queue, u)
				}
			}
		}
		count++
	}
	return comp, count
}

// IsConnected reports whether g is connected. The empty graph is connected.
func (g *Graph) IsConnected() bool {
	if g.NumNodes() == 0 {
		return true
	}
	_, c := g.Components()
	return c == 1
}

// PseudoPeripheral returns a node of (approximately) maximal eccentricity
// within the component containing start, using the standard
// Gibbs–Poole–Stockmeyer iteration: repeatedly BFS and jump to a deepest
// node of minimal degree until the eccentricity stops growing. Recursive
// graph bisection uses this to seed its level structure.
func (g *Graph) PseudoPeripheral(start int) int {
	cur := start
	ecc := -1
	for {
		level := g.BFS(cur)
		far, farLevel := cur, 0
		for v, l := range level {
			if l > farLevel || (l == farLevel && l > 0 && g.Degree(v) < g.Degree(far)) {
				far, farLevel = v, l
			}
		}
		if farLevel <= ecc {
			return cur
		}
		cur, ecc = far, farLevel
	}
}

// InducedSubgraph extracts the subgraph induced by the given nodes. It
// returns the new graph and the mapping from new indices to original node
// ids (the inverse of the implicit relabeling). Node weights, edge weights,
// and coordinates are preserved.
func (g *Graph) InducedSubgraph(nodes []int) (*Graph, []int) {
	toNew := make(map[int]int, len(nodes))
	orig := make([]int, len(nodes))
	for i, v := range nodes {
		toNew[v] = i
		orig[i] = v
	}
	b := NewBuilder(len(nodes))
	for i, v := range nodes {
		b.SetNodeWeight(i, g.NodeWeight(v))
		if g.HasCoords() {
			b.SetCoord(i, g.Coord(v))
		}
	}
	for i, v := range nodes {
		ws := g.EdgeWeights(v)
		for k, u := range g.Neighbors(v) {
			if j, ok := toNew[int(u)]; ok && j > i {
				b.AddEdge(i, j, ws[k])
			}
		}
	}
	return b.Build(), orig
}
