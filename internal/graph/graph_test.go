package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// path builds the path graph 0-1-2-...-(n-1) with unit weights.
func path(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1, 1)
	}
	return b.Build()
}

// randomGraph builds a random graph on n nodes with edge probability p.
func randomGraph(rng *rand.Rand, n int, p float64) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(u, v, 1+rng.Float64())
			}
		}
	}
	return b.Build()
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph has %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("empty graph invalid: %v", err)
	}
	if !g.IsConnected() {
		t.Fatal("empty graph should be connected by convention")
	}
}

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1, 2.5)
	b.AddEdge(2, 1, 1)
	b.AddEdge(3, 0, 4)
	g := b.Build()
	if g.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d, want 4", g.NumNodes())
	}
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
	if !g.HasEdge(1, 0) || !g.HasEdge(0, 1) {
		t.Error("missing edge {0,1}")
	}
	if g.HasEdge(0, 2) {
		t.Error("phantom edge {0,2}")
	}
	if w := g.EdgeWeightBetween(3, 0); w != 4 {
		t.Errorf("weight {3,0} = %v, want 4", w)
	}
	if w := g.EdgeWeightBetween(0, 2); w != 0 {
		t.Errorf("weight of absent edge = %v, want 0", w)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestBuilderDuplicateEdgeKeepsLastWeight(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 0, 7)
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if w := g.EdgeWeightBetween(0, 1); w != 7 {
		t.Errorf("weight = %v, want 7 (last insertion wins)", w)
	}
}

func TestBuilderPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"self loop":    func() { NewBuilder(2).AddEdge(1, 1, 1) },
		"out of range": func() { NewBuilder(2).AddEdge(0, 5, 1) },
		"negative":     func() { NewBuilder(2).AddEdge(-1, 0, 1) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		})
	}
}

func TestNeighborsSortedAndSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 40, 0.2)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	deg := 0
	for v := 0; v < g.NumNodes(); v++ {
		deg += g.Degree(v)
	}
	if deg != 2*g.NumEdges() {
		t.Errorf("sum of degrees %d != 2*edges %d", deg, 2*g.NumEdges())
	}
}

func TestEdgesIterationOrderAndCount(t *testing.T) {
	g := path(5)
	var got [][2]int
	g.Edges(func(u, v int, w float64) bool {
		got = append(got, [2]int{u, v})
		return true
	})
	want := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}}
	if len(got) != len(want) {
		t.Fatalf("got %d edges, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("edge %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEdgesEarlyStop(t *testing.T) {
	g := path(10)
	calls := 0
	g.Edges(func(u, v int, w float64) bool {
		calls++
		return calls < 3
	})
	if calls != 3 {
		t.Errorf("early stop after %d calls, want 3", calls)
	}
}

func TestFromGraphRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 30, 0.15)
	g2 := FromGraph(g).Build()
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed size: %d/%d vs %d/%d",
			g2.NumNodes(), g2.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	g.Edges(func(u, v int, w float64) bool {
		if g2.EdgeWeightBetween(u, v) != w {
			t.Errorf("edge {%d,%d} weight changed", u, v)
		}
		return true
	})
}

func TestFromGraphExtend(t *testing.T) {
	g := path(3)
	b := FromGraph(g)
	nv := b.AddNode(2)
	b.AddEdge(nv, 0, 1)
	g2 := b.Build()
	if g2.NumNodes() != 4 || g2.NumEdges() != 3 {
		t.Fatalf("extended graph: %d nodes %d edges", g2.NumNodes(), g2.NumEdges())
	}
	if g2.NodeWeight(3) != 2 {
		t.Errorf("new node weight = %v, want 2", g2.NodeWeight(3))
	}
}

func TestCoords(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 1, 1)
	b.SetCoord(0, Point{1, 2})
	b.SetCoord(1, Point{3, 4})
	g := b.Build()
	if !g.HasCoords() {
		t.Fatal("HasCoords = false")
	}
	if g.Coord(1) != (Point{3, 4}) {
		t.Errorf("Coord(1) = %v", g.Coord(1))
	}
	g2 := path(2)
	defer func() {
		if recover() == nil {
			t.Error("Coord on graph without coords should panic")
		}
	}()
	g2.Coord(0)
}

func TestCoordsAfterAddNode(t *testing.T) {
	b := NewBuilder(1)
	b.SetCoord(0, Point{1, 1})
	b.AddNode(1) // node added after coords enabled
	g := b.Build()
	if g.Coord(1) != (Point{}) {
		t.Errorf("late node coord = %v, want zero", g.Coord(1))
	}
}

func TestBFSLevels(t *testing.T) {
	g := path(5)
	level := g.BFS(0)
	for v, want := range []int{0, 1, 2, 3, 4} {
		if level[v] != want {
			t.Errorf("level[%d] = %d, want %d", v, level[v], want)
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1, 1)
	// nodes 2,3 isolated
	g := b.Build()
	level := g.BFS(0)
	if level[2] != -1 || level[3] != -1 {
		t.Errorf("unreachable nodes got levels %d,%d", level[2], level[3])
	}
}

func TestComponents(t *testing.T) {
	b := NewBuilder(6)
	b.AddEdge(0, 1, 1)
	b.AddEdge(2, 3, 1)
	b.AddEdge(3, 4, 1)
	g := b.Build()
	comp, count := g.Components()
	if count != 3 {
		t.Fatalf("count = %d, want 3 (two chains plus isolated node 5)", count)
	}
	if comp[0] != comp[1] || comp[2] != comp[3] || comp[3] != comp[4] {
		t.Error("components not grouped correctly")
	}
	if comp[0] == comp[2] || comp[0] == comp[5] || comp[2] == comp[5] {
		t.Error("distinct components share a label")
	}
	if g.IsConnected() {
		t.Error("disconnected graph reported connected")
	}
}

func TestPseudoPeripheralOnPath(t *testing.T) {
	g := path(9)
	v := g.PseudoPeripheral(4) // middle of the path
	if v != 0 && v != 8 {
		t.Errorf("PseudoPeripheral(4) = %d, want an endpoint", v)
	}
}

func TestInducedSubgraph(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 20, 0.3)
	nodes := []int{2, 5, 7, 11, 13}
	sub, orig := g.InducedSubgraph(nodes)
	if sub.NumNodes() != len(nodes) {
		t.Fatalf("sub nodes = %d", sub.NumNodes())
	}
	if err := sub.Validate(); err != nil {
		t.Fatalf("sub invalid: %v", err)
	}
	// Every sub edge must exist in g with the same weight, and vice versa.
	sub.Edges(func(u, v int, w float64) bool {
		if g.EdgeWeightBetween(orig[u], orig[v]) != w {
			t.Errorf("sub edge {%d,%d} not in parent", orig[u], orig[v])
		}
		return true
	})
	for i, a := range nodes {
		for j := i + 1; j < len(nodes); j++ {
			if g.HasEdge(a, nodes[j]) != sub.HasEdge(i, j) {
				t.Errorf("edge presence mismatch for {%d,%d}", a, nodes[j])
			}
		}
	}
}

func TestIOGoldenRoundTrip(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1, 1.5)
	b.AddEdge(1, 2, 2)
	b.SetNodeWeight(2, 3)
	b.SetCoord(0, Point{0.5, 1})
	b.SetCoord(1, Point{1, 2})
	b.SetCoord(2, Point{2, 0})
	g := b.Build()

	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	var buf2 bytes.Buffer
	if _, err := g2.WriteTo(&buf2); err != nil {
		t.Fatalf("WriteTo 2: %v", err)
	}
	if buf2.String() == "" || g2.NumNodes() != 3 || g2.NumEdges() != 2 {
		t.Fatal("round trip lost data")
	}
	if g2.Coord(2) != (Point{2, 0}) || g2.NodeWeight(2) != 3 {
		t.Error("node attributes lost in round trip")
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"no header":      "node 0 1\n",
		"dup header":     "graph 1 0\ngraph 1 0\n",
		"bad node id":    "graph 2 0\nnode 9 1\n",
		"bad edge range": "graph 2 1\nedge 0 5 1\n",
		"self loop":      "graph 2 1\nedge 1 1 1\n",
		"unknown":        "graph 1 0\nfrobnicate\n",
		"bad weight":     "graph 1 0\nnode 0 abc\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: Read accepted malformed input", name)
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\ngraph 2 1\n# another\nnode 0 1\nnode 1 1\nedge 0 1 1\n"
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if g.NumEdges() != 1 {
		t.Errorf("edges = %d", g.NumEdges())
	}
}

// Property: for any random graph, serialize→parse is the identity on
// structure and weights.
func TestQuickIORoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		g := randomGraph(rng, n, 0.3)
		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			return false
		}
		g2, err := Read(&buf)
		if err != nil {
			return false
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
			return false
		}
		ok := true
		g.Edges(func(u, v int, w float64) bool {
			if g2.EdgeWeightBetween(u, v) != w {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: Build always emits a graph that passes Validate, and degree sums
// equal twice the edge count.
func TestQuickBuildValidates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		g := randomGraph(rng, n, rng.Float64()*0.5)
		if g.Validate() != nil {
			return false
		}
		deg := 0
		for v := 0; v < n; v++ {
			deg += g.Degree(v)
		}
		return deg == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: BFS levels differ by at most 1 across any edge.
func TestQuickBFSLipschitz(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := randomGraph(rng, n, 0.2)
		level := g.BFS(0)
		ok := true
		g.Edges(func(u, v int, w float64) bool {
			lu, lv := level[u], level[v]
			if lu >= 0 && lv >= 0 {
				d := lu - lv
				if d < -1 || d > 1 {
					ok = false
					return false
				}
			}
			if (lu == -1) != (lv == -1) {
				ok = false // one endpoint reachable, the other not: impossible
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
