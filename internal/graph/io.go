package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text format is a line-oriented exchange format close to the Chaco/METIS
// family, extended with optional coordinates:
//
//	graph <numNodes> <numEdges> [coords]
//	node <id> <weight> [<x> <y>]        (one per node, ids 0..n-1 in order)
//	edge <u> <v> <weight>               (one per undirected edge, u < v)
//
// Blank lines and lines starting with '#' are ignored. WriteTo always emits
// nodes and edges in canonical order, so the format round-trips bit-for-bit.

// WriteTo serializes g in the text format. It returns the number of bytes
// written and the first write error, satisfying io.WriterTo.
//
// Lines are built with strconv.Append* into one reused buffer and streamed
// through a sized bufio.Writer: emitting a multi-million-node graph costs
// O(1) memory beyond the graph, and none of fmt's per-line verb parsing.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	const bufSize = 1 << 20
	bw := bufio.NewWriterSize(w, bufSize)
	var n int64
	write := func(buf []byte) error {
		c, err := bw.Write(buf)
		n += int64(c)
		return err
	}
	buf := make([]byte, 0, 128)
	buf = append(buf, "graph "...)
	buf = strconv.AppendInt(buf, int64(g.NumNodes()), 10)
	buf = append(buf, ' ')
	buf = strconv.AppendInt(buf, int64(g.NumEdges()), 10)
	if g.HasCoords() {
		buf = append(buf, " coords"...)
	}
	buf = append(buf, '\n')
	if err := write(buf); err != nil {
		return n, err
	}
	appendG := func(buf []byte, f float64) []byte {
		return strconv.AppendFloat(buf, f, 'g', -1, 64)
	}
	for v := 0; v < g.NumNodes(); v++ {
		buf = append(buf[:0], "node "...)
		buf = strconv.AppendInt(buf, int64(v), 10)
		buf = append(buf, ' ')
		buf = appendG(buf, g.NodeWeight(v))
		if g.HasCoords() {
			p := g.Coord(v)
			buf = append(buf, ' ')
			buf = appendG(buf, p.X)
			buf = append(buf, ' ')
			buf = appendG(buf, p.Y)
		}
		buf = append(buf, '\n')
		if err := write(buf); err != nil {
			return n, err
		}
	}
	var outerErr error
	g.Edges(func(u, v int, wt float64) bool {
		buf = append(buf[:0], "edge "...)
		buf = strconv.AppendInt(buf, int64(u), 10)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, int64(v), 10)
		buf = append(buf, ' ')
		buf = appendG(buf, wt)
		buf = append(buf, '\n')
		if err := write(buf); err != nil {
			outerErr = err
			return false
		}
		return true
	})
	if outerErr != nil {
		return n, outerErr
	}
	return n, bw.Flush()
}

// Read parses a graph in the text format. It validates the result before
// returning it.
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var b *Builder
	hasCoords := false
	lineNo := 0
	nodesSeen := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "graph":
			if b != nil {
				return nil, fmt.Errorf("graph: line %d: duplicate header", lineNo)
			}
			if len(fields) < 3 {
				return nil, fmt.Errorf("graph: line %d: malformed header", lineNo)
			}
			nn, err := strconv.Atoi(fields[1])
			if err != nil || nn < 0 {
				return nil, fmt.Errorf("graph: line %d: bad node count %q", lineNo, fields[1])
			}
			b = NewBuilder(nn)
			hasCoords = len(fields) > 3 && fields[3] == "coords"
		case "node":
			if b == nil {
				return nil, fmt.Errorf("graph: line %d: node before header", lineNo)
			}
			want := 3
			if hasCoords {
				want = 5
			}
			if len(fields) != want {
				return nil, fmt.Errorf("graph: line %d: node line needs %d fields, got %d", lineNo, want, len(fields))
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil || id < 0 || id >= b.NumNodes() {
				return nil, fmt.Errorf("graph: line %d: bad node id %q", lineNo, fields[1])
			}
			w, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad node weight %q", lineNo, fields[2])
			}
			b.SetNodeWeight(id, w)
			if hasCoords {
				x, err1 := strconv.ParseFloat(fields[3], 64)
				y, err2 := strconv.ParseFloat(fields[4], 64)
				if err1 != nil || err2 != nil {
					return nil, fmt.Errorf("graph: line %d: bad coordinates", lineNo)
				}
				b.SetCoord(id, Point{x, y})
			}
			nodesSeen++
		case "edge":
			if b == nil {
				return nil, fmt.Errorf("graph: line %d: edge before header", lineNo)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("graph: line %d: edge line needs 4 fields, got %d", lineNo, len(fields))
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			w, err3 := strconv.ParseFloat(fields[3], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("graph: line %d: malformed edge", lineNo)
			}
			if u < 0 || v < 0 || u >= b.NumNodes() || v >= b.NumNodes() || u == v {
				return nil, fmt.Errorf("graph: line %d: edge {%d,%d} out of range", lineNo, u, v)
			}
			b.AddEdge(u, v, w)
		default:
			return nil, fmt.Errorf("graph: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: read: %w", err)
	}
	if b == nil {
		return nil, fmt.Errorf("graph: empty input")
	}
	g := b.Build()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
