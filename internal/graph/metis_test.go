package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestMETISRoundTripUnit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := NewBuilder(25)
	for u := 0; u < 25; u++ {
		for v := u + 1; v < 25; v++ {
			if rng.Float64() < 0.2 {
				b.AddEdge(u, v, 1)
			}
		}
	}
	g := b.Build()
	var buf bytes.Buffer
	if err := g.WriteMETIS(&buf); err != nil {
		t.Fatal(err)
	}
	// Unit graph: no fmt code in header.
	first := strings.SplitN(buf.String(), "\n", 2)[0]
	if len(strings.Fields(first)) != 2 {
		t.Errorf("unit graph header %q should have 2 fields", first)
	}
	g2, err := ReadMETIS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, g2)
}

func TestMETISRoundTripWeighted(t *testing.T) {
	b := NewBuilder(4)
	b.SetNodeWeight(0, 3)
	b.SetNodeWeight(2, 2)
	b.AddEdge(0, 1, 5)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 7)
	g := b.Build()
	var buf bytes.Buffer
	if err := g.WriteMETIS(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.SplitN(buf.String(), "\n", 2)[0], "11") {
		t.Errorf("weighted graph header missing fmt 11: %q", buf.String())
	}
	g2, err := ReadMETIS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, g2)
	if g2.NodeWeight(0) != 3 || g2.NodeWeight(1) != 1 {
		t.Error("node weights lost")
	}
}

func assertSameGraph(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("size mismatch: %d/%d vs %d/%d", a.NumNodes(), a.NumEdges(), b.NumNodes(), b.NumEdges())
	}
	a.Edges(func(u, v int, w float64) bool {
		if b.EdgeWeightBetween(u, v) != w {
			t.Errorf("edge {%d,%d} weight %v vs %v", u, v, w, b.EdgeWeightBetween(u, v))
		}
		return true
	})
}

func TestMETISKnownFixture(t *testing.T) {
	// The classic example from the METIS manual: 7 vertices, 11 edges.
	in := `% example graph
7 11
5 3 2
1 3 4
5 4 2 1
2 3 6 7
1 3 6
5 4 7
6 4
`
	g, err := ReadMETIS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 7 || g.NumEdges() != 11 {
		t.Fatalf("parsed %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if !g.HasEdge(0, 4) || !g.HasEdge(3, 6) || g.HasEdge(0, 6) {
		t.Error("edge structure wrong")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMETISIsolatedVertex(t *testing.T) {
	in := "3 1\n2\n1\n\n" // vertex 3 has no neighbors (empty line)
	g, err := ReadMETIS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.Degree(2) != 0 {
		t.Errorf("vertex 3 degree %d", g.Degree(2))
	}
}

func TestMETISRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"bad header":        "x y\n",
		"asymmetric":        "2 1\n2\n\n",
		"edge count":        "2 5\n2\n1\n",
		"self loop":         "2 1\n1\n1\n", // vertex 1 listing itself
		"neighbor range":    "2 1\n9\n1\n",
		"bad fmt":           "2 1 99\n2\n1\n",
		"missing ew":        "2 1 1\n2\n1 1\n",
		"asymmetric weight": "2 1 1\n2 5\n1 6\n",
		"truncated":         "3 2\n2\n1\n",
	}
	for name, in := range cases {
		if _, err := ReadMETIS(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestWriteMETISRejectsFractionalWeights(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 1, 1.5)
	var buf bytes.Buffer
	if err := b.Build().WriteMETIS(&buf); err == nil {
		t.Error("fractional edge weight accepted")
	}
	b2 := NewBuilder(2)
	b2.SetNodeWeight(0, 2.5)
	b2.AddEdge(0, 1, 2) // integral edge weight, fractional node weight
	if err := b2.Build().WriteMETIS(&buf); err == nil {
		t.Error("fractional node weight accepted")
	}
}

// Property: METIS round trip preserves arbitrary unit random graphs.
func TestQuickMETISRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		b := NewBuilder(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.25 {
					b.AddEdge(u, v, float64(1+rng.Intn(9)))
				}
			}
		}
		g := b.Build()
		var buf bytes.Buffer
		if g.WriteMETIS(&buf) != nil {
			return false
		}
		g2, err := ReadMETIS(&buf)
		if err != nil || g2.NumEdges() != g.NumEdges() {
			return false
		}
		ok := true
		g.Edges(func(u, v int, w float64) bool {
			if g2.EdgeWeightBetween(u, v) != w {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
