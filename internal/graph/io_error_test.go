package graph

import (
	"errors"
	"strings"
	"testing"
)

// failingWriter fails after n bytes, exercising WriteTo's error paths.
type failingWriter struct {
	n       int
	written int
}

var errDiskFull = errors.New("disk full")

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.n {
		can := w.n - w.written
		if can < 0 {
			can = 0
		}
		w.written += can
		return can, errDiskFull
	}
	w.written += len(p)
	return len(p), nil
}

func TestWriteToPropagatesErrors(t *testing.T) {
	b := NewBuilder(50)
	for i := 0; i+1 < 50; i++ {
		b.AddEdge(i, i+1, 1)
	}
	b.SetCoord(0, Point{1, 2})
	g := b.Build()

	// Establish the full size, then fail at several byte offsets spanning
	// header, node lines, and edge lines.
	var sb strings.Builder
	total, err := g.WriteTo(&sb)
	if err != nil {
		t.Fatal(err)
	}
	for _, limit := range []int{0, 3, int(total) / 2, int(total) - 2} {
		w := &failingWriter{n: limit}
		if _, err := g.WriteTo(w); err == nil {
			t.Errorf("limit %d: WriteTo succeeded despite failing writer", limit)
		}
	}
}

// errReader returns an error mid-stream, exercising Read's scanner error
// path.
type errReader struct {
	data string
	done bool
}

func (r *errReader) Read(p []byte) (int, error) {
	if r.done {
		return 0, errDiskFull
	}
	r.done = true
	return copy(p, r.data), nil
}

func TestReadPropagatesReaderErrors(t *testing.T) {
	r := &errReader{data: "graph 2 1\nnode 0 1\n"}
	if _, err := Read(r); err == nil {
		t.Error("Read succeeded despite reader error")
	}
}

func TestReadHugeLineRejected(t *testing.T) {
	// Scanner buffer is capped at 1 MiB; a longer line must error, not hang.
	long := "# " + strings.Repeat("x", 2<<20) + "\ngraph 1 0\nnode 0 1\n"
	if _, err := Read(strings.NewReader(long)); err == nil {
		t.Error("multi-megabyte line accepted")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 2)
	g := b.Build()

	// Corrupt in targeted ways and check Validate notices each.
	corrupt := func(name string, mutate func(*Graph)) {
		t.Helper()
		c := &Graph{
			offsets:    append([]int32(nil), g.offsets...),
			adj:        append([]int32(nil), g.adj...),
			edgeWeight: append([]float64(nil), g.edgeWeight...),
			nodeWeight: append([]float64(nil), g.nodeWeight...),
			numEdges:   g.numEdges,
		}
		mutate(c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted corrupted graph", name)
		}
	}
	corrupt("edge count", func(c *Graph) { c.numEdges = 7 })
	corrupt("node weights", func(c *Graph) { c.nodeWeight = c.nodeWeight[:1] })
	corrupt("asymmetric weight", func(c *Graph) { c.edgeWeight[0] = 99 })
	corrupt("out of range neighbor", func(c *Graph) { c.adj[0] = 77 })
	corrupt("self loop", func(c *Graph) {
		// Make node 1's first neighbor itself.
		c.adj[c.offsets[1]] = 1
	})
}
