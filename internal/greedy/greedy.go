// Package greedy implements two further deterministic baselines from the
// families the paper's introduction surveys: a BFS region-growing
// partitioner (a simple clustering/mincut-flavored heuristic, in the spirit
// of Farhat's greedy algorithm) and scattered decomposition (round-robin
// assignment, the classic cut-oblivious strawman used for load balancing
// irregular problems).
//
// Both are useful as GA seeds and as lower/upper anchors when reading the
// experiment tables: region growing is decent and cheap; scattered is
// perfectly balanced and maximally cut-hostile.
package greedy

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/partition"
)

// RegionGrow partitions g into parts parts by growing one region at a time:
// starting from a pseudo-peripheral node, a region absorbs the frontier
// node with the most neighbors already inside the region (ties: lower
// degree first, then lower id) until it reaches its size quota, then the
// next region starts from the unassigned node nearest the previous region's
// boundary. The last region takes whatever remains.
func RegionGrow(g *graph.Graph, parts int) (*partition.Partition, error) {
	n := g.NumNodes()
	if parts <= 0 {
		return nil, fmt.Errorf("greedy: invalid part count %d", parts)
	}
	p := partition.New(n, parts)
	if n == 0 {
		return p, nil
	}
	assigned := make([]bool, n)
	remaining := n
	start := g.PseudoPeripheral(0)

	for q := 0; q < parts; q++ {
		quota := remaining / (parts - q) // evens out rounding across regions
		if q == parts-1 {
			quota = remaining
		}
		if quota == 0 {
			continue
		}
		// Find a start node: `start` if unassigned, else the unassigned node
		// with the most assigned neighbors (touching previous regions), else
		// the lowest unassigned id.
		s := -1
		if !assigned[start] {
			s = start
		} else {
			bestTouch := -1
			for v := 0; v < n; v++ {
				if assigned[v] {
					continue
				}
				touch := 0
				for _, u := range g.Neighbors(v) {
					if assigned[u] {
						touch++
					}
				}
				if touch > bestTouch {
					bestTouch, s = touch, v
				}
			}
		}
		// Grow the region.
		p.Assign[s] = uint16(q)
		assigned[s] = true
		remaining--
		size := 1
		// inRegion counts, for each unassigned node, neighbors inside the
		// current region.
		inRegion := make([]int, n)
		for _, u := range g.Neighbors(s) {
			inRegion[u]++
		}
		for size < quota {
			best := -1
			for v := 0; v < n; v++ {
				if assigned[v] || inRegion[v] == 0 {
					continue
				}
				if best < 0 ||
					inRegion[v] > inRegion[best] ||
					(inRegion[v] == inRegion[best] && g.Degree(v) < g.Degree(best)) {
					best = v
				}
			}
			if best < 0 {
				// Region's component exhausted: jump to the lowest
				// unassigned node.
				for v := 0; v < n; v++ {
					if !assigned[v] {
						best = v
						break
					}
				}
			}
			p.Assign[best] = uint16(q)
			assigned[best] = true
			remaining--
			size++
			for _, u := range g.Neighbors(best) {
				inRegion[u]++
			}
		}
	}
	return p, nil
}

// Scattered performs scattered decomposition: nodes sorted by index are
// dealt round-robin to the parts. Perfect balance, no locality — the
// baseline that motivates everything else.
func Scattered(n, parts int) (*partition.Partition, error) {
	if parts <= 0 {
		return nil, fmt.Errorf("greedy: invalid part count %d", parts)
	}
	p := partition.New(n, parts)
	for v := 0; v < n; v++ {
		p.Assign[v] = uint16(v % parts)
	}
	return p, nil
}

// StripIndex partitions by sorting nodes on one coordinate (x if wide,
// y otherwise) and slicing into contiguous strips — one-level coordinate
// decomposition, the "geometry-based mapping" strawman. Requires
// coordinates.
func StripIndex(g *graph.Graph, parts int) (*partition.Partition, error) {
	n := g.NumNodes()
	if parts <= 0 {
		return nil, fmt.Errorf("greedy: invalid part count %d", parts)
	}
	if !g.HasCoords() {
		return nil, fmt.Errorf("greedy: StripIndex requires coordinates")
	}
	p := partition.New(n, parts)
	if n == 0 {
		return p, nil
	}
	minX, maxX := g.Coord(0).X, g.Coord(0).X
	minY, maxY := g.Coord(0).Y, g.Coord(0).Y
	for v := 1; v < n; v++ {
		c := g.Coord(v)
		if c.X < minX {
			minX = c.X
		}
		if c.X > maxX {
			maxX = c.X
		}
		if c.Y < minY {
			minY = c.Y
		}
		if c.Y > maxY {
			maxY = c.Y
		}
	}
	byX := maxX-minX >= maxY-minY
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ca, cb := g.Coord(order[a]), g.Coord(order[b])
		if byX {
			if ca.X != cb.X {
				return ca.X < cb.X
			}
			return ca.Y < cb.Y
		}
		if ca.Y != cb.Y {
			return ca.Y < cb.Y
		}
		return ca.X < cb.X
	})
	for rank, v := range order {
		p.Assign[v] = uint16(rank * parts / n)
	}
	return p, nil
}
