package greedy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
)

func TestRegionGrowBalanced(t *testing.T) {
	g := gen.PaperGraph(167)
	for _, parts := range []int{2, 3, 4, 8} {
		p, err := RegionGrow(g, parts)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(g); err != nil {
			t.Fatal(err)
		}
		if !p.Balanced() {
			t.Errorf("parts=%d sizes %v", parts, p.PartSizes())
		}
	}
}

func TestRegionGrowBeatsScattered(t *testing.T) {
	g := gen.PaperGraph(144)
	rg, err := RegionGrow(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Scattered(g.NumNodes(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if rg.CutSize(g) >= sc.CutSize(g) {
		t.Errorf("region growing cut %v not better than scattered %v",
			rg.CutSize(g), sc.CutSize(g))
	}
}

func TestRegionGrowContiguousOnPath(t *testing.T) {
	// On a path the greedy regions must be contiguous intervals: cut = parts-1.
	b := graph.NewBuilder(20)
	for i := 0; i+1 < 20; i++ {
		b.AddEdge(i, i+1, 1)
	}
	g := b.Build()
	p, err := RegionGrow(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cut := p.CutSize(g); cut != 3 {
		t.Errorf("path region-grow cut = %v, want 3", cut)
	}
}

func TestRegionGrowDisconnected(t *testing.T) {
	// Two components; quota forces a region to span both.
	b := graph.NewBuilder(10)
	for i := 0; i+1 < 5; i++ {
		b.AddEdge(i, i+1, 1)
		b.AddEdge(5+i, 6+i, 1)
	}
	g := b.Build()
	p, err := RegionGrow(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Balanced() {
		t.Errorf("sizes %v", p.PartSizes())
	}
}

func TestScattered(t *testing.T) {
	p, err := Scattered(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Balanced() {
		t.Errorf("sizes %v", p.PartSizes())
	}
	if p.Assign[0] != 0 || p.Assign[1] != 1 || p.Assign[2] != 2 || p.Assign[3] != 0 {
		t.Errorf("not round-robin: %v", p.Assign)
	}
	if _, err := Scattered(5, 0); err == nil {
		t.Error("0 parts accepted")
	}
}

func TestStripIndex(t *testing.T) {
	g := gen.Grid(8, 8)
	p, err := StripIndex(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Balanced() {
		t.Errorf("sizes %v", p.PartSizes())
	}
	// 4 vertical strips of an 8x8 grid cut 3*8 = 24 edges.
	if cut := p.CutSize(g); cut != 24 {
		t.Errorf("strip cut = %v, want 24", cut)
	}
	// Requires coords.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 1)
	if _, err := StripIndex(b.Build(), 2); err == nil {
		t.Error("coordinate-free graph accepted")
	}
}

func TestErrors(t *testing.T) {
	g := gen.Mesh(20, 1)
	if _, err := RegionGrow(g, 0); err == nil {
		t.Error("RegionGrow 0 parts accepted")
	}
	if _, err := StripIndex(g, -1); err == nil {
		t.Error("StripIndex -1 parts accepted")
	}
	// Empty graph.
	empty := graph.NewBuilder(0).Build()
	if p, err := RegionGrow(empty, 2); err != nil || len(p.Assign) != 0 {
		t.Error("empty graph mishandled")
	}
}

func TestRegionGrowAsGASeed(t *testing.T) {
	// Region growing should produce a competitive seed: its cut must be
	// within 3x of RSB-quality on a mesh (loose, but catches regressions
	// to scattered-like behavior).
	g := gen.PaperGraph(98)
	p, err := RegionGrow(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	rnd := partition.RandomBalanced(g.NumNodes(), 4, rand.New(rand.NewSource(1)))
	if p.CutSize(g) >= rnd.CutSize(g)/2 {
		t.Errorf("region grow cut %v vs random %v — too weak", p.CutSize(g), rnd.CutSize(g))
	}
}

// Property: all three heuristics always produce valid, balanced partitions.
func TestQuickAllBalanced(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(80)
		g := gen.Mesh(n, seed)
		parts := 2 + rng.Intn(7)
		rg, err1 := RegionGrow(g, parts)
		sc, err2 := Scattered(n, parts)
		st, err3 := StripIndex(g, parts)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return rg.Balanced() && sc.Balanced() && st.Balanced() &&
			rg.Validate(g) == nil && sc.Validate(g) == nil && st.Validate(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
