package lp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
)

func testGraph(n int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	return gen.RandomGeometric(rng, n, math.Sqrt(2.56/float64(n)))
}

func refined(g *graph.Graph, cfg Config, seed int64) (*partition.Partition, *partition.Eval, int) {
	p := partition.RandomBalanced(g.NumNodes(), 8, rand.New(rand.NewSource(seed)))
	ev := partition.NewEvalBoundary(g, p)
	moves := RefineEval(g, p, ev, cfg)
	return p, ev, moves
}

func TestRefineReducesCutWithinCap(t *testing.T) {
	g := testGraph(4000, 1)
	p := partition.RandomBalanced(g.NumNodes(), 8, rand.New(rand.NewSource(2)))
	ev := partition.NewEvalBoundary(g, p)
	before := ev.TotalCutWeight()
	moves := RefineEval(g, p, ev, Config{Workers: 1})
	if moves == 0 {
		t.Fatal("no moves on a random partition of a geometric graph")
	}
	if after := ev.TotalCutWeight(); after >= before {
		t.Fatalf("cut did not drop: %v -> %v", before, after)
	}
	if err := p.Validate(g); err != nil {
		t.Fatalf("invalid partition after refinement: %v", err)
	}
	// RandomBalanced starts every part within the cap, and LP never pushes
	// a part over it, so the cap must hold on exit.
	maxLoad := g.TotalNodeWeight() / float64(p.Parts) * 1.02
	for q, w := range ev.Weights {
		if w > maxLoad+1e-9 {
			t.Fatalf("part %d weight %v exceeds cap %v", q, w, maxLoad)
		}
	}
}

func TestRefineWorkersBitIdentical(t *testing.T) {
	// The worker count is a pure speed knob: every width must produce the
	// identical move sequence and final assignment.
	g := testGraph(3000, 3)
	ref, _, refMoves := refined(g, Config{Workers: 1}, 4)
	for _, workers := range []int{2, 4, 8} {
		p, _, moves := refined(g, Config{Workers: workers}, 4)
		if moves != refMoves {
			t.Fatalf("workers=%d made %d moves, workers=1 made %d", workers, moves, refMoves)
		}
		for v := range p.Assign {
			if p.Assign[v] != ref.Assign[v] {
				t.Fatalf("workers=%d: node %d in part %d, workers=1 put it in %d", workers, v, p.Assign[v], ref.Assign[v])
			}
		}
	}
}

func TestScratchReuseBitIdentical(t *testing.T) {
	// A scratch recycled across refinements — of different graphs, in both
	// growing and shrinking order — must change nothing vs fresh state.
	var s Scratch
	for trial, n := range []int{2500, 800, 4000} {
		g := testGraph(n, int64(10+trial))
		ref, _, refMoves := refined(g, Config{Workers: 2}, int64(20+trial))
		p, _, moves := refined(g, Config{Workers: 2, Scratch: &s}, int64(20+trial))
		if moves != refMoves {
			t.Fatalf("n=%d: scratch run made %d moves, fresh made %d", n, moves, refMoves)
		}
		for v := range p.Assign {
			if p.Assign[v] != ref.Assign[v] {
				t.Fatalf("n=%d: node %d differs with reused scratch", n, v)
			}
		}
	}
}
