// Package lp implements greedy size-constrained label propagation: the cheap
// coarse-level refiner of the multilevel pipeline at the million-node tier,
// in the style of KaMinPar's LP refinement (Gottesbüren et al. '21).
//
// One pass sweeps the partition boundary once and moves each node to the
// neighboring part it is most strongly connected to, provided the move
// strictly reduces the cut and the target part stays under a hard weight
// cap. That is the whole algorithm: no gain heaps, no connectivity tables,
// no move log — O(deg) per boundary node and O(1) auxiliary state per
// candidate, which is why it scales to levels where the KL/FM machinery's
// Theta(n·parts) structures dominate wall time.
//
// The sweep is parallel under the repository-wide Workers bit-identity
// contract, borrowing the colored-tile discipline of package kl: the
// boundary snapshot is walked in index-contiguous tiles, each tile's induced
// subgraph is deterministically colored (par.Color), members of one color
// class — which share no edge — are gain-evaluated concurrently over
// par-owned index ranges, and commits replay serially in ascending node
// order. The worker count changes which goroutine evaluates which member,
// never a decision, so any width yields bit-identical partitions.
package lp

import (
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/partition"
)

// Config bounds a label-propagation refinement.
type Config struct {
	// MaxPasses caps the number of boundary sweeps; <= 0 selects 16 (a
	// safety bound — LP converges in a handful of passes).
	MaxPasses int
	// Workers bounds the goroutines of the colored gain evaluation (<= 0
	// selects GOMAXPROCS); a pure speed knob under the bit-identity
	// contract.
	Workers int
	// BalanceFrac caps every part's weight at (1+BalanceFrac) times the
	// ideal (total node weight / parts); 0 selects 0.02. Moves may only
	// shrink a part that is over the cap, never push one over it; draining
	// inherited imbalance is the rebalancer's job, not LP's.
	BalanceFrac float64
	// Stop, when non-nil, is polled before each pass; pass boundaries are
	// consistent states (every move goes through the Eval), so an early
	// return yields a valid, just less refined, partition.
	Stop func() bool
	// Scratch, when non-nil, supplies the sweep's working memory so
	// repeated refinements recycle buffers; results are bit-identical with
	// and without one.
	Scratch *Scratch
}

// Scratch owns RefineEval's working state across calls. The zero value is
// ready to use. Not safe for concurrent use.
type Scratch struct {
	s sweeper
}

// tileSize matches package kl's colored climb: tiles are part of the
// algorithm's definition (never derived from the worker count), so every
// width sweeps the identical (tile, color, index) order.
const tileSize = 512

// moveCand accumulates one candidate destination: the target part and the
// total weight of the member's edges into it, in first-seen neighbor order.
type moveCand struct {
	to  int32
	wTo float64
}

// workerScratch is one worker's per-part dedup state; rows are invalidated
// by bumping the stamp, never by zeroing.
type workerScratch struct {
	seen  []int32
	idx   []int32
	stamp int32
}

// sweeper carries one refinement's state; all slices are reused across
// tiles, classes, and passes.
type sweeper struct {
	bIndex    []int32 // graph node -> 1 + position in the current tile; 0 = absent
	bsnap     []int   // per-pass ascending boundary snapshot
	members   []int32 // tile nodes grouped by color
	classOff  []int32
	classFill []int32
	off       []int32 // candidate range start per class member
	bestTo    []int32 // chosen destination per class member; -1 = stay
	cands     []moveCand
	workers   []workerScratch
	colors    par.ColorScratch
}

// RefineEval improves p in place through ev (which must track the boundary;
// aggregates and boundary stay exact move by move) and returns the number of
// moves made. ev must be in sync with p on entry. The objective driven down
// is always the total edge cut — LP is the cheap coarse-level refiner, and
// at the levels it runs on, cut is the only objective whose gain is O(deg);
// callers optimizing other objectives still profit because every committed
// move strictly reduces cut without growing any part past the cap.
func RefineEval(g *graph.Graph, p *partition.Partition, ev *partition.Eval, cfg Config) int {
	if !ev.TracksBoundary() {
		ev.ResetBoundaryPar(g, p, cfg.Workers)
	}
	maxPasses := cfg.MaxPasses
	if maxPasses <= 0 {
		maxPasses = 16
	}
	balance := cfg.BalanceFrac
	if balance == 0 {
		balance = 0.02
	}
	var s *sweeper
	if cfg.Scratch != nil {
		s = &cfg.Scratch.s
	} else {
		s = new(sweeper)
	}
	maxLoad := g.TotalNodeWeight() / float64(p.Parts) * (1 + balance)
	workers := par.Workers(cfg.Workers)
	if len(s.workers) < workers || (len(s.workers) > 0 && len(s.workers[0].seen) < p.Parts) {
		s.workers = make([]workerScratch, workers)
		for w := range s.workers {
			s.workers[w] = workerScratch{
				seen: make([]int32, p.Parts),
				idx:  make([]int32, p.Parts),
			}
		}
	}
	// Restart the dedup stamps every refinement: a reused scratch in a
	// long-lived process must never wrap a stamp back into a stale seen
	// entry.
	for w := range s.workers {
		sc := &s.workers[w]
		for i := range sc.seen {
			sc.seen[i] = 0
		}
		sc.stamp = 1
	}
	if len(s.bIndex) < g.NumNodes() {
		s.bIndex = make([]int32, g.NumNodes())
	}
	moves := 0
	for pass := 0; pass < maxPasses; pass++ {
		if cfg.Stop != nil && cfg.Stop() {
			break
		}
		m := s.pass(g, p, ev, workers, maxLoad)
		moves += m
		if m == 0 {
			break
		}
	}
	return moves
}

// pass sweeps the boundary once in (tile, color, ascending index) order.
func (s *sweeper) pass(g *graph.Graph, p *partition.Partition, ev *partition.Eval, workers int, maxLoad float64) int {
	s.bsnap = ev.AppendBoundary(s.bsnap)
	b := s.bsnap
	moves := 0
	for lo := 0; lo < len(b); lo += tileSize {
		hi := lo + tileSize
		if hi > len(b) {
			hi = len(b)
		}
		moves += s.sweepTile(g, p, ev, workers, maxLoad, b[lo:hi])
	}
	return moves
}

// sweepTile colors the tile's induced subgraph and sweeps its color classes
// in ascending color order, exactly like kl's colored climb: tiles run
// sequentially, so only intra-tile adjacency needs coloring.
func (s *sweeper) sweepTile(g *graph.Graph, p *partition.Partition, ev *partition.Eval, workers int, maxLoad float64, tile []int) int {
	for i, v := range tile {
		s.bIndex[v] = int32(i + 1)
	}
	colors := s.colors.Color(workers, len(tile), func(i int, visit func(u int)) {
		for _, u := range g.Neighbors(tile[i]) {
			if j := s.bIndex[u]; j > 0 {
				visit(int(j - 1))
			}
		}
	})
	nColors := 0
	for _, cl := range colors {
		if int(cl) >= nColors {
			nColors = int(cl) + 1
		}
	}
	s.classOff = ensureInt32(s.classOff, nColors+1)
	for i := range s.classOff {
		s.classOff[i] = 0
	}
	for _, cl := range colors {
		s.classOff[cl+1]++
	}
	for cl := 0; cl < nColors; cl++ {
		s.classOff[cl+1] += s.classOff[cl]
	}
	s.members = ensureInt32(s.members, len(tile))
	s.classFill = ensureInt32(s.classFill, nColors)
	for i := range s.classFill {
		s.classFill[i] = 0
	}
	for i, v := range tile {
		cl := colors[i]
		s.members[s.classOff[cl]+s.classFill[cl]] = int32(v)
		s.classFill[cl]++
	}
	for _, v := range tile {
		s.bIndex[v] = 0
	}
	moves := 0
	for cl := 0; cl < nColors; cl++ {
		moves += s.sweepClass(g, p, ev, workers, maxLoad, s.members[s.classOff[cl]:s.classOff[cl+1]])
	}
	return moves
}

// sweepClass evaluates every member's label vote in parallel against the
// class-start state — legal because class members share no edge, so a
// member's neighborhood is untouched until its own commit slot — then
// commits serially in ascending node order under the current part weights.
func (s *sweeper) sweepClass(g *graph.Graph, p *partition.Partition, ev *partition.Eval, workers int, maxLoad float64, members []int32) int {
	m := len(members)
	s.off = ensureInt32(s.off, m+1)
	s.bestTo = ensureInt32(s.bestTo, m)
	s.off[0] = 0
	for j, v := range members {
		s.off[j+1] = s.off[j] + int32(len(g.Neighbors(int(v))))
	}
	if need := int(s.off[m]); cap(s.cands) < need {
		s.cands = make([]moveCand, need)
	} else {
		s.cands = s.cands[:need]
	}
	assign := p.Assign
	// Tiny classes run inline, like kl's sweep: evaluation writes only
	// index-owned slots, so the cutoff cannot change results.
	w := workers
	if m < 32 {
		w = 1
	}
	par.For(w, m, func(worker, lo, hi int) {
		sc := &s.workers[worker]
		for j := lo; j < hi; j++ {
			v := int(members[j])
			from := assign[v]
			base := int(s.off[j])
			k := int32(0)
			var wFrom float64
			ws := g.EdgeWeights(v)
			for i, u := range g.Neighbors(v) {
				weight := ws[i]
				q := assign[u]
				if q == from {
					wFrom += weight
					continue
				}
				if sc.seen[q] != sc.stamp {
					sc.seen[q] = sc.stamp
					sc.idx[q] = k
					s.cands[base+int(k)] = moveCand{to: int32(q), wTo: weight}
					k++
				} else {
					s.cands[base+int(sc.idx[q])].wTo += weight
				}
			}
			sc.stamp++
			// The label vote: strongest foreign connection, first-seen order
			// breaking ties, kept only if it strictly beats the home part.
			best := int32(-1)
			bestW := wFrom
			for c := int32(0); c < k; c++ {
				if cd := s.cands[base+int(c)]; cd.wTo > bestW {
					best, bestW = cd.to, cd.wTo
				}
			}
			s.bestTo[j] = best
		}
	})
	moves := 0
	for j := 0; j < m; j++ {
		to := s.bestTo[j]
		if to < 0 {
			continue
		}
		v := int(members[j])
		// The size constraint, checked against the live weights at commit
		// time (earlier commits in this class may have filled the target).
		if ev.Weights[to]+g.NodeWeight(v) > maxLoad {
			continue
		}
		ev.Move(g, p, v, int(to))
		moves++
	}
	return moves
}

func ensureInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}
