package algo

import (
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/partition"
)

func TestSupportsObjective(t *testing.T) {
	none := Info{Name: "x"}
	if !none.SupportsObjective(partition.TotalCut) {
		t.Error("every algorithm must support the default cut objective")
	}
	if none.SupportsObjective(partition.WorstCut) || none.SupportsObjective(partition.CommVolume) {
		t.Error("undeclared objectives reported as supported")
	}
	some := Info{Name: "y", Objectives: []partition.Objective{partition.WorstCut}}
	if !some.SupportsObjective(partition.WorstCut) {
		t.Error("declared objective reported as unsupported")
	}
	if some.SupportsObjective(partition.CommVolume) {
		t.Error("commvol reported as supported without a declaration")
	}
}

// Run must reject an objective the algorithm does not declare — before doing
// any work — and never silently optimize a different objective.
func TestRunValidatesObjective(t *testing.T) {
	g := gen.Mesh(120, 7)
	for _, c := range []struct {
		algo string
		o    partition.Objective
	}{
		{"grow", partition.WorstCut},
		{"grow", partition.CommVolume},
		{"fm", partition.CommVolume},
		{"multilevel-fm", partition.CommVolume},
		{"rsb", partition.WorstCut},
	} {
		opt := quickOpt(4)
		opt.Objective = c.o
		_, err := Run(g, c.algo, opt)
		if err == nil || !strings.Contains(err.Error(), "does not support objective") {
			t.Errorf("%s with %s: got %v, want unsupported-objective error", c.algo, c.o.FlagName(), err)
		}
	}
}

// Registry-wide objective conformance: every (algorithm, declared objective)
// pair must actually run and return a valid deterministic partition — a
// declaration without an implementation is a lie the service layer would
// forward to clients.
func TestRegistryObjectiveConformance(t *testing.T) {
	g := gen.Mesh(240, 7)
	const parts = 4
	for _, name := range Names() {
		prov, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		info := prov.Info()
		if info.NeedsCoords && !g.HasCoords() {
			continue
		}
		for _, o := range info.Objectives {
			name, o := name, o
			t.Run(name+"/"+o.FlagName(), func(t *testing.T) {
				opt := quickOpt(parts)
				opt.Objective = o
				p, err := Run(g, name, opt)
				if err != nil {
					t.Fatalf("Run: %v", err)
				}
				if err := p.Validate(g); err != nil {
					t.Fatalf("invalid partition: %v", err)
				}
				p2, err := Run(g, name, opt)
				if err != nil {
					t.Fatalf("second run: %v", err)
				}
				for v := range p.Assign {
					if p.Assign[v] != p2.Assign[v] {
						t.Fatal("objective run not reproducible for a fixed seed")
					}
				}
			})
		}
	}
}

// The Workers determinism contract holds under every objective the multilevel
// pipelines declare: worker width must never leak into the result.
func TestMultilevelObjectiveWorkersBitIdentical(t *testing.T) {
	g := gen.Mesh(1200, 9)
	for _, name := range []string{"multilevel-kl", "multilevel-fm"} {
		prov, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range prov.Info().Objectives {
			opt := quickOpt(4)
			opt.Objective = o
			opt.Workers = 1
			ref, err := Run(g, name, opt)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, o.FlagName(), err)
			}
			for _, w := range []int{2, 4, 8} {
				opt.Workers = w
				p, err := Run(g, name, opt)
				if err != nil {
					t.Fatalf("%s/%s workers=%d: %v", name, o.FlagName(), w, err)
				}
				for v := range ref.Assign {
					if ref.Assign[v] != p.Assign[v] {
						t.Fatalf("%s/%s: workers=%d node %d in part %d, serial %d",
							name, o.FlagName(), w, v, p.Assign[v], ref.Assign[v])
					}
				}
			}
		}
	}
}
