package algo

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
)

// quickOpt keeps the stochastic algorithms cheap enough to conformance-test
// the whole registry; the contract must hold at any budget.
func quickOpt(parts int) Options {
	return Options{
		Parts:       parts,
		Seed:        1994,
		Generations: 25,
		PopSize:     32,
		Islands:     2,
	}
}

// TestRegistryConformance is the registry-wide contract: every registered
// partitioner, run through the same entry point on the same graph, returns a
// valid k-way partition, keeps every part within the balance tolerance, uses
// every part, and reproduces itself exactly for a fixed seed.
func TestRegistryConformance(t *testing.T) {
	g := gen.Mesh(240, 7)
	if !g.HasCoords() {
		t.Fatal("conformance mesh must carry coordinates so geometric algorithms run")
	}
	const parts = 4
	ideal := g.TotalNodeWeight() / parts
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			p, err := Run(g, name, quickOpt(parts))
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if err := p.Validate(g); err != nil {
				t.Fatalf("invalid partition: %v", err)
			}
			if p.Parts != parts {
				t.Fatalf("asked for %d parts, got %d", parts, p.Parts)
			}
			for q, w := range p.PartWeights(g) {
				if w == 0 {
					t.Errorf("part %d is empty", q)
				}
				if w > ideal*(1+BalanceTolerance) {
					t.Errorf("part %d weight %.0f exceeds tolerance (ideal %.1f, max %.1f)",
						q, w, ideal, ideal*(1+BalanceTolerance))
				}
			}
			p2, err := Run(g, name, quickOpt(parts))
			if err != nil {
				t.Fatalf("second run: %v", err)
			}
			for v := range p.Assign {
				if p.Assign[v] != p2.Assign[v] {
					t.Fatalf("not deterministic for fixed seed: node %d got parts %d and %d",
						v, p.Assign[v], p2.Assign[v])
				}
			}
		})
	}
}

// TestRegistryConformanceDiverse re-runs the registry contract on the
// diverse graph families (power-law, random-geometric, 3-D grid): structure
// the mesh suite cannot exercise — hubs, high clustering, quadratic
// separators, and graphs with no geometric embedding. Coordinate-requiring
// algorithms are validated on the embedded member and skipped (with an
// error, not a wrong answer) on the others.
func TestRegistryConformanceDiverse(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"powerlaw", gen.PowerLaw(240, 3, 77)},
		{"rgg", gen.RandomGeometric(rng, 300, 0.11)},
		{"grid3d", gen.Grid3D(6, 6, 6)},
	}
	const parts = 4
	for _, tc := range graphs {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			ideal := tc.g.TotalNodeWeight() / parts
			for _, name := range Names() {
				p, err := Get(name)
				if err != nil {
					t.Fatal(err)
				}
				if p.Info().NeedsCoords && !tc.g.HasCoords() {
					if _, err := Run(tc.g, name, quickOpt(parts)); err == nil {
						t.Errorf("%s: accepted a graph without coordinates", name)
					}
					continue
				}
				res, err := Run(tc.g, name, quickOpt(parts))
				if err != nil {
					t.Errorf("%s: %v", name, err)
					continue
				}
				if err := res.Validate(tc.g); err != nil {
					t.Errorf("%s: %v", name, err)
					continue
				}
				for q, w := range res.PartWeights(tc.g) {
					if w == 0 {
						t.Errorf("%s: part %d is empty", name, q)
					}
					if w > ideal*(1+BalanceTolerance) {
						t.Errorf("%s: part %d weight %.0f exceeds tolerance (ideal %.1f)",
							name, q, w, ideal)
					}
				}
			}
		})
	}
}

// TestMultilevelWorkersBitIdentical pins the registry-level contract that
// Options.Workers — like EvalWorkers — is a pure speed knob: the whole
// V-cycle (coarsening proposals, contraction merges, refinement) must give
// the same partition for every width.
func TestMultilevelWorkersBitIdentical(t *testing.T) {
	g := gen.Mesh(700, 19)
	for _, name := range []string{"multilevel-kl", "multilevel-fm", "multilevel-rsb"} {
		opt := quickOpt(4)
		base, err := Run(g, name, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, workers := range []int{2, 3, 0} {
			o := opt
			o.Workers = workers
			p, err := Run(g, name, o)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			for v := range p.Assign {
				if p.Assign[v] != base.Assign[v] {
					t.Fatalf("%s: Workers=%d changed the result at node %d (%d vs %d)",
						name, workers, v, p.Assign[v], base.Assign[v])
				}
			}
		}
	}
}

// TestRegistryConformanceOddParts re-runs the contract with a non-power-of-
// two part count for every algorithm that supports one.
func TestRegistryConformanceOddParts(t *testing.T) {
	g := gen.Mesh(150, 11)
	const parts = 3
	ideal := g.TotalNodeWeight() / parts
	for _, name := range Names() {
		p, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Info().PowerOfTwoParts {
			continue
		}
		res, err := Run(g, name, quickOpt(parts))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := res.Validate(g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for q, w := range res.PartWeights(g) {
			if w > ideal*(1+BalanceTolerance) {
				t.Errorf("%s: part %d weight %.0f exceeds tolerance (ideal %.1f)", name, q, w, ideal)
			}
		}
	}
}

func TestRunRejectsInvalidRequests(t *testing.T) {
	withCoords := gen.Grid(6, 6)
	noCoords := func() *graph.Graph {
		b := graph.NewBuilder(8)
		for v := 1; v < 8; v++ {
			b.AddEdge(v-1, v, 1)
		}
		return b.Build()
	}()

	if _, err := Run(withCoords, "no-such-algorithm", Options{Parts: 2}); err == nil ||
		!strings.Contains(err.Error(), "available:") {
		t.Errorf("unknown name: want error listing available algorithms, got %v", err)
	}
	if _, err := Run(withCoords, "kl", Options{Parts: 0}); err == nil {
		t.Error("parts=0 accepted")
	}
	if _, err := Run(noCoords, "ibp", Options{Parts: 2}); err == nil {
		t.Error("coordinate-requiring algorithm accepted a graph without coordinates")
	}
	if _, err := Run(withCoords, "rsb", Options{Parts: 3}); err == nil {
		t.Error("power-of-two algorithm accepted 3 parts")
	}
}

func TestNamesCoverEveryFamily(t *testing.T) {
	have := map[string]bool{}
	for _, n := range Names() {
		have[n] = true
	}
	for _, want := range []string{
		"dknux", "knux", "ux", "2pt", // GA family
		"rsb", "ibp", "rcb", "rgb", // geometric / spectral baselines
		"kl", "fm", "anneal", "grow", "scattered", "strip", // flat heuristics
		"multilevel", "multilevel-kl", "multilevel-fm", "multilevel-rsb", "multilevel-ga",
	} {
		if !have[want] {
			t.Errorf("registry is missing %q", want)
		}
	}
}

func TestRegisterPanicsOnDuplicate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	Register(New(Info{Name: "kl"}, func(g *graph.Graph, opt Options) (*partition.Partition, error) {
		return nil, nil
	}))
}

// TestMultilevelBeatsScatteredByFar is a cheap end-to-end quality floor for
// the composed pipeline through the registry entry point.
func TestMultilevelBeatsScatteredByFar(t *testing.T) {
	g := gen.Mesh(600, 3)
	ml, err := Run(g, "multilevel-kl", Options{Parts: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Run(g, "scattered", Options{Parts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if mlCut, scCut := ml.CutSize(g), sc.CutSize(g); mlCut > scCut/4 {
		t.Errorf("multilevel cut %.0f not far below scattered %.0f", mlCut, scCut)
	}
}
