package algo

import (
	"math/rand"

	"repro/internal/anneal"
	"repro/internal/dpga"
	"repro/internal/fm"
	"repro/internal/ga"
	"repro/internal/graph"
	"repro/internal/greedy"
	"repro/internal/ibp"
	"repro/internal/kl"
	"repro/internal/multilevel"
	"repro/internal/partition"
	"repro/internal/rcb"
	"repro/internal/spectral"
)

func init() {
	// Genetic-algorithm family (the paper's subject).
	for _, op := range []struct{ name, desc string }{
		{"dknux", "distributed GA with the paper's DKNUX crossover (best overall in the paper)"},
		{"knux", "GA with knowledge-based nonuniform crossover"},
		{"ux", "GA with uniform crossover"},
		{"2pt", "GA with two-point crossover"},
	} {
		op := op
		Register(New(Info{
			Name: op.name, Description: op.desc, Stochastic: true,
			Objectives: []partition.Objective{partition.WorstCut},
		},
			func(g *graph.Graph, opt Options) (*partition.Partition, error) {
				return runGA(g, op.name, opt)
			}))
	}

	Register(New(Info{
		Name:            "rsb",
		Description:     "recursive spectral bisection (Fiedler-vector median splits)",
		PowerOfTwoParts: true,
		Stochastic:      true, // Lanczos starts from a random vector
	}, func(g *graph.Graph, opt Options) (*partition.Partition, error) {
		return spectral.PartitionIter(g, opt.Parts, rand.New(rand.NewSource(opt.Seed)), opt.LanczosIter)
	}))

	Register(New(Info{
		Name:        "ibp",
		Description: "index-based partitioning over the shuffled row-major (Morton) order",
		NeedsCoords: true,
	}, func(g *graph.Graph, opt Options) (*partition.Partition, error) {
		return ibp.Partition(g, opt.Parts, ibp.ShuffledRowMajor)
	}))

	Register(New(Info{
		Name:            "rcb",
		Description:     "recursive coordinate bisection",
		NeedsCoords:     true,
		PowerOfTwoParts: true,
	}, func(g *graph.Graph, opt Options) (*partition.Partition, error) {
		return rcb.Partition(g, opt.Parts, rcb.Coordinate)
	}))

	Register(New(Info{
		Name:            "rgb",
		Description:     "recursive graph (BFS-order) bisection",
		PowerOfTwoParts: true,
	}, func(g *graph.Graph, opt Options) (*partition.Partition, error) {
		return rcb.Partition(g, opt.Parts, rcb.GraphBFS)
	}))

	Register(New(Info{
		Name:        "kl",
		Description: "flat Kernighan–Lin: region-growing start, colored boundary hill climbing to convergence",
		Objectives:  []partition.Objective{partition.WorstCut, partition.CommVolume},
	}, func(g *graph.Graph, opt Options) (*partition.Partition, error) {
		p, err := greedy.RegionGrow(g, opt.Parts)
		if err != nil {
			return nil, err
		}
		kl.RefineEvalParStop(g, p, nil, opt.Objective, opt.RefinePasses, opt.Workers, opt.stop())
		return p, nil
	}))

	Register(New(Info{
		Name:        "fm",
		Description: "flat Fiduccia–Mattheyses: region-growing start, bucket-gain passes",
		Objectives:  []partition.Objective{partition.WorstCut},
	}, func(g *graph.Graph, opt Options) (*partition.Partition, error) {
		p, err := greedy.RegionGrow(g, opt.Parts)
		if err != nil {
			return nil, err
		}
		fm.Refine(g, p, fm.Config{MaxPasses: opt.RefinePasses, Workers: opt.Workers, Objective: opt.Objective, Stop: opt.stop()})
		return p, nil
	}))

	Register(New(Info{
		Name:        "anneal",
		Description: "simulated annealing over single-node moves (geometric cooling)",
		Stochastic:  true,
		Objectives:  []partition.Objective{partition.WorstCut},
	}, func(g *graph.Graph, opt Options) (*partition.Partition, error) {
		return anneal.Partition(g, anneal.Config{
			Parts:     opt.Parts,
			Objective: opt.Objective,
			Seed:      opt.Seed,
		})
	}))

	Register(New(Info{
		Name:        "grow",
		Description: "greedy BFS region growing (deterministic baseline and common seed)",
	}, func(g *graph.Graph, opt Options) (*partition.Partition, error) {
		return greedy.RegionGrow(g, opt.Parts)
	}))

	Register(New(Info{
		Name:        "scattered",
		Description: "round-robin scattered decomposition (cut-oblivious strawman)",
	}, func(g *graph.Graph, opt Options) (*partition.Partition, error) {
		return greedy.Scattered(g.NumNodes(), opt.Parts)
	}))

	Register(New(Info{
		Name:        "strip",
		Description: "index-order strip decomposition",
		NeedsCoords: true, // slices along the wider coordinate axis
	}, func(g *graph.Graph, opt Options) (*partition.Partition, error) {
		return greedy.StripIndex(g, opt.Parts)
	}))

	// Multilevel pipeline: coarsen by heavy-edge matching, solve the
	// coarsest graph with the named inner algorithm, project back up with
	// per-level refinement. "multilevel" is the workhorse configuration
	// (KL inner, KL boundary refinement); the suffixed variants swap the
	// inner solver and, for -fm, the refiner.
	// All declare maxcut; the KL-refined pipelines additionally declare
	// commvol (the pure-FM pipeline cannot — fm has no commvol support).
	registerMultilevel("multilevel", "kl", multilevel.RefineKLFM, Info{
		Description: "multilevel: heavy-edge coarsening, KL inner solver, boundary-KL/FM uncoarsening (same as multilevel-kl)",
		Objectives:  []partition.Objective{partition.WorstCut, partition.CommVolume},
	})
	registerMultilevel("multilevel-kl", "kl", multilevel.RefineKLFM, Info{
		Description: "multilevel with flat-KL inner solver and boundary-KL/FM refinement",
		Objectives:  []partition.Objective{partition.WorstCut, partition.CommVolume},
	})
	registerMultilevel("multilevel-fm", "fm", multilevel.RefineFM, Info{
		Description: "multilevel with FM inner solver and pure-FM refinement (plus rebalancing)",
		Objectives:  []partition.Objective{partition.WorstCut},
	})
	registerMultilevel("multilevel-rsb", "rsb", multilevel.RefineKLFM, Info{
		Description:     "multilevel with spectral (RSB) inner solver and boundary-KL/FM refinement",
		PowerOfTwoParts: true,
		Stochastic:      true,
		Objectives:      []partition.Objective{partition.WorstCut, partition.CommVolume},
	})
	registerMultilevel("multilevel-ga", "dknux", multilevel.RefineKLFM, Info{
		Description: "multilevel with the paper's DKNUX GA as inner solver and boundary-KL/FM refinement",
		Stochastic:  true,
		Objectives:  []partition.Objective{partition.WorstCut, partition.CommVolume},
	})
}

// registerMultilevel registers a multilevel pipeline whose coarsest graph is
// solved by the registered algorithm innerName. The inner algorithm is
// resolved at run time, so registration order does not matter.
func registerMultilevel(name, innerName string, refiner multilevel.Refiner, info Info) {
	info.Name = name
	info.Stochastic = true // heavy-edge matching visits nodes in seeded random order
	Register(New(info, func(g *graph.Graph, opt Options) (*partition.Partition, error) {
		inner := func(cg *graph.Graph, parts int, rng *rand.Rand) (*partition.Partition, error) {
			io := opt
			io.Parts = parts
			io.Seed = rng.Int63()
			// The coarsest graph is small; a reduced GA budget is ample
			// there unless the caller asked for a specific one.
			if io.PopSize == 0 {
				io.PopSize = 64
			}
			if io.Generations == 0 {
				io.Generations = 60
			}
			if io.Islands == 0 {
				io.Islands = 4
			}
			// The inner solver may honor fewer objectives than the pipeline
			// (e.g. the DKNUX GA has no commvol fitness): fall back to the
			// universal TotalCut for the coarse solve and let the declared
			// uncoarsening refiners drive the requested objective.
			if ip, err := Get(innerName); err == nil && !ip.Info().SupportsObjective(io.Objective) {
				io.Objective = partition.TotalCut
			}
			return Run(cg, innerName, io)
		}
		return multilevel.Partition(g, multilevel.Config{
			Parts:          opt.Parts,
			CoarsestSize:   opt.CoarsestSize,
			RefinePasses:   opt.RefinePasses,
			Refiner:        refiner,
			LPThreshold:    opt.LPThreshold,
			FMParThreshold: opt.FMParThreshold,
			Workers:        opt.Workers,
			Objective:      opt.Objective,
			Seed:           opt.Seed,
			Stats:          opt.MultilevelStats,
			Stop:           opt.stop(),
		}, inner)
	}))
}

// runGA runs the paper's GA family: single population for Islands <= 1, the
// distributed island model otherwise. When the graph has coordinates the
// population is seeded with an IBP partition (the paper's recommended
// practice); otherwise it starts from random balanced partitions.
func runGA(g *graph.Graph, operator string, o Options) (*partition.Partition, error) {
	opt := o.withDefaults()
	var seeds []*partition.Partition
	if g.HasCoords() {
		if s, err := ibp.Partition(g, opt.Parts, ibp.ShuffledRowMajor); err == nil {
			seeds = append(seeds, s)
		}
	}
	estimate := func(i int) *partition.Partition {
		if len(seeds) > 0 {
			return seeds[i%len(seeds)]
		}
		return partition.RandomBalanced(g.NumNodes(), opt.Parts, rand.New(rand.NewSource(opt.Seed+int64(i))))
	}
	mkOp := func(i int) ga.Crossover {
		switch operator {
		case "dknux":
			return ga.NewDKNUX(estimate(i))
		case "knux":
			return ga.NewKNUX(estimate(i))
		case "ux":
			return ga.Uniform{}
		default: // "2pt"
			return ga.KPoint{K: 2}
		}
	}
	base := ga.Config{
		Parts:       opt.Parts,
		Objective:   opt.Objective,
		PopSize:     opt.PopSize,
		Seeds:       seeds,
		EvalWorkers: opt.EvalWorkers,
		Seed:        opt.Seed,
	}
	stop := o.stop()
	if opt.Islands <= 1 {
		base.Crossover = mkOp(0)
		e, err := ga.New(g, base)
		if err != nil {
			return nil, err
		}
		defer e.Close()
		// Cancellation checkpoint: between generations, the single-population
		// engine's only serial point.
		for i := 0; i < opt.Generations; i++ {
			if stop != nil && stop() {
				break
			}
			e.Step()
		}
		return e.Best().Part, nil
	}
	m, err := dpga.New(g, dpga.Config{
		Base:             base,
		Islands:          opt.Islands,
		Parallel:         true,
		CrossoverFactory: mkOp,
		Stop:             stop,
	})
	if err != nil {
		return nil, err
	}
	return m.Run(opt.Generations).Part, nil
}
