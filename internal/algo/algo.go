// Package algo is the unified entry point to every graph partitioner in
// this repository. Each algorithm registers itself under a stable name
// ("dknux", "rsb", "multilevel-kl", ...) with a declared set of input
// constraints, and callers — the CLIs, the benchmark harness, and tests —
// select algorithms by name instead of hard-coding per-package call sites.
//
// The registry makes every partitioner satisfy one contract, checked by the
// conformance tests in this package: given a graph and Options, it returns a
// valid k-way partition, balanced within BalanceTolerance, and is
// deterministic for a fixed Options.Seed.
package algo

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/graph"
	"repro/internal/multilevel"
	"repro/internal/partition"
)

// BalanceTolerance is the registry-wide balance contract: every registered
// partitioner must produce parts whose node weight is at most
// (1 + BalanceTolerance) x the ideal W/parts on the conformance suite. It is
// deliberately loose — individual algorithms (KL rebalancing, FM's slack,
// the GA's imbalance penalty) enforce much tighter balance — and exists so
// no registered algorithm can silently trade all balance for cut.
const BalanceTolerance = 0.30

// Options carries every knob a registered partitioner may consult. A zero
// value (plus Parts) is a sensible request; algorithms ignore fields they
// have no use for, so one Options works across the whole registry.
type Options struct {
	Parts     int                 // number of parts (required, >= 1)
	Objective partition.Objective // fitness for the stochastic algorithms
	Seed      int64               // RNG seed; equal Options give equal results

	// Genetic-algorithm family (dknux, knux, ux, 2pt, multilevel-ga).
	Generations int // default 200
	PopSize     int // total population across islands; default 320
	Islands     int // subpopulations; default 16, 1 = single population
	EvalWorkers int // parallel fitness evaluation width (0 = auto)

	// Refinement family (kl, fm, multilevel-*).
	RefinePasses int // 0 = algorithm default (unlimited for kl, 4 per level for multilevel)
	CoarsestSize int // multilevel: stop coarsening at this many nodes; 0 = 64
	// LPThreshold switches multilevel uncoarsening levels with at least
	// this many nodes to the label-propagation refiner (package lp), whose
	// cost is O(boundary·deg) instead of the KL/FM gain machinery's
	// Theta(n·parts). 0 = the multilevel default (250k nodes); negative
	// disables label propagation so every level uses the configured
	// refiner.
	LPThreshold int
	// FMParThreshold switches multilevel uncoarsening levels with at least
	// this many nodes from the serial FM heap pass to the
	// deterministic-parallel colored schedule (fm.RefineEvalPar), which fans
	// the gain evaluation out over Workers without giving up the Workers
	// bit-identity contract. 0 = the multilevel default (50k nodes);
	// negative pins every level to the serial pass. Result-affecting: the
	// two passes are distinct deterministic algorithms.
	FMParThreshold int
	// Workers bounds the goroutines the parallel phases may use: the
	// multilevel pipeline's coarsening/contraction AND its uncoarsening
	// (projection, boundary rebuilds, colored refinement), plus the flat
	// kl/fm refiners' gain evaluation (0 = auto). Like EvalWorkers, it is a
	// pure speed knob: results are bit-identical for every value.
	Workers int

	// Spectral family (rsb, multilevel-rsb).
	// LanczosIter caps the Krylov dimension of each Fiedler-vector solve
	// (0 = the solver default, currently 40). Lanczos with full
	// reorthogonalization costs O(LanczosIter² · n) per bisection level, so
	// this knob is the budget that keeps spectral bisection's runtime
	// bounded and predictable on large graphs.
	LanczosIter int

	// Ctx, when non-nil, requests cooperative cancellation: the iterative
	// algorithms poll it at their natural serial checkpoints — between
	// refinement passes (kl, fm), between uncoarsening levels (multilevel),
	// and between generations/epochs (the GA family) — and return their
	// current partition early once it is done. The returned partition is
	// still a valid k-way partition (every checkpoint sits at a consistent
	// state), but it is a *partial* answer: callers that care must check
	// Ctx.Err() themselves after Run returns — the service engine does, and
	// discards cancelled results instead of caching them. Geometric and
	// spectral algorithms run to completion regardless; they are fast and
	// have no safe mid-run checkpoint. Never part of any cache key.
	Ctx context.Context

	// MultilevelStats, when non-nil, receives the phase timing/allocation
	// breakdown of a multilevel run (the benchmark harness uses it to
	// attribute refine wall time per refiner family). Output-only: it never
	// affects the partition and is never part of any cache key.
	MultilevelStats *multilevel.Stats
}

// stop converts Ctx into the stop-polling callback the iterative packages
// accept: nil (never stop) when no context was supplied, so the zero Options
// costs nothing on the hot refinement paths.
func (o Options) stop() func() bool {
	if o.Ctx == nil {
		return nil
	}
	ctx := o.Ctx
	return func() bool { return ctx.Err() != nil }
}

func (o Options) withDefaults() Options {
	if o.Generations == 0 {
		o.Generations = 200
	}
	if o.PopSize == 0 {
		o.PopSize = 320
	}
	if o.Islands == 0 {
		o.Islands = 16
	}
	return o
}

// Info describes a registered algorithm and its input constraints, so
// callers can filter the registry (e.g. skip coordinate-requiring
// algorithms for an abstract graph) without trial and error.
type Info struct {
	Name        string
	Description string
	// NeedsCoords marks geometric algorithms (ibp, rcb) that require the
	// graph to carry an embedding.
	NeedsCoords bool
	// PowerOfTwoParts marks recursive-bisection algorithms (rsb, rcb, rgb)
	// that only support 2^d parts.
	PowerOfTwoParts bool
	// Stochastic marks algorithms whose result depends on Options.Seed
	// (they are still deterministic for a fixed seed).
	Stochastic bool
	// Objectives lists the non-default objectives the algorithm honors.
	// TotalCut (the zero Options.Objective) is supported by every algorithm
	// and never listed; an algorithm that honors only the default declares
	// nothing. Run rejects a request whose objective the algorithm does not
	// declare, so a caller can never silently receive a cut-optimized
	// partition when it asked for, say, communication volume.
	Objectives []partition.Objective
}

// SupportsObjective reports whether the algorithm honors objective o.
// TotalCut is supported universally; any other objective must be declared in
// Objectives.
func (i Info) SupportsObjective(o partition.Objective) bool {
	if o == partition.TotalCut {
		return true
	}
	for _, d := range i.Objectives {
		if d == o {
			return true
		}
	}
	return false
}

// Partitioner is the unified interface every algorithm adapts to.
type Partitioner interface {
	Info() Info
	Partition(g *graph.Graph, opt Options) (*partition.Partition, error)
}

type funcPartitioner struct {
	info Info
	run  func(g *graph.Graph, opt Options) (*partition.Partition, error)
}

func (p funcPartitioner) Info() Info { return p.info }
func (p funcPartitioner) Partition(g *graph.Graph, opt Options) (*partition.Partition, error) {
	return p.run(g, opt)
}

// New wraps a function as a Partitioner.
func New(info Info, run func(g *graph.Graph, opt Options) (*partition.Partition, error)) Partitioner {
	return funcPartitioner{info: info, run: run}
}

var (
	mu       sync.RWMutex
	registry = map[string]Partitioner{}
)

// Register adds p to the registry. Registering an empty or duplicate name
// panics: names are package-level constants, so a collision is a programming
// error.
func Register(p Partitioner) {
	name := p.Info().Name
	if name == "" {
		panic("algo: Register with empty name")
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("algo: duplicate registration of %q", name))
	}
	registry[name] = p
}

// Get returns the partitioner registered under name, or an error listing the
// available names.
func Get(name string) (Partitioner, error) {
	mu.RLock()
	p, ok := registry[name]
	mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("algo: unknown algorithm %q (available: %v)", name, Names())
	}
	return p, nil
}

// Names returns every registered name, sorted.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Run looks up name, validates the request against the algorithm's declared
// constraints, and partitions g.
func Run(g *graph.Graph, name string, opt Options) (*partition.Partition, error) {
	p, err := Get(name)
	if err != nil {
		return nil, err
	}
	if opt.Parts <= 0 {
		return nil, fmt.Errorf("algo: %s: invalid part count %d", name, opt.Parts)
	}
	info := p.Info()
	if info.NeedsCoords && !g.HasCoords() {
		return nil, fmt.Errorf("algo: %s requires a geometric embedding and the graph has none", name)
	}
	if info.PowerOfTwoParts && opt.Parts&(opt.Parts-1) != 0 {
		return nil, fmt.Errorf("algo: %s requires a power-of-two part count, got %d", name, opt.Parts)
	}
	if !info.SupportsObjective(opt.Objective) {
		return nil, fmt.Errorf("algo: %s does not support objective %s", name, opt.Objective.FlagName())
	}
	return p.Partition(g, opt)
}
