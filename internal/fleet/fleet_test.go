package fleet_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/fleet"
	"repro/internal/gen"
	"repro/internal/gio"
	"repro/internal/ring"
	"repro/internal/service"
)

// testShard is one in-process partd shard with direct access to its store
// and engine counters — what the sticky-routing e2e asserts against.
type testShard struct {
	name  string
	ts    *httptest.Server
	store *service.GraphStore
	eng   *service.Engine
}

func (s *testShard) addr() string { return strings.TrimPrefix(s.ts.URL, "http://") }

// bootFleet starts n shards and a router over them. With peers, each shard
// is wired for peer-fetch across the same membership the router routes by.
func bootFleet(t *testing.T, n int, withPeers bool) (*fleet.Router, *httptest.Server, []*testShard) {
	t.Helper()
	shards := make([]*testShard, n)
	handlers := make([]http.Handler, n)
	for i := range shards {
		i := i
		// Indirection: the handler is installed after every shard's address
		// is known, so peer fetchers can name the full membership.
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			handlers[i].ServeHTTP(w, r)
		}))
		shards[i] = &testShard{name: fmt.Sprintf("s%d", i+1), ts: ts}
		t.Cleanup(ts.Close)
	}
	members := make([]ring.Member, n)
	for i, s := range shards {
		members[i] = ring.Member{Name: s.name, Addr: s.addr()}
	}
	for i, s := range shards {
		s.eng = service.New(service.Config{Workers: 1})
		s.store = service.NewGraphStore(0)
		t.Cleanup(s.eng.Close)
		opts := []service.HandlerOption{service.WithStore(s.store)}
		if withPeers {
			peers, err := service.NewPeerFetcher(members, s.name, "")
			if err != nil {
				t.Fatal(err)
			}
			opts = append(opts, service.WithPeers(peers))
		}
		handlers[i] = service.NewHandler(s.eng, opts...)
	}
	rt, err := fleet.New(fleet.Config{Members: members, HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	router := httptest.NewServer(rt.Handler())
	t.Cleanup(router.Close)
	return rt, router, shards
}

func meshPayload(t *testing.T, n int, seed int64) string {
	t.Helper()
	var buf bytes.Buffer
	if err := gio.WriteMETIS(&buf, gen.Mesh(n, seed)); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func doJSON(t *testing.T, method, url string, body any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func decodeErrorCode(t *testing.T, data []byte) string {
	t.Helper()
	var body struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(data, &body); err != nil {
		t.Fatalf("bad error JSON: %v\n%s", err, data)
	}
	return body.Error.Code
}

func fleetStats(t *testing.T, routerURL string) fleet.StatsResponse {
	t.Helper()
	status, data := doJSON(t, http.MethodGet, routerURL+"/v1/stats", nil)
	if status != http.StatusOK {
		t.Fatalf("stats status %d: %s", status, data)
	}
	var st fleet.StatsResponse
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// The acceptance e2e: one upload and N job submissions for the same hash all
// land on one shard — exactly one store holds the graph, and the fleet as a
// whole performed exactly 1 parse and 1 content hash. The router resolved
// the routing key with its own single parse, memoized thereafter.
func TestStickyRoutingUploadOnce(t *testing.T) {
	_, router, shards := bootFleet(t, 3, false)
	payload := meshPayload(t, 150, 42)

	status, data := doJSON(t, http.MethodPut, router.URL+"/v1/graphs",
		service.GraphPutRequest{Format: "metis", Graph: payload})
	if status != http.StatusCreated {
		t.Fatalf("upload: status %d: %s", status, data)
	}
	var put service.GraphPutResponse
	if err := json.Unmarshal(data, &put); err != nil {
		t.Fatal(err)
	}

	const n = 5
	for i := 0; i < n; i++ {
		status, data := doJSON(t, http.MethodPost, router.URL+"/v1/jobs?wait=1", service.BatchRequest{
			Graph: put.Hash,
			Specs: []service.JobSpec{{Algo: "kl", Parts: 2, Seed: int64(i)}},
		})
		if status != http.StatusOK {
			t.Fatalf("job %d: status %d: %s", i, status, data)
		}
	}

	holders, parses, hashes := 0, uint64(0), uint64(0)
	for _, s := range shards {
		st := s.store.Stats()
		if st.Graphs > 0 {
			holders++
			if st.Graphs != 1 {
				t.Fatalf("shard %s holds %d graphs, want 1", s.name, st.Graphs)
			}
		}
		parses += st.Parses
		hashes += st.Hashes
	}
	if holders != 1 {
		t.Fatalf("%d shards hold the graph, want exactly 1", holders)
	}
	if parses != 1 || hashes != 1 {
		t.Fatalf("fleet-wide %d parses and %d hashes, want exactly 1 and 1", parses, hashes)
	}

	// A second identical upload routes by the digest memo: no new parse
	// anywhere, dedup on the owning shard.
	status, data = doJSON(t, http.MethodPut, router.URL+"/v1/graphs",
		service.GraphPutRequest{Format: "metis", Graph: payload})
	if status != http.StatusOK {
		t.Fatalf("re-upload: status %d: %s", status, data)
	}
	st := fleetStats(t, router.URL)
	if st.Fleet.Router.RouteParses != 1 {
		t.Fatalf("router parsed %d times, want 1 (memo miss only)", st.Fleet.Router.RouteParses)
	}
	if st.Fleet.Router.RouteCacheHits != 1 {
		t.Fatalf("router memo hits %d, want 1", st.Fleet.Router.RouteCacheHits)
	}
}

// Job ids are shard-qualified end to end: submit, poll (wait), cancel.
func TestJobRoutingAndCancel(t *testing.T) {
	_, router, _ := bootFleet(t, 3, false)
	payload := meshPayload(t, 100, 7)

	_, data := doJSON(t, http.MethodPut, router.URL+"/v1/graphs",
		service.GraphPutRequest{Format: "metis", Graph: payload})
	var put service.GraphPutResponse
	if err := json.Unmarshal(data, &put); err != nil {
		t.Fatal(err)
	}
	status, data := doJSON(t, http.MethodPost, router.URL+"/v1/jobs", service.BatchRequest{
		Graph: put.Hash,
		Specs: []service.JobSpec{{Algo: "kl", Parts: 2}},
	})
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", status, data)
	}
	var batch service.BatchResponse
	if err := json.Unmarshal(data, &batch); err != nil {
		t.Fatal(err)
	}
	id := batch.Jobs[0].ID
	if !strings.Contains(id, "/") {
		t.Fatalf("job id %q is not shard-qualified", id)
	}

	status, data = doJSON(t, http.MethodGet, router.URL+"/v1/jobs/"+id+"?wait=1", nil)
	if status != http.StatusOK {
		t.Fatalf("wait: status %d: %s", status, data)
	}
	var info service.JobInfo
	if err := json.Unmarshal(data, &info); err != nil {
		t.Fatal(err)
	}
	if info.ID != id {
		t.Fatalf("polled job id %q, want %q", info.ID, id)
	}
	if info.State != service.StateDone {
		t.Fatalf("job state %q", info.State)
	}

	// Cancelling a finished job is a 409 relayed intact through the router.
	status, data = doJSON(t, http.MethodDelete, router.URL+"/v1/jobs/"+id, nil)
	if status != http.StatusConflict || decodeErrorCode(t, data) != "job_finished" {
		t.Fatalf("cancel finished: status %d: %s", status, data)
	}

	// Unqualified and unknown-shard ids are structured 404s from the router.
	for _, bad := range []string{"j0001", "nope/j0001"} {
		status, data = doJSON(t, http.MethodGet, router.URL+"/v1/jobs/"+bad, nil)
		if status != http.StatusNotFound || decodeErrorCode(t, data) != "not_found" {
			t.Fatalf("job %q: status %d: %s", bad, status, data)
		}
	}
}

// With one of three shards stopped, every request for a survivor-owned graph
// still succeeds (zero 5xx), dead-owned graphs fail with a clean 404, and
// re-uploading a dead-owned graph re-homes it on a live replica.
func TestFailoverRoutesAroundDeadShard(t *testing.T) {
	rt, router, shards := bootFleet(t, 3, true)

	type stored struct {
		hash    string
		payload string
		owner   string
	}
	var graphs []stored
	for seed := int64(0); seed < 12; seed++ {
		payload := meshPayload(t, 80+int(seed), seed)
		status, data := doJSON(t, http.MethodPut, router.URL+"/v1/graphs",
			service.GraphPutRequest{Format: "metis", Graph: payload})
		if status != http.StatusCreated {
			t.Fatalf("upload %d: status %d: %s", seed, status, data)
		}
		var put service.GraphPutResponse
		if err := json.Unmarshal(data, &put); err != nil {
			t.Fatal(err)
		}
		graphs = append(graphs, stored{hash: put.Hash, payload: payload, owner: rt.Owner(put.Hash)})
	}
	owners := map[string]int{}
	for _, g := range graphs {
		owners[g.owner]++
	}
	if len(owners) != 3 {
		t.Fatalf("12 graphs landed on only %d shards: %v (ring badly skewed)", len(owners), owners)
	}

	victim := shards[0]
	victim.ts.Close()

	var deadOwned *stored
	for i := range graphs {
		g := &graphs[i]
		status, data := doJSON(t, http.MethodPost, router.URL+"/v1/jobs?wait=1", service.BatchRequest{
			Graph: g.hash,
			Specs: []service.JobSpec{{Algo: "kl", Parts: 2}},
		})
		if status >= 500 {
			t.Fatalf("graph %s (owner %s): 5xx through router with %s down: %d %s",
				g.hash, g.owner, victim.name, status, data)
		}
		if g.owner == victim.name {
			deadOwned = g
			// The replica cannot peer-fetch from a dead owner: clean miss.
			if status != http.StatusNotFound || decodeErrorCode(t, data) != "graph_not_found" {
				t.Fatalf("dead-owned graph: status %d: %s", status, data)
			}
			continue
		}
		if status != http.StatusOK {
			t.Fatalf("survivor-owned graph %s: status %d: %s", g.hash, status, data)
		}
	}

	// Recovery path: re-upload the dead-owned graph through the router; it
	// re-homes on the next live replica and jobs succeed again.
	status, data := doJSON(t, http.MethodPut, router.URL+"/v1/graphs",
		service.GraphPutRequest{Format: "metis", Graph: deadOwned.payload})
	if status != http.StatusCreated {
		t.Fatalf("re-home upload: status %d: %s", status, data)
	}
	status, data = doJSON(t, http.MethodPost, router.URL+"/v1/jobs?wait=1", service.BatchRequest{
		Graph: deadOwned.hash,
		Specs: []service.JobSpec{{Algo: "kl", Parts: 2}},
	})
	if status != http.StatusOK {
		t.Fatalf("job after re-home: status %d: %s", status, data)
	}

	// The fleet stats show the victim down and the survivors carrying load.
	st := fleetStats(t, router.URL)
	for _, s := range st.Fleet.Shards {
		if s.Name == victim.name {
			if s.Up {
				t.Fatalf("victim %s still marked up", s.Name)
			}
		} else if s.Proxied == 0 {
			t.Fatalf("survivor %s served no requests: %+v", s.Name, st.Fleet.Shards)
		}
	}
}

// Peer-fetch across the fleet: a graph uploaded when the fleet had fewer
// members is pulled to its new owner on first use (lazy rebalancing).
func TestPeerFetchAfterMembershipGrowth(t *testing.T) {
	// Fleet of 3 with peers; upload directly to a NON-owner shard to
	// simulate a key placed under an older membership.
	rt, router, shards := bootFleet(t, 3, true)
	payload := meshPayload(t, 90, 11)

	// The stored hash is the hash of the *parsed* payload (METIS drops
	// coordinates), so compute it the way a shard would.
	g, err := gio.ReadGraph(gio.FormatMETIS, strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	hash := service.GraphHash(g)
	var wrongShard *testShard
	for _, s := range shards {
		if s.name != rt.Owner(hash) {
			wrongShard = s
			break
		}
	}
	status, data := doJSON(t, http.MethodPut, wrongShard.ts.URL+"/v1/graphs",
		service.GraphPutRequest{Format: "metis", Graph: payload})
	if status != http.StatusCreated {
		t.Fatalf("direct upload: status %d: %s", status, data)
	}
	var put service.GraphPutResponse
	if err := json.Unmarshal(data, &put); err != nil {
		t.Fatal(err)
	}
	if put.Hash != hash {
		t.Fatalf("stored hash %s, computed %s", put.Hash, hash)
	}

	// A job through the router routes to the ring owner, which does not hold
	// the graph — peer-fetch pulls it over.
	status, data = doJSON(t, http.MethodPost, router.URL+"/v1/jobs?wait=1", service.BatchRequest{
		Graph: hash,
		Specs: []service.JobSpec{{Algo: "kl", Parts: 2}},
	})
	if status != http.StatusOK {
		t.Fatalf("routed job: status %d: %s", status, data)
	}
	st := fleetStats(t, router.URL)
	var fetches uint64
	for _, shard := range st.Fleet.ShardStats {
		if shard.Peer != nil {
			fetches += shard.Peer.Fetches
		}
	}
	if fetches != 1 {
		t.Fatalf("fleet peer fetches = %d, want 1", fetches)
	}
}

// The aggregate stats are the sum of the per-shard stats in one response.
func TestStatsAggregationSums(t *testing.T) {
	_, router, _ := bootFleet(t, 3, false)
	for seed := int64(0); seed < 4; seed++ {
		payload := meshPayload(t, 70+int(seed), seed)
		_, data := doJSON(t, http.MethodPut, router.URL+"/v1/graphs",
			service.GraphPutRequest{Format: "metis", Graph: payload})
		var put service.GraphPutResponse
		if err := json.Unmarshal(data, &put); err != nil {
			t.Fatal(err)
		}
		if status, data := doJSON(t, http.MethodPost, router.URL+"/v1/jobs?wait=1", service.BatchRequest{
			Graph: put.Hash,
			Specs: []service.JobSpec{{Algo: "kl", Parts: 2}},
		}); status != http.StatusOK {
			t.Fatalf("job: status %d: %s", status, data)
		}
	}
	st := fleetStats(t, router.URL)
	if len(st.Fleet.ShardStats) != 3 {
		t.Fatalf("shard_stats has %d entries, want 3", len(st.Fleet.ShardStats))
	}
	var submitted, parses uint64
	var graphs int
	for _, shard := range st.Fleet.ShardStats {
		submitted += shard.JobsSubmitted
		parses += shard.Store.Parses
		graphs += shard.Store.Graphs
	}
	if st.JobsSubmitted != submitted || submitted != 4 {
		t.Fatalf("aggregate jobs_submitted %d, shard sum %d, want 4", st.JobsSubmitted, submitted)
	}
	if st.Store.Parses != parses || parses != 4 {
		t.Fatalf("aggregate parses %d, shard sum %d, want 4", st.Store.Parses, parses)
	}
	if st.Store.Graphs != graphs || graphs != 4 {
		t.Fatalf("aggregate graphs %d, shard sum %d, want 4", st.Store.Graphs, graphs)
	}
}

// The router's /v1/algos is the intersection across live shards — with a
// homogeneous fleet, exactly one shard's registry.
func TestAlgosIntersection(t *testing.T) {
	_, router, shards := bootFleet(t, 3, false)
	status, data := doJSON(t, http.MethodGet, router.URL+"/v1/algos", nil)
	if status != http.StatusOK {
		t.Fatalf("algos: status %d: %s", status, data)
	}
	var routed service.AlgosResponse
	if err := json.Unmarshal(data, &routed); err != nil {
		t.Fatal(err)
	}
	_, data = doJSON(t, http.MethodGet, shards[0].ts.URL+"/v1/algos", nil)
	var direct service.AlgosResponse
	if err := json.Unmarshal(data, &direct); err != nil {
		t.Fatal(err)
	}
	if len(routed.Algos) == 0 || len(routed.Algos) != len(direct.Algos) {
		t.Fatalf("routed %d algos, direct %d", len(routed.Algos), len(direct.Algos))
	}
}

// The router relays shard auth verbatim: no token is a 401 end to end, and a
// client token passes through to the shard.
func TestRouterRelaysAuth(t *testing.T) {
	auth, err := service.NewAuth(map[string]string{"tok-c": "carol"})
	if err != nil {
		t.Fatal(err)
	}
	eng := service.New(service.Config{Workers: 1})
	t.Cleanup(eng.Close)
	shard := httptest.NewServer(service.NewHandler(eng, service.WithAuth(auth)))
	t.Cleanup(shard.Close)

	rt, err := fleet.New(fleet.Config{
		Members:        []ring.Member{{Name: "s1", Addr: strings.TrimPrefix(shard.URL, "http://")}},
		HealthInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	router := httptest.NewServer(rt.Handler())
	t.Cleanup(router.Close)

	payload := meshPayload(t, 60, 3)
	status, data := doJSON(t, http.MethodPut, router.URL+"/v1/graphs",
		service.GraphPutRequest{Format: "metis", Graph: payload})
	if status != http.StatusUnauthorized || decodeErrorCode(t, data) != "unauthorized" {
		t.Fatalf("unauthenticated through router: status %d: %s", status, data)
	}

	req, _ := http.NewRequest(http.MethodPut, router.URL+"/v1/graphs",
		bytes.NewReader(mustJSON(t, service.GraphPutRequest{Format: "metis", Graph: payload})))
	req.Header.Set("Authorization", "Bearer tok-c")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("authenticated through router: status %d: %s", resp.StatusCode, body)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
