// Package fleet implements the partd routing daemon's core: a thin,
// stateless-by-design HTTP proxy that spreads the v2 API across many partd
// shards by consistent-hashing each graph's content address onto the fleet
// (internal/ring).
//
// The router holds no graphs and runs no jobs. Its only state is operational:
// which shards are currently reachable (health-checked actively and marked
// down passively on transport errors), per-shard traffic counters, and a
// bounded payload-digest memo so repeated uploads of the same bytes skip the
// routing parse. Clients speak to the router exactly as they would to a
// single daemon — same endpoints, same envelopes — with one visible
// difference: job ids come back shard-qualified ("s1/j00000042"), so routing
// a job poll needs no lookup table, just the id itself.
//
// Failover is replica-order: when the owning shard is down, keyed requests
// re-resolve to the next live replica on the ring. Keys owned by a dead shard
// may legitimately miss (graph_not_found) until re-uploaded; keys owned by
// survivors never see a 5xx.
package fleet

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/gio"
	"repro/internal/ring"
	"repro/internal/service"
)

// Body bounds mirror the shard's own: the router refuses what a shard would
// refuse rather than buffering an abusive payload only to relay a 413.
const (
	maxGraphPayload   = 256 << 20
	maxControlPayload = 1 << 20
)

// digestCacheSize bounds the payload-digest → content-hash memo (FIFO).
const digestCacheSize = 4096

// Config describes the fleet a Router fronts.
type Config struct {
	// Members is the shard list; names are ring keys and job-id prefixes.
	Members []ring.Member
	// VNodes is the per-member virtual node count (0 = ring.DefaultVNodes).
	VNodes int
	// Token, when set, authenticates router-originated fleet calls (health
	// probes excepted — /v1/healthz is open) for requests that carry no
	// client credential of their own: stats and algos fan-out.
	Token string
	// HealthInterval is the active health-check period (0 = 2s, < 0 = no
	// background checking; passive markdown still applies).
	HealthInterval time.Duration
	// Logf, when set, receives shard up/down transitions.
	Logf func(format string, args ...any)
}

// Router is the fleet proxy. Build with New, serve Handler, Close when done.
type Router struct {
	ring  *ring.Ring
	addrs map[string]string
	token string
	logf  func(string, ...any)
	hc    *http.Client // data plane: no global timeout (wait=1 blocks)
	probe *http.Client // health probes: short timeout

	mux  http.Handler
	stop chan struct{}
	wg   sync.WaitGroup

	mu          sync.Mutex
	down        map[string]bool
	proxied     map[string]uint64
	routeParses uint64
	routeHits   uint64
	routeErrors uint64
	digests     map[string]string // payload digest -> graph content hash
	digestOrder []string          // FIFO eviction
}

// New builds and starts a Router (including its health loop, unless
// disabled).
func New(cfg Config) (*Router, error) {
	r, err := ring.New(ring.Names(cfg.Members), cfg.VNodes)
	if err != nil {
		return nil, err
	}
	rt := &Router{
		ring:    r,
		addrs:   make(map[string]string, len(cfg.Members)),
		token:   cfg.Token,
		logf:    cfg.Logf,
		hc:      &http.Client{},
		probe:   &http.Client{Timeout: time.Second},
		stop:    make(chan struct{}),
		down:    make(map[string]bool),
		proxied: make(map[string]uint64),
		digests: make(map[string]string, digestCacheSize),
	}
	if rt.logf == nil {
		rt.logf = func(string, ...any) {}
	}
	for _, m := range cfg.Members {
		rt.addrs[m.Name] = m.Addr
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		service.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("PUT /v1/graphs", rt.handleGraphPut)
	mux.HandleFunc("GET /v1/graphs/{hash}", rt.handleGraphGet)
	mux.HandleFunc("POST /v1/jobs", rt.handleBatch)
	mux.HandleFunc("GET /v1/jobs/{shard}/{id}", rt.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{shard}/{id}", rt.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}", rt.handleUnqualifiedJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", rt.handleUnqualifiedJob)
	mux.HandleFunc("POST /v1/partition", rt.handlePartition)
	mux.HandleFunc("GET /v1/algos", rt.handleAlgos)
	mux.HandleFunc("GET /v1/stats", rt.handleStats)
	rt.mux = service.EnvelopeHandler(mux)

	interval := cfg.HealthInterval
	if interval == 0 {
		interval = 2 * time.Second
	}
	if interval > 0 {
		rt.wg.Add(1)
		go rt.healthLoop(interval)
	}
	return rt, nil
}

// Handler returns the router's HTTP surface.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Close stops the health loop.
func (rt *Router) Close() {
	close(rt.stop)
	rt.wg.Wait()
}

// --- health ---

func (rt *Router) healthLoop(interval time.Duration) {
	defer rt.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.Probe()
		}
	}
}

// Probe health-checks every shard once, synchronously, marking each up or
// down. The health loop calls it periodically; tests and scripts may call it
// directly for a deterministic view.
func (rt *Router) Probe() {
	var wg sync.WaitGroup
	for _, name := range rt.ring.Members() {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet,
				"http://"+rt.addrs[name]+"/v1/healthz", nil)
			if err != nil {
				return
			}
			resp, err := rt.probe.Do(req)
			if err != nil {
				rt.setDown(name, true)
				return
			}
			resp.Body.Close()
			rt.setDown(name, resp.StatusCode != http.StatusOK)
		}(name)
	}
	wg.Wait()
}

func (rt *Router) setDown(name string, isDown bool) {
	rt.mu.Lock()
	changed := rt.down[name] != isDown
	rt.down[name] = isDown
	rt.mu.Unlock()
	if changed {
		if isDown {
			rt.logf("fleet: shard %s marked down", name)
		} else {
			rt.logf("fleet: shard %s back up", name)
		}
	}
}

func (rt *Router) isLive(name string) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return !rt.down[name]
}

// --- proxy core ---

// shardRequest builds an outbound request to a shard, relaying the client's
// credential headers (or substituting the router's own token when the client
// sent none and the router has one).
func (rt *Router) shardRequest(ctx context.Context, name, method, pathAndQuery string, hdr http.Header, body []byte) (*http.Request, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, "http://"+rt.addrs[name]+pathAndQuery, rd)
	if err != nil {
		return nil, err
	}
	for _, h := range []string{"Authorization", "X-Client", "Content-Type"} {
		if v := hdr.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	if req.Header.Get("Authorization") == "" && rt.token != "" {
		req.Header.Set("Authorization", "Bearer "+rt.token)
	}
	return req, nil
}

// relayHeaders are the shard response headers the router passes through.
var relayHeaders = []string{"Content-Type", "Retry-After", "X-Graph-Hash", "WWW-Authenticate", "Allow"}

// routedDo resolves key to its first live replica and performs the request
// there, failing over to the next live replica on transport error (a shard
// that refuses connections is marked down as a side effect; one that answers
// is marked up). It returns the serving shard's name and response, or an
// error when no live replica answered.
func (rt *Router) routedDo(r *http.Request, key, method, pathAndQuery string, body []byte) (string, *http.Response, error) {
	var lastErr error
	for _, name := range rt.ring.Replicas(key, rt.ring.Size()) {
		if !rt.isLive(name) {
			continue
		}
		req, err := rt.shardRequest(r.Context(), name, method, pathAndQuery, r.Header, body)
		if err != nil {
			return "", nil, err
		}
		resp, err := rt.hc.Do(req)
		if err != nil {
			if r.Context().Err() != nil {
				return "", nil, err // the client gave up, not the shard
			}
			rt.setDown(name, true)
			rt.mu.Lock()
			rt.routeErrors++
			rt.mu.Unlock()
			lastErr = err
			continue
		}
		rt.setDown(name, false)
		rt.mu.Lock()
		rt.proxied[name]++
		rt.mu.Unlock()
		return name, resp, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("fleet: no live shard for key %s", key)
	}
	return "", nil, lastErr
}

// directDo performs the request against one named shard (job routes: the id
// says exactly where the job lives, so there is nothing to fail over to).
// counted controls whether the request lands in the per-shard distribution
// counters — data-plane proxying does, stats/algos fan-out does not, so
// "proxied" reflects routed client traffic only.
func (rt *Router) directDo(r *http.Request, name, method, pathAndQuery string, body []byte, counted bool) (*http.Response, error) {
	req, err := rt.shardRequest(r.Context(), name, method, pathAndQuery, r.Header, body)
	if err != nil {
		return nil, err
	}
	resp, err := rt.hc.Do(req)
	if err != nil {
		if r.Context().Err() == nil {
			rt.setDown(name, true)
			rt.mu.Lock()
			rt.routeErrors++
			rt.mu.Unlock()
		}
		return nil, err
	}
	rt.setDown(name, false)
	if counted {
		rt.mu.Lock()
		rt.proxied[name]++
		rt.mu.Unlock()
	}
	return resp, nil
}

// relay streams a shard response to the client unchanged.
func relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for _, h := range relayHeaders {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// relayRewritten buffers a shard response and, on success, rewrites it
// through fn (job-id qualification). Errors pass through untouched.
func relayRewritten(w http.ResponseWriter, resp *http.Response, fn func([]byte) ([]byte, bool)) {
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxGraphPayload))
	if err != nil {
		service.WriteError(w, http.StatusBadGateway, "shard_unreachable", "reading shard response: "+err.Error())
		return
	}
	if resp.StatusCode < 300 {
		if out, ok := fn(data); ok {
			data = out
		}
	}
	for _, h := range relayHeaders {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(data)
}

func writeNoShard(w http.ResponseWriter, err error) {
	service.WriteError(w, http.StatusServiceUnavailable, "shard_unreachable",
		"no shard could serve this request: "+err.Error())
}

// --- routing key computation ---

// payloadDigest keys the routing memo: the raw wire bytes, not the parsed
// content, so it costs one SHA-256 pass instead of a parse.
func payloadDigest(format, payload string) string {
	h := sha256.New()
	io.WriteString(h, format)
	h.Write([]byte{0})
	io.WriteString(h, payload)
	return string(h.Sum(nil))
}

// contentHash computes (or recalls) the content address of a serialized
// graph — the routing key for uploads. The parse here is the router's own
// routing cost, reported as route_parses; shards still parse exactly once
// per stored graph.
func (rt *Router) contentHash(format, payload string) (string, *service.RequestError) {
	digest := payloadDigest(format, payload)
	rt.mu.Lock()
	if hash, ok := rt.digests[digest]; ok {
		rt.routeHits++
		rt.mu.Unlock()
		return hash, nil
	}
	rt.routeParses++
	rt.mu.Unlock()

	f, err := gio.FormatByName(format)
	if err != nil {
		return "", &service.RequestError{Code: "bad_format",
			Message: fmt.Sprintf("unknown graph format %q (want metis, edgelist, or text)", format)}
	}
	if f == gio.FormatAuto {
		f = gio.FormatMETIS
	}
	if payload == "" {
		return "", &service.RequestError{Code: "bad_graph", Message: "request carries no graph payload"}
	}
	g, err := gio.ReadGraph(f, strings.NewReader(payload))
	if err != nil {
		return "", &service.RequestError{Code: "bad_graph", Message: err.Error()}
	}
	hash := service.GraphHash(g)

	rt.mu.Lock()
	if _, ok := rt.digests[digest]; !ok {
		rt.digests[digest] = hash
		rt.digestOrder = append(rt.digestOrder, digest)
		if len(rt.digestOrder) > digestCacheSize {
			delete(rt.digests, rt.digestOrder[0])
			rt.digestOrder = rt.digestOrder[1:]
		}
	}
	rt.mu.Unlock()
	return hash, nil
}

// readBody reads and bounds the request body, returning nil after writing
// the error when it is oversized or unreadable.
func readBody(w http.ResponseWriter, r *http.Request, limit int64) []byte {
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	data, err := io.ReadAll(r.Body)
	if err != nil {
		if _, ok := err.(*http.MaxBytesError); ok {
			service.WriteError(w, http.StatusRequestEntityTooLarge, "payload_too_large",
				fmt.Sprintf("request body exceeds %d bytes", limit))
		} else {
			service.WriteError(w, http.StatusBadRequest, "bad_json", "reading request body: "+err.Error())
		}
		return nil
	}
	return data
}

// --- handlers ---

func (rt *Router) handleGraphPut(w http.ResponseWriter, r *http.Request) {
	body := readBody(w, r, maxGraphPayload)
	if body == nil {
		return
	}
	var req service.GraphPutRequest
	if err := json.Unmarshal(body, &req); err != nil {
		service.WriteError(w, http.StatusBadRequest, "bad_json", "malformed request body: "+err.Error())
		return
	}
	hash, rerr := rt.contentHash(req.Format, req.Graph)
	if rerr != nil {
		service.WriteError(w, http.StatusBadRequest, rerr.Code, rerr.Message)
		return
	}
	_, resp, err := rt.routedDo(r, hash, http.MethodPut, "/v1/graphs", body)
	if err != nil {
		writeNoShard(w, err)
		return
	}
	relay(w, resp)
}

func (rt *Router) handleGraphGet(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if re := service.ValidateGraphRef(hash); re != nil {
		service.WriteError(w, http.StatusBadRequest, re.Code, re.Message)
		return
	}
	pathAndQuery := "/v1/graphs/" + hash
	if r.URL.RawQuery != "" {
		pathAndQuery += "?" + r.URL.RawQuery
	}
	_, resp, err := rt.routedDo(r, hash, http.MethodGet, pathAndQuery, nil)
	if err != nil {
		writeNoShard(w, err)
		return
	}
	relay(w, resp)
}

func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	body := readBody(w, r, maxControlPayload)
	if body == nil {
		return
	}
	var req service.BatchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		service.WriteError(w, http.StatusBadRequest, "bad_json", "malformed request body: "+err.Error())
		return
	}
	if re := service.ValidateGraphRef(req.Graph); re != nil {
		service.WriteError(w, http.StatusBadRequest, re.Code, re.Message)
		return
	}
	pathAndQuery := "/v1/jobs"
	if r.URL.RawQuery != "" {
		pathAndQuery += "?" + r.URL.RawQuery
	}
	shard, resp, err := rt.routedDo(r, req.Graph, http.MethodPost, pathAndQuery, body)
	if err != nil {
		writeNoShard(w, err)
		return
	}
	relayRewritten(w, resp, func(data []byte) ([]byte, bool) {
		var br service.BatchResponse
		if json.Unmarshal(data, &br) != nil {
			return nil, false
		}
		for i := range br.Jobs {
			br.Jobs[i].ID = shard + "/" + br.Jobs[i].ID
		}
		out, err := marshalIndent(br)
		return out, err == nil
	})
}

func (rt *Router) handleJob(w http.ResponseWriter, r *http.Request) {
	shard, id := r.PathValue("shard"), r.PathValue("id")
	if !rt.ring.Has(shard) {
		service.WriteError(w, http.StatusNotFound, "not_found",
			fmt.Sprintf("job id names unknown shard %q (fleet job ids look like shard/localid)", shard))
		return
	}
	pathAndQuery := "/v1/jobs/" + id
	if r.URL.RawQuery != "" {
		pathAndQuery += "?" + r.URL.RawQuery
	}
	resp, err := rt.directDo(r, shard, r.Method, pathAndQuery, nil, true)
	if err != nil {
		service.WriteError(w, http.StatusServiceUnavailable, "shard_unreachable",
			fmt.Sprintf("shard %s (owner of job %s/%s) is unreachable: %v", shard, shard, id, err))
		return
	}
	relayRewritten(w, resp, func(data []byte) ([]byte, bool) {
		var info service.JobInfo
		if json.Unmarshal(data, &info) != nil || info.ID == "" {
			return nil, false
		}
		info.ID = shard + "/" + info.ID
		out, err := marshalIndent(info)
		return out, err == nil
	})
}

func (rt *Router) handleUnqualifiedJob(w http.ResponseWriter, r *http.Request) {
	service.WriteError(w, http.StatusNotFound, "not_found",
		fmt.Sprintf("no job %q: fleet job ids are shard-qualified (shard/localid, as returned by POST /v1/jobs)", r.PathValue("id")))
}

func (rt *Router) handlePartition(w http.ResponseWriter, r *http.Request) {
	body := readBody(w, r, maxGraphPayload)
	if body == nil {
		return
	}
	var req service.PartitionRequest
	if err := json.Unmarshal(body, &req); err != nil {
		service.WriteError(w, http.StatusBadRequest, "bad_json", "malformed request body: "+err.Error())
		return
	}
	hash, rerr := rt.contentHash(req.Format, req.Graph)
	if rerr != nil {
		service.WriteError(w, http.StatusBadRequest, rerr.Code, rerr.Message)
		return
	}
	pathAndQuery := "/v1/partition"
	if r.URL.RawQuery != "" {
		pathAndQuery += "?" + r.URL.RawQuery
	}
	shard, resp, err := rt.routedDo(r, hash, http.MethodPost, pathAndQuery, body)
	if err != nil {
		writeNoShard(w, err)
		return
	}
	relayRewritten(w, resp, func(data []byte) ([]byte, bool) {
		var info service.JobInfo
		if json.Unmarshal(data, &info) != nil || info.ID == "" {
			return nil, false
		}
		info.ID = shard + "/" + info.ID
		out, err := marshalIndent(info)
		return out, err == nil
	})
}

func marshalIndent(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// --- aggregation ---

// fanOut performs one GET against every live shard concurrently, returning
// the decoded bodies by shard name.
func fanOut[T any](rt *Router, r *http.Request, path string) map[string]T {
	out := make(map[string]T)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, name := range rt.ring.Members() {
		if !rt.isLive(name) {
			continue
		}
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			resp, err := rt.directDo(r, name, http.MethodGet, path, nil, false)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				io.Copy(io.Discard, resp.Body)
				return
			}
			var v T
			if json.NewDecoder(resp.Body).Decode(&v) != nil {
				return
			}
			mu.Lock()
			out[name] = v
			mu.Unlock()
		}(name)
	}
	wg.Wait()
	return out
}

// handleAlgos serves the intersection of the live shards' registries: an
// algorithm is advertised only if every reachable shard supports it, so a
// mixed-version fleet never advertises work some member cannot do.
func (rt *Router) handleAlgos(w http.ResponseWriter, r *http.Request) {
	perShard := fanOut[service.AlgosResponse](rt, r, "/v1/algos")
	if len(perShard) == 0 {
		service.WriteError(w, http.StatusServiceUnavailable, "shard_unreachable", "no live shard answered /v1/algos")
		return
	}
	counts := make(map[string]int)
	var first *service.AlgosResponse
	for name := range perShard {
		resp := perShard[name]
		if first == nil {
			first = &resp
		}
		for _, a := range resp.Algos {
			counts[a.Name]++
		}
	}
	out := service.AlgosResponse{API: service.APIVersion}
	for _, a := range first.Algos {
		if counts[a.Name] == len(perShard) {
			out.Algos = append(out.Algos, a)
		}
	}
	service.WriteJSON(w, http.StatusOK, out)
}

// ShardStatus is one shard's row in the fleet stats block.
type ShardStatus struct {
	Name    string `json:"name"`
	Addr    string `json:"addr"`
	Up      bool   `json:"up"`
	Proxied uint64 `json:"proxied"` // data-plane requests this router sent it
}

// RouterStats are the router's own counters.
type RouterStats struct {
	RouteParses    uint64 `json:"route_parses"`     // uploads parsed to learn their routing key
	RouteCacheHits uint64 `json:"route_cache_hits"` // uploads whose key the digest memo recalled
	RouteErrors    uint64 `json:"route_errors"`     // transport failures while proxying
}

// FleetBlock is the fleet-specific extension of the aggregated stats.
type FleetBlock struct {
	Shards []ShardStatus `json:"shards"`
	Router RouterStats   `json:"router"`
	// ShardStats holds each live shard's raw /v1/stats, keyed by name, so
	// the aggregate sums are auditable from one response.
	ShardStats map[string]service.StatsResponse `json:"shard_stats"`
}

// StatsResponse is the router's GET /v1/stats: the shard counters summed
// (embedded, so a typed single-daemon client decodes the aggregate
// unchanged) plus the per-shard breakdown.
type StatsResponse struct {
	service.StatsResponse
	Fleet FleetBlock `json:"fleet"`
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	perShard := fanOut[service.StatsResponse](rt, r, "/v1/stats")

	var agg service.StatsResponse
	agg.Version = service.APIVersion
	for _, st := range perShard {
		agg.Workers += st.Workers
		agg.JobsSubmitted += st.JobsSubmitted
		agg.JobsQueued += st.JobsQueued
		agg.JobsRunning += st.JobsRunning
		agg.JobsDone += st.JobsDone
		agg.JobsFailed += st.JobsFailed
		agg.JobsCancelled += st.JobsCancelled
		agg.CacheHits += st.CacheHits
		agg.Coalesced += st.Coalesced
		agg.CacheMisses += st.CacheMisses
		agg.CacheEvictions += st.CacheEvictions
		agg.CacheEntries += st.CacheEntries
		agg.CacheBytes += st.CacheBytes
		agg.CacheCapacityBytes += st.CacheCapacityBytes
		agg.Store.Graphs += st.Store.Graphs
		agg.Store.Bytes += st.Store.Bytes
		agg.Store.CapacityBytes += st.Store.CapacityBytes
		agg.Store.Puts += st.Store.Puts
		agg.Store.Dedups += st.Store.Dedups
		agg.Store.Parses += st.Store.Parses
		agg.Store.Hashes += st.Store.Hashes
		agg.Store.Gets += st.Store.Gets
		agg.Store.Misses += st.Store.Misses
		agg.Store.Evictions += st.Store.Evictions
	}

	rt.mu.Lock()
	block := FleetBlock{
		Router: RouterStats{
			RouteParses:    rt.routeParses,
			RouteCacheHits: rt.routeHits,
			RouteErrors:    rt.routeErrors,
		},
		ShardStats: perShard,
	}
	for _, name := range rt.ring.Members() {
		block.Shards = append(block.Shards, ShardStatus{
			Name:    name,
			Addr:    rt.addrs[name],
			Up:      !rt.down[name],
			Proxied: rt.proxied[name],
		})
	}
	rt.mu.Unlock()

	service.WriteJSON(w, http.StatusOK, StatsResponse{StatsResponse: agg, Fleet: block})
}

// Owner exposes the routing decision for a key (diagnostics, tests).
func (rt *Router) Owner(key string) string { return rt.ring.Owner(key) }
