package gio

import (
	"strings"
	"testing"
)

// Every malformed METIS input must produce an error, not a bad graph and not
// a panic. Grouped by failure family so a regression names the broken check.
func TestMETISRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		// Header problems.
		"empty":            "",
		"bad header":       "x y\n",
		"negative counts":  "-1 0\n",
		"five fields":      "2 1 11 1 9\n2\n1\n",
		"vertex sizes fmt": "2 1 100\n2\n1\n",
		"bad fmt":          "2 1 99\n2\n1\n",
		"multi constraint": "2 1 10 2\n1 2\n1 1\n",

		// Truncation: fewer vertex lines than the header claims.
		"truncated":            "3 2\n2\n1\n",
		"truncated first line": "3 2\n",

		// Edge-count inconsistency between header and vertex lines.
		"edge count high": "2 5\n2\n1\n",
		"edge count low":  "3 1\n2 3\n1 3\n1 2\n",

		// Structural violations.
		"asymmetric":         "2 1\n2\n\n",
		"asymmetric hi-lo":   "4 1\n\n\n1\n2\n", // only higher-indexed endpoints list the edge
		"self loop":          "2 1\n1\n1\n",     // vertex 1 listing itself
		"duplicate neighbor": "2 2\n2 2\n1 1\n",

		// 1-indexing violations: 0 and out-of-range neighbors.
		"neighbor zero":  "2 1\n0\n1\n",
		"neighbor range": "2 1\n9\n1\n",

		// Weight problems.
		"missing ew":           "2 1 1\n2\n1 1\n",
		"asymmetric weight":    "2 1 1\n2 5\n1 6\n",
		"zero edge weight":     "2 1 1\n2 0\n1 0\n",
		"negative edge weight": "2 1 1\n2 -3\n1 -3\n",
		"nan edge weight":      "2 1 1\n2 NaN\n1 NaN\n",
		"missing vw":           "2 1 10\n\n1\n",
		"negative vw":          "2 1 10\n-2 2\n1 1\n",
		"bad vw":               "2 1 10\nx 2\n1 1\n",
	}
	// Huge-but-integral weights read fine (interop leniency) but must be
	// refused on write, not emitted as overflowed garbage.
	g, err := ReadMETIS(strings.NewReader("2 1 1\n2 1e300\n1 1e300\n"))
	if err != nil {
		t.Fatalf("lenient read of huge weight failed: %v", err)
	}
	var sink strings.Builder
	if err := WriteMETIS(&sink, g); err == nil {
		t.Errorf("WriteMETIS accepted a 1e300 weight: %q", sink.String())
	}
	for name, in := range cases {
		if g, err := ReadMETIS(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted (graph: %d nodes %d edges)", name, g.NumNodes(), g.NumEdges())
		}
	}
}

func TestEdgeListRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":              "",
		"comments only":      "# nothing\n% here\n",
		"one endpoint":       "0\n",
		"bad endpoint":       "0 x\n",
		"negative endpoint":  "0 -1\n",
		"self loop":          "3 3\n",
		"duplicate":          "0 1\n0 1\n",
		"duplicate reversed": "0 1\n1 0\n",
		"zero weight":        "0 1 0\n",
		"negative weight":    "0 1 -2\n",
		"nan weight":         "0 1 NaN\n",
		"trailing fields":    "0 1 2 3\n",
		"id above bound":     "0 16777216\n",
		"sparse ids":         "0 16777215\n", // one edge must not allocate 2^24 nodes
	}
	for name, in := range cases {
		if g, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted (graph: %d nodes %d edges)", name, g.NumNodes(), g.NumEdges())
		}
	}
}

func TestReadPartitionRejectsMalformed(t *testing.T) {
	cases := map[string]struct {
		in    string
		parts int
	}{
		"empty":         {"", 0},
		"negative":      {"0\n-1\n", 0},
		"non-integer":   {"0\nx\n", 0},
		"out of range":  {"0\n3\n", 2},
		"trailing":      {"0 1\n", 0},
		"uint16 bounds": {"70000\n", 0},
	}
	for name, c := range cases {
		if _, err := ReadPartition(strings.NewReader(c.in), c.parts); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestFormatByName(t *testing.T) {
	for name, want := range map[string]Format{
		"metis": FormatMETIS, "edgelist": FormatEdgeList, "el": FormatEdgeList,
		"text": FormatText, "": FormatAuto, "auto": FormatAuto,
	} {
		got, err := FormatByName(name)
		if err != nil || got != want {
			t.Errorf("FormatByName(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := FormatByName("xml"); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestDetectFormat(t *testing.T) {
	for path, want := range map[string]Format{
		"a/b.metis": FormatMETIS, "c.graph": FormatMETIS,
		"x.el": FormatEdgeList, "x.edges": FormatEdgeList,
		"mesh167.g": FormatText, "noext": FormatText,
	} {
		if got := DetectFormat(path); got != want {
			t.Errorf("DetectFormat(%q) = %v, want %v", path, got, want)
		}
	}
}
