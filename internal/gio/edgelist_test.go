package gio

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/partition"
)

func TestEdgeListRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := graph.NewBuilder(40)
	for u := 0; u < 40; u++ {
		for v := u + 1; v < 40; v++ {
			if rng.Float64() < 0.15 {
				b.AddEdge(u, v, float64(1+rng.Intn(5)))
			}
		}
	}
	g := b.Build()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, g2)
}

func TestEdgeListParsesLooseInput(t *testing.T) {
	in := "# header comment\n% other comment style\n1 0\n\n 2 1 \n0 2 3.0\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if w := g.EdgeWeightBetween(0, 2); w != 3 {
		t.Errorf("edge {0,2} weight %v", w)
	}
	if w := g.EdgeWeightBetween(0, 1); w != 1 {
		t.Errorf("edge {0,1} weight %v", w)
	}
}

// Subgraph extracts keep their original (sparse) node ids; below the 2^20
// floor they must parse even when far sparser than 2*edges.
func TestEdgeListSparseIdsBelowFloorAccepted(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("500000 500001\n700000 500000\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 700001 || g.NumEdges() != 2 {
		t.Fatalf("got %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
}

func TestPartitionRoundTrip(t *testing.T) {
	p := &partition.Partition{Assign: []uint16{0, 2, 1, 1, 3, 0}, Parts: 4}
	var buf bytes.Buffer
	if err := WritePartition(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPartition(bytes.NewReader(buf.Bytes()), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Parts != 4 || len(got.Assign) != 6 {
		t.Fatalf("got %d parts, %d nodes", got.Parts, len(got.Assign))
	}
	for i, q := range p.Assign {
		if got.Assign[i] != q {
			t.Fatalf("node %d: part %d != %d", i, got.Assign[i], q)
		}
	}
	// Explicit parts override: empty trailing parts survive.
	got8, err := ReadPartition(bytes.NewReader(buf.Bytes()), 8)
	if err != nil {
		t.Fatal(err)
	}
	if got8.Parts != 8 {
		t.Fatalf("explicit parts ignored: %d", got8.Parts)
	}
}

func TestReadGraphFileDetectsFormat(t *testing.T) {
	g := func() *graph.Graph {
		b := graph.NewBuilder(3)
		b.AddEdge(0, 1, 1)
		b.AddEdge(1, 2, 1)
		return b.Build()
	}()
	dir := t.TempDir()
	for _, c := range []struct {
		name   string
		format Format
	}{
		{"g.metis", FormatMETIS},
		{"g.el", FormatEdgeList},
		{"g.g", FormatText},
	} {
		var buf bytes.Buffer
		if err := WriteGraph(c.format, &buf, g); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, c.name)
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := ReadGraphFile(path, FormatAuto)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		assertSameGraph(t, g, got)
	}
}
