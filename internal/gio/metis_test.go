package gio

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestMETISRoundTripUnit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := graph.NewBuilder(25)
	for u := 0; u < 25; u++ {
		for v := u + 1; v < 25; v++ {
			if rng.Float64() < 0.2 {
				b.AddEdge(u, v, 1)
			}
		}
	}
	g := b.Build()
	var buf bytes.Buffer
	if err := WriteMETIS(&buf, g); err != nil {
		t.Fatal(err)
	}
	// Unit graph: no fmt code in header.
	first := strings.SplitN(buf.String(), "\n", 2)[0]
	if len(strings.Fields(first)) != 2 {
		t.Errorf("unit graph header %q should have 2 fields", first)
	}
	g2, err := ReadMETIS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, g2)
}

func TestMETISRoundTripNodeWeighted(t *testing.T) {
	b := graph.NewBuilder(4)
	b.SetNodeWeight(0, 3)
	b.SetNodeWeight(2, 2)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 1)
	g := b.Build()
	var buf bytes.Buffer
	if err := WriteMETIS(&buf, g); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.SplitN(buf.String(), "\n", 2)[0], "10") {
		t.Errorf("node-weighted graph header missing fmt 10: %q", buf.String())
	}
	g2, err := ReadMETIS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, g2)
}

func TestMETISRoundTripEdgeWeighted(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 5)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 7)
	g := b.Build()
	var buf bytes.Buffer
	if err := WriteMETIS(&buf, g); err != nil {
		t.Fatal(err)
	}
	hdr := strings.SplitN(buf.String(), "\n", 2)[0]
	if fields := strings.Fields(hdr); len(fields) != 3 || fields[2] != "1" {
		t.Errorf("edge-weighted graph header should end in fmt 1: %q", hdr)
	}
	g2, err := ReadMETIS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, g2)
}

func TestMETISRoundTripFullyWeighted(t *testing.T) {
	b := graph.NewBuilder(4)
	b.SetNodeWeight(0, 3)
	b.SetNodeWeight(2, 2)
	b.AddEdge(0, 1, 5)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 7)
	g := b.Build()
	var buf bytes.Buffer
	if err := WriteMETIS(&buf, g); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.SplitN(buf.String(), "\n", 2)[0], "11") {
		t.Errorf("weighted graph header missing fmt 11: %q", buf.String())
	}
	g2, err := ReadMETIS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, g2)
	if g2.NodeWeight(0) != 3 || g2.NodeWeight(1) != 1 {
		t.Error("node weights lost")
	}
}

// A contracted graph is the weighted case the multilevel pipeline produces:
// summed node weights, accumulated parallel-edge weights. Serializing one
// through METIS must be the identity.
func TestMETISRoundTripContracted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := graph.NewBuilder(60)
	for u := 0; u < 60; u++ {
		for v := u + 1; v < 60; v++ {
			if rng.Float64() < 0.15 {
				b.AddEdge(u, v, float64(1+rng.Intn(4)))
			}
		}
	}
	fine := b.Build()
	coarseOf := make([]int, 60)
	for v := range coarseOf {
		coarseOf[v] = v / 3 // collapse triples
	}
	g := graph.Contract(fine, coarseOf, 20, 1)
	var buf bytes.Buffer
	if err := WriteMETIS(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadMETIS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, g2)
	for v := 0; v < g.NumNodes(); v++ {
		if g.NodeWeight(v) != g2.NodeWeight(v) {
			t.Fatalf("node %d weight %v != %v", v, g.NodeWeight(v), g2.NodeWeight(v))
		}
	}
	// Second trip: read→write→read must also be the identity.
	var buf2 bytes.Buffer
	if err := WriteMETIS(&buf2, g2); err != nil {
		t.Fatal(err)
	}
	g3, err := ReadMETIS(&buf2)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g2, g3)
}

func assertSameGraph(t *testing.T, a, b *graph.Graph) {
	t.Helper()
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("size mismatch: %d/%d vs %d/%d", a.NumNodes(), a.NumEdges(), b.NumNodes(), b.NumEdges())
	}
	a.Edges(func(u, v int, w float64) bool {
		if b.EdgeWeightBetween(u, v) != w {
			t.Errorf("edge {%d,%d} weight %v vs %v", u, v, w, b.EdgeWeightBetween(u, v))
		}
		return true
	})
	for v := 0; v < a.NumNodes(); v++ {
		if a.NodeWeight(v) != b.NodeWeight(v) {
			t.Errorf("node %d weight %v vs %v", v, a.NodeWeight(v), b.NodeWeight(v))
		}
	}
}

func TestMETISKnownFixture(t *testing.T) {
	// The classic example from the METIS manual: 7 vertices, 11 edges.
	in := `% example graph
7 11
5 3 2
1 3 4
5 4 2 1
2 3 6 7
1 3 6
5 4 7
6 4
`
	g, err := ReadMETIS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 7 || g.NumEdges() != 11 {
		t.Fatalf("parsed %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if !g.HasEdge(0, 4) || !g.HasEdge(3, 6) || g.HasEdge(0, 6) {
		t.Error("edge structure wrong")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMETISIsolatedVertex(t *testing.T) {
	in := "3 1\n2\n1\n\n" // vertex 3 has no neighbors (empty line)
	g, err := ReadMETIS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.Degree(2) != 0 {
		t.Errorf("vertex 3 degree %d", g.Degree(2))
	}
}

func TestWriteMETISRejectsFractionalWeights(t *testing.T) {
	b := graph.NewBuilder(2)
	b.AddEdge(0, 1, 1.5)
	var buf bytes.Buffer
	if err := WriteMETIS(&buf, b.Build()); err == nil {
		t.Error("fractional edge weight accepted")
	}
	b2 := graph.NewBuilder(2)
	b2.SetNodeWeight(0, 2.5)
	b2.AddEdge(0, 1, 2) // integral edge weight, fractional node weight
	if err := WriteMETIS(&buf, b2.Build()); err == nil {
		t.Error("fractional node weight accepted")
	}
}

// Property: METIS round trip preserves arbitrary weighted random graphs.
func TestQuickMETISRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		b := graph.NewBuilder(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.25 {
					b.AddEdge(u, v, float64(1+rng.Intn(9)))
				}
			}
		}
		g := b.Build()
		var buf bytes.Buffer
		if WriteMETIS(&buf, g) != nil {
			return false
		}
		g2, err := ReadMETIS(&buf)
		if err != nil || g2.NumEdges() != g.NumEdges() {
			return false
		}
		ok := true
		g.Edges(func(u, v int, w float64) bool {
			if g2.EdgeWeightBetween(u, v) != w {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
