package gio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"repro/internal/partition"
)

// Partition vectors use the METIS convention: one part id per line, line i
// holding the part of node i. Blank lines and '#'/'%' comments are skipped.

// WritePartition serializes p, one part id per line.
func WritePartition(w io.Writer, p *partition.Partition) error {
	bw := bufio.NewWriter(w)
	var buf []byte
	for _, q := range p.Assign {
		buf = strconv.AppendInt(buf[:0], int64(q), 10)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPartition parses a partition vector. parts fixes the expected part
// count (ids must lie in [0, parts)); pass parts <= 0 to infer it as the
// maximum id + 1.
func ReadPartition(r io.Reader, parts int) (*partition.Partition, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22)
	var assign []uint16
	maxPart := 0
	lineNo := 0
	for sc.Scan() {
		lineNo++
		f := fielder{s: sc.Text()}
		tok, ok := f.next()
		if !ok || tok[0] == '#' || tok[0] == '%' {
			continue
		}
		q, err := strconv.Atoi(tok)
		if err != nil || q < 0 || q >= 1<<16 {
			return nil, fmt.Errorf("gio: partition line %d: bad part id %q", lineNo, tok)
		}
		if parts > 0 && q >= parts {
			return nil, fmt.Errorf("gio: partition line %d: part id %d out of range [0,%d)", lineNo, q, parts)
		}
		if _, extra := f.next(); extra {
			return nil, fmt.Errorf("gio: partition line %d: trailing fields", lineNo)
		}
		if q > maxPart {
			maxPart = q
		}
		assign = append(assign, uint16(q))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("gio: partition: %w", err)
	}
	if len(assign) == 0 {
		return nil, fmt.Errorf("gio: partition: empty input")
	}
	if parts <= 0 {
		parts = maxPart + 1
	}
	return &partition.Partition{Assign: assign, Parts: parts}, nil
}
