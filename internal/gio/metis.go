package gio

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// METIS graph format: a header line "n m [fmt [ncon]]" followed by one line
// per vertex (1-indexed) listing its neighbors. fmt is a bit code: 1 enables
// edge weights (each neighbor followed by its weight), 10 vertex weights
// (each vertex line starts with its weight), 11 both. Comment lines start
// with '%'. The format lists every edge from both endpoints, which the
// reader verifies (one-sided edges and mismatched weights are input errors,
// not repairable noise).

// ReadMETIS parses a graph in METIS format, streaming the vertex lines
// straight into CSR arrays. It enforces the format's invariants: 1-indexed
// neighbors in [1, n], no self loops, no duplicate neighbors, symmetric
// adjacency with matching weights, and a directed-edge total of exactly 2m.
func ReadMETIS(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<24)
	line, err := nextMETISLine(sc)
	if err != nil {
		return nil, fmt.Errorf("gio: METIS header: %w", err)
	}
	n, m, hasVW, hasEW, err := parseMETISHeader(line)
	if err != nil {
		return nil, err
	}

	// Stream vertex lines into CSR. Degrees are not declared per vertex, so
	// adjacency grows by append; the 2m count from the header presizes it
	// exactly for well-formed inputs. Presizing is capped so a forged header
	// claiming a billion nodes over a ten-byte body fails on the missing
	// vertex lines instead of allocating gigabytes up front — the reader is
	// fed untrusted uploads by the partd service.
	offsets := make([]int32, 1, capHint(n+1))
	adj := make([]int32, 0, capHint(2*m))
	var ew []float64
	if hasEW {
		ew = make([]float64, 0, capHint(2*m))
	}
	nw := make([]float64, 0, capHint(n))
	for v := 0; v < n; v++ {
		line, err := nextMETISLine(sc)
		if err != nil {
			return nil, fmt.Errorf("gio: METIS vertex %d: %w", v+1, err)
		}
		f := fielder{s: line}
		wv := 1.0
		if hasVW {
			tok, ok := f.next()
			if !ok {
				return nil, fmt.Errorf("gio: METIS vertex %d: missing vertex weight", v+1)
			}
			wv, err = parseWeight(tok)
			if err != nil || wv < 0 {
				return nil, fmt.Errorf("gio: METIS vertex %d: bad vertex weight %q", v+1, tok)
			}
		}
		nw = append(nw, wv)
		for {
			tok, ok := f.next()
			if !ok {
				break
			}
			u, err := strconv.Atoi(tok)
			if err != nil || u < 1 || u > n {
				return nil, fmt.Errorf("gio: METIS vertex %d: bad neighbor %q (neighbors are 1-indexed in [1,%d])", v+1, tok, n)
			}
			if u-1 == v {
				return nil, fmt.Errorf("gio: METIS vertex %d: self loop", v+1)
			}
			w := 1.0
			if hasEW {
				tok, ok := f.next()
				if !ok {
					return nil, fmt.Errorf("gio: METIS vertex %d: neighbor %d missing edge weight", v+1, u)
				}
				w, err = parseWeight(tok)
				if err != nil || w <= 0 {
					return nil, fmt.Errorf("gio: METIS vertex %d: bad edge weight %q", v+1, tok)
				}
			}
			adj = append(adj, int32(u-1))
			if hasEW {
				ew = append(ew, w)
			}
		}
		offsets = append(offsets, int32(len(adj)))
	}
	if len(adj) != 2*m {
		return nil, fmt.Errorf("gio: METIS header claims %d edges, vertex lines list %d edge endpoints (want %d)", m, len(adj), 2*m)
	}
	if !hasEW {
		ew = make([]float64, len(adj))
		for i := range ew {
			ew[i] = 1
		}
	}

	// Canonicalize rows; FromCSR's validation pass then enforces the
	// format's remaining contract (strictly sorted rows rule out duplicate
	// neighbors, and every edge must appear from both endpoints with equal
	// weight). One validation pass, not two — it is the dominant
	// non-parsing cost on large uploads. Its errors carry 0-indexed node
	// ids, hence the wrapping.
	for v := 0; v < n; v++ {
		graph.SortAdjacency(adj[offsets[v]:offsets[v+1]], ew[offsets[v]:offsets[v+1]])
	}
	g, err := graph.FromCSR(offsets, adj, ew, nw, nil)
	if err != nil {
		return nil, fmt.Errorf("gio: METIS (node ids 0-indexed): %w", err)
	}
	return g, nil
}

// WriteMETIS serializes g in METIS format. Vertex and edge weights are
// emitted only when any differ from 1, keeping unit graphs in the simplest
// form. METIS weights are integral; non-integral weights are rejected.
// Coordinates, if any, are not representable and silently dropped.
func WriteMETIS(w io.Writer, g *graph.Graph) error {
	n := g.NumNodes()
	hasVW, hasEW := false, false
	for v := 0; v < n; v++ {
		wv := g.NodeWeight(v)
		if wv != 1 {
			hasVW = true
		}
		if !writableWeight(wv) {
			return fmt.Errorf("gio: METIS requires an integral node weight within ±2^53, got %v on node %d", wv, v)
		}
		for i, we := range g.EdgeWeights(v) {
			if we != 1 {
				hasEW = true
			}
			if !writableWeight(we) {
				return fmt.Errorf("gio: METIS requires an integral edge weight within ±2^53, got %v on {%d,%d}", we, v, g.Neighbors(v)[i])
			}
		}
	}
	bw := bufio.NewWriterSize(w, writeBufSize)
	code := ""
	switch {
	case hasVW && hasEW:
		code = " 11"
	case hasVW:
		code = " 10"
	case hasEW:
		code = " 1"
	}
	if _, err := fmt.Fprintf(bw, "%d %d%s\n", n, g.NumEdges(), code); err != nil {
		return err
	}
	var buf []byte
	for v := 0; v < n; v++ {
		buf = buf[:0]
		if hasVW {
			buf = strconv.AppendInt(buf, int64(g.NodeWeight(v)), 10)
		}
		ws := g.EdgeWeights(v)
		for i, u := range g.Neighbors(v) {
			if len(buf) > 0 {
				buf = append(buf, ' ')
			}
			buf = strconv.AppendInt(buf, int64(u)+1, 10)
			if hasEW {
				buf = append(buf, ' ')
				buf = strconv.AppendInt(buf, int64(ws[i]), 10)
			}
		}
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// parseMETISHeader decodes "n m [fmt [ncon]]".
func parseMETISHeader(line string) (n, m int, hasVW, hasEW bool, err error) {
	hdr := strings.Fields(line)
	if len(hdr) < 2 || len(hdr) > 4 {
		return 0, 0, false, false, fmt.Errorf("gio: malformed METIS header %q", line)
	}
	n, err1 := strconv.Atoi(hdr[0])
	m, err2 := strconv.Atoi(hdr[1])
	if err1 != nil || err2 != nil || n < 0 || m < 0 {
		return 0, 0, false, false, fmt.Errorf("gio: malformed METIS header %q", line)
	}
	if len(hdr) >= 3 {
		switch hdr[2] {
		case "0", "00", "000":
		case "1", "01", "001":
			hasEW = true
		case "10", "010":
			hasVW = true
		case "11", "011":
			hasVW, hasEW = true, true
		default:
			return 0, 0, false, false, fmt.Errorf("gio: unsupported METIS fmt code %q", hdr[2])
		}
	}
	if len(hdr) == 4 && hdr[3] != "1" {
		return 0, 0, false, false, fmt.Errorf("gio: multi-constraint METIS graphs (ncon=%s) are not supported", hdr[3])
	}
	return n, m, hasVW, hasEW, nil
}

// nextMETISLine returns the next non-comment line. METIS treats an empty
// vertex line as "no neighbors", so only '%' comments are skipped and empty
// lines are returned as-is.
func nextMETISLine(sc *bufio.Scanner) (string, error) {
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(strings.TrimSpace(line), "%") {
			continue
		}
		return line, nil
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", io.ErrUnexpectedEOF
}

// writableWeight reports whether w can be emitted as a METIS integer:
// integral and within ±2^53, the exactly-representable float64 range (which
// also keeps the int64 conversion below overflow — huge finite weights
// would otherwise print as garbage). NaN fails the Trunc equality,
// infinities the bound.
func writableWeight(w float64) bool {
	return w == math.Trunc(w) && math.Abs(w) <= 1<<53
}

// parseWeight parses a METIS weight. The format specifies integers; floats
// are tolerated on input for interop, but NaN and infinities are rejected
// (they would silently poison every downstream metric).
func parseWeight(tok string) (float64, error) {
	w, err := strconv.ParseFloat(tok, 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(w) || math.IsInf(w, 0) {
		return 0, fmt.Errorf("gio: non-finite weight %q", tok)
	}
	return w, nil
}

// fielder iterates whitespace-separated tokens of a line without allocating
// a field slice — the inner loop of the streaming parsers.
type fielder struct {
	s string
	i int
}

func (f *fielder) next() (string, bool) {
	for f.i < len(f.s) && isSpace(f.s[f.i]) {
		f.i++
	}
	if f.i >= len(f.s) {
		return "", false
	}
	start := f.i
	for f.i < len(f.s) && !isSpace(f.s[f.i]) {
		f.i++
	}
	return f.s[start:f.i], true
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\r' }

// capHint bounds a header-derived preallocation size. Slices still grow to
// whatever the input actually contains; this only keeps a forged header from
// forcing a huge up-front allocation.
func capHint(n int) int {
	const max = 1 << 20
	if n < 0 {
		return 0
	}
	if n > max {
		return max
	}
	return n
}
