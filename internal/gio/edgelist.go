package gio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"repro/internal/graph"
)

// Edge-list format: one undirected edge per line as "u v" or "u v weight",
// endpoints 0-indexed, in either orientation. Blank lines and lines starting
// with '#' or '%' are ignored. The node count is the maximum endpoint + 1
// (trailing isolated nodes are not representable; use METIS or the native
// text format for those). Node weights are all 1.

// MaxEdgeListNode bounds edge-list node ids. The node count is max id + 1
// and the CSR arrays are allocated from it, so without a bound a dozen-byte
// upload naming node 2e9 would force a multi-gigabyte allocation.
const MaxEdgeListNode = 1<<24 - 1

// ReadEdgeList parses an edge list, accumulating the endpoint triples in
// flat slices and counting-sorting them into CSR — no adjacency map. Self
// loops, negative ids, ids above MaxEdgeListNode, ids above 2^20 that are
// too sparse for the edge count (the CSR arrays are sized by max id + 1),
// duplicate edges (in either orientation), and non-positive weights are
// errors.
func ReadEdgeList(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<24)
	var us, vs []int32
	var ws []float64
	n := 0
	lineNo := 0
	for sc.Scan() {
		lineNo++
		f := fielder{s: sc.Text()}
		tok, ok := f.next()
		if !ok || tok[0] == '#' || tok[0] == '%' {
			continue
		}
		u, err := strconv.Atoi(tok)
		if err != nil || u < 0 || u > MaxEdgeListNode {
			return nil, fmt.Errorf("gio: edge list line %d: bad endpoint %q", lineNo, tok)
		}
		tok, ok = f.next()
		if !ok {
			return nil, fmt.Errorf("gio: edge list line %d: missing second endpoint", lineNo)
		}
		v, err := strconv.Atoi(tok)
		if err != nil || v < 0 || v > MaxEdgeListNode {
			return nil, fmt.Errorf("gio: edge list line %d: bad endpoint %q", lineNo, tok)
		}
		if u == v {
			return nil, fmt.Errorf("gio: edge list line %d: self loop at node %d", lineNo, u)
		}
		w := 1.0
		if tok, ok = f.next(); ok {
			w, err = parseWeight(tok)
			if err != nil || w <= 0 {
				return nil, fmt.Errorf("gio: edge list line %d: bad weight %q", lineNo, tok)
			}
			if _, extra := f.next(); extra {
				return nil, fmt.Errorf("gio: edge list line %d: trailing fields", lineNo)
			}
		}
		us = append(us, int32(u))
		vs = append(vs, int32(v))
		ws = append(ws, w)
		if u >= n {
			n = u + 1
		}
		if v >= n {
			n = v + 1
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("gio: edge list: %w", err)
	}
	if len(us) == 0 {
		return nil, fmt.Errorf("gio: edge list: no edges")
	}
	// The CSR arrays are sized by max id + 1, so huge ids must be backed by
	// enough edges: a tiny upload naming node 2^24 must not cost hundreds
	// of MB of allocations. Ids below 2^20 are always accepted (sparse
	// original ids in subgraph extracts are common and cost at most ~20 MB
	// of scaffolding); beyond that, ids must be dense — any graph without
	// isolated nodes satisfies n <= 2m.
	if maxN := 2*len(us) + 64; n > 1<<20 && n > maxN {
		return nil, fmt.Errorf("gio: edge list: node id %d too sparse for %d edges (ids above %d must satisfy max id < 2*edges + 64)", n-1, len(us), 1<<20)
	}

	// Counting sort into CSR: degree pass, prefix sum, fill, per-row sort.
	m := len(us)
	offsets := make([]int32, n+1)
	for i := 0; i < m; i++ {
		offsets[us[i]+1]++
		offsets[vs[i]+1]++
	}
	for v := 0; v < n; v++ {
		offsets[v+1] += offsets[v]
	}
	adj := make([]int32, 2*m)
	ew := make([]float64, 2*m)
	cursor := make([]int32, n)
	copy(cursor, offsets[:n])
	for i := 0; i < m; i++ {
		u, v, w := us[i], vs[i], ws[i]
		adj[cursor[u]], ew[cursor[u]] = v, w
		cursor[u]++
		adj[cursor[v]], ew[cursor[v]] = u, w
		cursor[v]++
	}
	nw := make([]float64, n)
	for v := range nw {
		nw[v] = 1
	}
	for v := 0; v < n; v++ {
		row := adj[offsets[v]:offsets[v+1]]
		graph.SortAdjacency(row, ew[offsets[v]:offsets[v+1]])
		for i := 1; i < len(row); i++ {
			if row[i-1] == row[i] {
				return nil, fmt.Errorf("gio: edge list: duplicate edge {%d,%d}", v, row[i])
			}
		}
	}
	g, err := graph.FromCSR(offsets, adj, ew, nw, nil)
	if err != nil {
		return nil, fmt.Errorf("gio: edge list: %w", err)
	}
	return g, nil
}

// WriteEdgeList serializes g as an edge list in canonical (u, v) order with
// u < v. Unit weights are omitted so unweighted graphs stay two columns.
//
// The encoder streams: each line is built with strconv.Append* into one
// reused buffer and flows through a writeBufSize bufio.Writer, so emitting a
// multi-million-edge graph costs O(1) memory beyond the graph itself —
// per-line fmt.Fprintf had the same asymptotics but an order of magnitude
// more per-edge overhead from verb parsing and argument boxing.
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriterSize(w, writeBufSize)
	if _, err := fmt.Fprintf(bw, "# %d nodes %d edges\n", g.NumNodes(), g.NumEdges()); err != nil {
		return err
	}
	var outerErr error
	var buf []byte
	g.Edges(func(u, v int, wt float64) bool {
		buf = strconv.AppendInt(buf[:0], int64(u), 10)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, int64(v), 10)
		if wt != 1 {
			buf = append(buf, ' ')
			buf = strconv.AppendFloat(buf, wt, 'g', -1, 64)
		}
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			outerErr = err
			return false
		}
		return true
	})
	if outerErr != nil {
		return outerErr
	}
	return bw.Flush()
}
