// Package gio is the graph I/O subsystem: streaming readers and writers for
// the on-disk formats the rest of the ecosystem speaks, feeding the CSR
// graph.Graph directly.
//
// Three graph encodings are supported:
//
//   - METIS/Chaco ("metis"): the interchange format of the partitioning
//     ecosystem (Chaco implements RSB; METIS the multilevel methods). Plain,
//     node-weighted (fmt=10), edge-weighted (fmt=1), and fully weighted
//     (fmt=11) variants all round-trip. Coordinates are not part of the
//     format and are lost on a round trip.
//   - edge list ("edgelist"): one "u v [weight]" line per undirected edge,
//     0-indexed, with '#'/'%' comments. The node count is inferred as the
//     maximum endpoint + 1, so trailing isolated nodes are not representable.
//   - native text ("text"): the repository's own format (see package graph),
//     the only one that carries coordinates.
//
// Partition vectors use the METIS convention: one part id per line, line i
// holding the part of node i.
//
// The METIS and edge-list readers are streaming: they parse straight into
// the CSR arrays (offsets/adjacency/weights) and hand them to graph.FromCSR,
// never materializing an intermediate adjacency map. This is what lets the
// partd service accept large uploaded graphs without tripling their memory
// footprint, and it is 3-5x faster than the Builder path the old
// graph.ReadMETIS used.
package gio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/graph"
)

// writeBufSize sizes the writers' bufio buffers. The graph writers emit
// multi-million-line files (graphgen's scale1M tier); a 1 MiB buffer keeps
// the syscall count in the hundreds where the 4 KiB bufio default would make
// hundreds of thousands of writes.
const writeBufSize = 1 << 20

// Format identifies an on-disk graph encoding.
type Format int

const (
	// FormatAuto selects a format from the file extension: .metis/.graph are
	// METIS, .el/.edges/.edgelist are edge lists, everything else the native
	// text format.
	FormatAuto Format = iota
	FormatMETIS
	FormatEdgeList
	FormatText
)

// String returns the name FormatByName accepts.
func (f Format) String() string {
	switch f {
	case FormatAuto:
		return "auto"
	case FormatMETIS:
		return "metis"
	case FormatEdgeList:
		return "edgelist"
	case FormatText:
		return "text"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// FormatByName parses a format name as used by CLI flags and the partd API.
func FormatByName(name string) (Format, error) {
	switch strings.ToLower(name) {
	case "", "auto":
		return FormatAuto, nil
	case "metis", "chaco":
		return FormatMETIS, nil
	case "edgelist", "el", "edges":
		return FormatEdgeList, nil
	case "text", "native":
		return FormatText, nil
	default:
		return FormatAuto, fmt.Errorf("gio: unknown graph format %q (want metis, edgelist, or text)", name)
	}
}

// DetectFormat maps a file path to a Format by extension.
func DetectFormat(path string) Format {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".metis", ".graph":
		return FormatMETIS
	case ".el", ".edges", ".edgelist":
		return FormatEdgeList
	default:
		return FormatText
	}
}

// ReadGraph parses a graph from r in the given format (FormatAuto is not
// meaningful without a path and is rejected).
func ReadGraph(f Format, r io.Reader) (*graph.Graph, error) {
	switch f {
	case FormatMETIS:
		return ReadMETIS(r)
	case FormatEdgeList:
		return ReadEdgeList(r)
	case FormatText:
		return graph.Read(r)
	default:
		return nil, fmt.Errorf("gio: cannot read format %v from a stream", f)
	}
}

// WriteGraph serializes g to w in the given format.
func WriteGraph(f Format, w io.Writer, g *graph.Graph) error {
	switch f {
	case FormatMETIS:
		return WriteMETIS(w, g)
	case FormatEdgeList:
		return WriteEdgeList(w, g)
	case FormatText:
		_, err := g.WriteTo(w)
		return err
	default:
		return fmt.Errorf("gio: cannot write format %v", f)
	}
}

// ReadGraphFile opens path and parses it, detecting the format from the
// extension when f is FormatAuto.
func ReadGraphFile(path string, f Format) (*graph.Graph, error) {
	if f == FormatAuto {
		f = DetectFormat(path)
	}
	file, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer file.Close()
	g, err := ReadGraph(f, file)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}
