package gio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadMETIS drives the METIS parser with arbitrary bytes. The invariants:
// it must never panic, any graph it accepts must Validate, and an accepted
// graph must survive a write→read round trip unchanged. The seed corpus
// covers every format variant and the interesting rejection families; `go
// test` always runs the corpus, so these double as regression tests.
func FuzzReadMETIS(f *testing.F) {
	seeds := []string{
		"",
		"0 0\n",
		"2 1\n2\n1\n",
		"3 1\n2\n1\n\n",                 // isolated vertex
		"% comment\n2 1\n% mid\n2\n1\n", // comments everywhere
		"2 1 1\n2 5\n1 5\n",             // edge weights
		"2 1 10\n3 2\n1 1\n",            // vertex weights
		"2 1 11\n3 2 5\n1 1 5\n",        // both
		"2 1 11 1\n3 2 5\n1 1 5\n",      // ncon present
		"7 11\n5 3 2\n1 3 4\n5 4 2 1\n2 3 6 7\n1 3 6\n5 4 7\n6 4\n", // manual fixture
		"2 5\n2\n1\n",               // edge count mismatch
		"2 1\n1\n1\n",               // self loop
		"2 1\n9\n1\n",               // out of range
		"2 1\n0\n1\n",               // 0-indexed neighbor
		"2 1\n2\n\n",                // asymmetric
		"2 2\n2 2\n1 1\n",           // duplicate neighbor
		"2 1 1\n2 NaN\n1 NaN\n",     // non-finite weight
		"999999999 999999999\n",     // allocation-bomb header
		"2 1 1\n2 1e300\n1 1e300\n", // readable but unwritable weight
		"1 0\n" + strings.Repeat(" ", 300) + "\n", // long blank tail
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadMETIS(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted graph fails Validate: %v\ninput: %q", verr, data)
		}
		var buf bytes.Buffer
		if werr := WriteMETIS(&buf, g); werr != nil {
			// Fractional weights are readable but not writable; that is the
			// only legitimate write failure.
			if !strings.Contains(werr.Error(), "integral") {
				t.Fatalf("write failed: %v\ninput: %q", werr, data)
			}
			return
		}
		g2, rerr := ReadMETIS(&buf)
		if rerr != nil {
			t.Fatalf("round trip rejected own output: %v\noutput: %q", rerr, buf.String())
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape: %d/%d -> %d/%d",
				g.NumNodes(), g.NumEdges(), g2.NumNodes(), g2.NumEdges())
		}
	})
}

// FuzzReadEdgeList holds the edge-list parser to the same no-panic /
// validates / round-trips contract.
func FuzzReadEdgeList(f *testing.F) {
	seeds := []string{
		"",
		"0 1\n",
		"1 0\n2 1\n0 2 3\n",
		"# comment\n0 1 2.5\n",
		"0 1\n1 0\n", // duplicate reversed
		"3 3\n",      // self loop
		"0 -1\n",
		"0 1 0\n",
		"0 99999\n",
		"0 16777215\n", // sparse-id allocation bomb
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadEdgeList(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted graph fails Validate: %v\ninput: %q", verr, data)
		}
		var buf bytes.Buffer
		if werr := WriteEdgeList(&buf, g); werr != nil {
			t.Fatalf("write failed: %v", werr)
		}
		g2, rerr := ReadEdgeList(&buf)
		if rerr != nil {
			t.Fatalf("round trip rejected own output: %v\noutput: %q", rerr, buf.String())
		}
		if g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed edges: %d -> %d", g.NumEdges(), g2.NumEdges())
		}
	})
}
