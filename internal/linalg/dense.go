// Package linalg provides the numerical linear algebra needed by recursive
// spectral bisection: dense symmetric eigensolvers (cyclic Jacobi), Lanczos
// tridiagonalization with full reorthogonalization, and a symmetric
// tridiagonal QL eigensolver with implicit shifts. Everything is stdlib-only
// and deterministic.
package linalg

import (
	"fmt"
	"math"
)

// SymDense is a dense symmetric n x n matrix stored fully (both triangles)
// in row-major order. It is small-n oriented: RSB on the paper's graphs
// (n <= 309) uses the dense path; Lanczos covers larger graphs.
type SymDense struct {
	N    int
	Data []float64 // len N*N, Data[i*N+j]
}

// NewSymDense allocates an n x n zero matrix.
func NewSymDense(n int) *SymDense {
	return &SymDense{N: n, Data: make([]float64, n*n)}
}

// At returns element (i, j).
func (m *SymDense) At(i, j int) float64 { return m.Data[i*m.N+j] }

// Set assigns element (i, j) and its mirror (j, i).
func (m *SymDense) Set(i, j int, v float64) {
	m.Data[i*m.N+j] = v
	m.Data[j*m.N+i] = v
}

// MulVec computes dst = M * x. dst and x must have length N and must not
// alias.
func (m *SymDense) MulVec(dst, x []float64) {
	if len(dst) != m.N || len(x) != m.N {
		panic(fmt.Sprintf("linalg: MulVec size mismatch: %d, %d vs N=%d", len(dst), len(x), m.N))
	}
	for i := 0; i < m.N; i++ {
		row := m.Data[i*m.N : (i+1)*m.N]
		var s float64
		for j, r := range row {
			s += r * x[j]
		}
		dst[i] = s
	}
}

// JacobiEigen computes all eigenvalues and eigenvectors of a symmetric matrix
// with the cyclic Jacobi rotation method. It returns eigenvalues in ascending
// order and the matching eigenvectors as columns of V (V[i*n+k] is component
// i of eigenvector k). The input matrix is not modified.
//
// Jacobi is O(n³) per sweep but unconditionally stable and simple to verify
// — the right tool for n of a few hundred.
func JacobiEigen(m *SymDense) (eigenvalues []float64, V []float64, err error) {
	n := m.N
	if n == 0 {
		return nil, nil, fmt.Errorf("linalg: empty matrix")
	}
	a := append([]float64(nil), m.Data...)
	v := make([]float64, n*n)
	for i := 0; i < n; i++ {
		v[i*n+i] = 1
	}
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		// Off-diagonal Frobenius norm.
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += 2 * a[i*n+j] * a[i*n+j]
			}
		}
		if math.Sqrt(off) < 1e-12*(1+frobenius(a, n)) {
			return extractEigen(a, v, n)
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a[p*n+q]
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := a[p*n+p], a[q*n+q]
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Apply rotation to A: A' = Jᵀ A J.
				for k := 0; k < n; k++ {
					akp, akq := a[k*n+p], a[k*n+q]
					a[k*n+p] = c*akp - s*akq
					a[k*n+q] = s*akp + c*akq
				}
				for k := 0; k < n; k++ {
					apk, aqk := a[p*n+k], a[q*n+k]
					a[p*n+k] = c*apk - s*aqk
					a[q*n+k] = s*apk + c*aqk
				}
				// Accumulate eigenvectors.
				for k := 0; k < n; k++ {
					vkp, vkq := v[k*n+p], v[k*n+q]
					v[k*n+p] = c*vkp - s*vkq
					v[k*n+q] = s*vkp + c*vkq
				}
			}
		}
	}
	return nil, nil, fmt.Errorf("linalg: Jacobi did not converge in %d sweeps", maxSweeps)
}

func frobenius(a []float64, n int) float64 {
	var s float64
	for _, x := range a {
		s += x * x
	}
	return math.Sqrt(s)
}

// extractEigen sorts the diagonal of a (eigenvalues) ascending and reorders
// the columns of v to match.
func extractEigen(a, v []float64, n int) ([]float64, []float64, error) {
	type ev struct {
		val float64
		col int
	}
	evs := make([]ev, n)
	for i := 0; i < n; i++ {
		evs[i] = ev{a[i*n+i], i}
	}
	// Insertion sort: n is small and this keeps the ordering stable.
	for i := 1; i < n; i++ {
		for j := i; j > 0 && evs[j].val < evs[j-1].val; j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
	vals := make([]float64, n)
	vecs := make([]float64, n*n)
	for k, e := range evs {
		vals[k] = e.val
		for i := 0; i < n; i++ {
			vecs[i*n+k] = v[i*n+e.col]
		}
	}
	return vals, vecs, nil
}

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	var s float64
	for i, xi := range x {
		s += xi * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 { return math.Sqrt(Dot(x, x)) }

// Axpy computes y += a*x in place.
func Axpy(a float64, x, y []float64) {
	for i, xi := range x {
		y[i] += a * xi
	}
}

// Scale multiplies x by a in place.
func Scale(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}
