package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSymDenseBasics(t *testing.T) {
	m := NewSymDense(3)
	m.Set(0, 1, 2)
	m.Set(2, 2, 5)
	if m.At(1, 0) != 2 || m.At(0, 1) != 2 {
		t.Error("Set not symmetric")
	}
	x := []float64{1, 1, 1}
	dst := make([]float64, 3)
	m.MulVec(dst, x)
	want := []float64{2, 2, 5}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("MulVec[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}

func TestMulVecPanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewSymDense(2).MulVec(make([]float64, 3), make([]float64, 2))
}

func TestJacobiDiagonal(t *testing.T) {
	m := NewSymDense(3)
	m.Set(0, 0, 3)
	m.Set(1, 1, 1)
	m.Set(2, 2, 2)
	vals, _, err := JacobiEigen(m)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-12 {
			t.Errorf("vals[%d] = %v, want %v", i, vals[i], want[i])
		}
	}
}

func TestJacobiKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	m := NewSymDense(2)
	m.Set(0, 0, 2)
	m.Set(1, 1, 2)
	m.Set(0, 1, 1)
	vals, V, err := JacobiEigen(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-1) > 1e-12 || math.Abs(vals[1]-3) > 1e-12 {
		t.Fatalf("vals = %v", vals)
	}
	// Eigenvector for 1 is (1,-1)/sqrt2 up to sign.
	r := V[0*2+0] / V[1*2+0]
	if math.Abs(r+1) > 1e-9 {
		t.Errorf("first eigenvector ratio = %v, want -1", r)
	}
}

// pathLaplacian builds the Laplacian of the n-node path as a dense matrix.
// Its eigenvalues are 2-2cos(pi*k/n), k=0..n-1.
func pathLaplacian(n int) *SymDense {
	m := NewSymDense(n)
	for i := 0; i+1 < n; i++ {
		m.Set(i, i+1, -1)
		m.Set(i, i, m.At(i, i)+1)
		m.Set(i+1, i+1, m.At(i+1, i+1)+1)
	}
	return m
}

func TestJacobiPathLaplacianSpectrum(t *testing.T) {
	n := 12
	m := pathLaplacian(n)
	vals, V, err := JacobiEigen(m)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < n; k++ {
		want := 2 - 2*math.Cos(math.Pi*float64(k)/float64(n))
		if math.Abs(vals[k]-want) > 1e-9 {
			t.Errorf("lambda_%d = %v, want %v", k, vals[k], want)
		}
	}
	// Residual check ||Av - lambda v|| for the Fiedler pair.
	v := make([]float64, n)
	for i := 0; i < n; i++ {
		v[i] = V[i*n+1]
	}
	av := make([]float64, n)
	m.MulVec(av, v)
	for i := range av {
		av[i] -= vals[1] * v[i]
	}
	if Norm2(av) > 1e-9 {
		t.Errorf("Fiedler residual %v", Norm2(av))
	}
}

type denseOp struct{ m *SymDense }

func (d denseOp) Dim() int               { return d.m.N }
func (d denseOp) Apply(dst, x []float64) { d.m.MulVec(dst, x) }

func TestTridiagQLAgainstJacobi(t *testing.T) {
	// Tridiagonal matrix with diagonal 2 and off-diagonal -1 (path
	// Laplacian interior): compare QL against Jacobi.
	n := 10
	d := make([]float64, n)
	e := make([]float64, n)
	m := NewSymDense(n)
	for i := 0; i < n; i++ {
		d[i] = 2
		m.Set(i, i, 2)
		if i > 0 {
			e[i] = -1
			m.Set(i-1, i, -1)
		}
	}
	if err := TridiagQL(d, e, nil); err != nil {
		t.Fatal(err)
	}
	jv, _, err := JacobiEigen(m)
	if err != nil {
		t.Fatal(err)
	}
	// Sort d.
	for i := 1; i < n; i++ {
		for j := i; j > 0 && d[j] < d[j-1]; j-- {
			d[j], d[j-1] = d[j-1], d[j]
		}
	}
	for i := 0; i < n; i++ {
		if math.Abs(d[i]-jv[i]) > 1e-9 {
			t.Errorf("QL %v vs Jacobi %v at %d", d[i], jv[i], i)
		}
	}
}

func TestLanczosMatchesJacobiOnRandomMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 30
	m := NewSymDense(n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	jvals, _, err := JacobiEigen(m)
	if err != nil {
		t.Fatal(err)
	}
	lvals, V, err := Lanczos(denseOp{m}, 3, rng, nil, n)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		if math.Abs(lvals[k]-jvals[k]) > 1e-6 {
			t.Errorf("Lanczos val %d = %v, Jacobi %v", k, lvals[k], jvals[k])
		}
	}
	// Residual of the smallest Ritz pair.
	v := make([]float64, n)
	for i := 0; i < n; i++ {
		v[i] = V[i*3]
	}
	av := make([]float64, n)
	m.MulVec(av, v)
	for i := range av {
		av[i] -= lvals[0] * v[i]
	}
	if r := Norm2(av); r > 1e-6 {
		t.Errorf("Ritz residual = %v", r)
	}
}

func TestLanczosDeflation(t *testing.T) {
	// Path Laplacian: smallest eigenvalue 0 with constant eigenvector.
	// Deflating the constant vector must yield the Fiedler value first.
	n := 16
	m := pathLaplacian(n)
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	rng := rand.New(rand.NewSource(5))
	vals, _, err := Lanczos(denseOp{m}, 1, rng, [][]float64{ones}, n)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 - 2*math.Cos(math.Pi/float64(n))
	if math.Abs(vals[0]-want) > 1e-8 {
		t.Errorf("deflated smallest = %v, want Fiedler %v", vals[0], want)
	}
}

func TestLanczosErrors(t *testing.T) {
	m := pathLaplacian(4)
	rng := rand.New(rand.NewSource(1))
	if _, _, err := Lanczos(denseOp{m}, 0, rng, nil, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := Lanczos(denseOp{m}, 9, rng, nil, 0); err == nil {
		t.Error("k>n accepted")
	}
}

func TestVectorHelpers(t *testing.T) {
	x := []float64{3, 4}
	if Norm2(x) != 5 {
		t.Errorf("Norm2 = %v", Norm2(x))
	}
	y := []float64{1, 1}
	Axpy(2, x, y)
	if y[0] != 7 || y[1] != 9 {
		t.Errorf("Axpy = %v", y)
	}
	Scale(0.5, y)
	if y[0] != 3.5 {
		t.Errorf("Scale = %v", y)
	}
	if Dot(x, x) != 25 {
		t.Errorf("Dot = %v", Dot(x, x))
	}
}

// Property: Jacobi eigendecomposition reconstructs the matrix: A = V D Vᵀ.
func TestQuickJacobiReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		m := NewSymDense(n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				m.Set(i, j, rng.NormFloat64())
			}
		}
		vals, V, err := JacobiEigen(m)
		if err != nil {
			return false
		}
		// Check A*v_k = lambda_k*v_k for all k.
		for k := 0; k < n; k++ {
			v := make([]float64, n)
			for i := 0; i < n; i++ {
				v[i] = V[i*n+k]
			}
			av := make([]float64, n)
			m.MulVec(av, v)
			for i := range av {
				av[i] -= vals[k] * v[i]
			}
			if Norm2(av) > 1e-8 {
				return false
			}
		}
		// Eigenvalues ascending.
		for k := 1; k < n; k++ {
			if vals[k] < vals[k-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: eigenvectors returned by Jacobi are orthonormal.
func TestQuickJacobiOrthonormal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		m := NewSymDense(n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				m.Set(i, j, rng.NormFloat64())
			}
		}
		_, V, err := JacobiEigen(m)
		if err != nil {
			return false
		}
		for a := 0; a < n; a++ {
			for b := a; b < n; b++ {
				var dot float64
				for i := 0; i < n; i++ {
					dot += V[i*n+a] * V[i*n+b]
				}
				want := 0.0
				if a == b {
					want = 1
				}
				if math.Abs(dot-want) > 1e-8 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
