package linalg

import (
	"fmt"
	"math"
	"math/rand"
)

// MatVec abstracts a symmetric linear operator, so Lanczos can run on a
// sparse graph Laplacian without materializing it densely.
type MatVec interface {
	// Dim returns the operator's dimension.
	Dim() int
	// Apply computes dst = A * x. dst and x have length Dim and do not alias.
	Apply(dst, x []float64)
}

// TridiagQL computes all eigenvalues and (optionally) eigenvectors of the
// symmetric tridiagonal matrix with diagonal d and sub/super-diagonal e
// (e[0] unused, e[i] couples rows i-1 and i), using the implicit QL algorithm
// with Wilkinson shifts — the classic tqli routine.
//
// d and e are modified in place; on return d holds the eigenvalues
// (unsorted). If z is non-nil it must be an n x n row-major matrix whose
// columns are rotated alongside (pass identity to get tridiagonal
// eigenvectors; pass the Lanczos basis to get Ritz vectors).
func TridiagQL(d, e []float64, z []float64) error {
	n := len(d)
	if n == 0 {
		return fmt.Errorf("linalg: empty tridiagonal")
	}
	if len(e) != n {
		return fmt.Errorf("linalg: e length %d, want %d", len(e), n)
	}
	// Shift e down: internally e[i] couples i and i+1.
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0
	for l := 0; l < n; l++ {
		for iter := 0; ; iter++ {
			if iter > 50 {
				return fmt.Errorf("linalg: TridiagQL did not converge at row %d", l)
			}
			var m int
			for m = l; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m]) <= 1e-15*dd {
					break
				}
			}
			if m == l {
				break
			}
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			g = d[m] - d[l] + e[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					d[i+1] -= p
					e[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
				if z != nil {
					for k := 0; k < n; k++ {
						f := z[k*n+i+1]
						z[k*n+i+1] = s*z[k*n+i] + c*f
						z[k*n+i] = c*z[k*n+i] - s*f
					}
				}
			}
			if r == 0 && m-1 >= l {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0
		}
	}
	return nil
}

// Lanczos runs the Lanczos iteration with full reorthogonalization on the
// symmetric operator A, returning the k smallest Ritz values and their Ritz
// vectors (columns of V, row-major n x k). rng seeds the start vector;
// deflate, if non-empty, lists vectors the iteration stays orthogonal to
// (pass the constant vector to skip the Laplacian's trivial null space).
//
// maxIter bounds the Krylov dimension; min(n, max(2k+20, 40)) is a good
// default and is used when maxIter <= 0.
func Lanczos(A MatVec, k int, rng *rand.Rand, deflate [][]float64, maxIter int) (vals []float64, V []float64, err error) {
	n := A.Dim()
	if k <= 0 || k > n {
		return nil, nil, fmt.Errorf("linalg: Lanczos k=%d out of range (n=%d)", k, n)
	}
	if maxIter <= 0 {
		maxIter = 2*k + 20
		if maxIter < 40 {
			maxIter = 40
		}
	}
	if maxIter > n {
		maxIter = n
	}
	if maxIter < k {
		maxIter = k
	}

	// Orthonormalize the deflation set.
	var defl [][]float64
	for _, dv := range deflate {
		v := append([]float64(nil), dv...)
		for _, u := range defl {
			Axpy(-Dot(u, v), u, v)
		}
		if nrm := Norm2(v); nrm > 1e-12 {
			Scale(1/nrm, v)
			defl = append(defl, v)
		}
	}
	project := func(v []float64) {
		for _, u := range defl {
			Axpy(-Dot(u, v), u, v)
		}
	}

	basis := make([][]float64, 0, maxIter)
	alpha := make([]float64, 0, maxIter)
	beta := make([]float64, 0, maxIter) // beta[j] couples basis[j], basis[j+1]

	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64() - 0.5
	}
	project(v)
	nrm := Norm2(v)
	if nrm < 1e-12 {
		return nil, nil, fmt.Errorf("linalg: start vector annihilated by deflation")
	}
	Scale(1/nrm, v)
	basis = append(basis, v)

	w := make([]float64, n)
	for j := 0; j < maxIter; j++ {
		A.Apply(w, basis[j])
		a := Dot(basis[j], w)
		alpha = append(alpha, a)
		Axpy(-a, basis[j], w)
		if j > 0 {
			Axpy(-beta[j-1], basis[j-1], w)
		}
		// Full reorthogonalization (twice is enough).
		for pass := 0; pass < 2; pass++ {
			project(w)
			for _, u := range basis {
				Axpy(-Dot(u, w), u, w)
			}
		}
		b := Norm2(w)
		if j+1 >= maxIter {
			break
		}
		if b < 1e-12 {
			// Invariant subspace found: restart with a fresh random direction.
			for i := range w {
				w[i] = rng.Float64() - 0.5
			}
			for pass := 0; pass < 2; pass++ {
				project(w)
				for _, u := range basis {
					Axpy(-Dot(u, w), u, w)
				}
			}
			b = Norm2(w)
			if b < 1e-12 {
				break // space exhausted
			}
			b = 0 // decouple the blocks
			nw := append([]float64(nil), w...)
			Scale(1/Norm2(nw), nw)
			beta = append(beta, 0)
			basis = append(basis, nw)
			continue
		}
		nw := append([]float64(nil), w...)
		Scale(1/b, nw)
		beta = append(beta, b)
		basis = append(basis, nw)
	}

	m := len(alpha)
	if m < k {
		return nil, nil, fmt.Errorf("linalg: Lanczos stalled at dimension %d < k=%d", m, k)
	}
	// Solve the tridiagonal eigenproblem.
	d := append([]float64(nil), alpha...)
	e := make([]float64, m)
	for j := 1; j < m; j++ {
		e[j] = beta[j-1]
	}
	z := make([]float64, m*m)
	for i := 0; i < m; i++ {
		z[i*m+i] = 1
	}
	if err := TridiagQL(d, e, z); err != nil {
		return nil, nil, err
	}
	// Sort ascending.
	idx := make([]int, m)
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < m; i++ {
		for j := i; j > 0 && d[idx[j]] < d[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	vals = make([]float64, k)
	V = make([]float64, n*k)
	for kk := 0; kk < k; kk++ {
		col := idx[kk]
		vals[kk] = d[col]
		// Ritz vector: sum_j z[j][col] * basis[j].
		for j := 0; j < m; j++ {
			c := z[j*m+col]
			if c == 0 {
				continue
			}
			bj := basis[j]
			for i := 0; i < n; i++ {
				V[i*k+kk] += c * bj[i]
			}
		}
	}
	return vals, V, nil
}
