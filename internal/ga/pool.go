package ga

import (
	"sync"
	"sync/atomic"
)

// evalPool is the engine's persistent fitness-evaluation worker pool: a set
// of goroutines that stays alive across Step calls and splits independent
// per-individual work (fitness scans, hill climbing, diversity counts)
// across EvalWorkers CPUs.
//
// The pool runs workers-1 helper goroutines; the calling goroutine always
// participates, so a pool of 1 is exactly the serial path. Work items are
// claimed from an atomic counter, which makes the schedule irrelevant to the
// result: every item is computed by a pure function writing only to its own
// index.
type evalPool struct {
	helpers int
	work    chan *poolBatch
	close   sync.Once
}

// poolBatch is one parallel for-loop: fn(i) for i in [0, n).
type poolBatch struct {
	n    int
	next atomic.Int64
	fn   func(int)
	wg   sync.WaitGroup
}

func (b *poolBatch) drain() {
	for {
		i := int(b.next.Add(1)) - 1
		if i >= b.n {
			return
		}
		b.fn(i)
	}
}

// newEvalPool starts a pool for the given worker count (>= 2; worker count 1
// should not construct a pool at all).
func newEvalPool(workers int) *evalPool {
	p := &evalPool{helpers: workers - 1, work: make(chan *poolBatch)}
	for w := 0; w < p.helpers; w++ {
		go func() {
			for b := range p.work {
				b.drain()
				b.wg.Done()
			}
		}()
	}
	return p
}

// run executes fn(i) for every i in [0, n), distributed over the pool plus
// the calling goroutine, and returns when all calls have completed.
func (p *evalPool) run(n int, fn func(int)) {
	if n == 0 {
		return
	}
	b := &poolBatch{n: n, fn: fn}
	b.wg.Add(p.helpers)
	for w := 0; w < p.helpers; w++ {
		p.work <- b
	}
	b.drain()
	b.wg.Wait()
}

// shutdown releases the helper goroutines. Idempotent; called by
// Engine.Close and by the engine's GC cleanup.
func (p *evalPool) shutdown() {
	p.close.Do(func() { close(p.work) })
}
