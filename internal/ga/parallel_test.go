package ga

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/gen"
	"repro/internal/partition"
)

// TestEvalWorkersBitIdentical is the regression test for the breed/evaluate
// split: evaluation is pure (only the serial breed phase consumes the RNG),
// so any EvalWorkers count must produce byte-identical trajectories and
// final partitions for an equal Config.Seed.
func TestEvalWorkersBitIdentical(t *testing.T) {
	g := gen.Mesh(120, 17)
	for _, obj := range []partition.Objective{partition.TotalCut, partition.WorstCut} {
		for _, hc := range []bool{false, true} {
			run := func(workers int) (Stats, []uint16) {
				e, err := New(g, Config{
					Parts:       4,
					Objective:   obj,
					PopSize:     48,
					Crossover:   Uniform{},
					HillClimb:   hc,
					EvalWorkers: workers,
					Seed:        23,
				})
				if err != nil {
					t.Fatal(err)
				}
				best := e.Run(12)
				e.Close()
				return e.Stats(), best.Part.Assign
			}
			s1, p1 := run(1)
			for _, workers := range []int{2, 7} {
				sN, pN := run(workers)
				if !reflect.DeepEqual(s1, sN) {
					t.Errorf("obj=%v hillclimb=%v: Stats differ between EvalWorkers=1 and %d", obj, hc, workers)
				}
				if !reflect.DeepEqual(p1, pN) {
					t.Errorf("obj=%v hillclimb=%v: best partition differs between EvalWorkers=1 and %d", obj, hc, workers)
				}
			}
		}
	}
}

// The same guarantee must hold through the DKNUX estimate-update feedback
// loop: the estimate is replaced only during the serial bookkeeping between
// phases, never concurrently.
func TestEvalWorkersBitIdenticalDKNUX(t *testing.T) {
	g := gen.PaperGraph(144)
	run := func(workers int) []uint16 {
		est := partition.RandomBalanced(g.NumNodes(), 8, rand.New(rand.NewSource(5)))
		e, err := New(g, Config{
			Parts:       8,
			PopSize:     64,
			Crossover:   NewDKNUX(est),
			HillClimb:   true,
			EvalWorkers: workers,
			Seed:        29,
		})
		if err != nil {
			t.Fatal(err)
		}
		best := e.Run(15)
		e.Close()
		return best.Part.Assign
	}
	serial := run(1)
	parallel := run(runtime.GOMAXPROCS(0) + 3)
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("DKNUX run diverged between serial and parallel evaluation")
	}
}

// BenchmarkStepParallel compares serial and parallel Step on the paper's
// 320-individual population over a ~1k-node mesh. The breed phase
// (selection, crossover, mutation) is serial in both; the parallel variant
// fans the per-offspring evaluation and hill climbing out over all cores,
// so on an N-core host the speedup approaches the evaluate phase's share of
// the step.
func BenchmarkStepParallel(b *testing.B) {
	g := gen.Mesh(1024, 42)
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{fmt.Sprintf("parallel-%d", runtime.GOMAXPROCS(0)), runtime.GOMAXPROCS(0)},
	} {
		b.Run(bc.name, func(b *testing.B) {
			e, err := New(g, Config{
				Parts:       8,
				PopSize:     320,
				Crossover:   Uniform{},
				HillClimb:   true,
				EvalWorkers: bc.workers,
				Seed:        7,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Step()
			}
		})
	}
}

// BenchmarkStepDKNUXParallel is the same comparison under the paper's
// default operator, whose neighborhood-weighted recombination makes the
// serial breed phase heavier.
func BenchmarkStepDKNUXParallel(b *testing.B) {
	g := gen.Mesh(1024, 42)
	est := partition.RandomBalanced(g.NumNodes(), 8, rand.New(rand.NewSource(3)))
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{fmt.Sprintf("parallel-%d", runtime.GOMAXPROCS(0)), runtime.GOMAXPROCS(0)},
	} {
		b.Run(bc.name, func(b *testing.B) {
			e, err := New(g, Config{
				Parts:       8,
				PopSize:     320,
				Crossover:   NewDKNUX(est),
				HillClimb:   true,
				EvalWorkers: bc.workers,
				Seed:        7,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Step()
			}
		})
	}
}
