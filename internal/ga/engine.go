package ga

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"

	"repro/internal/graph"
	"repro/internal/kl"
	"repro/internal/partition"
)

// Config parameterizes a single-population GA run. Zero values select the
// paper's defaults where the paper specifies one (population 320, pc = 0.7,
// pm = 0.01) and sensible choices where it does not (binary tournament,
// 2 elites).
type Config struct {
	Parts     int                 // number of parts (required)
	Objective partition.Objective // Fitness 1 (TotalCut) or Fitness 2 (WorstCut)

	PopSize int     // population size; default 320 (the paper's total)
	Pc      float64 // crossover rate; default 0.7
	Pm      float64 // per-gene mutation rate; default 0.01

	Crossover Crossover // required
	Selection Selection // default Tournament{Size: 2}
	Elites    int       // individuals copied unchanged; default 2

	// Seeds optionally initializes part of the population with heuristic
	// solutions (IBP, RSB, or a previous partition in the incremental case).
	// The rest of the population is filled with perturbed copies of the
	// seeds (SeedPerturb) or, with no seeds, random balanced partitions.
	Seeds       []*partition.Partition
	SeedPerturb float64 // default 0.15

	// HillClimb applies one pass of boundary hill climbing (§3.6) to each
	// offspring. Off by default: the paper reports it as an optional
	// improvement.
	HillClimb bool

	// SteadyState switches replacement from generational (the default; a
	// whole new population per Step) to steady-state: each Step still
	// produces PopSize offspring, but each offspring immediately replaces
	// the current worst individual if fitter, so good genes propagate
	// within a generation. The paper does not specify its policy;
	// BenchmarkAblationReplacement compares the two.
	SteadyState bool

	// EvalWorkers sets how many goroutines evaluate offspring fitness (and
	// run optional hill climbing) concurrently during the evaluate phase of
	// each generation. Values <= 0 select runtime.GOMAXPROCS(0); 1 is the
	// fully serial path. Evaluation is pure — only the serial breed phase
	// consumes the RNG — so results are bit-identical for every worker
	// count. SteadyState replacement is inherently sequential (each
	// offspring's selection sees the previous replacement) and ignores this
	// knob.
	EvalWorkers int

	Seed int64 // RNG seed; runs with equal Config are bit-reproducible
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.PopSize == 0 {
		out.PopSize = 320
	}
	if out.Pc == 0 {
		out.Pc = 0.7
	}
	if out.Pm == 0 {
		out.Pm = 0.01
	}
	if out.Selection == nil {
		out.Selection = Tournament{Size: 2}
	}
	if out.Elites == 0 {
		out.Elites = 2
	}
	if out.SeedPerturb == 0 {
		out.SeedPerturb = 0.15
	}
	if out.EvalWorkers <= 0 {
		out.EvalWorkers = runtime.GOMAXPROCS(0)
	}
	return out
}

// Stats records the trajectory of a run, one entry per generation, starting
// with the initial population (generation 0).
type Stats struct {
	BestFitness []float64 // best fitness in the population
	BestCut     []float64 // CutSize of the best individual
	BestMaxCut  []float64 // MaxPartCut of the best individual
	MeanFitness []float64 // population mean fitness
	Diversity   []float64 // mean per-gene disagreement with the best (0 = converged)
}

// Engine is a single-population generational GA. Create with New, advance
// with Step or Run, inspect with Best.
type Engine struct {
	g   *graph.Graph
	cfg Config
	rng *rand.Rand

	pop  []*Individual
	best *Individual // best ever seen (may have left the population)
	gen  int

	// estFitness is the fitness of the DKNUX estimate currently held by the
	// crossover operator; the estimate is replaced only by strictly fitter
	// bests, so a good heuristic seed is never displaced by a weaker one.
	estFitness float64

	// pool is the persistent evaluation worker pool (nil when EvalWorkers
	// resolves to 1: the serial path spawns nothing).
	pool *evalPool

	stats Stats
}

// New validates cfg, builds the initial population, and returns the engine.
func New(g *graph.Graph, cfg Config) (*Engine, error) {
	c := cfg.withDefaults()
	if c.Parts <= 0 {
		return nil, fmt.Errorf("ga: Parts must be positive, got %d", c.Parts)
	}
	if c.Crossover == nil {
		return nil, fmt.Errorf("ga: Crossover is required")
	}
	if c.PopSize < 2 {
		return nil, fmt.Errorf("ga: PopSize must be >= 2, got %d", c.PopSize)
	}
	if c.Elites >= c.PopSize {
		return nil, fmt.Errorf("ga: Elites %d >= PopSize %d", c.Elites, c.PopSize)
	}
	if c.Pc < 0 || c.Pc > 1 || c.Pm < 0 || c.Pm > 1 {
		return nil, fmt.Errorf("ga: rates must be in [0,1]: pc=%v pm=%v", c.Pc, c.Pm)
	}
	for i, s := range c.Seeds {
		if err := s.Validate(g); err != nil {
			return nil, fmt.Errorf("ga: seed %d: %w", i, err)
		}
		if s.Parts != c.Parts {
			return nil, fmt.Errorf("ga: seed %d has %d parts, config wants %d", i, s.Parts, c.Parts)
		}
	}
	e := &Engine{
		g:          g,
		cfg:        c,
		rng:        rand.New(rand.NewSource(c.Seed)),
		estFitness: math.Inf(-1),
	}
	if c.EvalWorkers > 1 {
		e.pool = newEvalPool(c.EvalWorkers)
		// Engines are not required to be Closed: when one is garbage
		// collected with its pool still running, release the helpers.
		runtime.AddCleanup(e, (*evalPool).shutdown, e.pool)
	}
	if prov, ok := c.Crossover.(EstimateProvider); ok {
		if est := prov.Estimate(); est != nil && len(est.Assign) == g.NumNodes() && est.Parts == c.Parts {
			e.estFitness = est.Fitness(g, c.Objective)
		}
	}
	e.initPopulation()
	e.record()
	return e, nil
}

func (e *Engine) initPopulation() {
	n := e.g.NumNodes()
	c := e.cfg
	// Construction consumes the RNG and stays serial; the initial fitness
	// evaluation is pure and runs on the worker pool.
	e.pop = make([]*Individual, 0, c.PopSize)
	for _, s := range c.Seeds {
		if len(e.pop) == c.PopSize {
			break
		}
		e.pop = append(e.pop, &Individual{Part: s.Clone()})
	}
	for len(e.pop) < c.PopSize {
		var p *partition.Partition
		if len(c.Seeds) > 0 {
			p = c.Seeds[e.rng.Intn(len(c.Seeds))].Perturb(c.SeedPerturb, e.rng)
		} else {
			p = partition.RandomBalanced(n, c.Parts, e.rng)
		}
		e.pop = append(e.pop, &Individual{Part: p})
	}
	e.evaluate(e.pop, false)
	e.best = e.fittest().Clone()
	e.updateEstimate()
}

func (e *Engine) fittest() *Individual {
	best := e.pop[0]
	for _, ind := range e.pop[1:] {
		if ind.Fitness > best.Fitness {
			best = ind
		}
	}
	return best
}

func (e *Engine) updateEstimate() {
	if e.best.Fitness <= e.estFitness {
		return // current estimate is at least as good; keep the knowledge
	}
	if up, ok := e.cfg.Crossover.(EstimateUpdater); ok {
		up.SetEstimate(e.best.Part)
		e.estFitness = e.best.Fitness
	}
}

func (e *Engine) record() {
	e.stats.BestFitness = append(e.stats.BestFitness, e.best.Fitness)
	e.stats.BestCut = append(e.stats.BestCut, e.best.Part.CutSize(e.g))
	e.stats.BestMaxCut = append(e.stats.BestMaxCut, e.best.Part.MaxPartCut(e.g))

	// The O(popsize × n) disagreement scan runs on the evaluation workers.
	// Per-individual counts are integers, so the parallel map plus in-order
	// reduce below is exact for every worker count.
	ref := e.fittest().Part.Assign
	counts := make([]int, len(e.pop))
	e.forEach(len(e.pop), func(i int) {
		d := 0
		for j, q := range e.pop[i].Part.Assign {
			if q != ref[j] {
				d++
			}
		}
		counts[i] = d
	})
	var meanFit, disagree float64
	for i, ind := range e.pop {
		meanFit += ind.Fitness
		disagree += float64(counts[i])
	}
	n := float64(len(e.pop))
	e.stats.MeanFitness = append(e.stats.MeanFitness, meanFit/n)
	genes := float64(len(ref))
	if genes == 0 {
		genes = 1
	}
	e.stats.Diversity = append(e.stats.Diversity, disagree/(n*genes))
}

// Step advances one generation: elitism, then a strictly serial breed phase
// (selection, crossover, mutation — everything that consumes the RNG),
// then a parallel evaluate phase (optional hill climbing and fitness, pure
// per-individual work spread over Config.EvalWorkers), then replacement
// (generational or steady-state per Config.SteadyState).
func (e *Engine) Step() {
	if e.cfg.SteadyState {
		e.stepSteadyState()
		return
	}
	c := e.cfg
	next := make([]*Individual, 0, c.PopSize)

	// Elites: the c.Elites fittest individuals survive unchanged.
	elite := e.eliteIndices()
	for _, i := range elite {
		next = append(next, e.pop[i].Clone())
	}

	// Breed phase: serial on the single rand.Rand, which defines the
	// bit-reproducible stream.
	offspring := make([]*Individual, 0, c.PopSize-len(next))
	for len(next)+len(offspring) < c.PopSize {
		offspring = append(offspring, e.breedOne())
	}

	// Evaluate phase: pure, parallel across the worker pool.
	e.evaluate(offspring, c.HillClimb)

	e.pop = append(next, offspring...)
	e.gen++

	if f := e.fittest(); f.Fitness > e.best.Fitness {
		e.best = f.Clone()
		e.updateEstimate()
	}
	e.record()
}

// breedOne produces one unevaluated offspring: selection, crossover or
// fitter-parent cloning, then mutation. Cloned offspring inherit their
// parent's cached aggregates, which mutation updates incrementally;
// crossover offspring are evaluated from scratch in the evaluate phase.
func (e *Engine) breedOne() *Individual {
	c := e.cfg
	i := c.Selection.Pick(e.pop, e.rng)
	j := c.Selection.Pick(e.pop, e.rng)
	a, b := e.pop[i], e.pop[j]
	var ind *Individual
	if e.rng.Float64() < c.Pc {
		ind = &Individual{Part: c.Crossover.Cross(e.g, a, b, e.rng)}
	} else {
		// No crossover: clone the fitter parent.
		if b.Fitness > a.Fitness {
			a = b
		}
		ind = a.Clone()
	}
	e.mutate(ind)
	return ind
}

// finish completes one offspring: builds the cached aggregates if the breed
// phase didn't leave any, applies one boundary hill-climbing pass if asked,
// and recomputes fitness from the (delta-updated) aggregates. finish is
// pure with respect to the engine: it touches only ind, so any number of
// finishes may run concurrently.
func (e *Engine) finish(ind *Individual, hillClimb bool) {
	if ind.ev == nil {
		ind.ev = partition.NewEval(e.g, ind.Part)
	}
	if hillClimb {
		kl.HillClimbEval(e.g, ind.Part, e.cfg.Objective, 1, ind.ev)
	}
	ind.Fitness = ind.ev.Fitness(e.g, e.cfg.Objective)
}

// evaluate finishes a batch of offspring on the worker pool.
func (e *Engine) evaluate(batch []*Individual, hillClimb bool) {
	e.forEach(len(batch), func(i int) { e.finish(batch[i], hillClimb) })
}

// forEach runs fn(i) for i in [0, n), on the pool when one exists.
func (e *Engine) forEach(n int, fn func(int)) {
	if e.pool == nil {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	e.pool.run(n, fn)
}

// stepSteadyState produces PopSize offspring, each immediately replacing
// the worst individual when fitter. Elitism is implicit: the best
// individuals are never the worst, so they survive. Breeding and evaluation
// cannot be split into phases here — each offspring's selection observes the
// previous offspring's replacement — so this path is serial by construction.
func (e *Engine) stepSteadyState() {
	c := e.cfg
	for k := 0; k < c.PopSize; k++ {
		ind := e.breedOne()
		e.finish(ind, c.HillClimb)
		worst := 0
		for w := range e.pop {
			if e.pop[w].Fitness < e.pop[worst].Fitness {
				worst = w
			}
		}
		if ind.Fitness > e.pop[worst].Fitness {
			e.pop[worst] = ind
			if ind.Fitness > e.best.Fitness {
				e.best = ind.Clone()
				e.updateEstimate()
			}
		}
	}
	e.gen++
	e.record()
}

// eliteIndices returns the indices of the Elites fittest individuals.
func (e *Engine) eliteIndices() []int {
	k := e.cfg.Elites
	idx := make([]int, 0, k)
	for cand := range e.pop {
		if len(idx) < k {
			idx = append(idx, cand)
			// Bubble the new entry into (descending) place.
			for t := len(idx) - 1; t > 0 && e.pop[idx[t]].Fitness > e.pop[idx[t-1]].Fitness; t-- {
				idx[t], idx[t-1] = idx[t-1], idx[t]
			}
			continue
		}
		if e.pop[cand].Fitness > e.pop[idx[k-1]].Fitness {
			idx[k-1] = cand
			for t := k - 1; t > 0 && e.pop[idx[t]].Fitness > e.pop[idx[t-1]].Fitness; t-- {
				idx[t], idx[t-1] = idx[t-1], idx[t]
			}
		}
	}
	return idx
}

// mutate flips each gene with probability Pm. When the individual carries
// cached aggregates (cloned offspring), each flip is applied as an O(deg)
// delta update so fitness needs no rescan.
func (e *Engine) mutate(ind *Individual) {
	p := ind.Part
	for i := range p.Assign {
		if e.rng.Float64() < e.cfg.Pm {
			to := e.rng.Intn(p.Parts)
			if ind.ev != nil {
				ind.ev.Move(e.g, p, i, to)
			} else {
				p.Assign[i] = uint16(to)
			}
		}
	}
}

// Run advances the engine by generations steps and returns the best
// individual found so far (a clone; safe to keep).
func (e *Engine) Run(generations int) *Individual {
	for i := 0; i < generations; i++ {
		e.Step()
	}
	return e.Best()
}

// Best returns a clone of the best individual found so far.
func (e *Engine) Best() *Individual { return e.best.Clone() }

// Close releases the evaluation worker pool. Calling it is optional — an
// engine that is garbage collected releases its workers automatically — and
// idempotent; the engine must not Step again afterwards.
func (e *Engine) Close() {
	if e.pool != nil {
		e.pool.shutdown()
	}
}

// Generation returns the number of Step calls so far.
func (e *Engine) Generation() int { return e.gen }

// Stats returns the recorded per-generation trajectory (entry 0 is the
// initial population). The returned value shares no state with the engine.
func (e *Engine) Stats() Stats {
	return Stats{
		BestFitness: append([]float64(nil), e.stats.BestFitness...),
		BestCut:     append([]float64(nil), e.stats.BestCut...),
		BestMaxCut:  append([]float64(nil), e.stats.BestMaxCut...),
		MeanFitness: append([]float64(nil), e.stats.MeanFitness...),
		Diversity:   append([]float64(nil), e.stats.Diversity...),
	}
}

// Population returns the live population. The dpga package uses this for
// migration; other callers should treat it as read-only.
func (e *Engine) Population() []*Individual { return e.pop }

// Inject replaces the worst individual with a copy of ind (evaluated under
// this engine's objective) if ind is fitter. Used by the distributed model
// to implement migration; returns whether the migrant was accepted.
func (e *Engine) Inject(p *partition.Partition) bool {
	ind := NewIndividual(e.g, p.Clone(), e.cfg.Objective)
	worst := 0
	for i := range e.pop {
		if e.pop[i].Fitness < e.pop[worst].Fitness {
			worst = i
		}
	}
	if ind.Fitness <= e.pop[worst].Fitness {
		return false
	}
	e.pop[worst] = ind
	if ind.Fitness > e.best.Fitness {
		e.best = ind.Clone()
		e.updateEstimate()
	}
	return true
}
