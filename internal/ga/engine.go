package ga

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/kl"
	"repro/internal/partition"
)

// Config parameterizes a single-population GA run. Zero values select the
// paper's defaults where the paper specifies one (population 320, pc = 0.7,
// pm = 0.01) and sensible choices where it does not (binary tournament,
// 2 elites).
type Config struct {
	Parts     int                 // number of parts (required)
	Objective partition.Objective // Fitness 1 (TotalCut) or Fitness 2 (WorstCut)

	PopSize int     // population size; default 320 (the paper's total)
	Pc      float64 // crossover rate; default 0.7
	Pm      float64 // per-gene mutation rate; default 0.01

	Crossover Crossover // required
	Selection Selection // default Tournament{Size: 2}
	Elites    int       // individuals copied unchanged; default 2

	// Seeds optionally initializes part of the population with heuristic
	// solutions (IBP, RSB, or a previous partition in the incremental case).
	// The rest of the population is filled with perturbed copies of the
	// seeds (SeedPerturb) or, with no seeds, random balanced partitions.
	Seeds       []*partition.Partition
	SeedPerturb float64 // default 0.15

	// HillClimb applies one pass of boundary hill climbing (§3.6) to each
	// offspring. Off by default: the paper reports it as an optional
	// improvement.
	HillClimb bool

	// SteadyState switches replacement from generational (the default; a
	// whole new population per Step) to steady-state: each Step still
	// produces PopSize offspring, but each offspring immediately replaces
	// the current worst individual if fitter, so good genes propagate
	// within a generation. The paper does not specify its policy;
	// BenchmarkAblationReplacement compares the two.
	SteadyState bool

	Seed int64 // RNG seed; runs with equal Config are bit-reproducible
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.PopSize == 0 {
		out.PopSize = 320
	}
	if out.Pc == 0 {
		out.Pc = 0.7
	}
	if out.Pm == 0 {
		out.Pm = 0.01
	}
	if out.Selection == nil {
		out.Selection = Tournament{Size: 2}
	}
	if out.Elites == 0 {
		out.Elites = 2
	}
	if out.SeedPerturb == 0 {
		out.SeedPerturb = 0.15
	}
	return out
}

// Stats records the trajectory of a run, one entry per generation, starting
// with the initial population (generation 0).
type Stats struct {
	BestFitness []float64 // best fitness in the population
	BestCut     []float64 // CutSize of the best individual
	BestMaxCut  []float64 // MaxPartCut of the best individual
	MeanFitness []float64 // population mean fitness
	Diversity   []float64 // mean per-gene disagreement with the best (0 = converged)
}

// Engine is a single-population generational GA. Create with New, advance
// with Step or Run, inspect with Best.
type Engine struct {
	g   *graph.Graph
	cfg Config
	rng *rand.Rand

	pop  []*Individual
	best *Individual // best ever seen (may have left the population)
	gen  int

	// estFitness is the fitness of the DKNUX estimate currently held by the
	// crossover operator; the estimate is replaced only by strictly fitter
	// bests, so a good heuristic seed is never displaced by a weaker one.
	estFitness float64

	stats Stats
}

// New validates cfg, builds the initial population, and returns the engine.
func New(g *graph.Graph, cfg Config) (*Engine, error) {
	c := cfg.withDefaults()
	if c.Parts <= 0 {
		return nil, fmt.Errorf("ga: Parts must be positive, got %d", c.Parts)
	}
	if c.Crossover == nil {
		return nil, fmt.Errorf("ga: Crossover is required")
	}
	if c.PopSize < 2 {
		return nil, fmt.Errorf("ga: PopSize must be >= 2, got %d", c.PopSize)
	}
	if c.Elites >= c.PopSize {
		return nil, fmt.Errorf("ga: Elites %d >= PopSize %d", c.Elites, c.PopSize)
	}
	if c.Pc < 0 || c.Pc > 1 || c.Pm < 0 || c.Pm > 1 {
		return nil, fmt.Errorf("ga: rates must be in [0,1]: pc=%v pm=%v", c.Pc, c.Pm)
	}
	for i, s := range c.Seeds {
		if err := s.Validate(g); err != nil {
			return nil, fmt.Errorf("ga: seed %d: %w", i, err)
		}
		if s.Parts != c.Parts {
			return nil, fmt.Errorf("ga: seed %d has %d parts, config wants %d", i, s.Parts, c.Parts)
		}
	}
	e := &Engine{
		g:          g,
		cfg:        c,
		rng:        rand.New(rand.NewSource(c.Seed)),
		estFitness: math.Inf(-1),
	}
	if prov, ok := c.Crossover.(EstimateProvider); ok {
		if est := prov.Estimate(); est != nil && len(est.Assign) == g.NumNodes() && est.Parts == c.Parts {
			e.estFitness = est.Fitness(g, c.Objective)
		}
	}
	e.initPopulation()
	e.record()
	return e, nil
}

func (e *Engine) initPopulation() {
	n := e.g.NumNodes()
	c := e.cfg
	e.pop = make([]*Individual, 0, c.PopSize)
	for _, s := range c.Seeds {
		if len(e.pop) == c.PopSize {
			break
		}
		e.pop = append(e.pop, NewIndividual(e.g, s.Clone(), c.Objective))
	}
	for len(e.pop) < c.PopSize {
		var p *partition.Partition
		if len(c.Seeds) > 0 {
			p = c.Seeds[e.rng.Intn(len(c.Seeds))].Perturb(c.SeedPerturb, e.rng)
		} else {
			p = partition.RandomBalanced(n, c.Parts, e.rng)
		}
		e.pop = append(e.pop, NewIndividual(e.g, p, c.Objective))
	}
	e.best = e.fittest().Clone()
	e.updateEstimate()
}

func (e *Engine) fittest() *Individual {
	best := e.pop[0]
	for _, ind := range e.pop[1:] {
		if ind.Fitness > best.Fitness {
			best = ind
		}
	}
	return best
}

func (e *Engine) updateEstimate() {
	if e.best.Fitness <= e.estFitness {
		return // current estimate is at least as good; keep the knowledge
	}
	if up, ok := e.cfg.Crossover.(EstimateUpdater); ok {
		up.SetEstimate(e.best.Part)
		e.estFitness = e.best.Fitness
	}
}

func (e *Engine) record() {
	e.stats.BestFitness = append(e.stats.BestFitness, e.best.Fitness)
	e.stats.BestCut = append(e.stats.BestCut, e.best.Part.CutSize(e.g))
	e.stats.BestMaxCut = append(e.stats.BestMaxCut, e.best.Part.MaxPartCut(e.g))

	var meanFit, disagree float64
	ref := e.fittest().Part.Assign
	for _, ind := range e.pop {
		meanFit += ind.Fitness
		d := 0
		for i, q := range ind.Part.Assign {
			if q != ref[i] {
				d++
			}
		}
		disagree += float64(d)
	}
	n := float64(len(e.pop))
	e.stats.MeanFitness = append(e.stats.MeanFitness, meanFit/n)
	genes := float64(len(ref))
	if genes == 0 {
		genes = 1
	}
	e.stats.Diversity = append(e.stats.Diversity, disagree/(n*genes))
}

// Step advances one generation: elitism, selection, crossover, mutation,
// optional hill climbing, replacement (generational or steady-state per
// Config.SteadyState).
func (e *Engine) Step() {
	if e.cfg.SteadyState {
		e.stepSteadyState()
		return
	}
	c := e.cfg
	next := make([]*Individual, 0, c.PopSize)

	// Elites: the c.Elites fittest individuals survive unchanged.
	elite := e.eliteIndices()
	for _, i := range elite {
		next = append(next, e.pop[i].Clone())
	}

	for len(next) < c.PopSize {
		i := c.Selection.Pick(e.pop, e.rng)
		j := c.Selection.Pick(e.pop, e.rng)
		a, b := e.pop[i], e.pop[j]
		var child *partition.Partition
		if e.rng.Float64() < c.Pc {
			child = c.Crossover.Cross(e.g, a, b, e.rng)
		} else {
			// No crossover: clone the fitter parent.
			if b.Fitness > a.Fitness {
				a = b
			}
			child = a.Part.Clone()
		}
		e.mutate(child)
		if c.HillClimb {
			kl.HillClimb(e.g, child, c.Objective, 1)
		}
		next = append(next, NewIndividual(e.g, child, c.Objective))
	}
	e.pop = next
	e.gen++

	if f := e.fittest(); f.Fitness > e.best.Fitness {
		e.best = f.Clone()
		e.updateEstimate()
	}
	e.record()
}

// stepSteadyState produces PopSize offspring, each immediately replacing
// the worst individual when fitter. Elitism is implicit: the best
// individuals are never the worst, so they survive.
func (e *Engine) stepSteadyState() {
	c := e.cfg
	for k := 0; k < c.PopSize; k++ {
		i := c.Selection.Pick(e.pop, e.rng)
		j := c.Selection.Pick(e.pop, e.rng)
		a, b := e.pop[i], e.pop[j]
		var child *partition.Partition
		if e.rng.Float64() < c.Pc {
			child = c.Crossover.Cross(e.g, a, b, e.rng)
		} else {
			if b.Fitness > a.Fitness {
				a = b
			}
			child = a.Part.Clone()
		}
		e.mutate(child)
		if c.HillClimb {
			kl.HillClimb(e.g, child, c.Objective, 1)
		}
		ind := NewIndividual(e.g, child, c.Objective)
		worst := 0
		for w := range e.pop {
			if e.pop[w].Fitness < e.pop[worst].Fitness {
				worst = w
			}
		}
		if ind.Fitness > e.pop[worst].Fitness {
			e.pop[worst] = ind
			if ind.Fitness > e.best.Fitness {
				e.best = ind.Clone()
				e.updateEstimate()
			}
		}
	}
	e.gen++
	e.record()
}

// eliteIndices returns the indices of the Elites fittest individuals.
func (e *Engine) eliteIndices() []int {
	k := e.cfg.Elites
	idx := make([]int, 0, k)
	for cand := range e.pop {
		if len(idx) < k {
			idx = append(idx, cand)
			// Bubble the new entry into (descending) place.
			for t := len(idx) - 1; t > 0 && e.pop[idx[t]].Fitness > e.pop[idx[t-1]].Fitness; t-- {
				idx[t], idx[t-1] = idx[t-1], idx[t]
			}
			continue
		}
		if e.pop[cand].Fitness > e.pop[idx[k-1]].Fitness {
			idx[k-1] = cand
			for t := k - 1; t > 0 && e.pop[idx[t]].Fitness > e.pop[idx[t-1]].Fitness; t-- {
				idx[t], idx[t-1] = idx[t-1], idx[t]
			}
		}
	}
	return idx
}

func (e *Engine) mutate(p *partition.Partition) {
	for i := range p.Assign {
		if e.rng.Float64() < e.cfg.Pm {
			p.Assign[i] = uint16(e.rng.Intn(p.Parts))
		}
	}
}

// Run advances the engine by generations steps and returns the best
// individual found so far (a clone; safe to keep).
func (e *Engine) Run(generations int) *Individual {
	for i := 0; i < generations; i++ {
		e.Step()
	}
	return e.Best()
}

// Best returns a clone of the best individual found so far.
func (e *Engine) Best() *Individual { return e.best.Clone() }

// Generation returns the number of Step calls so far.
func (e *Engine) Generation() int { return e.gen }

// Stats returns the recorded per-generation trajectory (entry 0 is the
// initial population). The returned value shares no state with the engine.
func (e *Engine) Stats() Stats {
	return Stats{
		BestFitness: append([]float64(nil), e.stats.BestFitness...),
		BestCut:     append([]float64(nil), e.stats.BestCut...),
		BestMaxCut:  append([]float64(nil), e.stats.BestMaxCut...),
		MeanFitness: append([]float64(nil), e.stats.MeanFitness...),
		Diversity:   append([]float64(nil), e.stats.Diversity...),
	}
}

// Population returns the live population. The dpga package uses this for
// migration; other callers should treat it as read-only.
func (e *Engine) Population() []*Individual { return e.pop }

// Inject replaces the worst individual with a copy of ind (evaluated under
// this engine's objective) if ind is fitter. Used by the distributed model
// to implement migration; returns whether the migrant was accepted.
func (e *Engine) Inject(p *partition.Partition) bool {
	ind := NewIndividual(e.g, p.Clone(), e.cfg.Objective)
	worst := 0
	for i := range e.pop {
		if e.pop[i].Fitness < e.pop[worst].Fitness {
			worst = i
		}
	}
	if ind.Fitness <= e.pop[worst].Fitness {
		return false
	}
	e.pop[worst] = ind
	if ind.Fitness > e.best.Fitness {
		e.best = ind.Clone()
		e.updateEstimate()
	}
	return true
}
