// Package ga implements the paper's genetic algorithm for graph
// partitioning: the assignment-vector representation, the traditional
// crossover operators (one-point, two-point, k-point, uniform), the paper's
// knowledge-based operators KNUX and DKNUX, mutation, selection, optional
// boundary hill climbing, and a single-population engine that the
// distributed-population model (package dpga) composes.
package ga

import (
	"repro/internal/graph"
	"repro/internal/partition"
)

// Individual is one member of the population: a candidate partition plus its
// cached fitness and per-part aggregates. Fitness is always kept in sync
// with Part by the engine; operators that modify Part must re-evaluate.
type Individual struct {
	Part    *partition.Partition
	Fitness float64

	// ev caches the part weights and part cuts backing Fitness, so mutation
	// and hill climbing update fitness incrementally instead of rescanning
	// the graph. nil means "not evaluated yet" (a freshly bred crossover
	// child between the breed and evaluate phases of Engine.Step).
	ev *partition.Eval
}

// NewIndividual evaluates p against g under objective o and wraps it.
func NewIndividual(g *graph.Graph, p *partition.Partition, o partition.Objective) *Individual {
	ev := partition.NewEval(g, p)
	return &Individual{Part: p, Fitness: ev.Fitness(g, o), ev: ev}
}

// Clone deep-copies the individual, including its cached aggregates.
func (ind *Individual) Clone() *Individual {
	c := &Individual{Part: ind.Part.Clone(), Fitness: ind.Fitness}
	if ind.ev != nil {
		c.ev = ind.ev.Clone()
	}
	return c
}
