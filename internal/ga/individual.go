// Package ga implements the paper's genetic algorithm for graph
// partitioning: the assignment-vector representation, the traditional
// crossover operators (one-point, two-point, k-point, uniform), the paper's
// knowledge-based operators KNUX and DKNUX, mutation, selection, optional
// boundary hill climbing, and a single-population engine that the
// distributed-population model (package dpga) composes.
package ga

import (
	"repro/internal/graph"
	"repro/internal/partition"
)

// Individual is one member of the population: a candidate partition plus its
// cached fitness. Fitness is always kept in sync with Part by the engine;
// operators that modify Part must re-evaluate.
type Individual struct {
	Part    *partition.Partition
	Fitness float64
}

// NewIndividual evaluates p against g under objective o and wraps it.
func NewIndividual(g *graph.Graph, p *partition.Partition, o partition.Objective) *Individual {
	return &Individual{Part: p, Fitness: p.Fitness(g, o)}
}

// Clone deep-copies the individual.
func (ind *Individual) Clone() *Individual {
	return &Individual{Part: ind.Part.Clone(), Fitness: ind.Fitness}
}
