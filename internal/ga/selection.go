package ga

import (
	"fmt"
	"math/rand"
	"sort"
)

// Selection picks a parent index from the population. The paper does not
// specify its selection scheme; binary tournament is the default (see
// BenchmarkAblationSelection), with roulette and rank for the ablations.
type Selection interface {
	// Name identifies the scheme in reports.
	Name() string
	// Pick returns the index of the selected individual. pop is sorted by
	// nothing in particular; implementations must consult Fitness.
	Pick(pop []*Individual, rng *rand.Rand) int
}

// Tournament selection draws Size individuals uniformly and returns the
// fittest. Size 2 (binary tournament) is the default used throughout.
type Tournament struct {
	Size int
}

// Name implements Selection.
func (t Tournament) Name() string { return fmt.Sprintf("tournament-%d", t.Size) }

// Pick implements Selection.
func (t Tournament) Pick(pop []*Individual, rng *rand.Rand) int {
	if t.Size <= 0 {
		panic("ga: tournament size must be positive")
	}
	best := rng.Intn(len(pop))
	for i := 1; i < t.Size; i++ {
		c := rng.Intn(len(pop))
		if pop[c].Fitness > pop[best].Fitness {
			best = c
		}
	}
	return best
}

// Roulette is fitness-proportionate selection. Fitness values here are
// always <= 0 (negated costs), so selection weights are computed as
// (f - worst) + eps, which preserves proportionality of "goodness" while
// staying positive.
type Roulette struct{}

// Name implements Selection.
func (Roulette) Name() string { return "roulette" }

// Pick implements Selection.
func (Roulette) Pick(pop []*Individual, rng *rand.Rand) int {
	worst := pop[0].Fitness
	for _, ind := range pop[1:] {
		if ind.Fitness < worst {
			worst = ind.Fitness
		}
	}
	var total float64
	for _, ind := range pop {
		total += ind.Fitness - worst
	}
	if total <= 0 {
		return rng.Intn(len(pop)) // all equal: uniform
	}
	r := rng.Float64() * total
	var acc float64
	for i, ind := range pop {
		acc += ind.Fitness - worst
		if r < acc {
			return i
		}
	}
	return len(pop) - 1
}

// Rank is linear-rank selection: individuals are sorted by fitness and
// selected with probability proportional to rank+1 (worst has rank 0). Rank
// selection is insensitive to the fitness scale, which matters when the
// imbalance term dwarfs the cut term early in a run.
type Rank struct{}

// Name implements Selection.
func (Rank) Name() string { return "rank" }

// Pick implements Selection.
func (Rank) Pick(pop []*Individual, rng *rand.Rand) int {
	n := len(pop)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return pop[idx[a]].Fitness < pop[idx[b]].Fitness })
	// Total weight n(n+1)/2; draw a rank.
	total := n * (n + 1) / 2
	r := rng.Intn(total)
	acc := 0
	for rank := 0; rank < n; rank++ {
		acc += rank + 1
		if r < acc {
			return idx[rank]
		}
	}
	return idx[n-1]
}
