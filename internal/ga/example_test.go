package ga_test

import (
	"fmt"

	"repro/internal/ga"
	"repro/internal/gen"
	"repro/internal/ibp"
	"repro/internal/partition"
)

// Example partitions a benchmark mesh into 4 parts with DKNUX seeded by an
// IBP solution — the paper's Table 1 methodology in miniature.
func Example() {
	g := gen.PaperGraph(78)
	seed, err := ibp.Partition(g, 4, ibp.ShuffledRowMajor)
	if err != nil {
		panic(err)
	}
	e, err := ga.New(g, ga.Config{
		Parts:     4,
		PopSize:   64,
		Crossover: ga.NewDKNUX(seed),
		Seeds:     []*partition.Partition{seed},
		Seed:      1,
	})
	if err != nil {
		panic(err)
	}
	best := e.Run(50)
	fmt.Println("balanced:", best.Part.Balanced())
	fmt.Println("improved:", best.Part.CutSize(g) <= seed.CutSize(g))
	// Output:
	// balanced: true
	// improved: true
}
