package ga

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
)

func mkParents(g *graph.Graph, parts int, rng *rand.Rand) (*Individual, *Individual) {
	a := partition.RandomBalanced(g.NumNodes(), parts, rng)
	b := partition.RandomBalanced(g.NumNodes(), parts, rng)
	return NewIndividual(g, a, partition.TotalCut), NewIndividual(g, b, partition.TotalCut)
}

// closure checks the fundamental crossover property: every child gene comes
// from one of the parents at the same locus.
func closure(t *testing.T, name string, a, b *Individual, child *partition.Partition) {
	t.Helper()
	for i, v := range child.Assign {
		if v != a.Part.Assign[i] && v != b.Part.Assign[i] {
			t.Fatalf("%s: gene %d = %d, neither parent (%d, %d)", name, i, v, a.Part.Assign[i], b.Part.Assign[i])
		}
	}
}

func TestAllOperatorsClosure(t *testing.T) {
	g := gen.Mesh(60, 1)
	rng := rand.New(rand.NewSource(2))
	a, b := mkParents(g, 4, rng)
	est := partition.RandomBalanced(g.NumNodes(), 4, rng)
	ops := []Crossover{
		KPoint{K: 1}, KPoint{K: 2}, KPoint{K: 5},
		Uniform{},
		NewKNUX(est),
		NewDKNUX(est),
	}
	for _, op := range ops {
		for trial := 0; trial < 10; trial++ {
			child := op.Cross(g, a, b, rng)
			closure(t, op.Name(), a, b, child)
			if len(child.Assign) != g.NumNodes() {
				t.Fatalf("%s: child length %d", op.Name(), len(child.Assign))
			}
		}
	}
}

func TestOperatorsDoNotModifyParents(t *testing.T) {
	g := gen.Mesh(40, 3)
	rng := rand.New(rand.NewSource(4))
	a, b := mkParents(g, 4, rng)
	ac := a.Part.Clone()
	bc := b.Part.Clone()
	est := partition.RandomBalanced(g.NumNodes(), 4, rng)
	for _, op := range []Crossover{KPoint{K: 2}, Uniform{}, NewKNUX(est)} {
		op.Cross(g, a, b, rng)
		for i := range ac.Assign {
			if a.Part.Assign[i] != ac.Assign[i] || b.Part.Assign[i] != bc.Assign[i] {
				t.Fatalf("%s modified a parent", op.Name())
			}
		}
	}
}

func TestKPointSegments(t *testing.T) {
	// With k=1 the child must be a prefix of one parent and suffix of the
	// other. Craft parents with disjoint labels to observe the switch.
	g := gen.Mesh(20, 5)
	a := partition.New(20, 2) // all zeros
	b := partition.New(20, 2)
	for i := range b.Assign {
		b.Assign[i] = 1 // all ones
	}
	ia := NewIndividual(g, a, partition.TotalCut)
	ib := NewIndividual(g, b, partition.TotalCut)
	rng := rand.New(rand.NewSource(6))
	child := KPoint{K: 1}.Cross(g, ia, ib, rng)
	switches := 0
	for i := 1; i < len(child.Assign); i++ {
		if child.Assign[i] != child.Assign[i-1] {
			switches++
		}
	}
	if switches != 1 {
		t.Errorf("1-point crossover switched %d times, want 1", switches)
	}
}

func TestKPointPanicsOnBadK(t *testing.T) {
	g := gen.Mesh(10, 1)
	rng := rand.New(rand.NewSource(1))
	a, b := mkParents(g, 2, rng)
	for _, k := range []int{0, 10, 20} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("k=%d accepted", k)
				}
			}()
			KPoint{K: k}.Cross(g, a, b, rng)
		}()
	}
}

func TestKNUXAgreementPreserved(t *testing.T) {
	// Genes where parents agree must be copied verbatim regardless of the
	// estimate.
	g := gen.Mesh(30, 7)
	rng := rand.New(rand.NewSource(8))
	a, b := mkParents(g, 4, rng)
	// Force agreement at the first 10 loci.
	for i := 0; i < 10; i++ {
		b.Part.Assign[i] = a.Part.Assign[i]
	}
	op := NewKNUX(partition.RandomBalanced(g.NumNodes(), 4, rng))
	child := op.Cross(g, a, b, rng)
	for i := 0; i < 10; i++ {
		if child.Assign[i] != a.Part.Assign[i] {
			t.Fatalf("agreed gene %d changed", i)
		}
	}
}

func TestKNUXBiasFollowsEstimate(t *testing.T) {
	// Construct a case where the estimate fully supports parent a at a
	// locus: all neighbors of node v are assigned (by I) to a's part of v,
	// none to b's. Then the child must always take a's gene there.
	b := graph.NewBuilder(5)
	for v := 1; v <= 4; v++ {
		b.AddEdge(0, v, 1) // star centered at 0
	}
	g := b.Build()
	pa := partition.New(5, 2) // a assigns node 0 to part 0
	pb := partition.New(5, 2)
	pb.Assign[0] = 1 // b assigns node 0 to part 1
	est := partition.New(5, 2)
	// I assigns all of node 0's neighbors to part 0 => #(0,a,I)=4, #(0,b,I)=0.
	op := NewKNUX(est)
	ia := NewIndividual(g, pa, partition.TotalCut)
	ib := NewIndividual(g, pb, partition.TotalCut)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		child := op.Cross(g, ia, ib, rng)
		if child.Assign[0] != 0 {
			t.Fatalf("KNUX ignored a fully-supporting estimate (trial %d)", trial)
		}
	}
	// Now flip I so all neighbors are in part 1: child must take b's gene.
	for v := 1; v <= 4; v++ {
		est.Assign[v] = 1
	}
	op2 := NewKNUX(est)
	for trial := 0; trial < 50; trial++ {
		child := op2.Cross(g, ia, ib, rng)
		if child.Assign[0] != 1 {
			t.Fatalf("KNUX ignored estimate favoring parent b (trial %d)", trial)
		}
	}
}

func TestKNUXUnbiasedWhenNoInformation(t *testing.T) {
	// Isolated disagreeing locus with no neighbor support either way:
	// p = 0.5. Verify both outcomes occur.
	b := graph.NewBuilder(3)
	b.AddEdge(1, 2, 1) // node 0 isolated
	g := b.Build()
	pa := partition.New(3, 2)
	pb := partition.New(3, 2)
	pb.Assign[0] = 1
	op := NewKNUX(partition.New(3, 2))
	ia := NewIndividual(g, pa, partition.TotalCut)
	ib := NewIndividual(g, pb, partition.TotalCut)
	rng := rand.New(rand.NewSource(10))
	var saw [2]bool
	for trial := 0; trial < 100; trial++ {
		child := op.Cross(g, ia, ib, rng)
		saw[child.Assign[0]] = true
	}
	if !saw[0] || !saw[1] {
		t.Errorf("p=0.5 locus produced only one outcome: %v", saw)
	}
}

func TestNewKNUXPanicsOnNil(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil estimate accepted")
		}
	}()
	NewKNUX(nil)
}

func TestDKNUXSetEstimate(t *testing.T) {
	est := partition.New(4, 2)
	d := NewDKNUX(est)
	better := partition.New(4, 2)
	better.Assign[0] = 1
	d.SetEstimate(better)
	if d.Estimate().Assign[0] != 1 {
		t.Error("SetEstimate did not replace the estimate")
	}
	// The estimate must be a clone: mutating the source must not leak in.
	better.Assign[1] = 1
	if d.Estimate().Assign[1] == 1 {
		t.Error("SetEstimate aliases caller's partition")
	}
}

func TestOperatorNames(t *testing.T) {
	est := partition.New(2, 2)
	for want, op := range map[string]Crossover{
		"1-point": KPoint{K: 1},
		"2-point": KPoint{K: 2},
		"uniform": Uniform{},
		"KNUX":    NewKNUX(est),
		"DKNUX":   NewDKNUX(est),
	} {
		if op.Name() != want {
			t.Errorf("Name = %q, want %q", op.Name(), want)
		}
	}
}

// Property: closure holds for every operator on random meshes and parents.
func TestQuickClosure(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(50)
		g := gen.Mesh(n, seed)
		parts := 2 + rng.Intn(6)
		a, b := mkParents(g, parts, rng)
		est := partition.RandomBalanced(n, parts, rng)
		ops := []Crossover{KPoint{K: 1 + rng.Intn(n-2)}, Uniform{}, NewKNUX(est), NewDKNUX(est)}
		for _, op := range ops {
			child := op.Cross(g, a, b, rng)
			for i, v := range child.Assign {
				if v != a.Part.Assign[i] && v != b.Part.Assign[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
