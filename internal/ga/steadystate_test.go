package ga

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/partition"
)

func TestSteadyStateImproves(t *testing.T) {
	g := gen.Mesh(60, 41)
	cfg := smallConfig(4, Uniform{})
	cfg.SteadyState = true
	e, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := e.Best().Fitness
	e.Run(20)
	if e.Best().Fitness <= first {
		t.Error("steady-state GA failed to improve")
	}
	if e.Generation() != 20 {
		t.Errorf("generation = %d", e.Generation())
	}
	s := e.Stats()
	for i := 1; i < len(s.BestFitness); i++ {
		if s.BestFitness[i] < s.BestFitness[i-1] {
			t.Fatal("best fitness regressed in steady-state mode")
		}
	}
}

func TestSteadyStateNeverDegradesPopulation(t *testing.T) {
	// In steady-state mode, the population's worst fitness is monotone
	// non-decreasing: offspring only enter by beating the worst.
	g := gen.Mesh(50, 43)
	cfg := smallConfig(4, KPoint{K: 2})
	cfg.SteadyState = true
	e, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	worstOf := func() float64 {
		w := e.Population()[0].Fitness
		for _, ind := range e.Population() {
			if ind.Fitness < w {
				w = ind.Fitness
			}
		}
		return w
	}
	prev := worstOf()
	for i := 0; i < 10; i++ {
		e.Step()
		cur := worstOf()
		if cur < prev {
			t.Fatalf("population worst degraded at step %d: %v -> %v", i, prev, cur)
		}
		prev = cur
	}
}

func TestSteadyStateDeterministic(t *testing.T) {
	g := gen.Mesh(40, 45)
	run := func() []uint16 {
		cfg := smallConfig(2, Uniform{})
		cfg.SteadyState = true
		e, err := New(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e.Run(10).Part.Assign
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("steady-state runs diverged for equal seeds")
		}
	}
}

func TestSteadyStateWithDKNUX(t *testing.T) {
	g := gen.PaperGraph(98)
	rng := rand.New(rand.NewSource(47))
	est := partition.RandomBalanced(g.NumNodes(), 4, rng)
	cfg := Config{Parts: 4, PopSize: 40, Crossover: NewDKNUX(est), SteadyState: true, Seed: 5}
	e, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Run(25)
	randomCut := partition.RandomBalanced(g.NumNodes(), 4, rng).CutSize(g)
	if cut := e.Best().Part.CutSize(g); cut >= randomCut {
		t.Errorf("steady-state DKNUX cut %v not better than random %v", cut, randomCut)
	}
}
