package ga

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/partition"
)

// TestKNUXBiasProbabilityRatio verifies the paper's formula quantitatively:
// with #(i,a,I)=3 and #(i,b,I)=1 the child takes a's gene with probability
// 3/4. We build a 4-star whose estimate assigns 3 leaves to a's part of the
// center and 1 leaf to b's part, then measure the empirical frequency.
func TestKNUXBiasProbabilityRatio(t *testing.T) {
	b := graph.NewBuilder(5)
	for v := 1; v <= 4; v++ {
		b.AddEdge(0, v, 1)
	}
	g := b.Build()

	pa := partition.New(5, 2) // a: center in part 0
	pb := partition.New(5, 2)
	pb.Assign[0] = 1 // b: center in part 1

	est := partition.New(5, 2)
	est.Assign[4] = 1 // I: leaves 1,2,3 -> part 0 (a's), leaf 4 -> part 1 (b's)

	op := NewKNUX(est)
	ia := NewIndividual(g, pa, partition.TotalCut)
	ib := NewIndividual(g, pb, partition.TotalCut)
	rng := rand.New(rand.NewSource(123))

	const trials = 20000
	tookA := 0
	for i := 0; i < trials; i++ {
		child := op.Cross(g, ia, ib, rng)
		if child.Assign[0] == 0 {
			tookA++
		}
	}
	p := float64(tookA) / trials
	// Binomial std at p=0.75 with 20000 trials is ~0.003; allow 5 sigma.
	if math.Abs(p-0.75) > 0.016 {
		t.Errorf("empirical P(child=a) = %.4f, want 0.75 (3:1 neighbor support)", p)
	}
}

// TestKNUXRespectsGraphLocality verifies the operator's purpose: children of
// two random parents scored against a good estimate should, on average, be
// fitter under KNUX than under uniform crossover.
func TestKNUXRespectsGraphLocality(t *testing.T) {
	// Path graph with an estimate that is the ideal bisection.
	n := 40
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1, 1)
	}
	g := b.Build()
	est := partition.New(n, 2)
	for v := n / 2; v < n; v++ {
		est.Assign[v] = 1
	}
	rng := rand.New(rand.NewSource(7))
	knux := NewKNUX(est)
	ux := Uniform{}

	var knuxSum, uxSum float64
	const trials = 300
	for i := 0; i < trials; i++ {
		a := NewIndividual(g, partition.RandomBalanced(n, 2, rng), partition.TotalCut)
		c := NewIndividual(g, partition.RandomBalanced(n, 2, rng), partition.TotalCut)
		knuxSum += knux.Cross(g, a, c, rng).Fitness(g, partition.TotalCut)
		uxSum += ux.Cross(g, a, c, rng).Fitness(g, partition.TotalCut)
	}
	if knuxSum/trials <= uxSum/trials {
		t.Errorf("KNUX mean offspring fitness %.2f not better than UX %.2f",
			knuxSum/trials, uxSum/trials)
	}
}

// TestMutationRateEffect: with pm=0 and pc=0 the population can only shuffle
// clones, so after any number of generations every individual equals one of
// the initial ones.
func TestMutationRateEffect(t *testing.T) {
	gph := mustMesh(t)
	seedPart := partition.RandomBalanced(gph.NumNodes(), 2, rand.New(rand.NewSource(1)))
	e, err := New(gph, Config{
		Parts:     2,
		PopSize:   10,
		Pc:        -1, // withDefaults only replaces 0; negative means "never cross"
		Pm:        0.000001,
		Crossover: Uniform{},
		Seeds:     []*partition.Partition{seedPart},
		Seed:      3,
	})
	if err == nil {
		e.Run(3)
		// With crossover essentially off and mutation near zero, the best
		// individual must still be at least as fit as the seed.
		if e.Best().Fitness < seedPart.Fitness(gph, partition.TotalCut) {
			t.Error("population degraded below its seed without variation pressure")
		}
	} else {
		// Config validation may legitimately reject pc<0; that is also
		// acceptable behavior — assert it does.
		t.Log("engine rejected pc<0:", err)
	}
}

func mustMesh(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(30)
	for i := 0; i+1 < 30; i++ {
		b.AddEdge(i, i+1, 1)
	}
	for i := 0; i+5 < 30; i += 5 {
		b.AddEdge(i, i+5, 1)
	}
	return b.Build()
}
