package ga

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
	"repro/internal/partition"
)

// Crossover produces one offspring partition from two parents. Operators may
// consult the graph (KNUX does); traditional operators ignore it.
//
// All operators satisfy the closure property: every offspring gene value
// comes from one of the parents at the same position.
type Crossover interface {
	// Name identifies the operator in reports and benchmarks.
	Name() string
	// Cross returns a new offspring; parents are not modified.
	Cross(g *graph.Graph, a, b *Individual, rng *rand.Rand) *partition.Partition
}

// KPoint is the classic k-point crossover: k distinct cut sites split the
// chromosome into k+1 segments copied alternately from each parent.
// KPoint{K: 1} is one-point crossover, KPoint{K: 2} the two-point crossover
// the paper benchmarks against.
type KPoint struct {
	K int
}

// Name implements Crossover.
func (c KPoint) Name() string { return fmt.Sprintf("%d-point", c.K) }

// Cross implements Crossover.
func (c KPoint) Cross(g *graph.Graph, a, b *Individual, rng *rand.Rand) *partition.Partition {
	n := len(a.Part.Assign)
	if c.K <= 0 || c.K >= n {
		panic(fmt.Sprintf("ga: k-point crossover with k=%d on %d genes", c.K, n))
	}
	// k distinct cut sites in [1, n-1].
	sites := make(map[int]bool, c.K)
	for len(sites) < c.K {
		sites[1+rng.Intn(n-1)] = true
	}
	cuts := make([]int, 0, c.K)
	for s := range sites {
		cuts = append(cuts, s)
	}
	sort.Ints(cuts)

	child := a.Part.Clone()
	src := [2]*partition.Partition{a.Part, b.Part}
	cur, next := 0, 0
	for i := 0; i < n; i++ {
		for next < len(cuts) && cuts[next] == i {
			cur ^= 1
			next++
		}
		child.Assign[i] = src[cur].Assign[i]
	}
	return child
}

// Uniform is Syswerda's uniform crossover (UX): each gene is inherited from
// either parent with probability 1/2, independently.
type Uniform struct{}

// Name implements Crossover.
func (Uniform) Name() string { return "uniform" }

// Cross implements Crossover.
func (Uniform) Cross(g *graph.Graph, a, b *Individual, rng *rand.Rand) *partition.Partition {
	child := a.Part.Clone()
	for i := range child.Assign {
		if rng.Intn(2) == 1 {
			child.Assign[i] = b.Part.Assign[i]
		}
	}
	return child
}

// KNUX is the paper's Knowledge-based Non-Uniform Crossover. It biases each
// gene toward the parent whose assignment of node i better agrees with a
// heuristic estimate partition I over i's neighborhood:
//
//	#(i, X, I) = |{ j ∈ Γ(i) : I[j] == X[i] }|
//	p_i = 0.5                                   if both counts are zero
//	p_i = #(i,a,I) / (#(i,a,I) + #(i,b,I))      otherwise
//
// and the child takes gene i from parent a with probability p_i (genes on
// which the parents agree are copied unchanged). The estimate is typically a
// good solution from IBP or RSB.
type KNUX struct {
	estimate *partition.Partition
}

// NewKNUX returns KNUX with the given initial estimate I. The estimate is
// cloned, so callers may keep mutating their copy.
func NewKNUX(estimate *partition.Partition) *KNUX {
	if estimate == nil {
		panic("ga: KNUX requires a non-nil estimate")
	}
	return &KNUX{estimate: estimate.Clone()}
}

// Name implements Crossover.
func (k *KNUX) Name() string { return "KNUX" }

// Estimate returns the current estimate partition (not a copy).
func (k *KNUX) Estimate() *partition.Partition { return k.estimate }

// Cross implements Crossover.
func (k *KNUX) Cross(g *graph.Graph, a, b *Individual, rng *rand.Rand) *partition.Partition {
	child := a.Part.Clone()
	ia := k.estimate.Assign
	pa, pb := a.Part.Assign, b.Part.Assign
	for i := range child.Assign {
		if pa[i] == pb[i] {
			continue // c_i = a_i already
		}
		var ca, cb int
		for _, j := range g.Neighbors(i) {
			if ia[j] == pa[i] {
				ca++
			}
			if ia[j] == pb[i] {
				cb++
			}
		}
		p := 0.5
		if ca+cb > 0 {
			p = float64(ca) / float64(ca+cb)
		}
		if rng.Float64() >= p {
			child.Assign[i] = pb[i]
		}
	}
	return child
}

// DKNUX is the paper's Dynamic KNUX: identical recombination to KNUX, but
// the estimate I is continually updated to the best solution found so far in
// the genetic search. The engine performs the update through SetEstimate
// whenever a new global best appears.
type DKNUX struct {
	KNUX
}

// NewDKNUX returns DKNUX seeded with an initial estimate (usually the best
// individual of the initial population).
func NewDKNUX(estimate *partition.Partition) *DKNUX {
	return &DKNUX{KNUX: *NewKNUX(estimate)}
}

// Name implements Crossover.
func (d *DKNUX) Name() string { return "DKNUX" }

// SetEstimate replaces the estimate with a clone of best. The engine calls
// this on every global-best improvement, realizing the paper's "continually
// updates the estimate I to be the current best solution".
func (d *DKNUX) SetEstimate(best *partition.Partition) {
	d.estimate = best.Clone()
}

// EstimateUpdater is implemented by operators whose heuristic estimate should
// track the best solution (DKNUX). The engine feeds every new global best to
// it — but only when that best is fitter than the operator's current
// estimate, so a strong heuristic seed (e.g. IBP) is never displaced by a
// weaker early-population best.
type EstimateUpdater interface {
	SetEstimate(best *partition.Partition)
}

// EstimateProvider exposes an operator's current estimate so the engine can
// score it before deciding whether a new best should replace it.
type EstimateProvider interface {
	Estimate() *partition.Partition
}

var (
	_ EstimateUpdater  = (*DKNUX)(nil)
	_ EstimateProvider = (*DKNUX)(nil)
	_ EstimateProvider = (*KNUX)(nil)
)
