package ga

import (
	"testing"

	"repro/internal/gen"
)

func TestStatsSeriesLengthsAndBounds(t *testing.T) {
	g := gen.Mesh(50, 51)
	e, err := New(g, smallConfig(4, Uniform{}))
	if err != nil {
		t.Fatal(err)
	}
	e.Run(12)
	s := e.Stats()
	want := 13 // generation 0 plus 12 steps
	if len(s.MeanFitness) != want || len(s.Diversity) != want {
		t.Fatalf("series lengths: mean=%d diversity=%d, want %d",
			len(s.MeanFitness), len(s.Diversity), want)
	}
	for i := range s.MeanFitness {
		if s.MeanFitness[i] > s.BestFitness[i] {
			t.Errorf("gen %d: mean fitness %v exceeds best %v", i, s.MeanFitness[i], s.BestFitness[i])
		}
		if s.Diversity[i] < 0 || s.Diversity[i] > 1 {
			t.Errorf("gen %d: diversity %v out of [0,1]", i, s.Diversity[i])
		}
	}
}

func TestDiversityShrinksUnderSelection(t *testing.T) {
	// Selection pressure homogenizes the population: diversity in the final
	// generation should be lower than in the initial random population.
	g := gen.PaperGraph(78)
	e, err := New(g, Config{Parts: 4, PopSize: 40, Crossover: Uniform{}, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(40)
	s := e.Stats()
	first, last := s.Diversity[0], s.Diversity[len(s.Diversity)-1]
	if last >= first {
		t.Errorf("diversity did not shrink: %v -> %v", first, last)
	}
}

func TestStatsCopyIsIndependent(t *testing.T) {
	g := gen.Mesh(30, 53)
	e, err := New(g, smallConfig(2, Uniform{}))
	if err != nil {
		t.Fatal(err)
	}
	e.Run(2)
	s := e.Stats()
	s.Diversity[0] = 99
	if e.Stats().Diversity[0] == 99 {
		t.Error("Stats returns aliased slices")
	}
}
