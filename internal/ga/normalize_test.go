package ga

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/partition"
)

func TestRelabelToMatchIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := partition.RandomBalanced(30, 4, rng)
	out := RelabelToMatch(a, a)
	for i := range a.Assign {
		if out.Assign[i] != a.Assign[i] {
			t.Fatal("relabeling a partition against itself changed it")
		}
	}
}

func TestRelabelToMatchPermutation(t *testing.T) {
	// b is a pure label permutation of a: relabeling must recover a exactly.
	rng := rand.New(rand.NewSource(2))
	a := partition.RandomBalanced(40, 4, rng)
	perm := []uint16{2, 3, 0, 1}
	b := a.Clone()
	for i := range b.Assign {
		b.Assign[i] = perm[b.Assign[i]]
	}
	out := RelabelToMatch(a, b)
	for i := range a.Assign {
		if out.Assign[i] != a.Assign[i] {
			t.Fatalf("permuted twin not recovered at %d: %d vs %d", i, out.Assign[i], a.Assign[i])
		}
	}
}

func TestRelabelNeverDecreasesAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		parts := 2 + rng.Intn(6)
		n := 20 + rng.Intn(40)
		a := partition.Random(n, parts, rng)
		b := partition.Random(n, parts, rng)
		before := agreement(a, b)
		out := RelabelToMatch(a, b)
		after := agreement(a, out)
		if after < before {
			t.Fatalf("trial %d: agreement fell %d -> %d", trial, before, after)
		}
	}
}

func agreement(a, b *partition.Partition) int {
	c := 0
	for i := range a.Assign {
		if a.Assign[i] == b.Assign[i] {
			c++
		}
	}
	return c
}

func TestRelabelPreservesStructure(t *testing.T) {
	// Relabeling must not change the partition's cut (it is the same
	// partition under new names).
	g := gen.Mesh(50, 4)
	rng := rand.New(rand.NewSource(5))
	a := partition.RandomBalanced(50, 4, rng)
	b := partition.RandomBalanced(50, 4, rng)
	out := RelabelToMatch(a, b)
	if out.CutSize(g) != b.CutSize(g) {
		t.Errorf("relabeling changed the cut: %v -> %v", b.CutSize(g), out.CutSize(g))
	}
}

func TestNormalizingClosureAndName(t *testing.T) {
	g := gen.Mesh(40, 6)
	rng := rand.New(rand.NewSource(7))
	a, b := mkParents(g, 4, rng)
	op := Normalizing{Inner: Uniform{}}
	if op.Name() != "uniform+normalize" {
		t.Errorf("Name = %q", op.Name())
	}
	child := op.Cross(g, a, b, rng)
	// Closure holds w.r.t. parent a and the relabeled parent b.
	nb := RelabelToMatch(a.Part, b.Part)
	for i, v := range child.Assign {
		if v != a.Part.Assign[i] && v != nb.Assign[i] {
			t.Fatalf("gene %d = %d from neither parent", i, v)
		}
	}
}

func TestNormalizingForwardsEstimate(t *testing.T) {
	est := partition.New(10, 2)
	d := NewDKNUX(est)
	op := Normalizing{Inner: d}
	better := partition.New(10, 2)
	better.Assign[0] = 1
	op.SetEstimate(better)
	if d.Estimate().Assign[0] != 1 {
		t.Error("SetEstimate not forwarded to inner DKNUX")
	}
	if op.Estimate() == nil {
		t.Error("Estimate not forwarded")
	}
	// Non-providing inner: Estimate returns nil, SetEstimate is a no-op.
	op2 := Normalizing{Inner: Uniform{}}
	op2.SetEstimate(better)
	if op2.Estimate() != nil {
		t.Error("Uniform inner should have no estimate")
	}
}

func TestNormalizingHelpsPermutedTwins(t *testing.T) {
	// Two parents encoding the SAME good partition under different labels:
	// plain uniform crossover produces a scrambled child; normalized
	// uniform reproduces the partition exactly.
	g := gen.Mesh(60, 8)
	rng := rand.New(rand.NewSource(9))
	good := partition.RandomBalanced(60, 4, rng)
	permuted := good.Clone()
	perm := []uint16{3, 2, 1, 0}
	for i := range permuted.Assign {
		permuted.Assign[i] = perm[permuted.Assign[i]]
	}
	ia := NewIndividual(g, good, partition.TotalCut)
	ib := NewIndividual(g, permuted, partition.TotalCut)

	norm := Normalizing{Inner: Uniform{}}.Cross(g, ia, ib, rng)
	for i := range norm.Assign {
		if norm.Assign[i] != good.Assign[i] {
			t.Fatal("normalized crossover of permuted twins did not reproduce the partition")
		}
	}
	plain := (Uniform{}).Cross(g, ia, ib, rng)
	if plain.Fitness(g, partition.TotalCut) >= norm.Fitness(g, partition.TotalCut) {
		t.Error("plain UX on permuted twins should be worse than normalized UX")
	}
}

func TestNormalizingInEngine(t *testing.T) {
	g := gen.PaperGraph(98)
	rng := rand.New(rand.NewSource(11))
	est := partition.RandomBalanced(g.NumNodes(), 4, rng)
	e, err := New(g, Config{
		Parts:     4,
		PopSize:   40,
		Crossover: Normalizing{Inner: NewDKNUX(est)},
		Seed:      13,
	})
	if err != nil {
		t.Fatal(err)
	}
	first := e.Best().Fitness
	e.Run(20)
	if e.Best().Fitness <= first {
		t.Error("normalized DKNUX failed to improve")
	}
}

// Property: relabeling is always a bijection on labels (part sizes are a
// permutation of the originals).
func TestQuickRelabelBijective(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		parts := 2 + rng.Intn(6)
		n := 10 + rng.Intn(50)
		a := partition.Random(n, parts, rng)
		b := partition.Random(n, parts, rng)
		out := RelabelToMatch(a, b)
		sb := b.PartSizes()
		so := out.PartSizes()
		// Multisets must match.
		counts := map[int]int{}
		for _, s := range sb {
			counts[s]++
		}
		for _, s := range so {
			counts[s]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
