package ga

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/partition"
)

// Part labels are arbitrary: the partitions 0011 and 1100 describe the same
// bisection. Positional crossover operators cannot see that, so two parents
// encoding near-identical partitions under permuted labels produce garbage
// offspring. Von Laszewski's "intelligent structural operators" (cited by
// the paper) attack exactly this; Normalizing wraps any crossover with a
// label-canonicalization step: before recombining, parent b's labels are
// permuted to maximize positional agreement with parent a.

// RelabelToMatch returns a copy of b with its part labels permuted to
// maximize |{i : a[i] == b'[i]}|. For up to 16 parts the assignment is
// solved exactly with a bitmask DP over the overlap-count matrix; beyond
// that a greedy matching is used, guarded so the result never agrees less
// than unrelabeled b.
func RelabelToMatch(a, b *partition.Partition) *partition.Partition {
	parts := a.Parts
	overlap := make([]int, parts*parts) // overlap[qa*parts+qb]
	for i := range a.Assign {
		overlap[int(a.Assign[i])*parts+int(b.Assign[i])]++
	}
	var mapB []int // mapB[qb] = new label for b's part qb
	if parts <= 16 {
		mapB = optimalAssignment(overlap, parts)
	} else {
		mapB = greedyAssignment(overlap, parts)
		// Guard: fall back to identity if greedy lost to it.
		greedyScore, idScore := 0, 0
		for qb, qa := range mapB {
			greedyScore += overlap[qa*parts+qb]
			idScore += overlap[qb*parts+qb]
		}
		if idScore >= greedyScore {
			for i := range mapB {
				mapB[i] = i
			}
		}
	}
	out := b.Clone()
	for i, q := range b.Assign {
		out.Assign[i] = uint16(mapB[q])
	}
	return out
}

// optimalAssignment maximizes Σ overlap[perm(qb)*parts+qb] exactly with a
// subset DP: dp[mask] is the best score assigning b-labels 0..k-1 (where
// k = popcount(mask)) to the a-labels in mask.
func optimalAssignment(overlap []int, parts int) []int {
	size := 1 << uint(parts)
	dp := make([]int, size)
	choice := make([]int8, size) // a-label chosen for the last b-label
	for i := range dp {
		dp[i] = -1
	}
	dp[0] = 0
	for mask := 1; mask < size; mask++ {
		qb := popcount(mask) - 1 // next b-label to place
		for qa := 0; qa < parts; qa++ {
			bit := 1 << uint(qa)
			if mask&bit == 0 || dp[mask^bit] < 0 {
				continue
			}
			if s := dp[mask^bit] + overlap[qa*parts+qb]; s > dp[mask] {
				dp[mask] = s
				choice[mask] = int8(qa)
			}
		}
	}
	mapB := make([]int, parts)
	mask := size - 1
	for qb := parts - 1; qb >= 0; qb-- {
		qa := int(choice[mask])
		mapB[qb] = qa
		mask ^= 1 << uint(qa)
	}
	return mapB
}

// greedyAssignment matches largest overlaps first.
func greedyAssignment(overlap []int, parts int) []int {
	usedA := make([]bool, parts)
	usedB := make([]bool, parts)
	mapB := make([]int, parts)
	for assigned := 0; assigned < parts; assigned++ {
		bestA, bestB, bestOv := -1, -1, -1
		for qa := 0; qa < parts; qa++ {
			if usedA[qa] {
				continue
			}
			for qb := 0; qb < parts; qb++ {
				if usedB[qb] {
					continue
				}
				if overlap[qa*parts+qb] > bestOv {
					bestA, bestB, bestOv = qa, qb, overlap[qa*parts+qb]
				}
			}
		}
		usedA[bestA], usedB[bestB] = true, true
		mapB[bestB] = bestA
	}
	return mapB
}

func popcount(x int) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}

// Normalizing wraps a crossover operator with label canonicalization of the
// second parent. The offspring still satisfies the closure property with
// respect to parent a and the relabeled parent b.
type Normalizing struct {
	Inner Crossover
}

// Name implements Crossover.
func (n Normalizing) Name() string { return n.Inner.Name() + "+normalize" }

// Cross implements Crossover.
func (n Normalizing) Cross(g *graph.Graph, a, b *Individual, rng *rand.Rand) *partition.Partition {
	nb := &Individual{Part: RelabelToMatch(a.Part, b.Part), Fitness: b.Fitness}
	return n.Inner.Cross(g, a, nb, rng)
}

// SetEstimate forwards to the inner operator when it tracks a dynamic
// estimate (DKNUX), so Normalizing{DKNUX} behaves like DKNUX.
func (n Normalizing) SetEstimate(best *partition.Partition) {
	if up, ok := n.Inner.(EstimateUpdater); ok {
		up.SetEstimate(best)
	}
}

// Estimate forwards to the inner operator's estimate when present.
func (n Normalizing) Estimate() *partition.Partition {
	if pr, ok := n.Inner.(EstimateProvider); ok {
		return pr.Estimate()
	}
	return nil
}
