package ga

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/partition"
)

func smallConfig(parts int, x Crossover) Config {
	return Config{
		Parts:     parts,
		PopSize:   40,
		Crossover: x,
		Seed:      1,
	}
}

func TestNewValidation(t *testing.T) {
	g := gen.Mesh(30, 1)
	cases := []Config{
		{Parts: 0, Crossover: Uniform{}},              // bad parts
		{Parts: 2},                                    // no crossover
		{Parts: 2, Crossover: Uniform{}, PopSize: 1},  // tiny population
		{Parts: 2, Crossover: Uniform{}, Elites: 400}, // elites >= pop (default 320)
		{Parts: 2, Crossover: Uniform{}, Pc: 1.5},     // bad rate
		{Parts: 2, Crossover: Uniform{}, Pm: -0.1},    // bad rate
	}
	for i, cfg := range cases {
		if _, err := New(g, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	// Seed with wrong parts count.
	seed := partition.New(g.NumNodes(), 4)
	if _, err := New(g, Config{Parts: 2, Crossover: Uniform{}, Seeds: []*partition.Partition{seed}}); err == nil {
		t.Error("seed with mismatched parts accepted")
	}
	// Seed with wrong node count.
	seed2 := partition.New(5, 2)
	if _, err := New(g, Config{Parts: 2, Crossover: Uniform{}, Seeds: []*partition.Partition{seed2}}); err == nil {
		t.Error("seed with mismatched length accepted")
	}
}

func TestDefaultsApplied(t *testing.T) {
	g := gen.Mesh(30, 1)
	e, err := New(g, Config{Parts: 2, Crossover: Uniform{}})
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Population()) != 320 {
		t.Errorf("default population = %d, want 320 (paper)", len(e.Population()))
	}
	if e.cfg.Pc != 0.7 || e.cfg.Pm != 0.01 {
		t.Errorf("default rates pc=%v pm=%v, want 0.7/0.01 (paper)", e.cfg.Pc, e.cfg.Pm)
	}
}

func TestBestFitnessMonotone(t *testing.T) {
	g := gen.Mesh(60, 2)
	e, err := New(g, smallConfig(4, Uniform{}))
	if err != nil {
		t.Fatal(err)
	}
	e.Run(20)
	s := e.Stats()
	if len(s.BestFitness) != 21 {
		t.Fatalf("stats length %d, want 21", len(s.BestFitness))
	}
	for i := 1; i < len(s.BestFitness); i++ {
		if s.BestFitness[i] < s.BestFitness[i-1] {
			t.Fatalf("best fitness regressed at gen %d: %v -> %v", i, s.BestFitness[i-1], s.BestFitness[i])
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	g := gen.Mesh(50, 3)
	run := func() []uint16 {
		cfg := smallConfig(4, KPoint{K: 2})
		e, err := New(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e.Run(15).Part.Assign
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different results")
		}
	}
}

func TestSeedsEnterPopulation(t *testing.T) {
	g := gen.Mesh(40, 4)
	rng := rand.New(rand.NewSource(5))
	seed := partition.RandomBalanced(40, 2, rng)
	cfg := smallConfig(2, Uniform{})
	cfg.Seeds = []*partition.Partition{seed}
	e, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Individual 0 must be the seed itself.
	for i := range seed.Assign {
		if e.Population()[0].Part.Assign[i] != seed.Assign[i] {
			t.Fatal("first individual is not the seed")
		}
	}
	// Best of initial population at least as fit as the seed.
	if e.Best().Fitness < seed.Fitness(g, partition.TotalCut) {
		t.Error("initial best worse than seed")
	}
}

func TestSeededRunNeverWorseThanSeed(t *testing.T) {
	g := gen.PaperGraph(78)
	rng := rand.New(rand.NewSource(6))
	seed := partition.RandomBalanced(g.NumNodes(), 4, rng)
	cfg := smallConfig(4, Uniform{})
	cfg.Seeds = []*partition.Partition{seed}
	e, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	best := e.Run(10)
	if best.Fitness < seed.Fitness(g, partition.TotalCut) {
		t.Errorf("GA returned worse than its seed: %v < %v", best.Fitness, seed.Fitness(g, partition.TotalCut))
	}
}

func TestGAImprovesRandomPopulation(t *testing.T) {
	g := gen.Mesh(60, 7)
	e, err := New(g, smallConfig(4, Uniform{}))
	if err != nil {
		t.Fatal(err)
	}
	first := e.Best().Fitness
	e.Run(30)
	if e.Best().Fitness <= first {
		t.Errorf("30 generations produced no improvement (%v -> %v)", first, e.Best().Fitness)
	}
}

func TestDKNUXBeatsTwoPointAtEqualBudget(t *testing.T) {
	// The paper's central claim: knowledge-based crossover converges far
	// faster than 2-point. At an equal generation budget on a mesh, DKNUX's
	// best cut should be strictly better.
	g := gen.PaperGraph(144)
	gens := 40
	run := func(x Crossover) float64 {
		cfg := Config{Parts: 4, PopSize: 60, Crossover: x, Seed: 11}
		e, err := New(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		e.Run(gens)
		return e.Best().Part.CutSize(g)
	}
	rng := rand.New(rand.NewSource(12))
	est := partition.RandomBalanced(g.NumNodes(), 4, rng)
	dknux := run(NewDKNUX(est))
	twoPoint := run(KPoint{K: 2})
	if dknux >= twoPoint {
		t.Errorf("DKNUX cut %v not better than 2-point %v after %d gens", dknux, twoPoint, gens)
	}
}

func TestDKNUXEstimateTracksBest(t *testing.T) {
	g := gen.Mesh(50, 9)
	rng := rand.New(rand.NewSource(13))
	est := partition.RandomBalanced(50, 4, rng)
	d := NewDKNUX(est)
	cfg := smallConfig(4, d)
	e, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Run(10)
	// The estimate must equal the engine's best.
	best := e.Best()
	for i := range best.Part.Assign {
		if d.Estimate().Assign[i] != best.Part.Assign[i] {
			t.Fatal("DKNUX estimate diverged from engine best")
		}
	}
}

func TestHillClimbOptionImproves(t *testing.T) {
	g := gen.PaperGraph(98)
	base := Config{Parts: 4, PopSize: 30, Crossover: Uniform{}, Seed: 3}
	withHC := base
	withHC.HillClimb = true
	e1, err := New(g, base)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := New(g, withHC)
	if err != nil {
		t.Fatal(err)
	}
	e1.Run(8)
	e2.Run(8)
	if e2.Best().Fitness < e1.Best().Fitness {
		t.Errorf("hill climbing hurt: %v vs %v", e2.Best().Fitness, e1.Best().Fitness)
	}
}

func TestInject(t *testing.T) {
	g := gen.Mesh(40, 10)
	e, err := New(g, smallConfig(2, Uniform{}))
	if err != nil {
		t.Fatal(err)
	}
	// A hill-climbed partition should beat the worst random individual.
	rng := rand.New(rand.NewSource(14))
	good := partition.RandomBalanced(40, 2, rng)
	// Make it genuinely good: split by index (mesh nodes are not ordered
	// spatially, so instead improve by injecting the current best).
	best := e.Best().Part
	if !e.Inject(best) {
		// Injecting a copy of the best must be accepted (it beats the worst)
		// unless the whole population is identical — not the case here.
		t.Error("Inject rejected the population best")
	}
	_ = good
	// Worthless individual must be rejected: craft one worse than everything.
	bad := partition.New(40, 2) // all nodes in one part: huge imbalance
	worst := e.Population()[0].Fitness
	for _, ind := range e.Population() {
		if ind.Fitness < worst {
			worst = ind.Fitness
		}
	}
	if bad.Fitness(g, partition.TotalCut) < worst {
		if e.Inject(bad) {
			t.Error("Inject accepted an individual worse than the whole population")
		}
	}
}

func TestGenerationCounter(t *testing.T) {
	g := gen.Mesh(30, 11)
	e, err := New(g, smallConfig(2, Uniform{}))
	if err != nil {
		t.Fatal(err)
	}
	if e.Generation() != 0 {
		t.Errorf("initial generation %d", e.Generation())
	}
	e.Run(5)
	if e.Generation() != 5 {
		t.Errorf("after 5 steps: %d", e.Generation())
	}
}

func TestElitesPreserveBest(t *testing.T) {
	g := gen.Mesh(50, 12)
	cfg := smallConfig(4, KPoint{K: 2})
	cfg.Elites = 2
	e, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 10; step++ {
		prevBest := e.Best().Fitness
		e.Step()
		// With elitism, the population must still contain an individual at
		// least as fit as the previous best.
		var popBest float64 = -1e18
		for _, ind := range e.Population() {
			if ind.Fitness > popBest {
				popBest = ind.Fitness
			}
		}
		if popBest < prevBest {
			t.Fatalf("elitism violated at step %d: %v < %v", step, popBest, prevBest)
		}
	}
}

func TestSelectionSchemes(t *testing.T) {
	g := gen.Mesh(40, 13)
	for _, sel := range []Selection{Tournament{Size: 2}, Tournament{Size: 4}, Roulette{}, Rank{}} {
		cfg := smallConfig(4, Uniform{})
		cfg.Selection = sel
		e, err := New(g, cfg)
		if err != nil {
			t.Fatalf("%s: %v", sel.Name(), err)
		}
		first := e.Best().Fitness
		e.Run(15)
		if e.Best().Fitness < first {
			t.Errorf("%s: best regressed", sel.Name())
		}
	}
}

func TestSelectionPrefersFit(t *testing.T) {
	// A population with one clearly fittest individual: every scheme must
	// pick it more often than uniform chance.
	g := gen.Mesh(30, 14)
	rng := rand.New(rand.NewSource(15))
	pop := make([]*Individual, 10)
	for i := range pop {
		pop[i] = NewIndividual(g, partition.Random(30, 2, rng), partition.TotalCut)
	}
	// Make individual 3 clearly best.
	best := partition.RandomBalanced(30, 2, rng)
	pop[3] = NewIndividual(g, best, partition.TotalCut)
	pop[3].Fitness = -1 // near-perfect
	for _, sel := range []Selection{Tournament{Size: 2}, Roulette{}, Rank{}} {
		hits := 0
		const trials = 2000
		for i := 0; i < trials; i++ {
			if sel.Pick(pop, rng) == 3 {
				hits++
			}
		}
		if hits <= trials/len(pop) {
			t.Errorf("%s picked the best %d/%d times, no better than uniform", sel.Name(), hits, trials)
		}
	}
}

func TestTournamentPanicsOnZeroSize(t *testing.T) {
	g := gen.Mesh(10, 1)
	rng := rand.New(rand.NewSource(1))
	pop := []*Individual{NewIndividual(g, partition.New(10, 2), partition.TotalCut)}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Tournament{}.Pick(pop, rng)
}

func TestWorstCutObjectiveRun(t *testing.T) {
	g := gen.PaperGraph(78)
	rng := rand.New(rand.NewSource(16))
	est := partition.RandomBalanced(g.NumNodes(), 4, rng)
	cfg := Config{
		Parts:     4,
		Objective: partition.WorstCut,
		PopSize:   40,
		Crossover: NewDKNUX(est),
		Seed:      17,
	}
	e, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := e.Stats().BestMaxCut[0]
	e.Run(25)
	s := e.Stats()
	last := s.BestMaxCut[len(s.BestMaxCut)-1]
	if last > first {
		t.Errorf("worst-cut objective: max cut grew %v -> %v", first, last)
	}
}
