package ga

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
)

// The paper assumes unit weights in its experiments but notes "weighted
// edges and nodes can also be handled easily"; these tests pin that claim.

// weightedMesh returns a mesh whose edge weights grow with x-coordinate and
// whose node weights vary, so optima differ from the unit-weight case.
func weightedMesh(n int, seed int64) *graph.Graph {
	g := gen.Mesh(n, seed)
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		c := g.Coord(v)
		b.SetCoord(v, c)
		b.SetNodeWeight(v, 1+c.Y) // heavier nodes toward the top
	}
	g.Edges(func(u, v int, w float64) bool {
		mid := (g.Coord(u).X + g.Coord(v).X) / 2
		b.AddEdge(u, v, 1+4*mid) // right-side edges cost up to 5x more
		return true
	})
	return b.Build()
}

func TestGAOnWeightedGraph(t *testing.T) {
	g := weightedMesh(60, 31)
	rng := rand.New(rand.NewSource(1))
	est := partition.RandomBalanced(60, 4, rng)
	e, err := New(g, Config{Parts: 4, PopSize: 40, Crossover: NewDKNUX(est), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	first := e.Best().Fitness
	e.Run(30)
	if e.Best().Fitness <= first {
		t.Error("GA failed to improve on weighted graph")
	}
	// The best solution should avoid cutting expensive (right side) edges:
	// its weighted cut must be well below a random balanced partition's.
	randomCut := partition.RandomBalanced(60, 4, rng).CutSize(g)
	if got := e.Best().Part.CutSize(g); got >= randomCut {
		t.Errorf("weighted cut %v not better than random %v", got, randomCut)
	}
}

func TestWeightedImbalanceUsesNodeWeights(t *testing.T) {
	// Two nodes, weights 1 and 3, two parts: the balanced-by-count split
	// has weighted imbalance ((1-2)^2 + (3-2)^2) = 2, not 0.
	b := graph.NewBuilder(2)
	b.SetNodeWeight(0, 1)
	b.SetNodeWeight(1, 3)
	b.AddEdge(0, 1, 1)
	g := b.Build()
	p := partition.New(2, 2)
	p.Assign[1] = 1
	if got := p.ImbalanceSq(g); got != 2 {
		t.Errorf("weighted ImbalanceSq = %v, want 2", got)
	}
}

func TestHillClimbRespectsEdgeWeights(t *testing.T) {
	// Triangle a-b-c plus pendant d-a. Edge weights force d's side.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 10)
	b.AddEdge(1, 2, 1)
	b.AddEdge(0, 2, 1)
	b.AddEdge(0, 3, 1)
	g := b.Build()
	// Partition {0,3} vs {1,2} cuts 10+1+1 = 12; moving 1 to part 0 and 3 to
	// part 1 gives {0,1} vs {2,3}, cutting 1+1+1 = 3. The GA's weighted
	// fitness must prefer the latter; verify the full engine finds a cut
	// below 12 from the bad start.
	seed := partition.New(4, 2)
	seed.Assign = []uint16{0, 1, 1, 0}
	e, err := New(g, Config{
		Parts:     2,
		PopSize:   10,
		Crossover: Uniform{},
		Seeds:     []*partition.Partition{seed},
		HillClimb: true,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(10)
	if cut := e.Best().Part.CutSize(g); cut >= 12 {
		t.Errorf("engine stuck at weighted cut %v", cut)
	}
}
