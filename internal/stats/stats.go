// Package stats provides the small run-aggregation helpers used by the
// experiment harness: summary statistics and generation-indexed series
// averaging (the paper's figures average 5 runs; its tables take the best
// of 5).
package stats

import (
	"fmt"
	"math"
)

// Summary holds the usual aggregate statistics of a sample.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
}

// Summarize computes summary statistics. The standard deviation is the
// sample (n−1) form; it is 0 for n < 2.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// String formats the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f std=%.3f min=%.3f max=%.3f", s.N, s.Mean, s.Std, s.Min, s.Max)
}

// MeanSeries averages several generation-indexed series element-wise.
// Series may have different lengths; each position averages the series that
// reach it. An empty input returns nil.
func MeanSeries(series [][]float64) []float64 {
	var out []float64
	var count []int
	for _, s := range series {
		for i, v := range s {
			if i >= len(out) {
				out = append(out, 0)
				count = append(count, 0)
			}
			out[i] += v
			count[i]++
		}
	}
	for i := range out {
		out[i] /= float64(count[i])
	}
	return out
}

// MinSeries takes the element-wise minimum of several series (ragged
// lengths allowed).
func MinSeries(series [][]float64) []float64 {
	var out []float64
	var seen []bool
	for _, s := range series {
		for i, v := range s {
			if i >= len(out) {
				out = append(out, v)
				seen = append(seen, true)
			} else if !seen[i] || v < out[i] {
				out[i] = v
				seen[i] = true
			}
		}
	}
	return out
}

// Downsample keeps every stride-th element (plus the last), turning a long
// per-generation series into a printable figure column.
func Downsample(s []float64, stride int) []float64 {
	if stride <= 1 || len(s) == 0 {
		return append([]float64(nil), s...)
	}
	var out []float64
	for i := 0; i < len(s); i += stride {
		out = append(out, s[i])
	}
	if (len(s)-1)%stride != 0 {
		out = append(out, s[len(s)-1])
	}
	return out
}
