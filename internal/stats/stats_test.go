package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Errorf("Summary = %+v", s)
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.Std-want) > 1e-12 {
		t.Errorf("Std = %v, want %v", s.Std, want)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Errorf("empty summary %+v", s)
	}
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Std != 0 || s.Min != 7 || s.Max != 7 {
		t.Errorf("single summary %+v", s)
	}
	if s.String() == "" {
		t.Error("empty String")
	}
}

func TestMeanSeries(t *testing.T) {
	out := MeanSeries([][]float64{{1, 2, 3}, {3, 4}})
	want := []float64{2, 3, 3}
	if len(out) != 3 {
		t.Fatalf("len = %d", len(out))
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	if MeanSeries(nil) != nil {
		t.Error("empty input should return nil")
	}
}

func TestMinSeries(t *testing.T) {
	out := MinSeries([][]float64{{5, 1, 9}, {3, 4}})
	want := []float64{3, 1, 9}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestDownsample(t *testing.T) {
	s := []float64{0, 1, 2, 3, 4, 5, 6}
	out := Downsample(s, 3)
	want := []float64{0, 3, 6}
	if len(out) != len(want) {
		t.Fatalf("out = %v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %v", i, out[i])
		}
	}
	// Last element kept even off-stride.
	out = Downsample([]float64{0, 1, 2, 3, 4}, 3)
	if out[len(out)-1] != 4 {
		t.Errorf("last element dropped: %v", out)
	}
	// Stride 1 copies.
	out = Downsample(s, 1)
	if len(out) != len(s) {
		t.Errorf("stride-1 length %d", len(out))
	}
	out[0] = 99
	if s[0] == 99 {
		t.Error("Downsample aliases input")
	}
}

// Property: mean is within [min, max]; std >= 0.
func TestQuickSummaryBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		s := Summarize(xs)
		return s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9 && s.Std >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: MinSeries <= MeanSeries element-wise.
func TestQuickMinLEMean(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(5)
		series := make([][]float64, k)
		for i := range series {
			m := 1 + rng.Intn(20)
			series[i] = make([]float64, m)
			for j := range series[i] {
				series[i][j] = rng.Float64() * 10
			}
		}
		mn := MinSeries(series)
		me := MeanSeries(series)
		if len(mn) != len(me) {
			return false
		}
		for i := range mn {
			if mn[i] > me[i]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
