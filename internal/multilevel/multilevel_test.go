package multilevel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ga"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/spectral"
)

func TestCoarsenHalvesRoughly(t *testing.T) {
	g := gen.Mesh(200, 1)
	rng := rand.New(rand.NewSource(2))
	coarse, coarseOf := Coarsen(g, rng, 1)
	if coarse.NumNodes() >= g.NumNodes() {
		t.Fatalf("coarsening did not shrink: %d -> %d", g.NumNodes(), coarse.NumNodes())
	}
	// Heavy-edge matching on a connected mesh should merge most nodes:
	// coarse size between n/2 and ~0.75n.
	if coarse.NumNodes() > 3*g.NumNodes()/4 {
		t.Errorf("weak coarsening: %d -> %d", g.NumNodes(), coarse.NumNodes())
	}
	if len(coarseOf) != g.NumNodes() {
		t.Fatalf("coarseOf length %d", len(coarseOf))
	}
	for v, c := range coarseOf {
		if c < 0 || c >= coarse.NumNodes() {
			t.Fatalf("node %d maps to out-of-range coarse node %d", v, c)
		}
	}
}

func TestCoarsenPreservesTotalNodeWeight(t *testing.T) {
	g := gen.Mesh(150, 3)
	rng := rand.New(rand.NewSource(4))
	coarse, _ := Coarsen(g, rng, 1)
	if math.Abs(coarse.TotalNodeWeight()-g.TotalNodeWeight()) > 1e-9 {
		t.Errorf("node weight changed: %v -> %v", g.TotalNodeWeight(), coarse.TotalNodeWeight())
	}
	if err := coarse.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCoarsenPreservesCutStructure(t *testing.T) {
	// The cut of a coarse partition equals the cut of its projection:
	// collapsing preserves total inter-group edge weight.
	g := gen.Mesh(120, 5)
	rng := rand.New(rand.NewSource(6))
	coarse, coarseOf := Coarsen(g, rng, 1)
	cp := partition.RandomBalanced(coarse.NumNodes(), 4, rng)
	fp := partition.New(g.NumNodes(), 4)
	for v := range fp.Assign {
		fp.Assign[v] = cp.Assign[coarseOf[v]]
	}
	if math.Abs(cp.CutSize(coarse)-fp.CutSize(g)) > 1e-9 {
		t.Errorf("cut not preserved: coarse %v vs fine %v", cp.CutSize(coarse), fp.CutSize(g))
	}
}

func TestCoarsenKeepsConnectivity(t *testing.T) {
	g := gen.Mesh(100, 7)
	rng := rand.New(rand.NewSource(8))
	coarse, _ := Coarsen(g, rng, 1)
	if !coarse.IsConnected() {
		t.Error("coarsening disconnected a connected graph")
	}
}

func rsbInner(g *graph.Graph, parts int, rng *rand.Rand) (*partition.Partition, error) {
	return spectral.Partition(g, parts, rng)
}

func gaInner(g *graph.Graph, parts int, rng *rand.Rand) (*partition.Partition, error) {
	est := partition.RandomBalanced(g.NumNodes(), parts, rng)
	e, err := ga.New(g, ga.Config{
		Parts:     parts,
		PopSize:   40,
		Crossover: ga.NewDKNUX(est),
		Seed:      rng.Int63(),
	})
	if err != nil {
		return nil, err
	}
	return e.Run(40).Part, nil
}

func TestPartitionWithRSBInner(t *testing.T) {
	g := gen.Mesh(400, 9)
	p, err := Partition(g, Config{Parts: 4, Seed: 1}, rsbInner)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	// Quality sanity: multilevel should beat random by a wide margin.
	rng := rand.New(rand.NewSource(2))
	randCut := partition.RandomBalanced(g.NumNodes(), 4, rng).CutSize(g)
	if cut := p.CutSize(g); cut > randCut/2 {
		t.Errorf("multilevel cut %v vs random %v", cut, randCut)
	}
}

func TestPartitionWithGAInner(t *testing.T) {
	g := gen.Mesh(300, 10)
	p, err := Partition(g, Config{Parts: 4, CoarsestSize: 50, Seed: 3}, gaInner)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	// Balance after refinement: within a few nodes.
	sizes := p.PartSizes()
	min, max := sizes[0], sizes[0]
	for _, s := range sizes {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if max-min > 8 {
		t.Errorf("multilevel+GA imbalance: %v", sizes)
	}
}

func TestPartitionErrors(t *testing.T) {
	g := gen.Mesh(50, 1)
	if _, err := Partition(g, Config{Parts: 0}, rsbInner); err == nil {
		t.Error("0 parts accepted")
	}
	if _, err := Partition(g, Config{Parts: 2}, nil); err == nil {
		t.Error("nil inner accepted")
	}
}

func TestSmallGraphSkipsCoarsening(t *testing.T) {
	// A graph already below CoarsestSize goes straight to the inner
	// partitioner.
	g := gen.Mesh(30, 2)
	p, err := Partition(g, Config{Parts: 2, CoarsestSize: 64, Seed: 1}, rsbInner)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
}

// Property: coarsening preserves total edge weight minus internal (matched)
// edges — equivalently, coarse total edge weight <= fine total edge weight,
// and node weight is exactly conserved.
func TestQuickCoarsenConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(150)
		g := gen.Mesh(n, seed)
		coarse, coarseOf := Coarsen(g, rng, 1)
		if coarse.Validate() != nil || len(coarseOf) != n {
			return false
		}
		if math.Abs(coarse.TotalNodeWeight()-g.TotalNodeWeight()) > 1e-9 {
			return false
		}
		var fineW, coarseW float64
		g.Edges(func(u, v int, w float64) bool {
			fineW += w
			return true
		})
		coarse.Edges(func(u, v int, w float64) bool {
			coarseW += w
			return true
		})
		return coarseW <= fineW+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestCoarsenWorkersBitIdentical(t *testing.T) {
	// Coarsening's propose phase is parallel, its claim sweep sequential in
	// the seeded random order: every worker count must reproduce the same
	// matching, coarse graph, and fine-to-coarse map bit for bit.
	g := gen.Mesh(1200, 11)
	refRng := rand.New(rand.NewSource(7))
	refCoarse, refMap := Coarsen(g, refRng, 1)
	for _, workers := range []int{2, 3, 8, 0} {
		rng := rand.New(rand.NewSource(7))
		coarse, coarseOf := Coarsen(g, rng, workers)
		if coarse.NumNodes() != refCoarse.NumNodes() || coarse.NumEdges() != refCoarse.NumEdges() {
			t.Fatalf("workers=%d: coarse shape %d/%d vs %d/%d", workers,
				coarse.NumNodes(), coarse.NumEdges(), refCoarse.NumNodes(), refCoarse.NumEdges())
		}
		for v := range coarseOf {
			if coarseOf[v] != refMap[v] {
				t.Fatalf("workers=%d: node %d maps to %d, reference %d", workers, v, coarseOf[v], refMap[v])
			}
		}
	}
}

func TestPartitionWorkersBitIdentical(t *testing.T) {
	// The whole V-cycle — hierarchy, coarse solve, refinement — must be a
	// pure function of the seed, independent of the pipeline width.
	g := gen.Mesh(900, 13)
	for _, ref := range []Refiner{RefineKLFM, RefineKL, RefineFM} {
		base, err := Partition(g, Config{Parts: 4, Seed: 5, Refiner: ref, Workers: 1}, rsbInner)
		if err != nil {
			t.Fatalf("%v: %v", ref, err)
		}
		for _, workers := range []int{2, 3, 4, 8, 0} {
			p, err := Partition(g, Config{Parts: 4, Seed: 5, Refiner: ref, Workers: workers}, rsbInner)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", ref, workers, err)
			}
			for v := range p.Assign {
				if p.Assign[v] != base.Assign[v] {
					t.Fatalf("%v workers=%d: node %d in part %d, reference %d",
						ref, workers, v, p.Assign[v], base.Assign[v])
				}
			}
		}
	}
}

// Randomized cross-layer width check: the whole V-cycle — parallel
// projection, sharded boundary rebuilds, colored refinement — on random
// graph shapes (plain mesh, integer-weighted random graph) must reproduce
// the Workers=1 partition bit for bit at every width and for every refiner.
func TestQuickPartitionWorkersBitIdentical(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		graphs := map[string]*graph.Graph{
			"mesh":     gen.Mesh(300+100*int(seed), seed),
			"weighted": randomWeightedGraph(250+80*int(seed), seed*17),
		}
		for name, g := range graphs {
			for _, ref := range []Refiner{RefineKLFM, RefineKL, RefineFM} {
				base, err := Partition(g, Config{Parts: 4, Seed: seed, Refiner: ref, Workers: 1}, klInner)
				if err != nil {
					t.Fatalf("%s %v: %v", name, ref, err)
				}
				for _, workers := range []int{2, 4, 8} {
					p, err := Partition(g, Config{Parts: 4, Seed: seed, Refiner: ref, Workers: workers}, klInner)
					if err != nil {
						t.Fatalf("%s %v workers=%d: %v", name, ref, workers, err)
					}
					for v := range p.Assign {
						if p.Assign[v] != base.Assign[v] {
							t.Fatalf("%s seed=%d %v workers=%d: node %d differs", name, seed, ref, workers, v)
						}
					}
				}
			}
		}
	}
}

// Forcing FMParThreshold to 1 routes every level's FM through the
// deterministic-parallel colored schedule, so the full V-cycle must still
// reproduce the Workers=1 partition bit for bit at every width — the
// cross-layer pin of the parallel FM pass in its production seat.
func TestPartitionFMParWorkersBitIdentical(t *testing.T) {
	for seed := int64(1); seed <= 2; seed++ {
		graphs := map[string]*graph.Graph{
			"mesh":     gen.Mesh(700, seed),
			"weighted": randomWeightedGraph(500, seed*23),
		}
		for name, g := range graphs {
			for _, obj := range []partition.Objective{partition.TotalCut, partition.WorstCut} {
				for _, ref := range []Refiner{RefineKLFM, RefineFM} {
					cfg := Config{Parts: 4, Seed: seed, Refiner: ref, Objective: obj, FMParThreshold: 1, Workers: 1}
					base, err := Partition(g, cfg, klInner)
					if err != nil {
						t.Fatalf("%s %v %v: %v", name, ref, obj, err)
					}
					for _, workers := range []int{2, 4, 8} {
						cfg.Workers = workers
						p, err := Partition(g, cfg, klInner)
						if err != nil {
							t.Fatalf("%s %v %v workers=%d: %v", name, ref, obj, workers, err)
						}
						for v := range p.Assign {
							if p.Assign[v] != base.Assign[v] {
								t.Fatalf("%s seed=%d %v %v workers=%d: node %d differs",
									name, seed, ref, obj, workers, v)
							}
						}
					}
				}
			}
		}
	}
}

func randomWeightedGraph(n int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetNodeWeight(v, float64(1+rng.Intn(7)))
	}
	for v := 1; v < n; v++ {
		b.AddEdge(v, rng.Intn(v), float64(1+rng.Intn(9)))
	}
	for i := 0; i < 2*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !b.HasEdge(u, v) {
			b.AddEdge(u, v, float64(1+rng.Intn(9)))
		}
	}
	return b.Build()
}

func TestPartitionStats(t *testing.T) {
	g := gen.Mesh(2000, 15)
	var st Stats
	p, err := Partition(g, Config{Parts: 4, Seed: 1, Workers: 2, Stats: &st}, rsbInner)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	if st.Levels == 0 {
		t.Error("Stats.Levels not populated")
	}
	if st.Coarsen <= 0 || st.CoarseSolve <= 0 {
		t.Errorf("phase timings not populated: %+v", st)
	}
	if st.Project <= 0 || st.Refine <= 0 {
		t.Errorf("uncoarsening timings not populated: %+v", st)
	}
	// The default refiner is KLFM: climbs and FM passes both run, so the
	// per-family breakdown must be populated and bounded by the total.
	if st.RefineClimb <= 0 || st.RefineFM <= 0 {
		t.Errorf("refine breakdown not populated: %+v", st)
	}
	if st.RefineLP+st.RefineClimb+st.RefineFM > st.Refine {
		t.Errorf("refine breakdown exceeds total: %+v", st)
	}
}
