package multilevel

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/gio"
	"repro/internal/graph"
	"repro/internal/partition"
)

// checkHierarchyInvariants builds a full hierarchy over g and verifies, at
// every level, the two conservation laws multilevel correctness rests on:
//
//  1. total vertex weight is preserved by coarsening, and
//  2. for any coarse partition, the cut (and the per-part weight/cut
//     aggregates partition.Eval caches) of its projection onto the finer
//     graph is identical — which is exactly why the uncoarsening phase may
//     carry one Eval down the whole hierarchy without rescanning.
func checkHierarchyInvariants(t *testing.T, g *graph.Graph, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	levels, coarsest := BuildHierarchy(g, 24, 30, rng, 1)
	if len(levels) == 0 {
		t.Fatalf("no coarsening happened on a %d-node graph", g.NumNodes())
	}
	if levels[0].Graph != g {
		t.Fatal("levels[0] is not the input graph")
	}
	next := coarsest
	for i := len(levels) - 1; i >= 0; i-- {
		fine, coarse := levels[i].Graph, next
		if err := coarse.Validate(); err != nil {
			t.Fatalf("level %d coarse graph invalid: %v", i, err)
		}
		if math.Abs(coarse.TotalNodeWeight()-fine.TotalNodeWeight()) > 1e-9 {
			t.Fatalf("level %d: total vertex weight %v -> %v",
				i, fine.TotalNodeWeight(), coarse.TotalNodeWeight())
		}
		// Random coarse partition, projected to the fine level.
		cp := partition.RandomBalanced(coarse.NumNodes(), 4, rng)
		fp := partition.New(fine.NumNodes(), 4)
		for v := range fp.Assign {
			fp.Assign[v] = cp.Assign[levels[i].CoarseOf[v]]
		}
		if c, f := cp.CutSize(coarse), fp.CutSize(fine); math.Abs(c-f) > 1e-9 {
			t.Fatalf("level %d: cut weight not preserved across projection: coarse %v fine %v", i, c, f)
		}
		cEv, fEv := partition.NewEval(coarse, cp), partition.NewEval(fine, fp)
		for q := 0; q < 4; q++ {
			if math.Abs(cEv.Weights[q]-fEv.Weights[q]) > 1e-9 {
				t.Fatalf("level %d part %d: weight aggregate %v != %v", i, q, cEv.Weights[q], fEv.Weights[q])
			}
			if math.Abs(cEv.Cuts[q]-fEv.Cuts[q]) > 1e-9 {
				t.Fatalf("level %d part %d: cut aggregate %v != %v", i, q, cEv.Cuts[q], fEv.Cuts[q])
			}
		}
		next = fine
	}
}

func TestHierarchyInvariantsRandomGraphs(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		g := gen.Mesh(100+50*int(seed), seed)
		checkHierarchyInvariants(t, g, seed*13)
	}
}

func TestHierarchyInvariantsWeightedGraph(t *testing.T) {
	// Integer node and edge weights, so aggregation is exercised beyond the
	// unit-weight case.
	rng := rand.New(rand.NewSource(5))
	b := graph.NewBuilder(300)
	for v := 0; v < 300; v++ {
		b.SetNodeWeight(v, float64(1+rng.Intn(7)))
	}
	for v := 1; v < 300; v++ {
		b.AddEdge(v, rng.Intn(v), float64(1+rng.Intn(9)))
	}
	for i := 0; i < 500; i++ {
		u, v := rng.Intn(300), rng.Intn(300)
		if u != v && !b.HasEdge(u, v) {
			b.AddEdge(u, v, float64(1+rng.Intn(9)))
		}
	}
	checkHierarchyInvariants(t, b.Build(), 6)
}

func TestHierarchyInvariantsMETISGraph(t *testing.T) {
	// Round-trip a weighted mesh through the METIS format, then check the
	// same invariants on the parsed graph: coarsening must not depend on any
	// in-memory state the interchange format drops.
	src := gen.Mesh(250, 17)
	var buf bytes.Buffer
	if err := gio.WriteMETIS(&buf, src); err != nil {
		t.Fatal(err)
	}
	g, err := gio.ReadMETIS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != src.NumNodes() || g.NumEdges() != src.NumEdges() {
		t.Fatalf("METIS round trip changed shape: %d/%d nodes, %d/%d edges",
			src.NumNodes(), g.NumNodes(), src.NumEdges(), g.NumEdges())
	}
	checkHierarchyInvariants(t, g, 18)
}

func TestPartitionRefinersAgreeOnValidity(t *testing.T) {
	g := gen.Mesh(500, 21)
	for _, ref := range []Refiner{RefineKLFM, RefineKL, RefineFM, RefineNone} {
		p, err := Partition(g, Config{Parts: 4, Seed: 2, Refiner: ref}, rsbInner)
		if err != nil {
			t.Fatalf("%v: %v", ref, err)
		}
		if err := p.Validate(g); err != nil {
			t.Fatalf("%v: %v", ref, err)
		}
	}
	// Refinement must not hurt: both refiners should cut no worse than the
	// raw projection.
	raw, _ := Partition(g, Config{Parts: 4, Seed: 2, Refiner: RefineNone}, rsbInner)
	for _, ref := range []Refiner{RefineKLFM, RefineKL, RefineFM} {
		p, _ := Partition(g, Config{Parts: 4, Seed: 2, Refiner: ref}, rsbInner)
		if p.CutSize(g) > raw.CutSize(g) {
			t.Errorf("%v worsened the cut: %v > %v", ref, p.CutSize(g), raw.CutSize(g))
		}
	}
}
