package multilevel

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// star returns a star graph: node 0 adjacent to all others, no other edges.
// Heavy-edge matching can merge only one center–leaf pair per level, so the
// graph is the canonical coarsening-stall case.
func star(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(0, v, 1)
	}
	return b.Build()
}

// clique returns the complete graph on n nodes.
func clique(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v, 1)
		}
	}
	return b.Build()
}

func TestStarCoarseningStallsOutEarly(t *testing.T) {
	// A 2000-leaf star merges one pair per level; without the stall cut the
	// hierarchy would grind through all MaxLevels levels shrinking by one
	// node each. The "nothing to merge" break must fire within the first
	// few levels instead.
	g := star(2000)
	levels, coarsest := BuildHierarchy(g, 64, 30, rand.New(rand.NewSource(1)), 1)
	if len(levels) > 3 {
		t.Fatalf("star hierarchy has %d levels, want <= 3 (stall cut missing?)", len(levels))
	}
	if coarsest.NumNodes() < g.NumNodes()-len(levels)*g.NumNodes()/20-2 {
		t.Fatalf("coarsest has %d nodes after %d levels — more merging than a star permits", coarsest.NumNodes(), len(levels))
	}
	// The pipeline must still produce a valid partition end to end: the
	// coarse solver simply sees the (barely coarsened) star itself.
	p, err := Partition(g, Config{Parts: 4, Seed: 1, Workers: 1}, rsbInner)
	if err != nil {
		t.Fatalf("Partition on star: %v", err)
	}
	if err := p.Validate(g); err != nil {
		t.Fatalf("invalid partition on star: %v", err)
	}
}

func TestCliqueCoarseningTerminatesBySize(t *testing.T) {
	// A clique admits a perfect matching at every level, so coarsening
	// halves the graph each time and reaches CoarsestSize in log2 steps —
	// nowhere near MaxLevels.
	g := clique(512)
	levels, coarsest := BuildHierarchy(g, 64, 30, rand.New(rand.NewSource(1)), 1)
	if len(levels) > 5 {
		t.Fatalf("clique hierarchy has %d levels, want <= 5", len(levels))
	}
	if coarsest.NumNodes() > 64 {
		t.Fatalf("coarsest clique has %d nodes, want <= 64", coarsest.NumNodes())
	}
	p, err := Partition(g, Config{Parts: 4, Seed: 1, Workers: 1}, rsbInner)
	if err != nil {
		t.Fatalf("Partition on clique: %v", err)
	}
	if err := p.Validate(g); err != nil {
		t.Fatalf("invalid partition on clique: %v", err)
	}
}

func TestPermIntoMatchesRandPerm(t *testing.T) {
	// permInto fills a reused buffer with exactly rand.Perm's output and
	// rng draw sequence — the hierarchy's visit order (and everything
	// seeded after it) depends on this equivalence.
	for _, n := range []int{0, 1, 7, 100, 1000} {
		want := rand.New(rand.NewSource(9)).Perm(n)
		rng := rand.New(rand.NewSource(9))
		got := permInto(rng, make([]int, n))
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: permInto[%d] = %d, rand.Perm = %d", n, i, got[i], want[i])
			}
		}
		// The rng must be left in the same state rand.Perm leaves it.
		ref := rand.New(rand.NewSource(9))
		ref.Perm(n)
		if rng.Int63() != ref.Int63() {
			t.Fatalf("n=%d: permInto consumed a different number of rng draws than rand.Perm", n)
		}
	}
}
