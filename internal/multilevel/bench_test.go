package multilevel

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/greedy"
	"repro/internal/kl"
	"repro/internal/partition"
)

func klInner(g *graph.Graph, parts int, rng *rand.Rand) (*partition.Partition, error) {
	p, err := greedy.RegionGrow(g, parts)
	if err != nil {
		return nil, err
	}
	kl.Refine(g, p, 0)
	return p, nil
}

func benchPartition(b *testing.B, n int, ref Refiner) {
	g := gen.Mesh(n, gen.SuiteSeed+int64(n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Partition(g, Config{Parts: 8, Seed: 1, Refiner: ref}, klInner); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartition10kKLFM(b *testing.B) { benchPartition(b, 10000, RefineKLFM) }
func BenchmarkPartition10kKL(b *testing.B)   { benchPartition(b, 10000, RefineKL) }
func BenchmarkPartition10kFM(b *testing.B)   { benchPartition(b, 10000, RefineFM) }
func BenchmarkPartition10kNone(b *testing.B) { benchPartition(b, 10000, RefineNone) }

func BenchmarkBuildHierarchy10k(b *testing.B) {
	g := gen.Mesh(10000, gen.SuiteSeed+10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(1))
		BuildHierarchy(g, 64, 30, rng, 1)
	}
}
