package multilevel

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/greedy"
	"repro/internal/kl"
	"repro/internal/partition"
)

func klInner(g *graph.Graph, parts int, rng *rand.Rand) (*partition.Partition, error) {
	p, err := greedy.RegionGrow(g, parts)
	if err != nil {
		return nil, err
	}
	kl.Refine(g, p, 0)
	return p, nil
}

func benchPartition(b *testing.B, n int, ref Refiner) {
	g := gen.Mesh(n, gen.SuiteSeed+int64(n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Partition(g, Config{Parts: 8, Seed: 1, Refiner: ref}, klInner); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartition10kKLFM(b *testing.B) { benchPartition(b, 10000, RefineKLFM) }
func BenchmarkPartition10kKL(b *testing.B)   { benchPartition(b, 10000, RefineKL) }
func BenchmarkPartition10kFM(b *testing.B)   { benchPartition(b, 10000, RefineFM) }
func BenchmarkPartition10kNone(b *testing.B) { benchPartition(b, 10000, RefineNone) }

func BenchmarkBuildHierarchy10k(b *testing.B) {
	g := gen.Mesh(10000, gen.SuiteSeed+10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(1))
		BuildHierarchy(g, 64, 30, rng, 1)
	}
}

// benchUncoarsen isolates the uncoarsening phase (projection + boundary
// rebuilds + refinement) via Config.Stats and reports it as a custom metric,
// so the phase the parallel refactor targets is measurable per width:
//
//	go test ./internal/multilevel -bench 'Uncoarsen10k' -benchtime 5x
//
// compares uncoarsen-ns/op at Workers=1 vs Workers=4 (the partitions are
// bit-identical by contract; only the wall time may differ).
func benchUncoarsen(b *testing.B, n, workers int) {
	g := gen.Mesh(n, gen.SuiteSeed+int64(n))
	b.ReportAllocs()
	b.ResetTimer()
	var project, refine time.Duration
	for i := 0; i < b.N; i++ {
		var st Stats
		if _, err := Partition(g, Config{Parts: 8, Seed: 1, Workers: workers, Stats: &st}, klInner); err != nil {
			b.Fatal(err)
		}
		project += st.Project
		refine += st.Refine
	}
	b.ReportMetric(float64((project+refine).Nanoseconds())/float64(b.N), "uncoarsen-ns/op")
	b.ReportMetric(float64(refine.Nanoseconds())/float64(b.N), "refine-ns/op")
}

func BenchmarkUncoarsen10kW1(b *testing.B) { benchUncoarsen(b, 10000, 1) }
func BenchmarkUncoarsen10kW2(b *testing.B) { benchUncoarsen(b, 10000, 2) }
func BenchmarkUncoarsen10kW4(b *testing.B) { benchUncoarsen(b, 10000, 4) }
