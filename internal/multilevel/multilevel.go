// Package multilevel implements the graph contraction scheme the paper
// names as the enabler for partitioning large graphs with GAs ("Applying a
// prior graph contraction step should precede the partitioning of very
// large graphs using GA's", citing Barnard & Simon's multilevel RSB).
//
// The pipeline is the METIS-style V-cycle:
//
//	coarsen:   heavy-edge matching collapses the graph level by level until
//	           it is small (CoarsestSize nodes), aggregating node and edge
//	           weights so every coarse cut equals the fine cut it represents;
//	partition: any Partitioner (GA, RSB, KL, FM, greedy, ...) solves the
//	           coarsest graph, where even expensive algorithms are cheap;
//	uncoarsen: the solution is projected back up the hierarchy, with boundary
//	           refinement at every level.
//
// Because contraction preserves both part weights and part cuts exactly, the
// partition.Eval aggregates computed once on the coarsest graph stay valid
// across every projection; refinement keeps them in sync incrementally, so
// the whole uncoarsening phase never rescans a graph to recompute fitness.
//
// Both halves of the V-cycle are parallel under one contract: Config.Workers
// changes wall time, never the result. Coarsening splits matching into a
// parallel propose phase plus a serial claim sweep; uncoarsening fills each
// projection and rebuilds each level's boundary over par-owned index ranges,
// and refines with the colored boundary climb (kl.HillClimbColored), FM with
// parallel heap seeding, and the parallel rebalance argmax — all of which
// are bit-identical at every width by construction.
package multilevel

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/fm"
	"repro/internal/graph"
	"repro/internal/kl"
	"repro/internal/lp"
	"repro/internal/par"
	"repro/internal/partition"
)

// Partitioner partitions a (coarse) graph into parts parts.
type Partitioner func(g *graph.Graph, parts int, rng *rand.Rand) (*partition.Partition, error)

// Level is one step of the coarsening hierarchy.
type Level struct {
	Graph *graph.Graph
	// CoarseOf[v] is the coarse node that fine node v collapsed into
	// (indices into the next-coarser graph).
	CoarseOf []int
}

// Coarsen collapses g by one level of heavy-edge matching and returns the
// coarser graph and the fine→coarse map. Node weights add; parallel edges
// accumulate weight; self-edges (internal to a matched pair) vanish.
// workers bounds the goroutines used for the matching proposals and the
// contraction (<= 0 selects GOMAXPROCS); the result is bit-identical for
// every worker count.
//
// Matching visits nodes in random order and pairs each unmatched node with
// its unmatched neighbor across the heaviest edge — the classic heavy-edge
// heuristic: hiding heavy edges inside coarse nodes bounds the cut any
// coarse partition can be forced to pay.
//
// The expensive half of matching — scanning every adjacency list for the
// heaviest incident edge — is a pure function of g, so it runs first as a
// parallel "propose" phase over sharded node ranges. The sequential claim
// sweep then walks the random order and accepts each node's proposal when
// the partner is still free; only when the proposal was already claimed
// does it rescan that node's neighbors for the heaviest still-unmatched
// one. Because a node's proposal is its earliest heaviest neighbor overall,
// an unclaimed proposal is exactly the node the serial algorithm would
// pick, so the sweep reproduces the serial matching bit for bit while the
// O(E) scan parallelizes.
func Coarsen(g *graph.Graph, rng *rand.Rand, workers int) (*graph.Graph, []int) {
	var hs hierarchyScratch
	coarseOf := make([]int, g.NumNodes())
	coarse := hs.coarsen(g, rng, workers, coarseOf)
	return coarse, coarseOf
}

// coarsen is Coarsen drawing the matching vectors (match, pref, the order
// permutation) and the contraction buffers from hs, and writing the
// fine→coarse map into coarseOf (len g.NumNodes()), which it does not
// retain. Bit-identical to Coarsen for every input and worker count — the
// reused order buffer is filled by the exact rand.Perm algorithm, so it
// consumes the same rng draws.
func (hs *hierarchyScratch) coarsen(g *graph.Graph, rng *rand.Rand, workers int, coarseOf []int) *graph.Graph {
	n := g.NumNodes()
	match := ensureInts(&hs.match, n)
	for i := range match {
		match[i] = -1
	}
	order := permInto(rng, ensureInts(&hs.order, n))

	// Propose phase: pref[v] = v's neighbor across the heaviest edge
	// (earliest wins ties, matching the serial scan), -1 for isolated nodes.
	pref := ensureInt32s(&hs.pref, n)
	par.For(workers, n, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			bestU, bestW := int32(-1), -1.0
			ws := g.EdgeWeights(v)
			for i, u := range g.Neighbors(v) {
				if ws[i] > bestW {
					bestU, bestW = u, ws[i]
				}
			}
			pref[v] = bestU
		}
	})

	// Claim sweep: sequential in the random order, exactly the serial
	// algorithm's tie-breaking.
	for _, v := range order {
		if match[v] != -1 {
			continue
		}
		bestU := int(pref[v])
		if bestU < 0 {
			// Isolated node: no proposal, so no partner to claim and nothing
			// for the fallback rescan to find — self-match immediately.
			match[v] = v
			continue
		}
		if match[bestU] != -1 {
			// Proposal already claimed: fall back to the heaviest neighbor
			// still unmatched.
			bestU = -1
			bestW := -1.0
			ws := g.EdgeWeights(v)
			for i, u := range g.Neighbors(v) {
				if match[u] == -1 && ws[i] > bestW {
					bestU, bestW = int(u), ws[i]
				}
			}
		}
		if bestU >= 0 {
			match[v], match[bestU] = bestU, v
		} else {
			match[v] = v // matched with itself
		}
	}
	next := 0
	for v := 0; v < n; v++ {
		if match[v] >= v { // representative of its pair (or singleton)
			coarseOf[v] = next
			if match[v] != v {
				coarseOf[match[v]] = next
			}
			next++
		}
	}
	return hs.contract.Contract(g, coarseOf, next, workers)
}

// permInto fills buf with rng.Perm(len(buf))'s exact permutation — the same
// loop over the same rng draws (pinned by the Go 1 compatibility promise on
// math/rand's value stream) — without allocating.
func permInto(rng *rand.Rand, buf []int) []int {
	for i := 0; i < len(buf); i++ {
		j := rng.Intn(i + 1)
		buf[i] = buf[j]
		buf[j] = i
	}
	return buf
}

// Refiner selects the per-level refinement algorithm of the uncoarsening
// phase. All refiners keep the projected partition.Eval in sync move by
// move, so no level ever rescans the graph to recompute fitness.
type Refiner int

const (
	// RefineKLFM is the default boundary-KL/FM combination: boundary hill
	// climbing first (cheap, takes every strictly improving move), then FM
	// passes (escape zero-gain plateaus by accepting neutral/uphill moves
	// and keeping the best prefix), then a final climb-and-rebalance. This
	// is what gives multilevel its METIS-like quality.
	RefineKLFM Refiner = iota
	// RefineKL is pure boundary hill climbing (kl.RefineEval) with
	// rebalancing: the cheapest option, at some cut quality cost on graphs
	// with long straight boundaries.
	RefineKL
	// RefineFM is pure Fiduccia–Mattheyses refinement plus a rebalancing
	// sweep (FM's balance slack cannot drain imbalance inherited from
	// weighted coarse levels on its own).
	RefineFM
	// RefineNone disables refinement; the projection is returned as-is.
	// Useful for measuring how much refinement contributes.
	RefineNone
)

// String returns the flag-friendly name of the refiner.
func (r Refiner) String() string {
	switch r {
	case RefineKLFM:
		return "kl+fm"
	case RefineKL:
		return "kl"
	case RefineFM:
		return "fm"
	case RefineNone:
		return "none"
	default:
		return fmt.Sprintf("Refiner(%d)", int(r))
	}
}

// Config parameterizes a multilevel partitioning run.
type Config struct {
	Parts int
	// CoarsestSize stops coarsening once the graph is at or below this many
	// nodes; default 64.
	CoarsestSize int
	// MaxLevels bounds the hierarchy depth; default 30.
	MaxLevels int
	// RefinePasses bounds per-level refinement passes; default 4 (the
	// projection of a refined coarse solution starts near a local optimum,
	// so later passes find almost nothing).
	RefinePasses int
	// Refiner selects the uncoarsening refinement; default RefineKLFM.
	Refiner Refiner
	// Workers bounds the goroutines the whole V-cycle may use — matching
	// proposals and contraction on the way down, projection, boundary
	// rebuilds, colored refinement, and rebalance argmax on the way up;
	// <= 0 selects GOMAXPROCS. The result is bit-identical for every value.
	Workers int
	// Objective selects the cost the uncoarsening refiners drive down. The
	// zero value (TotalCut) is the historical edge-cut pipeline, bit for bit.
	// WorstCut steers every refiner by the max_q C(q) delta. CommVolume
	// routes refinement entirely through the KL climbers (FM does not support
	// it) and rebuilds the per-(node, part) neighbor counts at every level —
	// unlike part weights and cuts, the volume state does not survive
	// projection, because node identities change.
	Objective partition.Objective
	Seed      int64
	// LPThreshold is the node count at or above which a level's refinement
	// switches from the KL/FM combination to the size-constrained
	// label-propagation refiner (package lp): one deterministic colored
	// sweep per pass, O(deg) per boundary node, no gain heaps — the
	// KaMinPar-style cheap refiner for levels where KL/FM gain structures
	// dominate wall time. 0 selects DefaultLPThreshold (250k nodes — above
	// every committed sub-million baseline, so the default changes no
	// committed cut); negative disables the switch at every size. The
	// refiner honors the same Workers bit-identity contract and Stop
	// polling as the KL/FM path.
	LPThreshold int
	// FMParThreshold is the node count at or above which a level's FM
	// refinement runs the deterministic-parallel colored schedule
	// (fm.RefineEvalPar) instead of the serial heap pass: the per-move gain
	// evaluation — FM's dominant cost on big levels — fans out over Workers
	// while the schedule itself stays a pure function of the level's state,
	// so the Workers bit-identity contract holds unchanged. Below the
	// threshold the serial pass wins (coloring and merging overhead beats
	// the heap only once levels are large). 0 selects DefaultFMParThreshold
	// (50k nodes); negative disables the switch at every size. The two
	// passes are distinct deterministic algorithms: flipping the threshold
	// changes cuts (comparably good), never determinism.
	FMParThreshold int
	// Stats, when non-nil, receives the run's phase timings.
	Stats *Stats
	// Stop, when non-nil, requests cooperative cancellation: it is polled
	// between uncoarsening levels and forwarded into every per-level refiner
	// (which polls it between passes). A stopped run still projects the
	// partition all the way down to the input graph — projection is cheap
	// and is what keeps the returned partition valid for g — it just stops
	// spending on refinement. The coarsening and coarse-solve phases run to
	// completion; they are the cheap front of the V-cycle.
	Stop func() bool
}

// Stats reports where a Partition call spent its wall time and heap
// allocations, phase by phase. The byte counters are runtime.MemStats
// TotalAlloc deltas around each phase — what the phase allocated, not what
// it retained — measured only when Config.Stats is non-nil (ReadMemStats
// briefly stops the world, so unprofiled runs skip it entirely). At the
// million-node tier the V-cycle is allocation- and bandwidth-bound rather
// than compute-bound, which is what these fields exist to show.
type Stats struct {
	Levels      int           // coarsening levels built
	Coarsen     time.Duration // hierarchy construction (matching + contraction)
	CoarseSolve time.Duration // inner partitioner on the coarsest graph
	Project     time.Duration // assignment projection + boundary rebuilds
	Refine      time.Duration // per-level refinement (climb, FM, rebalance)

	// Refine broken down by refiner family, so benchmarks can attribute the
	// uncoarsening wall time to the label-propagation sweeps, the KL colored
	// climbs (including rebalance), and the FM passes individually. The three
	// sum to slightly less than Refine (loop overhead is unattributed).
	RefineLP    time.Duration // lp.RefineEval above LPThreshold
	RefineClimb time.Duration // kl climbs + rebalance
	RefineFM    time.Duration // fm.RefineEval / fm.RefineEvalPar

	CoarsenBytes     uint64 // bytes allocated during hierarchy construction
	CoarseSolveBytes uint64 // ... during the coarse solve
	ProjectBytes     uint64 // ... during projection + boundary rebuilds
	RefineBytes      uint64 // ... during per-level refinement
}

// DefaultLPThreshold is the node count at which Config.LPThreshold == 0
// switches a level's refinement to label propagation. It sits above every
// committed sub-million benchmark case (the largest is 100k nodes), so the
// default-path cuts of all existing baselines are untouched.
const DefaultLPThreshold = 250_000

// DefaultFMParThreshold is the node count at which Config.FMParThreshold == 0
// switches a level's FM refinement to the deterministic-parallel colored
// schedule. At 50k nodes the parallel pass's coloring/merge overhead is well
// amortized by the fanned-out gain evaluation; the scale100k and scale1M
// benchmark tiers cross it, the small diverse/weighted tiers do not.
const DefaultFMParThreshold = 50_000

func (c *Config) withDefaults() Config {
	out := *c
	if out.CoarsestSize == 0 {
		out.CoarsestSize = 64
	}
	if out.MaxLevels == 0 {
		out.MaxLevels = 30
	}
	if out.RefinePasses == 0 {
		out.RefinePasses = 4
	}
	if out.LPThreshold == 0 {
		out.LPThreshold = DefaultLPThreshold
	}
	if out.FMParThreshold == 0 {
		out.FMParThreshold = DefaultFMParThreshold
	}
	return out
}

// allocSnap returns the process's cumulative heap allocation when metering
// is on, 0 otherwise. Phase counters are deltas between snapshots.
func allocSnap(enabled bool) uint64 {
	if !enabled {
		return 0
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.TotalAlloc
}

// hierarchyScratch owns the V-cycle's reusable working memory: the matching
// vectors and order permutation (reused level to level — they shrink with
// the graph), the contraction buffers (graph.ContractScratch), the per-level
// fine→coarse maps (reused run to run), the FM refinement arena, and the
// ping-pong Assign vectors of intermediate uncoarsening levels. Partition
// checks one out of a package pool per call and returns it at the end, so
// bench loops and the partd service reuse the arena across runs; everything
// that escapes a run (the returned partition, the hierarchy's coarse graphs)
// is allocated outside the scratch.
type hierarchyScratch struct {
	match    []int
	order    []int
	pref     []int32
	coarse   [][]int // per-level CoarseOf buffers (pool reuse only)
	contract graph.ContractScratch
	fm       fm.Scratch
	lp       lp.Scratch
	// pingpong holds the two intermediate-level partitions the uncoarsening
	// loop alternates between; the finest level allocates fresh (it is the
	// returned result).
	pingpong [2]*partition.Partition
}

var hierarchyPool = sync.Pool{New: func() any { return new(hierarchyScratch) }}

// coarseBuf returns the scratch's CoarseOf buffer for hierarchy level li,
// sized to n.
func (hs *hierarchyScratch) coarseBuf(li, n int) []int {
	for len(hs.coarse) <= li {
		hs.coarse = append(hs.coarse, nil)
	}
	return ensureInts(&hs.coarse[li], n)
}

// levelPartition returns one of the two ping-pong partitions, sized for
// (n, parts). The uncoarsening loop alternates slots, so the partition a
// projection reads (p) is never the one it writes (fine).
func (hs *hierarchyScratch) levelPartition(slot, n, parts int) *partition.Partition {
	p := hs.pingpong[slot]
	if p == nil || p.Parts != parts || cap(p.Assign) < n {
		p = partition.New(n, parts)
		hs.pingpong[slot] = p
	} else {
		p.Assign = p.Assign[:n]
	}
	return p
}

func ensureInts(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	} else {
		*buf = (*buf)[:n]
	}
	return *buf
}

func ensureInt32s(buf *[]int32, n int) []int32 {
	if cap(*buf) < n {
		*buf = make([]int32, n)
	} else {
		*buf = (*buf)[:n]
	}
	return *buf
}

// BuildHierarchy coarsens g level by level until it has at most
// coarsestSize nodes, maxLevels is reached, or matching stops making
// progress, spreading each level's matching and contraction over `workers`
// goroutines (<= 0 selects GOMAXPROCS; any value gives the same hierarchy).
// It returns the fine-to-coarse levels (levels[0].Graph == g) and the
// coarsest graph. Exposed for tests and for benchmarks that inspect the
// hierarchy.
func BuildHierarchy(g *graph.Graph, coarsestSize, maxLevels int, rng *rand.Rand, workers int) ([]Level, *graph.Graph) {
	hs := hierarchyPool.Get().(*hierarchyScratch)
	defer hierarchyPool.Put(hs)
	return hs.buildHierarchy(g, coarsestSize, maxLevels, rng, workers, false)
}

// buildHierarchy is BuildHierarchy drawing the matching/contraction buffers
// from hs. With pooledCoarse, the per-level CoarseOf maps also come from the
// scratch — only legal when the returned levels do not outlive the scratch
// checkout (Partition's private use); exported callers get fresh maps.
func (hs *hierarchyScratch) buildHierarchy(g *graph.Graph, coarsestSize, maxLevels int, rng *rand.Rand, workers int, pooledCoarse bool) ([]Level, *graph.Graph) {
	var levels []Level
	cur := g
	for len(levels) < maxLevels && cur.NumNodes() > coarsestSize {
		var coarseOf []int
		if pooledCoarse {
			coarseOf = hs.coarseBuf(len(levels), cur.NumNodes())
		} else {
			coarseOf = make([]int, cur.NumNodes())
		}
		coarse := hs.coarsen(cur, rng, workers, coarseOf)
		// Stop when matching found nothing to merge — or almost nothing
		// (under 5% of nodes): a star center or contracted hub can absorb
		// one neighbor per level forever, so without the stall cut a
		// degenerate graph would burn all MaxLevels levels shrinking by a
		// node at a time. Real meshes and RGGs merge 40–50% per level and
		// never come near the threshold.
		if coarse.NumNodes() >= cur.NumNodes() || cur.NumNodes()-coarse.NumNodes() < cur.NumNodes()/20 {
			break
		}
		levels = append(levels, Level{Graph: cur, CoarseOf: coarseOf})
		cur = coarse
	}
	return levels, cur
}

// Partition coarsens g, partitions the coarsest graph with inner, and
// projects the result back up the hierarchy with boundary refinement at
// every level.
func Partition(g *graph.Graph, cfg Config, inner Partitioner) (*partition.Partition, error) {
	c := cfg.withDefaults()
	if c.Parts <= 0 {
		return nil, fmt.Errorf("multilevel: invalid part count %d", c.Parts)
	}
	if inner == nil {
		return nil, fmt.Errorf("multilevel: inner partitioner required")
	}
	rng := rand.New(rand.NewSource(c.Seed))
	hs := hierarchyPool.Get().(*hierarchyScratch)
	defer hierarchyPool.Put(hs)
	meter := c.Stats != nil

	var stats Stats
	start := time.Now()
	alloc := allocSnap(meter)
	levels, coarsest := hs.buildHierarchy(g, c.CoarsestSize, c.MaxLevels, rng, c.Workers, true)
	stats.Levels = len(levels)
	stats.Coarsen = time.Since(start)
	stats.CoarsenBytes = allocSnap(meter) - alloc

	// Partition the coarsest graph.
	start = time.Now()
	alloc = allocSnap(meter)
	p, err := inner(coarsest, c.Parts, rng)
	if err != nil {
		return nil, fmt.Errorf("multilevel: coarse partition: %w", err)
	}
	if err := p.Validate(coarsest); err != nil {
		return nil, fmt.Errorf("multilevel: inner partitioner result invalid: %w", err)
	}
	stats.CoarseSolve = time.Since(start)
	stats.CoarseSolveBytes = allocSnap(meter) - alloc

	// One Eval for the whole uncoarsening phase: projection preserves part
	// weights (coarse node weights are member sums) and part cuts (coarse
	// edge weights are cross-member sums), so the aggregates carry over
	// verbatim and only refinement moves touch them. The Eval also tracks
	// the boundary set, which every refiner seeds its scans from; unlike
	// the weight/cut aggregates, node identities change across projection,
	// so the boundary is rebuilt per level — by the sharded parallel scan,
	// like the projection fill itself (every fine node's slot is owned by
	// exactly one par chunk, so any width writes the same arrays).
	var ev *partition.Eval
	if c.Refiner != RefineNone {
		ev = partition.NewEvalBoundary(coarsest, p)
		if c.Objective == partition.CommVolume {
			ev.ResetCommVolPar(coarsest, p, c.Workers)
		}
		// Presize the Eval's per-node buffers for the finest level now, so
		// the per-level boundary rebuilds below reslice within capacity
		// instead of reallocating every time the hierarchy grows back.
		ev.Reserve(g.NumNodes(), c.Parts)
		if c.Refiner == RefineKLFM || c.Refiner == RefineFM {
			// Same for FM's Theta(n*parts) connectivity table: growing it
			// level by level as the hierarchy unwinds would reallocate at
			// nearly every step for about twice the finest level's bytes.
			hs.fm.Reserve(g.NumNodes(), c.Parts)
		}
	}

	for i := len(levels) - 1; i >= 0; i-- {
		lvl := levels[i]
		start = time.Now()
		alloc = allocSnap(meter)
		n := lvl.Graph.NumNodes()
		var fine *partition.Partition
		if i == 0 {
			// The finest partition is the returned result; it must own its
			// memory, so it alone is allocated fresh.
			fine = partition.New(n, c.Parts)
		} else {
			// Intermediate levels ping-pong between two pooled partitions:
			// the one projected into (fine) is never the one read (p).
			fine = hs.levelPartition(i%2, n, c.Parts)
		}
		coarseAssign, coarseOf := p.Assign, lvl.CoarseOf
		par.For(c.Workers, len(fine.Assign), func(_, lo, hi int) {
			fa := fine.Assign
			for v := lo; v < hi; v++ {
				fa[v] = coarseAssign[coarseOf[v]]
			}
		})
		if ev != nil {
			ev.ResetBoundaryPar(lvl.Graph, fine, c.Workers)
			if c.Objective == partition.CommVolume {
				// The volume counters key on node identity, which projection
				// just changed — rebuild them for this level's graph.
				ev.ResetCommVolPar(lvl.Graph, fine, c.Workers)
			}
		}
		stats.Project += time.Since(start)
		stats.ProjectBytes += allocSnap(meter) - alloc
		start = time.Now()
		alloc = allocSnap(meter)
		stopped := c.Stop != nil && c.Stop()
		useLP := c.LPThreshold > 0 && n >= c.LPThreshold
		// fmPass runs this level's FM refinement: the deterministic-parallel
		// colored schedule at or above FMParThreshold, the serial heap pass
		// below it (both share hs.fm's arena). The two are distinct
		// deterministic algorithms, so the threshold changes cuts but every
		// Workers value still reproduces Workers=1 bit for bit.
		fmPass := func(passes int) {
			t := time.Now()
			cfg := fm.Config{MaxPasses: passes, Workers: c.Workers, Objective: c.Objective, Stop: c.Stop, Scratch: &hs.fm}
			if c.FMParThreshold > 0 && n >= c.FMParThreshold {
				fm.RefineEvalPar(lvl.Graph, fine, ev, cfg)
			} else {
				fm.RefineEval(lvl.Graph, fine, ev, cfg)
			}
			stats.RefineFM += time.Since(t)
		}
		climb := func(f func()) {
			t := time.Now()
			f()
			stats.RefineClimb += time.Since(t)
		}
		switch {
		case stopped:
			// Cancellation between levels: skip this level's refinement
			// entirely but keep projecting — the loop must reach levels[0]
			// for the partition to be a valid answer for g.
		case c.Refiner == RefineNone:
		case useLP:
			// Million-node levels: the KL/FM gain structures (Theta(n·parts)
			// connectivity, gain heaps) dominate wall time and allocation up
			// here, so refine with the size-constrained label-propagation
			// sweep instead, then drain any inherited imbalance.
			t := time.Now()
			lp.RefineEval(lvl.Graph, fine, ev, lp.Config{MaxPasses: c.RefinePasses, Workers: c.Workers, Stop: c.Stop, Scratch: &hs.lp})
			stats.RefineLP += time.Since(t)
			climb(func() { kl.RebalancePar(lvl.Graph, fine, ev, c.Objective, c.Workers) })
		case c.Refiner == RefineKLFM:
			// Climb first (each pass is cheap and takes every strictly
			// improving move), then a single FM pass to slide through the
			// zero-gain plateaus steepest descent cannot cross, then a final
			// climb-and-rebalance to harvest what FM exposed. Under CommVolume
			// the FM step is skipped (fm does not support that objective), so
			// the combination degrades to pure colored climbing.
			climb(func() { kl.HillClimbColoredStop(lvl.Graph, fine, c.Objective, c.RefinePasses, c.Workers, ev, c.Stop) })
			if c.Objective != partition.CommVolume {
				fmPass(1)
			}
			climb(func() { kl.RefineEvalParStop(lvl.Graph, fine, ev, c.Objective, 1, c.Workers, c.Stop) })
		case c.Refiner == RefineKL:
			climb(func() { kl.RefineEvalParStop(lvl.Graph, fine, ev, c.Objective, c.RefinePasses, c.Workers, c.Stop) })
		case c.Refiner == RefineFM:
			if c.Objective != partition.CommVolume {
				fmPass(c.RefinePasses)
			}
			climb(func() { kl.RebalancePar(lvl.Graph, fine, ev, c.Objective, c.Workers) })
		}
		stats.Refine += time.Since(start)
		stats.RefineBytes += allocSnap(meter) - alloc
		p = fine
	}
	if c.Stats != nil {
		*c.Stats = stats
	}
	if err := p.Validate(g); err != nil {
		return nil, fmt.Errorf("multilevel: projection produced invalid partition: %w", err)
	}
	return p, nil
}
