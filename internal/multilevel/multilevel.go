// Package multilevel implements the graph contraction scheme the paper
// names as the enabler for partitioning large graphs with GAs ("Applying a
// prior graph contraction step should precede the partitioning of very
// large graphs using GA's", citing Barnard & Simon's multilevel RSB).
//
// Coarsening uses heavy-edge matching: visit nodes in random order, match
// each unmatched node with its unmatched neighbor across the heaviest edge,
// and collapse matched pairs into a single node whose weight is the sum and
// whose edges accumulate the originals. The coarsest graph is partitioned by
// any Partitioner (GA or RSB here), and the result is projected back up the
// hierarchy with boundary refinement at every level.
package multilevel

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/kl"
	"repro/internal/partition"
)

// Partitioner partitions a (coarse) graph into parts parts.
type Partitioner func(g *graph.Graph, parts int, rng *rand.Rand) (*partition.Partition, error)

// Level is one step of the coarsening hierarchy.
type Level struct {
	Graph *graph.Graph
	// CoarseOf[v] is the coarse node that fine node v collapsed into
	// (indices into the next-coarser graph).
	CoarseOf []int
}

// Coarsen collapses g by one level of heavy-edge matching and returns the
// coarser graph and the fine→coarse map. Node weights add; parallel edges
// accumulate weight; self-edges (internal to a matched pair) vanish.
func Coarsen(g *graph.Graph, rng *rand.Rand) (*graph.Graph, []int) {
	n := g.NumNodes()
	match := make([]int, n)
	for i := range match {
		match[i] = -1
	}
	order := rng.Perm(n)
	for _, v := range order {
		if match[v] != -1 {
			continue
		}
		bestU, bestW := -1, -1.0
		ws := g.EdgeWeights(v)
		for i, u := range g.Neighbors(v) {
			if match[u] == -1 && ws[i] > bestW {
				bestU, bestW = int(u), ws[i]
			}
		}
		if bestU >= 0 {
			match[v], match[bestU] = bestU, v
		} else {
			match[v] = v // matched with itself
		}
	}
	coarseOf := make([]int, n)
	next := 0
	for v := 0; v < n; v++ {
		if match[v] >= v { // representative of its pair (or singleton)
			coarseOf[v] = next
			if match[v] != v {
				coarseOf[match[v]] = next
			}
			next++
		}
	}
	b := graph.NewBuilder(next)
	// Coarse node weights and coordinates (weight-averaged midpoint).
	wsum := make([]float64, next)
	var cx, cy []float64
	if g.HasCoords() {
		cx = make([]float64, next)
		cy = make([]float64, next)
	}
	for v := 0; v < n; v++ {
		c := coarseOf[v]
		w := g.NodeWeight(v)
		wsum[c] += w
		if g.HasCoords() {
			p := g.Coord(v)
			cx[c] += w * p.X
			cy[c] += w * p.Y
		}
	}
	for c := 0; c < next; c++ {
		b.SetNodeWeight(c, wsum[c])
		if g.HasCoords() && wsum[c] > 0 {
			b.SetCoord(c, graph.Point{X: cx[c] / wsum[c], Y: cy[c] / wsum[c]})
		}
	}
	// Accumulate edge weights between coarse nodes.
	acc := make(map[[2]int]float64)
	g.Edges(func(u, v int, w float64) bool {
		cu, cv := coarseOf[u], coarseOf[v]
		if cu == cv {
			return true
		}
		if cu > cv {
			cu, cv = cv, cu
		}
		acc[[2]int{cu, cv}] += w
		return true
	})
	for e, w := range acc {
		b.AddEdge(e[0], e[1], w)
	}
	return b.Build(), coarseOf
}

// Config parameterizes a multilevel partitioning run.
type Config struct {
	Parts int
	// CoarsestSize stops coarsening once the graph is at or below this many
	// nodes; default 64.
	CoarsestSize int
	// MaxLevels bounds the hierarchy depth; default 20.
	MaxLevels int
	// RefinePasses bounds per-level boundary refinement; default 4.
	RefinePasses int
	Seed         int64
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.CoarsestSize == 0 {
		out.CoarsestSize = 64
	}
	if out.MaxLevels == 0 {
		out.MaxLevels = 20
	}
	if out.RefinePasses == 0 {
		out.RefinePasses = 4
	}
	return out
}

// Partition coarsens g, partitions the coarsest graph with inner, and
// projects the result back up with KL-style boundary refinement at every
// level.
func Partition(g *graph.Graph, cfg Config, inner Partitioner) (*partition.Partition, error) {
	c := cfg.withDefaults()
	if c.Parts <= 0 {
		return nil, fmt.Errorf("multilevel: invalid part count %d", c.Parts)
	}
	if inner == nil {
		return nil, fmt.Errorf("multilevel: inner partitioner required")
	}
	rng := rand.New(rand.NewSource(c.Seed))

	// Build the hierarchy.
	var levels []Level
	cur := g
	for len(levels) < c.MaxLevels && cur.NumNodes() > c.CoarsestSize {
		coarse, coarseOf := Coarsen(cur, rng)
		if coarse.NumNodes() >= cur.NumNodes() {
			break // matching found nothing to merge
		}
		levels = append(levels, Level{Graph: cur, CoarseOf: coarseOf})
		cur = coarse
	}

	// Partition the coarsest graph.
	p, err := inner(cur, c.Parts, rng)
	if err != nil {
		return nil, fmt.Errorf("multilevel: coarse partition: %w", err)
	}

	// Project back up, refining at each level.
	for i := len(levels) - 1; i >= 0; i-- {
		lvl := levels[i]
		fine := partition.New(lvl.Graph.NumNodes(), c.Parts)
		for v := range fine.Assign {
			fine.Assign[v] = p.Assign[lvl.CoarseOf[v]]
		}
		kl.Refine(lvl.Graph, fine, c.RefinePasses)
		p = fine
	}
	if err := p.Validate(g); err != nil {
		return nil, fmt.Errorf("multilevel: projection produced invalid partition: %w", err)
	}
	return p, nil
}
