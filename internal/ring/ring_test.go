package ring

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("sha256:%064x", i*2654435761)
	}
	return out
}

// The ring is a pure function of the member *set*: shuffled and duplicated
// input lists build rings that agree on every owner and replica list.
func TestPermutationStability(t *testing.T) {
	members := []string{"s1", "s2", "s3", "s4", "s5"}
	base, err := New(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		shuffled := append([]string(nil), members...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		shuffled = append(shuffled, shuffled[trial]) // duplicates collapse
		r, err := New(shuffled, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r.Members(), base.Members()) {
			t.Fatalf("members %v != %v", r.Members(), base.Members())
		}
		for _, k := range keys(500) {
			if r.Owner(k) != base.Owner(k) {
				t.Fatalf("trial %d: owner of %s differs: %s vs %s", trial, k, r.Owner(k), base.Owner(k))
			}
			if !reflect.DeepEqual(r.Replicas(k, 3), base.Replicas(k, 3)) {
				t.Fatalf("trial %d: replicas of %s differ", trial, k)
			}
		}
	}
}

// Pinned placements: these exact assignments are part of the fleet's wire
// compatibility (a router and a shard from different builds must agree), so
// a change to the hash or the point layout must show up here, loudly.
func TestPinnedPlacements(t *testing.T) {
	r, err := New([]string{"s1", "s2", "s3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Table computed once from the committed implementation.
	pinned := map[string]string{
		"sha256:aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa": "s3",
		"sha256:bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb": "s3",
		"alpha": "s1",
		"beta":  "s1",
		"gamma": "s2",
	}
	for k, want := range pinned {
		if got := r.Owner(k); got != want {
			t.Errorf("Owner(%q) = %s, want %s (placement changed: this breaks mixed-version fleets)", k, got, want)
		}
	}
}

// Adding a member moves keys ONLY onto the new member, and roughly 1/N of
// them; every key whose owner is unchanged keeps its exact replica order
// prefix. This is the minimal-disruption property lazy rebalancing relies on.
func TestAddMemberMinimalDisruption(t *testing.T) {
	old, err := New([]string{"s1", "s2", "s3", "s4"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	grown, err := New([]string{"s1", "s2", "s3", "s4", "s5"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ks := keys(4000)
	moved := 0
	for _, k := range ks {
		was, is := old.Owner(k), grown.Owner(k)
		if was == is {
			continue
		}
		moved++
		if is != "s5" {
			t.Fatalf("key %s moved %s -> %s, not to the new member", k, was, is)
		}
		// The displaced owner is exactly the new ring's second replica: the
		// shard a peer-fetch should ask for the graph.
		if reps := grown.Replicas(k, 2); len(reps) != 2 || reps[1] != was {
			t.Fatalf("key %s: previous owner %s is not the successor replica %v", k, was, reps)
		}
	}
	want := float64(len(ks)) / 5
	if f := float64(moved); f < want*0.5 || f > want*1.6 {
		t.Fatalf("%d of %d keys moved; want about 1/5 (~%.0f)", moved, len(ks), want)
	}
}

// Removing a member moves only the keys it owned; all other assignments are
// byte-identical.
func TestRemoveMemberMinimalDisruption(t *testing.T) {
	full, err := New([]string{"s1", "s2", "s3", "s4", "s5"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	shrunk, err := New([]string{"s1", "s2", "s4", "s5"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys(4000) {
		was := full.Owner(k)
		if was == "s3" {
			// Must land on the old ring's next replica.
			if reps := full.Replicas(k, 2); shrunk.Owner(k) != reps[1] {
				t.Fatalf("key %s: owner after removal %s, want next replica %s", k, shrunk.Owner(k), reps[1])
			}
			continue
		}
		if shrunk.Owner(k) != was {
			t.Fatalf("key %s not owned by removed member moved %s -> %s", k, was, shrunk.Owner(k))
		}
	}
}

// OwnerAmong skips dead members in replica order and agrees with Replicas.
func TestOwnerAmongFailover(t *testing.T) {
	r, err := New([]string{"s1", "s2", "s3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys(300) {
		reps := r.Replicas(k, 3)
		if len(reps) != 3 || reps[0] != r.Owner(k) {
			t.Fatalf("replicas %v, owner %s", reps, r.Owner(k))
		}
		if m := map[string]bool{reps[0]: true, reps[1]: true, reps[2]: true}; len(m) != 3 {
			t.Fatalf("replicas not distinct: %v", reps)
		}
		got, ok := r.OwnerAmong(k, func(m string) bool { return m != reps[0] })
		if !ok || got != reps[1] {
			t.Fatalf("with owner down, OwnerAmong = %s (ok=%v), want %s", got, ok, reps[1])
		}
		got, ok = r.OwnerAmong(k, func(m string) bool { return m == reps[2] })
		if !ok || got != reps[2] {
			t.Fatalf("with two down, OwnerAmong = %s (ok=%v), want %s", got, ok, reps[2])
		}
		if _, ok := r.OwnerAmong(k, func(string) bool { return false }); ok {
			t.Fatal("OwnerAmong with nothing live reported an owner")
		}
	}
}

// The per-member load of a realistic key population stays near uniform.
func TestBalance(t *testing.T) {
	members := []string{"s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8"}
	r, err := New(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	ks := keys(20000)
	for _, k := range ks {
		counts[r.Owner(k)]++
	}
	mean := float64(len(ks)) / float64(len(members))
	for m, c := range counts {
		if f := float64(c); f < mean*0.5 || f > mean*1.6 {
			t.Errorf("member %s owns %d keys; mean %.0f (ring too skewed)", m, c, mean)
		}
	}
	if len(counts) != len(members) {
		t.Fatalf("only %d of %d members own keys", len(counts), len(members))
	}
}

func TestParseMembers(t *testing.T) {
	ms, err := ParseMembers("s1=127.0.0.1:7001, s2=127.0.0.1:7002,127.0.0.1:7003")
	if err != nil {
		t.Fatal(err)
	}
	want := []Member{
		{Name: "s1", Addr: "127.0.0.1:7001"},
		{Name: "s2", Addr: "127.0.0.1:7002"},
		{Name: "127.0.0.1:7003", Addr: "127.0.0.1:7003"},
	}
	if !reflect.DeepEqual(ms, want) {
		t.Fatalf("parsed %v, want %v", ms, want)
	}
	if !reflect.DeepEqual(Names(ms), []string{"s1", "s2", "127.0.0.1:7003"}) {
		t.Fatalf("names %v", Names(ms))
	}
	for _, bad := range []string{"", "=addr", "name=", "s1=a,s1=b", "a/b=addr", ","} {
		if _, err := ParseMembers(bad); err == nil {
			t.Errorf("ParseMembers(%q) accepted", bad)
		}
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(nil, 0); err == nil {
		t.Error("empty ring accepted")
	}
	if _, err := New([]string{""}, 0); err == nil {
		t.Error("empty member name accepted")
	}
}
