// Package ring implements the deterministic consistent-hash ring that places
// content-addressed graphs on a partd fleet.
//
// Every member contributes a fixed number of virtual nodes (points on a
// 64-bit circle, derived by hashing "member#index" with SHA-256), and a key
// is owned by the member whose point is the key's clockwise successor. The
// construction is a pure function of the *set* of member names: permuting or
// deduplicating the input list yields an identical ring, so every router and
// every shard configured with the same membership agrees on placement with
// no coordination.
//
// Consistent hashing's minimal-disruption property holds by construction and
// is pinned by tests: adding a member only moves the keys the new member now
// owns (~1/N of them), and removing a member only moves the keys it owned —
// all other key→member assignments are untouched. That is what makes lazy
// peer-fetch rebalancing (internal/service) cheap after a membership change.
package ring

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// DefaultVNodes is the virtual-node count per member when New is given a
// non-positive one. 64 points per member keeps the expected per-member load
// within a few percent of uniform for small fleets while the ring stays tiny.
const DefaultVNodes = 64

// Member is one fleet member: a stable logical name (the ring key, and the
// prefix of routed job ids) and the host:port it serves on. Naming members
// logically rather than by address keeps placement stable when a shard
// restarts on a different port.
type Member struct {
	Name string
	Addr string
}

// ParseMembers parses a fleet specification: comma-separated entries, each
// either "name=host:port" or a bare "host:port" (which names the member by
// its address). Names must be unique and must not contain '/', '=', ',' or
// whitespace — they appear inside job ids and URL paths.
func ParseMembers(spec string) ([]Member, error) {
	var out []Member
	seen := make(map[string]bool)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		m := Member{Name: part, Addr: part}
		if i := strings.IndexByte(part, '='); i >= 0 {
			m.Name, m.Addr = part[:i], part[i+1:]
		}
		if m.Name == "" || m.Addr == "" {
			return nil, fmt.Errorf("ring: malformed member %q (want name=host:port or host:port)", part)
		}
		if strings.ContainsAny(m.Name, "/= \t") {
			return nil, fmt.Errorf("ring: member name %q may not contain '/', '=', or whitespace", m.Name)
		}
		if seen[m.Name] {
			return nil, fmt.Errorf("ring: duplicate member name %q", m.Name)
		}
		seen[m.Name] = true
		out = append(out, m)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("ring: empty member specification")
	}
	return out, nil
}

// Names extracts the member names from a parsed specification, in input
// order.
func Names(members []Member) []string {
	out := make([]string, len(members))
	for i, m := range members {
		out[i] = m.Name
	}
	return out
}

// Ring is an immutable consistent-hash ring over a set of member names. It
// is safe for concurrent use.
type Ring struct {
	members []string // sorted unique names
	points  []point  // sorted by (hash, member)
}

type point struct {
	hash   uint64
	member int32 // index into members
}

// New builds a ring over members with vnodes virtual nodes each (<= 0
// selects DefaultVNodes). The member list is deduplicated and sorted, so any
// permutation of the same set builds an identical ring.
func New(members []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	uniq := make([]string, 0, len(members))
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if m == "" {
			return nil, fmt.Errorf("ring: empty member name")
		}
		if !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("ring: need at least one member")
	}
	sort.Strings(uniq)
	r := &Ring{
		members: uniq,
		points:  make([]point, 0, len(uniq)*vnodes),
	}
	for mi, name := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{
				hash:   hash64(name + "#" + strconv.Itoa(v)),
				member: int32(mi),
			})
		}
	}
	// Ties (astronomically unlikely with SHA-256-derived points) break by
	// member index so the order never depends on input permutation.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r, nil
}

// hash64 is the ring's point/key hash: the first 8 bytes of SHA-256,
// big-endian. SHA-256 rather than a fast non-cryptographic hash because the
// placement must be identical across every process and toolchain version
// forever — these positions are effectively an on-disk format.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Members returns the sorted member names.
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// Size returns the member count.
func (r *Ring) Size() int { return len(r.members) }

// Has reports whether name is a ring member.
func (r *Ring) Has(name string) bool {
	i := sort.SearchStrings(r.members, name)
	return i < len(r.members) && r.members[i] == name
}

// successor returns the index of the first point clockwise from key.
func (r *Ring) successor(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the top of the circle
	}
	return i
}

// Owner returns the member that owns key: the member whose virtual node is
// the key's clockwise successor.
func (r *Ring) Owner(key string) string {
	return r.members[r.points[r.successor(key)].member]
}

// Replicas returns up to n distinct members in ring order starting from the
// key's owner: the owner first, then the members that would own the key if
// every earlier replica were removed. Replicas[1] is therefore the member
// that owned the key before the current owner joined — the peer a shard
// fetches from when rebalancing lazily.
func (r *Ring) Replicas(key string, n int) []string {
	if n > len(r.members) {
		n = len(r.members)
	}
	if n <= 0 {
		return nil
	}
	out := make([]string, 0, n)
	seen := make(map[int32]bool, n)
	start := r.successor(key)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, r.members[p.member])
		}
	}
	return out
}

// OwnerAmong returns the first replica for key that live reports true — the
// member a router should route to when some members are down. It returns
// false only when live rejects every member.
func (r *Ring) OwnerAmong(key string, live func(string) bool) (string, bool) {
	seen := make(map[int32]bool, len(r.members))
	start := r.successor(key)
	for i := 0; i < len(r.points) && len(seen) < len(r.members); i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.member] {
			continue
		}
		seen[p.member] = true
		if m := r.members[p.member]; live(m) {
			return m, true
		}
	}
	return "", false
}
