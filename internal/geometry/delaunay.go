package geometry

import (
	"fmt"
	"sort"
)

// Triangle holds the three vertex indices of a triangulation face, in
// counter-clockwise order.
type Triangle struct {
	A, B, C int
}

// Triangulation is the result of Delaunay: the input points and the faces
// covering their convex hull.
type Triangulation struct {
	Points    []Point
	Triangles []Triangle
}

// Delaunay computes the Delaunay triangulation of pts with the Bowyer–Watson
// incremental algorithm. It requires at least 3 points not all collinear and
// no exact duplicates; the mesh generators guarantee both. Runtime is
// O(n²) in the worst case and ~O(n^1.5) for random input, ample for the
// paper's graph sizes and the multilevel ablations.
func Delaunay(pts []Point) (*Triangulation, error) {
	n := len(pts)
	if n < 3 {
		return nil, fmt.Errorf("geometry: Delaunay needs >= 3 points, got %d", n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if pts[i] == pts[j] {
				return nil, fmt.Errorf("geometry: duplicate point %v at %d and %d", pts[i], i, j)
			}
		}
	}

	// Super-triangle large enough to contain every point strictly.
	bb := Bounds(pts)
	span := bb.Width()
	if bb.Height() > span {
		span = bb.Height()
	}
	if span == 0 {
		return nil, fmt.Errorf("geometry: all points coincide")
	}
	c := bb.Center()
	const m = 64 // super-triangle scale; large enough to act as "infinity"
	super := [3]Point{
		{c.X - m*span, c.Y - span},
		{c.X + m*span, c.Y - span},
		{c.X, c.Y + m*span},
	}
	// Work points: input points followed by the three super vertices
	// (indices n, n+1, n+2).
	work := make([]Point, n+3)
	copy(work, pts)
	copy(work[n:], super[:])

	tris := []Triangle{{n, n + 1, n + 2}}

	type edge struct{ u, v int }
	for p := 0; p < n; p++ {
		// Find all triangles whose circumcircle contains point p ("bad"
		// triangles), collect the boundary of the cavity they form, and
		// retriangulate the cavity as a fan around p.
		var bad []int
		for i, t := range tris {
			if InCircle(work[t.A], work[t.B], work[t.C], work[p]) {
				bad = append(bad, i)
			}
		}
		edgeCount := make(map[edge]int)
		norm := func(u, v int) edge {
			if u > v {
				u, v = v, u
			}
			return edge{u, v}
		}
		for _, i := range bad {
			t := tris[i]
			edgeCount[norm(t.A, t.B)]++
			edgeCount[norm(t.B, t.C)]++
			edgeCount[norm(t.C, t.A)]++
		}
		// Remove bad triangles (iterate indexes descending to keep them valid).
		sort.Sort(sort.Reverse(sort.IntSlice(bad)))
		for _, i := range bad {
			tris[i] = tris[len(tris)-1]
			tris = tris[:len(tris)-1]
		}
		// Boundary edges appear in exactly one bad triangle.
		for e, cnt := range edgeCount {
			if cnt != 1 {
				continue
			}
			t := Triangle{e.u, e.v, p}
			if Orient(work[t.A], work[t.B], work[t.C]) < 0 {
				t.A, t.B = t.B, t.A
			}
			tris = append(tris, t)
		}
	}

	// Drop triangles touching the super vertices.
	out := tris[:0]
	for _, t := range tris {
		if t.A < n && t.B < n && t.C < n {
			out = append(out, t)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("geometry: triangulation degenerate (collinear input?)")
	}
	// Canonical order for determinism across runs.
	sort.Slice(out, func(i, j int) bool {
		a, b := canonical(out[i]), canonical(out[j])
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		if a[1] != b[1] {
			return a[1] < b[1]
		}
		return a[2] < b[2]
	})
	return &Triangulation{Points: pts, Triangles: out}, nil
}

func canonical(t Triangle) [3]int {
	v := [3]int{t.A, t.B, t.C}
	sort.Ints(v[:])
	return v
}

// Edges returns the undirected edge set of the triangulation, each edge once
// with u < v, in sorted order.
func (tr *Triangulation) Edges() [][2]int {
	seen := make(map[[2]int]bool)
	add := func(u, v int) {
		if u > v {
			u, v = v, u
		}
		seen[[2]int{u, v}] = true
	}
	for _, t := range tr.Triangles {
		add(t.A, t.B)
		add(t.B, t.C)
		add(t.C, t.A)
	}
	edges := make([][2]int, 0, len(seen))
	for e := range seen {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	return edges
}
