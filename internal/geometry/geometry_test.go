package geometry

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOrient(t *testing.T) {
	a, b := Point{0, 0}, Point{1, 0}
	if Orient(a, b, Point{0, 1}) <= 0 {
		t.Error("CCW triple not positive")
	}
	if Orient(a, b, Point{0, -1}) >= 0 {
		t.Error("CW triple not negative")
	}
	if Orient(a, b, Point{2, 0}) != 0 {
		t.Error("collinear triple not zero")
	}
}

func TestInCircle(t *testing.T) {
	// Unit circle through (1,0), (0,1), (-1,0) (CCW).
	a, b, c := Point{1, 0}, Point{0, 1}, Point{-1, 0}
	if !InCircle(a, b, c, Point{0, 0}) {
		t.Error("center not inside circumcircle")
	}
	if InCircle(a, b, c, Point{2, 2}) {
		t.Error("far point inside circumcircle")
	}
	if InCircle(a, b, c, Point{0, -1}) {
		t.Error("point on circle reported strictly inside")
	}
}

func TestCircumcenter(t *testing.T) {
	c, ok := Circumcenter(Point{1, 0}, Point{0, 1}, Point{-1, 0})
	if !ok {
		t.Fatal("well-formed triangle reported degenerate")
	}
	if math.Abs(c.X) > 1e-12 || math.Abs(c.Y) > 1e-12 {
		t.Errorf("circumcenter = %v, want origin", c)
	}
	if _, ok := Circumcenter(Point{0, 0}, Point{1, 1}, Point{2, 2}); ok {
		t.Error("collinear points have a circumcenter")
	}
}

func TestBounds(t *testing.T) {
	bb := Bounds([]Point{{1, 5}, {-2, 3}, {4, -1}})
	if bb.Min != (Point{-2, -1}) || bb.Max != (Point{4, 5}) {
		t.Errorf("Bounds = %+v", bb)
	}
	if bb.Width() != 6 || bb.Height() != 6 {
		t.Errorf("Width/Height = %v/%v", bb.Width(), bb.Height())
	}
	if !bb.Contains(Point{0, 0}) || bb.Contains(Point{9, 9}) {
		t.Error("Contains wrong")
	}
}

func TestDelaunaySquare(t *testing.T) {
	// Unit square: two triangles, five edges (four sides + one diagonal).
	pts := []Point{{0, 0}, {1, 0}, {1, 1}, {0, 1}}
	tr, err := Delaunay(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Triangles) != 2 {
		t.Fatalf("triangles = %d, want 2", len(tr.Triangles))
	}
	if got := len(tr.Edges()); got != 5 {
		t.Errorf("edges = %d, want 5", got)
	}
}

func TestDelaunayErrors(t *testing.T) {
	if _, err := Delaunay([]Point{{0, 0}, {1, 1}}); err == nil {
		t.Error("accepted 2 points")
	}
	if _, err := Delaunay([]Point{{0, 0}, {1, 1}, {0, 0}}); err == nil {
		t.Error("accepted duplicate points")
	}
	if _, err := Delaunay([]Point{{0, 0}, {1, 1}, {2, 2}}); err == nil {
		t.Error("accepted collinear points")
	}
}

func TestDelaunayTrianglesAreCCW(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := randomPoints(rng, 60)
	tr, err := Delaunay(pts)
	if err != nil {
		t.Fatal(err)
	}
	for _, tri := range tr.Triangles {
		if Orient(pts[tri.A], pts[tri.B], pts[tri.C]) <= 0 {
			t.Fatalf("triangle %v not CCW", tri)
		}
	}
}

func randomPoints(rng *rand.Rand, n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{rng.Float64(), rng.Float64()}
	}
	return pts
}

// The Delaunay empty-circle property: no input point strictly inside any
// triangle's circumcircle.
func TestDelaunayEmptyCircleProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randomPoints(rng, 40)
	tr, err := Delaunay(pts)
	if err != nil {
		t.Fatal(err)
	}
	for _, tri := range tr.Triangles {
		for p := range pts {
			if p == tri.A || p == tri.B || p == tri.C {
				continue
			}
			if InCircle(pts[tri.A], pts[tri.B], pts[tri.C], pts[p]) {
				t.Fatalf("point %d inside circumcircle of %v", p, tri)
			}
		}
	}
}

// Property: Euler bound for planar triangulations of points in general
// position: edges <= 3n-6, triangles <= 2n-5, and the triangulation is
// deterministic for a fixed seed.
func TestQuickDelaunayInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(50)
		pts := randomPoints(rng, n)
		tr, err := Delaunay(pts)
		if err != nil {
			return false
		}
		e := len(tr.Edges())
		if e > 3*n-6 || len(tr.Triangles) > 2*n-5 {
			return false
		}
		// Every input point appears in at least one triangle (random points
		// in a square: all points are vertices of the triangulation).
		used := make([]bool, n)
		for _, tri := range tr.Triangles {
			used[tri.A], used[tri.B], used[tri.C] = true, true, true
		}
		for _, u := range used {
			if !u {
				return false
			}
		}
		// Determinism.
		tr2, err := Delaunay(pts)
		if err != nil || len(tr2.Triangles) != len(tr.Triangles) {
			return false
		}
		for i := range tr.Triangles {
			if tr.Triangles[i] != tr2.Triangles[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: in-circle is symmetric under cyclic rotation of the triangle.
func TestQuickInCircleCyclic(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0.5
			}
			return math.Mod(math.Abs(v), 10)
		}
		a := Point{clamp(ax), clamp(ay)}
		b := Point{clamp(bx), clamp(by)}
		c := Point{clamp(cx), clamp(cy)}
		d := Point{clamp(dx), clamp(dy)}
		if math.Abs(Orient(a, b, c)) < 1e-9 {
			return true // skip degenerate triangles
		}
		r1 := InCircle(a, b, c, d)
		r2 := InCircle(b, c, a, d)
		r3 := InCircle(c, a, b, d)
		return r1 == r2 && r2 == r3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
