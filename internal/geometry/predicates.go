// Package geometry provides the 2-D computational-geometry substrate for the
// mesh generators: points, orientation/in-circle predicates, and a
// Bowyer–Watson Delaunay triangulation.
//
// The paper evaluates on small unstructured computational meshes (78–309
// nodes) that were never published. Delaunay triangulations of random point
// sets are the standard synthetic stand-in: planar, irregular, with the
// spatial locality that KNUX exploits.
package geometry

import "math"

// Point is a point in the plane.
type Point struct {
	X, Y float64
}

// Sub returns p - q as a vector.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Dist2 returns the squared Euclidean distance between p and q.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Sqrt(p.Dist2(q)) }

// Orient returns a positive value if a, b, c are in counter-clockwise order,
// negative if clockwise, and zero if collinear. It is the standard 2x2
// determinant; inputs from the mesh generators are random floats, so exact
// degeneracy is measure-zero and an epsilon guard suffices.
func Orient(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// InCircle reports whether point d lies strictly inside the circumcircle of
// the counter-clockwise triangle (a, b, c). It evaluates the standard 3x3
// lifted determinant.
func InCircle(a, b, c, d Point) bool {
	ax, ay := a.X-d.X, a.Y-d.Y
	bx, by := b.X-d.X, b.Y-d.Y
	cx, cy := c.X-d.X, c.Y-d.Y
	det := (ax*ax+ay*ay)*(bx*cy-cx*by) -
		(bx*bx+by*by)*(ax*cy-cx*ay) +
		(cx*cx+cy*cy)*(ax*by-bx*ay)
	return det > 0
}

// Circumcenter returns the center of the circle through a, b, c, and whether
// it is well-defined (false when the points are nearly collinear).
func Circumcenter(a, b, c Point) (Point, bool) {
	d := 2 * Orient(a, b, c)
	if math.Abs(d) < 1e-18 {
		return Point{}, false
	}
	a2 := a.X*a.X + a.Y*a.Y
	b2 := b.X*b.X + b.Y*b.Y
	c2 := c.X*c.X + c.Y*c.Y
	ux := (a2*(b.Y-c.Y) + b2*(c.Y-a.Y) + c2*(a.Y-b.Y)) / d
	uy := (a2*(c.X-b.X) + b2*(a.X-c.X) + c2*(b.X-a.X)) / d
	return Point{ux, uy}, true
}

// BBox is an axis-aligned bounding box.
type BBox struct {
	Min, Max Point
}

// Bounds returns the bounding box of pts. It panics on an empty slice.
func Bounds(pts []Point) BBox {
	if len(pts) == 0 {
		panic("geometry: Bounds of empty point set")
	}
	bb := BBox{pts[0], pts[0]}
	for _, p := range pts[1:] {
		bb.Min.X = math.Min(bb.Min.X, p.X)
		bb.Min.Y = math.Min(bb.Min.Y, p.Y)
		bb.Max.X = math.Max(bb.Max.X, p.X)
		bb.Max.Y = math.Max(bb.Max.Y, p.Y)
	}
	return bb
}

// Width returns the horizontal extent of the box.
func (b BBox) Width() float64 { return b.Max.X - b.Min.X }

// Height returns the vertical extent of the box.
func (b BBox) Height() float64 { return b.Max.Y - b.Min.Y }

// Center returns the center of the box.
func (b BBox) Center() Point {
	return Point{(b.Min.X + b.Max.X) / 2, (b.Min.Y + b.Max.Y) / 2}
}

// Contains reports whether p is inside the closed box.
func (b BBox) Contains(p Point) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X && p.Y >= b.Min.Y && p.Y <= b.Max.Y
}
