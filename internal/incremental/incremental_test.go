package incremental

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/algo"
	"repro/internal/gen"
	"repro/internal/partition"
	"repro/internal/spectral"
)

func TestRepartitionBasics(t *testing.T) {
	base := gen.Mesh(78, 11)
	rng := rand.New(rand.NewSource(7))
	grown := gen.Refine(base, 10, rng)
	old, err := spectral.Partition(base, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Repartition(grown, old, Config{
		Parts:       4,
		Generations: 15,
		TotalPop:    48,
		Islands:     1,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(grown); err != nil {
		t.Fatal(err)
	}
	if got.Parts != 4 {
		t.Errorf("parts = %d", got.Parts)
	}
}

func TestRepartitionBeatsMajorityNeighbor(t *testing.T) {
	// The paper's claim: incremental DKNUX beats the deterministic rule.
	// Because the deterministic extension seeds the GA population, the GA
	// result can never be worse; assert it is at least as good and usually
	// strictly better.
	base := gen.Mesh(118, 11)
	rng := rand.New(rand.NewSource(9))
	grown := gen.Refine(base, 21, rng)
	old, err := spectral.Partition(base, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	det := MajorityNeighbor(grown, old)
	gaPart, err := Repartition(grown, old, Config{
		Parts:       4,
		Generations: 30,
		TotalPop:    64,
		Islands:     4,
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	fDet := det.Fitness(grown, partition.TotalCut)
	fGA := gaPart.Fitness(grown, partition.TotalCut)
	if fGA < fDet {
		t.Errorf("GA fitness %v worse than deterministic %v", fGA, fDet)
	}
}

func TestRepartitionErrors(t *testing.T) {
	base := gen.Mesh(50, 1)
	rng := rand.New(rand.NewSource(1))
	grown := gen.Refine(base, 5, rng)
	old := partition.New(50, 4)
	// Mismatched parts.
	if _, err := Repartition(grown, old, Config{Parts: 8, Generations: 1, TotalPop: 8, Islands: 1}); err == nil {
		t.Error("mismatched parts accepted")
	}
	// Old partition larger than grown graph.
	big := partition.New(100, 4)
	if _, err := Repartition(grown, big, Config{Generations: 1, TotalPop: 8, Islands: 1}); err == nil {
		t.Error("oversized old partition accepted")
	}
}

func TestRepartitionDefaultPartsFromOld(t *testing.T) {
	base := gen.Mesh(50, 2)
	rng := rand.New(rand.NewSource(2))
	grown := gen.Refine(base, 5, rng)
	old, err := spectral.Partition(base, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Repartition(grown, old, Config{Generations: 5, TotalPop: 16, Islands: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got.Parts != 4 {
		t.Errorf("parts defaulted to %d, want 4 (from old partition)", got.Parts)
	}
}

func TestRSBFromScratch(t *testing.T) {
	base := gen.Mesh(60, 3)
	rng := rand.New(rand.NewSource(3))
	grown := gen.Refine(base, 8, rng)
	p, err := RSBFromScratch(grown, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(grown); err != nil {
		t.Fatal(err)
	}
}

// The from-scratch baseline goes through the unified registry, so it inherits
// the registry's option handling — one config struct, no drifting duplicate
// fields — including objective support and constraint validation.
func TestFromScratchRegistryPath(t *testing.T) {
	base := gen.Mesh(60, 3)
	rng := rand.New(rand.NewSource(3))
	grown := gen.Refine(base, 8, rng)

	p, err := FromScratch(grown, "multilevel-kl", algo.Options{Parts: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(grown); err != nil {
		t.Fatal(err)
	}
	// Registry validation applies: unknown names and unsupported objectives
	// fail loudly instead of silently optimizing something else.
	if _, err := FromScratch(grown, "no-such-algo", algo.Options{Parts: 4}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := FromScratch(grown, "grow", algo.Options{Parts: 4, Objective: partition.CommVolume}); err == nil ||
		!strings.Contains(err.Error(), "does not support objective") {
		t.Errorf("grow+commvol: got %v, want unsupported-objective error", err)
	}
	// RSBFromScratch is the same path with the historical signature.
	a, err := RSBFromScratch(grown, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromScratch(grown, "rsb", algo.Options{Parts: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Assign {
		if a.Assign[v] != b.Assign[v] {
			t.Fatal("RSBFromScratch diverged from the registry rsb path")
		}
	}
}

// Options supersedes the deprecated flat fields: the same run configured
// either way must produce the identical partition, and an explicit Options
// field wins over a conflicting deprecated one.
func TestConfigOptionsSupersedeDeprecatedFields(t *testing.T) {
	base := gen.Mesh(78, 11)
	rng := rand.New(rand.NewSource(17))
	grown := gen.Refine(base, 10, rng)
	old, err := spectral.Partition(base, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Repartition(grown, old, Config{
		Parts: 4, Generations: 10, TotalPop: 32, Islands: 4, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	viaOptions, err := Repartition(grown, old, Config{
		Options: algo.Options{Parts: 4, Generations: 10, PopSize: 32, Islands: 4, Seed: 23},
		// Conflicting deprecated fields must lose to the Options above.
		Generations: 99, TotalPop: 8, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := range flat.Assign {
		if flat.Assign[v] != viaOptions.Assign[v] {
			t.Fatal("Options-configured run diverged from deprecated-field run")
		}
	}
}

func TestMovedNodes(t *testing.T) {
	a := partition.New(5, 2)
	b := partition.New(5, 2)
	if MovedNodes(a, b) != 0 {
		t.Error("identical partitions report moves")
	}
	b.Assign[1] = 1
	b.Assign[3] = 1
	if got := MovedNodes(a, b); got != 2 {
		t.Errorf("MovedNodes = %d, want 2", got)
	}
	// Different lengths: compare the common prefix.
	c := partition.New(3, 2)
	c.Assign[0] = 1
	if got := MovedNodes(a, c); got != 1 {
		t.Errorf("MovedNodes mixed lengths = %d, want 1", got)
	}
}

func TestIncrementalMovesFewNodes(t *testing.T) {
	// Incremental repartitioning should disturb far fewer original nodes
	// than repartitioning from scratch (that is its point).
	base := gen.Mesh(118, 11)
	rng := rand.New(rand.NewSource(13))
	grown := gen.Refine(base, 21, rng)
	old, err := spectral.Partition(base, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	gaPart, err := Repartition(grown, old, Config{
		Generations: 20, TotalPop: 64, Islands: 4, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := RSBFromScratch(grown, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	gaMoved := MovedNodes(old, gaPart)
	scratchMoved := MovedNodes(old, scratch)
	// RSB from scratch has no reason to preserve labels; the GA does
	// (it starts from the old partition). Allow slack but expect a clear gap.
	if gaMoved >= scratchMoved {
		t.Logf("ga moved %d, scratch moved %d (labels may coincide by luck)", gaMoved, scratchMoved)
	}
	if gaMoved > grown.NumNodes()/2 {
		t.Errorf("incremental GA moved %d of %d nodes — not incremental", gaMoved, grown.NumNodes())
	}
}

func TestRepartitionDeterministic(t *testing.T) {
	base := gen.Mesh(78, 11)
	rng := rand.New(rand.NewSource(17))
	grown := gen.Refine(base, 10, rng)
	old, err := spectral.Partition(base, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Generations: 10, TotalPop: 32, Islands: 4, Seed: 23}
	a, err := Repartition(grown, old, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Repartition(grown, old, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Assign {
		if a.Assign[v] != b.Assign[v] {
			t.Fatal("Repartition not deterministic")
		}
	}
}
