package incremental

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/partition"
	"repro/internal/spectral"
)

func TestRepartitionBasics(t *testing.T) {
	base := gen.Mesh(78, 11)
	rng := rand.New(rand.NewSource(7))
	grown := gen.Refine(base, 10, rng)
	old, err := spectral.Partition(base, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Repartition(grown, old, Config{
		Parts:       4,
		Generations: 15,
		TotalPop:    48,
		Islands:     1,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(grown); err != nil {
		t.Fatal(err)
	}
	if got.Parts != 4 {
		t.Errorf("parts = %d", got.Parts)
	}
}

func TestRepartitionBeatsMajorityNeighbor(t *testing.T) {
	// The paper's claim: incremental DKNUX beats the deterministic rule.
	// Because the deterministic extension seeds the GA population, the GA
	// result can never be worse; assert it is at least as good and usually
	// strictly better.
	base := gen.Mesh(118, 11)
	rng := rand.New(rand.NewSource(9))
	grown := gen.Refine(base, 21, rng)
	old, err := spectral.Partition(base, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	det := MajorityNeighbor(grown, old)
	gaPart, err := Repartition(grown, old, Config{
		Parts:       4,
		Generations: 30,
		TotalPop:    64,
		Islands:     4,
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	fDet := det.Fitness(grown, partition.TotalCut)
	fGA := gaPart.Fitness(grown, partition.TotalCut)
	if fGA < fDet {
		t.Errorf("GA fitness %v worse than deterministic %v", fGA, fDet)
	}
}

func TestRepartitionErrors(t *testing.T) {
	base := gen.Mesh(50, 1)
	rng := rand.New(rand.NewSource(1))
	grown := gen.Refine(base, 5, rng)
	old := partition.New(50, 4)
	// Mismatched parts.
	if _, err := Repartition(grown, old, Config{Parts: 8, Generations: 1, TotalPop: 8, Islands: 1}); err == nil {
		t.Error("mismatched parts accepted")
	}
	// Old partition larger than grown graph.
	big := partition.New(100, 4)
	if _, err := Repartition(grown, big, Config{Generations: 1, TotalPop: 8, Islands: 1}); err == nil {
		t.Error("oversized old partition accepted")
	}
}

func TestRepartitionDefaultPartsFromOld(t *testing.T) {
	base := gen.Mesh(50, 2)
	rng := rand.New(rand.NewSource(2))
	grown := gen.Refine(base, 5, rng)
	old, err := spectral.Partition(base, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Repartition(grown, old, Config{Generations: 5, TotalPop: 16, Islands: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got.Parts != 4 {
		t.Errorf("parts defaulted to %d, want 4 (from old partition)", got.Parts)
	}
}

func TestRSBFromScratch(t *testing.T) {
	base := gen.Mesh(60, 3)
	rng := rand.New(rand.NewSource(3))
	grown := gen.Refine(base, 8, rng)
	p, err := RSBFromScratch(grown, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(grown); err != nil {
		t.Fatal(err)
	}
}

func TestMovedNodes(t *testing.T) {
	a := partition.New(5, 2)
	b := partition.New(5, 2)
	if MovedNodes(a, b) != 0 {
		t.Error("identical partitions report moves")
	}
	b.Assign[1] = 1
	b.Assign[3] = 1
	if got := MovedNodes(a, b); got != 2 {
		t.Errorf("MovedNodes = %d, want 2", got)
	}
	// Different lengths: compare the common prefix.
	c := partition.New(3, 2)
	c.Assign[0] = 1
	if got := MovedNodes(a, c); got != 1 {
		t.Errorf("MovedNodes mixed lengths = %d, want 1", got)
	}
}

func TestIncrementalMovesFewNodes(t *testing.T) {
	// Incremental repartitioning should disturb far fewer original nodes
	// than repartitioning from scratch (that is its point).
	base := gen.Mesh(118, 11)
	rng := rand.New(rand.NewSource(13))
	grown := gen.Refine(base, 21, rng)
	old, err := spectral.Partition(base, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	gaPart, err := Repartition(grown, old, Config{
		Generations: 20, TotalPop: 64, Islands: 4, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := RSBFromScratch(grown, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	gaMoved := MovedNodes(old, gaPart)
	scratchMoved := MovedNodes(old, scratch)
	// RSB from scratch has no reason to preserve labels; the GA does
	// (it starts from the old partition). Allow slack but expect a clear gap.
	if gaMoved >= scratchMoved {
		t.Logf("ga moved %d, scratch moved %d (labels may coincide by luck)", gaMoved, scratchMoved)
	}
	if gaMoved > grown.NumNodes()/2 {
		t.Errorf("incremental GA moved %d of %d nodes — not incremental", gaMoved, grown.NumNodes())
	}
}

func TestRepartitionDeterministic(t *testing.T) {
	base := gen.Mesh(78, 11)
	rng := rand.New(rand.NewSource(17))
	grown := gen.Refine(base, 10, rng)
	old, err := spectral.Partition(base, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Generations: 10, TotalPop: 32, Islands: 4, Seed: 23}
	a, err := Repartition(grown, old, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Repartition(grown, old, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Assign {
		if a.Assign[v] != b.Assign[v] {
			t.Fatal("Repartition not deterministic")
		}
	}
}
