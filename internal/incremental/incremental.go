// Package incremental implements the paper's incremental graph partitioning
// (§3.5, §4.2): when a partitioned graph grows — nodes added in a local area,
// as in adaptive mesh refinement — the previous partition seeds the GA
// population for the grown graph, and the GA repairs the partition far more
// cheaply (and better) than repartitioning from scratch.
//
// Three strategies are provided for comparison, matching the paper's
// Tables 3 and 6:
//
//   - GA (DKNUX) seeded with the carried-over partition,
//   - RSB from scratch on the grown graph (the paper's baseline), and
//   - the deterministic majority-neighbor rule (which the paper notes the GA
//     beats: "results ... could not be obtained by a simple deterministic
//     algorithm that assigns new nodes to the part to which most of its
//     nearest neighbors belong").
package incremental

import (
	"fmt"
	"math/rand"

	"repro/internal/algo"
	"repro/internal/dpga"
	"repro/internal/ga"
	"repro/internal/graph"
	"repro/internal/partition"
)

// Config parameterizes an incremental GA repartitioning.
//
// Options is the single source of truth for the knobs the unified registry
// also understands (parts, objective, generations, population, islands,
// eval workers, seed) — set it and leave the deprecated flat fields zero.
// Before Options existed this package duplicated those fields and they
// silently drifted from algo.Options (the stale-config bug); they are kept
// only so existing callers keep compiling, and any non-zero flat field fills
// in the corresponding unset Options field.
type Config struct {
	// Options carries the registry-style configuration. Options.PopSize is
	// the TOTAL population across islands (dpga divides it).
	Options algo.Options

	// Deprecated: set Options.Parts.
	Parts int
	// Deprecated: set Options.Objective.
	Objective partition.Objective
	// Deprecated: set Options.Generations.
	Generations int
	// Deprecated: set Options.PopSize.
	TotalPop int
	// Deprecated: set Options.Islands.
	Islands int
	// Deprecated: set Options.EvalWorkers.
	EvalWorkers int
	// Deprecated: set Options.Seed.
	Seed int64

	// SeedCopies is how many distinct balance-repaired extensions of the old
	// partition seed the population; default 8.
	SeedCopies int

	HillClimb bool // apply boundary hill climbing to offspring
}

// effective merges the deprecated flat fields into Options (an unset Options
// field inherits a non-zero flat one) and applies the paper defaults.
func (c *Config) effective() (algo.Options, int) {
	o := c.Options
	if o.Parts == 0 {
		o.Parts = c.Parts
	}
	if o.Objective == partition.TotalCut {
		o.Objective = c.Objective
	}
	if o.Generations == 0 {
		o.Generations = c.Generations
	}
	if o.PopSize == 0 {
		o.PopSize = c.TotalPop
	}
	if o.Islands == 0 {
		o.Islands = c.Islands
	}
	if o.EvalWorkers == 0 {
		o.EvalWorkers = c.EvalWorkers
	}
	if o.Seed == 0 {
		o.Seed = c.Seed
	}
	if o.Generations == 0 {
		o.Generations = 80
	}
	if o.PopSize == 0 {
		o.PopSize = 320
	}
	if o.Islands == 0 {
		o.Islands = 16 // 4-d hypercube; 1 selects a single population
	}
	copies := c.SeedCopies
	if copies == 0 {
		copies = 8
	}
	return o, copies
}

// Repartition repairs oldPart (a partition of the original graph) for the
// grown graph using the DKNUX GA. The grown graph must contain the original
// nodes with unchanged indices (as gen.Refine guarantees).
func Repartition(grown *graph.Graph, oldPart *partition.Partition, cfg Config) (*partition.Partition, error) {
	o, seedCopies := cfg.effective()
	if o.Parts == 0 {
		o.Parts = oldPart.Parts
	}
	if o.Parts != oldPart.Parts {
		return nil, fmt.Errorf("incremental: config wants %d parts, old partition has %d", o.Parts, oldPart.Parts)
	}
	if len(oldPart.Assign) > grown.NumNodes() {
		return nil, fmt.Errorf("incremental: old partition covers %d nodes, grown graph has %d",
			len(oldPart.Assign), grown.NumNodes())
	}
	rng := rand.New(rand.NewSource(o.Seed))

	// Seed population: several independent balance-repaired extensions of
	// the old partition (§3.5: "the previous partitioning can itself be used
	// ... by randomly assigning new graph nodes ... while at the same time
	// ensuring that balance is maintained").
	// The deterministic extension seeds the pool first, so it enters the
	// population even under tiny island sizes: the GA can then never be
	// worse than the baseline it is compared against.
	seeds := make([]*partition.Partition, 0, seedCopies+1)
	seeds = append(seeds, partition.ExtendMajorityNeighbor(oldPart, grown))
	for i := 0; i < seedCopies; i++ {
		seeds = append(seeds, partition.ExtendRandomBalanced(oldPart, grown, rng))
	}

	base := ga.Config{
		Parts:       o.Parts,
		Objective:   o.Objective,
		PopSize:     o.PopSize,
		Seeds:       seeds,
		HillClimb:   cfg.HillClimb,
		EvalWorkers: o.EvalWorkers,
		Seed:        o.Seed,
	}
	if o.Islands <= 1 {
		est := seeds[0]
		base.Crossover = ga.NewDKNUX(est)
		e, err := ga.New(grown, base)
		if err != nil {
			return nil, err
		}
		return e.Run(o.Generations).Part, nil
	}
	m, err := dpga.New(grown, dpga.Config{
		Base:    base,
		Islands: o.Islands,
		CrossoverFactory: func(island int) ga.Crossover {
			return ga.NewDKNUX(seeds[island%len(seeds)])
		},
	})
	if err != nil {
		return nil, err
	}
	return m.Run(o.Generations).Part, nil
}

// FromScratch partitions the grown graph with any registry algorithm,
// ignoring the old partition — the from-scratch comparison column, run
// through the same registry path (and therefore the same objective and
// constraint validation) as every other consumer.
func FromScratch(grown *graph.Graph, algoName string, opts algo.Options) (*partition.Partition, error) {
	return algo.Run(grown, algoName, opts)
}

// RSBFromScratch partitions the grown graph with recursive spectral
// bisection, ignoring the old partition — the paper's comparison column.
// It is FromScratch("rsb", ...) with the historical signature.
func RSBFromScratch(grown *graph.Graph, parts int, seed int64) (*partition.Partition, error) {
	return FromScratch(grown, "rsb", algo.Options{Parts: parts, Seed: seed})
}

// MajorityNeighbor extends oldPart with the deterministic rule only
// (no GA) — the paper's "simple deterministic algorithm" straw man.
func MajorityNeighbor(grown *graph.Graph, oldPart *partition.Partition) *partition.Partition {
	return partition.ExtendMajorityNeighbor(oldPart, grown)
}

// MovedNodes counts how many original nodes changed parts between the old
// partition and the repaired one: the remapping cost that incremental
// partitioning tries to keep low (data migration in the parallel
// application).
func MovedNodes(oldPart, newPart *partition.Partition) int {
	n := len(oldPart.Assign)
	if len(newPart.Assign) < n {
		n = len(newPart.Assign)
	}
	moved := 0
	for v := 0; v < n; v++ {
		if oldPart.Assign[v] != newPart.Assign[v] {
			moved++
		}
	}
	return moved
}
