// Package incremental implements the paper's incremental graph partitioning
// (§3.5, §4.2): when a partitioned graph grows — nodes added in a local area,
// as in adaptive mesh refinement — the previous partition seeds the GA
// population for the grown graph, and the GA repairs the partition far more
// cheaply (and better) than repartitioning from scratch.
//
// Three strategies are provided for comparison, matching the paper's
// Tables 3 and 6:
//
//   - GA (DKNUX) seeded with the carried-over partition,
//   - RSB from scratch on the grown graph (the paper's baseline), and
//   - the deterministic majority-neighbor rule (which the paper notes the GA
//     beats: "results ... could not be obtained by a simple deterministic
//     algorithm that assigns new nodes to the part to which most of its
//     nearest neighbors belong").
package incremental

import (
	"fmt"
	"math/rand"

	"repro/internal/dpga"
	"repro/internal/ga"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/spectral"
)

// Config parameterizes an incremental GA repartitioning.
type Config struct {
	Parts     int
	Objective partition.Objective

	Generations int // GA budget; default 80

	// DPGA configuration (the paper runs all experiments under DPGA).
	TotalPop int // default 320
	Islands  int // default 16 (4-d hypercube); 1 selects a single population

	// SeedCopies is how many distinct balance-repaired extensions of the old
	// partition seed the population; default 8.
	SeedCopies int

	HillClimb bool // apply boundary hill climbing to offspring

	// EvalWorkers is the per-engine parallel fitness-evaluation width
	// (see ga.Config.EvalWorkers); 0 lets the engine / island model choose.
	EvalWorkers int

	Seed int64 // RNG seed
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Generations == 0 {
		out.Generations = 80
	}
	if out.TotalPop == 0 {
		out.TotalPop = 320
	}
	if out.Islands == 0 {
		out.Islands = 16
	}
	if out.SeedCopies == 0 {
		out.SeedCopies = 8
	}
	return out
}

// Repartition repairs oldPart (a partition of the original graph) for the
// grown graph using the DKNUX GA. The grown graph must contain the original
// nodes with unchanged indices (as gen.Refine guarantees).
func Repartition(grown *graph.Graph, oldPart *partition.Partition, cfg Config) (*partition.Partition, error) {
	c := cfg.withDefaults()
	if c.Parts == 0 {
		c.Parts = oldPart.Parts
	}
	if c.Parts != oldPart.Parts {
		return nil, fmt.Errorf("incremental: config wants %d parts, old partition has %d", c.Parts, oldPart.Parts)
	}
	if len(oldPart.Assign) > grown.NumNodes() {
		return nil, fmt.Errorf("incremental: old partition covers %d nodes, grown graph has %d",
			len(oldPart.Assign), grown.NumNodes())
	}
	rng := rand.New(rand.NewSource(c.Seed))

	// Seed population: several independent balance-repaired extensions of
	// the old partition (§3.5: "the previous partitioning can itself be used
	// ... by randomly assigning new graph nodes ... while at the same time
	// ensuring that balance is maintained").
	// The deterministic extension seeds the pool first, so it enters the
	// population even under tiny island sizes: the GA can then never be
	// worse than the baseline it is compared against.
	seeds := make([]*partition.Partition, 0, c.SeedCopies+1)
	seeds = append(seeds, partition.ExtendMajorityNeighbor(oldPart, grown))
	for i := 0; i < c.SeedCopies; i++ {
		seeds = append(seeds, partition.ExtendRandomBalanced(oldPart, grown, rng))
	}

	base := ga.Config{
		Parts:       c.Parts,
		Objective:   c.Objective,
		PopSize:     c.TotalPop,
		Seeds:       seeds,
		HillClimb:   c.HillClimb,
		EvalWorkers: c.EvalWorkers,
		Seed:        c.Seed,
	}
	if c.Islands <= 1 {
		est := seeds[0]
		base.Crossover = ga.NewDKNUX(est)
		e, err := ga.New(grown, base)
		if err != nil {
			return nil, err
		}
		return e.Run(c.Generations).Part, nil
	}
	m, err := dpga.New(grown, dpga.Config{
		Base:    base,
		Islands: c.Islands,
		CrossoverFactory: func(island int) ga.Crossover {
			return ga.NewDKNUX(seeds[island%len(seeds)])
		},
	})
	if err != nil {
		return nil, err
	}
	return m.Run(c.Generations).Part, nil
}

// RSBFromScratch partitions the grown graph with recursive spectral
// bisection, ignoring the old partition — the paper's comparison column.
func RSBFromScratch(grown *graph.Graph, parts int, seed int64) (*partition.Partition, error) {
	return spectral.Partition(grown, parts, rand.New(rand.NewSource(seed)))
}

// MajorityNeighbor extends oldPart with the deterministic rule only
// (no GA) — the paper's "simple deterministic algorithm" straw man.
func MajorityNeighbor(grown *graph.Graph, oldPart *partition.Partition) *partition.Partition {
	return partition.ExtendMajorityNeighbor(oldPart, grown)
}

// MovedNodes counts how many original nodes changed parts between the old
// partition and the repaired one: the remapping cost that incremental
// partitioning tries to keep low (data migration in the parallel
// application).
func MovedNodes(oldPart, newPart *partition.Partition) int {
	n := len(oldPart.Assign)
	if len(newPart.Assign) < n {
		n = len(newPart.Assign)
	}
	moved := 0
	for v := 0; v < n; v++ {
		if oldPart.Assign[v] != newPart.Assign[v] {
			moved++
		}
	}
	return moved
}
