package viz

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
)

func TestWriteSVGBasics(t *testing.T) {
	g := gen.Mesh(40, 1)
	rng := rand.New(rand.NewSource(1))
	p := partition.RandomBalanced(40, 4, rng)
	var sb strings.Builder
	if err := WriteSVG(&sb, g, p, Options{ShowCutEdges: true}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Error("not a complete SVG document")
	}
	if c := strings.Count(out, "<circle"); c != 40 {
		t.Errorf("%d circles, want 40", c)
	}
	if c := strings.Count(out, "<line"); c != g.NumEdges() {
		t.Errorf("%d lines, want %d edges", c, g.NumEdges())
	}
	// Cut edges present (random partition certainly cuts something) and
	// rendered in the emphasis color.
	if !strings.Contains(out, "#d62728") {
		t.Error("no emphasized cut edges in a random partition")
	}
	if !strings.Contains(out, "parts=4") {
		t.Error("legend missing")
	}
}

func TestWriteSVGWithoutPartition(t *testing.T) {
	g := gen.Mesh(20, 2)
	var sb strings.Builder
	if err := WriteSVG(&sb, g, nil, Options{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "parts=") {
		t.Error("legend rendered without a partition")
	}
}

func TestWriteSVGErrors(t *testing.T) {
	// No coordinates.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1, 1)
	var sb strings.Builder
	if err := WriteSVG(&sb, b.Build(), nil, Options{}); err == nil {
		t.Error("coordinate-free graph accepted")
	}
	// Invalid partition.
	g := gen.Mesh(10, 3)
	bad := partition.New(5, 2)
	if err := WriteSVG(&sb, g, bad, Options{}); err == nil {
		t.Error("mismatched partition accepted")
	}
}

func TestWriteSVGDeterministic(t *testing.T) {
	g := gen.Mesh(30, 5)
	rng := rand.New(rand.NewSource(7))
	p := partition.RandomBalanced(30, 2, rng)
	var a, b strings.Builder
	if err := WriteSVG(&a, g, p, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := WriteSVG(&b, g, p, Options{}); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same input produced different SVG")
	}
}

func TestWriteSVGPropagatesWriteError(t *testing.T) {
	g := gen.Mesh(30, 8)
	w := &limitedWriter{limit: 100}
	if err := WriteSVG(w, g, nil, Options{}); err == nil {
		t.Error("write error swallowed")
	}
}

type limitedWriter struct {
	limit   int
	written int
}

type errFull struct{}

func (errFull) Error() string { return "full" }

func (w *limitedWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.limit {
		return 0, errFull{}
	}
	w.written += len(p)
	return len(p), nil
}
