// Package viz renders geometric graphs and their partitions as SVG, so
// partition quality is inspectable by eye: nodes are colored by part, cut
// edges drawn emphasized. Stdlib only; output is deterministic for a given
// graph and partition.
package viz

import (
	"fmt"
	"io"

	"repro/internal/graph"
	"repro/internal/partition"
)

// palette holds visually distinct part colors (repeats past 16 parts).
var palette = []string{
	"#1f77b4", "#ff7f0e", "#2ca02c", "#d62728",
	"#9467bd", "#8c564b", "#e377c2", "#7f7f7f",
	"#bcbd22", "#17becf", "#aec7e8", "#ffbb78",
	"#98df8a", "#ff9896", "#c5b0d5", "#c49c94",
}

// Options controls rendering.
type Options struct {
	Width, Height int     // canvas size in px; default 800x800
	NodeRadius    float64 // default scaled by node count
	ShowCutEdges  bool    // draw cut edges in red (default styling: thin grey)
}

func (o *Options) withDefaults(n int) Options {
	out := *o
	if out.Width == 0 {
		out.Width = 800
	}
	if out.Height == 0 {
		out.Height = 800
	}
	if out.NodeRadius == 0 {
		out.NodeRadius = 10.0 / (1 + float64(n)/150)
		if out.NodeRadius < 2 {
			out.NodeRadius = 2
		}
	}
	return out
}

// WriteSVG renders g with partition p (nil p renders an uncolored graph) to
// w. The graph must carry coordinates.
func WriteSVG(w io.Writer, g *graph.Graph, p *partition.Partition, opts Options) error {
	if !g.HasCoords() {
		return fmt.Errorf("viz: graph has no coordinates")
	}
	if p != nil {
		if err := p.Validate(g); err != nil {
			return fmt.Errorf("viz: %w", err)
		}
	}
	n := g.NumNodes()
	o := opts.withDefaults(n)

	// Map coordinates to the canvas with a margin.
	const margin = 20.0
	minX, minY := 0.0, 0.0
	maxX, maxY := 1.0, 1.0
	if n > 0 {
		c0 := g.Coord(0)
		minX, maxX, minY, maxY = c0.X, c0.X, c0.Y, c0.Y
		for v := 1; v < n; v++ {
			c := g.Coord(v)
			if c.X < minX {
				minX = c.X
			}
			if c.X > maxX {
				maxX = c.X
			}
			if c.Y < minY {
				minY = c.Y
			}
			if c.Y > maxY {
				maxY = c.Y
			}
		}
	}
	spanX, spanY := maxX-minX, maxY-minY
	if spanX == 0 {
		spanX = 1
	}
	if spanY == 0 {
		spanY = 1
	}
	px := func(v int) (float64, float64) {
		c := g.Coord(v)
		x := margin + (c.X-minX)/spanX*(float64(o.Width)-2*margin)
		y := margin + (c.Y-minY)/spanY*(float64(o.Height)-2*margin)
		return x, y
	}

	var err error
	emit := func(format string, args ...interface{}) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	emit(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		o.Width, o.Height, o.Width, o.Height)
	emit(`<rect width="100%%" height="100%%" fill="white"/>` + "\n")

	// Edges first (under the nodes): internal thin grey, cut red if asked.
	g.Edges(func(u, v int, wt float64) bool {
		x1, y1 := px(u)
		x2, y2 := px(v)
		style := `stroke="#cccccc" stroke-width="0.7"`
		if p != nil && p.Assign[u] != p.Assign[v] {
			if o.ShowCutEdges {
				style = `stroke="#d62728" stroke-width="1.4"`
			} else {
				style = `stroke="#999999" stroke-width="0.7" stroke-dasharray="3,2"`
			}
		}
		emit(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" %s/>`+"\n", x1, y1, x2, y2, style)
		return err == nil
	})
	if err != nil {
		return err
	}
	for v := 0; v < n; v++ {
		x, y := px(v)
		fill := "#444444"
		if p != nil {
			fill = palette[int(p.Assign[v])%len(palette)]
		}
		emit(`<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s" stroke="black" stroke-width="0.4"/>`+"\n",
			x, y, o.NodeRadius, fill)
	}
	// Legend with part sizes and the objective values, computed through the
	// same objective evaluation the refiners optimize.
	if p != nil {
		emit(`<text x="%d" y="14" font-family="monospace" font-size="12">parts=%d cut=%.0f worst=%.0f commvol=%.0f</text>`+"\n",
			8, p.Parts,
			p.ObjectiveValue(g, partition.TotalCut),
			p.ObjectiveValue(g, partition.WorstCut),
			p.ObjectiveValue(g, partition.CommVolume))
	}
	emit("</svg>\n")
	return err
}
