package paperdata

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bench"
)

// Comparison is the outcome of matching one regenerated table against the
// paper's published numbers.
type Comparison struct {
	TableID string
	// Rows: one line per (group, parts) cell with both methods' paper and
	// measured values plus who won in each.
	Rows []ComparisonRow
	// ShapeAgreement is the fraction of comparable cells where the winner
	// (DKNUX vs RSB, with ties counting as agreement with either) matches
	// the paper.
	ShapeAgreement float64
}

// ComparisonRow is one cell of the comparison.
type ComparisonRow struct {
	Group                   string
	Parts                   int
	PaperDKNUX, PaperRSB    float64
	MeasDKNUX, MeasRSB      float64
	PaperWinner, MeasWinner string
	Agree                   bool
}

// Compare matches a regenerated bench.Table against the paper's data for
// the same table number. Measured rows are located by method substring
// ("DKNUX", "RSB") in the row label. Cells missing on either side are
// skipped.
func Compare(tableNum int, measured bench.Table) Comparison {
	paper, ok := Tables[tableNum]
	cmp := Comparison{TableID: measured.ID}
	if !ok {
		return cmp
	}
	agree, comparable := 0, 0
	for _, g := range measured.Groups {
		pv, ok := paper.Values[g.Label]
		if !ok {
			continue
		}
		var mD, mR []float64
		for _, r := range g.Rows {
			switch {
			case strings.Contains(r.Label, "DKNUX"):
				mD = r.Values
			case strings.Contains(r.Label, "RSB"):
				mR = r.Values
			}
		}
		if mD == nil || mR == nil {
			continue
		}
		for i, parts := range measured.Parts {
			if i >= len(paper.Parts) || paper.Parts[i] != parts {
				continue
			}
			pd, pr := pv["DKNUX"][i], pv["RSB"][i]
			row := ComparisonRow{
				Group: g.Label, Parts: parts,
				PaperDKNUX: pd, PaperRSB: pr,
				MeasDKNUX: mD[i], MeasRSB: mR[i],
				PaperWinner: winnerOf(pd, pr),
				MeasWinner:  winnerOf(mD[i], mR[i]),
			}
			if row.PaperWinner != "n/a" {
				comparable++
				row.Agree = row.PaperWinner == row.MeasWinner ||
					row.PaperWinner == "tie" || row.MeasWinner == "tie"
				if row.Agree {
					agree++
				}
			}
			cmp.Rows = append(cmp.Rows, row)
		}
	}
	if comparable > 0 {
		cmp.ShapeAgreement = float64(agree) / float64(comparable)
	}
	return cmp
}

func winnerOf(d, r float64) string {
	switch {
	case d < 0 || r < 0:
		return "n/a"
	case d < r:
		return "DKNUX"
	case r < d:
		return "RSB"
	default:
		return "tie"
	}
}

// Format renders the comparison as an aligned text block.
func (c Comparison) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — measured vs paper (winner per cell)\n", c.TableID)
	fmt.Fprintf(&sb, "%-22s %5s | %8s %8s %7s | %8s %8s %7s | %s\n",
		"graph", "parts", "paperDK", "paperRSB", "pWin", "measDK", "measRSB", "mWin", "agree")
	rows := append([]ComparisonRow(nil), c.Rows...)
	sort.SliceStable(rows, func(a, b int) bool {
		if rows[a].Group != rows[b].Group {
			return rows[a].Group < rows[b].Group
		}
		return rows[a].Parts < rows[b].Parts
	})
	for _, r := range rows {
		mark := "yes"
		if !r.Agree {
			mark = "NO"
		}
		if r.PaperWinner == "n/a" {
			mark = "-"
		}
		fmt.Fprintf(&sb, "%-22s %5d | %8s %8s %7s | %8.0f %8.0f %7s | %s\n",
			r.Group, r.Parts, fmtOrBlank(r.PaperDKNUX), fmtOrBlank(r.PaperRSB),
			r.PaperWinner, r.MeasDKNUX, r.MeasRSB, r.MeasWinner, mark)
	}
	fmt.Fprintf(&sb, "shape agreement: %.0f%%\n", 100*c.ShapeAgreement)
	return sb.String()
}

func fmtOrBlank(v float64) string {
	if v < 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f", v)
}
